package eatss_test

// Cross-cutting invariant tests: for arbitrary tile configurations drawn
// from the exploration spaces, the whole pipeline must uphold physical and
// structural invariants. These are the properties every experiment in the
// harness silently relies on.

import (
	"math/rand"
	"testing"
	"testing/quick"

	eatss "repro"
)

// randomTiles draws one configuration from the kernel's space.
func randomTiles(r *rand.Rand, k *eatss.AffineKernel) map[string]int64 {
	sizes := []int64{4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	tiles := map[string]int64{}
	for _, n := range k.Nests {
		for _, l := range n.Loops {
			if _, ok := tiles[l.Name]; !ok {
				tiles[l.Name] = sizes[r.Intn(len(sizes))]
			}
		}
	}
	return tiles
}

// TestPipelinePhysicalInvariants: any mappable configuration simulates to
// physical results.
func TestPipelinePhysicalInvariants(t *testing.T) {
	kernels := []string{"gemm", "2mm", "mvt", "jacobi-2d", "heat-3d", "conv-2d", "covariance"}
	gpus := []*eatss.GPU{eatss.GA100(), eatss.Xavier()}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := eatss.MustKernel(kernels[r.Intn(len(kernels))])
		g := gpus[r.Intn(len(gpus))]
		tiles := randomTiles(r, k)
		res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
			UseShared: r.Intn(2) == 0, Precision: eatss.FP64,
		})
		if err != nil {
			return true // unmappable configs are allowed to be rejected
		}
		idle := g.ConstantWatts + g.StaticWatts
		switch {
		case res.TimeSec <= 0,
			res.EnergyJ <= 0,
			res.Flops <= 0,
			res.GFLOPS*1e9 >= g.PeakFlops(g.MaxClockMHz, 2),
			res.AvgPowerW < idle*0.99,
			res.AvgPowerW > g.TDPWatts*1.01,
			res.L2Sectors < 0,
			res.DRAMBytes <= 0:
			t.Logf("violation: kernel=%s gpu=%s tiles=%v res=%+v", k.Name, g.Name, tiles, res)
			return false
		}
		// Energy = avg power x time (within float tolerance).
		diff := res.EnergyJ - res.AvgPowerW*res.TimeSec
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(1+res.EnergyJ)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMappingGeometryInvariants: block/grid geometry always respects the
// execution-model limits and covers the iteration space.
func TestMappingGeometryInvariants(t *testing.T) {
	kernels := []string{"gemm", "3mm", "atax", "fdtd-2d", "mttkrp", "doitgen"}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := eatss.MustKernel(kernels[r.Intn(len(kernels))])
		g := eatss.GA100()
		tiles := randomTiles(r, k)
		mk, err := eatss.Compile(k, g, tiles, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
		if err != nil {
			return true
		}
		for _, mn := range mk.Nests {
			if mn.ThreadsPerBlock > g.ThreadsPerBlock || mn.ThreadsPerBlock < 1 {
				return false
			}
			if mn.SharedBytesPerBlock > g.SharedPerBlock {
				return false
			}
			if mn.RegsPerThread > g.RegsPerThread {
				return false
			}
			// Every mapped dimension's blocks x tile must cover the
			// loop extent.
			for i, name := range mn.MappedLoops {
				ext := mn.Nest.Loops[mn.Nest.LoopIndex(name)].Extent(mn.Params)
				if mn.GridDims[i]*mn.Tiles[name] < ext {
					return false
				}
				// Coarsening preserves tile points.
				if mn.BlockDims[i]*mn.Coarsen[i] < mn.Tiles[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEATSSSolutionsAlwaysMappable: every configuration EATSS emits (all
// splits, all warp fractions, both GPUs, every kernel) must compile and
// simulate — the model's constraints must imply mappability.
func TestEATSSSolutionsAlwaysMappable(t *testing.T) {
	for _, g := range []*eatss.GPU{eatss.GA100(), eatss.Xavier()} {
		for _, name := range eatss.Kernels() {
			k := eatss.MustKernel(name)
			for _, split := range eatss.SharedSplits {
				for _, wf := range eatss.WarpFractions {
					sel, err := eatss.SelectTiles(k, g, eatss.Options{
						SplitFactor: split, WarpFraction: wf,
						Precision: eatss.FP64, ProblemSizeAware: true,
					})
					if err != nil {
						continue // infeasible formulation: fine
					}
					if _, err := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{
						UseShared: split > 0, Precision: eatss.FP64,
					}); err != nil {
						t.Errorf("%s/%s split=%.2f wf=%.3f: EATSS tiles %v unmappable: %v",
							g.Name, name, split, wf, sel.Tiles, err)
					}
				}
			}
		}
	}
}

// TestSimulationMonotoneInWork: strictly more work (a larger problem) must
// not take less time or energy under the same configuration.
func TestSimulationMonotoneInWork(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	tiles := eatss.DefaultTiles(k)
	var prevT, prevE float64
	for _, n := range []int64{500, 1000, 2000, 4000} {
		res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
			Params:    map[string]int64{"NI": n, "NJ": n, "NK": n},
			UseShared: true, Precision: eatss.FP64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimeSec < prevT || res.EnergyJ < prevE {
			t.Fatalf("N=%d: time/energy decreased (%.4fs/%.2fJ after %.4fs/%.2fJ)",
				n, res.TimeSec, res.EnergyJ, prevT, prevE)
		}
		prevT, prevE = res.TimeSec, res.EnergyJ
	}
}
