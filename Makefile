GO ?= go

.PHONY: all vet build test race sweep-race sweep-bench check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# sweep-race exercises the parallel sweep engine's concurrency surface
# under the race detector: the worker pool, the shared evaluation cache,
# concurrent obs producers, and the solver's cancellation polling. It is
# a focused (fast) subset of `race` so the gate names the sweep paths
# explicitly even when the full suite is skipped locally.
sweep-race:
	$(GO) test -race -count=1 -run 'Sweep|Explore|Concurrent|SolveCtx|Cancel' . ./internal/sweep ./internal/smt ./internal/obs

# sweep-bench records before/after sweep throughput (sequential j=1 vs
# the worker pool) into BENCH_sweep.json via the bench runner's space.
sweep-bench:
	$(GO) run ./cmd/sweepbench -points 512 -out BENCH_sweep.json

# check is the gate a change must pass before it lands: static analysis,
# a full build, the sweep-engine race gate, and the full test suite
# under the race detector.
check: vet build sweep-race race

clean:
	$(GO) clean ./...
	rm -f trace.json
