GO ?= go

.PHONY: all vet build test race sweep-race sweep-bench analysis-bench serve-bench obs-bench bench-guard profile-demo lint-gate selfcheck symbolic-parity symbolic-bench feas-bench check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# sweep-race exercises the concurrency surfaces under the race
# detector: the sweep worker pool, the shared evaluation cache (and its
# cancellation-poisoning regression test), concurrent obs producers, the
# solver's cancellation polling, and the service layer's herd
# coalescing / deadline / load-shedding paths. It is a focused (fast)
# subset of `race` so the gate names the concurrent paths explicitly
# even when the full suite is skipped locally.
sweep-race:
	$(GO) test -race -count=1 -run 'Sweep|Explore|Concurrent|SolveCtx|Cancel|Poison|Herd|Coalesc|Deadline|Shed' . ./internal/sweep ./internal/smt ./internal/obs ./internal/serve

# sweep-bench records before/after sweep throughput (sequential j=1 vs
# the worker pool) into BENCH_sweep.json via the bench runner's space.
sweep-bench:
	$(GO) run ./cmd/sweepbench -points 512 -out BENCH_sweep.json

# analysis-bench records what staged compilation buys per evaluation
# (fresh per-point analysis vs one shared analysis.Program artifact)
# into BENCH_analysis.json, and fails if the two paths' results ever
# diverge — a cheap end-to-end parity gate on the staging split.
analysis-bench:
	$(GO) run ./cmd/analysisbench -out BENCH_analysis.json

# serve-bench load-tests the tile-selection service end to end: an
# in-process eatssd served over loopback HTTP takes a cold-cache request
# herd per catalog kernel plus a sustained mixed solve/simulate stream,
# and BENCH_serve.json records p50/p99 latency, throughput and the
# coalesce rate. The run itself fails on any unexpected error or if no
# request coalesced — the daemon's acceptance bar, enforced on every
# `make check`.
serve-bench:
	$(GO) run ./cmd/servebench -out BENCH_serve.json

# obs-bench guards the observability layer's disabled-path cost: the
# allocs/op checks proving that spans, metrics (counters, gauges and the
# sweep/solver latency histograms), slog output, the live sweep progress
# and the flight recorder all cost zero allocations (and take no locks)
# on the hot path when observability is off — and that histogram
# observation stays allocation-free even when it is on. The daemon
# posture (metrics on, per-request span capture off) gets the same
# guarantee: spans under a traceless context must not allocate. A
# regression here taxes every sweep evaluation, so it runs as part of
# `check`.
obs-bench:
	$(GO) test -count=1 -run 'TestObsOverhead|TestHistogramObserveEnabledDoesNotAllocate|TestTracingDisabledDaemonPathDoesNotAllocate|TestLiveObsOverheadDisabled|TestDisabledRecorderDropsAndDoesNotAllocate|TestEnabledRecordDoesNotAllocate' ./internal/obs ./internal/obs/flight

# symbolic-parity pins the pluggable-backend contract: the closed-form
# symbolic evaluator must reproduce compile+simulate point-by-point —
# same valid set, exact integer counters, energies to float noise, same
# argmin — over the paper's full gemm space, a reduced space of every
# catalog kernel on both GPUs, and the SelectBest protocol.
symbolic-parity:
	$(GO) test -count=1 -run 'TestSymbolicSweepParity|TestSelectBestEvalParity|TestEvaluatorBackendParity' . ./internal/serve

# symbolic-bench measures what the closed-form evaluator buys per sweep
# evaluation (BENCH_symbolic.json), re-verifies parity along the way,
# and exits nonzero if the per-point speedup over compile+simulate falls
# under symbench's 10x floor — the backend's reason to exist, enforced
# on every `make check`.
symbolic-bench:
	$(GO) run ./cmd/symbench -out BENCH_symbolic.json

# feas-bench runs the static-feasibility soundness gate (cmd/feasbench):
# the pruned gemm sweep must equal the full sweep filtered through the
# same region predicate bit-for-bit (identical surviving set and
# argmax), every prune certificate must replay under the independent
# math/big certifier and re-decide UNSAT under the SMT solver, and the
# gemm 15^3 prune rate must clear the 30% floor. BENCH_prune.json
# records the rates and the per-point cost of the pre-filter.
feas-bench:
	$(GO) run ./cmd/feasbench -out BENCH_prune.json

# bench-guard replays the BENCH_*.json files just written by the bench
# targets against BENCH_history.jsonl: a guarded metric (per-point
# latency, points/sec, speedup) regressing more than 15% against the
# median of recent comparable history (the last 8 runs with the same
# file/kernel/points/GOMAXPROCS/host) fails the gate. Runs are appended
# to the history so the baseline tracks the trajectory.
bench-guard:
	$(GO) run ./cmd/benchguard

# profile-demo exercises the energy attribution profiler end to end on
# the paper's worked example: per-nest/per-array/per-level breakdown,
# the "why best beats ppcg-default" diff, and the sweep-surface export
# (PROFILE_gemm.json + SURFACE_gemm.csv are CI artifacts, not committed).
profile-demo:
	$(GO) run ./cmd/eatss -kernel gemm -best -profile -profile-out PROFILE_gemm.json -surface SURFACE_gemm.csv

# lint-gate runs the kernel linter (internal/lint) over the built-in
# catalog and every shipped DSL kernel, failing on any error-severity
# diagnostic: no kernel with a provable out-of-bounds access, undeclared
# name or degenerate domain may ship. It also runs the static
# feasibility pass on both reference GPUs: a catalog kernel whose
# feasible tile region is certifiably empty fails the gate.
lint-gate:
	$(GO) run ./tools/lintgate

# selfcheck runs the repo's own static analyzer (tools/selfcheck,
# stdlib go/ast only) over the source tree: obs span open/close pairing,
# the *Ctx context-threading contract, the "no raw time.Now under
# internal/ outside obs and bench" rule, the metric-name lint
# (literal snake_case dot-namespaced names, each registered exactly
# once), and the "no context.Background()/TODO() under internal/serve
# or internal/sweep" request-path rule.
selfcheck:
	$(GO) run ./tools/selfcheck .

# check is the gate a change must pass before it lands: static analysis
# (go vet plus the repo's own selfcheck analyzer), a full build, the
# kernel lint gate, the concurrency race gate, the staged-compilation
# parity/benchmark gate, the symbolic-backend parity and speedup gates,
# the static-feasibility soundness gate, the service load test, the
# benchmark regression guard over the BENCH history, the
# zero-cost-observability guard, the attribution-profiler demo, and the
# full test suite under the race detector.
check: vet build selfcheck lint-gate sweep-race analysis-bench symbolic-parity symbolic-bench feas-bench serve-bench bench-guard obs-bench profile-demo race

clean:
	$(GO) clean ./...
	rm -f trace.json PROFILE_gemm.json SURFACE_gemm.csv
