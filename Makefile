GO ?= go

.PHONY: all vet build test race sweep-race sweep-bench analysis-bench obs-bench lint-gate selfcheck check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# sweep-race exercises the parallel sweep engine's concurrency surface
# under the race detector: the worker pool, the shared evaluation cache,
# concurrent obs producers, and the solver's cancellation polling. It is
# a focused (fast) subset of `race` so the gate names the sweep paths
# explicitly even when the full suite is skipped locally.
sweep-race:
	$(GO) test -race -count=1 -run 'Sweep|Explore|Concurrent|SolveCtx|Cancel' . ./internal/sweep ./internal/smt ./internal/obs

# sweep-bench records before/after sweep throughput (sequential j=1 vs
# the worker pool) into BENCH_sweep.json via the bench runner's space.
sweep-bench:
	$(GO) run ./cmd/sweepbench -points 512 -out BENCH_sweep.json

# analysis-bench records what staged compilation buys per evaluation
# (fresh per-point analysis vs one shared analysis.Program artifact)
# into BENCH_analysis.json, and fails if the two paths' results ever
# diverge — a cheap end-to-end parity gate on the staging split.
analysis-bench:
	$(GO) run ./cmd/analysisbench -out BENCH_analysis.json

# obs-bench guards the observability layer's disabled-path cost: the
# allocs/op checks proving that spans, metrics, slog output, the live
# sweep progress and the flight recorder all cost zero allocations (and
# take no locks) on the hot path when observability is off. A regression
# here taxes every sweep evaluation, so it runs as part of `check`.
obs-bench:
	$(GO) test -count=1 -run 'TestObsOverhead|TestLiveObsOverheadDisabled|TestDisabledRecorderDropsAndDoesNotAllocate|TestEnabledRecordDoesNotAllocate' ./internal/obs ./internal/obs/flight

# lint-gate runs the kernel linter (internal/lint) over the built-in
# catalog and every shipped DSL kernel, failing on any error-severity
# diagnostic: no kernel with a provable out-of-bounds access, undeclared
# name or degenerate domain may ship.
lint-gate:
	$(GO) run ./tools/lintgate

# selfcheck runs the repo's own static analyzer (tools/selfcheck,
# stdlib go/ast only) over the source tree: obs span open/close pairing,
# the *Ctx context-threading contract, and the "no raw time.Now under
# internal/ outside obs and bench" rule.
selfcheck:
	$(GO) run ./tools/selfcheck .

# check is the gate a change must pass before it lands: static analysis
# (go vet plus the repo's own selfcheck analyzer), a full build, the
# kernel lint gate, the sweep-engine race gate, the staged-compilation
# parity/benchmark gate, the zero-cost-observability guard, and the full
# test suite under the race detector.
check: vet build selfcheck lint-gate sweep-race analysis-bench obs-bench race

clean:
	$(GO) clean ./...
	rm -f trace.json
