GO ?= go

.PHONY: all vet build test race check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the gate a change must pass before it lands: static analysis,
# a full build, and the test suite under the race detector.
check: vet build race

clean:
	$(GO) clean ./...
	rm -f trace.json
