package eatss

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/feas"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sweep"
)

// Sweep-engine telemetry: effective worker counts, cache effectiveness,
// evaluation-backend attribution, and how many sweeps were cut short by
// cancellation.
var (
	mSweepWorkers        = obs.NewGauge("eatss.sweep.workers")
	mSweepCacheHits      = obs.NewCounter("eatss.sweep.cache_hits")
	mSweepCacheMisses    = obs.NewCounter("eatss.sweep.cache_misses")
	mSweepCacheEvictions = obs.NewCounter("eatss.sweep.cache_evictions")
	mSweepAborted        = obs.NewCounter("eatss.sweep.aborted")
	// mSweepSymbolicPoints / mSweepResidualPoints split fresh evaluations
	// by backend: closed-form plan vs simulator fallback under a
	// symbolic evaluator. Their ratio is the residual-fallback rate.
	mSweepSymbolicPoints = obs.NewCounter("eatss.sweep.symbolic_points")
	mSweepResidualPoints = obs.NewCounter("eatss.sweep.residual_points")
	// mSweepPointSec distributes fresh (cache-miss) per-point evaluation
	// latency — the p99 the /metrics scrape watches during long sweeps.
	mSweepPointSec = obs.NewHistogram("eatss.sweep.point_seconds",
		1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1)
	// mSweepPrunedPoints counts configurations the static feasibility
	// pre-filter (SweepOptions.Prune) removed before any evaluation.
	mSweepPrunedPoints = obs.NewCounter("eatss.sweep.pruned_points")
)

// SweepOptions configures the parallel sweep engine behind ExploreSpace
// (see DESIGN.md's "Parallel sweep engine" section).
type SweepOptions struct {
	// Workers bounds the number of concurrent evaluations. 0 (or
	// negative) uses GOMAXPROCS; 1 reproduces the sequential engine in
	// the calling goroutine. Results are input-ordered regardless of
	// the worker count, so any j produces identical output.
	Workers int
	// Cache memoizes (kernel, GPU, tiles, RunConfig) evaluations so
	// repeated points across sweeps — e.g. the same tile configuration
	// appearing in two figures' spaces — compile and simulate once.
	// nil uses the process-wide DefaultEvalCache; NoCache disables
	// memoization (every point is evaluated fresh).
	Cache *EvalCache
	// Prune pre-filters the space through the static feasibility
	// analysis (internal/feas): points that provably violate the
	// option-free Sec. IV constraints — the problem-size-aware tile
	// domains, the register bound — are counted in ExploreStats.Pruned
	// and never evaluated. Off by default: a pruned sweep covers only
	// the model-feasible subspace, so exhaustive studies that
	// deliberately walk infeasible configurations (the paper's Sec. II
	// exploration figures) must leave it off. Every prune is certified
	// sound (see CertifyPrune and cmd/feasbench's catalog gate), so
	// with Prune on, the surviving points — and the argmax over them —
	// are bit-identical to filtering a full sweep's output through the
	// same feasibility predicate.
	Prune bool
}

// EvalCache memoizes compile+simulate outcomes across sweeps, bounded
// by LRU eviction (the same internal/lru cache the service layer's two
// tiers use). It is safe for concurrent use. Results are cached by
// value; tile maps are never stored, so cached entries cannot alias
// caller-owned maps.
type EvalCache struct {
	disabled bool
	c        *lru.Cache[evalEntry]
}

type evalEntry struct {
	res Result
	ok  bool // false: the configuration failed to map
}

// maxEvalCacheEntries caps a cache's footprint. Entries are small
// (a Result plus a short key), so the cap is generous; beyond it the
// least recently used entry is evicted per insert.
const maxEvalCacheEntries = 1 << 20

// NewEvalCache returns an empty evaluation cache, for callers that want
// sweep-local memoization instead of the process-wide default.
func NewEvalCache() *EvalCache {
	return &EvalCache{c: lru.New[evalEntry](maxEvalCacheEntries)}
}

// DefaultEvalCache is the process-wide cache used when SweepOptions.Cache
// is nil — it is what lets the bench figures share evaluations.
var DefaultEvalCache = NewEvalCache()

// NoCache disables memoization when set as SweepOptions.Cache.
var NoCache = &EvalCache{disabled: true}

// Len returns the number of cached evaluations.
func (c *EvalCache) Len() int {
	if c == nil || c.disabled {
		return 0
	}
	return c.c.Len()
}

// Stats returns the cache's cumulative hit/miss counts.
func (c *EvalCache) Stats() (hits, misses int64) {
	if c == nil || c.disabled {
		return 0, 0
	}
	hits, misses, _ = c.c.Stats()
	return hits, misses
}

// Evictions returns how many entries LRU eviction has dropped.
func (c *EvalCache) Evictions() int64 {
	if c == nil || c.disabled {
		return 0
	}
	_, _, ev := c.c.Stats()
	return ev
}

// Clear drops every cached evaluation (the hit/miss counters are kept).
func (c *EvalCache) Clear() {
	if c == nil || c.disabled {
		return
	}
	c.c.Purge()
}

func (c *EvalCache) get(key string) (evalEntry, bool) {
	if c == nil || c.disabled {
		return evalEntry{}, false
	}
	return c.c.Get(key)
}

func (c *EvalCache) put(key string, e evalEntry) {
	if c == nil || c.disabled {
		return
	}
	if c.c.Put(key, e) {
		mSweepCacheEvictions.Add(1)
	}
}

// sweepKeyPrefix fingerprints everything an evaluation depends on except
// the tile choice: the analysis artifact's fingerprint (which covers the
// kernel's canonical DSL text and the resolved problem sizes), the full
// machine description, and the RunConfig. Computed once per sweep;
// per-point keys append the tiles.
func sweepKeyPrefix(prog *analysis.Program, g *GPU, cfg RunConfig) string {
	h := fnv.New64a()
	io.WriteString(h, prog.Fingerprint())
	fmt.Fprintf(h, "|%+v|", *g)
	fmt.Fprintf(h, "%s|%t|%d|%v|%d|%d|%v|%v",
		tileKey(cfg.Params), cfg.UseShared, cfg.SharedQuota, cfg.Precision,
		cfg.TimeTileFuse, cfg.RegTile, cfg.Verify, cfg.Evaluator)
	return strconv.FormatUint(h.Sum64(), 16) + "|"
}

// tileKey renders a tile (or parameter) map canonically: sorted
// name=value pairs.
func tileKey(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]byte, 0, 16*len(names))
	for i, n := range names {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, n...)
		out = append(out, '=')
		out = strconv.AppendInt(out, tiles[n], 10)
	}
	return string(out)
}

// copyTiles returns a defensive copy of a tile map, so recorded results
// never alias caller-owned (or space-owned) maps.
func copyTiles(tiles map[string]int64) map[string]int64 {
	cp := make(map[string]int64, len(tiles))
	for n, v := range tiles {
		cp[n] = v
	}
	return cp
}

// cacheableOutcome reports whether one point's evaluation outcome may
// be memoized. An evaluation cut short by cancellation (the worker's
// context expired, or the error itself is a context error) says nothing
// about the configuration — caching its spurious failure as a permanent
// ok:false "failed to map" entry would poison the process-wide
// DefaultEvalCache for every later sweep touching the same key. A
// successful result computed under a just-cancelled context is equally
// skipped: dropping a valid memoization is cheap, distinguishing it
// from a torn one is not.
func cacheableOutcome(wctx context.Context, err error) bool {
	if wctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// sweepOutcome is one point's evaluation as seen by the pool worker.
type sweepOutcome struct {
	res Result
	ok  bool
	hit bool
	// sym / resid attribute a fresh evaluation to a backend (both false
	// on cache hits and plain simulate sweeps).
	sym, resid bool
}

// ExploreSpaceOpt is ExploreSpaceCtx with explicit sweep options: the
// worker count and the memoization cache. The contracts, regardless of
// options:
//
//   - Ordering: the returned points follow the input space's order
//     (failed-to-map points omitted), identically for any worker count.
//   - Cancellation: the sweep polls ctx between evaluations; on
//     cancellation it returns the points completed so far with
//     stats.Aborted set, without dispatching further configurations.
//   - Aliasing: every returned SpacePoint.Tiles is a defensive copy —
//     callers may mutate the input space (or the results) freely.
//
// The analysis is staged once and shared by every worker; per point
// only the mapping and simulation run.
func ExploreSpaceOpt(ctx context.Context, k *AffineKernel, g *GPU, space []map[string]int64, cfg RunConfig, opt SweepOptions) ([]SpacePoint, ExploreStats) {
	return exploreAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, cfg.Params), g, space, cfg, opt)
}

func exploreAnalyzed(ctx context.Context, prog *analysis.Program, g *GPU, space []map[string]int64, cfg RunConfig, opt SweepOptions) ([]SpacePoint, ExploreStats) {
	ctx, sp := obs.Start(ctx, "eatss.explore_space")
	defer sp.End()
	sp.SetStr("kernel", prog.Kernel.Name)
	sp.SetInt("space", int64(len(space)))
	workers := sweep.Workers(opt.Workers)
	sp.SetInt("workers", int64(workers))
	mSweepWorkers.Set(float64(workers))
	// Live progress for the /progress endpoint, plus per-point flight
	// events. Both are nil-safe no-ops while observability is disabled.
	progress := obs.BeginSweep(prog.Kernel.Name, len(space))
	progress.SetEvaluator(cfg.Evaluator.String())
	defer progress.Finish()

	// Static feasibility pre-filter: points the region analysis proves
	// infeasible are dropped before any worker sees them. The filter
	// runs in the calling goroutine — a Check is a handful of integer
	// multiplications, far cheaper than dispatching the point.
	pruned := 0
	if opt.Prune {
		region := feasRegion(prog, g, feas.SweepConfig(cfg.Precision))
		kept := make([]map[string]int64, 0, len(space))
		for i, tiles := range space {
			if cert := region.Check(tiles); cert != nil {
				pruned++
				mSweepPrunedPoints.Add(1)
				progress.PointPruned()
				flight.Default.SweepPoint(prog.Kernel.Name, int64(i), false, false)
				continue
			}
			kept = append(kept, tiles)
		}
		space = kept
	}

	cache := opt.Cache
	if cache == nil {
		cache = DefaultEvalCache
	}
	var prefix string
	if !cache.disabled {
		prefix = sweepKeyPrefix(prog, g, cfg)
	}

	outcomes, done, cerr := sweep.Map(ctx, opt.Workers, space,
		func(wctx context.Context, i int, tiles map[string]int64) sweepOutcome {
			var key string
			if !cache.disabled {
				key = prefix + tileKey(tiles)
				if e, ok := cache.get(key); ok {
					mSweepCacheHits.Add(1)
					progress.PointDone(true, e.ok)
					flight.Default.SweepPoint(prog.Kernel.Name, int64(i), e.ok, true)
					return sweepOutcome{res: e.res, ok: e.ok, hit: true}
				}
				mSweepCacheMisses.Add(1)
			}
			evalStart := obs.Now()
			res, info, err := evalAnalyzed(wctx, prog, g, tiles, cfg)
			mSweepPointSec.Observe(obs.Now().Sub(evalStart).Seconds())
			o := sweepOutcome{res: res, ok: err == nil, sym: info.symbolic, resid: info.residual}
			if o.sym {
				mSweepSymbolicPoints.Add(1)
			}
			if o.resid {
				mSweepResidualPoints.Add(1)
			}
			progress.PointEval(o.sym, o.resid)
			if cacheableOutcome(wctx, err) {
				cache.put(key, evalEntry{res: o.res, ok: o.ok})
			}
			progress.PointDone(false, o.ok)
			flight.Default.SweepPoint(prog.Kernel.Name, int64(i), o.ok, false)
			return o
		})

	var out []SpacePoint
	var stats ExploreStats
	for i, o := range outcomes {
		if !done[i] {
			continue
		}
		if o.hit {
			stats.CacheHits++
		}
		if o.sym {
			stats.Symbolic++
		}
		if o.resid {
			stats.Residual++
		}
		if !o.ok {
			stats.Skipped++
			mExploreSkipped.Add(1)
			continue
		}
		out = append(out, SpacePoint{Tiles: copyTiles(space[i]), Result: o.res})
	}
	stats.Evaluated = len(out)
	stats.Pruned = pruned
	stats.Aborted = cerr != nil
	if stats.Aborted {
		mSweepAborted.Add(1)
	}
	sp.SetInt("evaluated", int64(stats.Evaluated))
	sp.SetInt("pruned", int64(stats.Pruned))
	sp.SetInt("skipped", int64(stats.Skipped))
	sp.SetInt("cache_hits", int64(stats.CacheHits))
	sp.SetStr("evaluator", cfg.Evaluator.String())
	sp.SetInt("symbolic_points", int64(stats.Symbolic))
	sp.SetInt("residual_points", int64(stats.Residual))
	sp.SetBool("aborted", stats.Aborted)
	return out, stats
}
