package eatss_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	eatss "repro"
)

// TestCancelledSweepDoesNotPoisonEvalCache is the regression test for
// the cache-poisoning bug: an eval cut short by cancellation used to be
// memoized as a permanent ok:false "failed to map" entry, so every
// later sweep sharing the cache silently dropped those points. The
// contract now: after a cancelled sweep, a full re-sweep with the same
// cache reproduces a ground-truth sweep exactly.
func TestCancelledSweepDoesNotPoisonEvalCache(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	space := eatss.PaperSpace(k)
	if len(space) > 600 {
		space = space[:600]
	}
	cfg := eatss.RunConfig{UseShared: true, Precision: eatss.FP64}

	// Ground truth, memoization off: what the space really evaluates to.
	wantPts, wantStats := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 4, Cache: eatss.NoCache})
	if len(wantPts) == 0 {
		t.Fatal("ground-truth sweep returned no points")
	}

	// A sweep cancelled mid-flight, writing into a fresh shared cache.
	// The watcher cancels as soon as the cache shows the sweep is well
	// under way, so the cancellation reliably lands while evals are in
	// flight. Those evals observe it via the ctx plumbing and fail with
	// context errors — exactly the outcomes that must not be memoized.
	cache := eatss.NewEvalCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for cache.Len() < 50 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, aborted := eatss.ExploreSpaceOpt(ctx, k, g, space, cfg,
		eatss.SweepOptions{Workers: 4, Cache: cache})
	if !aborted.Aborted {
		t.Skip("sweep finished before the cancellation landed; nothing to regress")
	}

	// Re-sweep with the same cache: previously-cancelled points must
	// evaluate fresh and succeed, reproducing the ground truth.
	gotPts, gotStats := eatss.ExploreSpaceOpt(context.Background(), k, g, space, cfg,
		eatss.SweepOptions{Workers: 4, Cache: cache})
	if gotStats.Skipped != wantStats.Skipped {
		t.Fatalf("re-sweep skipped %d points, ground truth skipped %d — cancelled evals were cached as failures",
			gotStats.Skipped, wantStats.Skipped)
	}
	if !reflect.DeepEqual(gotPts, wantPts) {
		if len(gotPts) != len(wantPts) {
			t.Fatalf("re-sweep returned %d points, ground truth %d — the cache was poisoned by the cancelled sweep",
				len(gotPts), len(wantPts))
		}
		for i := range wantPts {
			if !reflect.DeepEqual(gotPts[i], wantPts[i]) {
				t.Fatalf("point %d diverges:\nwant %+v\ngot  %+v", i, wantPts[i], gotPts[i])
			}
		}
	}
}

// TestCompileRunCtxCancellation: the compile and simulate stages poll
// their context, so a cancelled request fails fast with a context error
// instead of doing the work — the plumbing the daemon's per-request
// deadlines rely on.
func TestCompileRunCtxCancellation(t *testing.T) {
	k := eatss.MustKernel("gemm")
	g := eatss.GA100()
	tiles := eatss.DefaultTiles(k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := eatss.CompileCtx(ctx, k, g, tiles, eatss.RunConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompileCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := eatss.RunCtx(ctx, k, g, tiles, eatss.RunConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestFingerprintKernelMatchesProgram pins the invariant the service's
// program cache is keyed on: FingerprintKernel(k, params) equals the
// fingerprint of the analysis artifact staged from the same inputs, with
// and without parameter overrides.
func TestFingerprintKernelMatchesProgram(t *testing.T) {
	for _, name := range []string{"gemm", "jacobi-2d", "doitgen"} {
		k := eatss.MustKernel(name)
		// Default params, plus one real parameter doubled.
		paramSets := []map[string]int64{nil}
		for p, v := range k.Params {
			paramSets = append(paramSets, map[string]int64{p: v * 2})
			break
		}
		for _, params := range paramSets {
			prog, err := eatss.Analyze(k, params)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got, want := eatss.FingerprintKernel(k, params), prog.Fingerprint(); got != want {
				t.Fatalf("%s params=%v: FingerprintKernel = %s, Program.Fingerprint = %s", name, params, got, want)
			}
		}
	}
}
