package affine

import (
	"fmt"
	"sort"
	"sync"
)

// This file defines the benchmark kernel library used throughout the paper's
// evaluation: the Polybench/C 3.2 kernels of Sec. V-B plus the three
// non-Polybench kernels of Sec. V-D (conv-2d, heat-3d, mttkrp).
//
// Default parameters correspond to the EXTRALARGE dataset used on the GA100;
// StandardParams returns the STANDARD dataset used on the Xavier (Sec. V-A).

var (
	catalogOnce sync.Once
	catalog     map[string]*Kernel
	standard    map[string]map[string]int64
	order       []string
)

func register(k *Kernel, std map[string]int64) {
	if _, dup := catalog[k.Name]; dup {
		panic(fmt.Sprintf("affine: duplicate kernel %q", k.Name))
	}
	catalog[k.Name] = k
	standard[k.Name] = std
	order = append(order, k.Name)
}

func buildCatalog() {
	catalog = make(map[string]*Kernel)
	standard = make(map[string]map[string]int64)

	register(gemmKernel(), map[string]int64{"NI": 1024, "NJ": 1024, "NK": 1024})
	register(twoMMKernel(), map[string]int64{"NI": 1024, "NJ": 1024, "NK": 1024, "NL": 1024})
	register(threeMMKernel(), map[string]int64{"NI": 1024, "NJ": 1024, "NK": 1024, "NL": 1024, "NM": 1024})
	register(syrkKernel(), map[string]int64{"N": 1024, "M": 1024})
	register(syr2kKernel(), map[string]int64{"N": 1024, "M": 1024})
	register(ataxKernel(), map[string]int64{"NX": 4000, "NY": 4000})
	register(bicgKernel(), map[string]int64{"NX": 4000, "NY": 4000})
	register(mvtKernel(), map[string]int64{"N": 4000})
	register(gemverKernel(), map[string]int64{"N": 4000})
	register(covarianceKernel(), map[string]int64{"M": 1200, "N": 1200})
	register(correlationKernel(), map[string]int64{"M": 1200, "N": 1200})
	register(jacobi1DKernel(), map[string]int64{"N": 100000, "T": 100})
	register(jacobi2DKernel(), map[string]int64{"N": 1000, "T": 20})
	register(fdtd2DKernel(), map[string]int64{"NX": 1000, "NY": 1000, "T": 50})
	register(fdtdAPMLKernel(), map[string]int64{"CZ": 256, "CYM": 256, "CXM": 256})
	register(doitgenKernel(), map[string]int64{"NQ": 64, "NR": 64, "NP": 64})
	register(trmmKernel(), map[string]int64{"N": 1024})
	register(gesummvKernel(), map[string]int64{"N": 2000})
	register(conv2DKernel(), map[string]int64{"NI": 2048, "NJ": 2048, "KW": 9})
	register(heat3DKernel(), map[string]int64{"N": 120, "T": 50})
	register(mttkrpKernel(), map[string]int64{"I": 256, "J": 256, "K": 128, "L": 128})
}

// Catalog returns the names of all registered kernels in registration order.
func Catalog() []string {
	catalogOnce.Do(buildCatalog)
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// PolybenchNames returns the Polybench subset of the catalog.
func PolybenchNames() []string {
	nonPB := map[string]bool{"conv-2d": true, "heat-3d": true, "mttkrp": true}
	var out []string
	for _, n := range Catalog() {
		if !nonPB[n] {
			out = append(out, n)
		}
	}
	return out
}

// NonPolybenchNames returns conv-2d, heat-3d and mttkrp (Sec. V-D).
func NonPolybenchNames() []string { return []string{"conv-2d", "heat-3d", "mttkrp"} }

// Lookup returns the named kernel with its EXTRALARGE default parameters.
func Lookup(name string) (*Kernel, error) {
	catalogOnce.Do(buildCatalog)
	k, ok := catalog[name]
	if !ok {
		names := make([]string, 0, len(catalog))
		for n := range catalog {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("affine: unknown kernel %q (known: %v)", name, names)
	}
	return k, nil
}

// MustLookup is Lookup for static kernel names; it panics on failure.
func MustLookup(name string) *Kernel {
	k, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return k
}

// StandardParams returns the STANDARD-dataset parameter bindings for the
// named kernel (used for the Xavier in the paper).
func StandardParams(name string) (map[string]int64, error) {
	catalogOnce.Do(buildCatalog)
	ps, ok := standard[name]
	if !ok {
		return nil, fmt.Errorf("affine: unknown kernel %q", name)
	}
	out := make(map[string]int64, len(ps))
	for k, v := range ps {
		out[k] = v
	}
	return out, nil
}

// --- kernel definitions -------------------------------------------------

// gemm: C = alpha*A*B + beta*C.
func gemmKernel() *Kernel {
	return NewBuilder("gemm", map[string]int64{"NI": 4000, "NJ": 4000, "NK": 4000}).
		Array("C", "NI", "NJ").
		Array("A", "NI", "NK").
		Array("B", "NK", "NJ").
		Nest("matmul").
		Loop("i", "NI").Loop("j", "NJ").Loop("k", "NK").
		Stmt("S0", 2).Write("C", "i", "j").Read("C", "i", "j").
		Read("A", "i", "k").Read("B", "k", "j").Reduction().End().
		End().
		Build()
}

// 2mm: tmp = A*B; D = tmp*C (two back-to-back matrix multiplies).
func twoMMKernel() *Kernel {
	return NewBuilder("2mm", map[string]int64{"NI": 4000, "NJ": 4000, "NK": 4000, "NL": 4000}).
		Array("tmp", "NI", "NJ").
		Array("A", "NI", "NK").
		Array("B", "NK", "NJ").
		Array("C", "NJ", "NL").
		Array("D", "NI", "NL").
		Nest("mm1").
		Loop("i", "NI").Loop("j", "NJ").Loop("k", "NK").
		Stmt("S0", 2).Write("tmp", "i", "j").Read("tmp", "i", "j").
		Read("A", "i", "k").Read("B", "k", "j").Reduction().End().
		End().
		Nest("mm2").
		Loop("i", "NI").Loop("j", "NL").Loop("k", "NJ").
		Stmt("S1", 2).Write("D", "i", "j").Read("D", "i", "j").
		Read("tmp", "i", "k").Read("C", "k", "j").Reduction().End().
		End().
		Build()
}

// 3mm: E = A*B; F = C*D; G = E*F.
func threeMMKernel() *Kernel {
	return NewBuilder("3mm", map[string]int64{"NI": 4000, "NJ": 4000, "NK": 4000, "NL": 4000, "NM": 4000}).
		Array("A", "NI", "NK").
		Array("B", "NK", "NJ").
		Array("C", "NJ", "NM").
		Array("D", "NM", "NL").
		Array("E", "NI", "NJ").
		Array("F", "NJ", "NL").
		Array("G", "NI", "NL").
		Nest("mm1").
		Loop("i", "NI").Loop("j", "NJ").Loop("k", "NK").
		Stmt("S0", 2).Write("E", "i", "j").Read("E", "i", "j").
		Read("A", "i", "k").Read("B", "k", "j").Reduction().End().
		End().
		Nest("mm2").
		Loop("i", "NJ").Loop("j", "NL").Loop("k", "NM").
		Stmt("S1", 2).Write("F", "i", "j").Read("F", "i", "j").
		Read("C", "i", "k").Read("D", "k", "j").Reduction().End().
		End().
		Nest("mm3").
		Loop("i", "NI").Loop("j", "NL").Loop("k", "NJ").
		Stmt("S2", 2).Write("G", "i", "j").Read("G", "i", "j").
		Read("E", "i", "k").Read("F", "k", "j").Reduction().End().
		End().
		Build()
}

// syrk: C = alpha*A*A^T + beta*C (symmetric rank-k update).
func syrkKernel() *Kernel {
	return NewBuilder("syrk", map[string]int64{"N": 4000, "M": 4000}).
		Array("C", "N", "N").
		Array("A", "N", "M").
		Nest("update").
		Loop("i", "N").Loop("j", "N").Loop("k", "M").
		Stmt("S0", 2).Write("C", "i", "j").Read("C", "i", "j").
		Read("A", "i", "k").Read("A", "j", "k").Reduction().End().
		End().
		Build()
}

// syr2k: C = alpha*A*B^T + alpha*B*A^T + beta*C.
func syr2kKernel() *Kernel {
	return NewBuilder("syr2k", map[string]int64{"N": 4000, "M": 4000}).
		Array("C", "N", "N").
		Array("A", "N", "M").
		Array("B", "N", "M").
		Nest("update").
		Loop("i", "N").Loop("j", "N").Loop("k", "M").
		Stmt("S0", 4).Write("C", "i", "j").Read("C", "i", "j").
		Read("A", "i", "k").Read("B", "j", "k").
		Read("B", "i", "k").Read("A", "j", "k").Reduction().End().
		End().
		Build()
}

// atax: y = A^T * (A*x).
func ataxKernel() *Kernel {
	return NewBuilder("atax", map[string]int64{"NX": 8000, "NY": 8000}).
		Array("A", "NX", "NY").
		Array("x", "NY").
		Array("y", "NY").
		Array("tmp", "NX").
		Nest("ax").
		Loop("i", "NX").Loop("j", "NY").
		Stmt("S0", 2).Write("tmp", "i").Read("tmp", "i").
		Read("A", "i", "j").Read("x", "j").Reduction().End().
		End().
		Nest("aty").
		Loop("i", "NX").Loop("j", "NY").
		Stmt("S1", 2).Write("y", "j").Read("y", "j").
		Read("A", "i", "j").Read("tmp", "i").Reduction().End().
		End().
		Build()
}

// bicg: s = r*A; q = A*p (BiCG sub-kernel of BiCGStab). The two reductions
// are loop-distributed, as PPCG does, so each nest has one parallel loop.
func bicgKernel() *Kernel {
	return NewBuilder("bicg", map[string]int64{"NX": 8000, "NY": 8000}).
		Array("A", "NX", "NY").
		Array("s", "NY").
		Array("q", "NX").
		Array("p", "NY").
		Array("r", "NX").
		Nest("ra").
		Loop("i", "NX").Loop("j", "NY").
		Stmt("S0", 2).Write("s", "j").Read("s", "j").
		Read("r", "i").Read("A", "i", "j").Reduction().End().
		End().
		Nest("ap").
		Loop("i", "NX").Loop("j", "NY").
		Stmt("S1", 2).Write("q", "i").Read("q", "i").
		Read("A", "i", "j").Read("p", "j").Reduction().End().
		End().
		Build()
}

// mvt: x1 = x1 + A*y1; x2 = x2 + A^T*y2.
func mvtKernel() *Kernel {
	return NewBuilder("mvt", map[string]int64{"N": 8000}).
		Array("A", "N", "N").
		Array("x1", "N").
		Array("x2", "N").
		Array("y1", "N").
		Array("y2", "N").
		Nest("mv1").
		Loop("i", "N").Loop("j", "N").
		Stmt("S0", 2).Write("x1", "i").Read("x1", "i").
		Read("A", "i", "j").Read("y1", "j").Reduction().End().
		End().
		Nest("mv2").
		Loop("i", "N").Loop("j", "N").
		Stmt("S1", 2).Write("x2", "i").Read("x2", "i").
		Read("A", "j", "i").Read("y2", "j").Reduction().End().
		End().
		Build()
}

// gemver: A = A + u1*v1^T + u2*v2^T; x = beta*A^T*y + z; w = alpha*A*x.
func gemverKernel() *Kernel {
	return NewBuilder("gemver", map[string]int64{"N": 8000}).
		Array("A", "N", "N").
		Array("u1", "N").Array("v1", "N").
		Array("u2", "N").Array("v2", "N").
		Array("x", "N").Array("y", "N").Array("z", "N").
		Array("w", "N").
		Nest("rank2update").
		Loop("i", "N").Loop("j", "N").
		Stmt("S0", 4).Write("A", "i", "j").Read("A", "i", "j").
		Read("u1", "i").Read("v1", "j").
		Read("u2", "i").Read("v2", "j").End().
		End().
		Nest("atx").
		Loop("i", "N").Loop("j", "N").
		Stmt("S1", 2).Write("x", "i").Read("x", "i").
		Read("A", "j", "i").Read("y", "j").Reduction().End().
		End().
		Nest("xplusz").
		Loop("i", "N").
		Stmt("S2", 1).Write("x", "i").Read("x", "i").Read("z", "i").End().
		End().
		Nest("ax").
		Loop("i", "N").Loop("j", "N").
		Stmt("S3", 2).Write("w", "i").Read("w", "i").
		Read("A", "i", "j").Read("x", "j").Reduction().End().
		End().
		Build()
}

// covariance: mean, center, cov = data^T*data / (N-1).
func covarianceKernel() *Kernel {
	return NewBuilder("covariance", map[string]int64{"M": 2600, "N": 2600}).
		Array("data", "N", "M").
		Array("mean", "M").
		Array("cov", "M", "M").
		Nest("mean").
		Loop("j", "M").Loop("i", "N").
		Stmt("S0", 1).Write("mean", "j").Read("mean", "j").
		Read("data", "i", "j").Reduction().End().
		End().
		Nest("center").
		Loop("i", "N").Loop("j", "M").
		Stmt("S1", 1).Write("data", "i", "j").Read("data", "i", "j").
		Read("mean", "j").End().
		End().
		Nest("cov").
		Loop("i", "M").Loop("j", "M").Loop("k", "N").
		Stmt("S2", 2).Write("cov", "i", "j").Read("cov", "i", "j").
		Read("data", "k", "i").Read("data", "k", "j").Reduction().End().
		End().
		Build()
}

// correlation: covariance with per-column standard deviation normalization.
func correlationKernel() *Kernel {
	return NewBuilder("correlation", map[string]int64{"M": 2600, "N": 2600}).
		Array("data", "N", "M").
		Array("mean", "M").
		Array("stddev", "M").
		Array("corr", "M", "M").
		Nest("mean").
		Loop("j", "M").Loop("i", "N").
		Stmt("S0", 1).Write("mean", "j").Read("mean", "j").
		Read("data", "i", "j").Reduction().End().
		End().
		Nest("stddev").
		Loop("j", "M").Loop("i", "N").
		Stmt("S1", 3).Write("stddev", "j").Read("stddev", "j").
		Read("data", "i", "j").Read("mean", "j").Reduction().End().
		End().
		Nest("center").
		Loop("i", "N").Loop("j", "M").
		Stmt("S2", 2).Write("data", "i", "j").Read("data", "i", "j").
		Read("mean", "j").Read("stddev", "j").End().
		End().
		Nest("corr").
		Loop("i", "M").Loop("j", "M").Loop("k", "N").
		Stmt("S3", 2).Write("corr", "i", "j").Read("corr", "i", "j").
		Read("data", "k", "i").Read("data", "k", "j").Reduction().End().
		End().
		Build()
}

// jacobi-1d: T time steps of a 3-point stencil. PPCG leaves the time loop
// on the host and launches one kernel per space sweep (no time-tiling,
// Sec. V-B), so each space nest carries Repeat(T).
func jacobi1DKernel() *Kernel {
	i := NewIter("i")
	return NewBuilder("jacobi-1d", map[string]int64{"N": 400000, "T": 500}).
		Array("A", "N").
		Array("B", "N").
		Nest("update").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("N").AddConst(-1)).
		Stmt("S0", 3).WriteExpr("B", i).
		ReadExpr("A", i.AddConst(-1)).ReadExpr("A", i).ReadExpr("A", i.AddConst(1)).End().
		End().
		Nest("copy").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("N").AddConst(-1)).
		Stmt("S1", 1).WriteExpr("A", i).ReadExpr("B", i).End().
		End().
		Build()
}

// jacobi-2d: T time steps of a 5-point stencil (two launches per step).
func jacobi2DKernel() *Kernel {
	i, j := NewIter("i"), NewIter("j")
	return NewBuilder("jacobi-2d", map[string]int64{"N": 2800, "T": 100}).
		Array("A", "N", "N").
		Array("B", "N", "N").
		Nest("update").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("N").AddConst(-1)).
		LoopExpr("j", NewConst(1), NewParam("N").AddConst(-1)).
		Stmt("S0", 5).WriteExpr("B", i, j).
		ReadExpr("A", i, j).
		ReadExpr("A", i, j.AddConst(-1)).ReadExpr("A", i, j.AddConst(1)).
		ReadExpr("A", i.AddConst(-1), j).ReadExpr("A", i.AddConst(1), j).End().
		End().
		Nest("copy").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("N").AddConst(-1)).
		LoopExpr("j", NewConst(1), NewParam("N").AddConst(-1)).
		Stmt("S1", 1).WriteExpr("A", i, j).ReadExpr("B", i, j).End().
		End().
		Build()
}

// fdtd-2d: 2-D finite-difference time-domain (electromagnetic) kernel;
// three field-update launches per time step.
func fdtd2DKernel() *Kernel {
	i, j := NewIter("i"), NewIter("j")
	return NewBuilder("fdtd-2d", map[string]int64{"NX": 2000, "NY": 2000, "T": 100}).
		Array("ex", "NX", "NY").
		Array("ey", "NX", "NY").
		Array("hz", "NX", "NY").
		Nest("ey").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("NX").AddConst(-1)).
		LoopExpr("j", NewConst(1), NewParam("NY").AddConst(-1)).
		Stmt("Sey", 2).WriteExpr("ey", i, j).ReadExpr("ey", i, j).
		ReadExpr("hz", i, j).ReadExpr("hz", i.AddConst(-1), j).End().
		End().
		Nest("ex").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("NX").AddConst(-1)).
		LoopExpr("j", NewConst(1), NewParam("NY").AddConst(-1)).
		Stmt("Sex", 2).WriteExpr("ex", i, j).ReadExpr("ex", i, j).
		ReadExpr("hz", i, j).ReadExpr("hz", i, j.AddConst(-1)).End().
		End().
		Nest("hz").Repeat("T").
		LoopExpr("i", NewConst(1), NewParam("NX").AddConst(-1)).
		LoopExpr("j", NewConst(1), NewParam("NY").AddConst(-1)).
		Stmt("Shz", 6).WriteExpr("hz", i, j).ReadExpr("hz", i, j).
		ReadExpr("ex", i, j.AddConst(1)).ReadExpr("ex", i, j).
		ReadExpr("ey", i.AddConst(1), j).ReadExpr("ey", i, j).End().
		End().
		Build()
}

// fdtd-apml: 3-D anisotropic perfectly-matched-layer FDTD update
// (Polybench's fdtd-apml main loop, simplified to its dominant H-field
// update structure).
func fdtdAPMLKernel() *Kernel {
	iz, iy, ix := NewIter("iz"), NewIter("iy"), NewIter("ix")
	return NewBuilder("fdtd-apml", map[string]int64{"CZ": 512, "CYM": 512, "CXM": 512}).
		Array("Bza", "CZ", "CYM", "CXM").
		// The E-field arrays carry Polybench's +1 halo padding on the
		// offset-accessed dimensions (Ex[iz][iy+1][ix], Ey[iz][iy][ix+1]).
		ArrayExpr("Ex", NewParam("CZ"), NewParam("CYM").AddConst(1), NewParam("CXM")).
		ArrayExpr("Ey", NewParam("CZ"), NewParam("CYM"), NewParam("CXM").AddConst(1)).
		Array("Hz", "CZ", "CYM", "CXM").
		Array("czm", "CZ").
		Array("czp", "CZ").
		Nest("hfield").
		Loop("iz", "CZ").Loop("iy", "CYM").Loop("ix", "CXM").
		Stmt("S0", 9).WriteExpr("Bza", iz, iy, ix).ReadExpr("Bza", iz, iy, ix).
		ReadExpr("Ex", iz, iy.AddConst(1), ix).ReadExpr("Ex", iz, iy, ix).
		ReadExpr("Ey", iz, iy, ix.AddConst(1)).ReadExpr("Ey", iz, iy, ix).
		ReadExpr("czm", iz).ReadExpr("czp", iz).End().
		Stmt("S1", 4).WriteExpr("Hz", iz, iy, ix).ReadExpr("Hz", iz, iy, ix).
		ReadExpr("Bza", iz, iy, ix).ReadExpr("czp", iz).End().
		End().
		Build()
}

// doitgen: multi-resolution analysis kernel, sum[r][q][p] = A[r][q][s]*C4[s][p].
func doitgenKernel() *Kernel {
	return NewBuilder("doitgen", map[string]int64{"NQ": 128, "NR": 128, "NP": 128}).
		Array("A", "NR", "NQ", "NP").
		Array("C4", "NP", "NP").
		Array("sum", "NR", "NQ", "NP").
		Nest("mra").
		Loop("r", "NR").Loop("q", "NQ").Loop("p", "NP").Loop("s", "NP").
		Stmt("S0", 2).Write("sum", "r", "q", "p").Read("sum", "r", "q", "p").
		Read("A", "r", "q", "s").Read("C4", "s", "p").Reduction().End().
		End().
		Nest("copy").
		Loop("r", "NR").Loop("q", "NQ").Loop("p", "NP").
		Stmt("S1", 1).Write("A", "r", "q", "p").Read("sum", "r", "q", "p").End().
		End().
		Build()
}

// trmm: triangular matrix multiply, B = alpha*A*B (rectangular
// approximation of the triangular iteration space, as PPCG's rectangular
// tiling sees it).
func trmmKernel() *Kernel {
	return NewBuilder("trmm", map[string]int64{"N": 4000}).
		Array("A", "N", "N").
		Array("B", "N", "N").
		Nest("trmm").
		Loop("i", "N").Loop("j", "N").Loop("k", "N").
		Stmt("S0", 2).Write("B", "i", "j").Read("B", "i", "j").
		Read("A", "i", "k").Read("B", "k", "j").Reduction().End().
		End().
		Build()
}

// gesummv: y = alpha*A*x + beta*B*x (two simultaneous matrix-vector
// products).
func gesummvKernel() *Kernel {
	return NewBuilder("gesummv", map[string]int64{"N": 8000}).
		Array("A", "N", "N").
		Array("B", "N", "N").
		Array("x", "N").
		Array("y", "N").
		Nest("sum").
		Loop("i", "N").Loop("j", "N").
		Stmt("S0", 4).Write("y", "i").Read("y", "i").
		Read("A", "i", "j").Read("B", "i", "j").Read("x", "j").Reduction().End().
		End().
		Build()
}

// conv-2d: dense 2-D convolution with a KW x KW kernel window (4-D nest),
// the computer-vision kernel of Sec. V-D.
func conv2DKernel() *Kernel {
	i, j, p, q := NewIter("i"), NewIter("j"), NewIter("p"), NewIter("q")
	kw := NewParam("KW")
	return NewBuilder("conv-2d", map[string]int64{"NI": 4096, "NJ": 4096, "KW": 9}).
		ArrayExpr("Out", NewParam("NI"), NewParam("NJ")).
		ArrayExpr("In", NewParam("NI").Add(kw), NewParam("NJ").Add(kw)).
		ArrayExpr("W", kw, kw).
		Nest("conv").
		Loop("i", "NI").Loop("j", "NJ").Loop("p", "KW").Loop("q", "KW").
		Stmt("S0", 2).WriteExpr("Out", i, j).ReadExpr("Out", i, j).
		ReadExpr("In", i.Add(p), j.Add(q)).ReadExpr("W", p, q).Reduction().End().
		End().
		Build()
}

// heat-3d: T time steps of a 7-point 3-D heat stencil. The paper treats
// this as a 4-D problem (time + 3 space dims); the time loop stays on the
// host as Repeat(T).
func heat3DKernel() *Kernel {
	i, j, k := NewIter("i"), NewIter("j"), NewIter("k")
	nm1 := NewParam("N").AddConst(-1)
	return NewBuilder("heat-3d", map[string]int64{"N": 200, "T": 100}).
		Array("A", "N", "N", "N").
		Array("B", "N", "N", "N").
		Nest("update").Repeat("T").
		LoopExpr("i", NewConst(1), nm1).
		LoopExpr("j", NewConst(1), nm1).
		LoopExpr("k", NewConst(1), nm1).
		Stmt("S0", 10).WriteExpr("B", i, j, k).
		ReadExpr("A", i, j, k).
		ReadExpr("A", i.AddConst(-1), j, k).ReadExpr("A", i.AddConst(1), j, k).
		ReadExpr("A", i, j.AddConst(-1), k).ReadExpr("A", i, j.AddConst(1), k).
		ReadExpr("A", i, j, k.AddConst(-1)).ReadExpr("A", i, j, k.AddConst(1)).End().
		End().
		Nest("copy").Repeat("T").
		LoopExpr("i", NewConst(1), nm1).
		LoopExpr("j", NewConst(1), nm1).
		LoopExpr("k", NewConst(1), nm1).
		Stmt("S1", 1).WriteExpr("A", i, j, k).ReadExpr("B", i, j, k).End().
		End().
		Build()
}

// mttkrp: matricized tensor times Khatri-Rao product (4-D nest),
// A[i][j] += X[i][k][l] * B[k][j] * C[l][j].
func mttkrpKernel() *Kernel {
	i, j, k, l := NewIter("i"), NewIter("j"), NewIter("k"), NewIter("l")
	return NewBuilder("mttkrp", map[string]int64{"I": 768, "J": 768, "K": 256, "L": 256}).
		Array("A", "I", "J").
		Array("X", "I", "K", "L").
		Array("B", "K", "J").
		Array("C", "L", "J").
		Nest("mttkrp").
		Loop("i", "I").Loop("j", "J").Loop("k", "K").Loop("l", "L").
		Stmt("S0", 3).WriteExpr("A", i, j).ReadExpr("A", i, j).
		ReadExpr("X", i, k, l).ReadExpr("B", k, j).ReadExpr("C", l, j).Reduction().End().
		End().
		Build()
}
