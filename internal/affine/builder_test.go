package affine

import (
	"strings"
	"testing"
)

// The builder API has two exits: Build panics on malformed kernels (the
// static catalog, where a construction error is a programming bug) and
// BuildChecked reports the same problems as errors (untrusted input).
// These tests pin that the checked path actually surfaces each class of
// malformation instead of handing a broken kernel to the pipeline.

func TestBuildCheckedDuplicateIterator(t *testing.T) {
	_, err := NewBuilder("dup", map[string]int64{"N": 8}).
		Array("A", "N").
		Nest("n").
		Loop("i", "N").Loop("i", "N").
		Stmt("S0", 1).Write("A", "i").End().
		End().
		BuildChecked()
	if err == nil || !strings.Contains(err.Error(), "i") {
		t.Fatalf("duplicate iterator not reported: %v", err)
	}
}

func TestBuildCheckedUndeclaredArray(t *testing.T) {
	_, err := NewBuilder("ghost", map[string]int64{"N": 8}).
		Nest("n").
		Loop("i", "N").
		Stmt("S0", 1).Write("A", "i").End().
		End().
		BuildChecked()
	if err == nil || !strings.Contains(err.Error(), "A") {
		t.Fatalf("undeclared array not reported: %v", err)
	}
}

func TestBuildCheckedUndeclaredParam(t *testing.T) {
	_, err := NewBuilder("noparam", map[string]int64{"N": 8}).
		Array("A", "N").
		Nest("n").
		Loop("i", "M"). // M never declared
		Stmt("S0", 1).Write("A", "i").End().
		End().
		BuildChecked()
	if err == nil {
		t.Fatal("undeclared loop-bound parameter not reported")
	}
}

func TestBuildCheckedEmptyNest(t *testing.T) {
	_, err := NewBuilder("empty", map[string]int64{"N": 8}).
		Array("A", "N").
		Nest("n").
		Loop("i", "N").
		End().
		BuildChecked()
	if err == nil {
		t.Fatal("nest without statements not reported")
	}
}

func TestBuildCheckedValidKernel(t *testing.T) {
	k, err := NewBuilder("ok", map[string]int64{"N": 8}).
		Array("A", "N").
		Nest("n").
		Loop("i", "N").
		Stmt("S0", 1).Write("A", "i").End().
		End().
		BuildChecked()
	if err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("built kernel fails validation: %v", err)
	}
}

func TestBuildPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on a malformed kernel")
		}
	}()
	NewBuilder("bad", map[string]int64{"N": 8}).
		Nest("n").
		Loop("i", "N").
		Stmt("S0", 1).Write("Ghost", "i").End().
		End().
		Build()
}
