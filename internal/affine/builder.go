package affine

// Builder incrementally constructs a Kernel. It exists so the kernel
// library (and user code) can describe loop nests compactly without
// hand-assembling Expr maps.
type Builder struct {
	k Kernel
}

// NewBuilder starts a kernel with the given name and default parameters.
func NewBuilder(name string, params map[string]int64) *Builder {
	ps := make(map[string]int64, len(params))
	for k, v := range params {
		ps[k] = v
	}
	return &Builder{k: Kernel{Name: name, Params: ps}}
}

// Array declares an array whose dimension sizes are parameter names.
func (b *Builder) Array(name string, dimParams ...string) *Builder {
	dims := make([]Expr, len(dimParams))
	for i, p := range dimParams {
		dims[i] = NewParam(p)
	}
	b.k.Arrays = append(b.k.Arrays, Array{Name: name, Dims: dims})
	return b
}

// ArrayExpr declares an array with explicit dimension expressions.
func (b *Builder) ArrayExpr(name string, dims ...Expr) *Builder {
	b.k.Arrays = append(b.k.Arrays, Array{Name: name, Dims: dims})
	return b
}

// NestBuilder constructs one loop nest of the kernel.
type NestBuilder struct {
	b *Builder
	n Nest
}

// Nest starts a new loop nest with the given name.
func (b *Builder) Nest(name string) *NestBuilder {
	return &NestBuilder{b: b, n: Nest{Name: name}}
}

// Loop appends a loop `for it = 0; it < <param>; it++`.
func (nb *NestBuilder) Loop(iter, upperParam string) *NestBuilder {
	nb.n.Loops = append(nb.n.Loops, Loop{Name: iter, Upper: NewParam(upperParam)})
	return nb
}

// LoopExpr appends a loop with explicit bounds.
func (nb *NestBuilder) LoopExpr(iter string, lower, upper Expr) *NestBuilder {
	nb.n.Loops = append(nb.n.Loops, Loop{Name: iter, Lower: lower, Upper: upper})
	return nb
}

// Repeat marks the nest as launched <param> times from a sequential host
// loop (e.g. a stencil time loop that PPCG does not tile).
func (nb *NestBuilder) Repeat(param string) *NestBuilder {
	nb.n.Repeat = NewParam(param)
	return nb
}

// StmtBuilder constructs one statement of the nest body.
type StmtBuilder struct {
	nb *NestBuilder
	s  Statement
}

// Stmt starts a statement with a name and per-iteration flop count.
func (nb *NestBuilder) Stmt(name string, flops int64) *StmtBuilder {
	return &StmtBuilder{nb: nb, s: Statement{Name: name, FlopsPerIter: flops}}
}

// sub converts iterator-or-offset shorthand into subscript expressions.
// Each entry is either an iterator name ("i"), an iterator with offset
// ("i+1" is not parsed here — use RefExpr for offsets).
func subExprs(iters []string) []Expr {
	out := make([]Expr, len(iters))
	for i, it := range iters {
		out[i] = NewIter(it)
	}
	return out
}

// Write adds a store reference subscripted directly by iterator names.
func (sb *StmtBuilder) Write(array string, iters ...string) *StmtBuilder {
	sb.s.Refs = append(sb.s.Refs, Ref{Array: array, Subscripts: subExprs(iters), Write: true})
	return sb
}

// Read adds a load reference subscripted directly by iterator names.
func (sb *StmtBuilder) Read(array string, iters ...string) *StmtBuilder {
	sb.s.Refs = append(sb.s.Refs, Ref{Array: array, Subscripts: subExprs(iters)})
	return sb
}

// WriteExpr adds a store reference with explicit subscript expressions.
func (sb *StmtBuilder) WriteExpr(array string, subs ...Expr) *StmtBuilder {
	sb.s.Refs = append(sb.s.Refs, Ref{Array: array, Subscripts: subs, Write: true})
	return sb
}

// ReadExpr adds a load reference with explicit subscript expressions.
func (sb *StmtBuilder) ReadExpr(array string, subs ...Expr) *StmtBuilder {
	sb.s.Refs = append(sb.s.Refs, Ref{Array: array, Subscripts: subs})
	return sb
}

// Reduction marks the statement as an accumulation (X += ...), which makes
// the loops not used by the write target carry a dependence.
func (sb *StmtBuilder) Reduction() *StmtBuilder {
	sb.s.Reduction = true
	return sb
}

// End finishes the statement and returns to the nest builder.
func (sb *StmtBuilder) End() *NestBuilder {
	sb.nb.n.Body = append(sb.nb.n.Body, sb.s)
	return sb.nb
}

// End finishes the nest and returns to the kernel builder.
func (nb *NestBuilder) End() *Builder {
	nb.b.k.Nests = append(nb.b.k.Nests, nb.n)
	return nb.b
}

// Build validates and returns the kernel. It panics on malformed kernels —
// the builder is used to define the static kernel library, where a
// construction error is a programming bug. Code assembling kernels from
// untrusted input should use BuildChecked instead.
func (b *Builder) Build() *Kernel {
	k, err := b.BuildChecked()
	if err != nil {
		panic(err)
	}
	return k
}

// BuildChecked validates and returns the kernel, reporting malformed
// constructions — duplicate iterator names in a nest, references to
// undeclared arrays or parameters, subscript/rank mismatches — as an
// error instead of panicking.
func (b *Builder) BuildChecked() (*Kernel, error) {
	k := b.k
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &k, nil
}
