package affine

import (
	"strings"
	"testing"
)

func TestPrecision(t *testing.T) {
	if FP32.Bytes() != 4 || FP64.Bytes() != 8 {
		t.Fatal("precision byte widths wrong")
	}
	if FP32.Factor() != 1 || FP64.Factor() != 2 {
		t.Fatal("FP factors wrong (Sec. IV-I)")
	}
	if FP32.String() != "FP32" || FP64.String() != "FP64" {
		t.Fatal("precision names wrong")
	}
}

func TestLoopExtent(t *testing.T) {
	l := Loop{Name: "i", Lower: NewConst(1), Upper: NewParam("N").AddConst(-1)}
	if got := l.Extent(map[string]int64{"N": 10}); got != 8 {
		t.Fatalf("Extent = %d, want 8", got)
	}
	empty := Loop{Name: "i", Lower: NewConst(5), Upper: NewConst(3)}
	if got := empty.Extent(nil); got != 0 {
		t.Fatalf("empty loop Extent = %d, want 0", got)
	}
}

func TestRefStride1Iter(t *testing.T) {
	r := Ref{Array: "A", Subscripts: []Expr{NewIter("i"), NewIter("j")}}
	if got := r.Stride1Iter(); got != "j" {
		t.Fatalf("Stride1Iter = %q, want j", got)
	}
	// Transposed access: fastest-varying walked by i.
	rt := Ref{Array: "A", Subscripts: []Expr{NewIter("j"), NewIter("i")}}
	if got := rt.Stride1Iter(); got != "i" {
		t.Fatalf("Stride1Iter = %q, want i", got)
	}
	// Strided access is not stride-1.
	rs := Ref{Array: "A", Subscripts: []Expr{NewIter("i"), NewIter("j").Scale(2)}}
	if got := rs.Stride1Iter(); got != "" {
		t.Fatalf("Stride1Iter = %q, want empty", got)
	}
}

func TestGemmShape(t *testing.T) {
	k := MustLookup("gemm")
	if k.MaxDepth() != 3 {
		t.Fatalf("gemm depth = %d, want 3", k.MaxDepth())
	}
	params := map[string]int64{"NI": 10, "NJ": 20, "NK": 30}
	if got := k.Flops(params); got != 2*10*20*30 {
		t.Fatalf("gemm flops = %d, want %d", got, 2*10*20*30)
	}
	// Footprint: C(10x20) + A(10x30) + B(30x20) doubles.
	want := int64(10*20+10*30+30*20) * 8
	if got := k.FootprintBytes(params, FP64); got != want {
		t.Fatalf("gemm footprint = %d, want %d", got, want)
	}
}

func TestWithParamsDoesNotMutate(t *testing.T) {
	k := MustLookup("gemm")
	orig := k.Params["NI"]
	k2 := k.WithParams(map[string]int64{"NI": 1})
	if k.Params["NI"] != orig {
		t.Fatal("WithParams mutated the original kernel")
	}
	if k2.Params["NI"] != 1 {
		t.Fatal("WithParams did not apply the override")
	}
	if k2.Params["NJ"] != k.Params["NJ"] {
		t.Fatal("WithParams dropped an existing parameter")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Undeclared array.
	bad := &Kernel{
		Name: "bad",
		Nests: []Nest{{
			Name:  "n",
			Loops: []Loop{{Name: "i", Upper: NewConst(4)}},
			Body: []Statement{{
				Name: "S", Refs: []Ref{{Array: "ghost", Subscripts: []Expr{NewIter("i")}}},
			}},
		}},
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("Validate = %v, want undeclared-array error", err)
	}

	// Iterator not bound by the nest.
	bad2 := &Kernel{
		Name:   "bad2",
		Arrays: []Array{{Name: "A", Dims: []Expr{NewConst(4)}}},
		Nests: []Nest{{
			Name:  "n",
			Loops: []Loop{{Name: "i", Upper: NewConst(4)}},
			Body: []Statement{{
				Name: "S", Refs: []Ref{{Array: "A", Subscripts: []Expr{NewIter("z")}}},
			}},
		}},
	}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "iterator") {
		t.Fatalf("Validate = %v, want unbound-iterator error", err)
	}

	// Rank mismatch.
	bad3 := &Kernel{
		Name:   "bad3",
		Arrays: []Array{{Name: "A", Dims: []Expr{NewConst(4), NewConst(4)}}},
		Nests: []Nest{{
			Name:  "n",
			Loops: []Loop{{Name: "i", Upper: NewConst(4)}},
			Body: []Statement{{
				Name: "S", Refs: []Ref{{Array: "A", Subscripts: []Expr{NewIter("i")}}},
			}},
		}},
	}
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("Validate = %v, want rank error", err)
	}
}

func TestKernelString(t *testing.T) {
	s := MustLookup("gemm").String()
	for _, want := range []string{"kernel gemm", "for (i", "for (k", "C[i][j]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestNestHelpers(t *testing.T) {
	k := MustLookup("gemm")
	n := k.Nests[0]
	if n.LoopIndex("k") != 2 || n.LoopIndex("zz") != -1 {
		t.Fatal("LoopIndex wrong")
	}
	if got := n.Iterations(map[string]int64{"NI": 2, "NJ": 3, "NK": 4}); got != 24 {
		t.Fatalf("Iterations = %d, want 24", got)
	}
	if len(n.Body[0].WriteRefs()) != 1 {
		t.Fatal("gemm S0 should have exactly one write ref")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := MustLookup("gemm")
	cp := orig.Clone()
	// Mutate every layer of the copy.
	cp.Params["NI"] = 1
	cp.Nests[0].Loops[0], cp.Nests[0].Loops[1] = cp.Nests[0].Loops[1], cp.Nests[0].Loops[0]
	cp.Nests[0].Body[0].Refs[0].Write = false
	if orig.Params["NI"] == 1 {
		t.Fatal("Clone shares the parameter map")
	}
	if orig.Nests[0].Loops[0].Name != "i" {
		t.Fatal("Clone shares the loop slice")
	}
	if !orig.Nests[0].Body[0].Refs[0].Write {
		t.Fatal("Clone shares the reference slice")
	}
}
