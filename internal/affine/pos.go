package affine

import "fmt"

// Pos is a source position (1-based line and column) carried from the
// kernel DSL parser into the IR, so diagnostics (internal/lint, parse
// errors) can point at the offending source. The zero Pos means "no
// source position" — kernels constructed through the Builder have none.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position carries real source information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the zero position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}
