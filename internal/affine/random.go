package affine

import (
	"fmt"
	"math/rand"
)

// RandomKernel generates a random valid affine kernel from a seeded
// source: 1-3 rectangular nests of depth 1-4 over shared arrays, with
// pointwise and reduction statements, optional stencil offsets and
// occasional transposed accesses. It exists for robustness testing: the
// whole pipeline (analysis, model generation, mapping, simulation) must
// handle anything this returns.
func RandomKernel(r *rand.Rand) *Kernel {
	k := &Kernel{
		Name:   fmt.Sprintf("rand%04d", r.Intn(10000)),
		Params: map[string]int64{},
	}

	// Parameters: one size per potential loop depth.
	paramNames := []string{"P0", "P1", "P2", "P3"}
	for _, p := range paramNames {
		k.Params[p] = int64(64 + r.Intn(8)*64)
	}

	iterNames := []string{"i", "j", "k", "l"}
	nNests := 1 + r.Intn(3)
	arrayID := 0

	for ni := 0; ni < nNests; ni++ {
		depth := 1 + r.Intn(4)
		nest := Nest{Name: fmt.Sprintf("n%d", ni)}
		for d := 0; d < depth; d++ {
			nest.Loops = append(nest.Loops, Loop{
				Name:  iterNames[d],
				Lower: NewConst(int64(r.Intn(2))),
				Upper: NewParam(paramNames[d]),
			})
		}

		// One write target indexed by a subset of iterators (always
		// including the innermost parallel candidate to keep rank >= 1).
		nRefs := 2 + r.Intn(3)
		st := Statement{Name: "S0", FlopsPerIter: int64(1 + r.Intn(4))}

		writeRank := 1 + r.Intn(depth)
		wSubs := make([]Expr, writeRank)
		for p := 0; p < writeRank; p++ {
			wSubs[p] = NewIter(iterNames[p])
		}
		if writeRank < depth {
			st.Reduction = true
		}
		wName := fmt.Sprintf("W%d", arrayID)
		arrayID++
		k.Arrays = append(k.Arrays, arrayFor(wName, wSubs, paramNames))
		st.Refs = append(st.Refs, Ref{Array: wName, Subscripts: wSubs, Write: true})
		if st.Reduction {
			st.Refs = append(st.Refs, Ref{Array: wName, Subscripts: wSubs})
		}

		for ri := 0; ri < nRefs; ri++ {
			rank := 1 + r.Intn(depth)
			subs := make([]Expr, rank)
			perm := r.Perm(depth)[:rank]
			for p := 0; p < rank; p++ {
				e := NewIter(iterNames[perm[p]])
				if r.Intn(4) == 0 {
					e = e.AddConst(int64(r.Intn(3) - 1)) // stencil offset
				}
				subs[p] = e
			}
			name := fmt.Sprintf("R%d", arrayID)
			arrayID++
			k.Arrays = append(k.Arrays, arrayFor(name, subs, paramNames))
			st.Refs = append(st.Refs, Ref{Array: name, Subscripts: subs})
		}
		nest.Body = append(nest.Body, st)
		k.Nests = append(k.Nests, nest)
	}
	return k
}

// arrayFor sizes an array generously enough for the subscripts' reachable
// range (parameter bound + slack for offsets).
func arrayFor(name string, subs []Expr, paramNames []string) Array {
	dims := make([]Expr, len(subs))
	for i := range subs {
		// Upper-bound each dimension by the largest parameter plus
		// offset slack; precise sizing is irrelevant to the analyses.
		dims[i] = NewParam(paramNames[len(paramNames)-1]).Add(NewParam(paramNames[0])).AddConst(4)
	}
	return Array{Name: name, Dims: dims}
}
