package affine

import (
	"fmt"
	"math/rand"
)

// RandomKernel generates a random valid affine kernel from a seeded
// source: 1-3 rectangular nests of depth 1-4 over shared arrays, with
// pointwise and reduction statements, optional stencil offsets and
// occasional transposed accesses. It exists for robustness testing: the
// whole pipeline (analysis, model generation, mapping, simulation) must
// handle anything this returns.
func RandomKernel(r *rand.Rand) *Kernel {
	k := &Kernel{
		Name:   fmt.Sprintf("rand%04d", r.Intn(10000)),
		Params: map[string]int64{},
	}

	// Parameters: one size per potential loop depth.
	paramNames := []string{"P0", "P1", "P2", "P3"}
	for _, p := range paramNames {
		k.Params[p] = int64(64 + r.Intn(8)*64)
	}

	iterNames := []string{"i", "j", "k", "l"}
	nNests := 1 + r.Intn(3)
	arrayID := 0

	for ni := 0; ni < nNests; ni++ {
		depth := 1 + r.Intn(4)
		nest := Nest{Name: fmt.Sprintf("n%d", ni)}
		lowers := make([]int64, depth)
		for d := 0; d < depth; d++ {
			lowers[d] = int64(r.Intn(2))
			nest.Loops = append(nest.Loops, Loop{
				Name:  iterNames[d],
				Lower: NewConst(lowers[d]),
				Upper: NewParam(paramNames[d]),
			})
		}

		// One write target indexed by a subset of iterators (always
		// including the innermost parallel candidate to keep rank >= 1).
		nRefs := 2 + r.Intn(3)
		st := Statement{Name: "S0", FlopsPerIter: int64(1 + r.Intn(4))}

		writeRank := 1 + r.Intn(depth)
		wSubs := make([]Expr, writeRank)
		wDims := make([]Expr, writeRank)
		for p := 0; p < writeRank; p++ {
			wSubs[p] = NewIter(iterNames[p])
			wDims[p] = dimFor(paramNames[p])
		}
		if writeRank < depth {
			st.Reduction = true
		}
		wName := fmt.Sprintf("W%d", arrayID)
		arrayID++
		k.Arrays = append(k.Arrays, Array{Name: wName, Dims: wDims})
		st.Refs = append(st.Refs, Ref{Array: wName, Subscripts: wSubs, Write: true})
		if st.Reduction {
			st.Refs = append(st.Refs, Ref{Array: wName, Subscripts: wSubs})
		}

		for ri := 0; ri < nRefs; ri++ {
			rank := 1 + r.Intn(depth)
			subs := make([]Expr, rank)
			dims := make([]Expr, rank)
			perm := r.Perm(depth)[:rank]
			for p := 0; p < rank; p++ {
				e := NewIter(iterNames[perm[p]])
				if r.Intn(4) == 0 {
					// Stencil offset, clamped so the subscript never
					// drops below the loop's lower bound.
					off := int64(r.Intn(3) - 1)
					if off < -lowers[perm[p]] {
						off = -lowers[perm[p]]
					}
					e = e.AddConst(off)
				}
				subs[p] = e
				dims[p] = dimFor(paramNames[perm[p]])
			}
			name := fmt.Sprintf("R%d", arrayID)
			arrayID++
			k.Arrays = append(k.Arrays, Array{Name: name, Dims: dims})
			st.Refs = append(st.Refs, Ref{Array: name, Subscripts: subs})
		}
		nest.Body = append(nest.Body, st)
		k.Nests = append(k.Nests, nest)
	}
	return k
}

// dimFor sizes an array dimension by the parameter bounding the iterator
// that indexes it, plus slack so positive stencil offsets stay in bounds.
func dimFor(param string) Expr {
	return NewParam(param).AddConst(4)
}
