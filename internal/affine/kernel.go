package affine

import (
	"fmt"
	"sort"
	"strings"
)

// Precision selects the floating-point width of all kernel data.
type Precision int

const (
	// FP32 is IEEE single precision (4 bytes).
	FP32 Precision = iota
	// FP64 is IEEE double precision (8 bytes).
	FP64
)

// Bytes returns the element size in bytes.
func (p Precision) Bytes() int64 {
	if p == FP64 {
		return 8
	}
	return 4
}

// Factor returns the paper's FP_factor (Sec. IV-I): 1 for single precision,
// 2 for double precision.
func (p Precision) Factor() int64 {
	if p == FP64 {
		return 2
	}
	return 1
}

func (p Precision) String() string {
	if p == FP64 {
		return "FP64"
	}
	return "FP32"
}

// Loop is one level of a rectangular loop nest: name, inclusive lower bound,
// exclusive upper bound, unit step. Bounds may reference parameters but not
// iterators (rectangular domains only).
type Loop struct {
	Name  string
	Lower Expr
	Upper Expr
	// Pos is the source position of the loop header (zero when the
	// kernel was not parsed from DSL text).
	Pos Pos
}

// Extent returns the trip count of the loop under the given parameter
// bindings.
func (l Loop) Extent(params map[string]int64) int64 {
	n := l.Upper.Eval(nil, params) - l.Lower.Eval(nil, params)
	if n < 0 {
		return 0
	}
	return n
}

// Array describes a data array: name and per-dimension sizes (parametric).
type Array struct {
	Name string
	Dims []Expr
	// Pos is the source position of the declaration (zero when built
	// programmatically).
	Pos Pos
}

// Elements returns the total number of elements under the parameter
// bindings.
func (a Array) Elements(params map[string]int64) int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d.Eval(nil, params)
	}
	return n
}

// Ref is a single array reference inside a statement.
type Ref struct {
	Array string
	// Subscripts are affine expressions; Subscripts[len-1] is the
	// fastest-varying (innermost / contiguous) dimension.
	Subscripts []Expr
	// Write marks the reference as a store target.
	Write bool
	// Pos is the source position of the reference (zero when built
	// programmatically).
	Pos Pos
}

// UsesIter reports whether any subscript uses the iterator.
func (r Ref) UsesIter(name string) bool {
	for _, s := range r.Subscripts {
		if s.UsesIter(name) {
			return true
		}
	}
	return false
}

// FastestVarying returns the last subscript expression, or the zero Expr if
// the reference is scalar.
func (r Ref) FastestVarying() Expr {
	if len(r.Subscripts) == 0 {
		return Expr{}
	}
	return r.Subscripts[len(r.Subscripts)-1]
}

// Stride1Iters returns, sorted, every iterator that walks the
// fastest-varying subscript with coefficient ±1. Each such iterator yields
// contiguous (coalescable / vectorizable) accesses; subscripts like
// In[i+p][j+q] have two (j and q).
func (r Ref) Stride1Iters() []string {
	fv := r.FastestVarying()
	var out []string
	for name, c := range fv.Iters {
		if c == 1 || c == -1 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Stride1Iter returns the first (sorted) stride-1 iterator, or "" if the
// access has none.
func (r Ref) Stride1Iter() string {
	its := r.Stride1Iters()
	if len(its) == 0 {
		return ""
	}
	return its[0]
}

// HasStride1 reports whether the named iterator walks the fastest-varying
// subscript with unit stride.
func (r Ref) HasStride1(iter string) bool {
	for _, it := range r.Stride1Iters() {
		if it == iter {
			return true
		}
	}
	return false
}

func (r Ref) String() string {
	var b strings.Builder
	b.WriteString(r.Array)
	for _, s := range r.Subscripts {
		fmt.Fprintf(&b, "[%s]", s.String())
	}
	return b.String()
}

// Statement is the atomic unit of computation inside a loop nest body.
type Statement struct {
	Name string
	// Refs lists every array reference the statement makes. Writes first
	// by convention but order is not semantically meaningful.
	Refs []Ref
	// FlopsPerIter counts the floating-point operations one dynamic
	// instance performs (e.g. 2 for a multiply-accumulate).
	FlopsPerIter int64
	// Reduction marks statements of the form X += expr whose write target
	// does not use the innermost reduction iterator(s); such statements
	// carry loop dependences on the missing iterators.
	Reduction bool
	// Pos is the source position of the statement label (zero when built
	// programmatically).
	Pos Pos
}

// WriteRefs returns the store targets of the statement.
func (s Statement) WriteRefs() []Ref {
	var out []Ref
	for _, r := range s.Refs {
		if r.Write {
			out = append(out, r)
		}
	}
	return out
}

// Nest is a perfectly nested rectangular loop nest with one or more
// statements in its innermost body.
//
// Repeat models a sequential outer loop that PPCG leaves on the host side
// (e.g. the time loop of an iterative stencil, which PPCG does not tile —
// Sec. V-B): the nest body is launched Repeat times as separate GPU kernels.
// The zero Expr means "once".
type Nest struct {
	Name   string
	Loops  []Loop
	Body   []Statement
	Repeat Expr
	// Pos is the source position of the nest header (zero when built
	// programmatically).
	Pos Pos
}

// RepeatCount returns how many times the nest is launched under params
// (at least 1).
func (n Nest) RepeatCount(params map[string]int64) int64 {
	zero := Expr{}
	if n.Repeat.Equal(zero) {
		return 1
	}
	r := n.Repeat.Eval(nil, params)
	if r < 1 {
		return 1
	}
	return r
}

// Depth returns the nesting depth.
func (n Nest) Depth() int { return len(n.Loops) }

// LoopIndex returns the position of the named loop, or -1.
func (n Nest) LoopIndex(name string) int {
	for i, l := range n.Loops {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Iterations returns the total number of innermost iterations of the nest
// across all repetitions.
func (n Nest) Iterations(params map[string]int64) int64 {
	total := n.RepeatCount(params)
	for _, l := range n.Loops {
		total *= l.Extent(params)
	}
	return total
}

// IterationsPerLaunch returns the innermost iterations of a single launch.
func (n Nest) IterationsPerLaunch(params map[string]int64) int64 {
	total := int64(1)
	for _, l := range n.Loops {
		total *= l.Extent(params)
	}
	return total
}

// Flops returns the total floating-point operations of the nest.
func (n Nest) Flops(params map[string]int64) int64 {
	per := int64(0)
	for _, s := range n.Body {
		per += s.FlopsPerIter
	}
	return n.Iterations(params) * per
}

// Refs returns all references from all statements in the body.
func (n Nest) Refs() []Ref {
	var out []Ref
	for _, s := range n.Body {
		out = append(out, s.Refs...)
	}
	return out
}

// Kernel is a sequence of loop nests over a shared set of arrays and
// parameters — the unit EATSS selects tile sizes for.
type Kernel struct {
	Name   string
	Params map[string]int64 // default problem sizes, overridable
	Arrays []Array
	Nests  []Nest
}

// Array returns the named array description.
func (k *Kernel) Array(name string) (Array, bool) {
	for _, a := range k.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return Array{}, false
}

// MaxDepth returns the maximum nesting depth across all nests — the paper's
// L (Sec. IV-B).
func (k *Kernel) MaxDepth() int {
	d := 0
	for _, n := range k.Nests {
		if n.Depth() > d {
			d = n.Depth()
		}
	}
	return d
}

// Flops returns the total floating-point work of the kernel under params.
func (k *Kernel) Flops(params map[string]int64) int64 {
	total := int64(0)
	for _, n := range k.Nests {
		total += n.Flops(params)
	}
	return total
}

// FootprintBytes returns the total distinct data footprint of the kernel.
func (k *Kernel) FootprintBytes(params map[string]int64, prec Precision) int64 {
	total := int64(0)
	for _, a := range k.Arrays {
		total += a.Elements(params) * prec.Bytes()
	}
	return total
}

// WithParams returns a shallow copy of the kernel with the parameter map
// replaced by a merged copy (defaults overridden by overrides).
func (k *Kernel) WithParams(overrides map[string]int64) *Kernel {
	out := *k
	merged := make(map[string]int64, len(k.Params))
	for name, v := range k.Params {
		merged[name] = v
	}
	for name, v := range overrides {
		merged[name] = v
	}
	out.Params = merged
	return &out
}

// Validate checks internal consistency: loop names unique per nest, every
// subscript iterator is declared by an enclosing loop, every referenced
// array is declared, every parameter referenced by a bound, dimension,
// repeat count or subscript is declared in Params, and subscript counts
// match array rank.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("affine: kernel has no name")
	}
	if len(k.Nests) == 0 {
		return fmt.Errorf("affine: kernel %q has no loop nests", k.Name)
	}
	checkParams := func(e Expr, where string) error {
		for _, p := range e.ParamNames() {
			if _, ok := k.Params[p]; !ok {
				return fmt.Errorf("affine: kernel %q: %s references undeclared parameter %q",
					k.Name, where, p)
			}
		}
		return nil
	}
	arrays := make(map[string]Array, len(k.Arrays))
	for _, a := range k.Arrays {
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("affine: kernel %q declares array %q twice", k.Name, a.Name)
		}
		arrays[a.Name] = a
		for _, d := range a.Dims {
			if len(d.Iters) != 0 {
				return fmt.Errorf("affine: array %q dimension %s uses a loop iterator", a.Name, d)
			}
			if err := checkParams(d, fmt.Sprintf("array %q dimension", a.Name)); err != nil {
				return err
			}
		}
	}
	for _, n := range k.Nests {
		if err := checkParams(n.Repeat, fmt.Sprintf("nest %q repeat count", n.Name)); err != nil {
			return err
		}
		seen := make(map[string]bool, len(n.Loops))
		for _, l := range n.Loops {
			if seen[l.Name] {
				return fmt.Errorf("affine: nest %q has duplicate loop %q", n.Name, l.Name)
			}
			seen[l.Name] = true
			if len(l.Lower.Iters) != 0 || len(l.Upper.Iters) != 0 {
				return fmt.Errorf("affine: nest %q loop %q has non-rectangular bounds", n.Name, l.Name)
			}
			if err := checkParams(l.Lower, fmt.Sprintf("nest %q loop %q lower bound", n.Name, l.Name)); err != nil {
				return err
			}
			if err := checkParams(l.Upper, fmt.Sprintf("nest %q loop %q upper bound", n.Name, l.Name)); err != nil {
				return err
			}
		}
		if len(n.Body) == 0 {
			return fmt.Errorf("affine: nest %q has an empty body", n.Name)
		}
		for _, st := range n.Body {
			for _, r := range st.Refs {
				a, ok := arrays[r.Array]
				if !ok {
					return fmt.Errorf("affine: nest %q references undeclared array %q", n.Name, r.Array)
				}
				if len(r.Subscripts) != len(a.Dims) {
					return fmt.Errorf("affine: reference %s has %d subscripts; array has rank %d",
						r, len(r.Subscripts), len(a.Dims))
				}
				for _, sub := range r.Subscripts {
					for _, it := range sub.IterNames() {
						if !seen[it] {
							return fmt.Errorf("affine: reference %s uses iterator %q not bound by nest %q",
								r, it, n.Name)
						}
					}
					if err := checkParams(sub, fmt.Sprintf("reference %s subscript", r)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// String renders the kernel as pseudo-C for inspection.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// kernel %s\n", k.Name)
	pnames := make([]string, 0, len(k.Params))
	for name := range k.Params {
		pnames = append(pnames, name)
	}
	sort.Strings(pnames)
	for _, name := range pnames {
		fmt.Fprintf(&b, "// param %s = %d\n", name, k.Params[name])
	}
	for _, n := range k.Nests {
		fmt.Fprintf(&b, "// nest %s\n", n.Name)
		for d, l := range n.Loops {
			indent := strings.Repeat("  ", d)
			fmt.Fprintf(&b, "%sfor (%s = %s; %s < %s; %s++)\n",
				indent, l.Name, l.Lower.String(), l.Name, l.Upper.String(), l.Name)
		}
		indent := strings.Repeat("  ", len(n.Loops))
		for _, st := range n.Body {
			refs := make([]string, len(st.Refs))
			for i, r := range st.Refs {
				refs[i] = r.String()
			}
			fmt.Fprintf(&b, "%s%s: %s // %d flops\n", indent, st.Name, strings.Join(refs, ", "), st.FlopsPerIter)
		}
	}
	return b.String()
}

// Clone returns a deep copy of the kernel: mutating the copy's nests,
// loops or parameters never affects the original (catalog kernels are
// shared singletons, so transforms like scheduling must clone first).
func (k *Kernel) Clone() *Kernel {
	out := &Kernel{Name: k.Name}
	out.Params = make(map[string]int64, len(k.Params))
	for name, v := range k.Params {
		out.Params[name] = v
	}
	out.Arrays = make([]Array, len(k.Arrays))
	for i, a := range k.Arrays {
		out.Arrays[i] = Array{Name: a.Name, Dims: append([]Expr(nil), a.Dims...), Pos: a.Pos}
	}
	out.Nests = make([]Nest, len(k.Nests))
	for i, n := range k.Nests {
		cp := Nest{Name: n.Name, Repeat: n.Repeat, Pos: n.Pos}
		cp.Loops = append([]Loop(nil), n.Loops...)
		cp.Body = make([]Statement, len(n.Body))
		for j, st := range n.Body {
			stc := st
			stc.Refs = append([]Ref(nil), st.Refs...)
			cp.Body[j] = stc
		}
		out.Nests[i] = cp
	}
	return out
}
