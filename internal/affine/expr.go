// Package affine provides a lightweight polyhedral-style intermediate
// representation for affine loop nests: rectangular iteration domains,
// affine array subscripts, and statements. It is the substrate that the
// paper obtains from isl/PPCG; EATSS only needs the structural facts this
// package exposes (which iterators index which references, stride-1
// dimensions, loop bounds), so a rectangular-domain IR is sufficient for
// every kernel in the evaluation.
package affine

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an affine expression over loop iterators and symbolic parameters:
//
//	sum_k coeff_k * iter_k + sum_p coeff_p * param_p + Const
//
// The zero value is the constant 0.
type Expr struct {
	// Iters maps iterator names to integer coefficients. Absent means 0.
	Iters map[string]int64
	// Params maps parameter names (problem sizes) to coefficients.
	Params map[string]int64
	// Const is the additive constant.
	Const int64
}

// NewConst returns the constant expression c.
func NewConst(c int64) Expr { return Expr{Const: c} }

// NewIter returns the expression consisting of a single iterator with
// coefficient 1.
func NewIter(name string) Expr {
	return Expr{Iters: map[string]int64{name: 1}}
}

// NewParam returns the expression consisting of a single parameter with
// coefficient 1.
func NewParam(name string) Expr {
	return Expr{Params: map[string]int64{name: 1}}
}

// clone returns a deep copy of e.
func (e Expr) clone() Expr {
	out := Expr{Const: e.Const}
	if len(e.Iters) > 0 {
		out.Iters = make(map[string]int64, len(e.Iters))
		for k, v := range e.Iters {
			out.Iters[k] = v
		}
	}
	if len(e.Params) > 0 {
		out.Params = make(map[string]int64, len(e.Params))
		for k, v := range e.Params {
			out.Params[k] = v
		}
	}
	return out
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := e.clone()
	out.Const += o.Const
	for k, v := range o.Iters {
		if out.Iters == nil {
			out.Iters = make(map[string]int64)
		}
		out.Iters[k] += v
		if out.Iters[k] == 0 {
			delete(out.Iters, k)
		}
	}
	for k, v := range o.Params {
		if out.Params == nil {
			out.Params = make(map[string]int64)
		}
		out.Params[k] += v
		if out.Params[k] == 0 {
			delete(out.Params, k)
		}
	}
	return out
}

// AddConst returns e + c.
func (e Expr) AddConst(c int64) Expr {
	out := e.clone()
	out.Const += c
	return out
}

// Scale returns e * c.
func (e Expr) Scale(c int64) Expr {
	if c == 0 {
		return Expr{}
	}
	out := e.clone()
	out.Const *= c
	for k := range out.Iters {
		out.Iters[k] *= c
	}
	for k := range out.Params {
		out.Params[k] *= c
	}
	return out
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Scale(-1)) }

// IterCoeff returns the coefficient of the named iterator (0 if absent).
func (e Expr) IterCoeff(name string) int64 { return e.Iters[name] }

// UsesIter reports whether the iterator appears with nonzero coefficient.
func (e Expr) UsesIter(name string) bool { return e.Iters[name] != 0 }

// IsConstant reports whether e has no iterator or parameter terms.
func (e Expr) IsConstant() bool { return len(e.Iters) == 0 && len(e.Params) == 0 }

// IsParamOnly reports whether e has no iterator terms.
func (e Expr) IsParamOnly() bool { return len(e.Iters) == 0 }

// IterNames returns the iterators used in e, sorted.
func (e Expr) IterNames() []string {
	names := make([]string, 0, len(e.Iters))
	for k, v := range e.Iters {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// ParamNames returns the parameters used in e (nonzero coefficient),
// sorted.
func (e Expr) ParamNames() []string {
	names := make([]string, 0, len(e.Params))
	for k, v := range e.Params {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// Eval evaluates e under the given iterator and parameter bindings.
// Missing bindings evaluate as zero.
func (e Expr) Eval(iters, params map[string]int64) int64 {
	v := e.Const
	for k, c := range e.Iters {
		v += c * iters[k]
	}
	for k, c := range e.Params {
		v += c * params[k]
	}
	return v
}

// EvalParams partially evaluates the parameter part, returning the resulting
// constant contribution plus the untouched iterator terms.
func (e Expr) EvalParams(params map[string]int64) Expr {
	out := Expr{Const: e.Const}
	if len(e.Iters) > 0 {
		out.Iters = make(map[string]int64, len(e.Iters))
		for k, v := range e.Iters {
			out.Iters[k] = v
		}
	}
	for k, c := range e.Params {
		out.Const += c * params[k]
	}
	return out
}

// Equal reports structural equality of the two affine expressions.
func (e Expr) Equal(o Expr) bool {
	d := e.Sub(o)
	return d.Const == 0 && len(d.Iters) == 0 && len(d.Params) == 0
}

// String renders the expression in a canonical human-readable form.
func (e Expr) String() string {
	var parts []string
	appendTerm := func(name string, c int64) {
		switch c {
		case 1:
			parts = append(parts, name)
		case -1:
			parts = append(parts, "-"+name)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, name))
		}
	}
	for _, k := range e.IterNames() {
		appendTerm(k, e.Iters[k])
	}
	pnames := make([]string, 0, len(e.Params))
	for k, v := range e.Params {
		if v != 0 {
			pnames = append(pnames, k)
		}
	}
	sort.Strings(pnames)
	for _, k := range pnames {
		appendTerm(k, e.Params[k])
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	s := strings.Join(parts, "+")
	return strings.ReplaceAll(s, "+-", "-")
}
