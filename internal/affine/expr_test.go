package affine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExprBasics(t *testing.T) {
	e := NewIter("i").Scale(2).Add(NewParam("N")).AddConst(3)
	if got := e.Eval(map[string]int64{"i": 5}, map[string]int64{"N": 100}); got != 113 {
		t.Fatalf("Eval = %d, want 113", got)
	}
	if !e.UsesIter("i") || e.UsesIter("j") {
		t.Fatalf("UsesIter wrong: %v", e)
	}
	if e.IterCoeff("i") != 2 {
		t.Fatalf("IterCoeff(i) = %d, want 2", e.IterCoeff("i"))
	}
	if e.IsConstant() {
		t.Fatalf("IsConstant true for %v", e)
	}
	if !NewConst(7).IsConstant() {
		t.Fatal("constant not constant")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewConst(0), "0"},
		{NewConst(-4), "-4"},
		{NewIter("i"), "i"},
		{NewIter("i").AddConst(1), "i+1"},
		{NewIter("i").AddConst(-1), "i-1"},
		{NewIter("i").Scale(3).Add(NewIter("j")), "3*i+j"},
		{NewParam("N").AddConst(-1), "N-1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestExprSubCancels(t *testing.T) {
	e := NewIter("i").Add(NewParam("N")).AddConst(2)
	d := e.Sub(e)
	if !d.IsConstant() || d.Const != 0 {
		t.Fatalf("e - e = %v, want 0", d)
	}
	if len(d.Iters) != 0 || len(d.Params) != 0 {
		t.Fatalf("e - e kept zero terms: %#v", d)
	}
}

func TestExprEqual(t *testing.T) {
	a := NewIter("i").Add(NewIter("j"))
	b := NewIter("j").Add(NewIter("i"))
	if !a.Equal(b) {
		t.Fatal("commuted sums not equal")
	}
	if a.Equal(a.AddConst(1)) {
		t.Fatal("distinct exprs compare equal")
	}
}

// randomExpr builds a random affine expression for property tests.
func randomExpr(r *rand.Rand) Expr {
	iters := []string{"i", "j", "k"}
	params := []string{"N", "M"}
	e := NewConst(int64(r.Intn(21) - 10))
	for _, it := range iters {
		if r.Intn(2) == 0 {
			e = e.Add(NewIter(it).Scale(int64(r.Intn(7) - 3)))
		}
	}
	for _, p := range params {
		if r.Intn(2) == 0 {
			e = e.Add(NewParam(p).Scale(int64(r.Intn(7) - 3)))
		}
	}
	return e
}

type exprPair struct{ A, B Expr }

func (exprPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(exprPair{A: randomExpr(r), B: randomExpr(r)})
}

func evalEnv() (map[string]int64, map[string]int64) {
	return map[string]int64{"i": 3, "j": -2, "k": 7},
		map[string]int64{"N": 11, "M": 5}
}

// Property: evaluation is a homomorphism over Add/Sub/Scale.
func TestExprEvalHomomorphism(t *testing.T) {
	iters, params := evalEnv()
	prop := func(p exprPair) bool {
		sum := p.A.Add(p.B).Eval(iters, params)
		if sum != p.A.Eval(iters, params)+p.B.Eval(iters, params) {
			return false
		}
		diff := p.A.Sub(p.B).Eval(iters, params)
		if diff != p.A.Eval(iters, params)-p.B.Eval(iters, params) {
			return false
		}
		return p.A.Scale(3).Eval(iters, params) == 3*p.A.Eval(iters, params)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(x,x) is zero under Equal.
func TestExprAlgebraProperties(t *testing.T) {
	prop := func(p exprPair) bool {
		if !p.A.Add(p.B).Equal(p.B.Add(p.A)) {
			return false
		}
		z := p.A.Sub(p.A)
		return z.IsConstant() && z.Const == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: clone-on-write — Add must not mutate its receiver.
func TestExprImmutability(t *testing.T) {
	prop := func(p exprPair) bool {
		iters, params := evalEnv()
		before := p.A.Eval(iters, params)
		_ = p.A.Add(p.B)
		_ = p.A.Scale(5)
		_ = p.A.Sub(p.B)
		return p.A.Eval(iters, params) == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalParams(t *testing.T) {
	e := NewIter("i").Add(NewParam("N").Scale(2)).AddConst(1)
	r := e.EvalParams(map[string]int64{"N": 10})
	if r.Const != 21 || r.IterCoeff("i") != 1 || len(r.Params) != 0 {
		t.Fatalf("EvalParams = %#v", r)
	}
}
