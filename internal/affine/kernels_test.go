package affine

import (
	"math/rand"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	names := Catalog()
	if len(names) < 18 {
		t.Fatalf("catalog has %d kernels, want >= 18", len(names))
	}
	// Every kernel the paper evaluates must be present.
	required := []string{
		"gemm", "2mm", "3mm", "atax", "bicg", "mvt", "gemver",
		"covariance", "correlation", "jacobi-1d", "jacobi-2d",
		"fdtd-2d", "fdtd-apml", "syrk", "syr2k",
		"conv-2d", "heat-3d", "mttkrp",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, r := range required {
		if !have[r] {
			t.Errorf("catalog missing kernel %q", r)
		}
	}
}

func TestAllKernelsValidate(t *testing.T) {
	for _, name := range Catalog() {
		k := MustLookup(name)
		if err := k.Validate(); err != nil {
			t.Errorf("kernel %s: %v", name, err)
		}
		if k.Flops(k.Params) <= 0 {
			t.Errorf("kernel %s: nonpositive flops", name)
		}
		if k.FootprintBytes(k.Params, FP64) <= 0 {
			t.Errorf("kernel %s: nonpositive footprint", name)
		}
	}
}

func TestStandardParamsSmaller(t *testing.T) {
	for _, name := range Catalog() {
		k := MustLookup(name)
		std, err := StandardParams(name)
		if err != nil {
			t.Fatalf("StandardParams(%s): %v", name, err)
		}
		stdFlops := k.Flops(std)
		xlFlops := k.Flops(k.Params)
		if stdFlops <= 0 {
			t.Errorf("%s: standard flops %d", name, stdFlops)
		}
		if stdFlops > xlFlops {
			t.Errorf("%s: STANDARD (%d flops) larger than EXTRALARGE (%d)", name, stdFlops, xlFlops)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-kernel"); err == nil {
		t.Fatal("Lookup of unknown kernel succeeded")
	}
}

func TestStandardParamsReturnsCopy(t *testing.T) {
	a, _ := StandardParams("gemm")
	a["NI"] = -1
	b, _ := StandardParams("gemm")
	if b["NI"] == -1 {
		t.Fatal("StandardParams aliases internal state")
	}
}

func TestMaxDepths(t *testing.T) {
	// Stencil time loops live on the host (Nest.Repeat), so depths below
	// count only GPU-mapped loops.
	wants := map[string]int{
		"gemm": 3, "2mm": 3, "3mm": 3, "mvt": 2, "atax": 2, "bicg": 2,
		"gemver": 2, "covariance": 3, "jacobi-1d": 1, "jacobi-2d": 2,
		"fdtd-2d": 2, "fdtd-apml": 3,
		"conv-2d": 4, "heat-3d": 3, "mttkrp": 4,
	}
	for name, want := range wants {
		if got := MustLookup(name).MaxDepth(); got != want {
			t.Errorf("%s: MaxDepth = %d, want %d", name, got, want)
		}
	}
}

func TestNonPolybenchSplit(t *testing.T) {
	pb := PolybenchNames()
	npb := NonPolybenchNames()
	if len(npb) != 3 {
		t.Fatalf("non-Polybench = %v", npb)
	}
	for _, n := range npb {
		for _, p := range pb {
			if n == p {
				t.Errorf("%s in both Polybench and non-Polybench lists", n)
			}
		}
	}
	if len(pb)+len(npb) != len(Catalog()) {
		t.Fatal("Polybench + non-Polybench does not cover catalog")
	}
}

func TestGemmReductionMarked(t *testing.T) {
	k := MustLookup("gemm")
	if !k.Nests[0].Body[0].Reduction {
		t.Fatal("gemm statement should be a reduction (carries k-loop dependence)")
	}
}

func TestStencilOffsets(t *testing.T) {
	k := MustLookup("jacobi-2d")
	nest := k.Nests[0]
	s0 := nest.Body[0]
	// The 5-point stencil must read A at j-1 and j+1.
	var sawMinus, sawPlus bool
	for _, r := range s0.Refs {
		if r.Array != "A" || r.Write {
			continue
		}
		fv := r.FastestVarying()
		if fv.UsesIter("j") {
			switch fv.Const {
			case -1:
				sawMinus = true
			case 1:
				sawPlus = true
			}
		}
	}
	if !sawMinus || !sawPlus {
		t.Fatal("jacobi-2d missing j-1/j+1 neighbor reads")
	}
}

func TestRandomKernelDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomKernel(rand.New(rand.NewSource(seed)))
		b := RandomKernel(rand.New(rand.NewSource(seed)))
		if a.String() != b.String() {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, a)
		}
		if a.Flops(a.Params) <= 0 {
			t.Fatalf("seed %d: nonpositive flops", seed)
		}
	}
}
