package feas

import (
	"context"
	"testing"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/smt"
)

func gemmRegion(t *testing.T, cfg Config) (*Region, *analysis.Program, *arch.GPU) {
	t.Helper()
	k := affine.MustLookup("gemm")
	prog := analysis.Analyze(k, nil)
	g := arch.GA100()
	return Derive(prog, g, cfg), prog, g
}

// The sweep region must mirror the model generator's declarations: one
// domain per loop (step 1, bounded by min(T_P_B, N)) and exactly the
// register predicate per nest — no alignment, no capacity, no block
// limit, because those are choices of one solve's Options.
func TestDeriveSweepConfigMirrorsModel(t *testing.T) {
	r, prog, g := gemmRegion(t, SweepConfig(affine.FP64))
	if r.Empty != nil {
		t.Fatalf("gemm sweep region unexpectedly empty: %s", r.Empty)
	}
	if len(r.Bounds) != 3 {
		t.Fatalf("gemm has 3 loops, got %d bounds: %+v", len(r.Bounds), r.Bounds)
	}
	for _, b := range r.Bounds {
		if b.Step != 1 || b.Iv.Lo != 1 {
			t.Errorf("sweep domain of %s must start at 1 step 1, got %+v", b.Name, b)
		}
		if b.Iv.Hi != g.ThreadsPerBlock {
			t.Errorf("bound of %s: got Hi=%d, want T_P_B=%d (extents 4000 don't bind)", b.Name, b.Iv.Hi, g.ThreadsPerBlock)
		}
	}
	if len(r.Preds) != 1 {
		t.Fatalf("want exactly the register predicate, got %+v", r.Preds)
	}
	p := r.Preds[0]
	if p.Label != "register" || p.Nest != "matmul" || p.Cap != g.RegsPerSM {
		t.Fatalf("register predicate mismatch: %+v", p)
	}
	wantCoeff := prog.Nests[0].Reuse.DistinctLineRefs * affine.FP64.Factor()
	if len(p.Terms) != 1 || p.Terms[0].Coeff != wantCoeff {
		t.Fatalf("register coefficient: got %+v, want DistinctLineRefs*Factor = %d", p.Terms, wantCoeff)
	}
}

// A register-violating point must yield a point certificate that the
// solver confirms UNSAT; a known-feasible point must pass.
func TestCheckRegisterViolation(t *testing.T) {
	r, _, _ := gemmRegion(t, SweepConfig(affine.FP64))
	bad := map[string]int64{"i": 512, "j": 512, "k": 4}
	cert := r.Check(bad)
	if cert == nil {
		t.Fatalf("512x512 block (REG_SM >> 65536) not pruned")
	}
	if cert.Constraint != "register" || cert.Region {
		t.Fatalf("want point register certificate, got %+v", cert)
	}
	if cert.LHS <= cert.Cap {
		t.Fatalf("certificate does not witness a violation: %+v", cert)
	}
	if !r.UnsatSMT(bad) {
		t.Fatalf("solver finds the pruned point %v satisfiable", bad)
	}
	good := map[string]int64{"i": 32, "j": 32, "k": 16}
	if c := r.Check(good); c != nil {
		t.Fatalf("feasible point pruned: %s", c)
	}
	if !r.Feasible(good) || r.Feasible(bad) {
		t.Fatalf("Feasible disagrees with Check")
	}
}

// Domain and alignment certificates under a model configuration
// (warp-aligned step 16 on GA100).
func TestCheckDomainAndAlignment(t *testing.T) {
	r, _, _ := gemmRegion(t, ModelConfig(0.5, 0.5, affine.FP64))
	if got := r.Bounds[0].Step; got != 16 {
		t.Fatalf("warp fraction 0.5 on GA100 must step 16, got %d", got)
	}
	if c := r.Check(map[string]int64{"i": 24, "j": 16, "k": 16}); c == nil || c.Constraint != "tile-alignment" || c.Loop != "i" {
		t.Fatalf("misaligned tile: got %+v, want tile-alignment on i", c)
	}
	if c := r.Check(map[string]int64{"i": 2048, "j": 16, "k": 16}); c == nil || c.Constraint != "tile-domain" || c.Loop != "i" {
		t.Fatalf("out-of-domain tile: got %+v, want tile-domain on i", c)
	}
	if c := r.Check(map[string]int64{"i": 0, "j": 16, "k": 16}); c == nil || c.Constraint != "tile-domain" {
		t.Fatalf("non-positive tile: got %+v, want tile-domain", c)
	}
	// A point that doesn't bind every dimension is judged only on what
	// it binds.
	if c := r.Check(map[string]int64{"i": 32}); c != nil {
		t.Fatalf("partially bound feasible point pruned: %s", c)
	}
}

// An Empty region certificate must imply the mirrored solver call
// returns UNSAT — the sibling-skip and lint passes rely on exactly this
// implication, on every catalog kernel and every (split, warp-fraction)
// sibling.
func TestEmptyRegionImpliesSolverUnsat(t *testing.T) {
	ctx := context.Background()
	emptied := 0
	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		prog := analysis.Analyze(k, nil)
		for _, g := range []*arch.GPU{arch.GA100(), arch.Xavier()} {
			for _, split := range []float64{0.0, 0.5, 0.67} {
				for _, wf := range []float64{0.5, 0.25, 0.125} {
					r := Derive(prog, g, ModelConfig(split, wf, affine.FP64))
					if r.Empty == nil {
						continue
					}
					emptied++
					_, err := core.SelectTilesAnalyzed(ctx, prog, g, core.Options{
						SplitFactor: split, WarpFraction: wf,
						Precision: affine.FP64, ProblemSizeAware: true,
					})
					if err == nil {
						t.Errorf("%s on %s (split %.2f, wf %.3f): region certified empty (%s) but the solver found a selection",
							name, g.Name, split, wf, r.Empty)
					}
				}
			}
		}
	}
	// The implication must actually be exercised: the catalog is known
	// to contain statically-empty siblings (heat-3d, syr2k, ...).
	if emptied == 0 {
		t.Fatalf("no empty region found across the catalog — the region check is vacuous")
	}
}

// TightenedBounds must propagate predicate caps back into per-dimension
// bounds, with the other dimensions at their domain minimum.
func TestTightenedBounds(t *testing.T) {
	r := &Region{
		Bounds: []Bound{
			{Name: "x", Iv: smt.Interval{Lo: 1, Hi: 1024}, Step: 1},
			{Name: "y", Iv: smt.Interval{Lo: 1, Hi: 1024}, Step: 1},
		},
		Preds: []Predicate{{
			Label: "register", Nest: "n",
			Terms: []Term{{Coeff: 64, Iters: []string{"x", "y"}}},
			Cap:   4096,
		}},
	}
	tb := r.TightenedBounds()
	for _, b := range tb {
		// 64*x*y <= 4096 with the other dim at 1: x <= 64.
		if b.Iv.Hi != 64 {
			t.Errorf("bound of %s: got Hi=%d, want 64", b.Name, b.Iv.Hi)
		}
	}
	// The receiver's bounds must be untouched.
	if r.Bounds[0].Iv.Hi != 1024 {
		t.Fatalf("TightenedBounds mutated the region")
	}
}

// Saturating arithmetic must clamp instead of wrapping: a wrapped
// product could fall back under a cap and unsoundly admit a point.
func TestSaturatingArithmetic(t *testing.T) {
	if got := satMul(satCeil, 2); got != satCeil {
		t.Fatalf("satMul overflow: got %d", got)
	}
	if got := satAdd(satCeil, satCeil); got != satCeil {
		t.Fatalf("satAdd overflow: got %d", got)
	}
	if got := satMul(3, 4); got != 12 {
		t.Fatalf("satMul small: got %d", got)
	}
	p := Predicate{Terms: []Term{{Coeff: 1, Iters: []string{"a", "b", "c"}}}, Cap: 1 << 40}
	lhs, ok := p.eval(map[string]int64{"a": 1 << 30, "b": 1 << 30, "c": 1 << 30})
	if !ok || lhs != satCeil {
		t.Fatalf("eval must saturate, got %d ok=%t", lhs, ok)
	}
	if _, ok := p.eval(map[string]int64{"a": 1}); ok {
		t.Fatalf("eval with unbound variables must report ok=false")
	}
}
