// Package feas is the static tile-space feasibility analysis: a
// solver-free over-approximation of the Sec. IV constraint system,
// derived once per (Program, GPU, Config) and evaluated per point in a
// handful of integer multiplications.
//
// The SMT solver (internal/core) decides the same constraints exactly,
// but only inside a solve; a tile-space sweep, an autotuner bootstrap
// or an explicit-tiles service request sees every point, feasible or
// not. Derive rebuilds the model generator's constraint set — the
// warp-aligned tile domains of IV-B, the B_size block limit of IV-A/F,
// the register bound of IV-G/IV-I, and the L1/shared/L2 capacity split
// of IV-H/IV-J — as per-dimension interval Bounds plus labeled monotone
// capacity Predicates (every coefficient is positive and every tile is
// >= 1, so each left-hand side is monotone in every variable). That
// monotonicity is what makes two cheap judgements sound:
//
//   - Point check: a tile choice violating one predicate violates the
//     matching model constraint, so the configuration is point-wise
//     UNSAT under the formulation — pruning it cannot change which
//     feasible point a search would keep.
//   - Region check: if a predicate already fails on the domain box's
//     minimum corner (evaluated with smt.Interval arithmetic), every
//     point of the region fails it, so the whole (Program, GPU, Config)
//     region is empty and a solver call would return UNSAT.
//
// Every verdict is a machine-checkable PruneCert naming the violated
// constraint with its interval witness; verify.CertifyPrune replays
// certificates independently in math/big, and Region.UnsatSMT re-decides
// them against the finite-domain solver. The sweep engine
// (SweepOptions.Prune), SelectBest's (split x warp-fraction) sibling
// loop, both autotuners and the eatssd service consume the analysis;
// cmd/feasbench gates its soundness catalog-wide.
package feas

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/smt"
)

// Config selects which of the model generator's constraint families the
// derived region enforces. It deliberately mirrors core.Options field
// for field where a family is option-dependent, so a Region can be
// derived for exactly the formulation a solver call would build.
type Config struct {
	// Precision scales the register bound (Sec. IV-I) and the capacity
	// pools (bytes / element size, Sec. IV-J).
	Precision affine.Precision
	// SplitFactor divides the L1+shared pool (Sec. IV-J); only read
	// when Capacity is set.
	SplitFactor float64
	// WarpFraction sets the warp-alignment step (Sec. IV-B). 0 disables
	// alignment (step 1) — unlike core.Options, which normalizes 0 to
	// full-warp alignment, because a sweep's points carry no alignment
	// obligation.
	WarpFraction float64
	// ProblemSizeAware tightens tile upper bounds to min(T_P_B, N).
	ProblemSizeAware bool
	// EnforceThreadBlockLimit adds B_size <= T_P_B (Sec. IV-A).
	EnforceThreadBlockLimit bool
	// Capacity adds the L1/shared/L2 capacity predicates (IV-H/IV-J),
	// which depend on SplitFactor.
	Capacity bool
}

// SweepConfig is the option-free constraint family a tile-space sweep
// (or an explicit-tiles service request) can prune against: the
// register bound and the problem-size-aware tile domains — exactly the
// constraints every core.Options instantiation enforces. Warp
// alignment, the capacity split and the thread-block limit are choices
// of one solve's Options (the block limit is off by default, matching
// the published artifact), so they stay out: a sweep prune must hold
// under every Options, and in particular must never reject a tile
// choice the solver itself could return.
func SweepConfig(prec affine.Precision) Config {
	return Config{Precision: prec, ProblemSizeAware: true}
}

// ModelConfig mirrors one core.Options instantiation exactly (block
// limit off, capacity split on), so Region.Empty implies that solve
// would return UNSAT.
func ModelConfig(split, warpFrac float64, prec affine.Precision) Config {
	return Config{
		Precision:        prec,
		SplitFactor:      split,
		WarpFraction:     warpFrac,
		ProblemSizeAware: true,
		Capacity:         true,
	}
}

// Bound is one tile dimension's domain: multiples of Step inside
// [Iv.Lo, Iv.Hi] (Iv.Lo is Step, Iv.Hi the largest admissible multiple
// — exactly the smt.RangeVar domain the model generator declares).
type Bound struct {
	Name string
	Iv   smt.Interval
	Step int64
}

// Term is Coeff x the product of the named tile variables — one
// monomial of a predicate's left-hand side.
type Term struct {
	Coeff int64
	Iters []string
}

// Predicate is one labeled monotone constraint: sum of Terms <= Cap.
// Labels use verify's vocabulary ("block-limit", "register",
// "shared-capacity", "l1-capacity", "l2-share"). Box is the predicate's
// left-hand side evaluated over the domain box in interval arithmetic;
// Box.Lo > Cap proves the whole region infeasible.
type Predicate struct {
	Label string
	Nest  string
	Terms []Term
	Cap   int64
	Box   smt.Interval
}

// PruneCert is a machine-checkable infeasibility verdict: which
// constraint is violated, by which point (or, for Region certificates,
// by the domain box's minimum corner — and therefore by every point),
// with the concrete arithmetic witness. verify.CertifyPrune replays it
// independently.
type PruneCert struct {
	Kernel string
	GPU    string
	// Constraint names the violated constraint ("tile-domain",
	// "tile-alignment", "parallelism", or a Predicate label).
	Constraint string
	// Nest is set for per-nest resource constraints; Loop for
	// per-dimension domain constraints.
	Nest string
	Loop string
	// Tiles is the judged point. For Region certificates it is the
	// domain box's minimum corner (empty for domain-empty regions).
	Tiles map[string]int64
	// LHS and Cap state the violated comparison LHS > Cap. For domain
	// certificates LHS is the tile value and Cap the domain bound.
	LHS int64
	Cap int64
	// Interval is the witness: the constraint's left-hand side over the
	// whole domain box for Region certificates, the degenerate
	// point-value interval otherwise.
	Interval smt.Interval
	// Region marks a whole-region (every point infeasible) certificate.
	Region bool
}

// String renders the certificate for error messages and 422 bodies.
func (c *PruneCert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", c.Constraint)
	if c.Region {
		b.WriteString(" (whole region)")
	}
	b.WriteString(": ")
	switch c.Constraint {
	case "tile-domain":
		fmt.Fprintf(&b, "T_%s = %d outside [1, %d]", c.Loop, c.LHS, c.Cap)
	case "tile-alignment":
		fmt.Fprintf(&b, "T_%s = %d is not a positive multiple of %d", c.Loop, c.LHS, c.Cap)
	case "parallelism":
		fmt.Fprintf(&b, "nest %q has no parallel loop", c.Nest)
	default:
		fmt.Fprintf(&b, "nest %q: %d exceeds the %s limit %d", c.Nest, c.LHS, c.Constraint, c.Cap)
	}
	if len(c.Tiles) > 0 {
		names := make([]string, 0, len(c.Tiles))
		for n := range c.Tiles {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString(" at")
		for _, n := range names {
			fmt.Fprintf(&b, " T_%s=%d", n, c.Tiles[n])
		}
	}
	return b.String()
}

// Region is the derived feasible-region over-approximation for one
// (Program, GPU, Config): every model-feasible tile choice satisfies
// all Bounds and all Predicates (the converse need not hold — the
// region is an over-approximation, so Check returning nil proves
// nothing). Immutable after Derive; safe for concurrent use.
type Region struct {
	Kernel string
	GPU    string
	Cfg    Config
	// Bounds holds one domain per loop name, sorted by name.
	Bounds []Bound
	// Preds holds the monotone resource predicates in model-emission
	// order.
	Preds []Predicate
	// Empty, when non-nil, certifies that the whole region is
	// infeasible: the domain is empty or a predicate fails on the
	// domain box's minimum corner.
	Empty *PruneCert
}

// satCeil is the saturation threshold for overflow-free monotone
// arithmetic: far above every device capacity, far below int64
// overflow territory for one more multiplication by a tile <= T_P_B.
const satCeil = math.MaxInt64 >> 16

func satMul(a, b int64) int64 {
	if a > 0 && b > 0 && a > satCeil/b {
		return satCeil
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > satCeil-b {
		return satCeil
	}
	return a + b
}

// Derive builds the region for (prog, g, cfg), mirroring the model
// generator's constraint emission (core.SelectTilesAnalyzed): the same
// upper-bound intersection across nests, the same warp-alignment step,
// and the same per-nest resource bounds with the same capacity
// arithmetic. It never calls the solver; cost is linear in the
// kernel's nests and arrays.
func Derive(prog *analysis.Program, g *arch.GPU, cfg Config) *Region {
	r := &Region{Kernel: prog.Kernel.Name, GPU: g.Name, Cfg: cfg}

	step := int64(1)
	if cfg.WarpFraction > 0 {
		step = int64(cfg.WarpFraction * float64(g.ThreadsPerWarp))
		if step < 1 {
			step = 1
		}
	}

	// IV-B: per-dimension domains, upper bounds intersected across
	// nests sharing a loop name.
	upper := make(map[string]int64)
	var names []string
	for _, na := range prog.Nests {
		for _, l := range na.Nest.Loops {
			hi := g.ThreadsPerBlock
			if cfg.ProblemSizeAware {
				if ext := na.Extents[l.Name]; ext < hi {
					hi = ext
				}
			}
			if prev, ok := upper[l.Name]; !ok || hi < prev {
				if !ok {
					names = append(names, l.Name)
				}
				upper[l.Name] = hi
			}
		}
	}
	sort.Strings(names)
	iv := make(map[string]smt.Interval, len(names))
	for _, name := range names {
		hi := (upper[name] / step) * step // largest multiple of step in the domain
		b := Bound{Name: name, Iv: smt.Interval{Lo: step, Hi: hi}, Step: step}
		r.Bounds = append(r.Bounds, b)
		iv[name] = b.Iv
		if b.Iv.Empty() && r.Empty == nil {
			r.Empty = &PruneCert{
				Kernel: r.Kernel, GPU: r.GPU, Constraint: "tile-domain", Loop: name,
				LHS: step, Cap: upper[name], Interval: b.Iv, Region: true,
			}
		}
	}
	if r.Empty != nil {
		return r
	}

	// Per-nest resource predicates, in the generator's emission order.
	elemB := cfg.Precision.Bytes()
	for _, na := range prog.Nests {
		nest := na.Nest.Name
		if len(na.Parallel) == 0 {
			// The model generator errors out here; the region is empty
			// in the same sense — no solve can succeed.
			if r.Empty == nil {
				r.Empty = &PruneCert{
					Kernel: r.Kernel, GPU: r.GPU, Constraint: "parallelism",
					Nest: nest, Region: true,
				}
			}
			continue
		}
		bsize := Term{Coeff: 1, Iters: na.Parallel}
		if cfg.EnforceThreadBlockLimit {
			r.addPred(Predicate{
				Label: "block-limit", Nest: nest,
				Terms: []Term{bsize}, Cap: g.ThreadsPerBlock,
			}, iv)
		}
		r.addPred(Predicate{
			Label: "register", Nest: nest,
			Terms: []Term{{Coeff: na.Reuse.DistinctLineRefs * cfg.Precision.Factor(), Iters: na.Parallel}},
			Cap:   g.RegsPerSM,
		}, iv)

		if !cfg.Capacity {
			continue
		}
		var l1Terms, shTerms []Term
		for _, av := range na.Arrays {
			if len(av.Iters) == 0 {
				continue // scalar: negligible volume
			}
			t := Term{Coeff: 1, Iters: av.Iters}
			if av.L1 || cfg.SplitFactor == 0 {
				l1Terms = append(l1Terms, t)
			} else {
				shTerms = append(shTerms, t)
			}
		}
		pool := g.L1SharedBytes / elemB
		shCap := int64(cfg.SplitFactor * float64(pool))
		l1Cap := pool - shCap
		if len(shTerms) > 0 {
			r.addPred(Predicate{Label: "shared-capacity", Nest: nest, Terms: shTerms, Cap: shCap}, iv)
		}
		if len(l1Terms) > 0 {
			if cfg.SplitFactor >= 1.0 {
				l2Cap := g.L2Bytes / g.SMCount / elemB
				r.addPred(Predicate{Label: "l2-share", Nest: nest, Terms: l1Terms, Cap: l2Cap}, iv)
			} else {
				r.addPred(Predicate{Label: "l1-capacity", Nest: nest, Terms: l1Terms, Cap: l1Cap}, iv)
			}
		}
	}
	return r
}

// addPred computes the predicate's interval box and appends it; a box
// minimum above the cap proves the whole region empty (monotone LHS:
// its minimum over the box is at the minimum corner).
func (r *Region) addPred(p Predicate, iv map[string]smt.Interval) {
	box := smt.Interval{}
	for _, t := range p.Terms {
		lo, hi := t.Coeff, t.Coeff
		for _, it := range t.Iters {
			v := iv[it]
			lo, hi = satMul(lo, v.Lo), satMul(hi, v.Hi)
		}
		box.Lo, box.Hi = satAdd(box.Lo, lo), satAdd(box.Hi, hi)
	}
	p.Box = box
	r.Preds = append(r.Preds, p)
	if box.Lo > p.Cap && r.Empty == nil {
		r.Empty = &PruneCert{
			Kernel: r.Kernel, GPU: r.GPU, Constraint: p.Label, Nest: p.Nest,
			Tiles: r.minCorner(), LHS: box.Lo, Cap: p.Cap, Interval: box, Region: true,
		}
	}
}

// minCorner returns the domain box's minimum corner (every tile at its
// domain minimum, i.e. the warp-alignment step).
func (r *Region) minCorner() map[string]int64 {
	min := make(map[string]int64, len(r.Bounds))
	for _, b := range r.Bounds {
		min[b.Name] = b.Iv.Lo
	}
	return min
}

// eval computes a predicate's left-hand side at a point, saturating
// instead of overflowing (saturation only ever inflates the value, so
// LHS > Cap verdicts stay sound while caps are below satCeil). ok is
// false when the point does not bind every variable the predicate
// reads — an unbindable predicate never prunes.
func (p *Predicate) eval(tiles map[string]int64) (int64, bool) {
	var lhs int64
	for _, t := range p.Terms {
		v := t.Coeff
		for _, it := range t.Iters {
			tv, ok := tiles[it]
			if !ok {
				return 0, false
			}
			v = satMul(v, tv)
		}
		lhs = satAdd(lhs, v)
	}
	return lhs, true
}

// Check judges one tile choice against the region. nil means the point
// is inside the over-approximation (it may still be infeasible — Check
// never proves feasibility); a non-nil PruneCert proves the point
// violates the named model constraint. Domain bounds are checked before
// resource predicates, so predicate arithmetic only ever sees positive
// in-domain values.
func (r *Region) Check(tiles map[string]int64) *PruneCert {
	if r.Empty != nil {
		return r.Empty
	}
	for _, b := range r.Bounds {
		t, ok := tiles[b.Name]
		if !ok {
			continue
		}
		if t < 1 || t > b.Iv.Hi {
			return &PruneCert{
				Kernel: r.Kernel, GPU: r.GPU, Constraint: "tile-domain", Loop: b.Name,
				Tiles: copyTiles(tiles), LHS: t, Cap: b.Iv.Hi,
				Interval: smt.Interval{Lo: t, Hi: t},
			}
		}
		if b.Step > 1 && t%b.Step != 0 {
			return &PruneCert{
				Kernel: r.Kernel, GPU: r.GPU, Constraint: "tile-alignment", Loop: b.Name,
				Tiles: copyTiles(tiles), LHS: t, Cap: b.Step,
				Interval: smt.Interval{Lo: t, Hi: t},
			}
		}
	}
	for i := range r.Preds {
		p := &r.Preds[i]
		lhs, ok := p.eval(tiles)
		if !ok {
			continue
		}
		if lhs > p.Cap {
			return &PruneCert{
				Kernel: r.Kernel, GPU: r.GPU, Constraint: p.Label, Nest: p.Nest,
				Tiles: copyTiles(tiles), LHS: lhs, Cap: p.Cap,
				Interval: smt.Interval{Lo: lhs, Hi: lhs},
			}
		}
	}
	return nil
}

// Feasible reports that Check finds no violation (the point is inside
// the over-approximation).
func (r *Region) Feasible(tiles map[string]int64) bool { return r.Check(tiles) == nil }

// TightenedBounds propagates each predicate back into per-dimension
// upper bounds: for dimension d, every other variable is set to its
// domain minimum and the predicate is solved for d, which is the
// loosest bound any feasible point can give d (monotone LHS). The
// result is the feasible box the autotuners seed from: still an
// over-approximation, but often far tighter than the raw domains.
func (r *Region) TightenedBounds() []Bound {
	out := make([]Bound, len(r.Bounds))
	copy(out, r.Bounds)
	if r.Empty != nil {
		return out
	}
	idx := make(map[string]int, len(out))
	for i, b := range out {
		idx[b.Name] = i
	}
	min := r.minCorner()
	for _, p := range r.Preds {
		for _, b := range r.Bounds {
			d := b.Name
			// LHS(d) = a*d + rest, with every other variable at its
			// minimum: a collects terms containing d, rest the others.
			var a, rest int64
			uses := false
			for _, t := range p.Terms {
				v := t.Coeff
				hasD := false
				for _, it := range t.Iters {
					if it == d {
						hasD = true
						continue
					}
					v = satMul(v, min[it])
				}
				if hasD {
					uses = true
					a = satAdd(a, v)
				} else {
					rest = satAdd(rest, v)
				}
			}
			if !uses || a <= 0 || p.Cap < rest {
				continue
			}
			hi := (p.Cap - rest) / a
			hi = (hi / b.Step) * b.Step
			if hi < out[idx[d]].Iv.Hi {
				out[idx[d]].Iv.Hi = hi
			}
		}
	}
	return out
}

// UnsatSMT re-decides a pruned point against the finite-domain solver:
// it rebuilds the region's constraint system as an smt.Problem (the
// same RangeVar domains and labeled constraints the model generator
// declares), pins the tile variables to the point, and reports whether
// the solver finds it unsatisfiable. A sound prune must always return
// true; cmd/feasbench and the fuzz property gate on it. Tiles outside a
// variable's declared domain are unsatisfiable by construction (the
// EQ pin cannot hold), matching the solver's own semantics.
func (r *Region) UnsatSMT(tiles map[string]int64) bool {
	p := smt.NewProblem()
	vars := make(map[string]smt.Var, len(r.Bounds))
	for _, b := range r.Bounds {
		v := p.RangeVar("T_"+b.Name, 1, b.Iv.Hi, b.Step)
		vars[b.Name] = v
		if t, ok := tiles[b.Name]; ok {
			p.RequireEQ(smt.V(v), smt.C(t))
		}
	}
	for _, pr := range r.Preds {
		var terms []smt.Expr
		for _, t := range pr.Terms {
			factors := make([]smt.Expr, 0, len(t.Iters))
			for _, it := range t.Iters {
				factors = append(factors, smt.V(vars[it]))
			}
			terms = append(terms, smt.Scale(t.Coeff, smt.Mul(factors...)))
		}
		p.RequireLabeled(pr.Label, smt.Sum(terms...), smt.LE, smt.C(pr.Cap))
	}
	_, sat := smt.NewSolver(p).Solve()
	return !sat
}

func copyTiles(tiles map[string]int64) map[string]int64 {
	cp := make(map[string]int64, len(tiles))
	for n, v := range tiles {
		cp[n] = v
	}
	return cp
}
