package core

import (
	"fmt"
	"strings"

	"repro/internal/profile"
)

// levelConstraint maps each attribution level onto the formulation
// resource whose binding most directly caps the tile growth that would
// shrink that level's energy: DRAM re-fetches fall when the per-SM L2
// share covers the working set, L2 traffic falls when tiles grow within
// the L1 budget, the liveness term is capped by the register file,
// shared-bank energy by the carveout.
var levelConstraint = map[string]string{
	"dram":   "L2 share",
	"l2":     "L1 capacity",
	"l1":     "registers/SM",
	"shared": "shared capacity",
}

// ExplainEnergy fuses a selection's constraint-slack view (why the
// solver stopped growing tiles) with a run's energy attribution (where
// the Joules actually went): it names the dominant component and, when
// the formulation resource that governs it is binding, says so — the
// "this tile choice is energy-limited by X" sentence the paper's
// walkthroughs build by hand. Deterministic for fixed inputs.
func ExplainEnergy(sel *Selection, slacks []ConstraintSlack, p *profile.Profile) string {
	var b strings.Builder
	dom, share := p.Dominant()
	fmt.Fprintf(&b, "energy explanation for %s on %s (tiles %s):\n",
		sel.Kernel, sel.GPU, tilesInline(sel.Tiles))
	fmt.Fprintf(&b, "  dominant component: %s — %s of %s total (%.1f%%)\n",
		dom, fmtJoules(p.Energy.Level(dom)), fmtJoules(p.EnergyJ), 100*share)

	res, governed := levelConstraint[dom]
	switch {
	case !governed:
		// Compute- or static-dominated: the lever is occupancy/time, not
		// a capacity constraint.
		fmt.Fprintf(&b, "  %s energy is not capacity-governed; the lever is execution time and DVFS residency\n", dom)
	default:
		binding := false
		found := false
		for _, c := range slacks {
			if c.Resource != res {
				continue
			}
			found = true
			binding = binding || c.Binding
		}
		switch {
		case !found:
			fmt.Fprintf(&b, "  governing constraint %q is inactive in this formulation\n", res)
		case binding:
			fmt.Fprintf(&b, "  governing constraint %q is binding: the solver already grew tiles to this component's capacity wall\n", res)
		default:
			fmt.Fprintf(&b, "  governing constraint %q has slack: larger tiles could cut the %s component further\n", res, dom)
		}
	}
	for _, l := range profile.Levels {
		pct := 0.0
		if p.EnergyJ != 0 {
			pct = 100 * p.Energy.Level(l) / p.EnergyJ
		}
		fmt.Fprintf(&b, "    %-8s %10s  %5.1f%%\n", l, fmtJoules(p.Energy.Level(l)), pct)
	}
	return b.String()
}

func fmtJoules(j float64) string { return fmt.Sprintf("%.4g J", j) }
