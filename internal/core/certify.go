package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/verify"
)

// Telemetry: how many selections were certified, and how many failed.
// A nonzero failure count means the solver and the independent checker
// disagree about the formulation — always a bug, never noise.
var (
	mVerified       = obs.NewCounter("core.verified")
	mVerifyFailures = obs.NewCounter("core.verify_failures")
)

// verifyKey identifies one (kernel, gpu, options) solve for
// Verify=Sample's deterministic subsetting.
func verifyKey(kernel, gpu string, opts Options) string {
	return fmt.Sprintf("%s|%s|%.3f|%.3f|%s|%v|%v",
		kernel, gpu, opts.SplitFactor, opts.WarpFraction, opts.Precision,
		opts.ProblemSizeAware, opts.EnforceThreadBlockLimit)
}

// selectionFacts assembles the certifier's input from a finished
// selection: the solve's exact inputs plus the solver witness.
func selectionFacts(prog *analysis.Program, g *arch.GPU, sel *Selection) verify.SelectionFacts {
	return verify.SelectionFacts{
		Kernel:                  prog.Kernel,
		Params:                  prog.Params,
		GPU:                     g,
		Tiles:                   sel.Tiles,
		Witness:                 sel.Witness,
		SplitFactor:             sel.Opts.SplitFactor,
		WarpFraction:            sel.Opts.WarpFraction,
		Precision:               sel.Opts.Precision,
		ProblemSizeAware:        sel.Opts.ProblemSizeAware,
		EnforceThreadBlockLimit: sel.Opts.EnforceThreadBlockLimit,
	}
}
