package core

import (
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

// TestPaperGemmExample reproduces the worked matmul example of Sec. IV-A:
// on the GA100 with a 50% L1/shared split, FP64, and warp-alignment factor
// 16 (= 0.5 x 32), the objective Ti*Tj + 2*16*Tj under
//
//	Bsize*3*2 <= 64K,  Ti*Tj + Tk*Tj <= M_L1,  Ti*Tk <= M_SH
//
// has the solution Ti=16, Tj=384, Tk=16 — exactly what the paper reports.
func TestPaperGemmExample(t *testing.T) {
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"i": 16, "j": 384, "k": 16}
	for name, w := range want {
		if sel.Tiles[name] != w {
			t.Errorf("T_%s = %d, want %d (paper Sec. IV-A)", name, sel.Tiles[name], w)
		}
	}
	if sel.Objective != 16*384+2*16*384 {
		t.Errorf("objective = %d, want %d", sel.Objective, 16*384+2*16*384)
	}
}

func TestGemmModelStructure(t *testing.T) {
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nests) != 1 {
		t.Fatalf("gemm nests = %d", len(sel.Nests))
	}
	nm := sel.Nests[0]
	if nm.CMALoop != "j" {
		t.Errorf("CMA loop = %q, want j", nm.CMALoop)
	}
	if nm.Refs != 3 {
		t.Errorf("distinct-line refs = %d, want 3 (Sec. IV-G)", nm.Refs)
	}
	// Table II: C, B in L1; A in shared.
	has := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	if !has(nm.L1Arrays, "C") || !has(nm.L1Arrays, "B") {
		t.Errorf("L1 arrays = %v, want C and B", nm.L1Arrays)
	}
	if !has(nm.SharedArrays, "A") {
		t.Errorf("shared arrays = %v, want A", nm.SharedArrays)
	}
	// H weights: only j carries weight in a 3D nest, scaled by WAF.
	if nm.H["j"] != 2*16 {
		t.Errorf("H_j = %d, want 32", nm.H["j"])
	}
	if nm.H["k"] != 0 || nm.H["i"] != 0 {
		t.Errorf("H_i/H_k = %d/%d, want 0/0", nm.H["i"], nm.H["k"])
	}
}

func TestFP32RelaxesCapacity(t *testing.T) {
	opts := DefaultOptions()
	opts.Precision = affine.FP32
	sel32, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sel64, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// FP32 halves the element size (doubling the capacity in iterations)
	// and halves the register factor: the CMA tile must grow.
	if sel32.Tiles["j"] <= sel64.Tiles["j"] {
		t.Errorf("FP32 T_j = %d should exceed FP64 T_j = %d",
			sel32.Tiles["j"], sel64.Tiles["j"])
	}
}

func TestWarpFractionUnsatThenSat(t *testing.T) {
	// conv-2d's 9x9 window cannot host multiple-of-16 tiles: Sec. V-D
	// reports exactly this (configurations missing because "all tile
	// sizes would need to be multiples of 16").
	k := affine.MustLookup("conv-2d")
	opts := DefaultOptions() // warp fraction 0.5 => step 16
	if _, err := SelectTiles(k, arch.GA100(), opts); err == nil {
		t.Fatal("conv-2d should be UNSAT at warp fraction 0.5")
	}
	opts.WarpFraction = 0.125 // step 4
	sel, err := SelectTiles(k, arch.GA100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"p", "q"} {
		if sel.Tiles[l]%4 != 0 || sel.Tiles[l] > 9 {
			t.Errorf("T_%s = %d: want multiple of 4 within the window", l, sel.Tiles[l])
		}
	}
}

func TestSplitFactorOneUsesL2Bound(t *testing.T) {
	opts := DefaultOptions()
	opts.SplitFactor = 1.0
	// All of L1+shared goes to shared memory; the cache-mapped volumes
	// are bounded by the per-SM L2 share instead (Sec. IV-H). On the
	// Xavier (512KB L2 / 8 SMs) this is a tight bound.
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.Xavier(), opts)
	if err != nil {
		t.Fatal(err)
	}
	l2Elems := arch.Xavier().L2Bytes / 8 / 8 // per SM, FP64
	vol := sel.Tiles["i"]*sel.Tiles["j"] + sel.Tiles["k"]*sel.Tiles["j"]
	if vol > l2Elems {
		t.Errorf("L1-set volume %d exceeds L2 share %d", vol, l2Elems)
	}
}

func TestEnforceThreadBlockLimit(t *testing.T) {
	opts := DefaultOptions()
	opts.EnforceThreadBlockLimit = true
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if prod := sel.Tiles["i"] * sel.Tiles["j"]; prod > 1024 {
		t.Errorf("B_size = %d exceeds T_P_B with the limit enforced", prod)
	}
}

func TestSecondaryShrinkMinimizesSerialTiles(t *testing.T) {
	// The serial tile T_k does not appear in the objective; the secondary
	// pass must shrink it to the domain minimum (16 at warp fraction
	// 0.5) to cut intra-thread liveness (Sec. IV-G).
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tiles["k"] != 16 {
		t.Errorf("T_k = %d, want 16 (minimal)", sel.Tiles["k"])
	}
}

func TestMultiNestSharedTiles(t *testing.T) {
	sel, err := SelectTiles(affine.MustLookup("2mm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nests) != 2 {
		t.Fatalf("2mm should contribute 2 nest models, got %d", len(sel.Nests))
	}
	// One tile per loop name, shared across nests.
	if len(sel.Tiles) != 3 {
		t.Fatalf("2mm tiles = %v, want 3 entries (i, j, k)", sel.Tiles)
	}
}

func TestSingleParallel2DPrefersSerialLoop(t *testing.T) {
	// mvt: one parallel loop (i); the objective must favor growing the
	// serial CMA loop j (Sec. IV-K third sub-case).
	sel, err := SelectTiles(affine.MustLookup("mvt"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tiles["j"] <= sel.Tiles["i"] {
		t.Errorf("mvt tiles %v: T_j should dominate T_i", sel.Tiles)
	}
}

func TestAllCatalogSolvableWithFallback(t *testing.T) {
	fractions := []float64{0.5, 0.25, 0.125}
	for _, gname := range []string{"ga100", "xavier"} {
		g, _ := arch.ByName(gname)
		for _, name := range affine.Catalog() {
			k := affine.MustLookup(name)
			solved := false
			for _, wf := range fractions {
				opts := DefaultOptions()
				opts.WarpFraction = wf
				if sel, err := SelectTiles(k, g, opts); err == nil {
					solved = true
					if sel.SolverCalls < 2 {
						t.Errorf("%s/%s: %d solver calls, want >= 2 (iterative scheme)",
							gname, name, sel.SolverCalls)
					}
					if sel.SolveTime <= 0 {
						t.Errorf("%s/%s: no solve time recorded", gname, name)
					}
					break
				}
			}
			if !solved {
				t.Errorf("%s on %s: unsolvable at every warp fraction", name, gname)
			}
		}
	}
}

func TestSelectionString(t *testing.T) {
	sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := sel.String()
	for _, want := range []string{"gemm", "GA100", "T_i = 16", "T_j = 384", "solver calls"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(sel.Model, "assert") {
		t.Error("Model dump missing assertions")
	}
}

func TestTilesAreWarpAligned(t *testing.T) {
	for _, wf := range []float64{1.0, 0.5, 0.25, 0.125} {
		opts := DefaultOptions()
		opts.WarpFraction = wf
		step := opts.WarpAlignmentFactor(arch.GA100())
		sel, err := SelectTiles(affine.MustLookup("gemm"), arch.GA100(), opts)
		if err != nil {
			t.Fatalf("wf=%.3f: %v", wf, err)
		}
		for name, tile := range sel.Tiles {
			if tile%step != 0 {
				t.Errorf("wf=%.3f: T_%s = %d not a multiple of %d", wf, name, tile, step)
			}
		}
	}
}

func TestExplainGemmBindingConstraint(t *testing.T) {
	k := affine.MustLookup("gemm")
	g := arch.GA100()
	sel, err := SelectTiles(k, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slacks, rendered := Explain(k, g, sel)
	if len(slacks) == 0 {
		t.Fatal("no constraints explained")
	}
	// The paper's walkthrough: L1 capacity binds exactly —
	// (16+16)*384 = 12288 = M_L1.
	var l1 *ConstraintSlack
	for i := range slacks {
		if slacks[i].Resource == "L1 capacity" {
			l1 = &slacks[i]
		}
	}
	if l1 == nil {
		t.Fatalf("no L1 constraint in %+v", slacks)
	}
	if l1.Used != 12288 || l1.Limit != 12288 || l1.Slack() != 0 || !l1.Binding {
		t.Fatalf("L1 constraint = %+v, want exactly binding at 12288", *l1)
	}
	// Registers must have slack (they are not binding in the example).
	for _, s := range slacks {
		if s.Resource == "registers/SM" && s.Slack() <= 0 {
			t.Fatalf("registers unexpectedly binding: %+v", s)
		}
	}
	if !strings.Contains(rendered, "L1 capacity") || !strings.Contains(rendered, "*") {
		t.Fatalf("rendering incomplete:\n%s", rendered)
	}
}

func TestExplainCoversAllNests(t *testing.T) {
	k := affine.MustLookup("2mm")
	g := arch.GA100()
	sel, err := SelectTiles(k, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slacks, _ := Explain(k, g, sel)
	nests := map[string]bool{}
	for _, s := range slacks {
		nests[s.Nest] = true
		if s.Used > s.Limit {
			t.Errorf("constraint violated by the selection itself: %+v", s)
		}
	}
	if len(nests) != 2 {
		t.Fatalf("explained nests = %v, want both", nests)
	}
}
