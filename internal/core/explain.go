package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
)

// ConstraintSlack reports how much headroom one resource constraint has
// under the selected tiles. Slack 0 means the constraint is binding — it
// is what stopped the objective from growing further (in the paper's
// walkthrough, the L1 capacity binds exactly: (Ti+Tk)*Tj = M_L1).
type ConstraintSlack struct {
	Nest     string
	Resource string // "registers/SM", "L1 capacity", "shared capacity", "L2 share"
	Used     int64
	Limit    int64
	// Binding is true when no warp-aligned increase of any tile fits.
	Binding bool
}

// Slack returns Limit - Used.
func (c ConstraintSlack) Slack() int64 { return c.Limit - c.Used }

// Explain evaluates every resource constraint of the selection's
// formulation under its chosen tiles and reports per-constraint usage,
// flagging the binding ones. The second return value renders it. It
// derives the analysis artifact fresh; callers that already hold one
// should use ExplainAnalyzed.
func Explain(k *affine.Kernel, g *arch.GPU, sel *Selection) ([]ConstraintSlack, string) {
	return ExplainAnalyzed(analysis.Analyze(k, nil), g, sel)
}

// ExplainAnalyzed is Explain from a precomputed analysis artifact: the
// reference classification and per-array volume skeletons come from
// prog instead of a fresh per-nest re-derivation.
func ExplainAnalyzed(prog *analysis.Program, g *arch.GPU, sel *Selection) ([]ConstraintSlack, string) {
	opts := sel.Opts
	elemB := opts.Precision.Bytes()
	waf := opts.WarpAlignmentFactor(g)
	pool := g.L1SharedBytes / elemB
	shCap := int64(opts.SplitFactor * float64(pool))
	l1Cap := pool - shCap
	l2Cap := g.L2Bytes / g.SMCount / elemB

	var out []ConstraintSlack
	analysis.CountReuseHits(len(prog.Nests))
	for _, na := range prog.Nests {
		nest := na.Nest
		reuse := na.Reuse

		// B_size and registers.
		bsize := int64(1)
		for _, name := range na.Parallel {
			bsize *= sel.Tiles[name]
		}
		regs := bsize * reuse.DistinctLineRefs * opts.Precision.Factor()
		out = append(out, ConstraintSlack{
			Nest: nest.Name, Resource: "registers/SM",
			Used: regs, Limit: g.RegsPerSM,
			// The smallest possible growth multiplies one parallel tile
			// by at least (T+waf)/T; approximate bindingness as "another
			// waf-step on the smallest parallel tile would not fit".
			Binding: regs+waf*regs/maxI64(bsize, 1) > g.RegsPerSM,
		})

		// Volumes per array, split by class (mirrors SelectTiles).
		var l1Sum, shSum int64
		for _, av := range na.Arrays {
			if len(av.Iters) == 0 {
				continue
			}
			v := int64(1)
			for _, it := range av.Iters {
				v *= sel.Tiles[it]
			}
			if av.L1 || opts.SplitFactor == 0 {
				l1Sum += v
			} else {
				shSum += v
			}
		}
		if shSum > 0 {
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: "shared capacity",
				Used: shSum, Limit: shCap,
				Binding: shSum+waf > shCap,
			})
		}
		if l1Sum > 0 {
			res, limit := "L1 capacity", l1Cap
			if opts.SplitFactor >= 1.0 {
				res, limit = "L2 share", l2Cap
			}
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: res,
				Used: l1Sum, Limit: limit,
				Binding: l1Sum+waf > limit,
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Nest != out[j].Nest {
			return out[i].Nest < out[j].Nest
		}
		return out[i].Resource < out[j].Resource
	})

	var b strings.Builder
	fmt.Fprintf(&b, "constraint usage for %s on %s (tiles %v):\n", sel.Kernel, sel.GPU, tilesInline(sel.Tiles))
	for _, c := range out {
		mark := " "
		if c.Binding {
			mark = "*" // binding
		}
		pct := 0.0
		if c.Limit > 0 {
			pct = 100 * float64(c.Used) / float64(c.Limit)
		}
		fmt.Fprintf(&b, "%s %-10s %-16s %12d / %-12d (%.1f%%)\n",
			mark, c.Nest, c.Resource, c.Used, c.Limit, pct)
	}
	b.WriteString("(* = binding: one more warp-aligned tile step would not fit)\n")
	return out, b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func tilesInline(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, tiles[n])
	}
	return strings.Join(parts, " ")
}
