package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/smt"
)

// ConstraintSlack reports how much headroom one resource constraint has
// under the selected tiles. Slack 0 means the constraint is binding — it
// is what stopped the objective from growing further (in the paper's
// walkthrough, the L1 capacity binds exactly: (Ti+Tk)*Tj = M_L1).
type ConstraintSlack struct {
	Nest     string
	Resource string // "registers/SM", "L1 capacity", "shared capacity", "L2 share"
	Used     int64
	Limit    int64
	// Binding is true when no warp-aligned increase of any tile fits.
	Binding bool
}

// Slack returns Limit - Used.
func (c ConstraintSlack) Slack() int64 { return c.Limit - c.Used }

// Explain evaluates every resource constraint of the selection's
// formulation under its chosen tiles and reports per-constraint usage,
// flagging the binding ones. The second return value renders it. It
// derives the analysis artifact fresh; callers that already hold one
// should use ExplainAnalyzed.
func Explain(k *affine.Kernel, g *arch.GPU, sel *Selection) ([]ConstraintSlack, string) {
	return ExplainAnalyzed(analysis.Analyze(k, nil), g, sel)
}

// ExplainAnalyzed is Explain from a precomputed analysis artifact: the
// reference classification and per-array volume skeletons come from
// prog instead of a fresh per-nest re-derivation.
func ExplainAnalyzed(prog *analysis.Program, g *arch.GPU, sel *Selection) ([]ConstraintSlack, string) {
	opts := sel.Opts
	elemB := opts.Precision.Bytes()
	waf := opts.WarpAlignmentFactor(g)
	pool := g.L1SharedBytes / elemB
	shCap := int64(opts.SplitFactor * float64(pool))
	l1Cap := pool - shCap
	l2Cap := g.L2Bytes / g.SMCount / elemB

	var out []ConstraintSlack
	analysis.CountReuseHits(len(prog.Nests))
	for _, na := range prog.Nests {
		nest := na.Nest
		reuse := na.Reuse

		// B_size and registers.
		bsize := int64(1)
		for _, name := range na.Parallel {
			bsize *= sel.Tiles[name]
		}
		regs := bsize * reuse.DistinctLineRefs * opts.Precision.Factor()
		out = append(out, ConstraintSlack{
			Nest: nest.Name, Resource: "registers/SM",
			Used: regs, Limit: g.RegsPerSM,
			// The smallest possible growth multiplies one parallel tile
			// by at least (T+waf)/T; approximate bindingness as "another
			// waf-step on the smallest parallel tile would not fit".
			Binding: regs+waf*regs/maxI64(bsize, 1) > g.RegsPerSM,
		})

		// Volumes per array, split by class (mirrors SelectTiles).
		var l1Sum, shSum int64
		for _, av := range na.Arrays {
			if len(av.Iters) == 0 {
				continue
			}
			v := int64(1)
			for _, it := range av.Iters {
				v *= sel.Tiles[it]
			}
			if av.L1 || opts.SplitFactor == 0 {
				l1Sum += v
			} else {
				shSum += v
			}
		}
		if shSum > 0 {
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: "shared capacity",
				Used: shSum, Limit: shCap,
				Binding: shSum+waf > shCap,
			})
		}
		if l1Sum > 0 {
			res, limit := "L1 capacity", l1Cap
			if opts.SplitFactor >= 1.0 {
				res, limit = "L2 share", l2Cap
			}
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: res,
				Used: l1Sum, Limit: limit,
				Binding: l1Sum+waf > limit,
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Nest != out[j].Nest {
			return out[i].Nest < out[j].Nest
		}
		return out[i].Resource < out[j].Resource
	})

	var b strings.Builder
	fmt.Fprintf(&b, "constraint usage for %s on %s (tiles %v):\n", sel.Kernel, sel.GPU, tilesInline(sel.Tiles))
	for _, c := range out {
		mark := " "
		if c.Binding {
			mark = "*" // binding
		}
		pct := 0.0
		if c.Limit > 0 {
			pct = 100 * float64(c.Used) / float64(c.Limit)
		}
		fmt.Fprintf(&b, "%s %-10s %-16s %12d / %-12d (%.1f%%)\n",
			mark, c.Nest, c.Resource, c.Used, c.Limit, pct)
	}
	b.WriteString("(* = binding: one more warp-aligned tile step would not fit)\n")
	renderSearch(&b, &sel.Search)
	return out, b.String()
}

// renderSearch appends the deep solver search telemetry carried by the
// selection — prune attribution per labeled constraint, the incumbent
// objective climb of the Maximize rounds, and the search-depth node
// histogram. Every line is deterministic for a fixed formulation (the
// DFS visit order is static), so the output stays golden-testable;
// elapsed times are deliberately omitted.
func renderSearch(b *strings.Builder, st *smt.Stats) {
	if st.Nodes == 0 {
		return
	}
	fmt.Fprintf(b, "\nsolver search (%d calls, %d nodes, %d rounds):\n",
		st.SolverCalls, st.Nodes, st.Rounds)

	if len(st.PruneByConstraint) > 0 {
		var labels []string
		var total int64
		for l, n := range st.PruneByConstraint {
			labels = append(labels, l)
			total += n
		}
		sort.Strings(labels)
		b.WriteString("  prunes by constraint:\n")
		for _, l := range labels {
			n := st.PruneByConstraint[l]
			fmt.Fprintf(b, "    %-16s %8d (%.1f%%)\n", l, n, 100*float64(n)/float64(total))
		}
	}

	if len(st.Incumbents) > 0 {
		b.WriteString("  incumbent objective climb:\n")
		for _, inc := range st.Incumbents {
			fmt.Fprintf(b, "    round %-3d obj=%-10d after %d nodes\n", inc.Round, inc.Objective, inc.Nodes)
		}
	}

	if len(st.DepthNodes) > 0 {
		b.WriteString("  nodes by search depth:")
		for d, n := range st.DepthNodes {
			fmt.Fprintf(b, " %d:%d", d, n)
		}
		b.WriteString("\n")
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func tilesInline(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, tiles[n])
	}
	return strings.Join(parts, " ")
}
