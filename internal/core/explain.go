package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/deps"
)

// ConstraintSlack reports how much headroom one resource constraint has
// under the selected tiles. Slack 0 means the constraint is binding — it
// is what stopped the objective from growing further (in the paper's
// walkthrough, the L1 capacity binds exactly: (Ti+Tk)*Tj = M_L1).
type ConstraintSlack struct {
	Nest     string
	Resource string // "registers/SM", "L1 capacity", "shared capacity", "L2 share"
	Used     int64
	Limit    int64
	// Binding is true when no warp-aligned increase of any tile fits.
	Binding bool
}

// Slack returns Limit - Used.
func (c ConstraintSlack) Slack() int64 { return c.Limit - c.Used }

// Explain evaluates every resource constraint of the selection's
// formulation under its chosen tiles and reports per-constraint usage,
// flagging the binding ones. The second return value renders it.
func Explain(k *affine.Kernel, g *arch.GPU, sel *Selection) ([]ConstraintSlack, string) {
	opts := sel.Opts
	elemB := opts.Precision.Bytes()
	waf := opts.WarpAlignmentFactor(g)
	pool := g.L1SharedBytes / elemB
	shCap := int64(opts.SplitFactor * float64(pool))
	l1Cap := pool - shCap
	l2Cap := g.L2Bytes / g.SMCount / elemB

	var out []ConstraintSlack
	for ni := range k.Nests {
		nest := &k.Nests[ni]
		reuse := deps.AnalyzeReuse(nest)
		info := reuse.Info

		// B_size and registers.
		bsize := int64(1)
		nPar := 0
		for d, l := range nest.Loops {
			if info.Parallel[d] && nPar < 3 {
				bsize *= sel.Tiles[l.Name]
				nPar++
			}
		}
		regs := bsize * reuse.DistinctLineRefs * opts.Precision.Factor()
		out = append(out, ConstraintSlack{
			Nest: nest.Name, Resource: "registers/SM",
			Used: regs, Limit: g.RegsPerSM,
			// The smallest possible growth multiplies one parallel tile
			// by at least (T+waf)/T; approximate bindingness as "another
			// waf-step on the smallest parallel tile would not fit".
			Binding: regs+waf*regs/maxI64(bsize, 1) > g.RegsPerSM,
		})

		// Volumes per array, split by class (mirrors SelectTiles).
		vol := func(iters map[string]bool) int64 {
			v := int64(1)
			for _, l := range nest.Loops {
				if iters[l.Name] {
					v *= sel.Tiles[l.Name]
				}
			}
			return v
		}
		arrIters := map[string]map[string]bool{}
		arrL1 := map[string]bool{}
		var order []string
		for _, rr := range reuse.Refs {
			m, ok := arrIters[rr.Ref.Array]
			if !ok {
				m = map[string]bool{}
				arrIters[rr.Ref.Array] = m
				order = append(order, rr.Ref.Array)
			}
			for _, l := range nest.Loops {
				if rr.Ref.UsesIter(l.Name) {
					m[l.Name] = true
				}
			}
			if rr.Class == deps.MemL1 || opts.SplitFactor == 0 {
				arrL1[rr.Ref.Array] = true
			}
		}
		var l1Sum, shSum int64
		for _, a := range order {
			if len(arrIters[a]) == 0 {
				continue
			}
			if arrL1[a] {
				l1Sum += vol(arrIters[a])
			} else {
				shSum += vol(arrIters[a])
			}
		}
		if shSum > 0 {
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: "shared capacity",
				Used: shSum, Limit: shCap,
				Binding: shSum+waf > shCap,
			})
		}
		if l1Sum > 0 {
			res, limit := "L1 capacity", l1Cap
			if opts.SplitFactor >= 1.0 {
				res, limit = "L2 share", l2Cap
			}
			out = append(out, ConstraintSlack{
				Nest: nest.Name, Resource: res,
				Used: l1Sum, Limit: limit,
				Binding: l1Sum+waf > limit,
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Nest != out[j].Nest {
			return out[i].Nest < out[j].Nest
		}
		return out[i].Resource < out[j].Resource
	})

	var b strings.Builder
	fmt.Fprintf(&b, "constraint usage for %s on %s (tiles %v):\n", sel.Kernel, sel.GPU, tilesInline(sel.Tiles))
	for _, c := range out {
		mark := " "
		if c.Binding {
			mark = "*" // binding
		}
		pct := 0.0
		if c.Limit > 0 {
			pct = 100 * float64(c.Used) / float64(c.Limit)
		}
		fmt.Fprintf(&b, "%s %-10s %-16s %12d / %-12d (%.1f%%)\n",
			mark, c.Nest, c.Resource, c.Used, c.Limit, pct)
	}
	b.WriteString("(* = binding: one more warp-aligned tile step would not fit)\n")
	return out, b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func tilesInline(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, tiles[n])
	}
	return strings.Join(parts, " ")
}
