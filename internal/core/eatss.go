// Package core implements EATSS — the Energy-Aware Tile Size Selection
// scheme that is the paper's contribution. From an affine kernel, a GPU
// description, and the model options (shared-memory split factor, warp
// fraction, precision), it derives the non-linear integer formulation of
// Sec. IV:
//
//   - tile variables bounded by [WAF, min(T_P_B, N)] in warp-aligned steps
//     (IV-B),
//   - per-reference data-tile volumes (IV-C),
//   - the CMA loop l_s1 (IV-D) and the L1/shared reference split (IV-E),
//   - the thread-block size estimate B_size (IV-F),
//   - the register-per-SM bound REG_SM = B_size x refs x FP_factor
//     (IV-G, IV-I),
//   - L1/shared/L2 capacity limits under the split factor (IV-H, IV-J),
//   - the objective OBJ = prod(parallel T_i) + sum(H_i x T_i) (IV-K),
//
// and solves it with the iterative improvement loop of IV-L
// (OBJ_{n+1} > OBJ_n until UNSAT) on the finite-domain solver.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/smt"
	"repro/internal/verify"
)

// Telemetry instruments: selection outcomes and which constraint kinds
// the model generator emits (Sec. IV-G..IV-J), so regressions in the
// formulation are visible without dumping the model.
var (
	mSelections           = obs.NewCounter("core.selections")
	mSelectUnsat          = obs.NewCounter("core.select_unsat")
	mConsTotal            = obs.NewCounter("core.constraints")
	mConsRegister         = obs.NewCounter("core.cons.register")
	mConsShared           = obs.NewCounter("core.cons.capacity_shared")
	mConsL1               = obs.NewCounter("core.cons.capacity_l1")
	mConsL2               = obs.NewCounter("core.cons.capacity_l2")
	mConsBlockLimit       = obs.NewCounter("core.cons.block_limit")
	mShrinkPasses         = obs.NewCounter("core.shrink_passes")
	mSolverCallsPerSelect = obs.NewHistogram("core.solver_calls_per_select", 2, 4, 8, 16, 32)
)

// Options configures one EATSS model generation.
type Options struct {
	// SplitFactor divides the combined L1+shared pool (Sec. IV-J):
	// 0 gives everything to L1, 1.0 everything to shared memory.
	// Typical values: 0, 0.25, 0.5, 0.67, 0.75, 1.0.
	SplitFactor float64
	// WarpFraction scales the warp-alignment factor (Sec. IV-B):
	// tile sizes must be multiples of WarpFraction x T_P_W.
	// 1.0 aligns to full warps (32); 0.5 to 16; 0.125 to 4 — needed for
	// high-dimensional kernels (Sec. V-D).
	WarpFraction float64
	// Precision selects FP32/FP64 (Sec. IV-I).
	Precision affine.Precision
	// ProblemSizeAware tightens tile upper bounds to min(T_P_B, N)
	// using the kernel's parameter bindings (Sec. IV-B). On by default
	// in SelectTiles.
	ProblemSizeAware bool
	// EnforceThreadBlockLimit adds B_size <= T_P_B. The paper states
	// this bound (Sec. IV-A) but its worked matmul solution
	// (Ti=16, Tj=384) exceeds it, relying on the register constraint
	// instead and on PPCG's point-loop strip-mining; we therefore leave
	// it off by default, matching the published artifact's behaviour.
	EnforceThreadBlockLimit bool
	// Verify selects independent certification of each selection
	// (internal/verify): the solver's model is replayed in arbitrary
	// precision and the resource bounds are re-derived without the
	// solver. A failed certification is a hard error.
	Verify verify.Mode
}

// DefaultOptions mirrors the paper's GA100 matmul walkthrough: 50% split,
// half-warp alignment, double precision.
func DefaultOptions() Options {
	return Options{SplitFactor: 0.5, WarpFraction: 0.5, Precision: affine.FP64, ProblemSizeAware: true}
}

// WarpAlignmentFactor returns the tile-size step (Sec. IV-B).
func (o Options) WarpAlignmentFactor(g *arch.GPU) int64 {
	waf := int64(o.WarpFraction * float64(g.ThreadsPerWarp))
	if waf < 1 {
		waf = 1
	}
	return waf
}

// NestModel records how one nest contributed to the formulation.
type NestModel struct {
	Nest     string
	CMALoop  string
	Parallel []string
	// L1Arrays / SharedArrays is the Sec. IV-E reference split.
	L1Arrays     []string
	SharedArrays []string
	// H holds the final objective weights per loop (Sec. IV-K).
	H map[string]int64
	// Refs is the distinct-cache-line reference count (Sec. IV-G).
	Refs int64
}

// Selection is the result of one EATSS solve.
type Selection struct {
	Kernel string
	GPU    string
	Opts   Options

	// Tiles maps loop name -> selected tile size.
	Tiles map[string]int64
	// Objective is the achieved objective value.
	Objective int64
	// Nests documents the per-nest model structure.
	Nests []NestModel
	// SolverCalls and SolveTime reproduce the Sec. V-G measurements.
	SolverCalls int
	SolveTime   time.Duration
	// Search is the main solve's deep search telemetry: per-constraint
	// prune attribution, the search-depth histogram and the incumbent
	// objective timeline of the Maximize climb (Sec. IV-L / V-G). It is
	// snapshotted before the secondary shrink pass, whose calls appear
	// only in SolverCalls above.
	Search smt.Stats
	// Model is the generated formulation in readable form.
	Model string
	// Witness is the solved problem plus the final model, kept so an
	// independent checker (internal/verify, eatss.Certify) can re-decide
	// every constraint without re-running the search.
	Witness *smt.Witness
}

// SelectTiles builds and solves the EATSS formulation for a kernel.
// It returns an error when the formulation is unsatisfiable (e.g. the warp
// fraction is too coarse for the kernel's resource envelope — Sec. V-D).
func SelectTiles(k *affine.Kernel, g *arch.GPU, opts Options) (*Selection, error) {
	return SelectTilesCtx(context.Background(), k, g, opts)
}

// SelectTilesCtx is SelectTiles with the caller's context threaded
// through, so the model-generation and solver-round spans nest under the
// caller's obs span. It derives the analysis artifact fresh; callers
// solving the same kernel repeatedly (different Options) should build
// one analysis.Program and use SelectTilesAnalyzed.
func SelectTilesCtx(ctx context.Context, k *affine.Kernel, g *arch.GPU, opts Options) (*Selection, error) {
	return SelectTilesAnalyzed(ctx, analysis.AnalyzeCtx(ctx, k, nil), g, opts)
}

// SelectTilesAnalyzed builds and solves the EATSS formulation from a
// precomputed analysis artifact. The model generation splits into the
// tile-independent skeleton carried by prog (reuse, classification, H
// skeletons, extents) and the cheap per-Options instantiation done here
// (warp-alignment steps, the L1/shared capacity split, precision
// scaling), so e.g. SelectBest's 3 shared-splits x 3 warp-fractions
// reuse one analysis instead of nine re-derivations. Results are
// identical to SelectTilesCtx on the same kernel.
func SelectTilesAnalyzed(ctx context.Context, prog *analysis.Program, g *arch.GPU, opts Options) (*Selection, error) {
	start := obs.Now()
	k := prog.Kernel
	if opts.WarpFraction == 0 {
		opts.WarpFraction = 1.0
	}
	ctx, root := obs.Start(ctx, "core.select_tiles")
	defer root.End()
	root.SetStr("kernel", k.Name)
	root.SetStr("gpu", g.Name)
	root.SetFloat("split", opts.SplitFactor)
	root.SetFloat("warpfrac", opts.WarpFraction)
	_, gen := obs.Start(ctx, "core.model_gen")
	waf := opts.WarpAlignmentFactor(g)
	elemB := opts.Precision.Bytes()

	p := smt.NewProblem()
	vars := make(map[string]smt.Var)
	sel := &Selection{
		Kernel: k.Name,
		GPU:    g.Name,
		Opts:   opts,
		Tiles:  make(map[string]int64),
	}

	// --- IV-B: tile variables with warp-aligned bounded domains ---
	// Bounds intersect across nests sharing a loop name (kernel-wide
	// tiles, Sec. IV-M ii).
	upper := make(map[string]int64)
	var names []string
	for _, na := range prog.Nests {
		for _, l := range na.Nest.Loops {
			hi := g.ThreadsPerBlock
			if opts.ProblemSizeAware {
				if ext := na.Extents[l.Name]; ext < hi {
					hi = ext
				}
			}
			if prev, ok := upper[l.Name]; !ok || hi < prev {
				if !ok {
					names = append(names, l.Name)
				}
				upper[l.Name] = hi
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		vars[name] = p.RangeVar("T_"+name, 1, upper[name], waf)
	}

	// --- per-nest constraints and objective terms ---
	var objTerms []smt.Expr
	var objParts []string
	seenParallelProd := make(map[string]bool)
	analysis.CountReuseHits(len(prog.Nests))
	for _, na := range prog.Nests {
		nest := na.Nest
		reuse := na.Reuse

		nm := NestModel{
			Nest:    nest.Name,
			CMALoop: reuse.CMALoop,
			H:       make(map[string]int64),
		}

		// IV-F: up to the first three parallel loops define B_size
		// (precomputed by the analysis).
		parallel := append([]string(nil), na.Parallel...)
		nm.Parallel = parallel
		if len(parallel) == 0 {
			gen.End()
			root.SetStr("error", "no parallel loops")
			return nil, fmt.Errorf("core: nest %q has no parallel loops", nest.Name)
		}
		var bsizeFactors []smt.Expr
		for _, name := range parallel {
			bsizeFactors = append(bsizeFactors, smt.V(vars[name]))
		}
		bsize := smt.Mul(bsizeFactors...)
		if opts.EnforceThreadBlockLimit {
			p.RequireLabeled("block-limit", bsize, smt.LE, smt.C(g.ThreadsPerBlock))
			mConsBlockLimit.Add(1)
		}

		// IV-G / IV-I: REG_SM = B_size x no.references x FP_factor.
		nm.Refs = reuse.DistinctLineRefs
		regSM := smt.Mul(bsize, smt.C(nm.Refs*opts.Precision.Factor()))
		p.RequireLabeled("register", regSM, smt.LE, smt.C(g.RegsPerSM))
		mConsRegister.Add(1)

		// IV-C volumes + IV-E split into L1/shared capacity sums, from
		// the precomputed per-array skeletons. Capacities are in
		// loop-iteration units: bytes / element size (Sec. IV-J "scaled
		// down based on the byte width"). A zero split gives the whole
		// pool to the L1 cache (Sec. IV-J): every reference is
		// cache-mapped regardless of its classification.
		var l1Vols, shVols []smt.Expr
		for _, av := range na.Arrays {
			if len(av.Iters) == 0 {
				continue // scalar: negligible volume
			}
			factors := make([]smt.Expr, len(av.Iters))
			for i, it := range av.Iters {
				factors[i] = smt.V(vars[it])
			}
			vol := smt.Mul(factors...)
			if av.L1 || opts.SplitFactor == 0 {
				l1Vols = append(l1Vols, vol)
				nm.L1Arrays = append(nm.L1Arrays, av.Array)
			} else {
				shVols = append(shVols, vol)
				nm.SharedArrays = append(nm.SharedArrays, av.Array)
			}
		}
		pool := g.L1SharedBytes / elemB
		shCap := int64(opts.SplitFactor * float64(pool))
		l1Cap := pool - shCap
		if len(shVols) > 0 {
			p.RequireLabeled("shared-capacity", smt.Sum(shVols...), smt.LE, smt.C(shCap))
			mConsShared.Add(1)
		}
		if len(l1Vols) > 0 {
			if opts.SplitFactor >= 1.0 {
				// IV-H: with the whole pool given to shared memory the
				// L1 constraint is dropped and the per-SM L2 share
				// bounds the cache-mapped volumes instead.
				l2Cap := g.L2Bytes / g.SMCount / elemB
				p.RequireLabeled("l2-share", smt.Sum(l1Vols...), smt.LE, smt.C(l2Cap))
				mConsL2.Add(1)
			} else {
				p.RequireLabeled("l1-capacity", smt.Sum(l1Vols...), smt.LE, smt.C(l1Cap))
				mConsL1.Add(1)
			}
		}

		// IV-K: objective weights — the precomputed skeleton scaled by
		// the warp-alignment factor on the CMA loop.
		for _, l := range nest.Loops {
			h, ok := na.HSkeleton[l.Name]
			if !ok {
				continue
			}
			if h > 0 && l.Name == reuse.CMALoop {
				h *= waf
			}
			nm.H[l.Name] = h
			if h > 0 {
				objTerms = append(objTerms, smt.Scale(h, smt.V(vars[l.Name])))
				objParts = append(objParts, fmt.Sprintf("%d*T_%s", h, l.Name))
			}
		}

		// Parallelism term, once per distinct parallel-loop set.
		key := strings.Join(parallel, ",")
		if !seenParallelProd[key] {
			seenParallelProd[key] = true
			objTerms = append(objTerms, bsize)
			prod := make([]string, len(parallel))
			for i, p := range parallel {
				prod[i] = "T_" + p
			}
			objParts = append(objParts, strings.Join(prod, "*"))
		}

		sel.Nests = append(sel.Nests, nm)
	}

	obj := smt.Sum(objTerms...)
	sel.Model = p.String() + "(maximize " + strings.Join(objParts, " + ") + ")\n"
	gen.SetInt("vars", int64(p.NumVars()))
	gen.SetInt("constraints", int64(p.Constraints()))
	gen.End()
	mConsTotal.Add(int64(p.Constraints()))

	// --- IV-L: iterative maximization ---
	sctx, solve := obs.Start(ctx, "core.solve")
	solver := smt.NewSolver(p)
	solver.Name = k.Name
	model, best, ok := solver.MaximizeCtx(sctx, obj)
	if err := ctx.Err(); err != nil {
		// Cancelled mid-solve: the search was interrupted, so an
		// unsatisfiable outcome here is indistinguishable from an
		// unfinished one — report the interruption, not UNSAT.
		solve.SetBool("canceled", true)
		solve.End()
		return nil, fmt.Errorf("core: tile selection for %s on %s interrupted: %w", k.Name, g.Name, err)
	}
	if !ok {
		solve.SetBool("sat", false)
		solve.End()
		root.SetBool("unsat", true)
		mSelectUnsat.Add(1)
		return nil, fmt.Errorf("core: formulation for %s on %s is unsatisfiable (warp fraction %.3f too coarse?)",
			k.Name, g.Name, opts.WarpFraction)
	}
	solve.SetInt("objective", best)
	solve.SetInt("solver_calls", int64(solver.Stats.SolverCalls))
	solve.SetInt("nodes", solver.Stats.Nodes)
	solve.End()
	sel.Objective = best

	// Secondary pass (Sec. IV-G's preference): among objective-optimal
	// solutions, shrink the tiles that do not appear in the objective —
	// serial loops carrying only temporal reuse — to cut liveness.
	inObj := map[smt.Var]bool{}
	objVars := map[smt.Var]bool{}
	obj.CollectVars(objVars)
	for v := range objVars {
		inObj[v] = true
	}
	var shrink []smt.Expr
	for _, name := range names {
		if !inObj[vars[name]] {
			shrink = append(shrink, smt.Scale(-1, smt.V(vars[name])))
		}
	}
	// Deep search telemetry of the main solve, snapshotted before the
	// shrink pass below overwrites the incumbent timeline's meaning.
	sel.Search = solver.Stats

	if len(shrink) > 0 {
		shctx, shr := obs.Start(ctx, "core.shrink")
		mShrinkPasses.Add(1)
		p.RequireEQ(obj, smt.C(best))
		solver2 := smt.NewSolver(p)
		solver2.Name = k.Name + "/shrink"
		if m2, _, ok2 := solver2.MaximizeCtx(shctx, smt.Sum(shrink...)); ok2 && ctx.Err() == nil {
			model = m2
		}
		solver.Stats.SolverCalls += solver2.Stats.SolverCalls
		shr.SetInt("solver_calls", int64(solver2.Stats.SolverCalls))
		shr.End()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: tile selection for %s on %s interrupted: %w", k.Name, g.Name, err)
		}
	}

	for _, name := range names {
		sel.Tiles[name] = model.Value(vars[name])
	}
	wvars := make(map[string]smt.Var, len(vars))
	for name, v := range vars {
		wvars["T_"+name] = v
	}
	sel.Witness = &smt.Witness{Problem: p, Model: model, Vars: wvars}
	sel.SolverCalls = solver.Stats.SolverCalls
	sel.SolveTime = obs.Now().Sub(start)

	if opts.Verify.ShouldVerify(verifyKey(k.Name, g.Name, opts)) {
		if err := verify.CertifySelection(selectionFacts(prog, g, sel)); err != nil {
			root.SetStr("verify_error", err.Error())
			mVerifyFailures.Add(1)
			return nil, fmt.Errorf("core: selection for %s on %s failed certification: %w", k.Name, g.Name, err)
		}
		mVerified.Add(1)
	}
	mSelections.Add(1)
	mSolverCallsPerSelect.Observe(float64(sel.SolverCalls))
	root.SetInt("objective", sel.Objective)
	root.SetInt("solver_calls", int64(sel.SolverCalls))
	return sel, nil
}

// String summarizes a selection.
func (s *Selection) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EATSS %s on %s (split=%.2f, warpfrac=%.3f, %s): obj=%d, %d solver calls, %s\n",
		s.Kernel, s.GPU, s.Opts.SplitFactor, s.Opts.WarpFraction, s.Opts.Precision,
		s.Objective, s.SolverCalls, s.SolveTime.Round(time.Microsecond))
	var names []string
	for name := range s.Tiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  T_%s = %d\n", name, s.Tiles[name])
	}
	return b.String()
}
