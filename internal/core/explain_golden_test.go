package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExplainGoldenGemmGA100 pins Explain's rendered constraint-slack
// report for the paper's walkthrough (gemm on the GA100 under
// DefaultOptions). The report is deterministic — constraints are sorted
// by (nest, resource) and carry no timing — so any drift means the
// analysis staging or the slack arithmetic changed.
func TestExplainGoldenGemmGA100(t *testing.T) {
	k := affine.MustLookup("gemm")
	g := arch.GA100()
	sel, err := SelectTiles(k, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slacks, rendered := Explain(k, g, sel)
	if len(slacks) == 0 {
		t.Fatal("Explain returned no constraints")
	}

	path := filepath.Join("testdata", "explain_gemm_ga100.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -run Golden -update` to create it)", err)
	}
	if rendered != string(want) {
		t.Fatalf("Explain report drifted from golden.\n--- got ---\n%s--- want ---\n%s", rendered, want)
	}
}
