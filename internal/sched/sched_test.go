package sched

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/parser"
)

// permutedGemm is gemm written with the reduction loop outermost — the
// adversarial input order the scheduler must normalize.
const permutedGemm = `
kernel gemm_kji {
  param NI = 4000, NJ = 4000, NK = 4000
  array C[NI][NJ], A[NI][NK], B[NK][NJ]
  nest matmul {
    for k in 0..NK
    for i in 0..NI
    for j in 0..NJ {
      S0: C[i][j] += A[i][k] * B[k][j]
    }
  }
}
`

func TestScheduleNormalizesPermutedGemm(t *testing.T) {
	k, err := parser.Parse(permutedGemm)
	if err != nil {
		t.Fatal(err)
	}
	plans := ScheduleKernel(k)
	if len(plans) != 1 || !plans[0].Changed {
		t.Fatalf("plans = %+v, want a changed permutation", plans)
	}
	order := loopNames(&k.Nests[0])
	// Parallel loops out, CMA loop (j) last in the parallel band, serial
	// k innermost.
	if order[0] != "i" || order[1] != "j" || order[2] != "k" {
		t.Fatalf("order = %v, want [i j k]", order)
	}
	// After scheduling, EATSS must find the paper's solution on the
	// formerly-permuted kernel.
	sel, err := core.SelectTiles(k, arch.GA100(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tiles["i"] != 16 || sel.Tiles["j"] != 384 || sel.Tiles["k"] != 16 {
		t.Fatalf("EATSS on scheduled gemm = %v, want (16, 384, 16)", sel.Tiles)
	}
}

func TestScheduleCatalogSoundAndCanonical(t *testing.T) {
	// Scheduling the catalog must (a) keep every nest's parallelism
	// classification sound (verified with the exact oracle) and (b)
	// produce the canonical shape: no serial loop before a parallel one
	// whenever the permutation was applied. Most catalog nests are
	// already canonical; the single-parallel-loop reductions (atax's
	// second nest, bicg) legally interchange — reductions commute.
	for _, name := range affine.Catalog() {
		cp := affine.MustLookup(name).Clone()
		plans := ScheduleKernel(cp)
		for ni := range cp.Nests {
			n := &cp.Nests[ni]
			info := deps.AnalyzeNest(n)
			if plans[ni].Changed {
				// Canonical: parallel band is a prefix.
				seenSerial := false
				for d := range n.Loops {
					if !info.Parallel[d] {
						seenSerial = true
					} else if seenSerial {
						t.Errorf("%s nest %s: parallel loop after serial in %v",
							name, n.Name, plans[ni].Order)
					}
				}
			}
			// Soundness under small sizes.
			params := map[string]int64{}
			for pn, v := range cp.Params {
				if v > 12 {
					v = 12
				}
				params[pn] = v
			}
			if v, err := deps.VerifyParallelism(n, params); err != nil || len(v) > 0 {
				t.Errorf("%s nest %s: post-schedule soundness: %v %v", name, n.Name, v, err)
			}
		}
	}
}

func TestScheduleRejectsBackwardDependence(t *testing.T) {
	// S: A[i][j] = A[i-1][j+1]: distance (1, -1). Swapping i and j
	// would make the first nonzero component negative — illegal — so
	// the loops must stay put even though j is the CMA loop... here
	// both loops are serialized by the star-free dependence; build it
	// directly to control the components.
	i, j := affine.NewIter("i"), affine.NewIter("j")
	n := &affine.Nest{
		Name: "skew",
		Loops: []affine.Loop{
			{Name: "i", Upper: affine.NewConst(64)},
			{Name: "j", Lower: affine.NewConst(1), Upper: affine.NewConst(63)},
		},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{i, j}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{i.AddConst(-1), j.AddConst(1)}},
			},
		}},
	}
	orig := loopNames(n)
	plan := ScheduleNest(n)
	after := loopNames(n)
	for idx := range orig {
		if orig[idx] != after[idx] {
			// If the order changed, it must still be legal: verify with
			// the exact oracle that no parallel-classified loop carries.
			if v, err := deps.VerifyParallelism(n, nil); err != nil || len(v) > 0 {
				t.Fatalf("illegal reordering applied: plan=%+v violations=%v err=%v", plan, v, err)
			}
		}
	}
}

func TestScheduleMovesSerialCMAInward(t *testing.T) {
	// mvt-like nest written serial-first: for j (serial) / for i
	// (parallel): x[i] += A[i][j]*y[j]. Canonical order: i then j.
	src := `
kernel mv_ji {
  param N = 4000
  array A[N][N], x[N], y[N]
  nest mv {
    for j in 0..N
    for i in 0..N {
      S: x[i] += A[i][j] * y[j]
    }
  }
}
`
	k, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plans := ScheduleKernel(k)
	order := loopNames(&k.Nests[0])
	if order[0] != "i" || order[1] != "j" {
		t.Fatalf("order = %v (plan %+v), want [i j]", order, plans[0])
	}
	info := deps.AnalyzeNest(&k.Nests[0])
	if !info.Parallel[0] || info.Parallel[1] {
		t.Fatalf("after scheduling: Parallel = %v, want [true false]", info.Parallel)
	}
}
