// Package sched implements the loop-scheduling step that PPCG's isl-based
// scheduler performs before tiling: it permutes a nest's loops into a
// GPU-friendly canonical order — parallel loops outermost, the coalescing
// (CMA) loop as the innermost parallel loop, reduction/serial loops
// innermost — subject to legality (a permutation is applied only when
// every dependence remains lexicographically non-negative).
//
// The built-in catalog is already written in this order; the scheduler
// exists so kernels arriving through the DSL in arbitrary loop orders are
// normalized before EATSS and the mapper see them.
package sched

import (
	"sort"

	"repro/internal/affine"
	"repro/internal/deps"
)

// Plan records the permutation chosen for one nest.
type Plan struct {
	Nest string
	// Order holds loop names in their new outermost-first order.
	Order []string
	// Changed reports whether the permutation differs from the original.
	Changed bool
	// Legal is false when the desired permutation was rejected by the
	// dependence legality check and the original order was kept.
	Legal bool
}

// ScheduleNest computes and applies the canonical loop order to a nest
// in place. It returns the plan describing what happened.
func ScheduleNest(n *affine.Nest) Plan {
	reuse := deps.AnalyzeReuse(n)
	info := reuse.Info

	type loopRank struct {
		idx  int
		name string
		rank int
	}
	ranks := make([]loopRank, n.Depth())
	for d, l := range n.Loops {
		// Rank classes (ascending = outermore):
		//   0: parallel, not the CMA loop
		//   1: parallel CMA loop (innermost of the parallel band,
		//      closest to thread-x)
		//   2: serial loops
		r := 2
		if info.Parallel[d] {
			if l.Name == reuse.CMALoop {
				r = 1
			} else {
				r = 0
			}
		}
		ranks[d] = loopRank{idx: d, name: l.Name, rank: r}
	}
	sort.SliceStable(ranks, func(i, j int) bool { return ranks[i].rank < ranks[j].rank })

	perm := make([]int, n.Depth())
	changed := false
	for newPos, lr := range ranks {
		perm[newPos] = lr.idx
		if lr.idx != newPos {
			changed = true
		}
	}

	plan := Plan{Nest: n.Name, Legal: true}
	for _, lr := range ranks {
		plan.Order = append(plan.Order, lr.name)
	}
	if !changed {
		return plan
	}
	if !permutationLegal(info, perm) {
		plan.Order = loopNames(n)
		return plan // Legal stays true: we keep the (legal) original
	}

	applyPermutation(n, perm)
	plan.Changed = true
	return plan
}

// ScheduleKernel schedules every nest of the kernel in place.
func ScheduleKernel(k *affine.Kernel) []Plan {
	plans := make([]Plan, len(k.Nests))
	for i := range k.Nests {
		plans[i] = ScheduleNest(&k.Nests[i])
	}
	return plans
}

func loopNames(n *affine.Nest) []string {
	out := make([]string, n.Depth())
	for i, l := range n.Loops {
		out[i] = l.Name
	}
	return out
}

// permutationLegal checks that every dependence keeps a lexicographically
// positive distance vector under the permutation — except associative
// reduction self-updates, which commute and may be reordered freely.
func permutationLegal(info *deps.NestInfo, perm []int) bool {
	for _, dep := range info.Deps {
		if dep.ReductionAssoc {
			continue
		}
		if !depLegalUnder(dep, perm) {
			return false
		}
	}
	return true
}

// depLegalUnder canonicalizes the dependence's direction (the analysis
// stores reference pairs in arbitrary order, so the true source-to-sink
// distance is the stored vector or its negation — whichever is
// lexicographically positive in the original loop order) and then checks
// that the permuted vector stays lexicographically non-negative. Star
// (unknown-distance) components make the sign undecidable and reject the
// permutation conservatively.
func depLegalUnder(dep deps.Dependence, perm []int) bool {
	comps := make([]int64, len(dep.Components))
	sign := int64(0)
	for i, c := range dep.Components {
		if c.Kind == deps.Star {
			return false // unknown sign: conservative
		}
		comps[i] = c.Dist
		if sign == 0 && c.Dist != 0 {
			if c.Dist > 0 {
				sign = 1
			} else {
				sign = -1
			}
		}
	}
	if sign == -1 {
		for i := range comps {
			comps[i] = -comps[i]
		}
	}
	// Check lexicographic non-negativity under the new order.
	for _, src := range perm {
		switch {
		case comps[src] > 0:
			return true
		case comps[src] < 0:
			return false
		}
	}
	return true // loop-independent
}

// applyPermutation reorders the nest's loops.
func applyPermutation(n *affine.Nest, perm []int) {
	loops := make([]affine.Loop, len(perm))
	for newPos, old := range perm {
		loops[newPos] = n.Loops[old]
	}
	n.Loops = loops
}
