package parser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
)

// Write serializes a kernel back into the DSL. Parse(Write(k)) yields a
// kernel equivalent to k (round-trip property, tested), which makes the
// DSL a durable interchange format for custom kernels.
func Write(k *affine.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s {\n", k.Name)

	// Parameters, sorted for determinism.
	if len(k.Params) > 0 {
		names := make([]string, 0, len(k.Params))
		for n := range k.Params {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%s = %d", n, k.Params[n])
		}
		fmt.Fprintf(&b, "  param %s\n", strings.Join(parts, ", "))
	}

	if len(k.Arrays) > 0 {
		parts := make([]string, len(k.Arrays))
		for i, a := range k.Arrays {
			var dims strings.Builder
			for _, d := range a.Dims {
				fmt.Fprintf(&dims, "[%s]", d.String())
			}
			parts[i] = a.Name + dims.String()
		}
		fmt.Fprintf(&b, "  array %s\n", strings.Join(parts, ", "))
	}

	for _, n := range k.Nests {
		b.WriteString("  ")
		if n.RepeatCount(map[string]int64{}) != 1 || len(n.Repeat.Params) > 0 {
			// Repeat is always a single parameter in the IR we build.
			for p := range n.Repeat.Params {
				fmt.Fprintf(&b, "repeat %s ", p)
			}
		}
		fmt.Fprintf(&b, "nest %s {\n", n.Name)
		for _, l := range n.Loops {
			fmt.Fprintf(&b, "    for %s in %s..%s\n", l.Name, l.Lower.String(), l.Upper.String())
		}
		b.WriteString("    {\n")
		for _, st := range n.Body {
			b.WriteString("      ")
			b.WriteString(formatStatement(st))
			b.WriteString("\n")
		}
		b.WriteString("    }\n  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// formatStatement renders one statement in DSL syntax.
func formatStatement(st affine.Statement) string {
	var writes, reads []affine.Ref
	for _, r := range st.Refs {
		if r.Write {
			writes = append(writes, r)
		} else {
			reads = append(reads, r)
		}
	}
	op := "="
	if st.Reduction {
		op = "+="
		// Drop the implicit accumulator read (re-added by the parser).
		if len(writes) == 1 {
			var kept []affine.Ref
			dropped := false
			for _, r := range reads {
				if !dropped && r.String() == refNoWrite(writes[0]).String() {
					dropped = true
					continue
				}
				kept = append(kept, r)
			}
			reads = kept
		}
	}
	var rhs []string
	for _, r := range reads {
		rhs = append(rhs, r.String())
	}
	if len(rhs) == 0 {
		rhs = []string{"0"}
	}
	lhs := ""
	if len(writes) > 0 {
		lhs = writes[0].String()
	}
	return fmt.Sprintf("%s: %s %s %s @flops(%d)",
		st.Name, lhs, op, strings.Join(rhs, " * "), st.FlopsPerIter)
}

func refNoWrite(r affine.Ref) affine.Ref {
	r.Write = false
	return r
}
