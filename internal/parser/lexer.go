// Package parser implements a small domain-specific language for defining
// affine kernels, so the pipeline can run on programs beyond the built-in
// catalog. The syntax mirrors the pseudo-C the paper uses:
//
//	kernel gemm {
//	  param NI = 4000, NJ = 4000, NK = 4000
//	  array C[NI][NJ], A[NI][NK], B[NK][NJ]
//	  nest matmul {
//	    for i in 0..NI
//	    for j in 0..NJ
//	    for k in 0..NK {
//	      S0: C[i][j] += A[i][k] * B[k][j]
//	    }
//	  }
//	}
//
// Loop bounds and subscripts are affine expressions over iterators,
// parameters and integer literals. `=` statements are pointwise;
// `+=` statements are reductions. A trailing `@flops(n)` overrides the
// default per-iteration flop count (the number of arithmetic operators on
// the right-hand side). A nest may be prefixed `repeat <param>` to model a
// sequential host-side loop (e.g. a stencil's time loop).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol  // one of  { } [ ] ( ) , : ; = + - * / . @ < >
	tokDotDot  // ..
	tokPlusEq  // +=
	tokComment // skipped by the lexer; never emitted
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse or lex error with position information.
type Error struct {
	// File names the source for rendering ("kernel DSL" when parsed
	// from an anonymous string — see ParseNamed).
	File      string
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	file := e.File
	if file == "" {
		file = "kernel DSL"
	}
	return fmt.Sprintf("%s:%d:%d: %s", file, e.Line, e.Col, e.Msg)
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			goto lexeme
		}
	}
	return token{kind: tokEOF, line: lx.line, col: lx.col}, nil

lexeme:
	startLine, startCol := lx.line, lx.col
	c := lx.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		var b strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				b.WriteByte(lx.advance())
				continue
			}
			break
		}
		return token{kind: tokIdent, text: b.String(), line: startLine, col: startCol}, nil

	case unicode.IsDigit(rune(c)):
		var b strings.Builder
		for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
			b.WriteByte(lx.advance())
		}
		return token{kind: tokNumber, text: b.String(), line: startLine, col: startCol}, nil

	case c == '.':
		lx.advance()
		if lx.peekByte() == '.' {
			lx.advance()
			return token{kind: tokDotDot, text: "..", line: startLine, col: startCol}, nil
		}
		return token{}, &Error{Line: startLine, Col: startCol, Msg: "unexpected '.'"}

	case c == '+':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokPlusEq, text: "+=", line: startLine, col: startCol}, nil
		}
		return token{kind: tokSymbol, text: "+", line: startLine, col: startCol}, nil

	case strings.IndexByte("{}[](),:;=-*/@<>", c) >= 0:
		lx.advance()
		return token{kind: tokSymbol, text: string(c), line: startLine, col: startCol}, nil
	}
	return token{}, &Error{Line: startLine, Col: startCol, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// lexAll tokenizes the whole input (used by the parser, which needs
// lookahead).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
