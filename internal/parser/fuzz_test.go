package parser_test

import (
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/parser"
)

// FuzzParse asserts the robustness contract of the front end: Parse never
// panics, and whenever it succeeds the kernel passes validation and
// round-trips through Write.
func FuzzParse(f *testing.F) {
	f.Add(gemmSrc)
	f.Add("kernel k { param N = 8 array A[N] nest n { for i in 0..N { S: A[i] = A[i] } } }")
	f.Add("kernel k { param N = 8 array A[N][N] nest n { for i in 0..N for j in 0..N { S: A[i][j] += A[i][j] } } }")
	f.Add("kernel k {")
	f.Add("")
	f.Add("kernel 2mm { param N = 4 }")
	f.Add("kernel k { param N = 8 array A[2*N+1] nest n { for i in 0..N { S: A[2*i+1] = A[0] } } }")
	f.Add("# only a comment")
	f.Add(parser.Write(affine.MustLookup("heat-3d")))
	f.Add(strings.Repeat("kernel ", 50))

	f.Fuzz(func(t *testing.T, src string) {
		k, err := parser.Parse(src) // must not panic
		if err != nil {
			return
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("Parse returned an invalid kernel: %v", err)
		}
		// Successful parses must round-trip.
		back, err := parser.Parse(parser.Write(k))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, parser.Write(k))
		}
		if back.Name != k.Name || len(back.Nests) != len(k.Nests) {
			t.Fatal("round trip changed kernel structure")
		}
	})
}
