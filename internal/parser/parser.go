package parser

import (
	"fmt"
	"strconv"

	"repro/internal/affine"
)

// Parse parses a kernel definition and returns the validated kernel.
// Statements, references, loops, arrays and nests carry their source
// positions (affine.Pos), so downstream diagnostics (internal/lint)
// point at the offending DSL line.
func Parse(src string) (*affine.Kernel, error) {
	return ParseNamed(src, "")
}

// ParseNamed is Parse with a source name (typically the file path)
// stamped into every positioned error, so parse failures render
// "file:line:col: message". An empty name keeps the "kernel DSL" prefix.
func ParseNamed(src, name string) (*affine.Kernel, error) {
	k, err := parse(src)
	if err != nil {
		if perr, ok := err.(*Error); ok && name != "" && perr.File == "" {
			perr.File = name
		}
		return nil, err
	}
	return k, nil
}

func parse(src string) (*affine.Kernel, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	k, err := p.kernel()
	if err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

type parser struct {
	toks []token
	pos  int

	params map[string]bool // declared parameter names
	iters  map[string]bool // iterators in scope (current nest)
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// pos converts a token's position into the IR's position type.
func pos(t token) affine.Pos { return affine.Pos{Line: t.line, Col: t.col} }

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(s string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != s {
		return p.errorf(t, "expected %q, found %s", s, t)
	}
	p.advance()
	return nil
}

// expectKeyword consumes the given identifier keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != kw {
		return p.errorf(t, "expected %q, found %s", kw, t)
	}
	p.advance()
	return nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf(t, "expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) number() (int64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errorf(t, "expected number, found %s", t)
	}
	p.advance()
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errorf(t, "bad number %q", t.text)
	}
	return v, nil
}

// kernelName reads a kernel name, which — unlike other identifiers — may
// start with a digit and contain dashes ("2mm", "heat-3d"). The lexer
// splits such names into adjacent tokens; they are re-joined here as long
// as they touch (no whitespace in between).
func (p *parser) kernelName() (string, error) {
	t := p.cur()
	if t.kind != tokIdent && t.kind != tokNumber {
		return "", p.errorf(t, "expected kernel name, found %s", t)
	}
	name := t.text
	endCol := t.col + len(t.text)
	line := t.line
	p.advance()
	for {
		t := p.cur()
		adjacent := t.line == line && t.col == endCol
		joinable := t.kind == tokIdent || t.kind == tokNumber ||
			(t.kind == tokSymbol && t.text == "-")
		if !adjacent || !joinable {
			return name, nil
		}
		name += t.text
		endCol += len(t.text)
		p.advance()
	}
}

// kernel := "kernel" name "{" section* "}"
func (p *parser) kernel() (*affine.Kernel, error) {
	if err := p.expectKeyword("kernel"); err != nil {
		return nil, err
	}
	name, err := p.kernelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}

	k := &affine.Kernel{Name: name, Params: map[string]int64{}}
	p.params = map[string]bool{}

	for {
		t := p.cur()
		if t.kind == tokSymbol && t.text == "}" {
			p.advance()
			break
		}
		if t.kind == tokEOF {
			return nil, p.errorf(t, "unterminated kernel body")
		}
		switch {
		case t.kind == tokIdent && t.text == "param":
			if err := p.paramSection(k); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "array":
			if err := p.arraySection(k); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && (t.text == "nest" || t.text == "repeat"):
			if err := p.nestSection(k); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf(t, "expected 'param', 'array', 'nest' or 'repeat', found %s", t)
		}
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errorf(t, "trailing input after kernel body")
	}
	return k, nil
}

// paramSection := "param" name "=" number ("," name "=" number)*
func (p *parser) paramSection(k *affine.Kernel) error {
	p.advance() // 'param'
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		v, err := p.number()
		if err != nil {
			return err
		}
		if p.params[name] {
			return p.errorf(p.cur(), "parameter %q declared twice", name)
		}
		p.params[name] = true
		k.Params[name] = v
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		return nil
	}
}

// arraySection := "array" arrayDecl ("," arrayDecl)*
// arrayDecl    := name ("[" expr "]")+
func (p *parser) arraySection(k *affine.Kernel) error {
	p.advance() // 'array'
	for {
		at := p.cur()
		name, err := p.ident()
		if err != nil {
			return err
		}
		var dims []affine.Expr
		for p.cur().kind == tokSymbol && p.cur().text == "[" {
			p.advance()
			e, err := p.affineExpr()
			if err != nil {
				return err
			}
			if len(e.Iters) != 0 {
				return p.errorf(p.cur(), "array %q dimension uses a loop iterator", name)
			}
			dims = append(dims, e)
			if err := p.expectSymbol("]"); err != nil {
				return err
			}
		}
		if len(dims) == 0 {
			return p.errorf(p.cur(), "array %q has no dimensions", name)
		}
		k.Arrays = append(k.Arrays, affine.Array{Name: name, Dims: dims, Pos: pos(at)})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		return nil
	}
}

// nestSection := ["repeat" param] "nest" name "{" loop* "{" stmt+ "}" "}"
// Loops may also wrap the statement block directly:
//
//	nest n { for i in 0..N for j in 0..M { S: ... } }
func (p *parser) nestSection(k *affine.Kernel) error {
	var repeat affine.Expr
	if p.acceptKeyword("repeat") {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if !p.params[name] {
			return p.errorf(p.cur(), "repeat count %q is not a declared parameter", name)
		}
		repeat = affine.NewParam(name)
	}
	if err := p.expectKeyword("nest"); err != nil {
		return err
	}
	nt := p.cur()
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}

	nest := affine.Nest{Name: name, Repeat: repeat, Pos: pos(nt)}
	p.iters = map[string]bool{}

	// Loop headers.
	for p.acceptKeyword("for") {
		it := p.cur()
		iter, err := p.ident()
		if err != nil {
			return err
		}
		if p.iters[iter] {
			return p.errorf(p.cur(), "iterator %q reused in nest %q", iter, name)
		}
		if err := p.expectKeyword("in"); err != nil {
			return err
		}
		lo, err := p.affineExpr()
		if err != nil {
			return err
		}
		t := p.cur()
		if t.kind != tokDotDot {
			return p.errorf(t, "expected '..' in loop range, found %s", t)
		}
		p.advance()
		hi, err := p.affineExpr()
		if err != nil {
			return err
		}
		nest.Loops = append(nest.Loops, affine.Loop{Name: iter, Lower: lo, Upper: hi, Pos: pos(it)})
		p.iters[iter] = true
	}
	if len(nest.Loops) == 0 {
		return p.errorf(p.cur(), "nest %q has no loops", name)
	}

	// Statement block.
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && t.text == "}" {
			p.advance()
			break
		}
		st, err := p.statement()
		if err != nil {
			return err
		}
		nest.Body = append(nest.Body, st)
	}
	if len(nest.Body) == 0 {
		return p.errorf(p.cur(), "nest %q has no statements", name)
	}
	if err := p.expectSymbol("}"); err != nil {
		return err
	}
	k.Nests = append(k.Nests, nest)
	return nil
}

// statement := name ":" ref ("=" | "+=") rhs [";"] ["@" "flops" "(" n ")"]
// rhs       := term (("+"|"-"|"*"|"/") term)*
// term      := ref | number
func (p *parser) statement() (affine.Statement, error) {
	var st affine.Statement
	nt := p.cur()
	name, err := p.ident()
	if err != nil {
		return st, err
	}
	st.Name = name
	st.Pos = pos(nt)
	if err := p.expectSymbol(":"); err != nil {
		return st, err
	}

	lhs, err := p.arrayRef(true)
	if err != nil {
		return st, err
	}
	st.Refs = append(st.Refs, lhs)

	// Assignment operator.
	switch t := p.cur(); {
	case t.kind == tokPlusEq:
		p.advance()
		st.Reduction = true
		// An accumulation also reads its target.
		rd := lhs
		rd.Write = false
		st.Refs = append(st.Refs, rd)
	case t.kind == tokSymbol && t.text == "=":
		p.advance()
	default:
		return st, p.errorf(t, "expected '=' or '+=', found %s", t)
	}

	// Right-hand side: collect refs and count operators.
	ops := int64(0)
	if st.Reduction {
		ops = 1 // the accumulation add
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokIdent && p.peek().kind == tokSymbol && p.peek().text == "[":
			r, err := p.arrayRef(false)
			if err != nil {
				return st, err
			}
			st.Refs = append(st.Refs, r)
		case t.kind == tokIdent:
			// scalar constant like alpha/beta: consumed, no ref
			p.advance()
		case t.kind == tokNumber:
			p.advance()
		default:
			return st, p.errorf(t, "expected operand, found %s", t)
		}
		t = p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "*" || t.text == "/") {
			ops++
			p.advance()
			continue
		}
		break
	}

	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.advance()
	}

	// Optional @flops(n) override.
	st.FlopsPerIter = ops
	if p.cur().kind == tokSymbol && p.cur().text == "@" {
		p.advance()
		if err := p.expectKeyword("flops"); err != nil {
			return st, err
		}
		if err := p.expectSymbol("("); err != nil {
			return st, err
		}
		n, err := p.number()
		if err != nil {
			return st, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return st, err
		}
		st.FlopsPerIter = n
	}
	if st.FlopsPerIter < 1 {
		st.FlopsPerIter = 1
	}
	return st, nil
}

// arrayRef := name ("[" affineExpr "]")+
func (p *parser) arrayRef(write bool) (affine.Ref, error) {
	var r affine.Ref
	nt := p.cur()
	name, err := p.ident()
	if err != nil {
		return r, err
	}
	r.Array = name
	r.Write = write
	r.Pos = pos(nt)
	if t := p.cur(); t.kind != tokSymbol || t.text != "[" {
		return r, p.errorf(t, "expected '[' after array %q", name)
	}
	for p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.advance()
		e, err := p.affineExpr()
		if err != nil {
			return r, err
		}
		r.Subscripts = append(r.Subscripts, e)
		if err := p.expectSymbol("]"); err != nil {
			return r, err
		}
	}
	return r, nil
}

// affineExpr := term (("+"|"-") term)*
// term       := [number "*"] atom | number
// atom       := iterator | parameter
func (p *parser) affineExpr() (affine.Expr, error) {
	e, err := p.affineTerm(1)
	if err != nil {
		return affine.Expr{}, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			sign := int64(1)
			if t.text == "-" {
				sign = -1
			}
			p.advance()
			rhs, err := p.affineTerm(sign)
			if err != nil {
				return affine.Expr{}, err
			}
			e = e.Add(rhs)
			continue
		}
		return e, nil
	}
}

func (p *parser) affineTerm(sign int64) (affine.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		v, err := p.number()
		if err != nil {
			return affine.Expr{}, err
		}
		// coefficient form: n * atom
		if s := p.cur(); s.kind == tokSymbol && s.text == "*" {
			p.advance()
			atom, err := p.affineAtom()
			if err != nil {
				return affine.Expr{}, err
			}
			return atom.Scale(sign * v), nil
		}
		return affine.NewConst(sign * v), nil
	case tokIdent:
		atom, err := p.affineAtom()
		if err != nil {
			return affine.Expr{}, err
		}
		return atom.Scale(sign), nil
	default:
		return affine.Expr{}, p.errorf(t, "expected affine term, found %s", t)
	}
}

func (p *parser) affineAtom() (affine.Expr, error) {
	name, err := p.ident()
	if err != nil {
		return affine.Expr{}, err
	}
	if p.params[name] {
		return affine.NewParam(name), nil
	}
	if p.iters != nil && p.iters[name] {
		return affine.NewIter(name), nil
	}
	// Inside array-dimension expressions iterators are not in scope, so
	// any unknown name must be a parameter.
	if p.iters == nil {
		return affine.Expr{}, p.errorf(p.cur(), "unknown parameter %q", name)
	}
	return affine.Expr{}, p.errorf(p.cur(), "unknown name %q (not a parameter or loop iterator)", name)
}
