package parser_test

import (
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/parser"
)

const gemmSrc = `
# classic matrix multiply
kernel gemm {
  param NI = 4000, NJ = 4000, NK = 4000
  array C[NI][NJ], A[NI][NK], B[NK][NJ]
  nest matmul {
    for i in 0..NI
    for j in 0..NJ
    for k in 0..NK {
      S0: C[i][j] += A[i][k] * B[k][j]
    }
  }
}
`

func TestParseGemm(t *testing.T) {
	k, err := parser.Parse(gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "gemm" || len(k.Nests) != 1 || len(k.Arrays) != 3 {
		t.Fatalf("structure: %+v", k)
	}
	if k.Params["NI"] != 4000 {
		t.Fatalf("params: %v", k.Params)
	}
	n := k.Nests[0]
	if n.Depth() != 3 {
		t.Fatalf("depth = %d", n.Depth())
	}
	st := n.Body[0]
	if !st.Reduction {
		t.Fatal("+= should mark a reduction")
	}
	// C write + C read (implicit) + A + B.
	if len(st.Refs) != 4 {
		t.Fatalf("refs = %d, want 4", len(st.Refs))
	}
	// Default flop count: the accumulate + the multiply.
	if st.FlopsPerIter != 2 {
		t.Fatalf("flops = %d, want 2", st.FlopsPerIter)
	}
}

func TestParsedGemmMatchesBuiltin(t *testing.T) {
	parsed, err := parser.Parse(gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	builtin := affine.MustLookup("gemm")
	// Same flop count and footprint as the builder-defined kernel.
	if parsed.Flops(parsed.Params) != builtin.Flops(builtin.Params) {
		t.Fatal("flops differ from builtin gemm")
	}
	if parsed.FootprintBytes(parsed.Params, affine.FP64) != builtin.FootprintBytes(builtin.Params, affine.FP64) {
		t.Fatal("footprint differs from builtin gemm")
	}
	// EATSS must produce the paper's solution from the parsed kernel too.
	sel, err := core.SelectTiles(parsed, arch.GA100(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tiles["i"] != 16 || sel.Tiles["j"] != 384 || sel.Tiles["k"] != 16 {
		t.Fatalf("EATSS on parsed gemm = %v, want (16, 384, 16)", sel.Tiles)
	}
}

func TestParseStencilWithOffsetsAndRepeat(t *testing.T) {
	src := `
kernel jac {
  param N = 1000, T = 10
  array A[N], B[N]
  repeat T nest update {
    for i in 1..N-1 {
      S0: B[i] = A[i-1] + A[i] + A[i+1] @flops(3)
    }
  }
  repeat T nest copy {
    for i in 1..N-1 {
      S1: A[i] = B[i]
    }
  }
}
`
	k, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Nests) != 2 {
		t.Fatalf("nests = %d", len(k.Nests))
	}
	if got := k.Nests[0].RepeatCount(k.Params); got != 10 {
		t.Fatalf("repeat = %d, want 10", got)
	}
	// Loop bounds 1..N-1.
	l := k.Nests[0].Loops[0]
	if l.Lower.Const != 1 || l.Upper.Eval(nil, k.Params) != 999 {
		t.Fatalf("bounds: %v..%v", l.Lower, l.Upper)
	}
	// Offsets parsed into subscripts.
	refs := k.Nests[0].Body[0].Refs
	var sawMinus bool
	for _, r := range refs {
		if !r.Write && r.Subscripts[0].Const == -1 {
			sawMinus = true
		}
	}
	if !sawMinus {
		t.Fatal("A[i-1] subscript lost")
	}
	if k.Nests[0].Body[0].FlopsPerIter != 3 {
		t.Fatal("@flops override ignored")
	}
	// Dependence analysis sees the space loop as parallel.
	info := deps.AnalyzeNest(&k.Nests[0])
	if !info.Parallel[0] {
		t.Fatal("stencil space loop should be parallel")
	}
}

func TestParseCoefficientsAndParams(t *testing.T) {
	src := `
kernel strided {
  param N = 64
  array A[2*N+1], B[N]
  nest n {
    for i in 0..N {
      S: A[2*i+1] = B[i]
    }
  }
}
`
	k, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := k.Array("A")
	if a.Dims[0].Eval(nil, k.Params) != 129 {
		t.Fatalf("dim expr = %v", a.Dims[0])
	}
	sub := k.Nests[0].Body[0].Refs[0].Subscripts[0]
	if sub.IterCoeff("i") != 2 || sub.Const != 1 {
		t.Fatalf("subscript = %v, want 2*i+1", sub)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"nest x {}", `expected "kernel"`},
		{"kernel k { param N = }", "expected number"},
		{"kernel k { array A }", "no dimensions"},
		{"kernel k { param N = 4 array A[N] nest n { for i in 0..N { } } }", "no statements"},
		{"kernel k { param N = 4 array A[N] nest n { S: A[0] = A[0] } }", "no loops"},
		{"kernel k { param N = 4 array A[N] nest n { for i in 0..M { S: A[i] = A[i] } } }", "unknown name"},
		{"kernel k { param N = 4, N = 5 }", "declared twice"},
		{"kernel k { param N = 4 array A[N] nest n { for i in 0..N for i in 0..N { S: A[i] = A[i] } } }", "reused"},
		{"kernel k { param N = 4 array A[Q] }", `unknown parameter "Q"`},
		{"kernel k { param N = 4 array A[N] repeat Z nest n { for i in 0..N { S: A[i] = A[i] } } }", "not a declared parameter"},
	}
	for _, c := range cases {
		_, err := parser.Parse(c.src)
		if err == nil {
			t.Errorf("parser.Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parser.Parse(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	src := "kernel k {\n  param N = \n}"
	_, err := parser.Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*parser.Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 && perr.Line != 3 {
		t.Fatalf("error line = %d, want 2 or 3", perr.Line)
	}
}

// TestParseNamedStampsFile pins that ParseNamed renders errors as
// "file:line:col: message" so diagnostics point at the source file.
func TestParseNamedStampsFile(t *testing.T) {
	src := "kernel k {\n  param N = \n}"
	_, err := parser.ParseNamed(src, "bad.kdsl")
	if err == nil {
		t.Fatal("expected error")
	}
	// The offending token is the closing brace: line 2 or 3 depending on
	// where the lexer anchors it, but always file-prefixed.
	if !strings.HasPrefix(err.Error(), "bad.kdsl:") {
		t.Fatalf("error = %q, want bad.kdsl:<line>:<col>: prefix", err)
	}
	// Anonymous parses keep the generic prefix.
	_, err = parser.Parse(src)
	if err == nil || !strings.HasPrefix(err.Error(), "kernel DSL:") {
		t.Fatalf("anonymous error = %v, want kernel DSL:<line>:<col>: prefix", err)
	}
}

// TestParsedIRCarriesPositions pins that the parser threads source
// positions onto every IR node class — arrays, nests, loops, statements
// and references — so lint diagnostics can point into the DSL source.
func TestParsedIRCarriesPositions(t *testing.T) {
	k, err := parser.Parse(gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range k.Arrays {
		if !a.Pos.IsValid() {
			t.Errorf("array %s has no position", a.Name)
		}
	}
	for _, n := range k.Nests {
		if !n.Pos.IsValid() {
			t.Errorf("nest %s has no position", n.Name)
		}
		for _, l := range n.Loops {
			if !l.Pos.IsValid() {
				t.Errorf("loop %s has no position", l.Name)
			}
		}
		for _, s := range n.Body {
			if !s.Pos.IsValid() {
				t.Errorf("statement %s has no position", s.Name)
			}
			for _, r := range s.Refs {
				if !r.Pos.IsValid() {
					t.Errorf("ref %s has no position", r.String())
				}
			}
		}
	}
	// Builder-constructed kernels carry the zero position by design.
	if affine.MustLookup("gemm").Nests[0].Pos.IsValid() {
		t.Error("builder kernel unexpectedly carries a source position")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// line comment
kernel k { # hash comment
  param N = 8
  array A[N]
  nest n {
    for i in 0..N {
      S: A[i] = A[i] // trailing
    }
  }
}
`
	if _, err := parser.Parse(src); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripCatalog: every builtin kernel survives Write -> Parse with
// identical analysis-relevant structure.
func TestRoundTripCatalog(t *testing.T) {
	for _, name := range affine.Catalog() {
		orig := affine.MustLookup(name)
		src := parser.Write(orig)
		back, err := parser.Parse(src)
		if err != nil {
			t.Errorf("%s: reparse failed: %v\n%s", name, err, src)
			continue
		}
		if back.Name != orig.Name {
			t.Errorf("%s: name %q", name, back.Name)
		}
		if back.Flops(back.Params) != orig.Flops(orig.Params) {
			t.Errorf("%s: flops changed in round trip", name)
		}
		if back.FootprintBytes(back.Params, affine.FP64) != orig.FootprintBytes(orig.Params, affine.FP64) {
			t.Errorf("%s: footprint changed in round trip", name)
		}
		if back.MaxDepth() != orig.MaxDepth() {
			t.Errorf("%s: depth changed in round trip", name)
		}
		// Parallel-loop structure must survive (it drives the model).
		oi := deps.AnalyzeKernel(orig)
		bi := deps.AnalyzeKernel(back)
		if len(oi) != len(bi) {
			t.Errorf("%s: nest count changed", name)
			continue
		}
		for i := range oi {
			if oi[i].NumParallel() != bi[i].NumParallel() {
				t.Errorf("%s nest %d: parallel loops %d -> %d", name, i,
					oi[i].NumParallel(), bi[i].NumParallel())
			}
		}
	}
}
