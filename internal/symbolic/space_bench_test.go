package symbolic

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/ppcg"
)

func BenchmarkPlanEvalSpace(b *testing.B) {
	k := affine.MustLookup("gemm")
	g := arch.GA100()
	prog := analysis.Analyze(k, nil)
	plan, err := Derive(prog, g, Config{UseShared: true, Precision: affine.FP64}, nil)
	if err != nil {
		b.Fatal(err)
	}
	space := ppcg.Space(k, ppcg.PaperSpaceSizes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Eval(space[i%len(space)])
	}
}
