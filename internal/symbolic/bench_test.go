package symbolic

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
)

func BenchmarkPlanEval(b *testing.B) {
	k := affine.MustLookup("gemm")
	g := arch.GA100()
	prog := analysis.Analyze(k, nil)
	plan, err := Derive(prog, g, Config{UseShared: true, Precision: affine.FP64}, nil)
	if err != nil {
		b.Fatal(err)
	}
	tiles := map[string]int64{"i": 32, "j": 32, "k": 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Eval(tiles); err != nil {
			b.Fatal(err)
		}
	}
}
