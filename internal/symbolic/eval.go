package symbolic

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/gpusim"
)

// nestScratch is the reusable per-point working set for one nest —
// sized once at derive time so Eval allocates nothing but the returned
// Result.
type nestScratch struct {
	tiles         []int64
	mtiles, mexts []int64
	sizes         []int64
	staged        []bool
	dims          []gpusim.OccDim
	groups        []gpusim.GroupTraffic
	geo           codegen.Geometry
}

type evalScratch struct {
	nests []nestScratch
}

func newScratch(p *Plan) *evalScratch {
	s := &evalScratch{nests: make([]nestScratch, len(p.nests))}
	for i, np := range p.nests {
		s.nests[i] = nestScratch{
			tiles:  make([]int64, len(np.loops)),
			mtiles: make([]int64, len(np.mappedIdx)),
			mexts:  make([]int64, len(np.mappedIdx)),
			sizes:  make([]int64, len(np.stages)),
			staged: make([]bool, len(np.stages)),
			dims:   make([]gpusim.OccDim, len(np.mappedIdx)),
			groups: make([]gpusim.GroupTraffic, len(np.groups)),
			geo: codegen.Geometry{
				BlockDims: make([]int64, 0, len(np.mappedIdx)),
				Coarsen:   make([]int64, 0, len(np.mappedIdx)),
				GridDims:  make([]int64, 0, len(np.mappedIdx)),
			},
		}
	}
	return s
}

// Eval evaluates one tile point through the closed-form plan. Tile
// sizes are looked up by loop name with the compile path's semantics:
// missing or zero entries default to 32 (then clamp to the extent), and
// negative entries are rejected. Mapping-infeasibility errors (negative
// tile, block too large) reproduce the compile path's errors — message
// and wrapped sentinel included — so sweeps report identical outcomes
// on either backend; ErrResidual is reserved for points with no closed
// form. Safe for concurrent use.
func (p *Plan) Eval(tiles map[string]int64) (gpusim.Result, error) {
	s := p.pool.Get().(*evalScratch)
	defer p.pool.Put(s)

	res := gpusim.Result{Kernel: p.kernel, GPU: p.gpu.Name}
	res.Nests = make([]gpusim.NestResult, len(p.nests))
	for ni, np := range p.nests {
		if err := p.evalNest(np, &s.nests[ni], tiles, &res.Nests[ni]); err != nil {
			// The compile path surfaces mapping errors wrapped by the
			// ppcg driver; reproduce the chain verbatim for parity.
			return gpusim.Result{}, fmt.Errorf("ppcg: kernel %s: %w", p.kernel, err)
		}
	}
	gpusim.Finalize(&res, p.gpu)
	mPoints.Add(1)
	return res, nil
}

func (p *Plan) evalNest(np *nestPlan, s *nestScratch, tiles map[string]int64, out *gpusim.NestResult) error {
	g := p.gpu
	elemB := p.elemB

	// Tile clamping, then the deep-nest inner-loop override.
	for i, name := range np.loops {
		t, err := codegen.ClampTile(tiles[name], np.exts[i])
		if err != nil {
			return fmt.Errorf("codegen: nest %q loop %q: %w (%d)", np.name, name, err, tiles[name])
		}
		s.tiles[i] = t
	}
	if np.innerIdx >= 0 {
		s.tiles[np.innerIdx] = np.exts[np.innerIdx]
	}

	// Launch geometry with thread coarsening.
	for j, li := range np.mappedIdx {
		s.mtiles[j] = s.tiles[li]
		s.mexts[j] = np.exts[li]
	}
	geo := &s.geo
	if err := codegen.ComputeGeometryInto(geo, s.mtiles, s.mexts, g.ThreadsPerBlock); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}

	// Shared-staging footprint with PPCG's largest-first demotion.
	sharedBytes := int64(0)
	for k := range np.stages {
		s.sizes[k] = evalStage(np.stages[k].spans, s.tiles) * elemB
		s.staged[k] = true
		sharedBytes += s.sizes[k]
	}
	for sharedBytes > np.quota {
		worst, worstSize := -1, int64(-1)
		for k := range s.sizes {
			if s.staged[k] && s.sizes[k] > worstSize {
				worst, worstSize = k, s.sizes[k]
			}
		}
		if worst < 0 {
			break
		}
		s.staged[worst] = false
		sharedBytes -= s.sizes[worst]
	}
	if sharedBytes > np.quota {
		return fmt.Errorf("codegen: shared staging %dB exceeds quota %dB", sharedBytes, np.quota)
	}

	regs := codegen.EstimateRegs(np.uniqRefs, np.serialCount, p.cfg.Precision, geo.ThreadsPerBlock, g)

	for j := range np.mappedIdx {
		s.dims[j] = gpusim.OccDim{Ext: s.mexts[j], Tile: s.mtiles[j], Grid: geo.GridDims[j]}
	}
	occ := gpusim.OccupancyOf(gpusim.OccInputs{
		ThreadsPerBlock:     geo.ThreadsPerBlock,
		TotalBlocks:         geo.TotalBlocks,
		RegsPerThread:       regs,
		SharedBytesPerBlock: sharedBytes,
		Dims:                s.dims,
	}, g)

	// Per-block iteration shape.
	iterPerBlock, serialSteps := int64(1), int64(1)
	for i := range np.loops {
		if np.isMapped[i] {
			iterPerBlock *= s.tiles[i]
		} else {
			iterPerBlock *= np.exts[i]
			serialSteps *= (np.exts[i] + s.tiles[i] - 1) / s.tiles[i]
		}
	}

	for gi := range np.groups {
		gp := &np.groups[gi]
		staged := gp.hasShared && s.staged[gp.stageIdx]
		gt := gpusim.GroupTraffic{
			Array:       gp.array,
			Shared:      staged,
			Write:       gp.write,
			UsesSerial:  gp.usesSerial,
			RegResident: gp.write && !gp.usesSerial && !staged,
			FpStepBytes: evalUnion(gp.fpStep, s.tiles) * elemB,
			DistBytes:   evalUnion(gp.dist, s.tiles) * elemB,
			GlobalBytes: gp.globalBytes,
			SerialBytes: evalUnion(gp.serial, s.tiles) * elemB,
			Accesses:    iterPerBlock * gp.nRefs,
		}
		if staged {
			gt.BankReadsPerBlock = gp.nRefs * iterPerBlock * elemB
		}
		if !gt.RegResident {
			if staged {
				gt.L1BytesPerIter = gp.l1NoStaged
			} else {
				gt.L1BytesPerIter = gp.l1All
			}
		}
		s.groups[gi] = gt
	}

	tr := gpusim.TrafficModel(&gpusim.TrafficInputs{
		ElemBytes:           elemB,
		IterPerBlock:        iterPerBlock,
		SerialSteps:         serialSteps,
		Flops:               iterPerBlock * geo.TotalBlocks * np.perIterFlops,
		TimeFuse:            1,
		Blocks:              geo.TotalBlocks,
		SharedBytesPerBlock: sharedBytes,
		Groups:              s.groups,
	}, g, occ)

	*out = gpusim.NestModel(gpusim.NestInputs{
		Name:        np.name,
		TotalBlocks: geo.TotalBlocks,
		Launches:    np.launches,
		Precision:   p.cfg.Precision,
	}, occ, &tr, g)
	return nil
}
