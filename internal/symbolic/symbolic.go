// Package symbolic is the closed-form evaluation backend: it derives,
// once per analysis.Program × (GPU, options), a piecewise closed-form
// plan giving traffic/occupancy/time/energy as functions of the
// tile-size vector, then evaluates tile points by plain arithmetic —
// no per-point mapping, no maps, no sorting of references.
//
// The plan is exact, not approximate: it feeds precomputed span
// structures into the very same pure model functions the per-point
// simulator uses (codegen.ComputeGeometry, gpusim.OccupancyOf,
// gpusim.TrafficModel, gpusim.NestModel, gpusim.Finalize), and replays
// the tile-dependent mapping decisions (tile clamping, PPCG's deep-nest
// inner-loop quirk, thread coarsening, shared-staging demotion, the
// register estimate) with the same arithmetic. Within its supported
// domain a plan therefore reproduces gpusim.Simulate point for point —
// the parity is pinned by root-level tests over the full gemm paper
// space and the whole kernel catalog, and by the pipeline fuzz oracle.
//
// What cannot be established exactly is "residual": a Derive that fails
// (no parallel loop, an iterator that is not a nest loop) and any
// configuration outside the supported domain (time-tiling, register
// micro-tiles, verification) fall back to gpusim point evaluation in
// the caller (the root package's evaluator seam), which counts and
// reports the fallback rate.
package symbolic

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/affine"
	"repro/internal/obs"
)

// Telemetry: plan derivations and closed-form point evaluations.
var (
	mPlans          = obs.NewCounter("symbolic.plans")
	mDeriveFailures = obs.NewCounter("symbolic.derive_failures")
	mPoints         = obs.NewCounter("symbolic.points")
)

// Evaluator selects the evaluation backend for sweep points, autotune
// probes, SelectBest candidates, and eatssd simulate requests.
type Evaluator int

const (
	// EvalSimulate compiles and simulates every tile point — the
	// original per-point path. The zero value, so existing callers and
	// serialized configs keep their behaviour.
	EvalSimulate Evaluator = iota
	// EvalSymbolic evaluates through the closed-form plan, falling back
	// to simulation only for residual points (counted and reported).
	EvalSymbolic
	// EvalAuto lets the library choose. Currently it chooses the
	// closed-form plan whenever one derives for the configuration and
	// simulation otherwise — the same behaviour as EvalSymbolic, kept
	// distinct so callers can express "fastest exact backend" without
	// pinning the choice.
	EvalAuto
)

// String returns the parseable name: simulate, symbolic, or auto.
func (e Evaluator) String() string {
	switch e {
	case EvalSimulate:
		return "simulate"
	case EvalSymbolic:
		return "symbolic"
	case EvalAuto:
		return "auto"
	}
	return fmt.Sprintf("evaluator(%d)", int(e))
}

// ParseEvaluator parses an evaluator name as accepted on CLI flags and
// in eatssd requests. The empty string means EvalSimulate (the default
// backend), so absent fields keep their pre-seam behaviour.
func ParseEvaluator(s string) (Evaluator, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "simulate":
		return EvalSimulate, nil
	case "symbolic":
		return EvalSymbolic, nil
	case "auto":
		return EvalAuto, nil
	}
	return EvalSimulate, fmt.Errorf("symbolic: unknown evaluator %q (want simulate, symbolic or auto)", s)
}

// ErrResidual marks a tile point where the plan cannot establish the
// exact closed form; callers fall back to gpusim point evaluation and
// report the point as residual. Today's derivation is total over its
// supported domain — a successfully derived plan evaluates every point
// exactly — so the sentinel is returned only by future partial
// derivations; the fallback seam and its accounting are in place
// regardless.
var ErrResidual = errors.New("symbolic: residual point (no closed form)")

// Config is the options subset a plan is specialized for. It mirrors
// codegen.Options: anything beyond it (time-tile fusion, register
// micro-tiles, verification) is outside the supported domain and must
// be routed to the simulator by the caller.
type Config struct {
	UseShared   bool
	SharedQuota int64
	Precision   affine.Precision
}

func (c Config) String() string {
	return fmt.Sprintf("shared=%t|quota=%d|prec=%s", c.UseShared, c.SharedQuota, c.Precision)
}
