package symbolic

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/deps"
	"repro/internal/gpusim"
)

// spanEval is one subscript position's extent as a closed form of the
// tile vector: extent = base + Σ tiles[idxs]. All union variants
// (per-step, distinct-per-block, per-thread-serial) and the staging
// extents reduce to this shape because every size assignment the
// traffic model uses is either a tile size, a loop extent (a derive-time
// constant folded into base), or 1.
type spanEval struct {
	base int64
	idxs []int
}

// evalUnion evaluates a union-footprint span list the way
// gpusim.UnionElems does: per span, clamp the extent at 1, multiply.
func evalUnion(spans []spanEval, tiles []int64) int64 {
	elems := int64(1)
	for _, sp := range spans {
		ext := sp.base
		for _, i := range sp.idxs {
			ext += tiles[i]
		}
		if ext < 1 {
			ext = 1
		}
		elems *= ext
	}
	return elems
}

// evalStage evaluates a staging-buffer span list the way
// codegen.StageElems does: no clamp (tile sizes are already ≥ 1).
func evalStage(spans []spanEval, tiles []int64) int64 {
	elems := int64(1)
	for _, sp := range spans {
		ext := sp.base
		for _, i := range sp.idxs {
			ext += tiles[i]
		}
		elems *= ext
	}
	return elems
}

// groupPlan is the closed form of one array's GroupTraffic: every
// tile-independent quantity evaluated, every tile-dependent one reduced
// to spanEval lists or per-point flags.
type groupPlan struct {
	array      string
	nRefs      int64
	write      bool
	usesSerial bool
	// hasShared marks groups with shared-classified references under the
	// plan's config; whether they are actually staged at a tile point
	// depends on the demotion replay (stageIdx indexes plan.stages).
	hasShared bool
	stageIdx  int

	fpStep, dist, serial []spanEval
	globalBytes          int64

	// l1All / l1NoStaged are the two possible L1BytesPerIter values: all
	// references unstaged vs. the shared-classified ones excluded. Which
	// applies at a point follows from the demotion replay.
	l1All, l1NoStaged float64
}

// stagePlan is the closed form of one shared-staged array's buffer size
// (codegen.ArrayStageElems), in sorted array order — the order the
// demotion loop scans.
type stagePlan struct {
	array string
	spans []spanEval
}

// nestPlan is the closed form of one nest's mapping + model inputs.
type nestPlan struct {
	name     string
	launches int64

	loops    []string
	exts     []int64
	isMapped []bool
	// mappedIdx are the grid-mapped loop indices in x, y, z order;
	// serialCount is the number of non-mapped loops.
	mappedIdx   []int
	serialCount int
	// innerIdx, when ≥ 0, is the loop whose tile PPCG's deep-nest quirk
	// overrides to the full extent (Sec. V-D).
	innerIdx int

	perIterFlops int64
	uniqRefs     int
	quota        int64

	groups []groupPlan
	stages []stagePlan
}

// Plan is the derived closed-form evaluator for one analysis.Program on
// one GPU under one Config. Immutable after Derive; Eval is safe for
// concurrent use (per-point scratch comes from an internal pool).
type Plan struct {
	kernel string
	gpu    *arch.GPU
	cfg    Config
	elemB  int64
	nests  []*nestPlan

	pool sync.Pool
}

// Derive builds the closed-form plan for prog on g under cfg, with
// problem sizes bound from params (nil uses prog.Params, like the
// compile path). A non-nil error means no exact closed form could be
// established for the whole program — the caller falls back to per-point
// simulation and reports every point as residual.
func Derive(prog *analysis.Program, g *arch.GPU, cfg Config, params map[string]int64) (*Plan, error) {
	if params == nil {
		params = prog.Params
	}
	p := &Plan{
		kernel: prog.Kernel.Name,
		gpu:    g,
		cfg:    cfg,
		elemB:  cfg.Precision.Bytes(),
	}
	for _, na := range prog.Nests {
		np, err := deriveNest(na, g, cfg, params)
		if err != nil {
			mDeriveFailures.Add(1)
			return nil, err
		}
		p.nests = append(p.nests, np)
	}
	p.pool.New = func() any { return newScratch(p) }
	mPlans.Add(1)
	return p, nil
}

func deriveNest(na *analysis.NestAnalysis, g *arch.GPU, cfg Config, params map[string]int64) (*nestPlan, error) {
	n := na.Nest
	reuse := na.Reuse
	np := &nestPlan{
		name:     n.Name,
		launches: n.RepeatCount(params),
		innerIdx: -1,
		quota:    codegen.SharedQuotaOf(cfg.SharedQuota, g),
		uniqRefs: len(deps.UniqueArrayRefs(reuse.Refs)),
	}

	for _, l := range n.Loops {
		np.loops = append(np.loops, l.Name)
		np.exts = append(np.exts, l.Extent(params))
	}

	mappedNames, err := codegen.MappedLoopNames(n, reuse)
	if err != nil {
		return nil, err
	}
	np.isMapped = make([]bool, len(np.loops))
	for _, name := range mappedNames {
		li := n.LoopIndex(name)
		np.mappedIdx = append(np.mappedIdx, li)
		np.isMapped[li] = true
	}
	np.serialCount = len(np.loops) - len(np.mappedIdx)

	if depth := n.Depth(); depth > 3 && !np.isMapped[depth-1] && np.exts[depth-1] > 0 {
		np.innerIdx = depth - 1
	}

	for _, st := range n.Body {
		np.perIterFlops += st.FlopsPerIter
	}

	// Group references by array (sorted order, as trafficInputs emits).
	type refGroup struct {
		array string
		refs  []deps.RefReuse
	}
	byArray := make(map[string]*refGroup)
	var order []string
	for _, rr := range reuse.Refs {
		gr, ok := byArray[rr.Ref.Array]
		if !ok {
			gr = &refGroup{array: rr.Ref.Array}
			byArray[rr.Ref.Array] = gr
			order = append(order, rr.Ref.Array)
		}
		gr.refs = append(gr.refs, rr)
	}
	sort.Strings(order)

	// Staging buffers: one per shared-classified array, in sorted array
	// order (the demotion scan order).
	stageIdx := make(map[string]int)
	if cfg.UseShared {
		for _, name := range order {
			var refs []affine.Ref
			for _, rr := range byArray[name].refs {
				if rr.Class == deps.MemShared {
					refs = append(refs, rr.Ref)
				}
			}
			if len(refs) == 0 {
				continue
			}
			spans, err := stageSpanEvals(codegen.StageSpans(refs), n)
			if err != nil {
				return nil, err
			}
			stageIdx[name] = len(np.stages)
			np.stages = append(np.stages, stagePlan{array: name, spans: spans})
		}
	}

	for _, name := range order {
		gr := byArray[name]
		gp := groupPlan{array: name, nRefs: int64(len(gr.refs)), stageIdx: -1}
		refs := make([]affine.Ref, len(gr.refs))
		for i, rr := range gr.refs {
			refs[i] = rr.Ref
			gp.write = gp.write || rr.Ref.Write
			if cfg.UseShared && rr.Class == deps.MemShared {
				gp.hasShared = true
			}
			for li, l := range n.Loops {
				if !np.isMapped[li] && rr.Ref.UsesIter(l.Name) {
					gp.usesSerial = true
				}
			}
		}
		if gp.hasShared {
			gp.stageIdx = stageIdx[name]
		}

		spans := gpusim.UnionSpans(refs)
		gp.fpStep, gp.dist, gp.serial, gp.globalBytes, err = unionVariants(spans, n, np, cfg.Precision.Bytes())
		if err != nil {
			return nil, err
		}

		// The two possible L1/LSU contributions per innermost iteration
		// (register micro-tiling is outside the supported domain, so the
		// amortization factor is 1).
		xName := mappedNames[0]
		for _, rr := range gr.refs {
			var b float64
			if rr.Ref.HasStride1(xName) || !rr.Ref.UsesIter(xName) {
				b = float64(cfg.Precision.Bytes())
			} else {
				b = float64(g.SectorBytes)
			}
			gp.l1All += b
			if !(cfg.UseShared && rr.Class == deps.MemShared) {
				gp.l1NoStaged += b
			}
		}

		np.groups = append(np.groups, gp)
	}
	return np, nil
}

// unionVariants reduces a group's union spans to the three tile-size
// closed forms the traffic model needs (per-step, distinct-per-block,
// per-thread-serial) plus the constant whole-launch footprint.
//
// gpusim.UnionElems computes ext = 1 + spread + Σ(size(it) − 1); the
// variants differ only in size(it): the tile, the extent for serial
// loops (distinct), or 1 for mapped loops (serial footprint). Constants
// fold into base.
func unionVariants(spans []gpusim.UnionSpan, n *affine.Nest, np *nestPlan, elemB int64) (fpStep, dist, serial []spanEval, globalBytes int64, err error) {
	globalElems := int64(1)
	for _, sp := range spans {
		fp := spanEval{base: 1 + sp.Spread}
		ds := spanEval{base: 1 + sp.Spread}
		se := spanEval{base: 1 + sp.Spread}
		gext := int64(1) + sp.Spread
		for _, it := range sp.Iters {
			li := n.LoopIndex(it)
			if li < 0 {
				return nil, nil, nil, 0, fmt.Errorf(
					"symbolic: nest %q array reference iterator %q is not a nest loop", n.Name, it)
			}
			fp.base--
			fp.idxs = append(fp.idxs, li)
			if np.isMapped[li] {
				ds.base--
				ds.idxs = append(ds.idxs, li)
			} else {
				ds.base += np.exts[li] - 1
				se.base--
				se.idxs = append(se.idxs, li)
			}
			gext += np.exts[li] - 1
		}
		if gext < 1 {
			gext = 1
		}
		globalElems *= gext
		fpStep = append(fpStep, fp)
		dist = append(dist, ds)
		serial = append(serial, se)
	}
	return fpStep, dist, serial, globalElems * elemB, nil
}

// stageSpanEvals reduces codegen.StageSpans to closed forms:
// extent = tile(iter) + spread, with iterator-free (or unknown-iterator)
// positions contributing 1 + spread.
func stageSpanEvals(spans []codegen.StageSpan, n *affine.Nest) ([]spanEval, error) {
	out := make([]spanEval, 0, len(spans))
	for _, sp := range spans {
		if sp.Iter == "" {
			out = append(out, spanEval{base: 1 + sp.Spread})
			continue
		}
		li := n.LoopIndex(sp.Iter)
		if li < 0 {
			// codegen.StageElems treats unknown iterators as extent 1.
			out = append(out, spanEval{base: 1 + sp.Spread})
			continue
		}
		out = append(out, spanEval{base: sp.Spread, idxs: []int{li}})
	}
	return out, nil
}
