package symbolic_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/gpusim"
	"repro/internal/parser"
	"repro/internal/ppcg"
	"repro/internal/symbolic"
)

func TestParseEvaluator(t *testing.T) {
	cases := []struct {
		in   string
		want symbolic.Evaluator
		ok   bool
	}{
		{"", symbolic.EvalSimulate, true},
		{"simulate", symbolic.EvalSimulate, true},
		{"Symbolic", symbolic.EvalSymbolic, true},
		{" auto ", symbolic.EvalAuto, true},
		{"z3", 0, false},
	}
	for _, c := range cases {
		got, err := symbolic.ParseEvaluator(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseEvaluator(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, e := range []symbolic.Evaluator{symbolic.EvalSimulate, symbolic.EvalSymbolic, symbolic.EvalAuto} {
		back, err := symbolic.ParseEvaluator(e.String())
		if err != nil || back != e {
			t.Errorf("round trip %v -> %q -> %v, %v", e, e.String(), back, err)
		}
	}
}

// relDiff is the relative difference of two floats (0 when both zero).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// checkSame asserts a symbolic Result reproduces the simulated one:
// integer totals exactly, floating-point totals to round-off.
func checkSame(t *testing.T, label string, sim, sym gpusim.Result) {
	t.Helper()
	const tol = 1e-9
	if sim.Flops != sym.Flops || sim.L2Sectors != sym.L2Sectors || sim.DRAMBytes != sym.DRAMBytes {
		t.Fatalf("%s: integer totals differ: sim{flops %d l2 %d dram %d} sym{flops %d l2 %d dram %d}",
			label, sim.Flops, sim.L2Sectors, sim.DRAMBytes, sym.Flops, sym.L2Sectors, sym.DRAMBytes)
	}
	if relDiff(sim.TimeSec, sym.TimeSec) > tol || relDiff(sim.EnergyJ, sym.EnergyJ) > tol ||
		relDiff(sim.AvgPowerW, sym.AvgPowerW) > tol || relDiff(sim.PPW, sym.PPW) > tol {
		t.Fatalf("%s: float totals differ: sim{t %.17g e %.17g} sym{t %.17g e %.17g}",
			label, sim.TimeSec, sim.EnergyJ, sym.TimeSec, sym.EnergyJ)
	}
	if len(sim.Nests) != len(sym.Nests) {
		t.Fatalf("%s: nest count %d vs %d", label, len(sim.Nests), len(sym.Nests))
	}
	for i := range sim.Nests {
		a, b := &sim.Nests[i], &sym.Nests[i]
		if a.Traffic.DRAMBytes != b.Traffic.DRAMBytes || a.Traffic.L2ReadBytes != b.Traffic.L2ReadBytes ||
			a.Traffic.SharedBytes != b.Traffic.SharedBytes || a.Traffic.L1Bytes != b.Traffic.L1Bytes ||
			a.Traffic.StagingBytes != b.Traffic.StagingBytes ||
			a.Traffic.LiveBytesPerThread != b.Traffic.LiveBytesPerThread {
			t.Fatalf("%s nest %s: traffic differs:\nsim %+v\nsym %+v", label, a.Name, a.Traffic, b.Traffic)
		}
		if a.Occ != b.Occ {
			t.Fatalf("%s nest %s: occupancy differs:\nsim %+v\nsym %+v", label, a.Name, a.Occ, b.Occ)
		}
		if relDiff(a.ClockMHz, b.ClockMHz) > tol || relDiff(a.EnergyJ, b.EnergyJ) > tol {
			t.Fatalf("%s nest %s: clock/energy differ: %.17g/%.17g vs %.17g/%.17g",
				label, a.Name, a.ClockMHz, a.EnergyJ, b.ClockMHz, b.EnergyJ)
		}
		if len(a.Traffic.Arrays) != len(b.Traffic.Arrays) {
			t.Fatalf("%s nest %s: array attribution length differs", label, a.Name)
		}
		for j := range a.Traffic.Arrays {
			if a.Traffic.Arrays[j] != b.Traffic.Arrays[j] {
				t.Fatalf("%s nest %s: array %s attribution differs:\nsim %+v\nsym %+v",
					label, a.Name, a.Traffic.Arrays[j].Array, a.Traffic.Arrays[j], b.Traffic.Arrays[j])
			}
		}
	}
}

// TestPlanParity drives both backends over a tile grid for a slice of
// the catalog on both testbeds, with shared staging on and off, and
// demands identical results — occupancy, traffic, per-array
// attribution, timing, and energy.
func TestPlanParity(t *testing.T) {
	kernels := []string{"gemm", "syrk", "mvt", "jacobi-2d", "doitgen", "mttkrp", "conv-2d"}
	gpus := []*arch.GPU{arch.GA100(), arch.Xavier()}
	tileVals := []int64{1, 7, 32, 200}

	for _, name := range kernels {
		k, err := affine.Lookup(name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		prog := analysis.Analyze(k, nil)
		loops := map[string]bool{}
		for _, na := range prog.Nests {
			for _, l := range na.Nest.Loops {
				loops[l.Name] = true
			}
		}
		var names []string
		for l := range loops {
			names = append(names, l)
		}

		for _, g := range gpus {
			for _, shared := range []bool{false, true} {
				opts := codegen.Options{UseShared: shared, Precision: affine.FP32}
				plan, err := symbolic.Derive(prog, g, symbolic.Config{
					UseShared: shared, Precision: affine.FP32,
				}, nil)
				if err != nil {
					t.Fatalf("%s/%s shared=%t: derive: %v", name, g.Name, shared, err)
				}

				// Sweep a diagonal + a few mixed points over the loop set.
				points := make([]map[string]int64, 0, len(tileVals)+2)
				for _, v := range tileVals {
					pt := map[string]int64{}
					for _, l := range names {
						pt[l] = v
					}
					points = append(points, pt)
				}
				mixed := map[string]int64{}
				for i, l := range names {
					mixed[l] = tileVals[i%len(tileVals)]
				}
				points = append(points, mixed, map[string]int64{})

				for _, tiles := range points {
					mk, errSim := ppcg.CompileAnalyzed(context.Background(), prog, nil, tiles, g, opts)
					symRes, errSym := plan.Eval(tiles)
					if (errSim == nil) != (errSym == nil) {
						t.Fatalf("%s/%s shared=%t tiles=%v: error mismatch: sim=%v sym=%v",
							name, g.Name, shared, tiles, errSim, errSym)
					}
					if errSim != nil {
						if errSim.Error() != errSym.Error() {
							t.Fatalf("%s/%s tiles=%v: error text differs:\nsim %v\nsym %v",
								name, g.Name, tiles, errSim, errSym)
						}
						continue
					}
					simRes := gpusim.Simulate(mk, g)
					label := name + "/" + g.Name
					checkSame(t, label, simRes, symRes)
				}
			}
		}
	}
}

// TestErrorParity pins that mapping-infeasibility errors reproduce the
// compile path's error text exactly (wrapped sentinel included).
func TestErrorParity(t *testing.T) {
	k := affine.MustLookup("gemm")
	prog := analysis.Analyze(k, nil)
	g := arch.GA100()
	plan, err := symbolic.Derive(prog, g, symbolic.Config{Precision: affine.FP32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]int64{"i": -3, "j": 8, "k": 8}
	_, errSim := ppcg.CompileAnalyzed(context.Background(), prog, nil, bad, g,
		codegen.Options{Precision: affine.FP32})
	_, errSym := plan.Eval(bad)
	if errSim == nil || errSym == nil {
		t.Fatalf("want errors, got sim=%v sym=%v", errSim, errSym)
	}
	if errSim.Error() != errSym.Error() {
		t.Fatalf("error text differs:\nsim %v\nsym %v", errSim, errSym)
	}
	if !strings.Contains(errSym.Error(), "negative tile size") {
		t.Fatalf("unexpected error: %v", errSym)
	}
}

// TestDeriveResidual pins that a program outside the exact domain (a
// nest with no parallel loop) fails to derive, which the evaluator seam
// reports as residual fallback.
func TestDeriveResidual(t *testing.T) {
	src := `
kernel seqscan {
  param N = 1024
  array A[N]
  nest scan {
    for i in 1..N {
      S0: A[i] = A[i-1] + A[i]
    }
  }
}
`
	k, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.Analyze(k, nil)
	if _, err := symbolic.Derive(prog, arch.GA100(), symbolic.Config{Precision: affine.FP32}, nil); err == nil {
		t.Fatal("Derive succeeded on a nest with no parallel loop")
	}
}

// TestEvalConcurrent exercises the scratch pool under parallelism.
func TestEvalConcurrent(t *testing.T) {
	prog := analysis.Analyze(affine.MustLookup("gemm"), nil)
	g := arch.GA100()
	plan, err := symbolic.Derive(prog, g, symbolic.Config{UseShared: true, Precision: affine.FP32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(map[string]int64{"i": 16, "j": 384, "k": 16})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for rep := 0; rep < 50; rep++ {
				got, err := plan.Eval(map[string]int64{"i": 16, "j": 384, "k": 16})
				if err != nil {
					done <- err
					return
				}
				if got.EnergyJ != want.EnergyJ || got.TimeSec != want.TimeSec {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent Eval returned different result" }
