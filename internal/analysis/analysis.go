// Package analysis computes the tile- and options-independent front end
// of the EATSS pipeline once per (kernel, params) and packages it as an
// immutable Program artifact the rest of the pipeline reuses.
//
// Every downstream consumer — the model generator (internal/core), the
// PPCG-style compiler (internal/ppcg + internal/codegen), the constraint
// explainer, and the sweep engine — needs the same facts about a kernel:
// per-nest dependence/reuse analysis, the parallel-loop classification,
// the CMA loop l_s1 (Sec. IV-D), the L1-vs-shared reference split
// (Sec. IV-E), the distinct-cache-line reference count (Sec. IV-G), the
// objective-weight skeleton (Sec. IV-K before warp-alignment scaling),
// and the loop extents under the bound problem sizes. None of those
// depend on the tile choice or the model Options, yet the pre-staged
// pipeline re-derived them for every solve and for every point of a
// tile-space sweep. The paper's own toolchain performs this polyhedral
// analysis once per kernel (inside PPCG/isl); only the Z3 model and the
// generated code vary per configuration.
//
// A Program is immutable after Analyze returns and safe to share across
// goroutines — the sweep engine hands one Program to all of its workers.
// Its Fingerprint identifies the (kernel, params) pair and is the cache
// key prefix for evaluation memoization.
package analysis

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/affine"
	"repro/internal/deps"
	"repro/internal/obs"
	"repro/internal/parser"
)

// Telemetry: how many analysis artifacts were built, and how many times
// a consumer reused a precomputed per-nest analysis instead of
// re-deriving it. A healthy staged pipeline shows reuse_hits far above
// builds (e.g. one build per sweep, one hit per nest per evaluation).
var (
	mBuilds    = obs.NewCounter("analysis.builds")
	mReuseHits = obs.NewCounter("analysis.reuse_hits")
)

// CountReuseHits records that n precomputed per-nest analyses were
// consumed in place of fresh deps.AnalyzeReuse derivations.
func CountReuseHits(n int) { mReuseHits.Add(int64(n)) }

// ArrayVolume is the data-tile volume skeleton of one array within a
// nest (Sec. IV-C): which loop iterators index it (in nest loop order),
// and whether any of its references is cache-mapped (MemL1). The model
// generator turns Iters into a product of tile variables; the final
// L1-vs-shared placement additionally depends on Options.SplitFactor,
// which is why only the reference classification is stored here.
type ArrayVolume struct {
	Array string
	// Iters lists the nest iterators appearing in the array's
	// subscripts, ordered like the nest's loops.
	Iters []string
	// L1 reports that at least one reference to the array is classified
	// MemL1 (coalescable along the CMA loop, or a write target).
	L1 bool
}

// NestAnalysis is everything tile- and options-independent about one
// loop nest.
type NestAnalysis struct {
	Nest *affine.Nest
	// Reuse is the full dependence/reuse analysis: parallel loops, CMA
	// loop, per-reference memory classification, HRaw counts, and the
	// distinct-cache-line reference count.
	Reuse *deps.NestReuse
	// Parallel names the first (up to three) parallel loops — the
	// B_size contributors of Sec. IV-F. Empty when the nest has no
	// parallel loop (consumers report that as an error).
	Parallel []string
	// HSkeleton maps loop name -> objective weight after the structural
	// zeroing rules of Sec. IV-K (serial spatial reuse in deep nests,
	// the already-mapped parallel loop of 2D single-parallel nests) but
	// before the warp-alignment scaling of the CMA loop, which depends
	// on Options. Loops whose raw count is zero have no entry.
	HSkeleton map[string]int64
	// Arrays holds one volume skeleton per distinct array, in first-
	// reference order.
	Arrays []ArrayVolume
	// Extents maps loop name -> trip count under the Program's params.
	Extents map[string]int64
}

// Program is the immutable analysis artifact for one (kernel, params)
// pair. It is safe for concurrent use.
type Program struct {
	// Kernel is the analyzed kernel. The Program does not copy it;
	// callers must not mutate a kernel they handed to Analyze.
	Kernel *affine.Kernel
	// Params are the resolved problem sizes the extents were computed
	// under (the params argument of Analyze, or Kernel.Params).
	Params map[string]int64
	// Nests holds one analysis per kernel nest, in nest order.
	Nests []*NestAnalysis

	fpOnce sync.Once
	fp     string

	stashMu sync.Mutex
	stash   map[string]any
}

// Memo returns the value stashed under key, building and caching it on
// first use. It is the staging hook derived artifacts hang off the
// Program the way the per-nest skeletons do: internal/symbolic memoizes
// one closed-form plan per (GPU, options) here, so every sweep worker
// sharing the Program shares the plan. build must be pure — the stash
// does not change the Program's observable immutability, it only caches
// functions of it. Safe for concurrent use; concurrent first calls for
// the same key may run build more than once, and the first stored value
// wins (all callers then observe the same value).
func (p *Program) Memo(key string, build func() any) any {
	p.stashMu.Lock()
	if v, ok := p.stash[key]; ok {
		p.stashMu.Unlock()
		return v
	}
	p.stashMu.Unlock()
	// Build outside the lock: a derive can be long, and blocking every
	// other key's readers behind it would serialize sweep startup.
	v := build()
	p.stashMu.Lock()
	defer p.stashMu.Unlock()
	if prev, ok := p.stash[key]; ok {
		return prev
	}
	if p.stash == nil {
		p.stash = make(map[string]any)
	}
	p.stash[key] = v
	return v
}

// Fingerprint identifies the (kernel, params) pair: a hash of the
// kernel's canonical DSL rendering and the resolved params. Two
// Programs with equal fingerprints produce identical pipeline results;
// any kernel or params edit changes it (invalidation rule: a Program
// must be rebuilt whenever the fingerprint of its inputs would differ).
// Computed lazily on first use — one-off compiles never render the
// kernel — and safe for concurrent callers.
func (p *Program) Fingerprint() string {
	p.fpOnce.Do(func() { p.fp = fingerprint(p.Kernel, p.Params) })
	return p.fp
}

// Fingerprint computes the fingerprint a Program built from the same
// (kernel, params) pair would report, without performing the analysis:
// a hash of the kernel's canonical DSL rendering and the resolved
// params (nil params resolves to the kernel's own defaults, exactly
// like Analyze). Callers that key caches of Program artifacts use it to
// decide whether an artifact can be reused before paying for a build.
func Fingerprint(k *affine.Kernel, params map[string]int64) string {
	if params == nil {
		params = k.Params
	}
	return fingerprint(k, params)
}

// Analyze computes the Program artifact for a kernel under the given
// problem sizes (nil params uses the kernel's own defaults, unmerged —
// exactly how the pre-staged pipeline resolved them).
func Analyze(k *affine.Kernel, params map[string]int64) *Program {
	return AnalyzeCtx(context.Background(), k, params)
}

// AnalyzeCtx is Analyze with the caller's context threaded through, so
// the "analysis.analyze" span nests under the caller's obs span.
func AnalyzeCtx(ctx context.Context, k *affine.Kernel, params map[string]int64) *Program {
	_, sp := obs.Start(ctx, "analysis.analyze")
	defer sp.End()
	sp.SetStr("kernel", k.Name)
	if params == nil {
		params = k.Params
	}
	p := &Program{Kernel: k, Params: params}
	for ni := range k.Nests {
		p.Nests = append(p.Nests, analyzeNest(&k.Nests[ni], params))
	}
	sp.SetInt("nests", int64(len(p.Nests)))
	mBuilds.Add(1)
	return p
}

func analyzeNest(nest *affine.Nest, params map[string]int64) *NestAnalysis {
	reuse := deps.AnalyzeReuse(nest)
	info := reuse.Info
	na := &NestAnalysis{
		Nest:      nest,
		Reuse:     reuse,
		HSkeleton: make(map[string]int64),
		Extents:   make(map[string]int64, nest.Depth()),
	}

	// Sec. IV-F: up to the first three parallel loops define B_size.
	for d, l := range nest.Loops {
		if info.Parallel[d] && len(na.Parallel) < 3 {
			na.Parallel = append(na.Parallel, l.Name)
		}
	}

	// Sec. IV-K structural weight rules (options-independent part).
	depth := nest.Depth()
	parallelSet := make(map[string]bool, len(na.Parallel))
	for _, name := range na.Parallel {
		parallelSet[name] = true
	}
	for d, l := range nest.Loops {
		h := reuse.HRaw[l.Name]
		if h == 0 {
			continue
		}
		switch {
		case depth >= 3 && !info.Parallel[d]:
			h = 0 // favor CMA over serial spatial reuse
		case depth == 2 && info.NumParallel() == 1 && parallelSet[l.Name]:
			// 2D nests with a single parallel loop (mvt, atax, ...):
			// the parallel loop is already mapped; prefer growing the
			// non-parallel one (Sec. IV-K, third sub-case).
			h = 0
		}
		na.HSkeleton[l.Name] = h
	}

	// Sec. IV-C volume skeletons, one per array in first-reference
	// order. References to the same array share one data tile (the
	// paper's matmul walkthrough M_L1 = TiTj + TkTj).
	volIdx := make(map[string]int)
	for _, rr := range reuse.Refs {
		i, ok := volIdx[rr.Ref.Array]
		if !ok {
			i = len(na.Arrays)
			volIdx[rr.Ref.Array] = i
			na.Arrays = append(na.Arrays, ArrayVolume{Array: rr.Ref.Array})
		}
		if rr.Class == deps.MemL1 {
			na.Arrays[i].L1 = true
		}
	}
	for i := range na.Arrays {
		for _, l := range nest.Loops {
			used := false
			for _, rr := range reuse.Refs {
				if rr.Ref.Array == na.Arrays[i].Array && rr.Ref.UsesIter(l.Name) {
					used = true
					break
				}
			}
			if used {
				na.Arrays[i].Iters = append(na.Arrays[i].Iters, l.Name)
			}
		}
	}

	for _, l := range nest.Loops {
		na.Extents[l.Name] = l.Extent(params)
	}
	return na
}

// NestReuses returns the per-nest reuse analyses aligned with
// Kernel.Nests, the shape codegen.MapKernelReuse consumes.
func (p *Program) NestReuses() []*deps.NestReuse {
	out := make([]*deps.NestReuse, len(p.Nests))
	for i, na := range p.Nests {
		out[i] = na.Reuse
	}
	return out
}

// fingerprint hashes the kernel's canonical DSL text and the resolved
// params. The DSL rendering covers names, arrays, nests, loops, bounds,
// statements and default parameters, so any semantic kernel edit
// changes the fingerprint.
func fingerprint(k *affine.Kernel, params map[string]int64) string {
	h := fnv.New64a()
	io.WriteString(h, parser.Write(k))
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "|%s=%d", name, params[name])
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
