package analysis

import (
	"reflect"
	"testing"

	"repro/internal/affine"
	"repro/internal/deps"
)

func TestAnalyzeGemm(t *testing.T) {
	k := affine.MustLookup("gemm")
	p := Analyze(k, nil)

	if p.Kernel != k {
		t.Fatal("Program does not reference the analyzed kernel")
	}
	if len(p.Nests) != len(k.Nests) {
		t.Fatalf("Nests = %d, want %d", len(p.Nests), len(k.Nests))
	}
	na := p.Nests[0]

	// gemm's i and j parallelize; k is the reduction loop.
	if want := []string{"i", "j"}; !reflect.DeepEqual(na.Parallel, want) {
		t.Fatalf("Parallel = %v, want %v", na.Parallel, want)
	}

	// Extents come from the kernel's own EXTRALARGE params.
	for _, l := range na.Nest.Loops {
		if got, want := na.Extents[l.Name], l.Extent(k.Params); got != want {
			t.Fatalf("Extents[%s] = %d, want %d", l.Name, got, want)
		}
	}

	// Three arrays (C, A, B), each a data tile over two iterators.
	if len(na.Arrays) != 3 {
		t.Fatalf("Arrays = %v, want C, A, B", na.Arrays)
	}
	// Iters follow nest loop order (i, j, k), not subscript order.
	wantIters := map[string][]string{
		"C": {"i", "j"}, "A": {"i", "k"}, "B": {"j", "k"},
	}
	for _, av := range na.Arrays {
		if want := wantIters[av.Array]; !reflect.DeepEqual(av.Iters, want) {
			t.Fatalf("Iters[%s] = %v, want %v", av.Array, av.Iters, want)
		}
	}

	// The skeleton matches the raw reuse counts after the structural
	// zeroing rules: in a 3-deep nest serial loops' weights drop to zero.
	reuse := deps.AnalyzeReuse(&k.Nests[0])
	for name, h := range na.HSkeleton {
		raw := reuse.HRaw[name]
		if raw == 0 {
			t.Fatalf("HSkeleton has %s but HRaw is zero", name)
		}
		if h != 0 && h != raw {
			t.Fatalf("HSkeleton[%s] = %d, want 0 or HRaw %d", name, h, raw)
		}
	}
}

func TestAnalyzeParamsOverrideExtents(t *testing.T) {
	k := affine.MustLookup("gemm")
	params := map[string]int64{"NI": 64, "NJ": 128, "NK": 256}
	p := Analyze(k, params)
	na := p.Nests[0]
	want := map[string]int64{"i": 64, "j": 128, "k": 256}
	if !reflect.DeepEqual(na.Extents, want) {
		t.Fatalf("Extents = %v, want %v", na.Extents, want)
	}
}

func TestNestReusesAligned(t *testing.T) {
	k := affine.MustLookup("2mm")
	p := Analyze(k, nil)
	rs := p.NestReuses()
	if len(rs) != len(k.Nests) {
		t.Fatalf("NestReuses = %d, want %d", len(rs), len(k.Nests))
	}
	for i, r := range rs {
		if r.Nest != &k.Nests[i] {
			t.Fatalf("NestReuses[%d] is not nest %q's analysis", i, k.Nests[i].Name)
		}
	}
}

func TestFingerprintIdentity(t *testing.T) {
	k := affine.MustLookup("gemm")

	a := Analyze(k, nil).Fingerprint()
	b := Analyze(affine.MustLookup("gemm"), nil).Fingerprint()
	if a != b {
		t.Fatal("equal (kernel, params) pairs produced different fingerprints")
	}
	if a != Analyze(k, nil).Fingerprint() {
		t.Fatal("Fingerprint is not deterministic")
	}

	// Params changes invalidate.
	c := Analyze(k, map[string]int64{"NI": 64, "NJ": 64, "NK": 64}).Fingerprint()
	if c == a {
		t.Fatal("params change did not change the fingerprint")
	}

	// Kernel changes invalidate.
	d := Analyze(affine.MustLookup("2mm"), nil).Fingerprint()
	if d == a {
		t.Fatal("kernel change did not change the fingerprint")
	}
}
