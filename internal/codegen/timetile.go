package codegen

import (
	"fmt"
)

// Time tiling (overlapped / trapezoidal tiling) is the stencil
// optimization the paper points out PPCG lacks: "PPCG does not exploit
// inter-step data reuse (i.e., time-tiling), and only the space dimensions
// are tiled" (Sec. V-B). This file implements it as an extension: a
// repeated (Repeat > 1) nest can fuse F consecutive time steps into one
// launch. Each block then computes a trapezoid — its space tile widened by
// radius*F halo cells — keeping intermediate steps in SM-local storage, so
// global traffic drops by ~F at the cost of redundant halo computation.

// TimeTiling describes the fusion applied to a mapped nest.
type TimeTiling struct {
	// Fuse is the number of time steps executed per launch (>= 1).
	Fuse int64
	// Radius is the stencil radius (max absolute subscript offset).
	Radius int64
	// OverlapFactor >= 1 is the redundant-compute multiplier: fused
	// trapezoids re-execute halo points.
	OverlapFactor float64
}

// StencilRadius returns the maximum absolute constant offset over all
// subscripts of the nest's references — the halo the stencil needs per
// time step. Zero means the nest is not a (neighbor-reading) stencil.
func (m *MappedNest) StencilRadius() int64 {
	r := int64(0)
	for _, mr := range m.Refs {
		for _, s := range mr.Ref.Subscripts {
			c := s.Const
			if c < 0 {
				c = -c
			}
			if len(s.Iters) > 0 && c > r {
				r = c
			}
		}
	}
	return r
}

// ApplyTimeTiling fuses `fuse` time steps per launch. It fails when the
// nest is not repeated, the fusion is trivial, or the halo would swallow
// the space tiles (each mapped tile must stay larger than 2*radius*fuse).
func (m *MappedNest) ApplyTimeTiling(fuse int64) error {
	if fuse <= 1 {
		return fmt.Errorf("codegen: time-tile factor %d is trivial", fuse)
	}
	if m.Launches < fuse {
		return fmt.Errorf("codegen: nest %s repeats %d times, cannot fuse %d",
			m.Nest.Name, m.Launches, fuse)
	}
	if m.TimeTiling != nil {
		return fmt.Errorf("codegen: nest %s is already time-tiled", m.Nest.Name)
	}
	radius := m.StencilRadius()
	if radius == 0 {
		return fmt.Errorf("codegen: nest %s has no stencil halo to time-tile over", m.Nest.Name)
	}

	// Redundant compute: per mapped dimension, the trapezoid base widens
	// by 2*radius*(fuse-1)/2 on average across the fused steps.
	overlap := 1.0
	halo := radius * (fuse - 1)
	for _, name := range m.MappedLoops {
		tile := m.Tiles[name]
		if tile <= 2*halo {
			return fmt.Errorf("codegen: tile %s=%d too small for halo %d (fuse %d, radius %d)",
				name, tile, halo, fuse, radius)
		}
		overlap *= float64(tile+halo) / float64(tile)
	}

	m.TimeTiling = &TimeTiling{Fuse: fuse, Radius: radius, OverlapFactor: overlap}
	m.Launches = (m.Launches + fuse - 1) / fuse
	return nil
}
