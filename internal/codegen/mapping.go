// Package codegen maps tiled affine loop nests onto the GPU execution model
// the way PPCG does: tile loops become the block grid, point loops become
// threads, non-parallel loops stay sequential inside each thread, and
// shared-memory-classified references are staged cooperatively per tile.
// It produces both the MappedNest descriptor consumed by the simulator and
// human-readable CUDA-like source (cuda.go).
package codegen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/deps"
	"repro/internal/obs"
)

// ErrNegativeTile is returned (wrapped) by MapNest when a tile entry is
// negative. Missing or zero entries keep the documented default-32
// behaviour; a negative size is always a caller bug and is rejected
// rather than silently coerced.
var ErrNegativeTile = errors.New("negative tile size")

// Telemetry: mapping decisions and shared-memory staging pressure.
var (
	mNestsMapped  = obs.NewCounter("codegen.nests_mapped")
	mMapFailures  = obs.NewCounter("codegen.map_failures")
	mStagingBytes = obs.NewCounter("codegen.shared_staging_bytes")
	mDemotions    = obs.NewCounter("codegen.shared_demotions")
	mCoarsened    = obs.NewCounter("codegen.coarsened_nests")
)

// Options configures the mapping, mirroring PPCG's relevant flags.
type Options struct {
	// UseShared enables staging of non-coalescable references in shared
	// memory (PPCG --use-shared-memory).
	UseShared bool
	// SharedQuota is the shared-memory budget per block in bytes
	// (PPCG --max-shared-memory). Zero means the architecture limit.
	SharedQuota int64
	// Precision selects FP32 or FP64 data.
	Precision affine.Precision
}

// MappedRef describes how one array reference is serviced.
type MappedRef struct {
	Ref affine.Ref
	// Shared marks references staged in software-managed shared memory.
	Shared bool
	// Coalesced marks references whose global accesses (or shared-memory
	// staging loads) are warp-coalesced along the thread-x loop.
	Coalesced bool
	// Write mirrors Ref.Write.
	Write bool
}

// MappedNest is one GPU kernel: a tiled nest with its launch geometry.
type MappedNest struct {
	Nest  *affine.Nest
	Reuse *deps.NestReuse

	// Tiles maps loop name -> tile size (clamped to the loop extent).
	Tiles map[string]int64
	// MappedLoops are the parallel loops mapped to the grid/threads,
	// ordered x, y, z (x carries the CMA loop when it is parallel).
	MappedLoops []string
	// BlockDims[i] is the thread-block extent of MappedLoops[i]. When a
	// tile holds more points than the thread-block limit allows, block
	// extents are capped and each thread iterates Coarsen[i] points
	// (PPCG-style thread coarsening).
	BlockDims []int64
	// Coarsen[i] is the per-thread serial trip count along MappedLoops[i].
	Coarsen []int64
	// GridDims[i] is the number of blocks along MappedLoops[i].
	GridDims []int64
	// SerialLoops are the remaining loops, executed inside each thread
	// (tiled by their tile size for shared-memory staging).
	SerialLoops []string

	Refs []MappedRef

	// ThreadsPerBlock is the product of BlockDims.
	ThreadsPerBlock int64
	// TotalBlocks is the product of GridDims.
	TotalBlocks int64
	// SharedBytesPerBlock is the staging buffer footprint.
	SharedBytesPerBlock int64
	// RegsPerThread is the estimated register usage.
	RegsPerThread int64
	// Launches is how many times the kernel is launched (host time loop).
	Launches int64
	// TimeTiling, when non-nil, fuses several time steps per launch
	// (overlapped tiling — see timetile.go). nil means the PPCG behavior
	// the paper evaluates: one launch per time step.
	TimeTiling *TimeTiling
	// RegTiling, when non-nil, gives each thread an r x r register
	// micro-tile (see regtile.go). nil means PPCG's one-point-per-thread
	// code, as in the paper's evaluation.
	RegTiling *RegTiling

	// Params are the problem-size bindings the mapping was built for.
	Params map[string]int64
	// Precision of all data.
	Precision affine.Precision
}

// MapNest maps one nest with the given tile sizes. Tile sizes are looked
// up by loop name; missing or zero entries default to 32, and negative
// entries are rejected with an error wrapping ErrNegativeTile. It returns
// an error when the configuration violates a hard execution-model limit
// (threads per block, shared memory per block, registers). It derives the
// nest's reuse analysis fresh; callers that already hold one (e.g. via an
// analysis.Program) should use MapNestReuse.
func MapNest(n *affine.Nest, params map[string]int64, tiles map[string]int64, g *arch.GPU, opts Options) (*MappedNest, error) {
	return MapNestReuse(n, deps.AnalyzeReuse(n), params, tiles, g, opts)
}

// MapNestReuse is MapNest with the nest's reuse analysis supplied by the
// caller instead of re-derived, so a sweep evaluating thousands of tile
// configurations pays the dependence/reuse analysis once.
func MapNestReuse(n *affine.Nest, reuse *deps.NestReuse, params map[string]int64, tiles map[string]int64, g *arch.GPU, opts Options) (*MappedNest, error) {
	m := &MappedNest{
		Nest:      n,
		Reuse:     reuse,
		Tiles:     make(map[string]int64, n.Depth()),
		Params:    params,
		Precision: opts.Precision,
		Launches:  n.RepeatCount(params),
	}

	// Clamp tile sizes to loop extents.
	for _, l := range n.Loops {
		t, err := ClampTile(tiles[l.Name], l.Extent(params))
		if err != nil {
			return nil, fmt.Errorf("codegen: nest %q loop %q: %w (%d)", n.Name, l.Name, err, tiles[l.Name])
		}
		m.Tiles[l.Name] = t
	}

	// Choose mapped (parallel) loops: thread-x is the CMA loop when
	// parallel, otherwise the innermost parallel loop; y and z follow
	// outside-in. At most 3 dimensions (Sec. IV-F).
	var err error
	m.MappedLoops, err = MappedLoopNames(n, reuse)
	if err != nil {
		return nil, err
	}

	mapped := make(map[string]bool, len(m.MappedLoops))
	for _, name := range m.MappedLoops {
		mapped[name] = true
	}
	for _, l := range n.Loops {
		if !mapped[l.Name] {
			m.SerialLoops = append(m.SerialLoops, l.Name)
		}
	}

	// PPCG quirk the paper documents in Sec. V-D (the overlined tile
	// sizes of Fig. 10): for nests deeper than 3, the code generator
	// ignores the tiling of the innermost loop — it runs untiled at its
	// full extent, which is what makes the default configuration of
	// high-dimensional kernels so costly.
	if n.Depth() > 3 {
		inner := n.Loops[n.Depth()-1]
		if !mapped[inner.Name] {
			if ext := inner.Extent(params); ext > 0 {
				m.Tiles[inner.Name] = ext
			}
		}
	}

	// Geometry: block/grid extents with PPCG-style thread coarsening.
	mtiles := make([]int64, len(m.MappedLoops))
	mexts := make([]int64, len(m.MappedLoops))
	for i, name := range m.MappedLoops {
		mtiles[i] = m.Tiles[name]
		mexts[i] = n.Loops[n.LoopIndex(name)].Extent(params)
	}
	geo, err := ComputeGeometry(mtiles, mexts, g.ThreadsPerBlock)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	m.BlockDims = geo.BlockDims
	m.Coarsen = geo.Coarsen
	m.GridDims = geo.GridDims
	m.ThreadsPerBlock = geo.ThreadsPerBlock
	m.TotalBlocks = geo.TotalBlocks

	// Reference servicing. An access is warp-efficient when thread-x
	// walks its fastest dimension (coalesced) or when it does not use
	// thread-x at all (a broadcast: every lane reads the same address,
	// one transaction).
	xName := m.MappedLoops[0]
	for _, rr := range reuse.Refs {
		mr := MappedRef{
			Ref:       rr.Ref,
			Write:     rr.Ref.Write,
			Coalesced: rr.Ref.HasStride1(xName) || !rr.Ref.UsesIter(xName),
			Shared:    opts.UseShared && rr.Class == deps.MemShared,
		}
		m.Refs = append(m.Refs, mr)
	}

	// Shared-memory footprint: one staging buffer per distinct array in
	// shared memory, sized tile-extent (+halo) per dimension.
	quota := SharedQuotaOf(opts.SharedQuota, g)
	m.SharedBytesPerBlock = m.sharedFootprint(opts.Precision)
	// PPCG falls back to global memory when the staging buffers exceed
	// the budget: demote the largest arrays until the rest fit.
	for m.SharedBytesPerBlock > quota {
		if !m.demoteLargestShared(opts.Precision) {
			break
		}
		mDemotions.Add(1)
		m.SharedBytesPerBlock = m.sharedFootprint(opts.Precision)
	}
	if m.SharedBytesPerBlock > quota {
		return nil, fmt.Errorf("codegen: shared staging %dB exceeds quota %dB",
			m.SharedBytesPerBlock, quota)
	}

	// Register estimate: base context + accumulators and address
	// arithmetic per distinct reference, doubled for FP64 operands.
	// Like a real compiler under -maxrregcount pressure, usage is
	// clamped (spilled) to what the per-thread and per-block register
	// files allow rather than rejecting the block.
	uniq := deps.UniqueArrayRefs(reuse.Refs)
	m.RegsPerThread = EstimateRegs(len(uniq), len(m.SerialLoops), opts.Precision, m.ThreadsPerBlock, g)

	return m, nil
}

// ArrayStageElems returns the element count of an array's shared-memory
// staging buffer: per subscript position, extent = tile(iter) + halo
// spread across the array's shared references.
func (m *MappedNest) ArrayStageElems(array string) int64 {
	var refs []affine.Ref
	for _, mr := range m.Refs {
		if mr.Shared && mr.Ref.Array == array {
			refs = append(refs, mr.Ref)
		}
	}
	return StageElems(StageSpans(refs), func(iter string) (int64, bool) {
		t, ok := m.Tiles[iter]
		return t, ok
	})
}

// sharedArrays returns the distinct arrays currently staged in shared
// memory, sorted by name for determinism.
func (m *MappedNest) sharedArrays() []string {
	set := make(map[string]bool)
	for _, mr := range m.Refs {
		if mr.Shared {
			set[mr.Ref.Array] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (m *MappedNest) sharedFootprint(prec affine.Precision) int64 {
	total := int64(0)
	for _, a := range m.sharedArrays() {
		total += m.ArrayStageElems(a) * prec.Bytes()
	}
	return total
}

// demoteLargestShared moves the largest shared-staged array back to global
// memory. It returns false when nothing is staged.
func (m *MappedNest) demoteLargestShared(prec affine.Precision) bool {
	arrays := m.sharedArrays()
	if len(arrays) == 0 {
		return false
	}
	sizes := make([]int64, len(arrays))
	for i, a := range arrays {
		sizes[i] = m.ArrayStageElems(a) * prec.Bytes()
	}
	worst := arrays[DemoteIndex(sizes)]
	for i := range m.Refs {
		if m.Refs[i].Ref.Array == worst {
			m.Refs[i].Shared = false
		}
	}
	return true
}

// MappedKernel is the full compilation result: one MappedNest per nest.
type MappedKernel struct {
	Kernel *affine.Kernel
	Params map[string]int64
	Nests  []*MappedNest

	// TimeTileFallbacks and RegTileFallbacks count the nests where a
	// requested extension (RunConfig.TimeTileFuse / RunConfig.RegTile)
	// could not be applied — no stencil halo, tile too small, register
	// file too tight — and the nest kept its plain PPCG behaviour.
	// Recorded by the compile driver so per-nest failures are visible
	// instead of silently dropped.
	TimeTileFallbacks int
	RegTileFallbacks  int
}

// MapKernel maps every nest of the kernel with a single tile configuration
// (tile sizes are shared across nests by loop name, the way the paper
// applies one EATSS configuration per kernel).
func MapKernel(k *affine.Kernel, params map[string]int64, tiles map[string]int64, g *arch.GPU, opts Options) (*MappedKernel, error) {
	return MapKernelCtx(context.Background(), k, params, tiles, g, opts)
}

// MapKernelCtx is MapKernel with the caller's context threaded through:
// each nest's mapping runs under a "codegen.map_nest" span recording the
// grid/block decision, thread coarsening, and staging footprint.
func MapKernelCtx(ctx context.Context, k *affine.Kernel, params map[string]int64, tiles map[string]int64, g *arch.GPU, opts Options) (*MappedKernel, error) {
	return MapKernelReuse(ctx, k, nil, params, tiles, g, opts)
}

// MapKernelReuse is MapKernelCtx with precomputed per-nest reuse
// analyses (aligned with k.Nests, e.g. analysis.Program.NestReuses) so
// no per-compile re-derivation happens. A nil slice re-derives every
// nest, reproducing MapKernelCtx.
func MapKernelReuse(ctx context.Context, k *affine.Kernel, reuses []*deps.NestReuse, params map[string]int64, tiles map[string]int64, g *arch.GPU, opts Options) (*MappedKernel, error) {
	if reuses != nil && len(reuses) != len(k.Nests) {
		return nil, fmt.Errorf("codegen: kernel %s: %d precomputed reuse analyses for %d nests",
			k.Name, len(reuses), len(k.Nests))
	}
	if params == nil {
		params = k.Params
	}
	mk := &MappedKernel{Kernel: k, Params: params}
	for i := range k.Nests {
		_, sp := obs.Start(ctx, "codegen.map_nest")
		sp.SetStr("nest", k.Nests[i].Name)
		reuse := (*deps.NestReuse)(nil)
		if reuses != nil {
			reuse = reuses[i]
		}
		if reuse == nil {
			reuse = deps.AnalyzeReuse(&k.Nests[i])
		}
		mn, err := MapNestReuse(&k.Nests[i], reuse, params, tiles, g, opts)
		if err != nil {
			mMapFailures.Add(1)
			sp.SetStr("error", err.Error())
			sp.End()
			return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		mNestsMapped.Add(1)
		mStagingBytes.Add(mn.SharedBytesPerBlock)
		sp.SetStr("mapped_loops", strings.Join(mn.MappedLoops, ","))
		sp.SetInt("threads_per_block", mn.ThreadsPerBlock)
		sp.SetInt("total_blocks", mn.TotalBlocks)
		sp.SetInt("shared_bytes_per_block", mn.SharedBytesPerBlock)
		sp.SetInt("regs_per_thread", mn.RegsPerThread)
		for _, c := range mn.Coarsen {
			if c > 1 {
				mCoarsened.Add(1)
				sp.SetBool("coarsened", true)
				break
			}
		}
		sp.End()
		mk.Nests = append(mk.Nests, mn)
	}
	return mk, nil
}
