package codegen

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/deps"
)

// This file holds the pure, tile-dependent pieces of the PPCG mapping
// decision, factored out of MapNestReuse so the closed-form evaluator
// (internal/symbolic) can replay exactly the same arithmetic per tile
// point without building a MappedNest: tile clamping, launch geometry
// with thread coarsening, shared-staging footprints and demotion order,
// and the register estimate. MapNestReuse itself is a thin composition
// of these helpers, so there is a single source of truth for every
// decision.

// ClampTile applies PPCG's tile-size normalization for one loop:
// negative sizes are rejected (wrapping ErrNegativeTile), zero means
// the default 32, and a tile larger than a positive loop extent is
// clamped to the extent.
func ClampTile(t, ext int64) (int64, error) {
	if t < 0 {
		return 0, ErrNegativeTile
	}
	if t == 0 {
		t = 32
	}
	if t > ext && ext > 0 {
		t = ext
	}
	return t, nil
}

// MappedLoopNames picks the grid-mapped loops for a nest the way PPCG
// does: thread-x is the CMA loop when parallel, otherwise the innermost
// parallel loop; y and z follow outside-in, at most 3 dimensions
// (Sec. IV-F). It depends only on the reuse analysis — never on tile
// sizes — so the choice is a derive-time constant for a program.
func MappedLoopNames(n *affine.Nest, reuse *deps.NestReuse) ([]string, error) {
	info := reuse.Info
	var parallel []int
	for d := range n.Loops {
		if info.Parallel[d] {
			parallel = append(parallel, d)
		}
	}
	if len(parallel) == 0 {
		return nil, fmt.Errorf("codegen: nest %q has no parallel loop to map", n.Name)
	}
	xIdx := -1
	if nCMA := n.LoopIndex(reuse.CMALoop); nCMA >= 0 && info.Parallel[nCMA] {
		xIdx = nCMA
	} else {
		xIdx = parallel[len(parallel)-1] // innermost parallel loop
	}
	names := []string{n.Loops[xIdx].Name}
	for i := len(parallel) - 1; i >= 0 && len(names) < 3; i-- {
		d := parallel[i]
		if d == xIdx {
			continue
		}
		names = append(names, n.Loops[d].Name)
	}
	return names, nil
}

// Geometry is the PPCG launch shape for the mapped dimensions of one
// nest: block/grid extents, per-thread coarsening factors, and their
// products.
type Geometry struct {
	BlockDims, Coarsen, GridDims []int64
	ThreadsPerBlock, TotalBlocks int64
}

// ComputeGeometry derives the launch geometry for the mapped loops'
// (clamped) tile sizes and extents, aligned index-by-index in x, y, z
// order. Tiles with more points than maxThreads are thread-coarsened
// the way PPCG's point-loop strip-mining does: block extents are capped
// (outer dimensions shrunk first, so thread-x keeps coalescing width)
// and each thread walks Coarsen[i] points.
func ComputeGeometry(tiles, exts []int64, maxThreads int64) (Geometry, error) {
	var geo Geometry
	err := ComputeGeometryInto(&geo, tiles, exts, maxThreads)
	return geo, err
}

// ComputeGeometryInto is ComputeGeometry reusing geo's slice capacity.
// The closed-form evaluator calls it once per point per nest with a
// per-plan scratch Geometry, so the steady state allocates nothing.
func ComputeGeometryInto(geo *Geometry, tiles, exts []int64, maxThreads int64) error {
	geo.BlockDims = geo.BlockDims[:0]
	geo.Coarsen = geo.Coarsen[:0]
	geo.GridDims = geo.GridDims[:0]
	geo.ThreadsPerBlock, geo.TotalBlocks = 1, 1
	for i, t := range tiles {
		blocks := (exts[i] + t - 1) / t
		if blocks < 1 {
			blocks = 1
		}
		geo.BlockDims = append(geo.BlockDims, t)
		geo.Coarsen = append(geo.Coarsen, 1)
		geo.GridDims = append(geo.GridDims, blocks)
		geo.ThreadsPerBlock *= t
		geo.TotalBlocks *= blocks
	}
	for geo.ThreadsPerBlock > maxThreads {
		idx := -1
		for i := len(geo.BlockDims) - 1; i >= 0; i-- {
			if geo.BlockDims[i] > 1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("cannot fit block of %d threads under limit %d",
				geo.ThreadsPerBlock, maxThreads)
		}
		geo.BlockDims[idx] = (geo.BlockDims[idx] + 1) / 2
		geo.ThreadsPerBlock = 1
		for _, b := range geo.BlockDims {
			geo.ThreadsPerBlock *= b
		}
	}
	for i, t := range tiles {
		geo.Coarsen[i] = (t + geo.BlockDims[i] - 1) / geo.BlockDims[i]
	}
	return nil
}

// StageSpan is one subscript position of a shared-memory staging
// buffer: the position's leading iterator (the first reference's first
// iterator; "" when the position is iterator-free) and the
// constant-offset spread (halo) across the array's staged references.
type StageSpan struct {
	Iter   string
	Spread int64
}

// StageSpans computes the staging-extent structure of an array's
// shared-class references: per subscript position, which iterator sizes
// the buffer and how wide the halo is. Tile-independent, so
// internal/symbolic derives it once and re-evaluates per point.
func StageSpans(refs []affine.Ref) []StageSpan {
	type span struct {
		iter       string
		minC, maxC int64
		set        bool
	}
	var spans []span
	for _, r := range refs {
		for p, s := range r.Subscripts {
			for len(spans) <= p {
				spans = append(spans, span{})
			}
			iters := s.IterNames()
			it := ""
			if len(iters) > 0 {
				it = iters[0]
			}
			sp := &spans[p]
			if !sp.set {
				sp.iter, sp.minC, sp.maxC, sp.set = it, s.Const, s.Const, true
				continue
			}
			if s.Const < sp.minC {
				sp.minC = s.Const
			}
			if s.Const > sp.maxC {
				sp.maxC = s.Const
			}
		}
	}
	var out []StageSpan
	for _, sp := range spans {
		if !sp.set {
			continue
		}
		out = append(out, StageSpan{Iter: sp.iter, Spread: sp.maxC - sp.minC})
	}
	return out
}

// StageElems evaluates a staging buffer's element count under a tile
// lookup: per span, extent = tile(Iter) + Spread, with iterator-free
// (or unknown-iterator) positions contributing 1 + Spread.
func StageElems(spans []StageSpan, tile func(iter string) (int64, bool)) int64 {
	elems := int64(1)
	for _, sp := range spans {
		ext := int64(1)
		if sp.Iter != "" {
			if t, ok := tile(sp.Iter); ok {
				ext = t
			}
		}
		elems *= ext + sp.Spread
	}
	return elems
}

// DemoteIndex picks which staging buffer PPCG demotes next when the
// shared-memory footprint exceeds the quota: the first (in the given
// order — callers pass sorted array names) of the largest sizes.
// Returns -1 for empty input.
func DemoteIndex(sizes []int64) int {
	worst, worstSize := -1, int64(-1)
	for i, s := range sizes {
		if s > worstSize {
			worst, worstSize = i, s
		}
	}
	return worst
}

// SharedQuotaOf resolves the effective shared-memory budget per block:
// a non-positive or over-limit requested quota means the architecture
// limit.
func SharedQuotaOf(requested int64, g *arch.GPU) int64 {
	if requested <= 0 || requested > g.SharedPerBlock {
		return g.SharedPerBlock
	}
	return requested
}

// EstimateRegs mirrors the mapping's register-pressure estimate: base
// context plus accumulators and address arithmetic per distinct
// reference (doubled for FP64), plus serial-loop bookkeeping, clamped
// (spilled) to what the per-thread and per-block register files allow.
func EstimateRegs(uniqRefs, serialLoops int, prec affine.Precision, threadsPerBlock int64, g *arch.GPU) int64 {
	regs := 14 + int64(uniqRefs)*3*prec.Factor() + int64(serialLoops)*2
	if regs > g.RegsPerThread {
		regs = g.RegsPerThread
	}
	if byBlock := g.RegsPerBlock / threadsPerBlock; regs > byBlock {
		regs = byBlock
	}
	if regs < 1 {
		regs = 1
	}
	return regs
}
