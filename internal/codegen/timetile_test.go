package codegen

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

func mapStencil(t *testing.T, kernel string, tiles map[string]int64) *MappedNest {
	t.Helper()
	k := affine.MustLookup(kernel)
	mk, err := MapKernel(k, nil, tiles, arch.GA100(),
		Options{UseShared: false, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	return mk.Nests[0]
}

func TestStencilRadius(t *testing.T) {
	m := mapStencil(t, "jacobi-2d", map[string]int64{"i": 32, "j": 32})
	if r := m.StencilRadius(); r != 1 {
		t.Fatalf("jacobi-2d radius = %d, want 1", r)
	}
	k := affine.MustLookup("gemm")
	mk, err := MapKernel(k, nil, map[string]int64{"i": 32, "j": 32, "k": 32},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if r := mk.Nests[0].StencilRadius(); r != 0 {
		t.Fatalf("gemm radius = %d, want 0 (no halo)", r)
	}
}

func TestApplyTimeTiling(t *testing.T) {
	m := mapStencil(t, "jacobi-2d", map[string]int64{"i": 32, "j": 64})
	before := m.Launches
	if err := m.ApplyTimeTiling(4); err != nil {
		t.Fatal(err)
	}
	tt := m.TimeTiling
	if tt == nil || tt.Fuse != 4 || tt.Radius != 1 {
		t.Fatalf("TimeTiling = %+v", tt)
	}
	if tt.OverlapFactor <= 1.0 {
		t.Fatalf("overlap factor %.3f should exceed 1 (redundant halo compute)", tt.OverlapFactor)
	}
	if want := (before + 3) / 4; m.Launches != want {
		t.Fatalf("launches = %d, want %d", m.Launches, want)
	}
}

func TestTimeTilingRejectsNonStencil(t *testing.T) {
	k := affine.MustLookup("gemm")
	mk, err := MapKernel(k, nil, map[string]int64{"i": 32, "j": 32, "k": 32},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if err := mk.Nests[0].ApplyTimeTiling(4); err == nil {
		t.Fatal("gemm (launches=1, radius=0) must reject time tiling")
	}
}

func TestTimeTilingRejectsTinyTiles(t *testing.T) {
	// Fusing 8 steps of a radius-1 stencil needs tiles > 14.
	m := mapStencil(t, "jacobi-2d", map[string]int64{"i": 8, "j": 8})
	if err := m.ApplyTimeTiling(8); err == nil {
		t.Fatal("8x8 tiles cannot host a fuse-8 trapezoid")
	}
}

func TestTimeTilingRejectsDouble(t *testing.T) {
	m := mapStencil(t, "jacobi-2d", map[string]int64{"i": 32, "j": 64})
	if err := m.ApplyTimeTiling(2); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyTimeTiling(2); err == nil {
		t.Fatal("double time tiling must be rejected")
	}
}

func TestApplyRegisterTiling(t *testing.T) {
	k := affine.MustLookup("gemm")
	mk, err := MapKernel(k, nil, map[string]int64{"i": 64, "j": 64, "k": 16},
		arch.GA100(), Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	m := mk.Nests[0]
	threadsBefore := m.ThreadsPerBlock
	regsBefore := m.RegsPerThread
	if err := m.ApplyRegisterTiling(4, 255); err != nil {
		t.Fatal(err)
	}
	if m.RegTiling == nil || m.RegTiling.R != 4 {
		t.Fatalf("RegTiling = %+v", m.RegTiling)
	}
	if m.ThreadsPerBlock != threadsBefore/16 {
		t.Fatalf("threads = %d, want %d", m.ThreadsPerBlock, threadsBefore/16)
	}
	if m.RegsPerThread <= regsBefore {
		t.Fatal("register tiling must cost registers")
	}
	// Points per tile preserved via coarsening.
	points := int64(1)
	for i := range m.BlockDims {
		points *= m.BlockDims[i] * m.Coarsen[i]
	}
	if points < 64*64 {
		t.Fatalf("points %d lost by micro-tiling", points)
	}
}

func TestRegisterTilingRejections(t *testing.T) {
	k := affine.MustLookup("gemm")
	fresh := func() *MappedNest {
		mk, err := MapKernel(k, nil, map[string]int64{"i": 64, "j": 64, "k": 16},
			arch.GA100(), Options{Precision: affine.FP64})
		if err != nil {
			t.Fatal(err)
		}
		return mk.Nests[0]
	}
	if err := fresh().ApplyRegisterTiling(1, 255); err == nil {
		t.Error("trivial micro-tile accepted")
	}
	if err := fresh().ApplyRegisterTiling(8, 40); err == nil {
		t.Error("micro-tile exceeding the register limit accepted")
	}
	m := fresh()
	if err := m.ApplyRegisterTiling(2, 255); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyRegisterTiling(2, 255); err == nil {
		t.Error("double register tiling accepted")
	}
}

func TestMicroReuseFactors(t *testing.T) {
	k := affine.MustLookup("gemm")
	mk, err := MapKernel(k, nil, map[string]int64{"i": 64, "j": 64, "k": 16},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	m := mk.Nests[0]
	if err := m.ApplyRegisterTiling(4, 255); err != nil {
		t.Fatal(err)
	}
	for _, mr := range m.Refs {
		got := m.MicroReuse(mr)
		switch mr.Ref.Array {
		case "C": // uses both micro-tiled dims
			if got != 1 {
				t.Errorf("C reuse = %d, want 1", got)
			}
		case "A", "B": // use exactly one of them
			if got != 4 {
				t.Errorf("%s reuse = %d, want 4", mr.Ref.Array, got)
			}
		}
	}
}
