package codegen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

func mapGemm(t *testing.T, tiles map[string]int64, opts Options) *MappedNest {
	t.Helper()
	k := affine.MustLookup("gemm")
	m, err := MapNest(&k.Nests[0], k.Params, tiles, arch.GA100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGemmMappingGeometry(t *testing.T) {
	m := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{UseShared: true, Precision: affine.FP64})

	// Thread-x must be the CMA loop j; y is i; k is serial.
	if m.MappedLoops[0] != "j" || m.MappedLoops[1] != "i" {
		t.Fatalf("MappedLoops = %v, want [j i]", m.MappedLoops)
	}
	if len(m.SerialLoops) != 1 || m.SerialLoops[0] != "k" {
		t.Fatalf("SerialLoops = %v, want [k]", m.SerialLoops)
	}
	if m.ThreadsPerBlock != 16*32 {
		t.Fatalf("ThreadsPerBlock = %d, want 512", m.ThreadsPerBlock)
	}
	// Grid: NI/16 x NJ/32 blocks.
	wantBlocks := (4000/32 + 0) * (4000/16 + 0)
	if m.TotalBlocks != int64(wantBlocks) {
		t.Fatalf("TotalBlocks = %d, want %d", m.TotalBlocks, wantBlocks)
	}
	if m.Launches != 1 {
		t.Fatalf("Launches = %d, want 1", m.Launches)
	}
}

func TestGemmSharedStaging(t *testing.T) {
	m := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{UseShared: true, Precision: affine.FP64})
	// A[i][k] is the non-CMA reference: staged in shared, 16x16 doubles.
	var aShared bool
	for _, mr := range m.Refs {
		if mr.Ref.Array == "A" && mr.Shared {
			aShared = true
		}
		if mr.Ref.Array == "B" && mr.Shared {
			t.Error("B should not be staged (CMA-capable)")
		}
	}
	if !aShared {
		t.Fatal("A should be staged in shared memory")
	}
	if want := int64(16 * 16 * 8); m.SharedBytesPerBlock != want {
		t.Fatalf("SharedBytesPerBlock = %d, want %d", m.SharedBytesPerBlock, want)
	}
}

func TestNoSharedOption(t *testing.T) {
	m := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{UseShared: false, Precision: affine.FP64})
	if m.SharedBytesPerBlock != 0 {
		t.Fatalf("shared bytes = %d with UseShared=false", m.SharedBytesPerBlock)
	}
	for _, mr := range m.Refs {
		if mr.Shared {
			t.Fatalf("ref %v staged despite UseShared=false", mr.Ref)
		}
	}
}

func TestOversizedBlockCoarsened(t *testing.T) {
	// 64x64 points per tile = 4096 threads: the mapper must coarsen
	// (PPCG strip-mines point loops) down to <= 1024 threads, keeping
	// thread-x (the coalescing dimension) at full width.
	k := affine.MustLookup("gemm")
	m, err := MapNest(&k.Nests[0], k.Params, map[string]int64{"i": 64, "j": 64, "k": 16},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if m.ThreadsPerBlock > 1024 {
		t.Fatalf("ThreadsPerBlock = %d, want <= 1024", m.ThreadsPerBlock)
	}
	if m.BlockDims[0] != 64 {
		t.Fatalf("thread-x width = %d, want 64 (coalescing preserved)", m.BlockDims[0])
	}
	// Total points per tile must be preserved by coarsening.
	points := int64(1)
	for i := range m.BlockDims {
		points *= m.BlockDims[i] * m.Coarsen[i]
	}
	if points < 64*64 {
		t.Fatalf("coarsened points %d < tile points %d", points, 64*64)
	}
}

func TestSharedOverflowDemotes(t *testing.T) {
	// Huge serial tile => staging exceeds 48KB; the mapper must demote
	// the array to global rather than fail (PPCG fallback).
	k := affine.MustLookup("gemm")
	m, err := MapNest(&k.Nests[0], k.Params, map[string]int64{"i": 8, "j": 32, "k": 4000},
		arch.GA100(), Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatalf("mapping should demote, not fail: %v", err)
	}
	for _, mr := range m.Refs {
		if mr.Shared {
			t.Fatalf("ref %v still shared after demotion", mr.Ref)
		}
	}
}

func TestTileClampedToExtent(t *testing.T) {
	k := affine.MustLookup("gemm")
	small := k.WithParams(map[string]int64{"NI": 8, "NJ": 8, "NK": 8})
	m, err := MapNest(&small.Nests[0], small.Params, map[string]int64{"i": 32, "j": 32, "k": 32},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tiles["i"] != 8 || m.Tiles["j"] != 8 {
		t.Fatalf("tiles not clamped: %v", m.Tiles)
	}
}

func TestStencilHaloStaging(t *testing.T) {
	// jacobi-2d staged tile must include the +-1 halo.
	k := affine.MustLookup("jacobi-2d")
	m, err := MapNest(&k.Nests[0], k.Params, map[string]int64{"i": 8, "j": 32},
		arch.GA100(), Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	// In jacobi-2d's update nest, A is read at i+-1/j+-1: if staged, the
	// buffer is (8+2)x(32+2). A is also CMA-capable along j... its class
	// depends on the reuse analysis; accept either staged-with-halo or
	// not staged.
	for _, a := range m.sharedArrays() {
		elems := m.ArrayStageElems(a)
		if elems < 8*32 {
			t.Fatalf("staged %s tile %d elems, smaller than the tile", a, elems)
		}
	}
}

func TestMvtUncoalescedWithoutSharedStaging(t *testing.T) {
	// mv1: A[i][j] with thread-x = i (the only parallel loop) is not
	// coalesced.
	k := affine.MustLookup("mvt")
	m, err := MapNest(&k.Nests[0], k.Params, map[string]int64{"i": 64, "j": 16},
		arch.GA100(), Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if m.MappedLoops[0] != "i" {
		t.Fatalf("thread-x = %s, want i", m.MappedLoops[0])
	}
	for _, mr := range m.Refs {
		if mr.Ref.Array == "A" && mr.Coalesced {
			t.Error("A[i][j] should be uncoalesced when thread-x is i")
		}
	}
}

func TestMapKernelAllCatalog(t *testing.T) {
	// Default 32^d tiles must map (possibly with demotion) on both GPUs
	// for every catalog kernel.
	for _, gname := range []string{"ga100", "xavier"} {
		g, _ := arch.ByName(gname)
		for _, name := range affine.Catalog() {
			k := affine.MustLookup(name)
			tiles := map[string]int64{}
			for _, n := range k.Nests {
				for _, l := range n.Loops {
					tiles[l.Name] = 32
				}
			}
			if _, err := MapKernel(k, nil, tiles, g, Options{UseShared: true, Precision: affine.FP64}); err != nil {
				t.Errorf("%s on %s: %v", name, gname, err)
			}
		}
	}
}

func TestCUDASourceRendering(t *testing.T) {
	m := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{UseShared: true, Precision: affine.FP64})
	src := m.CUDASource()
	for _, want := range []string{
		"__global__", "blockIdx.x", "threadIdx.x", "__shared__ double shared_A",
		"__syncthreads()", "for (int k_t", "C[i][j] += f(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("CUDA source missing %q:\n%s", want, src)
		}
	}
}

func TestRegisterEstimateScalesWithPrecision(t *testing.T) {
	m32 := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{Precision: affine.FP32})
	m64 := mapGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16},
		Options{Precision: affine.FP64})
	if m64.RegsPerThread <= m32.RegsPerThread {
		t.Fatalf("FP64 regs (%d) should exceed FP32 regs (%d)",
			m64.RegsPerThread, m32.RegsPerThread)
	}
}

func TestMapNestNegativeTileIsError(t *testing.T) {
	k := affine.MustLookup("gemm")
	_, err := MapNest(&k.Nests[0], k.Params, map[string]int64{"i": 16, "j": -8, "k": 16},
		arch.GA100(), Options{Precision: affine.FP64})
	if err == nil {
		t.Fatal("MapNest accepted a negative tile size")
	}
	if !errors.Is(err, ErrNegativeTile) {
		t.Fatalf("error = %v, want ErrNegativeTile", err)
	}
	if !strings.Contains(err.Error(), "j") {
		t.Fatalf("error %q does not name the offending loop", err)
	}

	// Missing and zero entries keep PPCG's default-32 behavior.
	for _, tiles := range []map[string]int64{
		{"i": 16, "k": 16},
		{"i": 16, "j": 0, "k": 16},
	} {
		m, err := MapNest(&k.Nests[0], k.Params, tiles, arch.GA100(),
			Options{Precision: affine.FP64})
		if err != nil {
			t.Fatalf("MapNest(%v) = %v, want default-32 fallback", tiles, err)
		}
		if m.Tiles["j"] != 32 {
			t.Fatalf("tiles %v: T_j = %d, want default 32", tiles, m.Tiles["j"])
		}
	}
}
