package codegen

import "fmt"

// Register tiling (thread micro-tiles) is the optimization separating
// PPCG-generated code from vendor libraries: each thread computes an
// r x r micro-tile of outputs held in registers, so one loaded operand
// feeds r multiply-accumulates and the SM-local (L1/shared) pipe pressure
// drops by ~r. The paper's related work notes EATSS "incorporates
// variables such as warp size and register tiling in the code generation";
// this file provides it as an explicit extension knob so its effect can be
// studied (see the RegTileStudy bench): performance rises with r until the
// register footprint cuts occupancy.

// RegTiling describes the micro-tile applied to a mapped nest.
type RegTiling struct {
	// R is the micro-tile edge: each thread computes R points along each
	// of the first two mapped dimensions.
	R int64
	// ExtraRegs is the register cost added per thread.
	ExtraRegs int64
}

// ApplyRegisterTiling gives every thread an r x r micro-tile. The thread
// block shrinks by r along the first two mapped dimensions (the tile
// stays fixed); per-thread registers grow by the accumulator footprint.
// It fails when r is trivial, the block cannot shrink that far, or the
// register file cannot hold the micro-tile.
func (m *MappedNest) ApplyRegisterTiling(r int64, regsPerThreadLimit int64) error {
	if r <= 1 {
		return fmt.Errorf("codegen: register tile %d is trivial", r)
	}
	if m.RegTiling != nil {
		return fmt.Errorf("codegen: nest %s is already register-tiled", m.Nest.Name)
	}
	if len(m.MappedLoops) < 2 {
		return fmt.Errorf("codegen: nest %s has fewer than 2 mapped dims", m.Nest.Name)
	}
	for i := 0; i < 2; i++ {
		if m.BlockDims[i] < r {
			return fmt.Errorf("codegen: block dim %d (%d) smaller than micro-tile %d",
				i, m.BlockDims[i], r)
		}
	}
	// Accumulators: r*r values per thread (doubled for FP64), plus r
	// operand registers per input dimension.
	extra := r*r*m.Precision.Factor() + 2*r
	if m.RegsPerThread+extra > regsPerThreadLimit {
		return fmt.Errorf("codegen: micro-tile %d needs %d regs/thread, limit %d",
			r, m.RegsPerThread+extra, regsPerThreadLimit)
	}

	for i := 0; i < 2; i++ {
		m.BlockDims[i] = (m.BlockDims[i] + r - 1) / r
		m.Coarsen[i] *= r
	}
	m.ThreadsPerBlock = 1
	for _, b := range m.BlockDims {
		m.ThreadsPerBlock *= b
	}
	m.RegsPerThread += extra
	m.RegTiling = &RegTiling{R: r, ExtraRegs: extra}
	return nil
}

// MicroReuse returns the operand-amortization factor register tiling gives
// a reference: r for each of the two micro-tiled dimensions the reference
// does NOT use (a loaded value feeds the micro-tile's other axis).
// References using both micro-tiled dimensions (the accumulator itself)
// get no amortization.
func (m *MappedNest) MicroReuse(ref MappedRef) int64 {
	if m.RegTiling == nil {
		return 1
	}
	reuse := int64(1)
	for i := 0; i < 2 && i < len(m.MappedLoops); i++ {
		if !ref.Ref.UsesIter(m.MappedLoops[i]) {
			reuse *= m.RegTiling.R
		}
	}
	return reuse
}
