package codegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
)

// CUDASource renders a human-readable CUDA kernel for the mapped nest,
// in the style of PPCG's generated code: block indices cover tile origins,
// thread indices cover points within a tile, shared-memory arrays are
// staged cooperatively, and serial loops run per thread.
//
// The output documents the schedule; it is presentation code for
// inspection and examples, not input to a CUDA compiler.
func (m *MappedNest) CUDASource() string {
	var b strings.Builder
	prec := "float"
	if m.Precision == affine.FP64 {
		prec = "double"
	}

	// Signature: one pointer per distinct array.
	arrays := m.distinctArrays()
	params := make([]string, 0, len(arrays))
	for _, a := range arrays {
		params = append(params, fmt.Sprintf("%s *%s", prec, a))
	}
	fmt.Fprintf(&b, "// nest %s: grid=(%s) block=(%s) launches=%d\n",
		m.Nest.Name, dimList(m.GridDims), dimList(m.BlockDims), m.Launches)
	fmt.Fprintf(&b, "__global__ void kernel_%s(%s) {\n", m.Nest.Name, strings.Join(params, ", "))

	// Shared staging declarations.
	for _, a := range m.sharedArrays() {
		fmt.Fprintf(&b, "  __shared__ %s shared_%s[%d];\n", prec, a, m.ArrayStageElems(a))
	}

	// Mapped loop index reconstruction.
	axes := []string{"x", "y", "z"}
	for i, name := range m.MappedLoops {
		fmt.Fprintf(&b, "  int %s = blockIdx.%s * %d + threadIdx.%s; // tile %d\n",
			name, axes[i], m.Tiles[name], axes[i], m.Tiles[name])
	}
	// Bounds guards.
	var guards []string
	for _, name := range m.MappedLoops {
		l := m.Nest.Loops[m.Nest.LoopIndex(name)]
		guards = append(guards, fmt.Sprintf("%s < %s", name, l.Upper.EvalParams(m.Params).String()))
	}
	if len(guards) > 0 {
		fmt.Fprintf(&b, "  if (!(%s)) return;\n", strings.Join(guards, " && "))
	}

	// Serial tile loops with staging.
	indent := "  "
	for _, name := range m.SerialLoops {
		l := m.Nest.Loops[m.Nest.LoopIndex(name)]
		up := l.Upper.EvalParams(m.Params).String()
		fmt.Fprintf(&b, "%sfor (int %s_t = %s; %s_t < %s; %s_t += %d) {\n",
			indent, name, l.Lower.EvalParams(m.Params).String(), name, up, name, m.Tiles[name])
		indent += "  "
	}
	if arrays := m.sharedArrays(); len(arrays) > 0 {
		fmt.Fprintf(&b, "%s// cooperative, coalesced staging of shared tiles\n", indent)
		for _, a := range arrays {
			fmt.Fprintf(&b, "%sstage_tile(shared_%s, %s, /*elems=*/%d);\n", indent, a, a, m.ArrayStageElems(a))
		}
		fmt.Fprintf(&b, "%s__syncthreads();\n", indent)
	}
	for _, name := range m.SerialLoops {
		up := fmt.Sprintf("min(%s, %s_t + %d)",
			m.Nest.Loops[m.Nest.LoopIndex(name)].Upper.EvalParams(m.Params).String(), name, m.Tiles[name])
		fmt.Fprintf(&b, "%sfor (int %s = %s_t; %s < %s; %s++) {\n", indent, name, name, name, up, name)
		indent += "  "
	}

	// Body statements.
	for _, st := range m.Nest.Body {
		fmt.Fprintf(&b, "%s%s;\n", indent, m.renderStatement(st))
	}

	for range m.SerialLoops {
		indent = indent[:len(indent)-2]
		fmt.Fprintf(&b, "%s}\n", indent)
	}
	if len(m.sharedArrays()) > 0 {
		fmt.Fprintf(&b, "%s__syncthreads();\n", indent)
	}
	for range m.SerialLoops {
		indent = indent[:len(indent)-2]
		fmt.Fprintf(&b, "%s}\n", indent)
	}
	b.WriteString("}\n")
	return b.String()
}

// renderStatement prints "writes = f(reads)" with shared references
// rewritten to their staging buffers.
func (m *MappedNest) renderStatement(st affine.Statement) string {
	sharedSet := make(map[string]bool)
	for _, mr := range m.Refs {
		if mr.Shared {
			sharedSet[mr.Ref.Array] = true
		}
	}
	render := func(r affine.Ref) string {
		name := r.Array
		if sharedSet[name] && !r.Write {
			name = "shared_" + name
		}
		var sb strings.Builder
		sb.WriteString(name)
		for _, s := range r.Subscripts {
			fmt.Fprintf(&sb, "[%s]", s.String())
		}
		return sb.String()
	}
	var writes, reads []string
	for _, r := range st.Refs {
		if r.Write {
			writes = append(writes, render(r))
		} else {
			reads = append(reads, render(r))
		}
	}
	op := "="
	if st.Reduction {
		op = "+="
	}
	return fmt.Sprintf("%s %s f(%s)", strings.Join(writes, ", "), op, strings.Join(reads, ", "))
}

// distinctArrays lists every array the nest references, sorted.
func (m *MappedNest) distinctArrays() []string {
	set := make(map[string]bool)
	for _, mr := range m.Refs {
		set[mr.Ref.Array] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func dimList(dims []int64) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, ",")
}

// CUDASource renders all nests of a mapped kernel.
func (mk *MappedKernel) CUDASource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// kernel %s (%s)\n", mk.Kernel.Name, mk.Nests[0].Precision)
	for _, mn := range mk.Nests {
		b.WriteString(mn.CUDASource())
		b.WriteString("\n")
	}
	return b.String()
}
