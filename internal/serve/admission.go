package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// errShed is returned when admission control refuses a request because
// both the in-flight slots and the wait queue are full. The HTTP layer
// maps it to 429 Too Many Requests.
var errShed = errors.New("serve: overloaded (in-flight and queue limits reached), request shed")

// admission is the bounded-slot gate in front of heavy operations: at
// most cap(slots) run at once, at most maxQueue wait for a slot, and
// arrivals beyond that are shed immediately. Shedding at the door keeps
// the daemon's latency distribution flat under overload instead of
// letting an unbounded queue turn every response into a timeout.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(inflight, maxQueue int) *admission {
	if inflight < 1 {
		inflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, inflight), maxQueue: int64(maxQueue)}
}

// acquire takes a slot, waiting in the bounded queue if none is free.
// It returns errShed when the queue is full, or ctx.Err() when the
// caller's deadline expires while queued. acquire and release keep the
// serve.inflight and serve.queue_depth gauges current on both edges so
// /metrics reads 0 once traffic drains, not the last post-acquire
// value. Time spent queued lands in the serve.queue_wait_seconds
// histogram (the fast path observes 0, so the count equals admissions)
// and in the request's reqInfo for the wide-event log line.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		mInflight.Set(float64(len(a.slots)))
		mQueueWait.Observe(0)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errShed
	}
	mQueueDepth.Set(float64(a.queued.Load()))
	t0 := obs.Now()
	defer func() {
		wait := obs.Now().Sub(t0)
		mQueueWait.Observe(wait.Seconds())
		if ri := reqInfoFrom(ctx); ri != nil {
			ri.queueWaitNs.Add(int64(wait))
		}
		a.queued.Add(-1)
		mQueueDepth.Set(float64(a.queued.Load()))
	}()
	select {
	case a.slots <- struct{}{}:
		mInflight.Set(float64(len(a.slots)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	mInflight.Set(float64(len(a.slots)))
}

// inFlight reports how many slots are currently held.
func (a *admission) inFlight() int { return len(a.slots) }

// queueDepth reports how many acquirers are waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }
