package serve

import "testing"

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.get("b"); !ok || v != 2 {
		t.Fatalf("b = %d, %t; want 2, true", v, ok)
	}
	if v, ok := c.get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %t; want 3, true", v, ok)
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a")    // a is now most recent
	c.put("c", 3) // evicts b, not a
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived: it was touched most recently")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUPutUpdatesInPlace(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("a", 10)
	if v, _ := c.get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if got := c.len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
}

func TestLRUStats(t *testing.T) {
	c := newLRU[string](4)
	c.put("k", "v")
	c.get("k")
	c.get("k")
	c.get("missing")
	hits, misses := c.stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}
