package serve

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/obs/trace"
)

// reqInfo accumulates per-request facts produced in layers below Do —
// admission queue wait, residual-fallback evaluation — that the
// wide-event log line and the tail sampler need at the end of the
// request. It rides the context as a pointer with atomic fields, so it
// survives context.WithoutCancel (which keeps values) into the detached
// singleflight leader and tolerates concurrent writers.
type reqInfo struct {
	queueWaitNs atomic.Int64
	residual    atomic.Bool
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context) (context.Context, *reqInfo) {
	ri := &reqInfo{}
	return context.WithValue(ctx, reqInfoKey{}, ri), ri
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// markResidual records that this request's evaluation fell back from
// the closed-form plan to the simulator — always retained by the trace
// store's tail sampler.
func markResidual(ctx context.Context) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.residual.Store(true)
	}
}

// traceID resolves the request's trace identity: the trace ID of a
// well-formed incoming W3C traceparent header (distributed callers see
// their own IDs echoed back), else a freshly generated one.
func (s *Server) traceID(req *Request) string {
	if id, ok := trace.ParseTraceparent(req.traceparent); ok {
		return id
	}
	return trace.NewTraceID()
}

// logRequest emits the one wide-event access-log line per request:
// everything an operator greps for when chasing a slow or failed call,
// keyed by the trace ID that /debug/requests?trace= resolves.
func (s *Server) logRequest(ctx context.Context, resp *Response, queueWait time.Duration, rounds int) {
	lg := s.cfg.AccessLog
	if lg == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", resp.TraceID),
		slog.String("op", resp.Op),
		slog.String("status", resp.Status),
		slog.Int("http", resp.HTTPStatus),
		slog.String("kernel", resp.Kernel),
		slog.String("fingerprint", resp.Fingerprint),
		slog.String("gpu", resp.GPU),
		slog.String("evaluator", resp.Evaluator),
		slog.Bool("cached", resp.Cached),
		slog.Bool("coalesced", resp.Coalesced),
		slog.Float64("queue_wait_ms", float64(queueWait)/float64(time.Millisecond)),
		slog.Int("solver_rounds", rounds),
		slog.Float64("latency_ms", resp.ElapsedMs),
	}
	if resp.Error != "" {
		attrs = append(attrs, slog.String("error", resp.Error))
	}
	lg.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
}
