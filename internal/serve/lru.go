package serve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded fixed-capacity least-recently-used cache. Both
// service tiers use it: Program artifacts (immutable, rebuildable, so
// eviction is always safe) and solved Selections (pure functions of
// their key, likewise). Get refreshes recency; Put of a full cache
// evicts the least recently used entry.
type lru[V any] struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	m      map[string]*list.Element
	hits   int64
	misses int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	if max < 1 {
		max = 1
	}
	return &lru[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

func (c *lru[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry[V]).key)
	}
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru[V]) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
