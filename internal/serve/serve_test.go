package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	eatss "repro"

	"repro/internal/obs"
)

// --- concurrency contract -------------------------------------------------

// TestHerdCoalescesToOneSolve is the daemon's core contract: N identical
// concurrent cold-cache solve requests trigger exactly one underlying
// solve; the other N-1 coalesce onto it.
func TestHerdCoalescesToOneSolve(t *testing.T) {
	s := New(Config{})
	const n = 6
	s.solveHook = func(key string) {
		// Hold the solve open until the whole herd has attached, so the
		// outcome cannot depend on scheduling luck. The hook runs on the
		// detached leader goroutine, so it must not t.Fatal.
		spin(func() bool { return s.flights.waiters(key) == n })
	}

	var wg sync.WaitGroup
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i] = s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
		}()
	}
	wg.Wait()

	if got := s.solves.Load(); got != 1 {
		t.Fatalf("herd of %d triggered %d solves, want exactly 1", n, got)
	}
	coalesced := 0
	for i, r := range resps {
		if r.Status != StatusOK {
			t.Fatalf("resp %d: status %s (%s)", i, r.Status, r.Error)
		}
		if r.Selection == nil || len(r.Selection.Tiles) == 0 {
			t.Fatalf("resp %d: no tiles", i)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d responses coalesced, want %d", coalesced, n-1)
	}

	// The herd's result is cached: a follow-up request is a pure hit.
	r := s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
	if !r.Cached || r.Coalesced {
		t.Fatalf("follow-up: cached=%t coalesced=%t, want cached only", r.Cached, r.Coalesced)
	}
}

// TestDeadlineReturnsTimeoutWithoutKillingWork: a request whose deadline
// expires gets a timeout status, the server stays healthy, and the
// abandoned solve still completes and lands in the cache.
func TestDeadlineReturnsTimeoutWithoutKillingWork(t *testing.T) {
	s := New(Config{})
	release := make(chan struct{})
	s.solveHook = func(string) { <-release }

	r := s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm", TimeoutMs: 50})
	if r.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want %s", r.Status, r.Error, StatusTimeout)
	}
	if r.HTTPStatus != http.StatusGatewayTimeout {
		t.Fatalf("http status = %d, want 504", r.HTTPStatus)
	}

	// The solve was abandoned, not cancelled: release it and it caches.
	close(release)
	spinUntil(t, func() bool { return s.selections.Len() == 1 })
	s.solveHook = nil
	r = s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
	if r.Status != StatusOK || !r.Cached {
		t.Fatalf("post-timeout request: status=%s cached=%t, want ok from cache", r.Status, r.Cached)
	}
}

// TestOverloadSheds: with one execution slot and a one-deep queue, a
// third distinct request is refused with the shed status (HTTP 429)
// instead of queueing without bound.
func TestOverloadSheds(t *testing.T) {
	s := New(Config{MaxInflight: 1, MaxQueue: 1})
	release := make(chan struct{})
	s.solveHook = func(key string) {
		// Block only the first solve (split 0.5); later solves run free.
		if strings.Split(key, "|")[3] == "0.5" {
			<-release
		}
	}

	// A occupies the only slot.
	done := make(chan *Response, 2)
	go func() {
		done <- s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
	}()
	spinUntil(t, func() bool { return s.adm.inFlight() == 1 })

	// B fills the queue.
	split := 0.25
	go func() {
		done <- s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm", Split: &split})
	}()
	spinUntil(t, func() bool { return s.adm.queueDepth() == 1 })

	// C is shed at the door.
	split2 := 0.75
	r := s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm", Split: &split2})
	if r.Status != StatusShed {
		t.Fatalf("status = %s (%s), want %s", r.Status, r.Error, StatusShed)
	}
	if r.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("http status = %d, want 429", r.HTTPStatus)
	}

	close(release)
	<-done
	<-done

	// The gate fully drains: the server keeps serving.
	spinUntil(t, func() bool { return s.adm.inFlight() == 0 && s.adm.queueDepth() == 0 })
	r = s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
	if r.Status != StatusOK {
		t.Fatalf("post-shed request: status = %s (%s), want ok", r.Status, r.Error)
	}
}

// --- HTTP API -------------------------------------------------------------

func TestEndpoints(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("lint", func(t *testing.T) {
		r := post(t, ts, "/v1/lint", `{"kernel":"gemm"}`, http.StatusOK)
		if r.Status != StatusOK || r.Kernel != "gemm" {
			t.Fatalf("status=%s kernel=%s", r.Status, r.Kernel)
		}
	})

	t.Run("analyze", func(t *testing.T) {
		r := post(t, ts, "/v1/analyze", `{"kernel":"gemm"}`, http.StatusOK)
		if r.Analysis == nil || r.Analysis.Fingerprint == "" || r.Analysis.Nests == 0 {
			t.Fatalf("analysis view missing: %+v", r.Analysis)
		}
		if r.Fingerprint != r.Analysis.Fingerprint {
			t.Fatal("envelope and view fingerprints disagree")
		}
	})

	t.Run("analyze source", func(t *testing.T) {
		src, err := json.Marshal(eatss.WriteKernel(eatss.MustKernel("atax")))
		if err != nil {
			t.Fatal(err)
		}
		r := post(t, ts, "/v1/analyze", fmt.Sprintf(`{"source":%s}`, src), http.StatusOK)
		if r.Status != StatusOK || r.Kernel != "atax" {
			t.Fatalf("status=%s kernel=%s (%s)", r.Status, r.Kernel, r.Error)
		}
	})

	t.Run("solve then cache hit", func(t *testing.T) {
		r := post(t, ts, "/v1/solve", `{"kernel":"syrk"}`, http.StatusOK)
		if r.Selection == nil || len(r.Selection.Tiles) == 0 {
			t.Fatal("no tiles in solve response")
		}
		if r.Cached {
			t.Fatal("first solve reported a cache hit")
		}
		r2 := post(t, ts, "/v1/solve", `{"kernel":"syrk"}`, http.StatusOK)
		if !r2.Cached {
			t.Fatal("second identical solve missed the cache")
		}
		if r2.Selection.Objective != r.Selection.Objective {
			t.Fatal("cached solve returned a different objective")
		}
	})

	t.Run("solve options key separately", func(t *testing.T) {
		r := post(t, ts, "/v1/solve", `{"kernel":"syrk","fp32":true}`, http.StatusOK)
		if r.Cached {
			t.Fatal("different precision must not share the FP64 cache entry")
		}
	})

	t.Run("compile", func(t *testing.T) {
		r := post(t, ts, "/v1/compile", `{"kernel":"gemm","tiles":{"i":32,"j":32,"k":32}}`, http.StatusOK)
		if r.Mapping == nil || len(r.Mapping.Nests) == 0 || r.Mapping.CUDA == "" {
			t.Fatalf("mapping view missing: %+v", r.Mapping)
		}
	})

	t.Run("simulate solves when no tiles given", func(t *testing.T) {
		r := post(t, ts, "/v1/simulate", `{"kernel":"mvt"}`, http.StatusOK)
		if r.Selection == nil {
			t.Fatal("tile-less simulate should report the selection it solved")
		}
		if r.Result == nil || r.Result.GFLOPS <= 0 || r.Result.EnergyJ <= 0 {
			t.Fatalf("result view missing or degenerate: %+v", r.Result)
		}
	})

	t.Run("best", func(t *testing.T) {
		r := post(t, ts, "/v1/best", `{"kernel":"gemm"}`, http.StatusOK)
		if len(r.Candidates) == 0 || r.Result == nil || r.Result.PPW <= 0 {
			t.Fatalf("best view missing: %d candidates, result %+v", len(r.Candidates), r.Result)
		}
	})

	t.Run("batch", func(t *testing.T) {
		body := `{"requests":[{"op":"lint","kernel":"gemm"},{"op":"solve","kernel":"bicg"},{"op":"nope","kernel":"gemm"}]}`
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status = %d, want 200", resp.StatusCode)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if len(out.Responses) != 3 {
			t.Fatalf("%d responses, want 3", len(out.Responses))
		}
		if out.Responses[0].Op != "lint" || out.Responses[0].Status != StatusOK {
			t.Fatalf("entry 0: %+v", out.Responses[0])
		}
		if out.Responses[1].Selection == nil {
			t.Fatal("entry 1: no selection")
		}
		if out.Responses[2].Status != StatusError {
			t.Fatalf("entry 2: status %s, want error for unknown op", out.Responses[2].Status)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Solves == 0 || st.SelectionCache.Len == 0 {
			t.Fatalf("stats look untouched after traffic: %+v", st)
		}
	})

	t.Run("introspection mounted", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
		}
	})
}

func TestRequestValidation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"unknown kernel", "/v1/solve", `{"kernel":"nope"}`, http.StatusBadRequest},
		{"no kernel", "/v1/solve", `{}`, http.StatusBadRequest},
		{"kernel and source", "/v1/solve", `{"kernel":"gemm","source":"x"}`, http.StatusBadRequest},
		{"unknown gpu", "/v1/solve", `{"kernel":"gemm","gpu":"h100"}`, http.StatusBadRequest},
		{"unknown evaluator", "/v1/simulate", `{"kernel":"gemm","evaluator":"z3"}`, http.StatusBadRequest},
		{"bad source", "/v1/analyze", `{"source":"not a kernel"}`, http.StatusBadRequest},
		{"infeasible formulation", "/v1/solve", `{"kernel":"conv-2d"}`, http.StatusUnprocessableEntity},
		{"empty batch", "/v1/batch", `{"requests":[]}`, http.StatusBadRequest},
		// Regression: a null batch entry decoded to a nil *Request and
		// panicked inside a handler-spawned goroutine, crashing the whole
		// process (net/http's recover only covers the handler goroutine).
		{"null entry in batch", "/v1/batch", `{"requests":[null]}`, http.StatusBadRequest},
		{"null entry amid valid ones", "/v1/batch", `{"requests":[{"op":"lint","kernel":"gemm"},null]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status = %d, want 405", resp.StatusCode)
		}
	})

	t.Run("malformed json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
}

// TestNilRequest: Do must never dereference a nil request (the /v1/batch
// handler guards its entries, but Do is public API and must hold on its
// own).
func TestNilRequest(t *testing.T) {
	s := New(Config{})
	r := s.Do(context.Background(), nil)
	if r == nil {
		t.Fatal("Do(nil) returned nil response")
	}
	if r.Status != StatusError || r.HTTPStatus != http.StatusBadRequest {
		t.Fatalf("Do(nil): status=%s http=%d, want %s/400", r.Status, r.HTTPStatus, StatusError)
	}
}

// TestClientCancelIsNotATimeout: a client that disconnects mid-request
// (context cancelled) gets the cancelled status, not 504/timeout, so
// churny clients don't inflate the serve.timeouts metric.
func TestClientCancelIsNotATimeout(t *testing.T) {
	obs.EnableMetrics()
	defer obs.Disable()
	s := New(Config{})
	release := make(chan struct{})
	s.solveHook = func(string) { <-release }
	timeoutsBefore := mTimeouts.Value()
	cancelledBefore := mCancelled.Value()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Response, 1)
	go func() {
		done <- s.Do(ctx, &Request{Op: "solve", Kernel: "gemm"})
	}()
	spinUntil(t, func() bool { return s.adm.inFlight() == 1 })
	cancel()
	r := <-done

	if r.Status != StatusCancelled {
		t.Fatalf("status = %s (%s), want %s", r.Status, r.Error, StatusCancelled)
	}
	if r.HTTPStatus != statusClientClosed {
		t.Fatalf("http status = %d, want %d", r.HTTPStatus, statusClientClosed)
	}
	if got := mTimeouts.Value(); got != timeoutsBefore {
		t.Fatalf("serve.timeouts moved %d -> %d on a client cancel", timeoutsBefore, got)
	}
	if got := mCancelled.Value(); got != cancelledBefore+1 {
		t.Fatalf("serve.cancelled moved %d -> %d, want +1", cancelledBefore, got)
	}

	// The detached solve is unaffected: release it and it caches.
	close(release)
	spinUntil(t, func() bool { return s.selections.Len() == 1 })
}

// TestInflightGaugeDrains: serve.inflight must track both edges of the
// admission gate — >=1 while a solve holds a slot, back to 0 once
// traffic drains (it used to stick at the last post-acquire value).
func TestInflightGaugeDrains(t *testing.T) {
	obs.EnableMetrics()
	defer obs.Disable()
	s := New(Config{})
	release := make(chan struct{})
	s.solveHook = func(string) { <-release }

	done := make(chan *Response, 1)
	go func() {
		done <- s.Do(context.Background(), &Request{Op: "solve", Kernel: "gemm"})
	}()
	spinUntil(t, func() bool { return mInflight.Value() >= 1 })
	close(release)
	<-done
	spinUntil(t, func() bool { return mInflight.Value() == 0 })
}

// TestProgramCacheSharedAcrossOps: analyze then solve then lint on the
// same kernel stages the analysis exactly once.
func TestProgramCacheSharedAcrossOps(t *testing.T) {
	s := New(Config{})
	for _, op := range []string{"analyze", "solve", "lint"} {
		r := s.Do(context.Background(), &Request{Op: op, Kernel: "doitgen"})
		if r.Status != StatusOK {
			t.Fatalf("%s: %s (%s)", op, r.Status, r.Error)
		}
	}
	hits, misses, _ := s.programs.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("program cache: %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestWarmStagesCatalog(t *testing.T) {
	s := New(Config{})
	n := s.Warm(context.Background())
	if n != len(eatss.Kernels()) {
		t.Fatalf("warmed %d programs, want the full catalog of %d", n, len(eatss.Kernels()))
	}
	if got := s.programs.Len(); got != n {
		t.Fatalf("program cache holds %d, want %d", got, n)
	}
}

// --- helpers --------------------------------------------------------------

func post(t *testing.T, ts *httptest.Server, path, body string, wantStatus int) *Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decode %s response: %v", path, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s status = %d, want %d (error: %s)", path, resp.StatusCode, wantStatus, r.Error)
	}
	return &r
}

func spinUntil(t *testing.T, cond func() bool) {
	t.Helper()
	if !spin(cond) {
		t.Fatal("condition not reached in 10s")
	}
}

// spin is spinUntil for non-test goroutines (it cannot t.Fatal).
func spin(cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// TestEvaluatorBackendParity: the evaluator request knob must select the
// backend (echoed in the response), produce identical figures either
// way, and keep selection-tier cache entries separate per backend.
func TestEvaluatorBackendParity(t *testing.T) {
	s := New(Config{})
	run := func(evaluator string) *Response {
		r := s.Do(context.Background(), &Request{
			Op: "simulate", Kernel: "gemm",
			Tiles:     map[string]int64{"i": 32, "j": 32, "k": 16},
			Evaluator: evaluator,
		})
		if r.Status != StatusOK {
			t.Fatalf("evaluator %q: status %s (%s)", evaluator, r.Status, r.Error)
		}
		if r.Result == nil {
			t.Fatalf("evaluator %q: no result", evaluator)
		}
		return r
	}
	sim := run("")
	sym := run("symbolic")
	if sim.Evaluator != "simulate" || sym.Evaluator != "symbolic" {
		t.Fatalf("evaluator echo = %q / %q, want simulate / symbolic", sim.Evaluator, sym.Evaluator)
	}
	if sim.Result.EnergyJ != sym.Result.EnergyJ || sim.Result.L2Sectors != sym.Result.L2Sectors {
		t.Fatalf("backends diverge: %+v vs %+v", sim.Result, sym.Result)
	}

	// The best protocol keys its cache per backend: a simulate-backed
	// best must not satisfy a symbolic-backed one.
	b1 := s.Do(context.Background(), &Request{Op: "best", Kernel: "mvt"})
	b2 := s.Do(context.Background(), &Request{Op: "best", Kernel: "mvt", Evaluator: "symbolic"})
	if b1.Status != StatusOK || b2.Status != StatusOK {
		t.Fatalf("best failed: %s / %s", b1.Error, b2.Error)
	}
	if b2.Cached {
		t.Fatal("symbolic best hit the simulate-backed cache entry")
	}
	if b1.Result.EnergyJ != b2.Result.EnergyJ {
		t.Fatalf("best diverges across backends: %g vs %g", b1.Result.EnergyJ, b2.Result.EnergyJ)
	}
}

// Explicit tiles that provably violate the static feasibility region
// must be rejected with 422 before any heavy work, naming the violated
// constraint; feasible explicit tiles and solver-chosen tiles (no tiles
// in the request) are untouched by the pre-filter.
func TestInfeasibleTilesRejected(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A 512x512 parallel block puts REG_SM far over GA100's 65536.
	for _, op := range []string{"simulate", "compile"} {
		r := post(t, ts, "/v1/"+op,
			`{"kernel":"gemm","tiles":{"i":512,"j":512,"k":4}}`, http.StatusUnprocessableEntity)
		if r.Status != StatusError || !strings.Contains(r.Error, "register") {
			t.Fatalf("%s: want a register-constraint 422, got status %q error %q", op, r.Status, r.Error)
		}
	}
	if post(t, ts, "/v1/simulate", `{"kernel":"gemm","tiles":{"i":32,"j":32,"k":16}}`,
		http.StatusOK).Result == nil {
		t.Fatal("feasible explicit tiles returned no result")
	}
	// The solve-first path asks the solver for tiles; its output is
	// feasible by construction and must never be pre-filtered.
	if post(t, ts, "/v1/simulate", `{"kernel":"gemm"}`, http.StatusOK).Result == nil {
		t.Fatal("solver-tiles simulate returned no result")
	}
}
