// Package serve is the tile-selection service layer behind cmd/eatssd:
// a long-running JSON-over-HTTP front end for the
// lint→analyze→solve→compile→simulate pipeline, built for sustained
// concurrent traffic over the same small universe of affine kernels.
//
// The layer adds four service-side mechanisms on top of the eatss
// public API, all exercised by internal tests and the cmd/servebench
// load generator:
//
//   - Two-tier caching. Tier 1 is an LRU of *eatss.Program artifacts
//     keyed on Program.Fingerprint() — the staged analysis is computed
//     once per distinct (kernel, params) and shared by every request.
//     Tier 2 is an LRU of solved artifacts (Selections, Bests) keyed on
//     (fingerprint, GPU, options) — the service analogue of search
//     memoization: a kernel solved once is served from memory forever
//     after (until evicted).
//   - Request coalescing. A thundering herd of identical cold-cache
//     solve requests triggers exactly one underlying solve; the rest
//     wait on the leader's result (singleflight). A waiter's deadline
//     expiring abandons the wait without cancelling the shared work.
//   - Admission control. Heavy operations (solve, best, compile,
//     simulate) pass a bounded-slot gate: at most MaxInflight execute
//     at once, at most MaxQueue wait behind them, and everything beyond
//     that is shed immediately with HTTP 429 instead of queueing into
//     collapse.
//   - Per-request deadlines. Every request runs under a context with a
//     deadline (client-supplied timeout_ms, clamped to MaxTimeout);
//     the ctx plumbing through solver/compile/simulate turns a blown
//     deadline into a fast HTTP 504, never a stuck worker.
//
// Everything is instrumented through the internal/obs registry
// (serve.requests, serve.shed, serve.coalesced, cache hit/miss
// counters, a request-latency histogram), and the introspection
// endpoints of internal/obs/serve (/metrics, /progress, /flight, pprof)
// are mounted on the same mux.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	eatss "repro"

	"repro/internal/lru"
	"repro/internal/obs"
	obsserve "repro/internal/obs/serve"
)

// Service-level telemetry, exported at /metrics.
var (
	mRequests   = obs.NewCounter("serve.requests")
	mErrors     = obs.NewCounter("serve.errors")
	mTimeouts   = obs.NewCounter("serve.timeouts")
	mCancelled  = obs.NewCounter("serve.cancelled")
	mShed       = obs.NewCounter("serve.shed")
	mCoalesced  = obs.NewCounter("serve.coalesced")
	mSolves     = obs.NewCounter("serve.solves")
	mProgHits   = obs.NewCounter("serve.program_cache_hits")
	mProgMisses = obs.NewCounter("serve.program_cache_misses")
	mSelHits    = obs.NewCounter("serve.selection_cache_hits")
	mSelMisses  = obs.NewCounter("serve.selection_cache_misses")
	// mInfeasibleTiles counts explicit-tiles requests rejected by the
	// static feasibility analysis (422 before any heavy work).
	mInfeasibleTiles = obs.NewCounter("serve.infeasible_tiles")
	mInflight   = obs.NewGauge("serve.inflight")
	mQueueDepth = obs.NewGauge("serve.queue_depth")
	mRequestSec = obs.NewHistogram("serve.request_seconds",
		1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10)
	// mQueueWait explains shedding decisions: how long admitted requests
	// actually waited for a slot. The fast path observes 0, so the count
	// equals admissions and the >0 buckets give the queued fraction.
	mQueueWait = obs.NewHistogram("serve.queue_wait_seconds",
		1e-5, 1e-4, 1e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10)
)

// Config tunes the service. The zero value is usable: every field has
// a production default applied by New.
type Config struct {
	// MaxInflight bounds concurrently executing heavy operations
	// (solve, best, compile, simulate). 0 means GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds how many heavy operations may wait for a slot
	// beyond the in-flight bound; arrivals past it are shed with 429.
	// 0 means 4x MaxInflight.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout clamps client-requested deadlines and bounds the
	// detached execution of coalesced work. Zero means 30s / 2m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ProgramCacheSize / SelectionCacheSize bound the two LRU tiers
	// (entries, not bytes). Zero means 256 / 4096.
	ProgramCacheSize   int
	SelectionCacheSize int
	// AccessLog, when non-nil, receives one wide-event Info record per
	// request (trace ID, op, kernel fingerprint, GPU, evaluator,
	// cache/coalesce flags, queue wait, solver rounds, outcome, latency).
	// nil disables access logging.
	AccessLog *slog.Logger
	// DisableTracing turns off per-request span collection and the
	// /debug/requests trace store. Requests still get trace IDs, the
	// wide-event log line, and metrics.
	DisableTracing bool
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.ProgramCacheSize <= 0 {
		c.ProgramCacheSize = 256
	}
	if c.SelectionCacheSize <= 0 {
		c.SelectionCacheSize = 4096
	}
	return c
}

// Server is the tile-selection service. Create with New, expose with
// Handler or Start. Safe for concurrent use.
type Server struct {
	cfg        Config
	programs   *lru.Cache[*eatss.Program]
	selections *lru.Cache[any] // *eatss.Selection or *eatss.Best by key prefix
	flights    group
	adm        *admission
	startedAt  time.Time
	solves     atomic.Int64 // underlying (non-coalesced, non-cached) solves

	// solveHook, when set (tests), runs inside the singleflight leader
	// after admission, before the underlying solve — the seam the
	// concurrency-contract tests use to hold a solve open.
	solveHook func(key string)
}

// SetSolveHook installs fn as the solve-side test seam: it runs inside
// the singleflight leader after admission control grants a slot and
// before the underlying solve. End-to-end tests outside this package
// use it to hold the execution slot open and build admission
// contention (sheds, queue-wait timeouts) by construction — on a
// single-CPU machine millisecond solves never overlap, so timing-based
// contention is unwinnable. Set before serving traffic; the hook is
// not synchronized against in-flight requests.
func (s *Server) SetSolveHook(fn func(key string)) { s.solveHook = fn }

// New builds a Server from cfg (zero-value fields get defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:        cfg,
		programs:   lru.New[*eatss.Program](cfg.ProgramCacheSize),
		selections: lru.New[any](cfg.SelectionCacheSize),
		adm:        newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		startedAt:  obs.Now(),
	}
}

// Handler returns the service mux: the /v1 JSON API, /healthz, and the
// live-introspection endpoints (/metrics, /progress, /trace, /flight,
// /profile, pprof) from internal/obs/serve.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, op := range ops {
		mux.HandleFunc("/v1/"+op, s.handleOp(op))
	}
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/", obsserve.Handler())
	return mux
}

// Start listens on addr and serves the API in the background on the
// hardened listener lifecycle of internal/obs/serve (header timeouts,
// graceful Shutdown).
func (s *Server) Start(addr string) (*obsserve.Server, error) {
	return obsserve.StartHandler(addr, s.Handler())
}

// CacheStats is one LRU tier's occupancy and effectiveness.
type CacheStats struct {
	Len    int   `json:"len"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats is a point-in-time snapshot of the service counters, served at
// /healthz and consumed by the load generator's sanity checks.
type Stats struct {
	Solves         int64      `json:"solves"`
	InFlight       int        `json:"inflight"`
	Queued         int64      `json:"queued"`
	ProgramCache   CacheStats `json:"program_cache"`
	SelectionCache CacheStats `json:"selection_cache"`
	UptimeSec      float64    `json:"uptime_sec"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Solves:    s.solves.Load(),
		InFlight:  s.adm.inFlight(),
		Queued:    s.adm.queueDepth(),
		UptimeSec: obs.Now().Sub(s.startedAt).Seconds(),
	}
	st.ProgramCache.Len = s.programs.Len()
	st.ProgramCache.Hits, st.ProgramCache.Misses, _ = s.programs.Stats()
	st.SelectionCache.Len = s.selections.Len()
	st.SelectionCache.Hits, st.SelectionCache.Misses, _ = s.selections.Stats()
	return st
}

// Warm pre-analyzes the built-in kernel catalog into the program cache
// so the first requests after boot skip the analysis stage. It returns
// how many programs were staged; kernels that fail to analyze (none in
// the shipped catalog) are skipped.
func (s *Server) Warm(ctx context.Context) int {
	n := 0
	for _, name := range eatss.Kernels() {
		k, err := eatss.Kernel(name)
		if err != nil {
			continue
		}
		if _, _, _, err := s.program(ctx, k, nil); err == nil {
			n++
		}
	}
	return n
}

// program returns the cached analysis artifact for (kernel, params),
// building and inserting it on a miss. Concurrent misses on the same
// fingerprint may both build — the artifact is immutable and the
// analysis is ~100µs, so duplicate builds are cheaper than a second
// coalescing layer; the expensive tier (solves) does coalesce.
func (s *Server) program(ctx context.Context, k *eatss.AffineKernel, params map[string]int64) (*eatss.Program, string, bool, error) {
	fp := eatss.FingerprintKernel(k, params)
	if p, ok := s.programs.Get(fp); ok {
		mProgHits.Add(1)
		return p, fp, true, nil
	}
	mProgMisses.Add(1)
	p, err := eatss.AnalyzeCtx(ctx, k, params)
	if err != nil {
		return nil, fp, false, err
	}
	s.programs.Put(fp, p)
	return p, fp, false, nil
}

// solved is the two-tier read path for solve-class work: the selection
// LRU first, then singleflight coalescing, then admission control, then
// the underlying solve. fn runs detached from any single caller's
// context — a waiter whose deadline expires abandons the wait, the
// shared work finishes and lands in the cache for the next request.
func (s *Server) solved(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, cached, coalesced bool, err error) {
	if v, ok := s.selections.Get(key); ok {
		mSelHits.Add(1)
		return v, true, false, nil
	}
	mSelMisses.Add(1)
	v, coalesced, err = s.flights.do(ctx, key, func() (any, error) {
		// Double-check under the flight: a previous leader may have
		// populated the cache between our miss and our takeoff.
		if v, ok := s.selections.Get(key); ok {
			return v, nil
		}
		wctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.MaxTimeout)
		defer cancel()
		if err := s.adm.acquire(wctx); err != nil {
			return nil, err
		}
		defer s.adm.release()
		if s.solveHook != nil {
			s.solveHook(key)
		}
		s.solves.Add(1)
		mSolves.Add(1)
		v, err := fn(wctx)
		if err == nil {
			s.selections.Put(key, v)
		}
		return v, err
	})
	if coalesced {
		mCoalesced.Add(1)
	}
	return v, false, coalesced, err
}

// heavy runs a non-coalescable heavy operation (compile, simulate with
// explicit tiles) under admission control with the request's context.
func (s *Server) heavy(ctx context.Context, fn func() error) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	defer s.adm.release()
	return fn()
}
