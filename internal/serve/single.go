package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// group coalesces concurrent work by key (a minimal singleflight): the
// first caller for a key becomes the leader and runs fn in a detached
// goroutine; everyone else waits on the leader's result. Two deliberate
// departures from the classic shape, both for service use:
//
//   - Waiting respects each waiter's context: a caller whose deadline
//     expires gets its context error immediately and stops waiting.
//   - The work itself is NOT tied to any caller's context. fn keeps
//     running after every waiter has given up, so the result still
//     lands in the cache — the herd's solve is never wasted.
type group struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int64 // leader + followers; tests observe herd size
}

// do returns fn's result for key, coalescing concurrent callers.
// coalesced reports that this caller waited on another caller's work
// rather than leading its own.
func (g *group) do(ctx context.Context, key string, fn func() (any, error)) (v any, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	c.waiters.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		// Yield before starting: a freshly spawned goroutine runs ahead
		// of the scheduler's run queue, so on a saturated (or single-P)
		// scheduler a CPU-bound fn would finish before concurrently
		// arrived requests for the same key were even dispatched — they
		// would then hit the result cache one by one instead of
		// coalescing here. One yield lets every already-runnable request
		// observe the in-flight call first.
		runtime.Gosched()
		v, err := fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.val, c.err = v, err
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.val, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// waiters reports how many callers are attached to key's in-flight call
// (0 when none is in flight). Tests use it to hold a herd open
// deterministically.
func (g *group) waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters.Load()
	}
	return 0
}
