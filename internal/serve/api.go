package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	eatss "repro"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// ops are the /v1/<op> endpoints, one staged-pipeline step each.
var ops = []string{"lint", "analyze", "solve", "best", "compile", "simulate"}

// Response statuses.
const (
	StatusOK        = "ok"        // request succeeded
	StatusError     = "error"     // the pipeline rejected the request (HTTP 400/422)
	StatusTimeout   = "timeout"   // the request deadline expired (HTTP 504)
	StatusCancelled = "cancelled" // the client went away mid-request (HTTP 499)
	StatusShed      = "shed"      // admission control refused the request (HTTP 429)
)

// statusClientClosed is the nginx-convention transport code for "client
// closed request"; net/http has no constant for it. The client never
// reads it — it records the outcome for logs and in-process callers.
const statusClientClosed = 499

// batchLimit caps how many requests one /v1/batch call may carry.
const batchLimit = 256

// maxBodyBytes bounds a request body; kernel sources are a few KB at
// most, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// Request is the JSON body accepted by every /v1 endpoint. Exactly one
// of Kernel (catalog name) or Source (DSL text) identifies the kernel.
type Request struct {
	// Op is the pipeline step; implied by the URL on single-op
	// endpoints, required on /v1/batch entries.
	Op string `json:"op,omitempty"`

	// Kernel names a catalog kernel; Source is inline DSL text.
	Kernel string `json:"kernel,omitempty"`
	Source string `json:"source,omitempty"`
	// GPU names the target ("ga100", "xavier", "v100"); default ga100.
	GPU string `json:"gpu,omitempty"`
	// Params overrides problem sizes (nil = kernel defaults).
	Params map[string]int64 `json:"params,omitempty"`

	// Solver options (solve): nil means DefaultOptions.
	Split    *float64 `json:"split,omitempty"`
	WarpFrac *float64 `json:"warpfrac,omitempty"`
	// FP32 selects single precision (solve, best, compile, simulate).
	FP32 bool `json:"fp32,omitempty"`

	// Evaluator picks the evaluation backend for best/simulate:
	// "simulate" (default), "symbolic", or "auto" (closed-form with
	// simulator fallback on residual configurations). Invalid values are
	// rejected with 400.
	Evaluator string `json:"evaluator,omitempty"`

	// Compile/simulate configuration. Empty Tiles means "solve first,
	// then use the selected tiles". UseShared defaults to true.
	Tiles        map[string]int64 `json:"tiles,omitempty"`
	UseShared    *bool            `json:"use_shared,omitempty"`
	SharedQuota  int64            `json:"shared_quota,omitempty"`
	TimeTileFuse int64            `json:"time_tile_fuse,omitempty"`
	RegTile      int64            `json:"reg_tile,omitempty"`

	// TimeoutMs bounds this request's execution (clamped to the
	// server's MaxTimeout); 0 means the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// traceparent is the raw incoming W3C traceparent header, set by the
	// HTTP handler (not decodable from JSON): a valid one makes the
	// request adopt the caller's trace ID. Batch entries always get
	// fresh per-entry IDs.
	traceparent string
}

// Response is the JSON reply for every /v1 endpoint. Status is always
// set; exactly the view matching the op is populated on success.
type Response struct {
	Op     string `json:"op"`
	Status string `json:"status"`
	// HTTPStatus is the transport code the handler writes; not part of
	// the JSON body.
	HTTPStatus int    `json:"-"`
	Error      string `json:"error,omitempty"`

	Kernel      string `json:"kernel,omitempty"`
	GPU         string `json:"gpu,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Evaluator echoes the evaluation backend used (best/simulate only).
	Evaluator string `json:"evaluator,omitempty"`
	// Cached reports a selection-tier cache hit; Coalesced reports that
	// this request waited on another request's identical in-flight work.
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// TraceID identifies this request in /debug/requests, the flight
	// recorder and the access log; also echoed as a traceparent header.
	TraceID string `json:"trace_id,omitempty"`

	Diags      []DiagView      `json:"diags,omitempty"`
	Analysis   *AnalysisView   `json:"analysis,omitempty"`
	Selection  *SelectionView  `json:"selection,omitempty"`
	Candidates []CandidateView `json:"candidates,omitempty"`
	Mapping    *MappingView    `json:"mapping,omitempty"`
	Result     *ResultView     `json:"result,omitempty"`
}

// DiagView is one kernel-linter finding.
type DiagView struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Pos      string `json:"pos"`
	Msg      string `json:"msg"`
	Note     string `json:"note,omitempty"`
}

// AnalysisView summarizes a staged analysis artifact.
type AnalysisView struct {
	Fingerprint string           `json:"fingerprint"`
	Nests       int              `json:"nests"`
	Params      map[string]int64 `json:"params,omitempty"`
}

// SelectionView is a solved EATSS tile choice.
type SelectionView struct {
	Tiles       map[string]int64 `json:"tiles"`
	Objective   int64            `json:"objective"`
	SolverCalls int              `json:"solver_calls"`
	SolveTimeMs float64          `json:"solve_time_ms"`
	Split       float64          `json:"split"`
	WarpFrac    float64          `json:"warpfrac"`
}

// CandidateView is one evaluated configuration from the best protocol.
type CandidateView struct {
	SharedFrac float64        `json:"shared_frac"`
	Selection  *SelectionView `json:"selection"`
	Result     *ResultView    `json:"result"`
}

// NestView is one mapped nest's launch geometry.
type NestView struct {
	Loops           []string `json:"loops"`
	GridDims        []int64  `json:"grid"`
	BlockDims       []int64  `json:"block"`
	ThreadsPerBlock int64    `json:"threads_per_block"`
	SharedBytes     int64    `json:"shared_bytes"`
	RegsPerThread   int64    `json:"regs_per_thread"`
	Launches        int64    `json:"launches"`
}

// MappingView is a compiled kernel: per-nest geometry plus the rendered
// CUDA-style source.
type MappingView struct {
	Nests             []NestView `json:"nests"`
	TimeTileFallbacks int        `json:"time_tile_fallbacks,omitempty"`
	RegTileFallbacks  int        `json:"reg_tile_fallbacks,omitempty"`
	CUDA              string     `json:"cuda"`
}

// ResultView is one simulated execution.
type ResultView struct {
	Tiles     map[string]int64 `json:"tiles,omitempty"`
	TimeMs    float64          `json:"time_ms"`
	GFLOPS    float64          `json:"gflops"`
	AvgPowerW float64          `json:"avg_power_w"`
	EnergyJ   float64          `json:"energy_j"`
	PPW       float64          `json:"ppw"`
	L2Sectors int64            `json:"l2_sectors"`
	DRAMBytes int64            `json:"dram_bytes"`
}

// Do executes one request under the service's deadline, admission and
// caching policy and returns the response (never nil; errors are
// encoded in Status/Error/HTTPStatus).
//
// Every request gets a trace identity: the ID from a valid incoming
// traceparent, or a generated one. Unless tracing is disabled, the
// request runs under an obs.Trace (collecting the span tree of
// everything below — analysis, solver rounds, sweep workers,
// evaluation) rooted at a "serve.request" span annotated with the
// serving outcome, and the finished trace is offered to the
// tail-sampled store behind /debug/requests. Either way the latency
// histogram gets the trace ID as a bucket exemplar and the configured
// access log gets one wide-event line.
func (s *Server) Do(ctx context.Context, req *Request) *Response {
	if req == nil {
		return fail(&Response{}, http.StatusBadRequest, StatusError,
			errors.New("nil request"))
	}
	mRequests.Add(1)
	start := obs.Now()
	traceID := s.traceID(req)
	var act *trace.Active
	if !s.cfg.DisableTracing {
		var t *obs.Trace
		ctx, t = obs.StartTrace(ctx, traceID)
		act = &trace.Active{
			TraceID: traceID, Op: req.Op, Kernel: req.Kernel, GPU: req.GPU,
			StartAt: start, Trace: t,
		}
		trace.Default.Begin(act)
	}
	ctx, root := obs.Start(ctx, "serve.request")
	root.SetStr("op", req.Op)
	ctx, ri := withReqInfo(ctx)
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req))
	defer cancel()
	resp := s.do(ctx, req)
	resp.TraceID = traceID
	elapsed := obs.Now().Sub(start)
	resp.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	mRequestSec.ObserveExemplar(elapsed.Seconds(), traceID)
	switch resp.Status {
	case StatusTimeout:
		mTimeouts.Add(1)
	case StatusCancelled:
		mCancelled.Add(1)
	case StatusShed:
		mShed.Add(1)
	case StatusError:
		mErrors.Add(1)
	}
	queueWait := time.Duration(ri.queueWaitNs.Load())
	rounds := 0
	if resp.Selection != nil {
		rounds = resp.Selection.SolverCalls
	}
	root.SetStr("status", resp.Status)
	root.SetStr("kernel", resp.Kernel)
	root.SetStr("gpu", resp.GPU)
	root.SetBool("cached", resp.Cached)
	root.SetBool("coalesced", resp.Coalesced)
	if resp.Evaluator != "" {
		root.SetStr("evaluator", resp.Evaluator)
	}
	if ri.residual.Load() {
		root.SetBool("residual", true)
	}
	root.SetInt("solver_rounds", int64(rounds))
	root.SetFloat("queue_wait_ms", float64(queueWait)/float64(time.Millisecond))
	root.End()
	if act != nil {
		trace.Default.Finish(act, trace.Outcome{
			Status:      resp.Status,
			HTTPStatus:  resp.HTTPStatus,
			Error:       resp.Error,
			Kernel:      resp.Kernel,
			GPU:         resp.GPU,
			Fingerprint: resp.Fingerprint,
			Evaluator:   resp.Evaluator,
			Cached:      resp.Cached,
			Coalesced:   resp.Coalesced,
			Residual:    ri.residual.Load(),
			QueueWait:   queueWait,
			SolverCalls: rounds,
			Duration:    elapsed,
		})
	}
	s.logRequest(ctx, resp, queueWait, rounds)
	return resp
}

// timeout resolves the request's deadline: client timeout_ms clamped to
// MaxTimeout, or the server default.
func (s *Server) timeout(req *Request) time.Duration {
	if req.TimeoutMs <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(req.TimeoutMs) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) do(ctx context.Context, req *Request) *Response {
	resp := &Response{Op: req.Op, GPU: req.GPU}
	if resp.GPU == "" {
		resp.GPU = "ga100"
	}
	known := false
	for _, op := range ops {
		if req.Op == op {
			known = true
			break
		}
	}
	if !known {
		return fail(resp, http.StatusBadRequest, StatusError,
			fmt.Errorf("unknown op %q (valid: %s)", req.Op, strings.Join(ops, ", ")))
	}
	k, err := kernelOf(req)
	if err != nil {
		return fail(resp, http.StatusBadRequest, StatusError, err)
	}
	resp.Kernel = k.Name
	g, err := eatss.GPUByName(resp.GPU)
	if err != nil {
		return fail(resp, http.StatusBadRequest, StatusError, err)
	}
	eval, err := eatss.ParseEvaluator(req.Evaluator)
	if err != nil {
		return fail(resp, http.StatusBadRequest, StatusError, err)
	}

	prog, fp, _, err := s.program(ctx, k, req.Params)
	if err != nil {
		return failFrom(resp, err)
	}
	resp.Fingerprint = fp

	switch req.Op {
	case "lint":
		for _, d := range prog.Lint() {
			resp.Diags = append(resp.Diags, DiagView{
				Code:     d.Code,
				Severity: d.Severity.String(),
				Pos:      d.Pos.String(),
				Msg:      d.Msg,
				Note:     d.Note,
			})
		}
	case "analyze":
		resp.Analysis = &AnalysisView{
			Fingerprint: fp,
			Nests:       len(prog.Kernel().Nests),
			Params:      prog.Params(),
		}
	case "solve":
		opts := solveOptions(req)
		key := fmt.Sprintf("sel|%s|%s|%g|%g|%d", fp, g.Name, opts.SplitFactor, opts.WarpFraction, opts.Precision)
		v, cached, coalesced, err := s.solved(ctx, key, func(wctx context.Context) (any, error) {
			return prog.SelectTilesCtx(wctx, g, opts)
		})
		if err != nil {
			return failFrom(resp, err)
		}
		resp.Cached, resp.Coalesced = cached, coalesced
		resp.Selection = selectionView(v.(*eatss.Selection))
	case "best":
		prec := precisionOf(req)
		resp.Evaluator = eval.String()
		key := fmt.Sprintf("best|%s|%s|%d|%s", fp, g.Name, prec, eval)
		v, cached, coalesced, err := s.solved(ctx, key, func(wctx context.Context) (any, error) {
			return prog.SelectBestEval(wctx, g, prec, eval)
		})
		if err != nil {
			return failFrom(resp, err)
		}
		resp.Cached, resp.Coalesced = cached, coalesced
		best := v.(*eatss.Best)
		if best.Residual > 0 {
			markResidual(ctx)
		}
		resp.Selection = selectionView(best.Chosen.Selection)
		resp.Result = resultView(best.Chosen.Selection.Tiles, best.Chosen.Result)
		for _, c := range best.Candidates {
			resp.Candidates = append(resp.Candidates, CandidateView{
				SharedFrac: c.SharedFrac,
				Selection:  selectionView(c.Selection),
				Result:     resultView(c.Selection.Tiles, c.Result),
			})
		}
	case "compile", "simulate":
		tiles := req.Tiles
		if len(tiles) == 0 {
			opts := solveOptions(req)
			key := fmt.Sprintf("sel|%s|%s|%g|%g|%d", fp, g.Name, opts.SplitFactor, opts.WarpFraction, opts.Precision)
			v, cached, coalesced, err := s.solved(ctx, key, func(wctx context.Context) (any, error) {
				return prog.SelectTilesCtx(wctx, g, opts)
			})
			if err != nil {
				return failFrom(resp, err)
			}
			resp.Cached, resp.Coalesced = cached, coalesced
			sel := v.(*eatss.Selection)
			resp.Selection = selectionView(sel)
			tiles = sel.Tiles
		}
		cfg := runConfig(req)
		cfg.Evaluator = eval
		// Explicit tiles are judged by the static feasibility analysis
		// before any heavy work: a point that provably violates the
		// option-free model constraints (tile domains, register bound)
		// is rejected with 422 naming the violated constraint. The
		// region is memoized on the Program, so a server caching
		// Programs per fingerprint pays one derivation per fingerprint.
		// Solver-selected tiles (the empty-Tiles path above) are model-
		// feasible by construction and skip the check.
		if len(req.Tiles) != 0 {
			if cert := prog.FeasibleRegion(g, cfg).Check(req.Tiles); cert != nil {
				mInfeasibleTiles.Add(1)
				_, fsp := obs.Start(ctx, "serve.infeasible_tiles")
				fsp.SetStr("constraint", cert.Constraint)
				fsp.End()
				return fail(resp, http.StatusUnprocessableEntity, StatusError,
					fmt.Errorf("tiles statically infeasible on %s: %s", g.Name, cert))
			}
		}
		err := s.heavy(ctx, func() error {
			if req.Op == "compile" {
				m, err := prog.CompileCtx(ctx, g, tiles, cfg)
				if err != nil {
					return err
				}
				resp.Mapping = mappingView(m)
				return nil
			}
			resp.Evaluator = eval.String()
			res, info, err := prog.RunEvalCtx(ctx, g, tiles, cfg)
			if err != nil {
				return err
			}
			if info.Residual {
				markResidual(ctx)
			}
			resp.Result = resultView(tiles, res)
			return nil
		})
		if err != nil {
			return failFrom(resp, err)
		}
	}
	resp.Status = StatusOK
	resp.HTTPStatus = http.StatusOK
	return resp
}

// kernelOf resolves the request's kernel: exactly one of kernel|source.
func kernelOf(req *Request) (*eatss.AffineKernel, error) {
	switch {
	case req.Kernel != "" && req.Source != "":
		return nil, errors.New("request has both kernel and source; send exactly one")
	case req.Kernel != "":
		return eatss.Kernel(req.Kernel)
	case req.Source != "":
		k, err := eatss.ParseKernel(req.Source)
		if err != nil {
			return nil, err
		}
		eatss.Schedule(k) // canonical loop order, applied in place
		return k, nil
	default:
		return nil, errors.New("request names no kernel; send kernel (catalog name) or source (DSL text)")
	}
}

func solveOptions(req *Request) eatss.Options {
	opts := eatss.DefaultOptions()
	if req.Split != nil {
		opts.SplitFactor = *req.Split
	}
	if req.WarpFrac != nil {
		opts.WarpFraction = *req.WarpFrac
	}
	opts.Precision = precisionOf(req)
	return opts
}

func precisionOf(req *Request) eatss.Precision {
	if req.FP32 {
		return eatss.FP32
	}
	return eatss.FP64
}

func runConfig(req *Request) eatss.RunConfig {
	cfg := eatss.RunConfig{
		Params:       req.Params,
		UseShared:    true,
		SharedQuota:  req.SharedQuota,
		Precision:    precisionOf(req),
		TimeTileFuse: req.TimeTileFuse,
		RegTile:      req.RegTile,
	}
	if req.UseShared != nil {
		cfg.UseShared = *req.UseShared
	}
	return cfg
}

func selectionView(sel *eatss.Selection) *SelectionView {
	return &SelectionView{
		Tiles:       sel.Tiles,
		Objective:   sel.Objective,
		SolverCalls: sel.SolverCalls,
		SolveTimeMs: float64(sel.SolveTime) / float64(time.Millisecond),
		Split:       sel.Opts.SplitFactor,
		WarpFrac:    sel.Opts.WarpFraction,
	}
}

func resultView(tiles map[string]int64, res eatss.Result) *ResultView {
	return &ResultView{
		Tiles:     tiles,
		TimeMs:    res.TimeSec * 1e3,
		GFLOPS:    res.GFLOPS,
		AvgPowerW: res.AvgPowerW,
		EnergyJ:   res.EnergyJ,
		PPW:       res.PPW,
		L2Sectors: res.L2Sectors,
		DRAMBytes: res.DRAMBytes,
	}
}

func mappingView(m *eatss.MappedKernel) *MappingView {
	mv := &MappingView{
		TimeTileFallbacks: m.TimeTileFallbacks,
		RegTileFallbacks:  m.RegTileFallbacks,
		CUDA:              m.CUDASource(),
	}
	for _, n := range m.Nests {
		mv.Nests = append(mv.Nests, NestView{
			Loops:           n.MappedLoops,
			GridDims:        n.GridDims,
			BlockDims:       n.BlockDims,
			ThreadsPerBlock: n.ThreadsPerBlock,
			SharedBytes:     n.SharedBytesPerBlock,
			RegsPerThread:   n.RegsPerThread,
			Launches:        n.Launches,
		})
	}
	return mv
}

// fail stamps a terminal status onto resp.
func fail(resp *Response, httpStatus int, status string, err error) *Response {
	resp.HTTPStatus = httpStatus
	resp.Status = status
	resp.Error = err.Error()
	return resp
}

// failFrom maps an execution error onto the right transport semantics:
// shed -> 429, blown deadline -> 504, client cancellation -> 499,
// anything else -> 422. Canceled is kept apart from DeadlineExceeded so
// churny clients that disconnect mid-request don't inflate the timeout
// metric.
func failFrom(resp *Response, err error) *Response {
	switch {
	case errors.Is(err, errShed):
		return fail(resp, http.StatusTooManyRequests, StatusShed, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fail(resp, http.StatusGatewayTimeout, StatusTimeout, err)
	case errors.Is(err, context.Canceled):
		return fail(resp, statusClientClosed, StatusCancelled, err)
	default:
		return fail(resp, http.StatusUnprocessableEntity, StatusError, err)
	}
}

// handleOp builds the POST handler for one /v1/<op> endpoint. It
// ingests the W3C traceparent header (a valid one makes the request
// adopt the caller's trace ID) and echoes the request's trace identity
// back as a traceparent response header.
func (s *Server) handleOp(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest(w, r)
		if !ok {
			return
		}
		req.Op = op
		req.traceparent = r.Header.Get("traceparent")
		resp := s.Do(r.Context(), req)
		if resp.TraceID != "" {
			w.Header().Set("traceparent", trace.Traceparent(resp.TraceID))
		}
		writeJSON(w, resp.HTTPStatus, resp)
	}
}

// batchRequest / batchResponse are the /v1/batch envelope.
type batchRequest struct {
	Requests []*Request `json:"requests"`
}

type batchResponse struct {
	Responses []*Response `json:"responses"`
}

// handleBatch executes up to batchLimit requests concurrently and
// returns their responses in order. The transport status is 200; each
// entry carries its own status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var batch batchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(batch.Requests) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(batch.Requests) > batchLimit {
		http.Error(w, fmt.Sprintf("batch of %d exceeds the %d-request limit",
			len(batch.Requests), batchLimit), http.StatusBadRequest)
		return
	}
	for i, req := range batch.Requests {
		if req == nil {
			http.Error(w, fmt.Sprintf("null request at index %d", i), http.StatusBadRequest)
			return
		}
	}
	out := batchResponse{Responses: make([]*Response, len(batch.Requests))}
	var wg sync.WaitGroup
	for i, req := range batch.Requests {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out.Responses[i] = s.Do(r.Context(), req)
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return nil, false
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return &req, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response write
}
