package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCoalescesConcurrentCallers(t *testing.T) {
	var g group
	var calls atomic.Int64
	const n = 8
	release := make(chan struct{})

	var wg sync.WaitGroup
	var coalesced atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, co, err := g.do(context.Background(), "k", func() (any, error) {
				calls.Add(1)
				// Hold the flight open until every caller has attached,
				// so the herd size is deterministic.
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			if v != 42 {
				t.Errorf("v = %v, want 42", v)
			}
			if co {
				coalesced.Add(1)
			}
		}()
	}
	waitFor(t, func() bool { return g.waiters("k") == n })
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := coalesced.Load(); got != n-1 {
		t.Fatalf("%d callers coalesced, want %d", got, n-1)
	}
}

func TestGroupWaiterDeadlineDoesNotCancelWork(t *testing.T) {
	var g group
	release := make(chan struct{})
	done := make(chan struct{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	go func() {
		defer close(done)
		_, _, err := g.do(ctx, "k", func() (any, error) {
			<-release
			return "late", nil
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want DeadlineExceeded", err)
		}
	}()
	<-done // the caller gave up...

	// ...but the work is still in flight and completes once released.
	if g.waiters("k") == 0 {
		t.Fatal("flight should still be open after the waiter gave up")
	}
	close(release)
	waitFor(t, func() bool { return g.waiters("k") == 0 })
}

func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g group
	var calls atomic.Int64
	fn := func() (any, error) { calls.Add(1); return nil, nil }
	if _, co, _ := g.do(context.Background(), "a", fn); co {
		t.Fatal("first caller of a key must lead, not coalesce")
	}
	if _, co, _ := g.do(context.Background(), "b", fn); co {
		t.Fatal("distinct key must lead its own flight")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2", got)
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
