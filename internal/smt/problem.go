package smt

import (
	"fmt"
	"sort"
	"strings"
)

// Problem is a conjunction of constraints over finite-domain integer
// variables.
type Problem struct {
	names   []string
	domains [][]int64 // sorted ascending, deduplicated
	cons    []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// IntVar declares a variable with an explicit candidate domain. The domain
// is copied, sorted and deduplicated. Declaring an empty domain yields a
// trivially unsatisfiable problem.
func (p *Problem) IntVar(name string, domain []int64) Var {
	d := append([]int64(nil), domain...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	out := d[:0]
	for i, v := range d {
		if i == 0 || v != d[i-1] {
			out = append(out, v)
		}
	}
	p.names = append(p.names, name)
	p.domains = append(p.domains, out)
	return Var(len(p.names) - 1)
}

// RangeVar declares a variable ranging over the multiples of step within
// [lo, hi] (Sec. IV-B's warp-aligned tile domains). step must be >= 1.
func (p *Problem) RangeVar(name string, lo, hi, step int64) Var {
	if step < 1 {
		step = 1
	}
	var d []int64
	start := ((lo + step - 1) / step) * step
	if start < step {
		start = step
	}
	for v := start; v <= hi; v += step {
		d = append(d, v)
	}
	return p.IntVar(name, d)
}

// NumVars returns the number of declared variables.
func (p *Problem) NumVars() int { return len(p.names) }

// Name returns the declared name of v.
func (p *Problem) Name(v Var) string { return p.names[v] }

// Domain returns (a copy of) the current candidate domain of v.
func (p *Problem) Domain(v Var) []int64 {
	return append([]int64(nil), p.domains[v]...)
}

// Require adds the constraint l op r.
func (p *Problem) Require(l Expr, op Op, r Expr) {
	p.cons = append(p.cons, Constraint{L: l, Op: op, R: r})
}

// RequireLabeled adds the constraint l op r under a label naming the
// model constraint kind, for the solver's prune attribution.
func (p *Problem) RequireLabeled(label string, l Expr, op Op, r Expr) {
	p.cons = append(p.cons, Constraint{L: l, Op: op, R: r, Label: label})
}

// RequireLE adds l <= r.
func (p *Problem) RequireLE(l, r Expr) { p.Require(l, LE, r) }

// RequireGE adds l >= r.
func (p *Problem) RequireGE(l, r Expr) { p.Require(l, GE, r) }

// RequireGT adds l > r.
func (p *Problem) RequireGT(l, r Expr) { p.Require(l, GT, r) }

// RequireEQ adds l == r.
func (p *Problem) RequireEQ(l, r Expr) { p.Require(l, EQ, r) }

// Constraints returns the number of constraints added so far.
func (p *Problem) Constraints() int { return len(p.cons) }

// String renders the problem in an SMT-LIB-flavored form for debugging and
// for the CLI's -dump-model mode.
func (p *Problem) String() string {
	var b strings.Builder
	for i, name := range p.names {
		d := p.domains[i]
		if len(d) == 0 {
			fmt.Fprintf(&b, "(declare %s in {})\n", name)
			continue
		}
		fmt.Fprintf(&b, "(declare %s in [%d..%d] /%d values)\n", name, d[0], d[len(d)-1], len(d))
	}
	for _, c := range p.cons {
		fmt.Fprintf(&b, "(assert (%s %s %s))\n", c.Op, c.L.render(p.names), c.R.render(p.names))
	}
	return b.String()
}
