// Package smt is a finite-domain solver for the non-linear integer
// formulations EATSS generates. It stands in for the Z3 SMT solver used by
// the paper: tile-size variables have small bounded domains (multiples of a
// warp fraction within [1, T_P_B], Sec. IV-B), so an exact branch-and-prune
// search with interval reasoning decides the same formulas Z3 does, and the
// paper's iterative objective-improvement loop (add OBJ_{n+1} > OBJ_n until
// UNSAT, Sec. IV-L) is reproduced verbatim by Maximize.
package smt

import (
	"fmt"
	"math/big"
	"strings"
)

// Var identifies a solver variable.
type Var int

// Expr is an integer expression over solver variables.
type Expr interface {
	// Eval evaluates the expression under a complete assignment.
	Eval(m Model) int64
	// EvalBig evaluates the expression under a complete assignment in
	// arbitrary precision, so an independent checker (internal/verify)
	// can re-decide constraints without inheriting Eval's int64 wrap.
	EvalBig(m Model) *big.Int
	// Bounds returns a conservative interval of the expression's value
	// given per-variable bounds.
	Bounds(lo, hi []int64) Interval
	// CollectVars records the variables used.
	CollectVars(set map[Var]bool)
	// String renders the expression using the problem's variable names.
	render(names []string) string
}

// Model is a complete assignment of values to variables.
type Model []int64

// Value returns the value of v in the model.
func (m Model) Value(v Var) int64 { return m[v] }

// --- expression nodes ---

type constExpr struct{ v int64 }

func (c constExpr) Eval(Model) int64             { return c.v }
func (c constExpr) EvalBig(Model) *big.Int       { return big.NewInt(c.v) }
func (c constExpr) Bounds(_, _ []int64) Interval { return Interval{c.v, c.v} }
func (c constExpr) CollectVars(map[Var]bool)     {}
func (c constExpr) render(_ []string) string     { return fmt.Sprintf("%d", c.v) }

type varExpr struct{ v Var }

func (e varExpr) Eval(m Model) int64       { return m[e.v] }
func (e varExpr) EvalBig(m Model) *big.Int { return big.NewInt(m[e.v]) }
func (e varExpr) Bounds(lo, hi []int64) Interval {
	return Interval{lo[e.v], hi[e.v]}
}
func (e varExpr) CollectVars(set map[Var]bool) { set[e.v] = true }
func (e varExpr) render(names []string) string { return names[e.v] }

type sumExpr struct{ terms []Expr }

func (e sumExpr) Eval(m Model) int64 {
	var s int64
	for _, t := range e.terms {
		s += t.Eval(m)
	}
	return s
}
func (e sumExpr) EvalBig(m Model) *big.Int {
	s := new(big.Int)
	for _, t := range e.terms {
		s.Add(s, t.EvalBig(m))
	}
	return s
}
func (e sumExpr) Bounds(lo, hi []int64) Interval {
	acc := Interval{0, 0}
	for _, t := range e.terms {
		acc = acc.Add(t.Bounds(lo, hi))
	}
	return acc
}
func (e sumExpr) CollectVars(set map[Var]bool) {
	for _, t := range e.terms {
		t.CollectVars(set)
	}
}
func (e sumExpr) render(names []string) string {
	parts := make([]string, len(e.terms))
	for i, t := range e.terms {
		parts[i] = t.render(names)
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

type mulExpr struct{ factors []Expr }

func (e mulExpr) Eval(m Model) int64 {
	p := int64(1)
	for _, f := range e.factors {
		p *= f.Eval(m)
	}
	return p
}
func (e mulExpr) EvalBig(m Model) *big.Int {
	p := big.NewInt(1)
	for _, f := range e.factors {
		p.Mul(p, f.EvalBig(m))
	}
	return p
}
func (e mulExpr) Bounds(lo, hi []int64) Interval {
	acc := Interval{1, 1}
	for _, f := range e.factors {
		acc = acc.Mul(f.Bounds(lo, hi))
	}
	return acc
}
func (e mulExpr) CollectVars(set map[Var]bool) {
	for _, f := range e.factors {
		f.CollectVars(set)
	}
}
func (e mulExpr) render(names []string) string {
	parts := make([]string, len(e.factors))
	for i, f := range e.factors {
		parts[i] = f.render(names)
	}
	return "(" + strings.Join(parts, " * ") + ")"
}

// --- constructors ---

// C returns the constant expression v.
func C(v int64) Expr { return constExpr{v} }

// V returns the expression reading variable v.
func V(v Var) Expr { return varExpr{v} }

// Sum returns t0 + t1 + ....
func Sum(terms ...Expr) Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	return sumExpr{terms: terms}
}

// Mul returns f0 * f1 * ....
func Mul(factors ...Expr) Expr {
	if len(factors) == 1 {
		return factors[0]
	}
	return mulExpr{factors: factors}
}

// Scale returns c * e.
func Scale(c int64, e Expr) Expr { return Mul(C(c), e) }

// --- constraints ---

// Op is a comparison operator.
type Op int

// Comparison operators for constraints.
const (
	LE Op = iota // <=
	LT           // <
	GE           // >=
	GT           // >
	EQ           // ==
	NE           // !=
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "=="
	default:
		return "!="
	}
}

// Constraint is a comparison between two expressions. Label optionally
// names the model constraint kind ("register", "l1-capacity", ...); the
// solver attributes pruned subtrees to it, so the search telemetry can
// report which part of the formulation does the cutting (Sec. V-G).
type Constraint struct {
	L     Expr
	Op    Op
	R     Expr
	Label string
}

// Holds evaluates the constraint under a complete model.
func (c Constraint) Holds(m Model) bool {
	l, r := c.L.Eval(m), c.R.Eval(m)
	switch c.Op {
	case LE:
		return l <= r
	case LT:
		return l < r
	case GE:
		return l >= r
	case GT:
		return l > r
	case EQ:
		return l == r
	default:
		return l != r
	}
}

// HoldsBig decides the constraint under a complete model in arbitrary
// precision. It is the certification path (internal/verify): where Eval
// could wrap int64 on adversarial formulations, HoldsBig cannot, so a
// disagreement between Holds and HoldsBig exposes overflow in the solver
// arithmetic rather than hiding it.
func (c Constraint) HoldsBig(m Model) bool {
	cmp := c.L.EvalBig(m).Cmp(c.R.EvalBig(m))
	switch c.Op {
	case LE:
		return cmp <= 0
	case LT:
		return cmp < 0
	case GE:
		return cmp >= 0
	case GT:
		return cmp > 0
	case EQ:
		return cmp == 0
	default:
		return cmp != 0
	}
}

// Render returns the constraint in the problem's SMT-LIB-flavored form,
// resolving variable names through the owning problem.
func (c Constraint) Render(p *Problem) string {
	return fmt.Sprintf("(%s %s %s)", c.Op, c.L.render(p.names), c.R.render(p.names))
}

// feasible reports whether the constraint can possibly hold given variable
// bounds (interval reasoning; NE is never pruned).
func (c Constraint) feasible(lo, hi []int64) bool {
	li := c.L.Bounds(lo, hi)
	ri := c.R.Bounds(lo, hi)
	switch c.Op {
	case LE:
		return li.Lo <= ri.Hi
	case LT:
		return li.Lo < ri.Hi
	case GE:
		return li.Hi >= ri.Lo
	case GT:
		return li.Hi > ri.Lo
	case EQ:
		return li.Lo <= ri.Hi && ri.Lo <= li.Hi
	default:
		return true
	}
}
