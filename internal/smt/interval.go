package smt

// Interval is a closed integer interval [Lo, Hi] used for bounds reasoning
// during search. Products handle sign changes by taking the extrema of the
// four corner products.
type Interval struct {
	Lo, Hi int64
}

// Add returns the interval sum.
func (a Interval) Add(b Interval) Interval {
	return Interval{a.Lo + b.Lo, a.Hi + b.Hi}
}

// Mul returns the interval product.
func (a Interval) Mul(b Interval) Interval {
	c1 := a.Lo * b.Lo
	c2 := a.Lo * b.Hi
	c3 := a.Hi * b.Lo
	c4 := a.Hi * b.Hi
	lo, hi := c1, c1
	for _, c := range []int64{c2, c3, c4} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return Interval{lo, hi}
}

// Contains reports whether v lies in the interval.
func (a Interval) Contains(v int64) bool { return a.Lo <= v && v <= a.Hi }

// Empty reports whether the interval is empty.
func (a Interval) Empty() bool { return a.Lo > a.Hi }
