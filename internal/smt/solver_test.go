package smt

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSolveSimpleLinear(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 10, 1)
	y := p.RangeVar("y", 1, 10, 1)
	p.RequireEQ(Sum(V(x), V(y)), C(7))
	p.RequireGT(V(x), V(y))
	m, ok := NewSolver(p).Solve()
	if !ok {
		t.Fatal("expected SAT")
	}
	if m.Value(x)+m.Value(y) != 7 || m.Value(x) <= m.Value(y) {
		t.Fatalf("bad model x=%d y=%d", m.Value(x), m.Value(y))
	}
}

func TestSolveUnsat(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 5, 1)
	p.RequireGT(V(x), C(100))
	if _, ok := NewSolver(p).Solve(); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyDomainUnsat(t *testing.T) {
	p := NewProblem()
	p.IntVar("x", nil)
	if _, ok := NewSolver(p).Solve(); ok {
		t.Fatal("empty domain should be UNSAT")
	}
}

func TestRangeVarStep(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 100, 32)
	d := p.Domain(x)
	want := []int64{32, 64, 96}
	if len(d) != len(want) {
		t.Fatalf("domain = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("domain = %v, want %v", d, want)
		}
	}
}

func TestMaximizeNonLinear(t *testing.T) {
	// maximize x*y subject to x*y <= 50, x,y in multiples of 2 up to 16.
	p := NewProblem()
	x := p.RangeVar("x", 1, 16, 2)
	y := p.RangeVar("y", 1, 16, 2)
	p.RequireLE(Mul(V(x), V(y)), C(50))
	m, val, ok := NewSolver(p).Maximize(Mul(V(x), V(y)))
	if !ok {
		t.Fatal("expected SAT")
	}
	if val != 48 {
		t.Fatalf("max = %d (x=%d, y=%d), want 48", val, m.Value(x), m.Value(y))
	}
}

func TestMaximizeMatchesEnumeration(t *testing.T) {
	// Cross-check branch-and-improve against brute-force enumeration on a
	// tile-selection-shaped problem.
	build := func() (*Problem, Var, Var, Var, Expr) {
		p := NewProblem()
		ti := p.RangeVar("Ti", 1, 64, 8)
		tj := p.RangeVar("Tj", 1, 64, 8)
		tk := p.RangeVar("Tk", 1, 64, 8)
		// block size cap
		p.RequireLE(Mul(V(ti), V(tj)), C(1024))
		// cache capacity
		p.RequireLE(Sum(Mul(V(ti), V(tj)), Mul(V(tk), V(tj))), C(2048))
		// shared memory
		p.RequireLE(Mul(V(ti), V(tk)), C(1024))
		obj := Sum(Mul(V(ti), V(tj)), Scale(16, V(tj)))
		return p, ti, tj, tk, obj
	}

	p1, _, _, _, obj1 := build()
	_, got, ok := NewSolver(p1).Maximize(obj1)
	if !ok {
		t.Fatal("expected SAT")
	}

	p2, _, _, _, obj2 := build()
	best := int64(-1 << 62)
	NewSolver(p2).Enumerate(func(m Model) bool {
		if v := obj2.Eval(m); v > best {
			best = v
		}
		return true
	})
	if got != best {
		t.Fatalf("Maximize = %d, brute force = %d", got, best)
	}
}

func TestMaximizeStatsCounted(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 32, 1)
	p.RequireLE(V(x), C(20))
	s := NewSolver(p)
	_, val, ok := s.Maximize(V(x))
	if !ok || val != 20 {
		t.Fatalf("max=%d ok=%v", val, ok)
	}
	// At least two calls: first model + the failed improvement round.
	if s.Stats.SolverCalls < 2 {
		t.Fatalf("SolverCalls = %d, want >= 2", s.Stats.SolverCalls)
	}
	if s.Stats.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestModUnnecessaryViaDomains(t *testing.T) {
	// Warp-alignment (T % 16 == 0) is encoded by domain construction.
	p := NewProblem()
	x := p.RangeVar("x", 1, 100, 16)
	for _, v := range p.Domain(x) {
		if v%16 != 0 {
			t.Fatalf("domain value %d not multiple of 16", v)
		}
	}
}

func TestIntervalMulSigns(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Interval
	}{
		{Interval{2, 3}, Interval{4, 5}, Interval{8, 15}},
		{Interval{-2, 3}, Interval{4, 5}, Interval{-10, 15}},
		{Interval{-2, -1}, Interval{-3, 4}, Interval{-8, 6}},
	}
	for _, c := range cases {
		got := c.a.Mul(c.b)
		if got != c.want {
			t.Errorf("%v * %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: every Solve result satisfies all constraints, and when Solve
// reports UNSAT, exhaustive enumeration agrees.
func TestSolveSoundAndComplete(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewProblem()
		nv := 2 + r.Intn(3)
		vars := make([]Var, nv)
		for i := range vars {
			step := int64(1 + r.Intn(4))
			hi := int64(4 + r.Intn(20))
			vars[i] = p.RangeVar("v", 1, hi, step)
		}
		nc := 1 + r.Intn(4)
		for i := 0; i < nc; i++ {
			a, b := vars[r.Intn(nv)], vars[r.Intn(nv)]
			var l Expr
			if r.Intn(2) == 0 {
				l = Mul(V(a), V(b))
			} else {
				l = Sum(V(a), Scale(int64(1+r.Intn(3)), V(b)))
			}
			ops := []Op{LE, LT, GE, GT, EQ, NE}
			p.Require(l, ops[r.Intn(len(ops))], C(int64(r.Intn(200))))
		}

		m, ok := NewSolver(p).Solve()
		// Check soundness: the returned model satisfies every constraint.
		if ok {
			for _, c := range p.cons {
				if !c.Holds(m) {
					return false
				}
			}
			return true
		}
		// Check completeness: enumeration must agree it's UNSAT.
		found := 0
		NewSolver(p).Enumerate(func(Model) bool { found++; return false })
		return found == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Maximize returns the same optimum as brute-force enumeration.
func TestMaximizeOptimal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() (*Problem, []Var, Expr) {
			rr := rand.New(rand.NewSource(seed))
			p := NewProblem()
			nv := 2 + rr.Intn(2)
			vars := make([]Var, nv)
			for i := range vars {
				vars[i] = p.RangeVar("v", 1, int64(8+rr.Intn(8)), int64(1+rr.Intn(3)))
			}
			p.RequireLE(Mul(V(vars[0]), V(vars[1])), C(int64(20+rr.Intn(100))))
			obj := Sum(Mul(V(vars[0]), V(vars[1])), Scale(3, V(vars[nv-1])))
			return p, vars, obj
		}
		_ = r
		p1, _, obj1 := mk()
		_, got, ok := NewSolver(p1).Maximize(obj1)
		if !ok {
			return true // vacuously fine; constraints always satisfiable here though
		}
		p2, _, obj2 := mk()
		best := int64(-1 << 62)
		NewSolver(p2).Enumerate(func(m Model) bool {
			if v := obj2.Eval(m); v > best {
				best = v
			}
			return true
		})
		return got == best
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProblemString(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("Ti", 16, 64, 16)
	p.RequireLE(Mul(V(x), C(2)), C(100))
	s := p.String()
	if s == "" {
		t.Fatal("empty problem dump")
	}
	for _, want := range []string{"Ti", "assert", "<="} {
		if !contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestMinimize(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 64, 8)
	y := p.RangeVar("y", 1, 64, 8)
	p.RequireGE(Sum(V(x), V(y)), C(40))
	m, val, ok := NewSolver(p).Minimize(Sum(V(x), V(y)))
	if !ok {
		t.Fatal("expected SAT")
	}
	if val != 40 {
		t.Fatalf("min = %d (x=%d y=%d), want 40", val, m.Value(x), m.Value(y))
	}
}

// Property: MaximizeBinary agrees with the paper's iterative Maximize.
func TestMaximizeBinaryMatchesIterative(t *testing.T) {
	prop := func(seed int64) bool {
		mk := func() (*Solver, Expr) {
			rr := rand.New(rand.NewSource(seed))
			p := NewProblem()
			a := p.RangeVar("a", 1, int64(8+rr.Intn(24)), int64(1+rr.Intn(4)))
			b := p.RangeVar("b", 1, int64(8+rr.Intn(24)), int64(1+rr.Intn(4)))
			p.RequireLE(Mul(V(a), V(b)), C(int64(30+rr.Intn(200))))
			obj := Sum(Mul(V(a), V(b)), Scale(int64(1+rr.Intn(8)), V(b)))
			return NewSolver(p), obj
		}
		s1, o1 := mk()
		_, v1, ok1 := s1.Maximize(o1)
		s2, o2 := mk()
		_, v2, ok2 := s2.MaximizeBinary(o2)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || v1 == v2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximizeBinaryFewerCallsOnWideRange(t *testing.T) {
	mk := func() (*Solver, Expr) {
		p := NewProblem()
		x := p.RangeVar("x", 1, 4096, 1)
		p.RequireLE(V(x), C(4000))
		return NewSolver(p), V(x)
	}
	s1, o1 := mk()
	s1.descend = false
	// Force the worst case for the iterative scheme: ascending value
	// order on the first call finds x=1, then improvements jump via
	// descending order, so it is already fast; the binary variant must
	// never be dramatically worse.
	_, v1, _ := s1.Maximize(o1)
	s2, o2 := mk()
	_, v2, _ := s2.MaximizeBinary(o2)
	if v1 != 4000 || v2 != 4000 {
		t.Fatalf("optima differ: %d vs %d", v1, v2)
	}
	if s2.Stats.SolverCalls > 20 {
		t.Fatalf("binary search used %d calls", s2.Stats.SolverCalls)
	}
}

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 10, 1)
	p.RequireGT(V(x), C(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := NewSolver(p).SolveCtx(ctx); ok {
		t.Fatal("pre-cancelled SolveCtx returned SAT")
	}
}

func TestSolveCtxInterruptsSearch(t *testing.T) {
	// A parity-trap UNSAT problem: every variable is even, so their sum
	// can never equal an odd target — but the target lies inside the
	// sum's interval bounds, so neither propagation nor interval
	// lookahead can refute it early. Proving UNSAT needs the search to
	// visit ~30^7 nodes, far more than fits in the cancellation
	// deadline; the search-loop poll must cut it short.
	p := NewProblem()
	vars := make([]Var, 8)
	var sum Expr = C(0)
	for i := range vars {
		vars[i] = p.RangeVar(fmt.Sprintf("v%d", i), 2, 60, 2)
		sum = Sum(sum, V(vars[i]))
	}
	p.RequireEQ(sum, C(101)) // even sum == odd target: UNSAT

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, ok := NewSolver(p).SolveCtx(ctx)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("UNSAT problem returned SAT")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled search ran %v, poll is not interrupting", elapsed)
	}
	if ctx.Err() == nil {
		t.Fatal("search finished before the deadline; the problem is too easy to exercise cancellation")
	}
}

func TestSolverReuseAfterCancelledCtx(t *testing.T) {
	// The context is an argument, not solver state: a solve with a
	// cancelled ctx must not poison a later solve on the same solver.
	p := NewProblem()
	x := p.RangeVar("x", 1, 10, 1)
	p.RequireGT(V(x), C(5))
	s := NewSolver(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := s.SolveCtx(ctx); ok {
		t.Fatal("cancelled solve returned SAT")
	}
	m, ok := s.SolveCtx(context.Background())
	if !ok || m.Value(x) <= 5 {
		t.Fatalf("solver reuse after cancelled ctx failed: ok=%t m=%v", ok, m)
	}
}
