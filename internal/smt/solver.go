package smt

import (
	"context"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Package-level telemetry instruments. Updates are batched per Solve
// call (never per search node) and cost nothing while obs is disabled.
var (
	mSolveCalls    = obs.NewCounter("smt.solve_calls")
	mNodes         = obs.NewCounter("smt.nodes")
	mPruneViolated = obs.NewCounter("smt.prune.violated")
	mPruneInterval = obs.NewCounter("smt.prune.interval")
	mTightenings   = obs.NewCounter("smt.propagation.tightenings")
	mRounds        = obs.NewCounter("smt.rounds")
	mUnsat         = obs.NewCounter("smt.unsat")
	// mIncumbent is the live incumbent objective of the most recent
	// Maximize round (the OBJ_{n+1} > OBJ_n climb, Sec. IV-L).
	mIncumbent = obs.NewGauge("smt.incumbent_objective")
	// mSearchDepth profiles where the search spends its nodes; samples
	// are batched per solve via ObserveN, never per node.
	mSearchDepth = obs.NewHistogram("smt.search_depth", 1, 2, 3, 4, 6, 8, 12)
	// mRoundSec distributes per-round solve latency (one Maximize
	// iteration), the companion to eatss.sweep.point_seconds on /metrics.
	mRoundSec = obs.NewHistogram("smt.round_seconds",
		1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1)
)

// Stats records solver effort, mirroring the measurements of Sec. V-G
// (solver calls per EATSS run, time per call).
type Stats struct {
	// SolverCalls counts complete satisfiability checks (one per
	// iteration of the Maximize loop).
	SolverCalls int
	// Nodes counts search-tree nodes across all calls.
	Nodes int64
	// PruneViolated counts nodes rejected because a fully-assigned
	// constraint did not hold.
	PruneViolated int64
	// PruneInterval counts nodes cut by interval-arithmetic lookahead on
	// constraints that were not yet fully assigned.
	PruneInterval int64
	// Tightenings counts domain values removed by the pre-search
	// node-consistency propagation pass.
	Tightenings int64
	// Rounds counts objective-improvement rounds across Maximize /
	// MaximizeBinary runs (the OBJ_{n+1} > OBJ_n iterations of IV-L).
	Rounds int
	// Elapsed is the total wall-clock time spent solving.
	Elapsed time.Duration
	// PruneByConstraint attributes pruned subtrees (violated + interval
	// cuts combined) to the labeled model constraint that rejected them,
	// across all calls. Constraints added without a label are pooled
	// under "unlabeled". It answers the Sec. V-G question "which part of
	// the formulation does the cutting".
	PruneByConstraint map[string]int64
	// DepthNodes counts visited search nodes by depth (index = depth,
	// the final index is complete assignments), across all calls — the
	// search-depth histogram.
	DepthNodes []int64
	// Incumbents is the objective timeline of the most recent Maximize /
	// MaximizeBinary run: one entry per satisfiable round, in
	// strictly-improving objective order.
	Incumbents []Incumbent
}

// Incumbent is one objective improvement within a Maximize run.
type Incumbent struct {
	// Round is the improvement round that found the model (0 = the
	// initial "any model" round).
	Round int
	// Objective is the incumbent objective value.
	Objective int64
	// Nodes is the cumulative search-node count when the incumbent was
	// found.
	Nodes int64
	// Elapsed is the time since the Maximize call began.
	Elapsed time.Duration
}

// Solver decides Problems and maximizes objectives over them.
//
// Cancellation: every solve entry point has a ...Ctx variant taking the
// caller's context as an argument. The context is deliberately NOT
// stored on the struct — a solver reused across calls would carry a
// stale (possibly long-cancelled) context, silently aborting later
// solves. The search loop polls ctx between batches of nodes, so a
// cancelled SelectTilesCtx interrupts even a deep search; an interrupted
// SolveCtx returns (nil, false), which callers must disambiguate from
// UNSAT by checking ctx.Err().
type Solver struct {
	p     *Problem
	Stats Stats
	// Name tags the solver's live telemetry (incumbent publications,
	// flight events) with what is being optimized — typically the kernel
	// name. Optional; empty names are published as-is.
	Name string
	// domains are the solver's propagated copies of the problem domains
	// (built lazily on the first Solve; nil entries alias the problem's).
	domains [][]int64
	// descend makes the search try larger values first. The first Solve
	// of a Maximize run uses the problem's natural ascending order (a
	// Z3-like "any model"), subsequent improvement calls descend, which
	// mimics Z3's rapid convergence under OBJ > best constraints.
	descend bool
	// extra holds objective-improvement constraints added by Maximize.
	extra []Constraint
}

// NewSolver returns a solver for p.
func NewSolver(p *Problem) *Solver { return &Solver{p: p} }

// cancelPollMask: the search polls ctx.Err() once every
// (cancelPollMask+1) visited nodes — frequent enough to interrupt within
// microseconds, rare enough to stay off the hot path's profile.
const cancelPollMask = 1023

// propagate builds the solver's working domains by enforcing node
// consistency against the base constraints: a value is dropped when
// fixing its variable to it (others at their domain extremes) makes some
// constraint interval-infeasible. Dropped values cannot appear in any
// model, so the search result is unchanged; the search just skips them.
// Runs to a fixpoint, since shrinking one domain's extremes can expose
// removals in another.
func (s *Solver) propagate() {
	n := s.p.NumVars()
	s.domains = make([][]int64, n)
	for v, d := range s.p.domains {
		s.domains[v] = d
	}
	lo := make([]int64, n)
	hi := make([]int64, n)
	refresh := func() bool {
		for v, d := range s.domains {
			if len(d) == 0 {
				return false
			}
			lo[v], hi[v] = d[0], d[len(d)-1]
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		if !refresh() {
			return
		}
		for v := 0; v < n; v++ {
			d := s.domains[v]
			kept := d[:0:0]
			saveLo, saveHi := lo[v], hi[v]
			for _, val := range d {
				lo[v], hi[v] = val, val
				ok := true
				for _, c := range s.p.cons {
					if !c.feasible(lo, hi) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, val)
				} else {
					s.Stats.Tightenings++
					changed = true
				}
			}
			lo[v], hi[v] = saveLo, saveHi
			s.domains[v] = kept
			if len(kept) == 0 {
				return
			}
		}
	}
}

// Solve searches for a model satisfying all constraints. ok is false when
// the problem is unsatisfiable.
func (s *Solver) Solve() (Model, bool) { return s.SolveCtx(context.Background()) }

// SolveCtx is Solve with the caller's context threaded through: the
// search polls ctx between node batches and aborts when it is cancelled.
// An aborted search returns (nil, false) exactly like UNSAT — callers
// that care must check ctx.Err() to tell the cases apart.
func (s *Solver) SolveCtx(ctx context.Context) (Model, bool) {
	if ctx.Done() != nil && ctx.Err() != nil {
		return nil, false
	}
	start := obs.Now()
	s.Stats.SolverCalls++
	mSolveCalls.Add(1)
	nodes0, viol0, intv0 := s.Stats.Nodes, s.Stats.PruneViolated, s.Stats.PruneInterval
	// Per-call attribution scratch, folded into Stats (and the batched
	// obs instruments) on the way out. pruneCounts is indexed like the
	// call's constraint slice; depthCounts by search depth.
	var (
		pruneCounts []int64
		pruneLabels []string
		depthCounts []int64
	)
	defer func() {
		s.Stats.Elapsed += obs.Now().Sub(start)
		mNodes.Add(s.Stats.Nodes - nodes0)
		mPruneViolated.Add(s.Stats.PruneViolated - viol0)
		mPruneInterval.Add(s.Stats.PruneInterval - intv0)
		for i, n := range pruneCounts {
			if n == 0 {
				continue
			}
			if s.Stats.PruneByConstraint == nil {
				s.Stats.PruneByConstraint = make(map[string]int64)
			}
			s.Stats.PruneByConstraint[pruneLabels[i]] += n
		}
		for d, n := range depthCounts {
			if n == 0 {
				continue
			}
			if len(s.Stats.DepthNodes) <= d {
				s.Stats.DepthNodes = append(s.Stats.DepthNodes, make([]int64, d+1-len(s.Stats.DepthNodes))...)
			}
			s.Stats.DepthNodes[d] += n
			mSearchDepth.ObserveN(float64(d), n)
		}
	}()

	n := s.p.NumVars()
	if s.domains == nil {
		t0 := s.Stats.Tightenings
		s.propagate()
		mTightenings.Add(s.Stats.Tightenings - t0)
	}
	for _, d := range s.domains {
		if len(d) == 0 {
			return nil, false
		}
	}

	// Static variable order: most-constrained (smallest declared domain)
	// first. Uses the declared domains, not the propagated ones, so the
	// visit order — and therefore tie-breaking among optimal models — is
	// independent of propagation.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(s.p.domains[order[a]]) < len(s.p.domains[order[b]])
	})

	// Group constraints (by index, so prunes can be attributed) by the
	// highest-ordered variable they mention, so each is checked exactly
	// when it becomes fully assigned.
	rank := make([]int, n)
	for pos, v := range order {
		rank[v] = pos
	}
	all := make([]Constraint, 0, len(s.p.cons)+len(s.extra))
	all = append(all, s.p.cons...)
	all = append(all, s.extra...)
	pruneCounts = make([]int64, len(all))
	pruneLabels = make([]string, len(all))
	for i, c := range all {
		if c.Label != "" {
			pruneLabels[i] = c.Label
		} else {
			pruneLabels[i] = "unlabeled"
		}
	}
	depthCounts = make([]int64, n+1)
	byLast := make([][]int, n)
	var constOnly []int
	for ci, c := range all {
		vars := make(map[Var]bool)
		c.L.CollectVars(vars)
		c.R.CollectVars(vars)
		last := -1
		for v := range vars {
			if rank[v] > last {
				last = rank[v]
			}
		}
		if last < 0 {
			constOnly = append(constOnly, ci)
			continue
		}
		byLast[last] = append(byLast[last], ci)
	}
	for _, ci := range constOnly {
		if !all[ci].Holds(nil) {
			return nil, false
		}
	}

	// Working bounds: assigned variables have lo==hi; unassigned use
	// domain extremes.
	lo := make([]int64, n)
	hi := make([]int64, n)
	for v, d := range s.domains {
		lo[v], hi[v] = d[0], d[len(d)-1]
	}
	model := make(Model, n)

	// Poll cancellation only for contexts that can be cancelled;
	// context.Background and friends have a nil Done channel.
	poll := ctx.Done() != nil
	aborted := false

	var dfs func(depth int) bool
	dfs = func(depth int) bool {
		s.Stats.Nodes++
		depthCounts[depth]++
		if poll && s.Stats.Nodes&cancelPollMask == 0 && ctx.Err() != nil {
			aborted = true
		}
		if aborted {
			return false
		}
		if depth == n {
			return true
		}
		v := Var(order[depth])
		dom := s.domains[v]
		for i := range dom {
			val := dom[i]
			if s.descend {
				val = dom[len(dom)-1-i]
			}
			model[v] = val
			saveLo, saveHi := lo[v], hi[v]
			lo[v], hi[v] = val, val

			ok := true
			// Check constraints fully assigned at this depth.
			for _, ci := range byLast[depth] {
				if !all[ci].Holds(model) {
					ok = false
					s.Stats.PruneViolated++
					pruneCounts[ci]++
					break
				}
			}
			// Interval-prune future constraints.
			if ok {
				for d := depth + 1; d < n && ok; d++ {
					for _, ci := range byLast[d] {
						if !all[ci].feasible(lo, hi) {
							ok = false
							s.Stats.PruneInterval++
							pruneCounts[ci]++
							break
						}
					}
				}
			}
			if ok && dfs(depth+1) {
				return true
			}
			lo[v], hi[v] = saveLo, saveHi
		}
		return false
	}

	if !dfs(0) {
		return nil, false
	}
	out := make(Model, n)
	copy(out, model)
	return out, true
}

// solveRound runs one Solve under an "smt.round" span carrying the round
// index and, when satisfiable, the achieved objective value — the
// per-round telemetry backing the Sec. V-G measurements.
//
// It polls ctx before doing anything: a cancellation that lands between
// Maximize rounds (outside the node loop's cancelPollMask cadence) must
// not dispatch — or account for — one more full solve.
func (s *Solver) solveRound(ctx context.Context, obj Expr, round int) (Model, int64, bool) {
	if ctx.Err() != nil {
		return nil, 0, false
	}
	_, sp := obs.Start(ctx, "smt.round")
	sp.SetInt("round", int64(round))
	roundStart := obs.Now()
	m, sat := s.SolveCtx(ctx)
	mRoundSec.Observe(obs.Now().Sub(roundStart).Seconds())
	sp.SetBool("sat", sat)
	var val int64
	if sat {
		val = obj.Eval(m)
		sp.SetInt("objective", val)
	} else {
		mUnsat.Add(1)
	}
	sp.End()
	s.Stats.Rounds++
	mRounds.Add(1)
	return m, val, sat
}

// noteIncumbent records one objective improvement in the solver stats
// and publishes it to the live telemetry surfaces: the incumbent gauge,
// the obs live-progress state, and the flight recorder.
func (s *Solver) noteIncumbent(round int, val int64, start time.Time) {
	s.Stats.Incumbents = append(s.Stats.Incumbents, Incumbent{
		Round:     round,
		Objective: val,
		Nodes:     s.Stats.Nodes,
		Elapsed:   obs.Now().Sub(start),
	})
	mIncumbent.Set(float64(val))
	obs.SetIncumbent(s.Name, int64(round), val)
	flight.Default.Incumbent(s.Name, int64(round), val)
}

// Maximize implements the paper's iterative optimization (Sec. IV-L): find
// a first model, then repeatedly add OBJ > best and re-solve until the
// problem becomes unsatisfiable. It returns the best model found and its
// objective value; ok is false when even the base problem is UNSAT.
func (s *Solver) Maximize(obj Expr) (best Model, bestVal int64, ok bool) {
	return s.MaximizeCtx(context.Background(), obj)
}

// MaximizeCtx is Maximize with the caller's context threaded through:
// round spans nest under the caller's span, and cancellation interrupts
// both the current search and the improvement loop. A run cancelled
// after at least one satisfiable round returns the best model found so
// far with ok=true; callers wanting strict interruption semantics check
// ctx.Err() afterwards.
func (s *Solver) MaximizeCtx(ctx context.Context, obj Expr) (best Model, bestVal int64, ok bool) {
	start := obs.Now()
	s.Stats.Incumbents = nil
	s.extra = nil
	s.descend = false
	round := 0
	m, val, sat := s.solveRound(ctx, obj, round)
	if !sat {
		return nil, 0, false
	}
	best, bestVal = m, val
	s.noteIncumbent(round, bestVal, start)
	// Subsequent improvement rounds descend through domains, which makes
	// each round jump near the remaining maximum — the small
	// solver-call counts of Sec. V-G come from this behaviour.
	s.descend = true
	for ctx.Err() == nil {
		round++
		s.extra = []Constraint{{L: obj, Op: GT, R: C(bestVal), Label: "objective"}}
		m, val, sat := s.solveRound(ctx, obj, round)
		if !sat {
			break
		}
		best, bestVal = m, val
		s.noteIncumbent(round, bestVal, start)
	}
	s.extra = nil
	return best, bestVal, true
}

// Enumerate calls fn for every model of the problem until fn returns false
// or the space is exhausted. It returns the number of models visited.
// Intended for tests and small exploration studies.
func (s *Solver) Enumerate(fn func(Model) bool) int {
	n := s.p.NumVars()
	for _, d := range s.p.domains {
		if len(d) == 0 {
			return 0
		}
	}
	model := make(Model, n)
	count := 0
	stopped := false
	var dfs func(v int)
	dfs = func(v int) {
		if stopped {
			return
		}
		if v == n {
			for _, c := range s.p.cons {
				if !c.Holds(model) {
					return
				}
			}
			count++
			cp := make(Model, n)
			copy(cp, model)
			if !fn(cp) {
				stopped = true
			}
			return
		}
		for _, val := range s.p.domains[v] {
			model[Var(v)] = val
			dfs(v + 1)
			if stopped {
				return
			}
		}
	}
	dfs(0)
	return count
}

// Minimize finds a model minimizing obj, via Maximize on its negation.
func (s *Solver) Minimize(obj Expr) (best Model, bestVal int64, ok bool) {
	return s.MinimizeCtx(context.Background(), obj)
}

// MinimizeCtx is Minimize with the caller's context threaded through
// (see MaximizeCtx for the cancellation semantics).
func (s *Solver) MinimizeCtx(ctx context.Context, obj Expr) (best Model, bestVal int64, ok bool) {
	m, negVal, ok := s.MaximizeCtx(ctx, Scale(-1, obj))
	if !ok {
		return nil, 0, false
	}
	return m, -negVal, true
}

// MaximizeBinary finds the objective maximum by binary search over the
// objective's interval bounds instead of the paper's linear
// OBJ_{n+1} > OBJ_n improvement loop. It visits O(log range) solver calls
// and returns the same optimum as Maximize (cross-checked in tests); use
// it when the objective range is wide and call count matters more than
// mirroring the paper's Sec. IV-L procedure.
func (s *Solver) MaximizeBinary(obj Expr) (best Model, bestVal int64, ok bool) {
	return s.MaximizeBinaryCtx(context.Background(), obj)
}

// MaximizeBinaryCtx is MaximizeBinary with the caller's context threaded
// through (see MaximizeCtx for the cancellation semantics).
func (s *Solver) MaximizeBinaryCtx(ctx context.Context, obj Expr) (best Model, bestVal int64, ok bool) {
	start := obs.Now()
	s.Stats.Incumbents = nil
	s.extra = nil
	s.descend = false
	round := 0
	m, val, sat := s.solveRound(ctx, obj, round)
	if !sat {
		return nil, 0, false
	}
	best, bestVal = m, val
	s.noteIncumbent(round, bestVal, start)

	// Upper bound from interval arithmetic over the variable domains.
	n := s.p.NumVars()
	lo := make([]int64, n)
	hi := make([]int64, n)
	for v, d := range s.p.domains {
		lo[v], hi[v] = d[0], d[len(d)-1]
	}
	upper := obj.Bounds(lo, hi).Hi

	s.descend = true
	loVal := bestVal
	for loVal < upper && ctx.Err() == nil {
		round++
		mid := loVal + (upper-loVal+1)/2
		s.extra = []Constraint{{L: obj, Op: GE, R: C(mid), Label: "objective"}}
		m, val, sat := s.solveRound(ctx, obj, round)
		if !sat {
			upper = mid - 1
			continue
		}
		best, bestVal = m, val
		loVal = bestVal
		s.noteIncumbent(round, bestVal, start)
	}
	s.extra = nil
	return best, bestVal, true
}
