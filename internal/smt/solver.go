package smt

import (
	"sort"
	"time"
)

// Stats records solver effort, mirroring the measurements of Sec. V-G
// (solver calls per EATSS run, time per call).
type Stats struct {
	// SolverCalls counts complete satisfiability checks (one per
	// iteration of the Maximize loop).
	SolverCalls int
	// Nodes counts search-tree nodes across all calls.
	Nodes int64
	// Elapsed is the total wall-clock time spent solving.
	Elapsed time.Duration
}

// Solver decides Problems and maximizes objectives over them.
type Solver struct {
	p     *Problem
	Stats Stats
	// descend makes the search try larger values first. The first Solve
	// of a Maximize run uses the problem's natural ascending order (a
	// Z3-like "any model"), subsequent improvement calls descend, which
	// mimics Z3's rapid convergence under OBJ > best constraints.
	descend bool
	// extra holds objective-improvement constraints added by Maximize.
	extra []Constraint
}

// NewSolver returns a solver for p.
func NewSolver(p *Problem) *Solver { return &Solver{p: p} }

// Solve searches for a model satisfying all constraints. ok is false when
// the problem is unsatisfiable.
func (s *Solver) Solve() (Model, bool) {
	start := time.Now()
	s.Stats.SolverCalls++
	defer func() { s.Stats.Elapsed += time.Since(start) }()

	n := s.p.NumVars()
	for _, d := range s.p.domains {
		if len(d) == 0 {
			return nil, false
		}
	}

	// Static variable order: most-constrained (smallest domain) first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(s.p.domains[order[a]]) < len(s.p.domains[order[b]])
	})

	// Group constraints by the highest-ordered variable they mention so
	// each is checked exactly when it becomes fully assigned.
	rank := make([]int, n)
	for pos, v := range order {
		rank[v] = pos
	}
	all := make([]Constraint, 0, len(s.p.cons)+len(s.extra))
	all = append(all, s.p.cons...)
	all = append(all, s.extra...)
	byLast := make([][]Constraint, n)
	var constOnly []Constraint
	for _, c := range all {
		vars := make(map[Var]bool)
		c.L.CollectVars(vars)
		c.R.CollectVars(vars)
		last := -1
		for v := range vars {
			if rank[v] > last {
				last = rank[v]
			}
		}
		if last < 0 {
			constOnly = append(constOnly, c)
			continue
		}
		byLast[last] = append(byLast[last], c)
	}
	for _, c := range constOnly {
		if !c.Holds(nil) {
			return nil, false
		}
	}

	// Working bounds: assigned variables have lo==hi; unassigned use
	// domain extremes.
	lo := make([]int64, n)
	hi := make([]int64, n)
	for v, d := range s.p.domains {
		lo[v], hi[v] = d[0], d[len(d)-1]
	}
	model := make(Model, n)

	var dfs func(depth int) bool
	dfs = func(depth int) bool {
		s.Stats.Nodes++
		if depth == n {
			return true
		}
		v := Var(order[depth])
		dom := s.p.domains[v]
		for i := range dom {
			val := dom[i]
			if s.descend {
				val = dom[len(dom)-1-i]
			}
			model[v] = val
			saveLo, saveHi := lo[v], hi[v]
			lo[v], hi[v] = val, val

			ok := true
			// Check constraints fully assigned at this depth.
			for _, c := range byLast[depth] {
				if !c.Holds(model) {
					ok = false
					break
				}
			}
			// Interval-prune future constraints.
			if ok {
				for d := depth + 1; d < n && ok; d++ {
					for _, c := range byLast[d] {
						if !c.feasible(lo, hi) {
							ok = false
							break
						}
					}
				}
			}
			if ok && dfs(depth+1) {
				return true
			}
			lo[v], hi[v] = saveLo, saveHi
		}
		return false
	}

	if !dfs(0) {
		return nil, false
	}
	out := make(Model, n)
	copy(out, model)
	return out, true
}

// Maximize implements the paper's iterative optimization (Sec. IV-L): find
// a first model, then repeatedly add OBJ > best and re-solve until the
// problem becomes unsatisfiable. It returns the best model found and its
// objective value; ok is false when even the base problem is UNSAT.
func (s *Solver) Maximize(obj Expr) (best Model, bestVal int64, ok bool) {
	s.extra = nil
	s.descend = false
	m, sat := s.Solve()
	if !sat {
		return nil, 0, false
	}
	best = m
	bestVal = obj.Eval(m)
	// Subsequent improvement rounds descend through domains, which makes
	// each round jump near the remaining maximum — the small
	// solver-call counts of Sec. V-G come from this behaviour.
	s.descend = true
	for {
		s.extra = []Constraint{{L: obj, Op: GT, R: C(bestVal)}}
		m, sat := s.Solve()
		if !sat {
			break
		}
		best = m
		bestVal = obj.Eval(m)
	}
	s.extra = nil
	return best, bestVal, true
}

// Enumerate calls fn for every model of the problem until fn returns false
// or the space is exhausted. It returns the number of models visited.
// Intended for tests and small exploration studies.
func (s *Solver) Enumerate(fn func(Model) bool) int {
	n := s.p.NumVars()
	for _, d := range s.p.domains {
		if len(d) == 0 {
			return 0
		}
	}
	model := make(Model, n)
	count := 0
	stopped := false
	var dfs func(v int)
	dfs = func(v int) {
		if stopped {
			return
		}
		if v == n {
			for _, c := range s.p.cons {
				if !c.Holds(model) {
					return
				}
			}
			count++
			cp := make(Model, n)
			copy(cp, model)
			if !fn(cp) {
				stopped = true
			}
			return
		}
		for _, val := range s.p.domains[v] {
			model[Var(v)] = val
			dfs(v + 1)
			if stopped {
				return
			}
		}
	}
	dfs(0)
	return count
}

// Minimize finds a model minimizing obj, via Maximize on its negation.
func (s *Solver) Minimize(obj Expr) (best Model, bestVal int64, ok bool) {
	m, negVal, ok := s.Maximize(Scale(-1, obj))
	if !ok {
		return nil, 0, false
	}
	return m, -negVal, true
}

// MaximizeBinary finds the objective maximum by binary search over the
// objective's interval bounds instead of the paper's linear
// OBJ_{n+1} > OBJ_n improvement loop. It visits O(log range) solver calls
// and returns the same optimum as Maximize (cross-checked in tests); use
// it when the objective range is wide and call count matters more than
// mirroring the paper's Sec. IV-L procedure.
func (s *Solver) MaximizeBinary(obj Expr) (best Model, bestVal int64, ok bool) {
	s.extra = nil
	s.descend = false
	m, sat := s.Solve()
	if !sat {
		return nil, 0, false
	}
	best = m
	bestVal = obj.Eval(m)

	// Upper bound from interval arithmetic over the variable domains.
	n := s.p.NumVars()
	lo := make([]int64, n)
	hi := make([]int64, n)
	for v, d := range s.p.domains {
		lo[v], hi[v] = d[0], d[len(d)-1]
	}
	upper := obj.Bounds(lo, hi).Hi

	s.descend = true
	loVal := bestVal
	for loVal < upper {
		mid := loVal + (upper-loVal+1)/2
		s.extra = []Constraint{{L: obj, Op: GE, R: C(mid)}}
		m, sat := s.Solve()
		if !sat {
			upper = mid - 1
			continue
		}
		best = m
		bestVal = obj.Eval(m)
		loVal = bestVal
	}
	s.extra = nil
	return best, bestVal, true
}
