package smt

// Witness packages a solved problem together with the model the solver
// returned and the name->variable index, so an independent checker
// (internal/verify) can re-decide every constraint against the model
// without re-running — or trusting — the search. The Problem inside a
// witness is the exact object the solver decided, including any
// constraints appended after the main solve (e.g. the objective-pinning
// equality of the shrink pass); the final model satisfies all of them.
type Witness struct {
	Problem *Problem
	Model   Model
	// Vars maps declared variable names (e.g. "T_i") to their indices.
	Vars map[string]Var
}

// Cons returns a copy of the problem's constraint list, for checkers
// that re-evaluate the conjunction term by term.
func (p *Problem) Cons() []Constraint {
	return append([]Constraint(nil), p.cons...)
}

// InDomain reports whether value v is in the declared candidate domain
// of the variable (binary search over the sorted domain).
func (p *Problem) InDomain(x Var, v int64) bool {
	d := p.domains[x]
	lo, hi := 0, len(d)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case d[mid] == v:
			return true
		case d[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}
