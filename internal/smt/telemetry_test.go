package smt

import (
	"context"
	"testing"
)

// hardProblem returns a problem with enough search work that telemetry
// counters are meaningfully exercised: maximize x*y*z under a capacity
// cap plus labeled resource-style constraints.
func hardProblem() (*Problem, Expr) {
	p := NewProblem()
	x := p.RangeVar("x", 1, 32, 1)
	y := p.RangeVar("y", 1, 32, 1)
	z := p.RangeVar("z", 1, 32, 1)
	obj := Mul(V(x), V(y), V(z))
	p.RequireLabeled("capacity", obj, LE, C(900))
	p.RequireLabeled("budget", Sum(V(x), V(y), V(z)), LE, C(48))
	p.Require(V(x), GE, V(y)) // unlabeled on purpose
	return p, obj
}

func TestMaximizeCancelledBeforeStartRunsNoRounds(t *testing.T) {
	p, obj := hardProblem()
	s := NewSolver(p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, ok := s.MaximizeCtx(ctx, obj); ok {
		t.Fatal("pre-cancelled Maximize reported ok")
	}
	// The between-rounds poll must keep a cancelled run from dispatching
	// (or accounting for) even one solve.
	if s.Stats.SolverCalls != 0 || s.Stats.Rounds != 0 {
		t.Fatalf("pre-cancelled Maximize ran: SolverCalls=%d Rounds=%d, want 0/0",
			s.Stats.SolverCalls, s.Stats.Rounds)
	}
}

func TestSolveRoundCancelledBetweenRounds(t *testing.T) {
	// Cancel from inside the objective evaluation of round 0: the context
	// is dead before any improvement round starts, so exactly one
	// solve/round must be accounted.
	p, obj := hardProblem()
	s := NewSolver(p)
	ctx, cancel := context.WithCancel(context.Background())
	best, bestVal, ok := func() (Model, int64, bool) {
		m, val, sat := s.solveRound(ctx, obj, 0)
		cancel()
		if !sat {
			return nil, 0, false
		}
		// Mirror MaximizeCtx's improvement loop shape.
		for ctx.Err() == nil {
			t.Fatal("loop entered after cancellation")
		}
		return m, val, true
	}()
	if !ok || best == nil || bestVal <= 0 {
		t.Fatalf("round 0 failed: ok=%v val=%d", ok, bestVal)
	}
	if s.Stats.SolverCalls != 1 || s.Stats.Rounds != 1 {
		t.Fatalf("SolverCalls=%d Rounds=%d, want 1/1", s.Stats.SolverCalls, s.Stats.Rounds)
	}
	// A further solveRound against the dead context must be free.
	if _, _, sat := s.solveRound(ctx, obj, 1); sat {
		t.Fatal("solveRound returned sat on a cancelled context")
	}
	if s.Stats.SolverCalls != 1 || s.Stats.Rounds != 1 {
		t.Fatalf("cancelled solveRound accounted work: SolverCalls=%d Rounds=%d, want 1/1",
			s.Stats.SolverCalls, s.Stats.Rounds)
	}
}

func TestPruneAttributionByLabel(t *testing.T) {
	p, obj := hardProblem()
	s := NewSolver(p)
	if _, _, ok := s.Maximize(obj); !ok {
		t.Fatal("expected SAT")
	}
	attr := s.Stats.PruneByConstraint
	if len(attr) == 0 {
		t.Fatal("no prune attribution recorded")
	}
	var total int64
	for _, n := range attr {
		total += n
	}
	if want := s.Stats.PruneViolated + s.Stats.PruneInterval; total != want {
		t.Fatalf("attributed prunes = %d, want PruneViolated+PruneInterval = %d", total, want)
	}
	// The objective-improvement constraints must show up under their own
	// label, and the labeled model constraints under theirs.
	if attr["objective"] == 0 {
		t.Fatalf("no prunes attributed to the objective climb: %v", attr)
	}
	if attr["capacity"]+attr["budget"]+attr["unlabeled"] == 0 {
		t.Fatalf("no prunes attributed to model constraints: %v", attr)
	}
}

func TestDepthNodesSumToNodes(t *testing.T) {
	p, obj := hardProblem()
	s := NewSolver(p)
	if _, _, ok := s.Maximize(obj); !ok {
		t.Fatal("expected SAT")
	}
	if len(s.Stats.DepthNodes) == 0 {
		t.Fatal("no depth histogram recorded")
	}
	var total int64
	for _, n := range s.Stats.DepthNodes {
		total += n
	}
	if total != s.Stats.Nodes {
		t.Fatalf("depth histogram sums to %d, want Nodes = %d", total, s.Stats.Nodes)
	}
	if len(s.Stats.DepthNodes) > p.NumVars()+1 {
		t.Fatalf("depth histogram has %d entries, max depth is %d", len(s.Stats.DepthNodes), p.NumVars())
	}
}

func TestIncumbentTimeline(t *testing.T) {
	p, obj := hardProblem()
	s := NewSolver(p)
	s.Name = "hard"
	_, bestVal, ok := s.Maximize(obj)
	if !ok {
		t.Fatal("expected SAT")
	}
	inc := s.Stats.Incumbents
	if len(inc) == 0 {
		t.Fatal("no incumbent timeline recorded")
	}
	for i := 1; i < len(inc); i++ {
		if inc[i].Objective <= inc[i-1].Objective {
			t.Fatalf("incumbent %d not improving: %+v", i, inc)
		}
		if inc[i].Round <= inc[i-1].Round {
			t.Fatalf("incumbent rounds not increasing: %+v", inc)
		}
		if inc[i].Nodes < inc[i-1].Nodes {
			t.Fatalf("incumbent node counts decreasing: %+v", inc)
		}
	}
	if got := inc[len(inc)-1].Objective; got != bestVal {
		t.Fatalf("last incumbent objective = %d, want best %d", got, bestVal)
	}
	if inc[0].Round != 0 {
		t.Fatalf("first incumbent round = %d, want 0 (the any-model round)", inc[0].Round)
	}

	// MaximizeBinary resets and rebuilds the timeline, converging on the
	// same optimum.
	s2 := NewSolver(p)
	_, binVal, ok := s2.MaximizeBinary(obj)
	if !ok || binVal != bestVal {
		t.Fatalf("binary optimum %d, want %d", binVal, bestVal)
	}
	bin := s2.Stats.Incumbents
	if len(bin) == 0 || bin[len(bin)-1].Objective != bestVal {
		t.Fatalf("binary incumbent timeline %+v does not end at %d", bin, bestVal)
	}
	for i := 1; i < len(bin); i++ {
		if bin[i].Objective <= bin[i-1].Objective {
			t.Fatalf("binary incumbent %d not improving: %+v", i, bin)
		}
	}
}
