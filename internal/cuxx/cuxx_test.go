package cuxx

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

func TestGemmGA100NearTable4(t *testing.T) {
	// Table IV: cuBLAS DGEMM on the GA100 reaches 18.3 TFLOP/s with
	// tensor cores. The model must land in that regime (15-20 TFLOP/s).
	r := Gemm(arch.GA100(), affine.FP64, 4000, 4000, 4000)
	if r.GFLOPS < 15000 || r.GFLOPS > 20000 {
		t.Fatalf("cuBLAS GA100 = %.0f GFLOP/s, want ~18300", r.GFLOPS)
	}
	if r.AvgPowerW <= 0 || r.AvgPowerW > arch.GA100().TDPWatts {
		t.Fatalf("power %.1f out of range", r.AvgPowerW)
	}
	// Energy for N=4000 should be single-digit joules (Table IV: 2.42 J).
	if r.EnergyJ < 0.5 || r.EnergyJ > 10 {
		t.Fatalf("energy = %.2f J, want a few J", r.EnergyJ)
	}
}

func TestGemmXavierNearPeak(t *testing.T) {
	// Table IV: 42.3 GFLOP/s on the Xavier (no tensor cores, ~44 peak).
	r := Gemm(arch.Xavier(), affine.FP64, 1024, 1024, 1024)
	if r.GFLOPS < 25 || r.GFLOPS > 50 {
		t.Fatalf("cuBLAS Xavier = %.1f GFLOP/s, want ~42", r.GFLOPS)
	}
}

func TestConv2DGA100(t *testing.T) {
	// Table IV: cuDNN FP64 conv-2d at ~1.4 TFLOP/s on the GA100.
	r := Conv2D(arch.GA100(), affine.FP64, 2048, 2048, 9)
	if r.GFLOPS < 1000 || r.GFLOPS > 8000 {
		t.Fatalf("cuDNN conv = %.0f GFLOP/s, want TFLOP/s-scale", r.GFLOPS)
	}
	if r.Kernel != "cudnn-conv2d" {
		t.Fatalf("kernel name %q", r.Kernel)
	}
}

func TestTensorCoreOnlyOnGA100(t *testing.T) {
	ga := Gemm(arch.GA100(), affine.FP64, 2048, 2048, 2048)
	xv := Gemm(arch.Xavier(), affine.FP64, 2048, 2048, 2048)
	gaPeak := arch.GA100().PeakFlops(arch.GA100().MaxClockMHz, 2)
	xvPeak := arch.Xavier().PeakFlops(arch.Xavier().MaxClockMHz, 2)
	// GA100 cuBLAS exceeds the non-tensor peak (tensor cores); Xavier
	// stays below its peak.
	if ga.GFLOPS*1e9 <= gaPeak {
		t.Error("GA100 cuBLAS should exceed the non-tensor FP64 peak")
	}
	if xv.GFLOPS*1e9 >= xvPeak {
		t.Error("Xavier cuBLAS cannot exceed the hardware peak")
	}
}

func TestScalesWithProblemSize(t *testing.T) {
	small := Gemm(arch.GA100(), affine.FP64, 1000, 1000, 1000)
	big := Gemm(arch.GA100(), affine.FP64, 4000, 4000, 4000)
	if big.TimeSec <= small.TimeSec {
		t.Fatal("bigger problem should take longer")
	}
	if big.EnergyJ <= small.EnergyJ {
		t.Fatal("bigger problem should use more energy")
	}
	// Steady-state model: power must not shrink with problem size.
	if small.AvgPowerW > big.AvgPowerW*1.01 {
		t.Fatal("power should not shrink with problem size")
	}
}

func TestPPWConsistency(t *testing.T) {
	r := Gemm(arch.GA100(), affine.FP64, 2000, 2000, 2000)
	want := r.GFLOPS / r.AvgPowerW
	if diff := r.PPW - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("PPW %.3f != GFLOPS/W %.3f", r.PPW, want)
	}
}
