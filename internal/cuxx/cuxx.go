// Package cuxx models the vendor libraries of Table IV — cuBLAS gemm and
// cuDNN conv-2d — as expert-tuned kernels. The paper compares EATSS+PPCG
// code against these closed-source libraries; since they cannot run here,
// each is represented by a calibrated roofline model: tensor-core peaks,
// vendor-level efficiency factors, register-blocked data movement, and the
// same power model the simulator uses. Calibration targets the absolute
// numbers of Table IV (e.g. 18.3 TFLOP/s and 2.42 J for cuBLAS DGEMM on
// the GA100).
package cuxx

import (
	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/gpusim"
	"repro/internal/power"
)

// tensorCoreFactor is the FP64 tensor-core speedup over the vanilla FP64
// pipe on architectures that have them (GA100: 19.5 vs 9.7 TFLOP/s).
const tensorCoreFactor = 2.0

// vendor efficiency factors (fraction of the relevant peak sustained).
const (
	gemmEffTensor = 0.94 // cuBLAS DGEMM with TF64 tensor cores
	gemmEffPlain  = 0.80 // cuBLAS DGEMM without tensor cores (Xavier)
	convEff       = 0.25 // cuDNN FP64 direct convolution (of plain peak)
)

// registerBlocking is the effective per-block reuse factor of vendor
// kernels (large register tiles), which divides the L2/DRAM traffic
// relative to a naive tiled kernel.
const registerBlocking = 128

// model builds a gpusim.Result for an expert kernel with the given flops,
// efficiency (fraction of plain peak after tensor factor), and compulsory
// data footprint.
func model(g *arch.GPU, name string, prec affine.Precision, flops int64, eff float64, tensor bool, footprintBytes int64) gpusim.Result {
	peak := g.PeakFlops(g.MaxClockMHz, prec.Factor())
	if tensor {
		peak *= tensorCoreFactor
	}
	timeSec := float64(flops) / (peak * eff)

	// Data movement: compulsory footprint plus register-blocked streaming
	// traffic (flops/registerBlocking elements re-fetched through L2).
	l2Bytes := footprintBytes + int64(float64(flops)/registerBlocking)*prec.Bytes()
	dramBytes := footprintBytes + l2Bytes/8

	act := power.Activity{
		ClockMHz:   g.MaxClockMHz,
		SMBusyFrac: eff,
		GridFrac:   1.0,
		L2GBps:     float64(l2Bytes) / timeSec / 1e9,
		DRAMGBps:   float64(dramBytes) / timeSec / 1e9,
		// Vendor kernels keep accumulators in registers and stream
		// operands through shared memory: low private liveness.
		LiveFrac:       0.25,
		SharedBusyFrac: 0.5,
	}
	bd := power.Estimate(g, act)
	watts := bd.Total()
	if watts > g.TDPWatts {
		watts = g.TDPWatts
	}
	// No measurement ramp here: vendor-library benchmarking loops run the
	// kernel back-to-back (the paper samples 100 repetitions), so
	// Table IV observes the steady-state power.

	res := gpusim.Result{
		Kernel:    name,
		GPU:       g.Name,
		TimeSec:   timeSec,
		Flops:     flops,
		GFLOPS:    float64(flops) / timeSec / 1e9,
		AvgPowerW: watts,
		EnergyJ:   watts * timeSec,
		L2Sectors: l2Bytes / g.SectorBytes,
		DRAMBytes: dramBytes,
	}
	res.PPW = power.PerfPerWatt(float64(res.Flops), res.TimeSec, res.AvgPowerW)
	return res
}

// Gemm models cuBLAS ?gemm for an MxNxK product.
func Gemm(g *arch.GPU, prec affine.Precision, m, n, k int64) gpusim.Result {
	flops := 2 * m * n * k
	foot := (m*k + k*n + 2*m*n) * prec.Bytes()
	eff := gemmEffPlain
	tensor := false
	if g.BypassL2ForShared { // GA100-class part: has FP64 tensor cores
		eff = gemmEffTensor
		tensor = true
	}
	return model(g, "cublas-gemm", prec, flops, eff, tensor, foot)
}

// Conv2D models cuDNN's 2-D convolution for an NIxNJ image with a KWxKW
// kernel window.
func Conv2D(g *arch.GPU, prec affine.Precision, ni, nj, kw int64) gpusim.Result {
	flops := 2 * ni * nj * kw * kw
	foot := ((ni+kw)*(nj+kw) + ni*nj + kw*kw) * prec.Bytes()
	return model(g, "cudnn-conv2d", prec, flops, convEff, false, foot)
}
