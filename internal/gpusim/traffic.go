package gpusim

import (
	"sort"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
)

// Traffic summarizes one launch's memory-system activity (bytes are per
// launch, across the whole grid).
type Traffic struct {
	// Flops is the floating-point work of one launch.
	Flops int64
	// L2ReadBytes is the read traffic arriving at L2 from the SMs
	// (L1 misses plus, on architectures without the bypass, shared-memory
	// staging loads). L2Sectors = L2ReadBytes / sector size: the paper's
	// Fig. 9 proxy for data liveness.
	L2ReadBytes int64
	// L2WriteBytes is store traffic through L2.
	L2WriteBytes int64
	// DRAMBytes is the traffic between L2 and device memory.
	DRAMBytes int64
	// SharedBytes is shared-memory bank traffic (reads + staging writes).
	SharedBytes int64
	// StagingBytes is the global->shared cooperative load volume.
	StagingBytes int64
	// L2Sectors is the sector count backing the Fig. 9 correlation.
	L2Sectors int64
	// LiveBytesPerThread measures thread-private data kept live across a
	// thread's serial iterations (the intra-thread liveness EATSS
	// constrains; feeds the power model's liveness term).
	LiveBytesPerThread int64
	// L1CapturedAll reports whether every cache-mapped array's per-step
	// tile fit in its L1 share (no thrashing).
	L1CapturedAll bool
	// L1Bytes is the volume moved through the SM-local L1/LSU pipe:
	// every cache-mapped access reads through it (hits included), and
	// uncoalesced warp accesses move a full sector per lane. The L1 and
	// shared-memory paths share this pipe on NVIDIA SMs, so staging
	// relieves it only by shortening each access's footprint.
	L1Bytes int64
	// SerialSteps is the number of staging steps per block.
	SerialSteps int64
	// Arrays attributes the launch's traffic to the individual arrays,
	// in sorted array-name order. The per-level sums match the totals
	// above (DRAM exactly; L1 up to per-array rounding) — this is the
	// breakdown internal/profile turns into per-array energy shares.
	Arrays []ArrayTraffic
}

// ArrayTraffic is one array's share of a launch's memory-system traffic
// (bytes per launch, across the whole grid), with the servicing class
// the mapping chose for it.
type ArrayTraffic struct {
	Array string
	// Class is how the array's references are serviced: "shared"
	// (cooperatively staged), "register" (register-resident
	// accumulator), "cached" (fits its L1 share), or "spilled"
	// (L1-overflowing, re-fetching from L2).
	Class string

	L2ReadBytes  int64
	L2WriteBytes int64
	DRAMBytes    int64
	SharedBytes  int64
	StagingBytes int64
	L1Bytes      int64
	// LiveBytesPerThread is the array's contribution to the nest's
	// thread-private liveness (the paper's energy lever).
	LiveBytesPerThread int64
}

// arrayGroup accumulates all references to one array while
// trafficInputs reduces a mapped nest to GroupTraffic summaries.
// Footprints are unions over the group's references, computed per
// subscript position, so stencil offsets do not multiply-count.
type arrayGroup struct {
	array string
	refs  []codegen.MappedRef

	shared     bool
	write      bool
	usesSerial bool
}

// UnionSpan is one subscript position of an array group's union
// footprint: the distinct iterators whose sizes the position sums over
// (sorted, for determinism) and the constant-offset spread
// (max − min constant across the group's references at that position).
type UnionSpan struct {
	Iters  []string
	Spread int64
}

// UnionSpans precomputes, per subscript position, the structure
// UnionElems evaluates: which iterators are involved and the
// constant-offset spread. It depends only on the references — not on
// tile sizes — so internal/symbolic derives it once per program and
// re-evaluates it per tile point.
func UnionSpans(refs []affine.Ref) []UnionSpan {
	type span struct {
		iters      map[string]bool
		minC, maxC int64
		set        bool
	}
	var spans []span
	for _, r := range refs {
		for p, s := range r.Subscripts {
			for len(spans) <= p {
				spans = append(spans, span{iters: make(map[string]bool)})
			}
			sp := &spans[p]
			for _, it := range s.IterNames() {
				sp.iters[it] = true
			}
			if !sp.set {
				sp.minC, sp.maxC, sp.set = s.Const, s.Const, true
			} else {
				if s.Const < sp.minC {
					sp.minC = s.Const
				}
				if s.Const > sp.maxC {
					sp.maxC = s.Const
				}
			}
		}
	}
	out := make([]UnionSpan, len(spans))
	for i, sp := range spans {
		us := UnionSpan{Spread: sp.maxC - sp.minC}
		for it := range sp.iters {
			us.Iters = append(us.Iters, it)
		}
		sort.Strings(us.Iters)
		out[i] = us
	}
	return out
}

// UnionElems evaluates the union footprint of an array group under a
// size assignment: per subscript position, the extent is the sum of the
// sizes of the involved iterators (minus overlaps) plus the
// constant-offset spread.
func UnionElems(spans []UnionSpan, size func(iter string) int64) int64 {
	elems := int64(1)
	for _, sp := range spans {
		ext := int64(1) + sp.Spread
		for _, it := range sp.Iters {
			ext += size(it) - 1
		}
		if ext < 1 {
			ext = 1
		}
		elems *= ext
	}
	return elems
}

// GroupTraffic is one array's reference-group summary — the per-array
// input TrafficModel consumes, with every tile-dependent quantity
// already evaluated to a number. ComputeTraffic builds it by walking a
// MappedNest; internal/symbolic builds it from a precomputed plan.
type GroupTraffic struct {
	Array string
	// Shared marks a group cooperatively staged through shared memory;
	// Write marks a written array; UsesSerial marks a group some
	// reference of which is indexed by a serial (non-grid-mapped) loop;
	// RegResident marks a written accumulator indexed only by mapped
	// loops (kept in registers).
	Shared, Write, UsesSerial, RegResident bool

	FpStepBytes int64 // per-serial-step tile footprint (union)
	DistBytes   int64 // distinct bytes touched per block per launch
	GlobalBytes int64 // distinct bytes touched by the whole launch
	SerialBytes int64 // per-thread private footprint along serial dims
	Accesses    int64 // dynamic accesses issued per block (all refs)
	// BankReadsPerBlock is the shared-memory bank-read volume issued per
	// block (meaningful only for Shared groups).
	BankReadsPerBlock int64
	// L1BytesPerIter is the group's contribution to the L1/LSU pipe per
	// innermost iteration: one element per coalesced (or broadcast)
	// access, a full sector per lane otherwise, amortized over register
	// micro-tiles; zero for register-resident groups, with staged
	// (shared) references excluded.
	L1BytesPerIter float64
}

// TrafficInputs summarizes one launch of a mapped nest for
// TrafficModel: the per-block iteration shape plus the per-array group
// summaries in sorted array-name order.
type TrafficInputs struct {
	ElemBytes           int64
	IterPerBlock        int64
	SerialSteps         int64
	Flops               int64
	TimeFuse            int64
	Blocks              int64
	SharedBytesPerBlock int64
	Groups              []GroupTraffic
}

// TrafficModel models the memory hierarchy for one launch given its
// numeric summary. It is a pure function of its inputs — the single
// source of truth shared by ComputeTraffic (per-point simulation) and
// the closed-form plans of internal/symbolic.
// maxStackGroups bounds the per-group transient buffers TrafficModel
// keeps on the stack; kernels with more arrays fall back to the heap.
const maxStackGroups = 16

func TrafficModel(in *TrafficInputs, g *arch.GPU, occ Occupancy) Traffic {
	tr := Traffic{Flops: in.Flops, SerialSteps: in.SerialSteps}
	elemB := in.ElemBytes
	blocks := in.Blocks

	// L1 capture: the L1 budget per block is what the combined L1+shared
	// pool leaves after the shared carveout, divided among resident
	// blocks. Arrays whose per-step tiles fit (greedy, smallest first)
	// hit in L1 and send only compulsory misses to L2.
	carveout := in.SharedBytesPerBlock * occ.BlocksPerSM
	l1PerSM := g.L1SharedBytes - carveout
	if l1PerSM < 0 {
		l1PerSM = 0
	}
	l1PerBlock := l1PerSM / occ.BlocksPerSM

	// Group counts are tiny (one per array), so the transient per-group
	// state lives in stack buffers and the L1 ordering is an insertion
	// sort: this function runs once per point per nest on the sweep hot
	// path, where sort.Slice's closure and three make()s dominate the
	// closed-form evaluator's cost.
	var l1IdxBuf [maxStackGroups]int
	l1Idx := l1IdxBuf[:0]
	if len(in.Groups) > maxStackGroups {
		l1Idx = make([]int, 0, len(in.Groups))
	}
	for i := range in.Groups {
		gr := &in.Groups[i]
		if !gr.Shared && !gr.RegResident {
			l1Idx = append(l1Idx, i)
		}
	}
	for a := 1; a < len(l1Idx); a++ {
		for b := a; b > 0; b-- {
			x, y := &in.Groups[l1Idx[b-1]], &in.Groups[l1Idx[b]]
			if x.FpStepBytes < y.FpStepBytes ||
				(x.FpStepBytes == y.FpStepBytes && x.Array <= y.Array) {
				break
			}
			l1Idx[b-1], l1Idx[b] = l1Idx[b], l1Idx[b-1]
		}
	}
	tr.L1CapturedAll = true
	budget := l1PerBlock
	var cachedBuf [maxStackGroups]bool
	cached := cachedBuf[:]
	if len(in.Groups) > maxStackGroups {
		cached = make([]bool, len(in.Groups))
	} else {
		cached = cached[:len(in.Groups)]
	}
	for _, i := range l1Idx {
		gr := &in.Groups[i]
		if gr.FpStepBytes <= budget {
			cached[i] = true
			budget -= gr.FpStepBytes
		} else {
			tr.L1CapturedAll = false
		}
	}

	l1BytesPerIter := float64(0)
	for i := range in.Groups {
		l1BytesPerIter += in.Groups[i].L1BytesPerIter
	}

	// Per-block traffic, attributed per array as it accrues.
	arrays := make([]ArrayTraffic, len(in.Groups))
	var l2ReadPerBlock, l2WritePerBlock, stagingPerBlock, sharedPerBlock int64
	for i := range in.Groups {
		gr := &in.Groups[i]
		at := &arrays[i]
		at.Array = gr.Array
		switch {
		case gr.Shared:
			at.Class = "shared"
		case gr.RegResident:
			at.Class = "register"
		case cached[i]:
			at.Class = "cached"
		default:
			at.Class = "spilled"
		}
		switch {
		case gr.Shared:
			// Cooperative staging: tile (+halo) per step, coalesced.
			// Bank reads amortize over register micro-tiles.
			staged := gr.FpStepBytes * tr.SerialSteps
			stagingPerBlock += staged
			sharedPerBlock += gr.BankReadsPerBlock + staged
			at.StagingBytes = staged * blocks
			at.SharedBytes = (gr.BankReadsPerBlock + staged) * blocks
		case gr.RegResident:
			l2ReadPerBlock += gr.DistBytes
			l2WritePerBlock += gr.DistBytes
			at.L2ReadBytes = gr.DistBytes * blocks
			at.L2WriteBytes = gr.DistBytes * blocks
		case cached[i]:
			l2ReadPerBlock += gr.DistBytes
			at.L2ReadBytes = gr.DistBytes * blocks
			if gr.Write {
				l2WritePerBlock += gr.DistBytes
				at.L2WriteBytes = gr.DistBytes * blocks
			}
			if gr.UsesSerial {
				tr.LiveBytesPerThread += gr.SerialBytes
				at.LiveBytesPerThread = gr.SerialBytes
			}
		default:
			// L1-spilled array. Re-fetches only happen when the array
			// is actually reused across serial steps (temporal reuse
			// whose distance overflowed the cache): streaming and
			// single-use data is fetched once per line regardless of
			// tile size. The refetch factor grows with how far the
			// per-step tile overshoots the L1 share, bounded by the
			// array's true reuse.
			refetch := 1.0
			if gr.UsesSerial && l1PerBlock > 0 {
				refetch = float64(gr.FpStepBytes) / float64(l1PerBlock)
				if reuse := float64(gr.Accesses*elemB) / float64(gr.DistBytes); refetch > reuse {
					refetch = reuse
				}
				if refetch < 1 {
					refetch = 1
				}
			}
			l2ReadPerBlock += int64(float64(gr.DistBytes) * refetch)
			at.L2ReadBytes = int64(float64(gr.DistBytes)*refetch) * blocks
			if gr.Write {
				l2WritePerBlock += gr.DistBytes
				at.L2WriteBytes = gr.DistBytes * blocks
			}
			if gr.UsesSerial {
				tr.LiveBytesPerThread += gr.SerialBytes
				at.LiveBytesPerThread = gr.SerialBytes
			}
		}
	}

	tr.StagingBytes = stagingPerBlock * blocks
	tr.SharedBytes = sharedPerBlock * blocks
	tr.L2ReadBytes = l2ReadPerBlock * blocks
	tr.L2WriteBytes = l2WritePerBlock * blocks

	// Staging loads transit L2 on architectures without the
	// global->shared bypass (Sec. IV-H); with the bypass they do not
	// occupy L2 sectors (and are invisible to the Fig. 9 counter) but
	// are still served by it on their way to DRAM.
	if !g.BypassL2ForShared {
		tr.L2ReadBytes += tr.StagingBytes
		for i := range arrays {
			arrays[i].L2ReadBytes += arrays[i].StagingBytes
		}
	}
	tr.L2Sectors = tr.L2ReadBytes / g.SectorBytes

	// L2 -> DRAM: compulsory traffic is each array's distinct touched
	// bytes; when the concurrent working set spills L2, a fraction of the
	// L2 request stream re-fetches from DRAM.
	var compulsory, wsPerBlock int64
	for i := range in.Groups {
		compulsory += in.Groups[i].GlobalBytes
		wsPerBlock += in.Groups[i].DistBytes
	}
	tr.L1Bytes = int64(l1BytesPerIter * float64(in.IterPerBlock*blocks*in.TimeFuse))

	ws := wsPerBlock * occ.ActiveBlocks
	inbound := tr.L2ReadBytes + tr.L2WriteBytes + tr.StagingBytes
	tr.DRAMBytes = compulsory
	spill := int64(0)
	if ws > g.L2Bytes && inbound > compulsory {
		missFrac := float64(ws-g.L2Bytes) / float64(ws)
		spill = int64(float64(inbound-compulsory) * missFrac)
		tr.DRAMBytes += spill
	}

	// Per-array DRAM attribution: each array's compulsory bytes, plus the
	// spill term distributed in proportion to how far the array's L2
	// request stream exceeds its compulsory footprint. The last excess
	// holder absorbs the integer-division remainder, so the per-array
	// values sum exactly to tr.DRAMBytes.
	var excessSum int64
	var excessBuf [maxStackGroups]int64
	excess := excessBuf[:]
	if len(in.Groups) > maxStackGroups {
		excess = make([]int64, len(in.Groups))
	} else {
		excess = excess[:len(in.Groups)]
	}
	for i := range in.Groups {
		gr := &in.Groups[i]
		at := &arrays[i]
		at.DRAMBytes = gr.GlobalBytes
		at.L1Bytes = int64(gr.L1BytesPerIter * float64(in.IterPerBlock*blocks*in.TimeFuse))
		if e := at.L2ReadBytes + at.L2WriteBytes + at.StagingBytes - gr.GlobalBytes; e > 0 {
			excess[i] = e
			excessSum += e
		}
	}
	if spill > 0 && excessSum > 0 {
		allocated := int64(0)
		last := -1
		for i := range excess {
			if excess[i] > 0 {
				last = i
			}
		}
		for i, e := range excess {
			if e == 0 {
				continue
			}
			share := int64(float64(spill) * float64(e) / float64(excessSum))
			if i == last {
				share = spill - allocated
			}
			arrays[i].DRAMBytes += share
			allocated += share
		}
	}
	tr.Arrays = arrays
	return tr
}

// ComputeTraffic models the memory hierarchy for one launch of m.
func ComputeTraffic(m *codegen.MappedNest, g *arch.GPU, occ Occupancy) Traffic {
	return TrafficModel(trafficInputs(m, g), g, occ)
}

// trafficInputs reduces a mapped nest to the numeric launch summary
// TrafficModel consumes.
func trafficInputs(m *codegen.MappedNest, g *arch.GPU) *TrafficInputs {
	elemB := m.Precision.Bytes()
	in := &TrafficInputs{
		ElemBytes:           elemB,
		SerialSteps:         1,
		TimeFuse:            1,
		Blocks:              m.TotalBlocks,
		SharedBytesPerBlock: m.SharedBytesPerBlock,
	}

	mapped := make(map[string]bool, len(m.MappedLoops))
	for _, n := range m.MappedLoops {
		mapped[n] = true
	}
	extent := func(name string) int64 {
		return m.Nest.Loops[m.Nest.LoopIndex(name)].Extent(m.Params)
	}

	// Iterations per block and serial staging steps.
	iterPerBlock := int64(1)
	for _, l := range m.Nest.Loops {
		ext := l.Extent(m.Params)
		if mapped[l.Name] {
			iterPerBlock *= m.Tiles[l.Name]
		} else {
			iterPerBlock *= ext
			t := m.Tiles[l.Name]
			in.SerialSteps *= (ext + t - 1) / t
		}
	}
	in.IterPerBlock = iterPerBlock
	perIterFlops := int64(0)
	for _, st := range m.Nest.Body {
		perIterFlops += st.FlopsPerIter
	}
	in.Flops = iterPerBlock * m.TotalBlocks * perIterFlops

	// Overlapped time tiling: one launch executes Fuse fused sweeps with
	// redundant halo compute, while the memory traffic (computed for a
	// single sweep, plus the enlarged halo) is paid once per launch
	// instead of once per step — the inter-step reuse PPCG lacks.
	if m.TimeTiling != nil {
		in.TimeFuse = m.TimeTiling.Fuse
		in.Flops = int64(float64(in.Flops*in.TimeFuse) * m.TimeTiling.OverlapFactor)
	}

	// Group references by array.
	groups := make(map[string]*arrayGroup)
	var order []string
	for _, mr := range m.Refs {
		gr, ok := groups[mr.Ref.Array]
		if !ok {
			gr = &arrayGroup{array: mr.Ref.Array}
			groups[mr.Ref.Array] = gr
			order = append(order, mr.Ref.Array)
		}
		gr.refs = append(gr.refs, mr)
		gr.shared = gr.shared || mr.Shared
		gr.write = gr.write || mr.Write
	}
	sort.Strings(order)

	tileSize := func(it string) int64 { return m.Tiles[it] }
	distSize := func(it string) int64 {
		if mapped[it] {
			return m.Tiles[it]
		}
		return extent(it)
	}
	serialSize := func(it string) int64 {
		if mapped[it] {
			return 1
		}
		return m.Tiles[it]
	}

	in.Groups = make([]GroupTraffic, 0, len(order))
	for _, name := range order {
		gr := groups[name]
		for _, mr := range gr.refs {
			for _, l := range m.Nest.Loops {
				if !mapped[l.Name] && mr.Ref.UsesIter(l.Name) {
					gr.usesSerial = true
				}
			}
		}
		refs := make([]affine.Ref, len(gr.refs))
		for i, mr := range gr.refs {
			refs[i] = mr.Ref
		}
		spans := UnionSpans(refs)
		gt := GroupTraffic{
			Array:       name,
			Shared:      gr.shared,
			Write:       gr.write,
			UsesSerial:  gr.usesSerial,
			RegResident: gr.write && !gr.usesSerial && !gr.shared,
			FpStepBytes: UnionElems(spans, tileSize) * elemB,
			DistBytes:   UnionElems(spans, distSize) * elemB,
			GlobalBytes: UnionElems(spans, extent) * elemB,
			SerialBytes: UnionElems(spans, serialSize) * elemB,
			Accesses:    iterPerBlock * int64(len(gr.refs)),
		}
		if gt.Shared {
			for _, mr := range gr.refs {
				gt.BankReadsPerBlock += iterPerBlock * elemB * in.TimeFuse / m.MicroReuse(mr)
			}
		}
		if !gt.RegResident {
			for _, mr := range gr.refs {
				amort := float64(m.MicroReuse(mr))
				switch {
				case mr.Shared:
					// staged access: accounted as shared-bank traffic
				case mr.Coalesced:
					gt.L1BytesPerIter += float64(elemB) / amort
				default:
					gt.L1BytesPerIter += float64(g.SectorBytes) / amort
				}
			}
		}
		in.Groups = append(in.Groups, gt)
	}
	return in
}
