package gpusim

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/codegen"
)

// Traffic summarizes one launch's memory-system activity (bytes are per
// launch, across the whole grid).
type Traffic struct {
	// Flops is the floating-point work of one launch.
	Flops int64
	// L2ReadBytes is the read traffic arriving at L2 from the SMs
	// (L1 misses plus, on architectures without the bypass, shared-memory
	// staging loads). L2Sectors = L2ReadBytes / sector size: the paper's
	// Fig. 9 proxy for data liveness.
	L2ReadBytes int64
	// L2WriteBytes is store traffic through L2.
	L2WriteBytes int64
	// DRAMBytes is the traffic between L2 and device memory.
	DRAMBytes int64
	// SharedBytes is shared-memory bank traffic (reads + staging writes).
	SharedBytes int64
	// StagingBytes is the global->shared cooperative load volume.
	StagingBytes int64
	// L2Sectors is the sector count backing the Fig. 9 correlation.
	L2Sectors int64
	// LiveBytesPerThread measures thread-private data kept live across a
	// thread's serial iterations (the intra-thread liveness EATSS
	// constrains; feeds the power model's liveness term).
	LiveBytesPerThread int64
	// L1CapturedAll reports whether every cache-mapped array's per-step
	// tile fit in its L1 share (no thrashing).
	L1CapturedAll bool
	// L1Bytes is the volume moved through the SM-local L1/LSU pipe:
	// every cache-mapped access reads through it (hits included), and
	// uncoalesced warp accesses move a full sector per lane. The L1 and
	// shared-memory paths share this pipe on NVIDIA SMs, so staging
	// relieves it only by shortening each access's footprint.
	L1Bytes int64
	// SerialSteps is the number of staging steps per block.
	SerialSteps int64
	// Arrays attributes the launch's traffic to the individual arrays,
	// in sorted array-name order. The per-level sums match the totals
	// above (DRAM exactly; L1 up to per-array rounding) — this is the
	// breakdown internal/profile turns into per-array energy shares.
	Arrays []ArrayTraffic
}

// ArrayTraffic is one array's share of a launch's memory-system traffic
// (bytes per launch, across the whole grid), with the servicing class
// the mapping chose for it.
type ArrayTraffic struct {
	Array string
	// Class is how the array's references are serviced: "shared"
	// (cooperatively staged), "register" (register-resident
	// accumulator), "cached" (fits its L1 share), or "spilled"
	// (L1-overflowing, re-fetching from L2).
	Class string

	L2ReadBytes  int64
	L2WriteBytes int64
	DRAMBytes    int64
	SharedBytes  int64
	StagingBytes int64
	L1Bytes      int64
	// LiveBytesPerThread is the array's contribution to the nest's
	// thread-private liveness (the paper's energy lever).
	LiveBytesPerThread int64
}

// arrayGroup aggregates all references to one array with their servicing
// plan. Footprints are unions over the group's references, computed per
// subscript position, so stencil offsets do not multiply-count.
type arrayGroup struct {
	array string
	refs  []codegen.MappedRef

	shared      bool
	write       bool
	usesSerial  bool
	regResident bool // written accumulator indexed only by mapped loops

	fpStepBytes int64 // per-serial-step tile footprint (union)
	distBytes   int64 // distinct bytes touched per block per launch
	globalBytes int64 // distinct bytes touched by the whole launch
	serialBytes int64 // per-thread private footprint along serial dims
	accesses    int64 // dynamic accesses issued per block (all refs)
}

// unionElems computes the union footprint of a set of references to the
// same array: per subscript position, the extent is the sum of the sizes of
// the involved iterators (minus overlaps) plus the constant-offset spread.
func unionElems(refs []codegen.MappedRef, size func(iter string) int64) int64 {
	type span struct {
		iters      map[string]bool
		minC, maxC int64
		set        bool
	}
	var spans []span
	for _, mr := range refs {
		for p, s := range mr.Ref.Subscripts {
			for len(spans) <= p {
				spans = append(spans, span{iters: make(map[string]bool)})
			}
			sp := &spans[p]
			for _, it := range s.IterNames() {
				sp.iters[it] = true
			}
			if !sp.set {
				sp.minC, sp.maxC, sp.set = s.Const, s.Const, true
			} else {
				if s.Const < sp.minC {
					sp.minC = s.Const
				}
				if s.Const > sp.maxC {
					sp.maxC = s.Const
				}
			}
		}
	}
	elems := int64(1)
	for _, sp := range spans {
		ext := int64(1) + (sp.maxC - sp.minC)
		for it := range sp.iters {
			ext += size(it) - 1
		}
		if ext < 1 {
			ext = 1
		}
		elems *= ext
	}
	return elems
}

// ComputeTraffic models the memory hierarchy for one launch of m.
func ComputeTraffic(m *codegen.MappedNest, g *arch.GPU, occ Occupancy) Traffic {
	var tr Traffic
	elemB := m.Precision.Bytes()

	mapped := make(map[string]bool, len(m.MappedLoops))
	for _, n := range m.MappedLoops {
		mapped[n] = true
	}
	extent := func(name string) int64 {
		return m.Nest.Loops[m.Nest.LoopIndex(name)].Extent(m.Params)
	}

	// Iterations per block and serial staging steps.
	iterPerBlock := int64(1)
	tr.SerialSteps = 1
	for _, l := range m.Nest.Loops {
		ext := l.Extent(m.Params)
		if mapped[l.Name] {
			iterPerBlock *= m.Tiles[l.Name]
		} else {
			iterPerBlock *= ext
			t := m.Tiles[l.Name]
			tr.SerialSteps *= (ext + t - 1) / t
		}
	}
	perIterFlops := int64(0)
	for _, st := range m.Nest.Body {
		perIterFlops += st.FlopsPerIter
	}
	tr.Flops = iterPerBlock * m.TotalBlocks * perIterFlops

	// Overlapped time tiling: one launch executes Fuse fused sweeps with
	// redundant halo compute, while the memory traffic below (computed
	// for a single sweep, plus the enlarged halo) is paid once per
	// launch instead of once per step — the inter-step reuse PPCG lacks.
	timeFuse := int64(1)
	if m.TimeTiling != nil {
		timeFuse = m.TimeTiling.Fuse
		tr.Flops = int64(float64(tr.Flops*timeFuse) * m.TimeTiling.OverlapFactor)
	}

	// Group references by array.
	groups := make(map[string]*arrayGroup)
	var order []string
	for _, mr := range m.Refs {
		gr, ok := groups[mr.Ref.Array]
		if !ok {
			gr = &arrayGroup{array: mr.Ref.Array}
			groups[mr.Ref.Array] = gr
			order = append(order, mr.Ref.Array)
		}
		gr.refs = append(gr.refs, mr)
		gr.shared = gr.shared || mr.Shared
		gr.write = gr.write || mr.Write
	}
	sort.Strings(order)

	tileSize := func(it string) int64 { return m.Tiles[it] }
	distSize := func(it string) int64 {
		if mapped[it] {
			return m.Tiles[it]
		}
		return extent(it)
	}
	serialSize := func(it string) int64 {
		if mapped[it] {
			return 1
		}
		return m.Tiles[it]
	}

	for _, name := range order {
		gr := groups[name]
		for _, mr := range gr.refs {
			for _, l := range m.Nest.Loops {
				if !mapped[l.Name] && mr.Ref.UsesIter(l.Name) {
					gr.usesSerial = true
				}
			}
		}
		gr.fpStepBytes = unionElems(gr.refs, tileSize) * elemB
		gr.distBytes = unionElems(gr.refs, distSize) * elemB
		gr.globalBytes = unionElems(gr.refs, extent) * elemB
		gr.serialBytes = unionElems(gr.refs, serialSize) * elemB
		gr.regResident = gr.write && !gr.usesSerial && !gr.shared
		gr.accesses = iterPerBlock * int64(len(gr.refs))
	}

	// L1 capture: the L1 budget per block is what the combined L1+shared
	// pool leaves after the shared carveout, divided among resident
	// blocks. Arrays whose per-step tiles fit (greedy, smallest first)
	// hit in L1 and send only compulsory misses to L2.
	carveout := m.SharedBytesPerBlock * occ.BlocksPerSM
	l1PerSM := g.L1SharedBytes - carveout
	if l1PerSM < 0 {
		l1PerSM = 0
	}
	l1PerBlock := l1PerSM / occ.BlocksPerSM

	var l1Names []string
	for _, name := range order {
		gr := groups[name]
		if !gr.shared && !gr.regResident {
			l1Names = append(l1Names, name)
		}
	}
	sort.Slice(l1Names, func(i, j int) bool {
		a, b := groups[l1Names[i]], groups[l1Names[j]]
		if a.fpStepBytes != b.fpStepBytes {
			return a.fpStepBytes < b.fpStepBytes
		}
		return l1Names[i] < l1Names[j]
	})
	tr.L1CapturedAll = true
	budget := l1PerBlock
	cached := make(map[string]bool, len(l1Names))
	for _, name := range l1Names {
		gr := groups[name]
		if gr.fpStepBytes <= budget {
			cached[name] = true
			budget -= gr.fpStepBytes
		} else {
			tr.L1CapturedAll = false
		}
	}

	// L1-pipe bytes per innermost iteration: cache-mapped accesses move
	// one element when coalesced (or broadcast), a full sector per lane
	// otherwise; register micro-tiles amortize a loaded operand over the
	// micro-tile's other axis. Register-resident accumulators and
	// shared-memory reads do not use the L1 path (shared traffic is
	// accounted separately).
	l1BytesPerIter := float64(0)
	l1PerIterByArray := make(map[string]float64, len(order))
	for _, name := range order {
		gr := groups[name]
		for _, mr := range gr.refs {
			amort := float64(m.MicroReuse(mr))
			switch {
			case gr.regResident, mr.Shared:
				// register accumulator or shared-memory access
			case mr.Coalesced:
				l1BytesPerIter += float64(elemB) / amort
				l1PerIterByArray[name] += float64(elemB) / amort
			default:
				l1BytesPerIter += float64(g.SectorBytes) / amort
				l1PerIterByArray[name] += float64(g.SectorBytes) / amort
			}
		}
	}

	// Per-block traffic, attributed per array as it accrues.
	blocks := m.TotalBlocks
	byArray := make(map[string]*ArrayTraffic, len(order))
	for _, name := range order {
		gr := groups[name]
		class := "cached"
		switch {
		case gr.shared:
			class = "shared"
		case gr.regResident:
			class = "register"
		case !cached[name]:
			class = "spilled"
		}
		byArray[name] = &ArrayTraffic{Array: name, Class: class}
	}
	var l2ReadPerBlock, l2WritePerBlock, stagingPerBlock, sharedPerBlock int64
	for _, name := range order {
		gr := groups[name]
		at := byArray[name]
		switch {
		case gr.shared:
			// Cooperative staging: tile (+halo) per step, coalesced.
			// Bank reads amortize over register micro-tiles.
			staged := gr.fpStepBytes * tr.SerialSteps
			stagingPerBlock += staged
			bankReads := int64(0)
			for _, mr := range gr.refs {
				bankReads += iterPerBlock * elemB * timeFuse / m.MicroReuse(mr)
			}
			sharedPerBlock += bankReads + staged
			at.StagingBytes = staged * blocks
			at.SharedBytes = (bankReads + staged) * blocks
		case gr.regResident:
			l2ReadPerBlock += gr.distBytes
			l2WritePerBlock += gr.distBytes
			at.L2ReadBytes = gr.distBytes * blocks
			at.L2WriteBytes = gr.distBytes * blocks
		case cached[name]:
			l2ReadPerBlock += gr.distBytes
			at.L2ReadBytes = gr.distBytes * blocks
			if gr.write {
				l2WritePerBlock += gr.distBytes
				at.L2WriteBytes = gr.distBytes * blocks
			}
			if gr.usesSerial {
				tr.LiveBytesPerThread += gr.serialBytes
				at.LiveBytesPerThread = gr.serialBytes
			}
		default:
			// L1-spilled array. Re-fetches only happen when the array
			// is actually reused across serial steps (temporal reuse
			// whose distance overflowed the cache): streaming and
			// single-use data is fetched once per line regardless of
			// tile size. The refetch factor grows with how far the
			// per-step tile overshoots the L1 share, bounded by the
			// array's true reuse.
			refetch := 1.0
			if gr.usesSerial && l1PerBlock > 0 {
				refetch = float64(gr.fpStepBytes) / float64(l1PerBlock)
				if reuse := float64(gr.accesses*elemB) / float64(gr.distBytes); refetch > reuse {
					refetch = reuse
				}
				if refetch < 1 {
					refetch = 1
				}
			}
			l2ReadPerBlock += int64(float64(gr.distBytes) * refetch)
			at.L2ReadBytes = int64(float64(gr.distBytes)*refetch) * blocks
			if gr.write {
				l2WritePerBlock += gr.distBytes
				at.L2WriteBytes = gr.distBytes * blocks
			}
			if gr.usesSerial {
				tr.LiveBytesPerThread += gr.serialBytes
				at.LiveBytesPerThread = gr.serialBytes
			}
		}
	}

	tr.StagingBytes = stagingPerBlock * blocks
	tr.SharedBytes = sharedPerBlock * blocks
	tr.L2ReadBytes = l2ReadPerBlock * blocks
	tr.L2WriteBytes = l2WritePerBlock * blocks

	// Staging loads transit L2 on architectures without the
	// global->shared bypass (Sec. IV-H); with the bypass they do not
	// occupy L2 sectors (and are invisible to the Fig. 9 counter) but
	// are still served by it on their way to DRAM.
	if !g.BypassL2ForShared {
		tr.L2ReadBytes += tr.StagingBytes
		for _, at := range byArray {
			at.L2ReadBytes += at.StagingBytes
		}
	}
	tr.L2Sectors = tr.L2ReadBytes / g.SectorBytes

	// L2 -> DRAM: compulsory traffic is each array's distinct touched
	// bytes; when the concurrent working set spills L2, a fraction of the
	// L2 request stream re-fetches from DRAM.
	var compulsory, wsPerBlock int64
	for _, name := range order {
		gr := groups[name]
		compulsory += gr.globalBytes
		wsPerBlock += gr.distBytes
	}
	tr.L1Bytes = int64(l1BytesPerIter * float64(iterPerBlock*blocks*timeFuse))

	ws := wsPerBlock * occ.ActiveBlocks
	inbound := tr.L2ReadBytes + tr.L2WriteBytes + tr.StagingBytes
	tr.DRAMBytes = compulsory
	spill := int64(0)
	if ws > g.L2Bytes && inbound > compulsory {
		missFrac := float64(ws-g.L2Bytes) / float64(ws)
		spill = int64(float64(inbound-compulsory) * missFrac)
		tr.DRAMBytes += spill
	}

	// Per-array DRAM attribution: each array's compulsory bytes, plus the
	// spill term distributed in proportion to how far the array's L2
	// request stream exceeds its compulsory footprint. The last excess
	// holder absorbs the integer-division remainder, so the per-array
	// values sum exactly to tr.DRAMBytes.
	var excessSum int64
	excess := make(map[string]int64, len(order))
	for _, name := range order {
		gr := groups[name]
		at := byArray[name]
		at.DRAMBytes = gr.globalBytes
		at.L1Bytes = int64(l1PerIterByArray[name] * float64(iterPerBlock*blocks*timeFuse))
		if e := at.L2ReadBytes + at.L2WriteBytes + at.StagingBytes - gr.globalBytes; e > 0 {
			excess[name] = e
			excessSum += e
		}
	}
	if spill > 0 && excessSum > 0 {
		allocated := int64(0)
		last := ""
		for _, name := range order {
			if excess[name] > 0 {
				last = name
			}
		}
		for _, name := range order {
			e := excess[name]
			if e == 0 {
				continue
			}
			share := int64(float64(spill) * float64(e) / float64(excessSum))
			if name == last {
				share = spill - allocated
			}
			byArray[name].DRAMBytes += share
			allocated += share
		}
	}
	tr.Arrays = make([]ArrayTraffic, 0, len(order))
	for _, name := range order {
		tr.Arrays = append(tr.Arrays, *byArray[name])
	}
	return tr
}
