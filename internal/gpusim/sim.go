package gpusim

import (
	"context"
	"math"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/obs"
	"repro/internal/power"
)

// Telemetry: simulated memory-system totals and occupancy shape. The
// L2-sector counter mirrors the Nsight counter the paper correlates with
// power (Fig. 9).
var (
	mSimulations   = obs.NewCounter("gpusim.simulations")
	mL2Sectors     = obs.NewCounter("gpusim.l2_sectors")
	mDRAMBytes     = obs.NewCounter("gpusim.dram_bytes")
	mOccupancyWarp = obs.NewHistogram("gpusim.active_warps_per_sm", 8, 16, 24, 32, 48, 64)
)

// NestResult is the simulated execution of one nest (all its launches).
type NestResult struct {
	Name    string
	Occ     Occupancy
	Traffic Traffic

	// ClockMHz is the converged DVFS operating point.
	ClockMHz float64
	// Per-launch time components (seconds).
	ComputeSec, DRAMSec, L2Sec, SharedSec, SyncSec float64
	// LaunchSec is one launch's duration; TimeSec covers all launches.
	LaunchSec, TimeSec float64
	// Power is the converged per-launch power breakdown.
	Power power.Breakdown
	// EnergyJ covers all launches.
	EnergyJ float64
	// Launches is the host-side repeat count.
	Launches int64
}

// Result is the simulated execution of a whole kernel.
type Result struct {
	Kernel string
	GPU    string

	TimeSec   float64
	Flops     int64
	GFLOPS    float64
	AvgPowerW float64
	EnergyJ   float64
	// PPW is performance-per-Watt in GFLOP/s per Watt (Sec. V-B).
	PPW float64

	L2Sectors int64
	DRAMBytes int64

	// Power is the time-weighted average breakdown across nests, with
	// the measurement ramp applied to the dynamic components (matching
	// AvgPowerW = Power.Total()).
	Power power.Breakdown

	// Ramp is the measurement-ramp factor applied to the dynamic power
	// components (1 when the device reaches steady state, <1 for short
	// executions). Recorded so post-hoc attribution (internal/profile)
	// can decompose each nest's observed EnergyJ without re-simulating:
	// nest energy = (Constant + Static + Dynamic()*Ramp) * TimeSec.
	Ramp float64

	Nests []NestResult
}

// liveHalfSatBytes is the per-thread private-data liveness at which the
// liveness power term reaches one half of its maximum.
const liveHalfSatBytes = 256.0

// syncOverheadSec is the pipeline-drain cost of one __syncthreads() round
// per wave of blocks.
const syncOverheadSec = 1e-7

// dvfsIterations bounds the DVFS fixpoint loop.
const dvfsIterations = 24

// dvfsFloorFrac is the lowest clock fraction the driver picks for purely
// memory-bound kernels.
const dvfsFloorFrac = 0.35

// NestInputs are the per-nest scalars NestModel needs beyond the
// occupancy and traffic summaries: identity, grid size, host-side
// repeat count, and arithmetic precision.
type NestInputs struct {
	Name        string
	TotalBlocks int64
	Launches    int64
	Precision   affine.Precision
}

// NestModel runs the roofline-with-DVFS timing and power fixpoint for
// one nest given its occupancy and traffic summaries. It is a pure
// function of its inputs — the single source of truth shared by
// SimulateNest and the closed-form plans of internal/symbolic.
func NestModel(in NestInputs, occ Occupancy, tr *Traffic, g *arch.GPU) NestResult {
	res := NestResult{
		Name:     in.Name,
		Occ:      occ,
		Traffic:  *tr,
		Launches: in.Launches,
	}

	fp := in.Precision.Factor()
	usedSMs := in.TotalBlocks
	if usedSMs > g.SMCount {
		usedSMs = g.SMCount
	}
	gridFrac := float64(usedSMs) / float64(g.SMCount)

	dramSec := float64(tr.DRAMBytes) / g.DRAMBandwidth
	l2Sec := float64(tr.L2ReadBytes+tr.L2WriteBytes) / g.L2Bandwidth
	syncSec := float64(tr.SerialSteps*occ.Waves) * syncOverheadSec

	liveFrac := float64(tr.LiveBytesPerThread) / (float64(tr.LiveBytesPerThread) + liveHalfSatBytes)

	// DVFS fixpoint: the driver boosts to the highest clock that (a) the
	// power budget allows and (b) the kernel's compute-boundness
	// justifies — memory-bound kernels run at reduced clocks (automatic
	// power scaling, which EATSS cooperates with).
	f := g.MaxClockMHz
	var launchSec, computeSec float64
	var bd power.Breakdown
	// Iteration-invariant factors, hoisted without reassociating any
	// arithmetic so the fixpoint stays bit-identical.
	eff := occ.GridEff * occ.IssueEff * occ.LaneEff * occ.BoundaryEff
	flopsF := float64(tr.Flops)
	l1BytesF, sharedBytesF := float64(tr.L1Bytes), float64(tr.SharedBytes)
	l2BytesF, dramBytesF := float64(tr.L2ReadBytes+tr.L2WriteBytes), float64(tr.DRAMBytes)
	smBwSMs := g.SharedBwPerSM * float64(usedSMs)
	for iter := 0; iter < dvfsIterations; iter++ {
		peak := g.PeakFlops(f, fp) * eff
		computeSec = flopsF / peak
		// The L1 and shared-memory data paths are the same physical
		// pipe on NVIDIA SMs; it clocks with the core.
		smPipeBw := smBwSMs * (f / g.BaseClockMHz) * occ.IssueEff
		l1Sec := l1BytesF / smPipeBw
		shSec := sharedBytesF / smPipeBw
		memSec := math.Max(math.Max(dramSec, l1Sec+shSec), l2Sec)
		// Compute/memory overlap is imperfect: the fraction of latency
		// the active warps cannot hide shows up as exposed time.
		exposed := (1 - occ.IssueEff) * math.Min(computeSec, memSec)
		launchSec = math.Max(computeSec, memSec) + exposed + syncSec

		busy := computeSec / launchSec
		act := power.Activity{
			ClockMHz:       f,
			SMBusyFrac:     busy,
			GridFrac:       gridFrac,
			L2GBps:         l2BytesF / launchSec / 1e9,
			DRAMGBps:       dramBytesF / launchSec / 1e9,
			SharedBusyFrac: shSec / launchSec,
			LiveFrac:       liveFrac,
		}
		bd = power.Estimate(g, act)

		target := g.MaxClockMHz * (dvfsFloorFrac + (1-dvfsFloorFrac)*busy)
		if p := bd.Total(); p > g.TDPWatts {
			// SM dynamic power scales ~f^3: pull the clock down toward
			// the budget.
			target = f * math.Cbrt(g.TDPWatts/p)
		}
		if target < g.MinClockMHz {
			target = g.MinClockMHz
		}
		if target > g.MaxClockMHz {
			target = g.MaxClockMHz
		}
		next := 0.5 * (f + target)
		if math.Abs(next-f) < 0.5 {
			f = next
			break
		}
		f = next
	}

	res.ClockMHz = f
	res.ComputeSec = computeSec
	res.DRAMSec = dramSec
	res.L2Sec = l2Sec
	res.SharedSec = (float64(tr.L1Bytes) + float64(tr.SharedBytes)) /
		(g.SharedBwPerSM * float64(usedSMs) * (f / g.BaseClockMHz) * occ.IssueEff)
	res.SyncSec = syncSec
	res.LaunchSec = launchSec + g.LaunchOverhead
	res.TimeSec = res.LaunchSec * float64(in.Launches)
	res.Power = bd
	res.EnergyJ = bd.Total() * res.TimeSec
	return res
}

// SimulateNest runs the analytic model for one mapped nest.
func SimulateNest(m *codegen.MappedNest, g *arch.GPU) NestResult {
	occ := ComputeOccupancy(m, g)
	tr := ComputeTraffic(m, g, occ)
	in := NestInputs{
		Name:        m.Nest.Name,
		TotalBlocks: m.TotalBlocks,
		Launches:    m.Launches,
		Precision:   m.Precision,
	}
	return NestModel(in, occ, &tr, g)
}

// Finalize aggregates per-nest results into the kernel-level totals and
// applies the measurement ramp to the dynamic power components.
// res.Nests must be populated (with their pre-ramp per-launch Power
// breakdowns); every other Result field is (re)computed from them in
// nest order. It is the single aggregation step shared by SimulateCtx
// and the closed-form plans of internal/symbolic, so both backends
// report identical kernel-level numbers for identical nest results.
func Finalize(res *Result, g *arch.GPU) {
	res.TimeSec, res.EnergyJ, res.GFLOPS, res.AvgPowerW = 0, 0, 0, 0
	res.Flops, res.L2Sectors, res.DRAMBytes = 0, 0, 0
	res.Power = power.Breakdown{}
	for i := range res.Nests {
		nr := &res.Nests[i]
		res.TimeSec += nr.TimeSec
		res.Flops += nr.Traffic.Flops * nr.Launches
		res.L2Sectors += nr.Traffic.L2Sectors * nr.Launches
		res.DRAMBytes += nr.Traffic.DRAMBytes * nr.Launches
	}
	ramp := 1.0
	if g.PowerRampTauSec > 0 {
		ramp = res.TimeSec / (res.TimeSec + g.PowerRampTauSec)
	}
	res.Ramp = ramp
	for i := range res.Nests {
		nr := &res.Nests[i]
		observed := nr.Power.Constant + nr.Power.Static + nr.Power.Dynamic()*ramp
		nr.EnergyJ = observed * nr.TimeSec
		res.EnergyJ += nr.EnergyJ
		if res.TimeSec > 0 {
			w := nr.TimeSec / res.TimeSec
			res.Power.Constant += nr.Power.Constant * w
			res.Power.Static += nr.Power.Static * w
			res.Power.DynSM += nr.Power.DynSM * ramp * w
			res.Power.DynL2 += nr.Power.DynL2 * ramp * w
			res.Power.DynDRAM += nr.Power.DynDRAM * ramp * w
			res.Power.DynShared += nr.Power.DynShared * ramp * w
			res.Power.DynLive += nr.Power.DynLive * ramp * w
		}
	}
	if res.TimeSec > 0 {
		res.GFLOPS = float64(res.Flops) / res.TimeSec / 1e9
		res.AvgPowerW = res.EnergyJ / res.TimeSec
	}
	res.PPW = power.PerfPerWatt(float64(res.Flops), res.TimeSec, res.AvgPowerW)
}

// Simulate runs every nest of a mapped kernel and aggregates.
//
// The reported average power applies the measurement ramp: the paper
// samples nvidia-smi / tegrastats at 10 ms intervals over repeated runs,
// so short executions are observed while the device is still ramping
// clocks/temperature and report less than the steady-state dynamic power
// (this is the static-dominated regime of Fig. 1).
func Simulate(mk *codegen.MappedKernel, g *arch.GPU) Result {
	return SimulateCtx(context.Background(), mk, g)
}

// SimulateCtx is Simulate with the caller's context threaded through:
// the whole simulation runs under a "gpusim.simulate" span with one
// "gpusim.nest" child per nest carrying occupancy, the converged DVFS
// clock, and the per-nest time/energy breakdown.
func SimulateCtx(ctx context.Context, mk *codegen.MappedKernel, g *arch.GPU) Result {
	ctx, sp := obs.Start(ctx, "gpusim.simulate")
	defer sp.End()
	sp.SetStr("kernel", mk.Kernel.Name)
	sp.SetStr("gpu", g.Name)
	mSimulations.Add(1)
	res := Result{Kernel: mk.Kernel.Name, GPU: g.Name}
	for _, mn := range mk.Nests {
		_, nsp := obs.Start(ctx, "gpusim.nest")
		nr := SimulateNest(mn, g)
		nsp.SetStr("nest", nr.Name)
		nsp.SetInt("active_warps_per_sm", nr.Occ.ActiveWarpsPerSM)
		nsp.SetStr("occ_limited_by", nr.Occ.LimitedBy)
		nsp.SetFloat("clock_mhz", nr.ClockMHz)
		nsp.SetFloat("time_sec", nr.TimeSec)
		nsp.SetFloat("energy_j", nr.EnergyJ)
		nsp.SetFloat("power_sm_w", nr.Power.DynSM)
		nsp.SetFloat("power_l2_w", nr.Power.DynL2)
		nsp.SetFloat("power_dram_w", nr.Power.DynDRAM)
		nsp.SetFloat("power_shared_w", nr.Power.DynShared)
		nsp.SetFloat("power_live_w", nr.Power.DynLive)
		nsp.SetInt("l2_sectors", nr.Traffic.L2Sectors*nr.Launches)
		nsp.SetInt("dram_bytes", nr.Traffic.DRAMBytes*nr.Launches)
		nsp.End()
		mOccupancyWarp.Observe(float64(nr.Occ.ActiveWarpsPerSM))
		res.Nests = append(res.Nests, nr)
	}
	Finalize(&res, g)
	mL2Sectors.Add(res.L2Sectors)
	mDRAMBytes.Add(res.DRAMBytes)
	sp.SetFloat("time_sec", res.TimeSec)
	sp.SetFloat("gflops", res.GFLOPS)
	sp.SetFloat("energy_j", res.EnergyJ)
	sp.SetFloat("ppw", res.PPW)
	return res
}
