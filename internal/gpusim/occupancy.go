// Package gpusim is the GPU execution simulator that stands in for the
// paper's GA100 and Xavier testbeds. It combines an occupancy model (this
// file), a memory-hierarchy traffic model (traffic.go), and a
// roofline-with-DVFS timing loop (sim.go) to produce, for each mapped
// kernel, the quantities the paper measures: execution time, GFLOP/s,
// L2 sectors read (the Nsight `lts__t_sectors..op_read` counter of
// Sec. V-C), average power, energy, and performance-per-Watt.
package gpusim

import (
	"repro/internal/arch"
	"repro/internal/codegen"
)

// Occupancy describes how a mapped nest occupies the GPU.
type Occupancy struct {
	// WarpsPerBlock is the warp count of one thread block.
	WarpsPerBlock int64
	// BlocksPerSM is how many blocks run concurrently on one SM.
	BlocksPerSM int64
	// ActiveWarpsPerSM = BlocksPerSM * WarpsPerBlock (capped).
	ActiveWarpsPerSM int64
	// ActiveBlocks is the total number of concurrently resident blocks.
	ActiveBlocks int64
	// Waves is how many full rounds of resident blocks the grid needs.
	Waves int64
	// GridEff is the average fraction of resident-block slots the grid
	// keeps busy (covers both small grids and ragged tail waves).
	GridEff float64
	// IssueEff is the instruction-issue efficiency from latency hiding:
	// more active warps hide more latency.
	IssueEff float64
	// LaneEff is the fraction of warp lanes doing useful work.
	LaneEff float64
	// BoundaryEff accounts for partial tiles at iteration-space edges.
	BoundaryEff float64
	// LimitedBy names the resource that bounds BlocksPerSM.
	LimitedBy string
}

// issueLatencyWarps controls how quickly issue efficiency approaches one
// as active warps grow (Little's-law style latency hiding): efficiency is
// aw / (aw + issueLatencyWarps).
const issueLatencyWarps = 16.0

// ComputeOccupancy derives the occupancy of a mapped nest on g.
func ComputeOccupancy(m *codegen.MappedNest, g *arch.GPU) Occupancy {
	var o Occupancy
	o.WarpsPerBlock = g.WarpsPerBlock(m.ThreadsPerBlock)

	// Resident blocks per SM, limited by four resources.
	o.BlocksPerSM, o.LimitedBy = g.MaxBlocksPerSM, "blocks"
	if byWarps := g.MaxWarpsPerSM / o.WarpsPerBlock; byWarps < o.BlocksPerSM {
		o.BlocksPerSM, o.LimitedBy = byWarps, "warps"
	}
	if regsPerBlock := m.RegsPerThread * m.ThreadsPerBlock; regsPerBlock > 0 {
		if byRegs := g.RegsPerSM / regsPerBlock; byRegs < o.BlocksPerSM {
			o.BlocksPerSM, o.LimitedBy = byRegs, "registers"
		}
	}
	if m.SharedBytesPerBlock > 0 {
		if byShared := g.SharedPerSM / m.SharedBytesPerBlock; byShared < o.BlocksPerSM {
			o.BlocksPerSM, o.LimitedBy = byShared, "shared"
		}
	}
	if o.BlocksPerSM < 1 {
		o.BlocksPerSM = 1
	}
	o.ActiveWarpsPerSM = o.BlocksPerSM * o.WarpsPerBlock
	if o.ActiveWarpsPerSM > g.MaxWarpsPerSM {
		o.ActiveWarpsPerSM = g.MaxWarpsPerSM
	}

	slots := o.BlocksPerSM * g.SMCount
	o.ActiveBlocks = m.TotalBlocks
	if o.ActiveBlocks > slots {
		o.ActiveBlocks = slots
	}
	o.Waves = (m.TotalBlocks + slots - 1) / slots
	if o.Waves < 1 {
		o.Waves = 1
	}
	o.GridEff = float64(m.TotalBlocks) / float64(o.Waves*slots)

	aw := float64(o.ActiveWarpsPerSM)
	o.IssueEff = aw / (aw + issueLatencyWarps)

	o.LaneEff = float64(m.ThreadsPerBlock) / float64(o.WarpsPerBlock*g.ThreadsPerWarp)

	// Partial boundary tiles: each mapped dimension wastes the fraction
	// of the last tile that falls outside the iteration space.
	o.BoundaryEff = 1.0
	for i, name := range m.MappedLoops {
		ext := m.Nest.Loops[m.Nest.LoopIndex(name)].Extent(m.Params)
		t := m.Tiles[name]
		covered := m.GridDims[i] * t
		if covered > 0 {
			o.BoundaryEff *= float64(ext) / float64(covered)
		}
	}
	return o
}
