// Package gpusim is the GPU execution simulator that stands in for the
// paper's GA100 and Xavier testbeds. It combines an occupancy model (this
// file), a memory-hierarchy traffic model (traffic.go), and a
// roofline-with-DVFS timing loop (sim.go) to produce, for each mapped
// kernel, the quantities the paper measures: execution time, GFLOP/s,
// L2 sectors read (the Nsight `lts__t_sectors..op_read` counter of
// Sec. V-C), average power, energy, and performance-per-Watt.
package gpusim

import (
	"repro/internal/arch"
	"repro/internal/codegen"
)

// Occupancy describes how a mapped nest occupies the GPU.
type Occupancy struct {
	// WarpsPerBlock is the warp count of one thread block.
	WarpsPerBlock int64
	// BlocksPerSM is how many blocks run concurrently on one SM.
	BlocksPerSM int64
	// ActiveWarpsPerSM = BlocksPerSM * WarpsPerBlock (capped).
	ActiveWarpsPerSM int64
	// ActiveBlocks is the total number of concurrently resident blocks.
	ActiveBlocks int64
	// Waves is how many full rounds of resident blocks the grid needs.
	Waves int64
	// GridEff is the average fraction of resident-block slots the grid
	// keeps busy (covers both small grids and ragged tail waves).
	GridEff float64
	// IssueEff is the instruction-issue efficiency from latency hiding:
	// more active warps hide more latency.
	IssueEff float64
	// LaneEff is the fraction of warp lanes doing useful work.
	LaneEff float64
	// BoundaryEff accounts for partial tiles at iteration-space edges.
	BoundaryEff float64
	// LimitedBy names the resource that bounds BlocksPerSM.
	LimitedBy string
}

// issueLatencyWarps controls how quickly issue efficiency approaches one
// as active warps grow (Little's-law style latency hiding): efficiency is
// aw / (aw + issueLatencyWarps).
const issueLatencyWarps = 16.0

// OccDim is one grid-mapped dimension's shape as OccupancyOf consumes
// it: the loop extent, the (clamped) tile size, and the block count
// along the dimension.
type OccDim struct {
	Ext, Tile, Grid int64
}

// OccInputs is a launch shape reduced to the plain integers the
// occupancy model reads, so both evaluation backends — the per-point
// simulator walking a MappedNest and the closed-form plans of
// internal/symbolic — feed the same function.
type OccInputs struct {
	ThreadsPerBlock     int64
	TotalBlocks         int64
	RegsPerThread       int64
	SharedBytesPerBlock int64
	// Dims are the grid-mapped dimensions in x, y, z order.
	Dims []OccDim
}

// OccupancyOf derives the occupancy of a launch shape on g. Pure
// function of its inputs.
func OccupancyOf(in OccInputs, g *arch.GPU) Occupancy {
	var o Occupancy
	o.WarpsPerBlock = g.WarpsPerBlock(in.ThreadsPerBlock)

	// Resident blocks per SM, limited by four resources.
	o.BlocksPerSM, o.LimitedBy = g.MaxBlocksPerSM, "blocks"
	if byWarps := g.MaxWarpsPerSM / o.WarpsPerBlock; byWarps < o.BlocksPerSM {
		o.BlocksPerSM, o.LimitedBy = byWarps, "warps"
	}
	if regsPerBlock := in.RegsPerThread * in.ThreadsPerBlock; regsPerBlock > 0 {
		if byRegs := g.RegsPerSM / regsPerBlock; byRegs < o.BlocksPerSM {
			o.BlocksPerSM, o.LimitedBy = byRegs, "registers"
		}
	}
	if in.SharedBytesPerBlock > 0 {
		if byShared := g.SharedPerSM / in.SharedBytesPerBlock; byShared < o.BlocksPerSM {
			o.BlocksPerSM, o.LimitedBy = byShared, "shared"
		}
	}
	if o.BlocksPerSM < 1 {
		o.BlocksPerSM = 1
	}
	o.ActiveWarpsPerSM = o.BlocksPerSM * o.WarpsPerBlock
	if o.ActiveWarpsPerSM > g.MaxWarpsPerSM {
		o.ActiveWarpsPerSM = g.MaxWarpsPerSM
	}

	slots := o.BlocksPerSM * g.SMCount
	o.ActiveBlocks = in.TotalBlocks
	if o.ActiveBlocks > slots {
		o.ActiveBlocks = slots
	}
	o.Waves = (in.TotalBlocks + slots - 1) / slots
	if o.Waves < 1 {
		o.Waves = 1
	}
	o.GridEff = float64(in.TotalBlocks) / float64(o.Waves*slots)

	aw := float64(o.ActiveWarpsPerSM)
	o.IssueEff = aw / (aw + issueLatencyWarps)

	o.LaneEff = float64(in.ThreadsPerBlock) / float64(o.WarpsPerBlock*g.ThreadsPerWarp)

	// Partial boundary tiles: each mapped dimension wastes the fraction
	// of the last tile that falls outside the iteration space.
	o.BoundaryEff = 1.0
	for _, d := range in.Dims {
		if covered := d.Grid * d.Tile; covered > 0 {
			o.BoundaryEff *= float64(d.Ext) / float64(covered)
		}
	}
	return o
}

// ComputeOccupancy derives the occupancy of a mapped nest on g.
func ComputeOccupancy(m *codegen.MappedNest, g *arch.GPU) Occupancy {
	in := OccInputs{
		ThreadsPerBlock:     m.ThreadsPerBlock,
		TotalBlocks:         m.TotalBlocks,
		RegsPerThread:       m.RegsPerThread,
		SharedBytesPerBlock: m.SharedBytesPerBlock,
	}
	for i, name := range m.MappedLoops {
		in.Dims = append(in.Dims, OccDim{
			Ext:  m.Nest.Loops[m.Nest.LoopIndex(name)].Extent(m.Params),
			Tile: m.Tiles[name],
			Grid: m.GridDims[i],
		})
	}
	return OccupancyOf(in, g)
}
