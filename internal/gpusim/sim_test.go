package gpusim

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
)

func compile(t *testing.T, kernel string, tiles map[string]int64, g *arch.GPU, params map[string]int64) *codegen.MappedKernel {
	t.Helper()
	k := affine.MustLookup(kernel)
	if params != nil {
		k = k.WithParams(params)
	}
	mk, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func TestSimulateGemmBasics(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil)
	r := Simulate(mk, g)

	if r.TimeSec <= 0 || r.EnergyJ <= 0 || r.AvgPowerW <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Flops must equal 2*N^3.
	want := int64(2) * 4000 * 4000 * 4000
	if r.Flops != want {
		t.Fatalf("flops = %d, want %d", r.Flops, want)
	}
	// Throughput must stay below the FP64 peak.
	if r.GFLOPS*1e9 >= g.PeakFlops(g.MaxClockMHz, 2) {
		t.Fatalf("GFLOPS %.1f exceeds peak", r.GFLOPS)
	}
	// Power within physical bounds.
	idle := g.ConstantWatts + g.StaticWatts
	if r.AvgPowerW < idle*0.9 || r.AvgPowerW > g.TDPWatts*1.01 {
		t.Fatalf("power %.1f outside [%.1f, %.1f]", r.AvgPowerW, idle, g.TDPWatts)
	}
	// Energy consistency.
	if diff := r.EnergyJ - r.AvgPowerW*r.TimeSec; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy %.3f != power*time %.3f", r.EnergyJ, r.AvgPowerW*r.TimeSec)
	}
}

func TestOccupancyLimits(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil)
	occ := ComputeOccupancy(mk.Nests[0], g)
	if occ.WarpsPerBlock != 32 {
		t.Fatalf("1024-thread block = %d warps, want 32", occ.WarpsPerBlock)
	}
	if occ.ActiveWarpsPerSM > g.MaxWarpsPerSM {
		t.Fatal("active warps exceed hardware limit")
	}
	if occ.BlocksPerSM*mk.Nests[0].RegsPerThread*mk.Nests[0].ThreadsPerBlock > g.RegsPerSM {
		t.Fatal("register budget exceeded")
	}
	if occ.GridEff <= 0 || occ.GridEff > 1 || occ.IssueEff <= 0 || occ.IssueEff > 1 {
		t.Fatalf("efficiency out of range: %+v", occ)
	}
}

func TestSmallGridUnderutilizes(t *testing.T) {
	g := arch.GA100()
	// 64x64 tiles on heat-3d N=200: few blocks, low grid efficiency.
	big := compile(t, "heat-3d", map[string]int64{"i": 64, "j": 64, "k": 64}, g, nil)
	small := compile(t, "heat-3d", map[string]int64{"i": 8, "j": 8, "k": 32}, g, nil)
	occBig := ComputeOccupancy(big.Nests[0], g)
	occSmall := ComputeOccupancy(small.Nests[0], g)
	if occBig.GridEff >= occSmall.GridEff {
		t.Fatalf("big tiles gridEff %.2f should be below small tiles %.2f",
			occBig.GridEff, occSmall.GridEff)
	}
}

func TestTrafficInvariants(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil)
	occ := ComputeOccupancy(mk.Nests[0], g)
	tr := ComputeTraffic(mk.Nests[0], g, occ)

	if tr.L2Sectors != tr.L2ReadBytes/g.SectorBytes {
		t.Fatal("sector arithmetic wrong")
	}
	// DRAM traffic cannot be below the compulsory footprint of the three
	// matrices (3 * N^2 * 8B).
	compulsory := int64(3) * 4000 * 4000 * 8
	if tr.DRAMBytes < compulsory {
		t.Fatalf("DRAM %d below compulsory %d", tr.DRAMBytes, compulsory)
	}
	// gemm stages A in shared memory.
	if tr.StagingBytes == 0 || tr.SharedBytes == 0 {
		t.Fatal("gemm should stage A in shared memory")
	}
	if tr.SerialSteps != 4000/32 {
		t.Fatalf("serial steps = %d, want 125", tr.SerialSteps)
	}
	// Liveness: B's per-thread serial chunk (Tk=32 doubles).
	if tr.LiveBytesPerThread != 32*8 {
		t.Fatalf("live bytes = %d, want 256", tr.LiveBytesPerThread)
	}
}

func TestBypassKeepsStagingOutOfL2Sectors(t *testing.T) {
	ga := arch.GA100() // has the global->shared L2 bypass
	xv := arch.Xavier()
	tiles := map[string]int64{"i": 16, "j": 32, "k": 16}
	mkGA := compile(t, "gemm", tiles, ga, nil)
	occGA := ComputeOccupancy(mkGA.Nests[0], ga)
	trGA := ComputeTraffic(mkGA.Nests[0], ga, occGA)

	mkXV := compile(t, "gemm", tiles, xv, nil)
	occXV := ComputeOccupancy(mkXV.Nests[0], xv)
	trXV := ComputeTraffic(mkXV.Nests[0], xv, occXV)

	if trGA.StagingBytes == 0 || trXV.StagingBytes == 0 {
		t.Fatal("both GPUs should stage")
	}
	// On Xavier the staging traffic is part of the L2 read stream.
	if trXV.L2ReadBytes <= trGA.L2ReadBytes-trGA.StagingBytes {
		t.Error("Xavier L2 reads should include staging traffic")
	}
}

func TestUncoalescedCostsTime(t *testing.T) {
	g := arch.GA100()
	k := affine.MustLookup("mvt")
	// mv1 reads A[i][j] with thread-x = i: stride-1 along the serial j,
	// so warp lanes touch different rows — uncoalesced, one LSU slot per
	// sector. mv2 reads the transposed A[j][i]: stride-1 along thread-x,
	// coalesced. Same data volume, so mv1 must burn more LSU slots and
	// more time per launch.
	mk, err := codegen.MapKernel(k, nil, map[string]int64{"i": 32, "j": 32}, g,
		codegen.Options{UseShared: false, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	occ0 := ComputeOccupancy(mk.Nests[0], g)
	tr0 := ComputeTraffic(mk.Nests[0], g, occ0) // mv1: uncoalesced A
	occ1 := ComputeOccupancy(mk.Nests[1], g)
	tr1 := ComputeTraffic(mk.Nests[1], g, occ1) // mv2: coalesced A
	if tr0.L1Bytes <= tr1.L1Bytes {
		t.Fatalf("uncoalesced L1-pipe bytes %d should exceed coalesced %d", tr0.L1Bytes, tr1.L1Bytes)
	}
	// Both nests are ultimately DRAM-bound (same compulsory traffic), so
	// the uncoalesced one may only be slower, never faster.
	r0 := SimulateNest(mk.Nests[0], g)
	r1 := SimulateNest(mk.Nests[1], g)
	if r0.TimeSec < r1.TimeSec {
		t.Fatalf("uncoalesced nest time %.5f should not beat coalesced %.5f", r0.TimeSec, r1.TimeSec)
	}
}

func TestFig1PowerSaturation(t *testing.T) {
	// Fig. 1: gemm power grows with problem size and saturates below TDP.
	g := arch.GA100()
	var prev float64
	for _, n := range []int64{1000, 2000, 3000, 4000, 5000, 6000} {
		mk := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g,
			map[string]int64{"NI": n, "NJ": n, "NK": n})
		r := Simulate(mk, g)
		if r.AvgPowerW < prev*0.98 {
			t.Fatalf("power not monotone-ish at N=%d: %.1f after %.1f", n, r.AvgPowerW, prev)
		}
		prev = r.AvgPowerW
		if r.AvgPowerW > g.TDPWatts {
			t.Fatalf("power %.1f exceeds TDP", r.AvgPowerW)
		}
	}
	// The small-size regime must be clearly below saturation.
	mkSmall := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g,
		map[string]int64{"NI": 1000, "NJ": 1000, "NK": 1000})
	small := Simulate(mkSmall, g)
	if small.AvgPowerW > 0.6*prev {
		t.Fatalf("N=1000 power %.1f not well below N=6000 power %.1f", small.AvgPowerW, prev)
	}
}

func TestDVFSWithinRange(t *testing.T) {
	for _, gname := range []string{"ga100", "xavier"} {
		g, _ := arch.ByName(gname)
		for _, kernel := range []string{"gemm", "mvt", "jacobi-2d"} {
			k := affine.MustLookup(kernel)
			tiles := map[string]int64{"i": 32, "j": 32, "k": 32}
			mk, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{UseShared: true, Precision: affine.FP64})
			if err != nil {
				t.Fatal(err)
			}
			for _, nr := range Simulate(mk, g).Nests {
				if nr.ClockMHz < g.MinClockMHz-1 || nr.ClockMHz > g.MaxClockMHz+1 {
					t.Errorf("%s/%s nest %s clock %.0f outside [%.0f, %.0f]",
						gname, kernel, nr.Name, nr.ClockMHz, g.MinClockMHz, g.MaxClockMHz)
				}
			}
		}
	}
}

func TestMemoryBoundKernelDownclocks(t *testing.T) {
	g := arch.GA100()
	// jacobi-2d is bandwidth-bound: DVFS should settle well below the
	// max clock (automatic power scaling).
	mk := compile(t, "jacobi-2d", map[string]int64{"i": 16, "j": 256}, g, nil)
	r := Simulate(mk, g)
	for _, nr := range r.Nests {
		if nr.ClockMHz > 0.85*g.MaxClockMHz {
			t.Fatalf("memory-bound nest %s at %.0f MHz, expected a lower DVFS point", nr.Name, nr.ClockMHz)
		}
	}
}

// TestEATSSConfigBeatsDefaultGemm is the headline calibration guard: the
// configuration EATSS selects for gemm on the GA100 (16, 384, 16) must
// deliver better performance-per-Watt than PPCG's default 32^3 (Fig. 7a).
func TestEATSSConfigBeatsDefaultGemm(t *testing.T) {
	g := arch.GA100()
	def := Simulate(compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil), g)
	eatss := Simulate(compile(t, "gemm", map[string]int64{"i": 16, "j": 384, "k": 16}, g, nil), g)
	if eatss.PPW <= def.PPW {
		t.Fatalf("EATSS PPW %.2f should beat default %.2f", eatss.PPW, def.PPW)
	}
	if eatss.GFLOPS <= def.GFLOPS {
		t.Fatalf("EATSS GFLOPS %.1f should beat default %.1f", eatss.GFLOPS, def.GFLOPS)
	}
}

// TestSmallTilesWinHeat3D mirrors Sec. V-D: on high-dimensional stencils
// the default 32^d tiling starves the grid, and warp-fraction tiles win
// by a large factor.
func TestSmallTilesWinHeat3D(t *testing.T) {
	g := arch.GA100()
	def := Simulate(compile(t, "heat-3d", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil), g)
	small := Simulate(compile(t, "heat-3d", map[string]int64{"i": 4, "j": 8, "k": 64}, g, nil), g)
	speedup := def.TimeSec / small.TimeSec
	if speedup < 1.4 {
		t.Fatalf("small-tile heat-3d speedup %.2f, want >= 1.4", speedup)
	}
	if small.EnergyJ >= def.EnergyJ {
		t.Fatalf("small-tile energy %.2f should beat default %.2f", small.EnergyJ, def.EnergyJ)
	}
}

func TestStencilLaunchesCounted(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "jacobi-2d", map[string]int64{"i": 32, "j": 32}, g,
		map[string]int64{"N": 1000, "T": 10})
	r := Simulate(mk, g)
	for _, nr := range r.Nests {
		if nr.Launches != 10 {
			t.Fatalf("nest %s launches = %d, want 10", nr.Name, nr.Launches)
		}
		if nr.TimeSec < 10*g.LaunchOverhead {
			t.Fatal("launch overhead not accounted")
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := arch.GA100()
	a := Simulate(compile(t, "2mm", map[string]int64{"i": 16, "j": 64, "k": 32}, g, nil), g)
	b := Simulate(compile(t, "2mm", map[string]int64{"i": 16, "j": 64, "k": 32}, g, nil), g)
	if a.TimeSec != b.TimeSec || a.EnergyJ != b.EnergyJ || a.L2Sectors != b.L2Sectors {
		t.Fatal("simulation is not deterministic")
	}
}

func TestUnionElemsHaloNotMultiplied(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "jacobi-2d", map[string]int64{"i": 32, "j": 32}, g, nil)
	occ := ComputeOccupancy(mk.Nests[0], g)
	tr := ComputeTraffic(mk.Nests[0], g, occ)
	// A's 5 offset references must union to one (Ti+2)x(Tj+2) tile, so
	// per-block distinct bytes stay near 2 tiles (A read + B write), far
	// below 6 tiles.
	perBlock := tr.DRAMBytes / mk.Nests[0].TotalBlocks
	if perBlock > 4*34*34*8 {
		t.Fatalf("per-block DRAM %d suggests stencil refs are multiply-counted", perBlock)
	}
}

// TestTimeTilingExtension: fusing stencil time steps (the inter-step reuse
// PPCG lacks) must cut DRAM traffic and total energy while keeping results
// physical.
func TestTimeTilingExtension(t *testing.T) {
	g := arch.GA100()
	k := affine.MustLookup("jacobi-2d")
	tiles := map[string]int64{"i": 32, "j": 64}

	base, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	fusedAny := false
	for _, mn := range fused.Nests {
		// The pure-copy nest has no halo and keeps per-step launches,
		// exactly like the library facade's best-effort behavior.
		if err := mn.ApplyTimeTiling(4); err == nil {
			fusedAny = true
		}
	}
	if !fusedAny {
		t.Fatal("no nest accepted time tiling")
	}

	rBase := Simulate(base, g)
	rFused := Simulate(fused, g)
	if rFused.DRAMBytes >= rBase.DRAMBytes {
		t.Fatalf("time tiling DRAM %d should be below baseline %d",
			rFused.DRAMBytes, rBase.DRAMBytes)
	}
	if rFused.EnergyJ >= rBase.EnergyJ {
		t.Fatalf("time tiling energy %.2f should beat baseline %.2f",
			rFused.EnergyJ, rBase.EnergyJ)
	}
	// Useful flops (excluding halo redundancy) are unchanged, so the
	// fused version must not report fewer flops than the baseline.
	if rFused.Flops < rBase.Flops {
		t.Fatal("fused flops below baseline (lost work)")
	}
}

// TestRegisterTilingExtension: micro-tiles must relieve the SM-local pipe
// (the PPCG bottleneck) and raise throughput at moderate r, then collapse
// at large r when register pressure cuts occupancy.
func TestRegisterTilingExtension(t *testing.T) {
	g := arch.GA100()
	k := affine.MustLookup("gemm")
	tiles := map[string]int64{"i": 64, "j": 64, "k": 16}
	run := func(r int64) Result {
		mk, err := codegen.MapKernel(k, nil, tiles, g,
			codegen.Options{UseShared: true, Precision: affine.FP64})
		if err != nil {
			t.Fatal(err)
		}
		if r > 1 {
			for _, mn := range mk.Nests {
				if err := mn.ApplyRegisterTiling(r, g.RegsPerThread); err != nil {
					t.Fatal(err)
				}
			}
		}
		return Simulate(mk, g)
	}
	base := run(1)
	r2 := run(2)
	r8 := run(8)
	if r2.GFLOPS <= base.GFLOPS*1.5 {
		t.Fatalf("r=2 micro-tile gives %.0f GF vs base %.0f: expected a large win",
			r2.GFLOPS, base.GFLOPS)
	}
	if r8.GFLOPS >= r2.GFLOPS {
		t.Fatalf("r=8 (%.0f GF) should collapse below r=2 (%.0f GF) from register pressure",
			r8.GFLOPS, r2.GFLOPS)
	}
}

func TestResultPowerBreakdownConsistent(t *testing.T) {
	g := arch.GA100()
	mk := compile(t, "gemm", map[string]int64{"i": 32, "j": 32, "k": 32}, g, nil)
	r := Simulate(mk, g)
	if diff := r.Power.Total() - r.AvgPowerW; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("breakdown total %.3f != avg power %.3f", r.Power.Total(), r.AvgPowerW)
	}
	// The liveness component must be present for gemm (thread-private
	// B-column chunks).
	if r.Power.DynLive <= 0 {
		t.Fatal("liveness power component missing")
	}
}
