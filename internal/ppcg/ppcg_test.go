package ppcg

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
)

func TestDefaultTiles(t *testing.T) {
	k := affine.MustLookup("gemm")
	tiles := DefaultTiles(k)
	if len(tiles) != 3 {
		t.Fatalf("gemm default tiles = %v", tiles)
	}
	for name, v := range tiles {
		if v != 32 {
			t.Errorf("tile %s = %d, want 32", name, v)
		}
	}
}

func TestSpaceSize(t *testing.T) {
	k := affine.MustLookup("2mm")
	space := Space(k, PaperSpaceSizes())
	// 2mm has 3 distinct loop names (i, j, k): 15^3 = 3,375 variants —
	// the exact space of the paper's Fig. 2.
	if len(space) != 3375 {
		t.Fatalf("2mm space = %d variants, want 3375", len(space))
	}
	seen := make(map[string]bool)
	for _, cfg := range space {
		key := ""
		for _, n := range LoopNames(k) {
			key += string(rune(cfg[n])) + "|"
		}
		if seen[key] {
			t.Fatal("duplicate configuration in space")
		}
		seen[key] = true
	}
}

func TestSpace2D(t *testing.T) {
	k := affine.MustLookup("mvt")
	space := Space(k, []int64{8, 16, 32})
	if len(space) != 9 {
		t.Fatalf("mvt 3-size space = %d, want 9", len(space))
	}
}

func TestGeometricSizes(t *testing.T) {
	got := GeometricSizes(4, 64)
	want := []int64{4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("GeometricSizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GeometricSizes = %v, want %v", got, want)
		}
	}
}

func TestCompileDefault(t *testing.T) {
	k := affine.MustLookup("gemm")
	mk, err := Compile(k, nil, nil, arch.GA100(),
		codegen.Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if len(mk.Nests) != 1 || mk.Nests[0].Tiles["i"] != 32 {
		t.Fatalf("default compile wrong: %+v", mk.Nests[0].Tiles)
	}
}

func TestLoopNamesSorted(t *testing.T) {
	k := affine.MustLookup("mttkrp")
	names := LoopNames(k)
	want := []string{"i", "j", "k", "l"}
	if len(names) != len(want) {
		t.Fatalf("LoopNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("LoopNames = %v, want %v", names, want)
		}
	}
}
