// Package ppcg plays the role of the Polyhedral Parallel Code Generator in
// the paper's pipeline: it supplies the default tile configuration
// (32^d, the baseline every experiment compares against), enumerates the
// exploratory tile spaces of Secs. II and V (hundreds to thousands of tiled
// variants per kernel), and compiles a tile configuration into mapped GPU
// kernels via the codegen package.
package ppcg

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/deps"
	"repro/internal/obs"
)

var (
	mCompiles        = obs.NewCounter("ppcg.compiles")
	mCompileFailures = obs.NewCounter("ppcg.compile_failures")
)

// DefaultTileSize is PPCG's out-of-the-box tile size per loop dimension.
const DefaultTileSize = 32

// DefaultTiles returns the paper's "Def PPCG" configuration: 32^d
// (d = maximal loop depth), one entry per distinct loop name.
func DefaultTiles(k *affine.Kernel) map[string]int64 {
	tiles := make(map[string]int64)
	for _, n := range k.Nests {
		for _, l := range n.Loops {
			tiles[l.Name] = DefaultTileSize
		}
	}
	return tiles
}

// Compile maps a kernel with the given tiles — the "pass tile sizes to
// PPCG to produce CUDA code" step of the paper. A nil tiles map compiles
// the default configuration. A nil params map uses the kernel defaults.
func Compile(k *affine.Kernel, params, tiles map[string]int64, g *arch.GPU, opts codegen.Options) (*codegen.MappedKernel, error) {
	return CompileCtx(context.Background(), k, params, tiles, g, opts)
}

// CompileCtx is Compile with the caller's context threaded through for
// observability: the compile span and per-nest mapping spans nest under
// the caller's span.
func CompileCtx(ctx context.Context, k *affine.Kernel, params, tiles map[string]int64, g *arch.GPU, opts codegen.Options) (*codegen.MappedKernel, error) {
	return compile(ctx, k, nil, params, tiles, g, opts)
}

// CompileAnalyzed compiles from a precomputed analysis.Program: the
// per-nest reuse analyses come from the artifact instead of per-compile
// re-derivation, which is what makes sweeping thousands of tile
// configurations cheap. A nil params map uses the Program's resolved
// params; a non-nil one overrides the problem sizes (the reuse analysis
// is parameter-independent, so any params are valid for one artifact).
func CompileAnalyzed(ctx context.Context, prog *analysis.Program, params, tiles map[string]int64, g *arch.GPU, opts codegen.Options) (*codegen.MappedKernel, error) {
	if params == nil {
		params = prog.Params
	}
	analysis.CountReuseHits(len(prog.Nests))
	return compile(ctx, prog.Kernel, prog.NestReuses(), params, tiles, g, opts)
}

func compile(ctx context.Context, k *affine.Kernel, reuses []*deps.NestReuse, params, tiles map[string]int64, g *arch.GPU, opts codegen.Options) (*codegen.MappedKernel, error) {
	ctx, sp := obs.Start(ctx, "ppcg.compile")
	defer sp.End()
	sp.SetStr("kernel", k.Name)
	sp.SetBool("use_shared", opts.UseShared)
	if tiles == nil {
		tiles = DefaultTiles(k)
	}
	mCompiles.Add(1)
	mk, err := codegen.MapKernelReuse(ctx, k, reuses, params, tiles, g, opts)
	if err != nil {
		mCompileFailures.Add(1)
		sp.SetStr("error", err.Error())
		return nil, fmt.Errorf("ppcg: %w", err)
	}
	return mk, nil
}

// LoopNames returns the distinct loop names of the kernel, sorted.
func LoopNames(k *affine.Kernel) []string {
	seen := make(map[string]bool)
	var names []string
	for _, n := range k.Nests {
		for _, l := range n.Loops {
			if !seen[l.Name] {
				seen[l.Name] = true
				names = append(names, l.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// GeometricSizes returns {lo, 2lo, 4lo, ...} up to hi inclusive — the
// candidate tile sizes used to build exploration spaces.
func GeometricSizes(lo, hi int64) []int64 {
	var out []int64
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Space enumerates the full cartesian tile space of a kernel over the
// candidate sizes: one configuration per combination of sizes across the
// kernel's distinct loop names. With 15 candidates and a 3-deep kernel
// this yields the paper's 3,375-variant space (Sec. II).
func Space(k *affine.Kernel, sizes []int64) []map[string]int64 {
	names := LoopNames(k)
	var out []map[string]int64
	cur := make(map[string]int64, len(names))
	var rec func(int)
	rec = func(i int) {
		if i == len(names) {
			cp := make(map[string]int64, len(cur))
			for k, v := range cur {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		for _, s := range sizes {
			cur[names[i]] = s
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// PaperSpaceSizes returns the 15 candidate tile sizes that reproduce the
// paper's 3,375-variant (15^3) 2mm space: multiples of 8 and powers of two
// between 4 and 512.
func PaperSpaceSizes() []int64 {
	return []int64{4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 512}
}
