package lint

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/feas"
)

// GPU-aware diagnostics: feasibility of the tile space on a concrete
// device. These live behind a separate entry point because they need an
// arch.GPU and a reuse analysis, which plain Lint deliberately does not.

// CodeInfeasibleRegion flags a kernel whose static feasible tile region
// (internal/feas) is empty on the target GPU.
const CodeInfeasibleRegion = "infeasible-region"

// Solver option grids the feasibility pass mirrors (the splits and
// warp fractions SelectBest explores).
var (
	gpuSplits    = []float64{0.0, 0.5, 0.67}
	gpuWarpFracs = []float64{0.5, 0.25, 0.125}
)

// LintGPU runs Lint and appends device-dependent feasibility
// diagnostics: an Error when the option-free sweep region (tile domains
// + register bound, any precision-prec model Options) is statically
// empty on g — no tile assignment can satisfy the Sec. IV model — and
// an Error when every solver configuration (shared splits × warp
// fractions) has an empty region, meaning SelectBest is guaranteed to
// find nothing. Both verdicts are sound: an empty region is a
// machine-checkable certificate (feas.PruneCert) that the constraint
// system is UNSAT, not a heuristic.
func LintGPU(k *affine.Kernel, params map[string]int64, g *arch.GPU, prec affine.Precision) []Diag {
	diags := Lint(k, params)
	if k == nil || g == nil {
		return diags
	}
	prog := analysis.Analyze(k, params)

	if cert := feas.Derive(prog, g, feas.SweepConfig(prec)).Empty; cert != nil {
		diags = append(diags, Diag{
			Code:     CodeInfeasibleRegion,
			Severity: Error,
			Msg: fmt.Sprintf("kernel %q has an empty feasible tile region on %s: %s",
				k.Name, g.Name, cert),
			Note: "no tile assignment satisfies the tile-domain and register constraints; no model configuration can be selected",
		})
		return diags
	}

	empty := 0
	var first *feas.PruneCert
	for _, split := range gpuSplits {
		for _, wf := range gpuWarpFracs {
			if cert := feas.Derive(prog, g, feas.ModelConfig(split, wf, prec)).Empty; cert != nil {
				empty++
				if first == nil {
					first = cert
				}
			}
		}
	}
	if empty == len(gpuSplits)*len(gpuWarpFracs) {
		diags = append(diags, Diag{
			Code:     CodeInfeasibleRegion,
			Severity: Error,
			Msg: fmt.Sprintf("kernel %q is statically infeasible on %s under every solver configuration (%d shared splits × %d warp fractions): %s",
				k.Name, g.Name, len(gpuSplits), len(gpuWarpFracs), first),
			Note: "SelectBest would fail on every sibling; relax the problem sizes or the precision",
		})
	} else if empty > 0 {
		diags = append(diags, Diag{
			Code:     CodeInfeasibleRegion,
			Severity: Warning,
			Msg: fmt.Sprintf("kernel %q is statically infeasible on %s under %d of %d solver configurations (first: %s)",
				k.Name, g.Name, empty, len(gpuSplits)*len(gpuWarpFracs), first),
			Note: "SelectBest skips these siblings without invoking the solver",
		})
	}
	return diags
}
