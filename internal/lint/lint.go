// Package lint is a static kernel linter over the affine IR. It diagnoses
// suspicious-but-valid kernels before they enter the pipeline — provably
// out-of-bounds subscripts, empty loop domains, column-major access
// patterns, spurious reductions — as well as outright malformed ones
// (undeclared iterators/arrays, duplicate loop names) that the Builder's
// Validate would reject, so the same diagnostics work on kernels
// assembled by hand from struct literals.
//
// Each finding is a structured Diag carrying a stable code, a severity,
// the source position (when the kernel was parsed from DSL text — see
// internal/parser), a message and an optional remediation note. The
// public surface is eatss.Lint and Program.Lint.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info marks observations that need no action.
	Info Severity = iota
	// Warning marks kernels that will run but probably not as intended
	// (dead arrays, uncoalescable access patterns, empty domains).
	Warning
	// Error marks kernels that are malformed or provably access memory
	// out of bounds; the pipeline's behaviour on them is undefined.
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic codes, stable across releases (tests and tools match on
// them; messages may be reworded freely).
const (
	CodeUndeclaredIterator = "undeclared-iterator"
	CodeUnusedIterator     = "unused-iterator"
	CodeDuplicateIterator  = "duplicate-iterator"
	CodeUndeclaredArray    = "undeclared-array"
	CodeUnusedArray        = "unused-array"
	CodeRankMismatch       = "rank-mismatch"
	CodeOutOfBounds        = "out-of-bounds"
	CodeEmptyDomain        = "empty-domain"
	CodeZeroCoefficient    = "zero-coefficient"
	CodeColumnMajor        = "column-major"
	CodeSpuriousReduction  = "spurious-reduction"
	CodeUndeclaredParam    = "undeclared-parameter"
)

// Diag is one linter finding.
type Diag struct {
	// Code is the stable diagnostic identifier (e.g. "out-of-bounds").
	Code string
	// Severity grades the finding.
	Severity Severity
	// Pos locates the finding in the DSL source; the zero Pos means the
	// kernel was built programmatically.
	Pos affine.Pos
	// Msg states the finding.
	Msg string
	// Note optionally suggests a remediation or adds context.
	Note string
}

// String renders "line:col: severity[code]: msg (note)".
func (d Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Msg)
	if d.Note != "" {
		fmt.Fprintf(&b, " (%s)", d.Note)
	}
	return b.String()
}

// HasErrors reports whether any diagnostic is Error-severity.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Render joins diagnostics one per line (the golden-test and CLI form).
func Render(diags []Diag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Lint diagnoses a kernel under the given problem sizes (nil params uses
// the kernel's defaults). It never mutates the kernel and accepts
// malformed kernels that Validate would reject — malformed constructs
// are reported as Error diagnostics instead. The returned order is
// deterministic: declaration/nest order, structural checks before
// value-dependent ones within each nest.
func Lint(k *affine.Kernel, params map[string]int64) []Diag {
	if k == nil {
		return nil
	}
	if params == nil {
		params = k.Params
	}
	var diags []Diag
	add := func(code string, sev Severity, pos affine.Pos, msg, note string) {
		diags = append(diags, Diag{Code: code, Severity: sev, Pos: pos, Msg: msg, Note: note})
	}

	// Declared arrays (duplicates are Validate's domain; the linter only
	// needs the first declaration for rank/bounds checks).
	arrays := make(map[string]affine.Array, len(k.Arrays))
	for _, a := range k.Arrays {
		if _, dup := arrays[a.Name]; !dup {
			arrays[a.Name] = a
		}
	}
	usedArrays := make(map[string]bool)

	for ni := range k.Nests {
		n := &k.Nests[ni]
		diags = append(diags, lintNest(k, n, arrays, usedArrays, params, add)...)
	}

	// Unused arrays, in declaration order.
	for _, a := range k.Arrays {
		if !usedArrays[a.Name] {
			add(CodeUnusedArray, Warning, a.Pos,
				fmt.Sprintf("array %q is declared but never referenced", a.Name),
				"drop the declaration or reference the array")
		}
	}

	// Undeclared parameters anywhere in the kernel (bounds, dims,
	// subscripts, repeat counts) evaluate as zero and silently collapse
	// domains and volumes.
	checkParams(k, add)
	return diags
}

func checkParams(k *affine.Kernel, add func(string, Severity, affine.Pos, string, string)) {
	report := func(e affine.Expr, pos affine.Pos, where string) {
		for _, p := range e.ParamNames() {
			if _, ok := k.Params[p]; !ok {
				add(CodeUndeclaredParam, Error, pos,
					fmt.Sprintf("%s references undeclared parameter %q", where, p),
					"undeclared parameters evaluate as zero")
			}
		}
	}
	for _, a := range k.Arrays {
		for _, d := range a.Dims {
			report(d, a.Pos, fmt.Sprintf("array %q dimension", a.Name))
		}
	}
	for ni := range k.Nests {
		n := &k.Nests[ni]
		report(n.Repeat, n.Pos, fmt.Sprintf("nest %q repeat count", n.Name))
		for _, l := range n.Loops {
			report(l.Lower, l.Pos, fmt.Sprintf("loop %q lower bound", l.Name))
			report(l.Upper, l.Pos, fmt.Sprintf("loop %q upper bound", l.Name))
		}
		for _, st := range n.Body {
			for _, r := range st.Refs {
				for _, s := range r.Subscripts {
					report(s, r.Pos, fmt.Sprintf("reference %s subscript", r))
				}
			}
		}
	}
}

func lintNest(k *affine.Kernel, n *affine.Nest, arrays map[string]affine.Array,
	usedArrays map[string]bool, params map[string]int64,
	add func(string, Severity, affine.Pos, string, string)) []Diag {

	var diags []Diag
	local := func(code string, sev Severity, pos affine.Pos, msg, note string) {
		diags = append(diags, Diag{Code: code, Severity: sev, Pos: pos, Msg: msg, Note: note})
	}

	// Duplicate iterator names across the nest.
	bound := make(map[string]bool, len(n.Loops))
	for _, l := range n.Loops {
		if bound[l.Name] {
			local(CodeDuplicateIterator, Error, l.Pos,
				fmt.Sprintf("nest %q binds iterator %q twice", n.Name, l.Name),
				"inner loops shadow outer ones; rename the iterator")
			continue
		}
		bound[l.Name] = true
	}

	// Empty or degenerate loop domains under the bound problem sizes.
	degenerate := false
	for _, l := range n.Loops {
		ext := l.Extent(params)
		switch {
		case ext <= 0:
			degenerate = true
			local(CodeEmptyDomain, Warning, l.Pos,
				fmt.Sprintf("loop %q has an empty domain (%s..%s = %d iterations)",
					l.Name, l.Lower, l.Upper, ext),
				"the nest executes zero iterations under the current problem sizes")
		case ext == 1:
			local(CodeEmptyDomain, Info, l.Pos,
				fmt.Sprintf("loop %q is degenerate (a single iteration)", l.Name),
				"consider removing the loop dimension")
		}
	}

	// Per-reference structural checks, and iterator/array usage.
	usedIters := make(map[string]bool)
	stride1Anywhere := false
	for si := range n.Body {
		st := &n.Body[si]
		for _, r := range st.Refs {
			usedArrays[r.Array] = true
			for _, s := range r.Subscripts {
				for _, it := range s.IterNames() {
					usedIters[it] = true
					if !bound[it] {
						local(CodeUndeclaredIterator, Error, r.Pos,
							fmt.Sprintf("reference %s uses iterator %q not bound by nest %q", r, it, n.Name),
							"")
					}
				}
				// Zero-coefficient anomalies: an iterator recorded with
				// coefficient 0 contributes nothing but suggests a
				// mis-built expression.
				for it, c := range s.Iters {
					if c == 0 {
						local(CodeZeroCoefficient, Warning, r.Pos,
							fmt.Sprintf("reference %s subscript carries iterator %q with coefficient 0", r, it),
							"the term has no effect; drop it or fix the coefficient")
					}
				}
			}
			if len(r.Stride1Iters()) > 0 {
				stride1Anywhere = true
			}

			a, declared := arrays[r.Array]
			if !declared {
				local(CodeUndeclaredArray, Error, r.Pos,
					fmt.Sprintf("reference %s targets undeclared array %q", r, r.Array),
					"declare the array with its dimensions")
				continue
			}
			if len(r.Subscripts) != len(a.Dims) {
				local(CodeRankMismatch, Error, r.Pos,
					fmt.Sprintf("reference %s has %d subscripts; array %q has rank %d",
						r, len(r.Subscripts), a.Name, len(a.Dims)),
					"")
				continue
			}
			// Provably out-of-bounds subscripts by interval evaluation
			// over the loop domains. Skipped for nests with empty
			// domains (no instance executes) and for subscripts using
			// unbound iterators (already an error above).
			if !degenerate {
				diags = append(diags, lintBounds(n, r, a, params, bound)...)
			}
		}

		// Reductions whose write target varies with every loop carry no
		// reduction at all: X[i][j] += ... inside an i,j nest updates a
		// fresh location each iteration.
		if st.Reduction {
			for _, w := range st.WriteRefs() {
				invariant := false
				for _, l := range n.Loops {
					if !w.UsesIter(l.Name) {
						invariant = true
						break
					}
				}
				if !invariant && len(n.Loops) > 0 {
					local(CodeSpuriousReduction, Warning, st.Pos,
						fmt.Sprintf("reduction statement %q writes %s, which varies with every loop of nest %q",
							st.Name, w, n.Name),
						"a reduction target should be invariant along at least one loop; use '=' if no accumulation is intended")
				}
			}
		}
	}

	// Unused iterators: bound by a loop but indexing nothing.
	for _, l := range n.Loops {
		if !usedIters[l.Name] {
			local(CodeUnusedIterator, Warning, l.Pos,
				fmt.Sprintf("iterator %q of nest %q appears in no subscript", l.Name, n.Name),
				"every iteration touches the same data; the loop only repeats work")
		}
	}

	// Column-major access: no reference in the nest walks its
	// fastest-varying dimension with any unit-stride iterator, so no
	// loop can coalesce (the classic transposed-layout mistake).
	if len(n.Body) > 0 && !stride1Anywhere {
		local(CodeColumnMajor, Warning, n.Pos,
			fmt.Sprintf("no reference in nest %q is stride-1 in its fastest-varying dimension", n.Name),
			"accesses cannot coalesce; transpose the layout or interchange subscripts")
	}
	return diags
}

// lintBounds interval-evaluates each affine subscript of r over the
// nest's rectangular domain and reports subscripts that provably fall
// outside the declared array extent. Bounds and extents are evaluated
// under params; iterator ranges are [lower, upper-1].
func lintBounds(n *affine.Nest, r affine.Ref, a affine.Array, params map[string]int64, bound map[string]bool) []Diag {
	var diags []Diag
	for di, s := range r.Subscripts {
		if di >= len(a.Dims) {
			break
		}
		unboundIter := false
		for _, it := range s.IterNames() {
			if !bound[it] {
				unboundIter = true
			}
		}
		if unboundIter {
			continue
		}
		lo, hi, ok := subscriptRange(n, s, params)
		if !ok {
			continue
		}
		size := a.Dims[di].Eval(nil, params)
		if size <= 0 {
			continue // degenerate array extent; covered by other checks
		}
		if lo < 0 || hi >= size {
			diags = append(diags, Diag{
				Code:     CodeOutOfBounds,
				Severity: Error,
				Pos:      r.Pos,
				Msg: fmt.Sprintf("reference %s subscript %d spans [%d, %d] but array %q dimension %d has extent %d",
					r, di, lo, hi, a.Name, di, size),
				Note: "shrink the loop domain or pad the array",
			})
		}
	}
	return diags
}

// subscriptRange returns the inclusive value range of an affine
// subscript over the nest's domain, or ok=false when a used iterator has
// an empty range.
func subscriptRange(n *affine.Nest, s affine.Expr, params map[string]int64) (lo, hi int64, ok bool) {
	e := s.EvalParams(params)
	lo, hi = e.Const, e.Const
	// Deterministic iteration for reproducible diagnostics.
	iters := make([]string, 0, len(e.Iters))
	for it := range e.Iters {
		iters = append(iters, it)
	}
	sort.Strings(iters)
	for _, it := range iters {
		c := e.Iters[it]
		if c == 0 {
			continue
		}
		idx := n.LoopIndex(it)
		if idx < 0 {
			return 0, 0, false
		}
		l := n.Loops[idx]
		itLo := l.Lower.Eval(nil, params)
		itHi := l.Upper.Eval(nil, params) - 1
		if itHi < itLo {
			return 0, 0, false
		}
		if c > 0 {
			lo += c * itLo
			hi += c * itHi
		} else {
			lo += c * itHi
			hi += c * itLo
		}
	}
	return lo, hi, true
}
