package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/parser"
)

var update = flag.Bool("update", false, "rewrite the .golden files")

// TestGolden lints every testdata kernel and compares the rendered
// diagnostics against the .golden file next to it. Run with -update to
// regenerate after an intentional diagnostic change.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.kdsl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata kernels")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			k, err := parser.ParseNamed(string(src), filepath.Base(f))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := Render(Lint(k, nil))
			golden := strings.TrimSuffix(f, ".kdsl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenShipped lints the repo's shipped example kernels
// (testdata/kernels at the module root) against goldens, pinning that
// the shipped examples stay clean.
func TestGoldenShipped(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "kernels", "*.kdsl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no shipped kernels")
	}
	for _, f := range files {
		f := f
		base := strings.TrimSuffix(filepath.Base(f), ".kdsl")
		t.Run(base, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			k, err := parser.ParseNamed(string(src), filepath.Base(f))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			diags := Lint(k, nil)
			got := Render(diags)
			if HasErrors(diags) {
				t.Errorf("shipped kernel has error diagnostics:\n%s", got)
			}
			golden := filepath.Join("testdata", "shipped_"+base+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCatalogClean pins that no built-in benchmark kernel carries an
// Error-severity diagnostic (the lint gate's invariant).
func TestCatalogClean(t *testing.T) {
	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		if diags := Lint(k, nil); HasErrors(diags) {
			t.Errorf("%s:\n%s", name, Render(diags))
		}
	}
}

func hasCode(diags []Diag, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Malformed kernels cannot be written in the DSL (the parser validates),
// so the structural checks are exercised on hand-assembled kernels.

func TestUndeclaredIteratorAndArray(t *testing.T) {
	k := &affine.Kernel{
		Name:   "bad",
		Params: map[string]int64{"N": 16},
		Arrays: []affine.Array{{Name: "A", Dims: []affine.Expr{affine.NewParam("N")}}},
		Nests: []affine.Nest{{
			Name:  "n",
			Loops: []affine.Loop{{Name: "i", Upper: affine.NewParam("N")}},
			Body: []affine.Statement{{
				Name: "S0",
				Refs: []affine.Ref{
					{Array: "A", Subscripts: []affine.Expr{affine.NewIter("q")}, Write: true},
					{Array: "Ghost", Subscripts: []affine.Expr{affine.NewIter("i")}},
				},
			}},
		}},
	}
	diags := Lint(k, nil)
	if !hasCode(diags, CodeUndeclaredIterator) {
		t.Errorf("missing %s in:\n%s", CodeUndeclaredIterator, Render(diags))
	}
	if !hasCode(diags, CodeUndeclaredArray) {
		t.Errorf("missing %s in:\n%s", CodeUndeclaredArray, Render(diags))
	}
	if !HasErrors(diags) {
		t.Error("expected error severity")
	}
}

func TestDuplicateIteratorAndRank(t *testing.T) {
	k := &affine.Kernel{
		Name:   "bad",
		Params: map[string]int64{"N": 16},
		Arrays: []affine.Array{{Name: "A", Dims: []affine.Expr{affine.NewParam("N"), affine.NewParam("N")}}},
		Nests: []affine.Nest{{
			Name: "n",
			Loops: []affine.Loop{
				{Name: "i", Upper: affine.NewParam("N")},
				{Name: "i", Upper: affine.NewParam("N")},
			},
			Body: []affine.Statement{{
				Name: "S0",
				Refs: []affine.Ref{{Array: "A", Subscripts: []affine.Expr{affine.NewIter("i")}, Write: true}},
			}},
		}},
	}
	diags := Lint(k, nil)
	if !hasCode(diags, CodeDuplicateIterator) {
		t.Errorf("missing %s in:\n%s", CodeDuplicateIterator, Render(diags))
	}
	if !hasCode(diags, CodeRankMismatch) {
		t.Errorf("missing %s in:\n%s", CodeRankMismatch, Render(diags))
	}
}

func TestZeroCoefficientAndUndeclaredParam(t *testing.T) {
	k := &affine.Kernel{
		Name:   "bad",
		Params: map[string]int64{"N": 16},
		Arrays: []affine.Array{{Name: "A", Dims: []affine.Expr{affine.NewParam("N")}}},
		Nests: []affine.Nest{{
			Name:  "n",
			Loops: []affine.Loop{{Name: "i", Upper: affine.NewParam("M")}},
			Body: []affine.Statement{{
				Name: "S0",
				Refs: []affine.Ref{{
					Array:      "A",
					Subscripts: []affine.Expr{{Iters: map[string]int64{"i": 0}}},
					Write:      true,
				}},
			}},
		}},
	}
	diags := Lint(k, nil)
	if !hasCode(diags, CodeZeroCoefficient) {
		t.Errorf("missing %s in:\n%s", CodeZeroCoefficient, Render(diags))
	}
	if !hasCode(diags, CodeUndeclaredParam) {
		t.Errorf("missing %s in:\n%s", CodeUndeclaredParam, Render(diags))
	}
}

func TestOutOfBoundsNegative(t *testing.T) {
	// A[i-1] reaches -1: provably below the array.
	k := &affine.Kernel{
		Name:   "neg",
		Params: map[string]int64{"N": 16},
		Arrays: []affine.Array{{Name: "A", Dims: []affine.Expr{affine.NewParam("N")}}},
		Nests: []affine.Nest{{
			Name:  "n",
			Loops: []affine.Loop{{Name: "i", Upper: affine.NewParam("N")}},
			Body: []affine.Statement{{
				Name: "S0",
				Refs: []affine.Ref{{
					Array:      "A",
					Subscripts: []affine.Expr{affine.NewIter("i").AddConst(-1)},
					Write:      true,
				}},
			}},
		}},
	}
	if diags := Lint(k, nil); !hasCode(diags, CodeOutOfBounds) {
		t.Errorf("missing %s in:\n%s", CodeOutOfBounds, Render(diags))
	}
}

// TestBoundsRespectParams pins that the interval evaluation uses the
// caller's params: the same kernel is clean at N=16 against extent 32
// but out of bounds at N=64.
func TestBoundsRespectParams(t *testing.T) {
	k := &affine.Kernel{
		Name:   "p",
		Params: map[string]int64{"N": 16},
		Arrays: []affine.Array{{Name: "A", Dims: []affine.Expr{affine.NewConst(32)}}},
		Nests: []affine.Nest{{
			Name:  "n",
			Loops: []affine.Loop{{Name: "i", Upper: affine.NewParam("N")}},
			Body: []affine.Statement{{
				Name: "S0",
				Refs: []affine.Ref{{Array: "A", Subscripts: []affine.Expr{affine.NewIter("i")}, Write: true}},
			}},
		}},
	}
	if diags := Lint(k, nil); hasCode(diags, CodeOutOfBounds) {
		t.Errorf("unexpected %s at N=16:\n%s", CodeOutOfBounds, Render(diags))
	}
	if diags := Lint(k, map[string]int64{"N": 64}); !hasCode(diags, CodeOutOfBounds) {
		t.Error("expected out-of-bounds at N=64")
	}
}

func TestNilKernel(t *testing.T) {
	if diags := Lint(nil, nil); diags != nil {
		t.Errorf("Lint(nil) = %v, want nil", diags)
	}
}
