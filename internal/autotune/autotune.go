// Package autotune stands in for ytopt, the Bayesian-optimization
// autotuner the paper compares against in Sec. V-H. It implements a
// surrogate-guided search over a tile space: a random bootstrap phase
// followed by rounds that score unseen configurations with a
// distance-weighted estimate of the observed objective and evaluate the
// most promising one (expected-improvement-style exploitation with
// epsilon-greedy exploration).
//
// Two aspects of the real comparison are modeled explicitly:
//
//   - Tuning cost: each evaluation of ytopt compiles and runs an
//     OpenMP-offload binary; the paper measures ~17 minutes for ~40
//     evaluations. EvalCostSec charges that per evaluation.
//   - Code quality: ytopt's Clang/OpenMP offload backend is slower than
//     PPCG's native CUDA (the paper: "performance decreases compared to
//     PPCG"); OpenMPPenalty scales the achieved throughput.
package autotune

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/arch"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/feas"
	"repro/internal/gpusim"
	"repro/internal/ppcg"
	"repro/internal/sweep"
	"repro/internal/symbolic"

	"repro/internal/codegen"
)

// OpenMPPenalty is the throughput factor of Clang OpenMP offload relative
// to PPCG-generated CUDA.
const OpenMPPenalty = 0.55

// EvalCostSec is the modeled wall-clock cost of one autotuner evaluation
// (compile + run of an offload binary).
const EvalCostSec = 25.0

// Config controls a tuning run.
type Config struct {
	// Budget is the number of configurations to evaluate (paper: ~40
	// in 17 minutes).
	Budget int
	// Bootstrap is the number of initial random samples.
	Bootstrap int
	// Epsilon is the exploration probability per round.
	Epsilon float64
	// Seed makes the run deterministic.
	Seed int64
	// UseShared / Precision configure the evaluated kernels.
	UseShared bool
	Precision affine.Precision
	// Workers bounds the concurrency of the bootstrap phase's
	// evaluations (0 = GOMAXPROCS). Evaluation is rng-free, and results
	// are folded back in dispatch order, so the tuner's decision
	// sequence — and therefore its outcome — is identical for any
	// worker count. The surrogate rounds stay sequential: each choice
	// depends on all prior observations.
	Workers int
	// Evaluator picks the backend that scores configurations: the full
	// simulator (EvalSimulate, the default) or the closed-form symbolic
	// plan with simulator fallback on residual configurations
	// (EvalSymbolic / EvalAuto). The backends are parity-tested, so the
	// tuner's decision sequence is identical either way; symbolic just
	// makes each evaluation far cheaper.
	Evaluator symbolic.Evaluator
}

// DefaultConfig mirrors the paper's ytopt setup.
func DefaultConfig() Config {
	return Config{Budget: 40, Bootstrap: 8, Epsilon: 0.15, Seed: 1, UseShared: true, Precision: affine.FP64}
}

// Observation is one evaluated configuration.
type Observation struct {
	Tiles  map[string]int64
	Result gpusim.Result
	// Objective is the tuner's score (GFLOP/s after the OpenMP penalty).
	Objective float64
}

// Outcome is the result of a tuning run.
type Outcome struct {
	Best    Observation
	History []Observation
	// TuningTimeSec is the modeled wall-clock tuning cost.
	TuningTimeSec float64
}

// Tune searches the given tile space for the kernel on g.
func Tune(k *affine.Kernel, g *arch.GPU, space []map[string]int64, cfg Config) Outcome {
	if cfg.Budget <= 0 {
		cfg.Budget = 40
	}
	if cfg.Bootstrap <= 0 {
		cfg.Bootstrap = 8
	}
	if cfg.Bootstrap > cfg.Budget {
		cfg.Bootstrap = cfg.Budget
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := ppcg.LoopNames(k)

	plan := planFor(k, nil, g, cfg)
	evaluate := func(tiles map[string]int64) (Observation, bool) {
		res, ok := evalPoint(plan, tiles, func() (gpusim.Result, bool) {
			mk, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{
				UseShared: cfg.UseShared,
				Precision: cfg.Precision,
			})
			if err != nil {
				return gpusim.Result{}, false
			}
			return gpusim.Simulate(mk, g), true
		})
		if !ok {
			return Observation{}, false
		}
		// The OpenMP offload backend achieves a fraction of the CUDA
		// throughput; energy scales with the longer runtime.
		penalize(&res)
		return Observation{Tiles: tiles, Result: res, Objective: res.GFLOPS}, true
	}

	var out Outcome
	tried := make(map[int]bool)
	pick := func(i int) {
		tried[i] = true
		obs, ok := evaluate(space[i])
		out.TuningTimeSec += EvalCostSec
		if !ok {
			return
		}
		out.History = append(out.History, obs)
		if obs.Objective > out.Best.Objective {
			out.Best = obs
		}
	}

	// Bootstrap: random samples, evaluated in parallel. The rng decides
	// the sample set up front (perm) and evaluation never touches it, so
	// fanning the evaluations out and folding them back in input order
	// reproduces the sequential tuner exactly.
	perm := rng.Perm(len(space))
	// Feasible-first seeding: the static feasibility region (the
	// option-free tile-domain + register box of internal/feas) is a
	// stable partition key on the shuffled order — statically feasible
	// points are sampled before provably model-infeasible ones, so the
	// bootstrap budget lands inside the feasible box first. No point is
	// excluded (the surrogate rounds still roam the whole space), and
	// the reordering is a pure function of (kernel, GPU, space, seed),
	// so determinism per seed is preserved.
	region := feas.Derive(analysis.Analyze(k, nil), g, feas.SweepConfig(cfg.Precision))
	feasFirst := make([]int, 0, len(perm))
	var rest []int
	for _, i := range perm {
		if region.Feasible(space[i]) {
			feasFirst = append(feasFirst, i)
		} else {
			rest = append(rest, i)
		}
	}
	perm = append(feasFirst, rest...)
	boot := perm
	if cfg.Bootstrap < len(boot) {
		boot = boot[:cfg.Bootstrap]
	}
	type bootObs struct {
		obs Observation
		ok  bool
	}
	bootOut, bootDone, _ := sweep.Map(context.Background(), cfg.Workers, boot,
		func(_ context.Context, _ int, i int) bootObs {
			o, ok := evaluate(space[i])
			return bootObs{obs: o, ok: ok}
		})
	for j, i := range boot {
		tried[i] = true
		out.TuningTimeSec += EvalCostSec
		if !bootDone[j] || !bootOut[j].ok {
			continue
		}
		out.History = append(out.History, bootOut[j].obs)
		if bootOut[j].obs.Objective > out.Best.Objective {
			out.Best = bootOut[j].obs
		}
	}

	// Surrogate rounds.
	for len(tried) < cfg.Budget && len(tried) < len(space) {
		var idx int
		if rng.Float64() < cfg.Epsilon || len(out.History) == 0 {
			idx = untried(rng, perm, tried)
		} else {
			idx = argmaxSurrogate(space, names, out.History, tried)
			if idx < 0 {
				idx = untried(rng, perm, tried)
			}
		}
		if idx < 0 {
			break
		}
		pick(idx)
	}
	return out
}

// untried returns a random untried index, or -1.
func untried(rng *rand.Rand, perm []int, tried map[int]bool) int {
	start := rng.Intn(len(perm))
	for off := 0; off < len(perm); off++ {
		i := perm[(start+off)%len(perm)]
		if !tried[i] {
			return i
		}
	}
	return -1
}

// argmaxSurrogate scores every untried configuration with an
// inverse-distance-weighted average of observed objectives in
// log-tile-size space and returns the most promising index.
func argmaxSurrogate(space []map[string]int64, names []string, hist []Observation, tried map[int]bool) int {
	feat := func(tiles map[string]int64) []float64 {
		v := make([]float64, len(names))
		for i, n := range names {
			v[i] = math.Log2(float64(tiles[n]))
		}
		return v
	}
	obsFeat := make([][]float64, len(hist))
	for i, o := range hist {
		obsFeat[i] = feat(o.Tiles)
	}
	bestIdx, bestScore := -1, math.Inf(-1)
	for i, tiles := range space {
		if tried[i] {
			continue
		}
		f := feat(tiles)
		var wsum, vsum float64
		for j, o := range hist {
			d := 0.0
			for dim := range f {
				diff := f[dim] - obsFeat[j][dim]
				d += diff * diff
			}
			w := 1.0 / (d + 0.25)
			wsum += w
			vsum += w * o.Objective
		}
		score := vsum / wsum
		if score > bestScore {
			bestScore, bestIdx = score, i
		}
	}
	return bestIdx
}

// TopK returns the k best observations of a run, best first.
func (o Outcome) TopK(k int) []Observation {
	sorted := append([]Observation(nil), o.History...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Objective > sorted[j].Objective })
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
