package autotune

import (
	"errors"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/gpusim"
	"repro/internal/symbolic"
)

// planFor derives the closed-form evaluation plan when the config asks
// for a symbolic backend. A nil return means "use the simulator": either
// the config chose it, or derivation failed and the whole kernel is
// residual. prog may be nil when the caller has no staged analysis; the
// kernel is analyzed here (once per run, not per evaluation).
func planFor(k *affine.Kernel, prog *analysis.Program, g *arch.GPU, cfg Config) *symbolic.Plan {
	if cfg.Evaluator == symbolic.EvalSimulate {
		return nil
	}
	if prog == nil {
		prog = analysis.Analyze(k, nil)
	}
	plan, err := symbolic.Derive(prog, g, symbolic.Config{
		UseShared: cfg.UseShared,
		Precision: cfg.Precision,
	}, nil)
	if err != nil {
		return nil
	}
	return plan
}

// evalPoint scores one configuration on the chosen backend: the derived
// plan when available, sim (the compile+simulate path) otherwise — and
// also for plan points that report ErrResidual. A non-residual plan
// error is a mapping failure and matches the simulator path's failure
// for the same tiles (the backends are parity-tested down to the error
// text), so the configuration is rejected without re-running it.
func evalPoint(plan *symbolic.Plan, tiles map[string]int64, sim func() (gpusim.Result, bool)) (gpusim.Result, bool) {
	if plan != nil {
		res, err := plan.Eval(tiles)
		if err == nil {
			return res, true
		}
		if !errors.Is(err, symbolic.ErrResidual) {
			return gpusim.Result{}, false
		}
	}
	return sim()
}

// penalize applies the OpenMP-offload quality model to a raw result:
// throughput scales down by OpenMPPenalty, runtime (and therefore
// energy) up by the same factor. Both backends produce identical raw
// results, so the penalized objective is backend-independent too.
func penalize(res *gpusim.Result) {
	res.GFLOPS *= OpenMPPenalty
	res.TimeSec /= OpenMPPenalty
	res.EnergyJ = res.AvgPowerW * res.TimeSec
	res.PPW = res.GFLOPS / res.AvgPowerW
}
