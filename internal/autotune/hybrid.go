package autotune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/gpusim"
)

// HybridTune implements the integration the paper proposes in
// Sec. IV-M (i): EATSS "can be integrated into an auto-tuning framework".
// Instead of bootstrapping the surrogate with random samples, the tuner
// seeds it with the EATSS configurations for each shared-memory split —
// model-guided warm starts — and spends the remaining budget refining
// around them. Compared to the cold-started Tune, the hybrid reaches a
// given quality with a fraction of the evaluations (see the bench study).
func HybridTune(k *affine.Kernel, g *arch.GPU, space []map[string]int64, cfg Config) Outcome {
	if cfg.Budget <= 0 {
		cfg.Budget = 40
	}

	// EATSS seeds: one configuration per shared split, with warp-fraction
	// fallback for high-dimensional kernels.
	var seeds []map[string]int64
	for _, split := range []float64{0.0, 0.5, 0.67} {
		for _, wf := range []float64{0.5, 0.25, 0.125} {
			opts := core.Options{
				SplitFactor:      split,
				WarpFraction:     wf,
				Precision:        cfg.Precision,
				ProblemSizeAware: true,
			}
			sel, err := core.SelectTiles(k, g, opts)
			if err != nil {
				continue
			}
			seeds = append(seeds, sel.Tiles)
			break
		}
	}

	var out Outcome
	evaluate := func(tiles map[string]int64) {
		mk, err := codegen.MapKernel(k, nil, tiles, g, codegen.Options{
			UseShared: cfg.UseShared,
			Precision: cfg.Precision,
		})
		if err != nil {
			return
		}
		res := gpusim.Simulate(mk, g)
		res.GFLOPS *= OpenMPPenalty
		res.TimeSec /= OpenMPPenalty
		res.EnergyJ = res.AvgPowerW * res.TimeSec
		res.PPW = res.GFLOPS / res.AvgPowerW
		obs := Observation{Tiles: tiles, Result: res, Objective: res.GFLOPS}
		out.History = append(out.History, obs)
		if obs.Objective > out.Best.Objective {
			out.Best = obs
		}
	}

	// Seed evaluations cost solver milliseconds, not compile-run cycles;
	// charge them at the EATSS rate (negligible next to EvalCostSec).
	for _, s := range seeds {
		evaluate(s)
	}

	// Refine: local perturbations of the best seed within the space.
	budget := cfg.Budget - len(seeds)
	if budget < 0 {
		budget = 0
	}
	tried := map[string]bool{}
	for _, o := range out.History {
		tried[key(o.Tiles)] = true
	}
	neighbors := neighborhood(out.Best.Tiles, space)
	for _, tiles := range neighbors {
		if budget == 0 {
			break
		}
		if tried[key(tiles)] {
			continue
		}
		tried[key(tiles)] = true
		evaluate(tiles)
		out.TuningTimeSec += EvalCostSec
		budget--
	}
	return out
}

func key(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, name := range names {
		s += fmt.Sprintf("%s=%d;", name, tiles[name])
	}
	return s
}

// neighborhood returns space points closest to the seed in log-tile space,
// nearest first.
func neighborhood(seed map[string]int64, space []map[string]int64) []map[string]int64 {
	type cand struct {
		tiles map[string]int64
		dist  float64
	}
	cands := make([]cand, 0, len(space))
	for _, tiles := range space {
		d := 0.0
		for name, v := range seed {
			sv, ok := tiles[name]
			if !ok {
				continue
			}
			diff := log2f(v) - log2f(sv)
			d += diff * diff
		}
		cands = append(cands, cand{tiles, d})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]map[string]int64, len(cands))
	for i, c := range cands {
		out[i] = c.tiles
	}
	return out
}

func log2f(v int64) float64 {
	if v < 1 {
		return 0
	}
	return math.Log2(float64(v))
}
