package autotune

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/affine"
	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/feas"
	"repro/internal/gpusim"
	"repro/internal/sweep"
)

// HybridTune implements the integration the paper proposes in
// Sec. IV-M (i): EATSS "can be integrated into an auto-tuning framework".
// Instead of bootstrapping the surrogate with random samples, the tuner
// seeds it with the EATSS configurations for each shared-memory split —
// model-guided warm starts — and spends the remaining budget refining
// around them. Compared to the cold-started Tune, the hybrid reaches a
// given quality with a fraction of the evaluations (see the bench study).
func HybridTune(k *affine.Kernel, g *arch.GPU, space []map[string]int64, cfg Config) Outcome {
	if cfg.Budget <= 0 {
		cfg.Budget = 40
	}

	// Stage the analysis once; every solver call and every evaluation
	// below consumes the same artifact.
	prog := analysis.Analyze(k, nil)

	// EATSS seeds: one configuration per shared split, with warp-fraction
	// fallback for high-dimensional kernels. The three splits' solves
	// are independent, so they run on the worker pool; folding in split
	// order keeps the seed list deterministic.
	splits := []float64{0.0, 0.5, 0.67}
	seedOut, seedDone, _ := sweep.Map(context.Background(), cfg.Workers, splits,
		func(wctx context.Context, _ int, split float64) map[string]int64 {
			for _, wf := range []float64{0.5, 0.25, 0.125} {
				// The static region decides emptiness without the solver:
				// an Empty certificate proves this (split, warp-fraction)
				// sibling UNSAT, so the solver call is skipped outright.
				if feas.Derive(prog, g, feas.ModelConfig(split, wf, cfg.Precision)).Empty != nil {
					continue
				}
				opts := core.Options{
					SplitFactor:      split,
					WarpFraction:     wf,
					Precision:        cfg.Precision,
					ProblemSizeAware: true,
				}
				sel, err := core.SelectTilesAnalyzed(wctx, prog, g, opts)
				if err != nil {
					continue
				}
				return sel.Tiles
			}
			return nil
		})
	var seeds []map[string]int64
	for i, tiles := range seedOut {
		if seedDone[i] && tiles != nil {
			seeds = append(seeds, tiles)
		}
	}

	var out Outcome
	plan := planFor(k, prog, g, cfg)
	evaluateOne := func(tiles map[string]int64) (Observation, bool) {
		res, ok := evalPoint(plan, tiles, func() (gpusim.Result, bool) {
			analysis.CountReuseHits(len(prog.Nests))
			mk, err := codegen.MapKernelReuse(context.Background(), k, prog.NestReuses(), nil, tiles, g, codegen.Options{
				UseShared: cfg.UseShared,
				Precision: cfg.Precision,
			})
			if err != nil {
				return gpusim.Result{}, false
			}
			return gpusim.Simulate(mk, g), true
		})
		if !ok {
			return Observation{}, false
		}
		penalize(&res)
		return Observation{Tiles: tiles, Result: res, Objective: res.GFLOPS}, true
	}
	record := func(obs Observation, ok bool) {
		if !ok {
			return
		}
		out.History = append(out.History, obs)
		if obs.Objective > out.Best.Objective {
			out.Best = obs
		}
	}
	evaluate := func(tiles map[string]int64) { record(evaluateOne(tiles)) }

	// Seed evaluations cost solver milliseconds, not compile-run cycles;
	// charge them at the EATSS rate (negligible next to EvalCostSec).
	// Like Tune's bootstrap, they fan out and fold back in order.
	type seedObs struct {
		obs Observation
		ok  bool
	}
	evalOut, evalDone, _ := sweep.Map(context.Background(), cfg.Workers, seeds,
		func(_ context.Context, _ int, tiles map[string]int64) seedObs {
			o, ok := evaluateOne(tiles)
			return seedObs{obs: o, ok: ok}
		})
	for i := range evalOut {
		if evalDone[i] {
			record(evalOut[i].obs, evalOut[i].ok)
		}
	}

	// Refine: local perturbations of the best seed within the space.
	budget := cfg.Budget - len(seeds)
	if budget < 0 {
		budget = 0
	}
	tried := map[string]bool{}
	for _, o := range out.History {
		tried[key(o.Tiles)] = true
	}
	neighbors := neighborhood(out.Best.Tiles, space)
	for _, tiles := range neighbors {
		if budget == 0 {
			break
		}
		if tried[key(tiles)] {
			continue
		}
		tried[key(tiles)] = true
		evaluate(tiles)
		out.TuningTimeSec += EvalCostSec
		budget--
	}
	return out
}

func key(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, name := range names {
		s += fmt.Sprintf("%s=%d;", name, tiles[name])
	}
	return s
}

// neighborhood returns space points closest to the seed in log-tile space,
// nearest first.
func neighborhood(seed map[string]int64, space []map[string]int64) []map[string]int64 {
	type cand struct {
		tiles map[string]int64
		dist  float64
	}
	cands := make([]cand, 0, len(space))
	for _, tiles := range space {
		d := 0.0
		for name, v := range seed {
			sv, ok := tiles[name]
			if !ok {
				continue
			}
			diff := log2f(v) - log2f(sv)
			d += diff * diff
		}
		cands = append(cands, cand{tiles, d})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]map[string]int64, len(cands))
	for i, c := range cands {
		out[i] = c.tiles
	}
	return out
}

func log2f(v int64) float64 {
	if v < 1 {
		return 0
	}
	return math.Log2(float64(v))
}
