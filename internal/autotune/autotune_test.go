package autotune

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/ppcg"
)

func tuneGemm(t *testing.T, cfg Config) Outcome {
	t.Helper()
	k := affine.MustLookup("gemm")
	space := ppcg.Space(k, []int64{8, 16, 32, 64, 128})
	return Tune(k, arch.GA100(), space, cfg)
}

func TestTuneFindsGoodConfig(t *testing.T) {
	out := tuneGemm(t, DefaultConfig())
	if out.Best.Result.TimeSec == 0 {
		t.Fatal("no configuration evaluated")
	}
	if len(out.History) == 0 || len(out.History) > DefaultConfig().Budget {
		t.Fatalf("history = %d evaluations", len(out.History))
	}
	// The tuned result must be at least as good as the worst observation
	// and match the history maximum.
	best := out.History[0].Objective
	for _, o := range out.History {
		if o.Objective > best {
			best = o.Objective
		}
	}
	if out.Best.Objective != best {
		t.Fatalf("Best %.1f != history max %.1f", out.Best.Objective, best)
	}
}

func TestTuningCostModeled(t *testing.T) {
	out := tuneGemm(t, DefaultConfig())
	// ~40 evaluations at 25 s each: the paper's ~17 minutes.
	if out.TuningTimeSec < 10*60 || out.TuningTimeSec > 25*60 {
		t.Fatalf("tuning time %.0f s, want ~17 minutes", out.TuningTimeSec)
	}
}

func TestOpenMPPenaltyApplied(t *testing.T) {
	out := tuneGemm(t, DefaultConfig())
	// Every observation's PPW must reflect the offload penalty:
	// objective = GFLOPS after the penalty.
	for _, o := range out.History {
		if o.Objective != o.Result.GFLOPS {
			t.Fatal("objective should equal penalized GFLOPS")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := tuneGemm(t, DefaultConfig())
	b := tuneGemm(t, DefaultConfig())
	if a.Best.Objective != b.Best.Objective || len(a.History) != len(b.History) {
		t.Fatal("tuning is not deterministic for a fixed seed")
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := tuneGemm(t, cfg)
	if len(c.History) == 0 {
		t.Fatal("different seed produced no evaluations")
	}
}

func TestSurrogateBeatsPureBootstrapOnAverage(t *testing.T) {
	// With the same budget, the surrogate-guided phase should find a
	// configuration at least as good as the bootstrap's best.
	out := tuneGemm(t, DefaultConfig())
	cfg := DefaultConfig()
	bootBest := 0.0
	for i, o := range out.History {
		if i >= cfg.Bootstrap {
			break
		}
		if o.Objective > bootBest {
			bootBest = o.Objective
		}
	}
	if out.Best.Objective < bootBest {
		t.Fatalf("final best %.1f below bootstrap best %.1f", out.Best.Objective, bootBest)
	}
}

func TestTopK(t *testing.T) {
	out := tuneGemm(t, DefaultConfig())
	top := out.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Objective > top[i-1].Objective {
			t.Fatal("TopK not sorted")
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget = 12
	out := tuneGemm(t, cfg)
	if len(out.History) > 12 {
		t.Fatalf("evaluated %d > budget 12", len(out.History))
	}
}

func TestHybridTuneSeededByEATSS(t *testing.T) {
	k := affine.MustLookup("gemm")
	g := arch.GA100()
	space := ppcg.Space(k, []int64{8, 16, 32, 64, 128, 256})
	cfg := DefaultConfig()
	cfg.Budget = 16

	hybrid := HybridTune(k, g, space, cfg)
	if hybrid.Best.Result.TimeSec == 0 {
		t.Fatal("hybrid found nothing")
	}
	// The seeds alone cost no compile-run budget; total tuning time must
	// stay well under the cold tuner's.
	cold := Tune(k, g, space, cfg)
	if hybrid.TuningTimeSec >= cold.TuningTimeSec {
		t.Fatalf("hybrid tuning time %.0fs should undercut cold %.0fs",
			hybrid.TuningTimeSec, cold.TuningTimeSec)
	}
	// And with the same budget it must reach at least comparable quality.
	if hybrid.Best.Objective < 0.85*cold.Best.Objective {
		t.Fatalf("hybrid best %.0f far below cold best %.0f",
			hybrid.Best.Objective, cold.Best.Objective)
	}
}

func TestHybridDeterministic(t *testing.T) {
	k := affine.MustLookup("2mm")
	g := arch.GA100()
	space := ppcg.Space(k, []int64{8, 16, 32, 64})
	a := HybridTune(k, g, space, DefaultConfig())
	b := HybridTune(k, g, space, DefaultConfig())
	if a.Best.Objective != b.Best.Objective {
		t.Fatal("hybrid tuning not deterministic")
	}
}
