package intlin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEq(t *testing.T, s *System, coefs map[string]int64, c int64) {
	t.Helper()
	if err := s.AddEq(coefs, c); err != nil {
		t.Fatal(err)
	}
}

func mustGeq(t *testing.T, s *System, coefs map[string]int64, c int64) {
	t.Helper()
	if err := s.AddGeq(coefs, c); err != nil {
		t.Fatal(err)
	}
}

func mustBounds(t *testing.T, s *System, name string, lo, hi int64) {
	t.Helper()
	if err := s.AddBounds(name, lo, hi); err != nil {
		t.Fatal(err)
	}
}

func TestTriviallyFeasible(t *testing.T) {
	s := NewSystem("x")
	mustBounds(t, s, "x", 0, 10)
	if !s.Feasible() {
		t.Fatal("0<=x<=10 should be feasible")
	}
}

func TestEmptyInterval(t *testing.T) {
	s := NewSystem("x")
	mustGeq(t, s, map[string]int64{"x": 1}, -10) // x >= 10
	mustGeq(t, s, map[string]int64{"x": -1}, 5)  // x <= 5
	if s.Feasible() {
		t.Fatal("10 <= x <= 5 should be infeasible")
	}
}

func TestGCDScreen(t *testing.T) {
	// 2x + 4y == 1 has no integer solution.
	s := NewSystem("x", "y")
	mustEq(t, s, map[string]int64{"x": 2, "y": 4}, -1)
	mustBounds(t, s, "x", -100, 100)
	mustBounds(t, s, "y", -100, 100)
	if s.Feasible() {
		t.Fatal("2x+4y=1 should fail the GCD screen")
	}
}

func TestEqualitySubstitution(t *testing.T) {
	// x == y+1, x <= 3, y >= 3 -> y=3, x=4 > 3: infeasible.
	s := NewSystem("x", "y")
	mustEq(t, s, map[string]int64{"x": 1, "y": -1}, -1) // x - y - 1 == 0
	mustGeq(t, s, map[string]int64{"x": -1}, 3)         // x <= 3
	mustGeq(t, s, map[string]int64{"y": 1}, -3)         // y >= 3
	if s.Feasible() {
		t.Fatal("x=y+1, x<=3, y>=3 should be infeasible")
	}
	// Relax: y >= 2 -> y=2, x=3: feasible.
	s2 := NewSystem("x", "y")
	mustEq(t, s2, map[string]int64{"x": 1, "y": -1}, -1)
	mustGeq(t, s2, map[string]int64{"x": -1}, 3)
	mustGeq(t, s2, map[string]int64{"y": 1}, -2)
	if !s2.Feasible() {
		t.Fatal("x=y+1, x<=3, y>=2 should be feasible")
	}
}

func TestChainOfVariables(t *testing.T) {
	// x < y < z within [0, 2] forces x=0, y=1, z=2: feasible; with
	// [0, 1] it is infeasible.
	build := func(hi int64) *System {
		s := NewSystem("x", "y", "z")
		for _, v := range []string{"x", "y", "z"} {
			if err := s.AddBounds(v, 0, hi); err != nil {
				t.Fatal(err)
			}
		}
		// y - x - 1 >= 0, z - y - 1 >= 0 (strict integer <).
		if err := s.AddGeq(map[string]int64{"y": 1, "x": -1}, -1); err != nil {
			t.Fatal(err)
		}
		if err := s.AddGeq(map[string]int64{"z": 1, "y": -1}, -1); err != nil {
			t.Fatal(err)
		}
		return s
	}
	if !build(2).Feasible() {
		t.Fatal("x<y<z in [0,2] should be feasible")
	}
	if build(1).Feasible() {
		t.Fatal("x<y<z in [0,1] should be infeasible")
	}
}

func TestDependenceStyleSystem(t *testing.T) {
	// Classic flow-dependence question: exists i, i' in [0, N) with
	// 2i == 2i'+1? Never (parity).
	s := NewSystem("i", "i2")
	mustBounds(t, s, "i", 0, 99)
	mustBounds(t, s, "i2", 0, 99)
	mustEq(t, s, map[string]int64{"i": 2, "i2": -2}, -1)
	if s.Feasible() {
		t.Fatal("A[2i] vs A[2i'+1] should never alias")
	}
}

func TestUnknownVariable(t *testing.T) {
	s := NewSystem("x")
	if err := s.AddEq(map[string]int64{"zz": 1}, 0); err == nil {
		t.Fatal("unknown variable should error")
	}
}

// Property: cross-check Feasible against brute-force enumeration on small
// random systems.
func TestFeasibleMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + r.Intn(2)
		names := []string{"a", "b", "c"}[:nv]
		s := NewSystem(names...)
		lo, hi := int64(0), int64(4+r.Intn(4))
		for _, n := range names {
			if err := s.AddBounds(n, lo, hi); err != nil {
				return false
			}
		}
		type con struct {
			coefs map[string]int64
			c     int64
			eq    bool
		}
		var cons []con
		nc := 1 + r.Intn(3)
		for i := 0; i < nc; i++ {
			coefs := map[string]int64{}
			for _, n := range names {
				coefs[n] = int64(r.Intn(5) - 2)
			}
			c := int64(r.Intn(11) - 5)
			eq := r.Intn(3) == 0
			cons = append(cons, con{coefs, c, eq})
			if eq {
				if err := s.AddEq(coefs, c); err != nil {
					return false
				}
			} else if err := s.AddGeq(coefs, c); err != nil {
				return false
			}
		}

		// Brute force over the box.
		vals := make([]int64, nv)
		var found bool
		var rec func(int)
		rec = func(d int) {
			if found {
				return
			}
			if d == nv {
				for _, cn := range cons {
					sum := cn.c
					for i, n := range names {
						sum += cn.coefs[n] * vals[i]
					}
					if cn.eq && sum != 0 {
						return
					}
					if !cn.eq && sum < 0 {
						return
					}
				}
				found = true
				return
			}
			for v := lo; v <= hi; v++ {
				vals[d] = v
				rec(d + 1)
			}
		}
		rec(0)

		got := s.Feasible()
		if found && !got {
			return false // unsound: claimed infeasible with a witness
		}
		// got && !found is allowed (rational-only solution), but should
		// be rare; accept it.
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
