// Package intlin decides feasibility of systems of integer linear
// constraints by Fourier–Motzkin elimination with a GCD pre-test — the
// classic exact dependence-testing machinery (Banerjee/Omega-style) that
// polyhedral frameworks build on. internal/deps uses it to verify its
// fast distance-vector analysis: the approximate analysis must never
// report "no dependence" for a pair this solver proves dependent.
//
// The decision procedure is exact for rational feasibility and
// conservative for integer feasibility (equalities are GCD-screened;
// a rationally-feasible system is reported feasible). Conservative in
// this direction is safe for dependence analysis: it can only add
// dependences, never lose one.
package intlin

import "fmt"

// Row is one linear constraint over the system's variables:
//
//	sum_i Coef[i]*x_i + Const  (>= 0 | == 0)
type Row struct {
	Coef  []int64
	Const int64
}

// System is a conjunction of constraints over named integer variables.
type System struct {
	names []string
	eqs   []Row
	geqs  []Row
}

// NewSystem declares a system over the given variables.
func NewSystem(vars ...string) *System {
	return &System{names: append([]string(nil), vars...)}
}

// NumVars returns the variable count.
func (s *System) NumVars() int { return len(s.names) }

// VarIndex returns the index of a declared variable.
func (s *System) VarIndex(name string) (int, error) {
	for i, n := range s.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("intlin: unknown variable %q", name)
}

func (s *System) row(coefs map[string]int64, c int64) (Row, error) {
	r := Row{Coef: make([]int64, len(s.names)), Const: c}
	for name, v := range coefs {
		i, err := s.VarIndex(name)
		if err != nil {
			return r, err
		}
		r.Coef[i] = v
	}
	return r, nil
}

// AddEq adds sum coefs + c == 0.
func (s *System) AddEq(coefs map[string]int64, c int64) error {
	r, err := s.row(coefs, c)
	if err != nil {
		return err
	}
	s.eqs = append(s.eqs, r)
	return nil
}

// AddGeq adds sum coefs + c >= 0.
func (s *System) AddGeq(coefs map[string]int64, c int64) error {
	r, err := s.row(coefs, c)
	if err != nil {
		return err
	}
	s.geqs = append(s.geqs, r)
	return nil
}

// AddBounds adds lo <= x <= hi.
func (s *System) AddBounds(name string, lo, hi int64) error {
	if err := s.AddGeq(map[string]int64{name: 1}, -lo); err != nil {
		return err
	}
	return s.AddGeq(map[string]int64{name: -1}, hi)
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalize divides a row by the GCD of its coefficients. For inequalities
// the constant is floored (tightening is valid over integers); for
// equalities a non-divisible constant proves infeasibility.
func normalize(r Row, isEq bool) (Row, bool) {
	g := int64(0)
	for _, c := range r.Coef {
		g = gcd(g, c)
	}
	if g == 0 {
		// Constant row.
		if isEq {
			return r, r.Const == 0
		}
		return r, r.Const >= 0
	}
	if isEq {
		if r.Const%g != 0 {
			return r, false // GCD test: no integer solution
		}
		out := Row{Coef: make([]int64, len(r.Coef)), Const: r.Const / g}
		for i, c := range r.Coef {
			out.Coef[i] = c / g
		}
		return out, true
	}
	out := Row{Coef: make([]int64, len(r.Coef))}
	for i, c := range r.Coef {
		out.Coef[i] = c / g
	}
	out.Const = floorDiv(r.Const, g)
	return out, true
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Feasible reports whether the system has a rational solution that passes
// the integer GCD screens. A false result proves integer infeasibility;
// a true result may (rarely) be a rational-only solution — conservative
// for dependence testing.
func (s *System) Feasible() bool {
	// Substitute equalities away first (Gaussian-style), then run
	// Fourier–Motzkin on the inequalities.
	eqs := append([]Row(nil), s.eqs...)
	geqs := append([]Row(nil), s.geqs...)
	n := len(s.names)
	eliminated := make([]bool, n)

	for _, raw := range eqs {
		eq, ok := normalize(raw, true)
		if !ok {
			return false
		}
		// Find a variable with coefficient +-1 for exact substitution;
		// otherwise scale the target rows (still exact over rationals,
		// with the GCD screen already applied).
		pivot := -1
		for i, c := range eq.Coef {
			if eliminated[i] {
				continue
			}
			if c == 1 || c == -1 {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			for i, c := range eq.Coef {
				if !eliminated[i] && c != 0 {
					pivot = i
					break
				}
			}
		}
		if pivot == -1 {
			if eq.Const != 0 {
				return false
			}
			continue
		}
		p := eq.Coef[pivot]
		eliminated[pivot] = true
		// Substitute into remaining equalities and inequalities:
		// row' = p*row - row.Coef[pivot]*eq  (sign-adjusted so the
		// inequality direction is preserved when p < 0).
		subst := func(r Row) Row {
			c := r.Coef[pivot]
			if c == 0 {
				return r
			}
			mult := p
			if mult < 0 {
				mult = -mult
			}
			sign := int64(1)
			if p < 0 {
				sign = -1
			}
			out := Row{Coef: make([]int64, n)}
			for i := range r.Coef {
				out.Coef[i] = r.Coef[i]*mult - c*sign*eq.Coef[i]
			}
			out.Const = r.Const*mult - c*sign*eq.Const
			return out
		}
		for i := range eqs {
			eqs[i] = subst(eqs[i])
		}
		for i := range geqs {
			geqs[i] = subst(geqs[i])
		}
	}

	// Fourier–Motzkin elimination of the remaining variables.
	for v := 0; v < n; v++ {
		if eliminated[v] {
			continue
		}
		var lower, upper, rest []Row // lower: coef > 0 (x >= ...), upper: coef < 0
		for _, raw := range geqs {
			r, ok := normalize(raw, false)
			if !ok {
				return false
			}
			switch {
			case r.Coef[v] > 0:
				lower = append(lower, r)
			case r.Coef[v] < 0:
				upper = append(upper, r)
			default:
				rest = append(rest, r)
			}
		}
		// Combine every lower bound with every upper bound.
		for _, lo := range lower {
			for _, hi := range upper {
				a := lo.Coef[v]  // > 0
				b := -hi.Coef[v] // > 0
				out := Row{Coef: make([]int64, n)}
				for i := range out.Coef {
					out.Coef[i] = lo.Coef[i]*b + hi.Coef[i]*a
				}
				out.Const = lo.Const*b + hi.Const*a
				rest = append(rest, out)
			}
		}
		geqs = rest
	}

	// All variables eliminated: every remaining row is constant.
	for _, r := range geqs {
		allZero := true
		for _, c := range r.Coef {
			if c != 0 {
				allZero = false
				break
			}
		}
		if allZero && r.Const < 0 {
			return false
		}
		if !allZero {
			// Shouldn't happen; be conservative.
			continue
		}
	}
	return true
}
