package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// Fig10Row is one non-Polybench kernel's EATSS-vs-default comparison.
type Fig10Row struct {
	Kernel       string
	WarpFraction float64
	SharedFrac   float64
	Tiles        string
	Speedup      float64 // vs default PPCG with the same shared budget
	EnergyNorm   float64 // < 1 is better
	EATSSGF      float64
	DefGF        float64
}

// Fig10Result reproduces Fig. 10 (with the warp-fraction case study of
// Sec. V-D): conv-2d, heat-3d and mttkrp on the GA100, where the default
// 32^d tiling breaks down (paper: 4.8x, 6.3x and 2.0x speedups with
// matching energy gains). EATSS explores warp fractions
// {0.125, 0.25, 0.5, 1.0} and shared splits {0, 0.5}.
type Fig10Result struct {
	GPU  string
	Rows []Fig10Row
}

// Fig10 runs the non-Polybench study on g.
func Fig10(g *arch.GPU) *Fig10Result {
	out := &Fig10Result{GPU: g.Name}
	for _, name := range affine.NonPolybenchNames() {
		k := affine.MustLookup(name)
		params := ParamsFor(name, g)

		// Explore the EATSS configuration space of Sec. V-D.
		type cand struct {
			row Fig10Row
			res eatss.Result
		}
		var best *cand
		for _, split := range []float64{0.0, 0.5} {
			for _, wf := range []float64{1.0, 0.5, 0.25, 0.125} {
				opts := eatss.Options{SplitFactor: split, WarpFraction: wf,
					Precision: eatss.FP64, ProblemSizeAware: true}
				sel, err := eatss.SelectTiles(k.WithParams(params), g, opts)
				if err != nil {
					continue // infeasible (warp multiple too coarse)
				}
				res, err := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{
					Params: params, UseShared: split > 0, Precision: eatss.FP64,
				})
				if err != nil {
					continue
				}
				c := &cand{
					row: Fig10Row{Kernel: name, WarpFraction: wf, SharedFrac: split,
						Tiles: tilesString(sel.Tiles), EATSSGF: res.GFLOPS},
					res: res,
				}
				if best == nil || c.res.PPW > best.res.PPW {
					best = c
				}
			}
		}
		if best == nil {
			continue
		}
		// Default PPCG with the same shared budget as our best.
		def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
			Params: params, UseShared: best.row.SharedFrac > 0, Precision: eatss.FP64,
		})
		if err != nil {
			continue
		}
		best.row.DefGF = def.GFLOPS
		best.row.Speedup = def.TimeSec / best.res.TimeSec
		best.row.EnergyNorm = best.res.EnergyJ / def.EnergyJ
		out.Rows = append(out.Rows, best.row)
	}
	return out
}

// RowFor returns the row of the named kernel.
func (f *Fig10Result) RowFor(kernel string) (Fig10Row, bool) {
	for _, r := range f.Rows {
		if r.Kernel == kernel {
			return r, true
		}
	}
	return Fig10Row{}, false
}

// Render prints the case study.
func (f *Fig10Result) Render() string {
	t := NewTable("Fig. 10: non-Polybench kernels on "+f.GPU+" (EATSS vs default PPCG)",
		"kernel", "warp frac", "shmem", "tiles", "def GF", "EATSS GF",
		"speedup", "energy (<1 better)")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.WarpFraction, r.SharedFrac, r.Tiles,
			r.DefGF, r.EATSSGF, r.Speedup, r.EnergyNorm)
	}
	return t.String()
}
