package bench

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion is the current version of the shared BENCH_*.json
// envelope. Bump it when the meaning of a common field changes, so the
// regression guard can refuse to compare across incompatible runs.
const SchemaVersion = 1

// Meta is the shared envelope every BENCH_*.json report embeds: the
// schema version plus the run conditions a later reader needs to judge
// comparability (parallelism, host, code version). The bench tools were
// emitting ad-hoc subsets of this — BENCH_analysis.json lacked
// gomaxprocs/workers entirely — which is what made their histories
// incomparable.
type Meta struct {
	SchemaVersion int    `json:"schema_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`
	Host          string `json:"host,omitempty"`
	GitCommit     string `json:"git_commit,omitempty"`
	GeneratedAt   string `json:"generated_at"`
}

// NewMeta fills the envelope for a run using `workers` parallel workers
// (pass 1 for single-threaded benchmarks). Host and git commit are
// best-effort: empty when unavailable, never an error.
func NewMeta(workers int) Meta {
	m := Meta{
		SchemaVersion: SchemaVersion,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       workers,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
	}
	if host, err := os.Hostname(); err == nil {
		m.Host = host
	}
	m.GitCommit = gitCommit()
	return m
}

// gitCommit returns the short HEAD hash, or "" outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// WriteJSON writes a bench report as indented JSON with a trailing
// newline — the one serialization every BENCH_*.json shares.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
