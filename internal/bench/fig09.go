package bench

import (
	"repro/internal/arch"
)

// Fig9Row is one kernel's correlation measurement.
type Fig9Row struct {
	Kernel   string
	Variants int
	// PearsonR correlates L2 sectors read with average power across the
	// tile space.
	PearsonR float64
}

// Fig9Result reproduces Fig. 9: the correlation between the number of L2
// cache lines (sectors) read and the average power across 700+ tiled
// variants. The paper's finding — strong correlation for BLAS3-class
// kernels (2mm r=0.85, gemm r=0.75), weak for O(1)-reuse kernels
// (jacobi-2d, mvt) — is the evidence for using L2 utilization in the
// objective.
type Fig9Result struct {
	GPU  string
	Rows []Fig9Row
}

// Fig9 computes the correlations on g.
func Fig9(g *arch.GPU, kernels []string) *Fig9Result {
	if kernels == nil {
		kernels = []string{"2mm", "gemm", "jacobi-2d", "mvt"}
	}
	out := &Fig9Result{GPU: g.Name}
	for _, name := range kernels {
		params := ParamsFor(name, g)
		variants, _ := Explore(name, g, params, true, false)
		var sectors, watts []float64
		for _, v := range variants {
			sectors = append(sectors, float64(v.Result.L2Sectors))
			watts = append(watts, v.Result.AvgPowerW)
		}
		out.Rows = append(out.Rows, Fig9Row{
			Kernel:   name,
			Variants: len(variants),
			PearsonR: Pearson(sectors, watts),
		})
	}
	return out
}

// RowFor returns the row of the named kernel.
func (f *Fig9Result) RowFor(kernel string) (Fig9Row, bool) {
	for _, r := range f.Rows {
		if r.Kernel == kernel {
			return r, true
		}
	}
	return Fig9Row{}, false
}

// Render prints the correlation table.
func (f *Fig9Result) Render() string {
	t := NewTable("Fig. 9: Pearson r of L2 sectors read vs average power ("+f.GPU+")",
		"kernel", "variants", "pearson r")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.Variants, r.PearsonR)
	}
	return t.String()
}
