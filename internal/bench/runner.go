package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// Workers bounds the concurrency of the bench sweeps — both the
// tile-space sweeps inside Explore and the per-figure fan-outs (Fig. 1's
// problem sizes, Fig. 7's kernels). 0 means GOMAXPROCS. Figure outputs
// are input-ordered and therefore identical for any setting.
var Workers int

// Variant pairs a tile configuration with its simulated outcome. Tiles
// is a defensive copy owned by the variant: mutating it (or the space it
// was built from) never corrupts other recorded results.
type Variant struct {
	Tiles  map[string]int64
	Result eatss.Result
}

func cloneTiles(tiles map[string]int64) map[string]int64 {
	cp := make(map[string]int64, len(tiles))
	for n, v := range tiles {
		cp[n] = v
	}
	return cp
}

// SpaceSizesFor returns candidate tile sizes sized so a kernel of the
// given maximum loop depth yields an exploration space in the paper's
// 200–800-variant range (Sec. V-A), except depth 3 with paper15=true,
// which reproduces the full 15^3 = 3,375 space of Fig. 2.
func SpaceSizesFor(depth int, paper15 bool) []int64 {
	switch {
	case depth <= 1:
		return []int64{4, 8, 16, 32, 64, 128, 192, 256, 320, 384, 448, 512, 640, 768, 1024}
	case depth == 2:
		// 15^2 = 225 variants.
		return []int64{4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 512}
	case depth == 3 && paper15:
		// 15^3 = 3,375 variants (Fig. 2).
		return []int64{4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 512}
	case depth == 3:
		// 8^3 = 512 variants.
		return []int64{4, 8, 16, 32, 64, 128, 256, 512}
	default:
		// 5^4 = 625 variants.
		return []int64{4, 8, 16, 32, 64}
	}
}

// Explore evaluates the kernel's tile space on g and returns the valid
// variants plus the default-PPCG result. The sweep runs on the parallel
// engine with the process-wide evaluation cache, so points shared
// between figures (e.g. Fig. 2's 15^3 space is a superset of Fig. 7's)
// are compiled and simulated once across the whole bench run.
func Explore(name string, g *arch.GPU, params map[string]int64, useShared bool, paper15 bool) (variants []Variant, def eatss.Result) {
	k := affine.MustLookup(name)
	if params == nil {
		params = k.Params
	}
	cfg := eatss.RunConfig{Params: params, UseShared: useShared, Precision: eatss.FP64}
	prog, err := eatss.Analyze(k, params)
	if err != nil {
		return nil, eatss.Result{}
	}
	space := prog.Space(SpaceSizesFor(k.MaxDepth(), paper15))
	pts, _ := prog.ExploreSpaceOpt(context.Background(), g, space, cfg,
		eatss.SweepOptions{Workers: Workers})
	for _, pt := range pts {
		variants = append(variants, Variant{Tiles: cloneTiles(pt.Tiles), Result: pt.Result})
	}
	def, _ = prog.Run(g, prog.DefaultTiles(), cfg)
	return variants, def
}

// RunDefault evaluates the PPCG default configuration.
func RunDefault(name string, g *arch.GPU, params map[string]int64, useShared bool) eatss.Result {
	k := affine.MustLookup(name)
	res, _ := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
		Params: params, UseShared: useShared, Precision: eatss.FP64,
	})
	return res
}

// RunEATSS runs the paper's full EATSS protocol (three shared splits,
// warp-fraction fallback, pick the best PPW) and returns the chosen
// configuration's outcome.
func RunEATSS(name string, g *arch.GPU, params map[string]int64) (*eatss.Best, error) {
	prog, err := eatss.Analyze(affine.MustLookup(name), params)
	if err != nil {
		return nil, err
	}
	return prog.SelectBest(g, eatss.FP64)
}

// ParamsFor returns the dataset for a kernel on a GPU: EXTRALARGE on the
// GA100, STANDARD on the Xavier (Sec. V-A).
func ParamsFor(name string, g *arch.GPU) map[string]int64 {
	if g.Name == "Xavier" {
		std, err := affine.StandardParams(name)
		if err == nil {
			return std
		}
	}
	return affine.MustLookup(name).Params
}

// perfOf / energyOf extract metric slices from variants.
func perfOf(vs []Variant) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.Result.GFLOPS
	}
	return out
}

func energyOf(vs []Variant) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.Result.EnergyJ
	}
	return out
}

func ppwOf(vs []Variant) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.Result.PPW
	}
	return out
}

// bestBy returns the variant maximizing (or minimizing) the metric.
func bestBy(vs []Variant, metric func(Variant) float64, maximize bool) Variant {
	best := vs[0]
	for _, v := range vs[1:] {
		m := metric(v)
		if (maximize && m > metric(best)) || (!maximize && m < metric(best)) {
			best = v
		}
	}
	return best
}

// tilesString renders a tile map compactly and deterministically.
func tilesString(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s=%d", n, tiles[n])
	}
	return b.String()
}
