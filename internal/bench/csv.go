package bench

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV writers: every experiment can dump its underlying series as CSV so
// the paper's plots can be regenerated with any plotting tool. Each
// writer emits a header row followed by data rows; numbers use full
// precision (formatting is the plot's job).

func writeAll(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

// WriteCSV dumps the Fig. 1 power series.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.N), f(row.ConstStaticW), f(row.DynamicW), f(row.TotalW), f(row.GFLOPS),
		})
	}
	return writeAll(w, []string{"n", "const_static_w", "dynamic_w", "total_w", "gflops"}, rows)
}

// WriteCSV dumps every variant of a tile-space study (Fig. 2 / Fig. 3):
// one row per variant with its tiles, performance, energy and L2 sectors.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Variants)+1)
	for _, v := range r.Variants {
		rows = append(rows, []string{
			"variant", tilesString(v.Tiles),
			f(v.Result.GFLOPS), f(v.Result.EnergyJ), f(v.Result.AvgPowerW),
			f(v.Result.PPW), d(v.Result.L2Sectors),
		})
	}
	rows = append(rows, []string{
		"default", "32^d",
		f(r.Default.Result.GFLOPS), f(r.Default.Result.EnergyJ),
		f(r.Default.Result.AvgPowerW), f(r.Default.Result.PPW),
		d(r.Default.Result.L2Sectors),
	})
	return writeAll(w, []string{"kind", "tiles", "gflops", "energy_j", "power_w", "ppw", "l2_sectors"}, rows)
}

// WriteCSV dumps the Fig. 7 per-kernel comparison.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel,
			f(row.MedPPCGGF), f(row.DefPPCGGF), f(row.BestPPCGGF), f(row.EATSSGF),
			f(row.MedPPCGJ), f(row.DefPPCGJ), f(row.BestPPCGJ), f(row.EATSSJ),
			f(row.MedPPCGPPW), f(row.DefPPCGPPW), f(row.BestPPW), f(row.EATSSPPW),
			f(row.PPWRatio), row.EATSSTiles, f(row.EATSSSharedFrac),
		})
	}
	return writeAll(w, []string{
		"kernel",
		"med_ppcg_gf", "def_ppcg_gf", "best_ppcg_gf", "eatss_gf",
		"med_ppcg_j", "def_ppcg_j", "best_ppcg_j", "eatss_j",
		"med_ppcg_ppw", "def_ppcg_ppw", "best_ppw", "eatss_ppw",
		"ppw_ratio", "eatss_tiles", "eatss_shared_frac",
	}, rows)
}

// WriteCSV dumps the shared-memory split study (Fig. 8).
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel, f(row.SharedFrac),
			f(row.Speedup), f(row.EnergyNorm), strconv.FormatBool(row.Feasible),
		})
	}
	return writeAll(w, []string{"kernel", "split", "speedup", "energy_norm", "feasible"}, rows)
}

// WriteCSV dumps the Fig. 9 correlations.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Kernel, d(int64(row.Variants)), f(row.PearsonR)})
	}
	return writeAll(w, []string{"kernel", "variants", "pearson_r"}, rows)
}

// WriteCSV dumps the non-Polybench comparison (Fig. 10).
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel, f(row.WarpFraction), f(row.SharedFrac), row.Tiles,
			f(row.DefGF), f(row.EATSSGF), f(row.Speedup), f(row.EnergyNorm),
		})
	}
	return writeAll(w, []string{
		"kernel", "warp_frac", "shared_frac", "tiles",
		"def_gf", "eatss_gf", "speedup", "energy_norm",
	}, rows)
}

// WriteCSV dumps an input-size sensitivity sweep (Fig. 12 / Fig. 13).
func (r *Fig12Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel, d(row.N),
			f(row.EATSSGF), f(row.EATSSW), f(row.EATSSPPW),
			f(row.DefGF), f(row.DefW), f(row.DefPPW),
		})
	}
	return writeAll(w, []string{
		"kernel", "n",
		"eatss_gf", "eatss_w", "eatss_ppw",
		"def_gf", "def_w", "def_ppw",
	}, rows)
}

// WriteCSV dumps Table IV.
func (r *Table4Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Cols))
	for _, c := range r.Cols {
		rows = append(rows, []string{
			c.Description, c.Platform,
			f(c.CuXXPPW), f(c.PPCGMedPPW), f(c.OurPPW),
			f(c.CuXXEnergyJ), f(c.PPCGMedEnergyJ), f(c.OurEnergyJ),
			f(c.CuXXGF), f(c.PPCGMedGF), f(c.OurGF),
		})
	}
	return writeAll(w, []string{
		"description", "platform",
		"cuxx_ppw", "ppcg_med_ppw", "our_ppw",
		"cuxx_j", "ppcg_med_j", "our_j",
		"cuxx_gf", "ppcg_med_gf", "our_gf",
	}, rows)
}

// WriteCSV dumps the autotuner comparison (Fig. 14).
func (r *Fig14Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel, f(row.YtoptGF), f(row.EATSSGF),
			f(row.Speedup), f(row.EnergyNorm),
			f(row.YtoptTuneSec), f(row.EATSSTuneSec),
		})
	}
	return writeAll(w, []string{
		"kernel", "ytopt_gf", "eatss_gf", "speedup", "energy_norm",
		"ytopt_tune_s", "eatss_tune_s",
	}, rows)
}

// WriteCSV dumps the solver-overhead study (Sec. V-G).
func (r *SecVGResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(int64(row.Depth)), d(int64(row.Kernels)), f(row.AvgCalls),
			f(row.AvgTime.Seconds()), f(row.MaxTime.Seconds()),
		})
	}
	return writeAll(w, []string{"depth", "kernels", "avg_calls", "avg_time_s", "max_time_s"}, rows)
}

// WriteCSV dumps the time-tiling extension study.
func (r *TimeTilingResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kernel, d(row.Fuse),
			f(row.Speedup), f(row.EnergyNorm), f(row.DRAMNorm),
			strconv.FormatBool(row.Feasible),
		})
	}
	return writeAll(w, []string{
		"kernel", "fuse", "speedup", "energy_norm", "dram_norm", "feasible",
	}, rows)
}
