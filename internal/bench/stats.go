// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. V). Each figXX.go / table.go file
// implements one experiment: it builds the workload, sweeps the parameter
// space, runs the pipeline, and renders the same rows/series the paper
// reports. This file provides the statistics the paper uses: medians,
// Pearson correlation (Fig. 9), and Freedman–Diaconis histogram binning
// (Fig. 11).
package bench

import (
	"math"
	"sort"
)

// Median returns the median of xs (the paper's Med-PPCG reference points).
// It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples (Fig. 9 reports r = 0.85 for 2mm and 0.75 for gemm). It returns
// 0 when either variance vanishes or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// IQR returns the interquartile range of xs.
func IQR(xs []float64) float64 {
	if len(xs) < 4 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return q(0.75) - q(0.25)
}

// FreedmanDiaconisBins returns the histogram bin count for xs using the
// Freedman–Diaconis rule (bin width 2*IQR/n^(1/3)), the estimator the
// paper uses for Fig. 11's 2-D histograms. Falls back to Sturges' rule
// when the IQR degenerates; always returns at least 1.
func FreedmanDiaconisBins(xs []float64) int {
	n := len(xs)
	if n < 2 {
		return 1
	}
	iqr := IQR(xs)
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	if span <= 0 {
		return 1
	}
	width := 2 * iqr / math.Cbrt(float64(n))
	if width <= 0 {
		return int(math.Ceil(math.Log2(float64(n)))) + 1
	}
	bins := int(math.Ceil(span / width))
	if bins < 1 {
		bins = 1
	}
	return bins
}

// Histogram2D bins paired samples into a FD-sized grid and returns the
// counts as rows (y) by columns (x), with the axis ranges.
type Histogram2D struct {
	Counts     [][]int
	XMin, XMax float64
	YMin, YMax float64
}

// NewHistogram2D builds the Fig. 11-style 2-D histogram.
func NewHistogram2D(xs, ys []float64) *Histogram2D {
	nx := FreedmanDiaconisBins(xs)
	ny := FreedmanDiaconisBins(ys)
	h := &Histogram2D{Counts: make([][]int, ny)}
	for i := range h.Counts {
		h.Counts[i] = make([]int, nx)
	}
	if len(xs) == 0 {
		return h
	}
	h.XMin, h.XMax = minMax(xs)
	h.YMin, h.YMax = minMax(ys)
	for i := range xs {
		xi := binIndex(xs[i], h.XMin, h.XMax, nx)
		yi := binIndex(ys[i], h.YMin, h.YMax, ny)
		h.Counts[yi][xi]++
	}
	return h
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func binIndex(v, lo, hi float64, n int) int {
	if hi <= lo {
		return 0
	}
	i := int(float64(n) * (v - lo) / (hi - lo))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// GeoMean returns the geometric mean of positive samples (0 otherwise).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
