package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// Fig8Row is one (kernel, shared-memory split) measurement: EATSS under
// that split, normalized to default PPCG with the same shared budget.
type Fig8Row struct {
	Kernel     string
	SharedFrac float64
	Speedup    float64 // > 1 is better
	EnergyNorm float64 // < 1 is better
	Feasible   bool
}

// Fig8Result reproduces Fig. 8: the impact of shared-memory quotas.
// The paper's observation: 100% shared memory is not always best — BLAS3
// kernels like more shared memory, low-dimensional kernels (mvt) often
// prefer 0% or 50%.
type Fig8Result struct {
	GPU    string
	Splits []float64
	Rows   []Fig8Row
}

// Fig8 sweeps shared-memory splits for the kernels (nil = a representative
// set) on g.
func Fig8(g *arch.GPU, kernels []string, splits []float64) *Fig8Result {
	if kernels == nil {
		kernels = []string{"gemm", "2mm", "3mm", "mvt", "jacobi-2d", "covariance"}
	}
	if splits == nil {
		splits = []float64{0.0, 0.5, 0.67, 1.0}
	}
	out := &Fig8Result{GPU: g.Name, Splits: splits}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		params := ParamsFor(name, g)
		for _, split := range splits {
			row := Fig8Row{Kernel: name, SharedFrac: split}
			// Default PPCG under the same shared-memory budget.
			quota := int64(split * float64(g.SharedPerBlock))
			useShared := split > 0
			cfg := eatss.RunConfig{Params: params, UseShared: useShared, SharedQuota: quota, Precision: eatss.FP64}
			def, err := eatss.Run(k, g, eatss.DefaultTiles(k), cfg)
			if err != nil {
				out.Rows = append(out.Rows, row)
				continue
			}
			// EATSS configuration for this split (with warp-fraction
			// fallback for high-dimensional kernels).
			var sel *eatss.Selection
			for _, wf := range eatss.WarpFractions {
				opts := eatss.Options{SplitFactor: split, WarpFraction: wf,
					Precision: eatss.FP64, ProblemSizeAware: true}
				if s, err := eatss.SelectTiles(k.WithParams(params), g, opts); err == nil {
					sel = s
					break
				}
			}
			if sel == nil {
				out.Rows = append(out.Rows, row)
				continue
			}
			res, err := eatss.Run(k, g, sel.Tiles, cfg)
			if err != nil {
				out.Rows = append(out.Rows, row)
				continue
			}
			row.Feasible = true
			row.Speedup = def.TimeSec / res.TimeSec
			row.EnergyNorm = res.EnergyJ / def.EnergyJ
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// BestSplit returns the split with the highest speedup for a kernel.
func (f *Fig8Result) BestSplit(kernel string) (float64, bool) {
	best, found := 0.0, false
	bestSpeed := 0.0
	for _, r := range f.Rows {
		if r.Kernel == kernel && r.Feasible && r.Speedup > bestSpeed {
			best, bestSpeed, found = r.SharedFrac, r.Speedup, true
		}
	}
	return best, found
}

// Render prints the split study.
func (f *Fig8Result) Render() string {
	t := NewTable("Fig. 8: EATSS under shared-memory splits ("+f.GPU+"), normalized to default PPCG",
		"kernel", "split", "speedup (>1 better)", "energy (<1 better)")
	for _, r := range f.Rows {
		if !r.Feasible {
			t.AddRow(r.Kernel, r.SharedFrac, "infeasible", "-")
			continue
		}
		t.AddRow(r.Kernel, r.SharedFrac, r.Speedup, r.EnergyNorm)
	}
	return t.String()
}
