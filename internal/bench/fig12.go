package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// Fig12Row is one (kernel, problem size) measurement for both EATSS and
// default PPCG.
type Fig12Row struct {
	Kernel string
	N      int64

	EATSSGF, EATSSW, EATSSPPW float64
	DefGF, DefW, DefPPW       float64
}

// Fig12Result reproduces the input-size sensitivity studies: Fig. 12
// (2mm, gemm, mvt, fdtd-2d) and — with the non-Polybench kernel set —
// Fig. 13 (conv-2d, heat-3d, mttkrp). EATSS uses its best tile
// configuration; PPCG the default, as in the paper (no per-size
// autotuning).
type Fig12Result struct {
	Title string
	GPU   string
	Rows  []Fig12Row
}

// sizeParams builds the parameter override scaling a kernel to size n.
func sizeParams(k *affine.Kernel, n int64) map[string]int64 {
	params := make(map[string]int64, len(k.Params))
	for name, v := range k.Params {
		switch name {
		case "T":
			params[name] = v // time steps stay fixed
		case "KW":
			params[name] = v // convolution window stays fixed
		default:
			params[name] = n
		}
	}
	return params
}

// Fig12 sweeps problem sizes for the Polybench sensitivity study.
func Fig12(g *arch.GPU, kernels []string, sizes []int64) *Fig12Result {
	if kernels == nil {
		kernels = []string{"2mm", "gemm", "mvt", "fdtd-2d"}
	}
	if sizes == nil {
		sizes = []int64{1000, 2000, 3000, 4000, 5000, 6000}
	}
	return sizeSweep("Fig. 12", g, kernels, sizes)
}

// Fig13 sweeps problem sizes for the non-Polybench kernels.
func Fig13(g *arch.GPU, sizes map[string][]int64) *Fig12Result {
	if sizes == nil {
		sizes = map[string][]int64{
			"conv-2d": {1024, 2048, 4096, 8192},
			"heat-3d": {100, 150, 200, 300},
			"mttkrp":  {64, 128, 256, 384},
		}
	}
	out := &Fig12Result{Title: "Fig. 13", GPU: g.Name}
	for _, name := range []string{"conv-2d", "heat-3d", "mttkrp"} {
		sw := sizeSweep("Fig. 13", g, []string{name}, sizes[name])
		out.Rows = append(out.Rows, sw.Rows...)
	}
	return out
}

func sizeSweep(title string, g *arch.GPU, kernels []string, sizes []int64) *Fig12Result {
	out := &Fig12Result{Title: title, GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		// One EATSS configuration chosen at the default size, reused
		// across the sweep (the paper fixes the best tile size).
		best, err := RunEATSS(name, g, ParamsFor(name, g))
		if err != nil {
			continue
		}
		tiles := best.Chosen.Selection.Tiles
		useShared := best.Chosen.SharedFrac > 0
		for _, n := range sizes {
			params := sizeParams(k, n)
			e, err1 := eatss.Run(k, g, tiles, eatss.RunConfig{
				Params: params, UseShared: useShared, Precision: eatss.FP64,
			})
			d, err2 := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
				Params: params, UseShared: true, Precision: eatss.FP64,
			})
			if err1 != nil || err2 != nil {
				continue
			}
			out.Rows = append(out.Rows, Fig12Row{
				Kernel: name, N: n,
				EATSSGF: e.GFLOPS, EATSSW: e.AvgPowerW, EATSSPPW: e.PPW,
				DefGF: d.GFLOPS, DefW: d.AvgPowerW, DefPPW: d.PPW,
			})
		}
	}
	return out
}

// RowsFor returns the sweep rows of one kernel in size order.
func (f *Fig12Result) RowsFor(kernel string) []Fig12Row {
	var out []Fig12Row
	for _, r := range f.Rows {
		if r.Kernel == kernel {
			out = append(out, r)
		}
	}
	return out
}

// Render prints the sweep.
func (f *Fig12Result) Render() string {
	t := NewTable(f.Title+": performance and power vs input size ("+f.GPU+")",
		"kernel", "N", "EATSS GF", "EATSS W", "EATSS PPW", "Def GF", "Def W", "Def PPW")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.N, r.EATSSGF, r.EATSSW, r.EATSSPPW, r.DefGF, r.DefW, r.DefPPW)
	}
	return t.String()
}
