package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/core"
)

// This file implements the ablation studies DESIGN.md calls out: each
// removes one design decision of the EATSS formulation and measures the
// effect, supporting the paper's claims about why each piece exists.

// AblationRow is one (kernel, variant) outcome.
type AblationRow struct {
	Kernel  string
	Variant string
	Tiles   string
	GFLOPS  float64
	EnergyJ float64
	PPW     float64
}

// AblationResult is a generic ablation table.
type AblationResult struct {
	Name string
	GPU  string
	Rows []AblationRow
}

// Render prints the ablation.
func (a *AblationResult) Render() string {
	t := NewTable("Ablation: "+a.Name+" ("+a.GPU+")",
		"kernel", "variant", "tiles", "GFLOP/s", "energy (J)", "PPW")
	for _, r := range a.Rows {
		t.AddRow(r.Kernel, r.Variant, r.Tiles, r.GFLOPS, r.EnergyJ, r.PPW)
	}
	return t.String()
}

func ablationRun(g *arch.GPU, kernel, variant string, tiles map[string]int64, useShared bool, rows *[]AblationRow) {
	k := affine.MustLookup(kernel)
	res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
		Params: ParamsFor(kernel, g), UseShared: useShared, Precision: eatss.FP64,
	})
	if err != nil {
		return
	}
	*rows = append(*rows, AblationRow{
		Kernel: kernel, Variant: variant, Tiles: tilesString(tiles),
		GFLOPS: res.GFLOPS, EnergyJ: res.EnergyJ, PPW: res.PPW,
	})
}

// AblateObjective compares the full objective (parallelism + weighted
// spatial term, Sec. IV-K) against parallelism-only and locality-only
// variants by re-solving restricted formulations.
func AblateObjective(g *arch.GPU, kernels []string) *AblationResult {
	if kernels == nil {
		kernels = []string{"gemm", "2mm", "jacobi-2d"}
	}
	out := &AblationResult{Name: "objective function (Sec. IV-K)", GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		full, err := core.SelectTiles(k, g, core.DefaultOptions())
		if err != nil {
			continue
		}
		ablationRun(g, name, "full objective", full.Tiles, true, &out.Rows)

		// Parallelism-only: solve with zeroed spatial weights by
		// maximizing only the block-size product. Approximated by
		// re-solving on a restricted formulation: equalize tiles over
		// the parallel loops of the full solution.
		par := parallelOnlyTiles(k, g, full)
		ablationRun(g, name, "parallelism-only", par, true, &out.Rows)

		// Locality-only: maximize the serial/spatial tiles and leave
		// the parallel product at its minimum warp-aligned value.
		loc := localityOnlyTiles(k, g, full)
		ablationRun(g, name, "locality-only", loc, true, &out.Rows)
	}
	return out
}

// parallelOnlyTiles redistributes the full solution's thread budget
// equally over parallel loops, ignoring CMA preferences.
func parallelOnlyTiles(k *affine.Kernel, g *arch.GPU, full *core.Selection) map[string]int64 {
	tiles := make(map[string]int64, len(full.Tiles))
	for name, v := range full.Tiles {
		tiles[name] = v
	}
	// Square the block: give every parallel loop the same tile.
	var parallel []string
	for _, nm := range full.Nests {
		parallel = nm.Parallel
		break
	}
	if len(parallel) >= 2 {
		prod := int64(1)
		for _, p := range parallel {
			prod *= tiles[p]
		}
		side := int64(16)
		for side*side < prod {
			side *= 2
		}
		for _, p := range parallel {
			tiles[p] = side
		}
	}
	return tiles
}

// localityOnlyTiles shrinks parallel tiles to one warp fraction and grows
// the serial tiles instead.
func localityOnlyTiles(k *affine.Kernel, g *arch.GPU, full *core.Selection) map[string]int64 {
	tiles := make(map[string]int64, len(full.Tiles))
	parallel := map[string]bool{}
	for _, nm := range full.Nests {
		for _, p := range nm.Parallel {
			parallel[p] = true
		}
	}
	for name, v := range full.Tiles {
		if parallel[name] {
			tiles[name] = 16
		} else {
			tiles[name] = v * 8 // inflate intra-thread reuse tiles
		}
	}
	return tiles
}

// AblateMemorySplit compares EATSS's non-CMA-to-shared rule (Sec. IV-E)
// against mapping everything through L1.
func AblateMemorySplit(g *arch.GPU, kernels []string) *AblationResult {
	if kernels == nil {
		kernels = []string{"gemm", "mvt", "covariance"}
	}
	out := &AblationResult{Name: "non-CMA refs to shared memory (Sec. IV-E)", GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		sel, err := core.SelectTiles(k, g, core.DefaultOptions())
		if err != nil {
			continue
		}
		ablationRun(g, name, "shared staging (paper)", sel.Tiles, true, &out.Rows)
		ablationRun(g, name, "everything in L1", sel.Tiles, false, &out.Rows)
	}
	return out
}

// AblateWarpFraction measures the warp-alignment knob (Sec. IV-B) on the
// high-dimensional kernels, reproducing the Sec. V-D observation that
// fractions below a full warp are required.
func AblateWarpFraction(g *arch.GPU) *AblationResult {
	out := &AblationResult{Name: "warp alignment factor (Sec. IV-B)", GPU: g.Name}
	for _, name := range affine.NonPolybenchNames() {
		k := affine.MustLookup(name)
		for _, wf := range []float64{1.0, 0.5, 0.25, 0.125} {
			opts := core.DefaultOptions()
			opts.WarpFraction = wf
			sel, err := core.SelectTiles(k, g, opts)
			if err != nil {
				out.Rows = append(out.Rows, AblationRow{
					Kernel: name, Variant: wfName(wf), Tiles: "infeasible",
				})
				continue
			}
			ablationRun(g, name, wfName(wf), sel.Tiles, true, &out.Rows)
		}
	}
	return out
}

func wfName(wf float64) string {
	switch wf {
	case 1.0:
		return "warp_frac=1.0 (align 32)"
	case 0.5:
		return "warp_frac=0.5 (align 16)"
	case 0.25:
		return "warp_frac=0.25 (align 8)"
	default:
		return "warp_frac=0.125 (align 4)"
	}
}

// AblateFPFactor checks the register-budget halving for FP64 (Sec. IV-I):
// solving the FP64 model with the FP32 register budget must admit larger
// (infeasible-in-practice) block sizes.
func AblateFPFactor(g *arch.GPU) *AblationResult {
	out := &AblationResult{Name: "FP_factor register scaling (Sec. IV-I)", GPU: g.Name}
	for _, name := range []string{"gemm", "syr2k", "mttkrp"} {
		k := affine.MustLookup(name)
		for _, prec := range []affine.Precision{affine.FP64, affine.FP32} {
			opts := core.DefaultOptions()
			opts.Precision = prec
			sel, err := core.SelectTiles(k, g, opts)
			if err != nil {
				continue
			}
			// Evaluate both at FP64 to isolate the model's effect.
			kk := affine.MustLookup(name)
			res, err := eatss.Run(kk, g, sel.Tiles, eatss.RunConfig{
				Params: ParamsFor(name, g), UseShared: true, Precision: eatss.FP64,
			})
			if err != nil {
				continue
			}
			variant := "FP64 model (factor 2)"
			if prec == affine.FP32 {
				variant = "FP32-budget model (factor 1)"
			}
			out.Rows = append(out.Rows, AblationRow{
				Kernel: name, Variant: variant, Tiles: tilesString(sel.Tiles),
				GFLOPS: res.GFLOPS, EnergyJ: res.EnergyJ, PPW: res.PPW,
			})
		}
	}
	return out
}
