package bench

import (
	"sort"

	"repro/internal/arch"
)

// Fig2Result reproduces Fig. 2 (and the Fig. 3 per-GPU variant): the
// exhaustive tile-space study. For 2mm on the GA100 the space has the
// paper's 3,375 variants; the key observable is that only a small
// fraction of variants (paper: ~12% for 2mm, ~15% for gemm) beats the
// default PPCG configuration on performance, while energy spreads widely
// at fixed performance.
type Fig2Result struct {
	Kernel string
	GPU    string

	Variants []Variant
	Default  Variant

	// PctBeatDefaultPerf is the fraction (0-100) of variants faster than
	// the default configuration.
	PctBeatDefaultPerf float64
	// PctBeatDefaultEnergy is the fraction using less energy.
	PctBeatDefaultEnergy float64

	BestPerf   Variant
	BestEnergy Variant
	MedianPerf float64
	MedianEn   float64
}

// Fig2 runs the exhaustive study for one kernel on one GPU.
func Fig2(kernel string, g *arch.GPU) *Fig2Result {
	params := ParamsFor(kernel, g)
	variants, def := Explore(kernel, g, params, true, true)
	out := &Fig2Result{
		Kernel:   kernel,
		GPU:      g.Name,
		Variants: variants,
		Default:  Variant{Result: def},
	}
	if len(variants) == 0 {
		return out
	}
	nPerf, nEn := 0, 0
	for _, v := range variants {
		if v.Result.GFLOPS > def.GFLOPS {
			nPerf++
		}
		if v.Result.EnergyJ < def.EnergyJ {
			nEn++
		}
	}
	out.PctBeatDefaultPerf = 100 * float64(nPerf) / float64(len(variants))
	out.PctBeatDefaultEnergy = 100 * float64(nEn) / float64(len(variants))
	out.BestPerf = bestBy(variants, func(v Variant) float64 { return v.Result.GFLOPS }, true)
	out.BestEnergy = bestBy(variants, func(v Variant) float64 { return v.Result.EnergyJ }, false)
	out.MedianPerf = Median(perfOf(variants))
	out.MedianEn = Median(energyOf(variants))
	return out
}

// SortedByPerf returns the variants sorted by descending performance
// (Fig. 2a's x-axis ordering).
func (f *Fig2Result) SortedByPerf() []Variant {
	s := append([]Variant(nil), f.Variants...)
	sort.Slice(s, func(i, j int) bool { return s[i].Result.GFLOPS > s[j].Result.GFLOPS })
	return s
}

// SortedByEnergy returns the variants sorted by ascending energy
// (Fig. 2b's ordering).
func (f *Fig2Result) SortedByEnergy() []Variant {
	s := append([]Variant(nil), f.Variants...)
	sort.Slice(s, func(i, j int) bool { return s[i].Result.EnergyJ < s[j].Result.EnergyJ })
	return s
}

// Render summarizes the space and prints the head of both orderings.
func (f *Fig2Result) Render() string {
	t := NewTable("Fig. 2: "+f.Kernel+" tile space on "+f.GPU,
		"metric", "value")
	t.AddRow("variants", len(f.Variants))
	t.AddRow("default GFLOP/s", f.Default.Result.GFLOPS)
	t.AddRow("default energy (J)", f.Default.Result.EnergyJ)
	t.AddRow("median GFLOP/s", f.MedianPerf)
	t.AddRow("median energy (J)", f.MedianEn)
	t.AddRow("best GFLOP/s", f.BestPerf.Result.GFLOPS)
	t.AddRow("best energy (J)", f.BestEnergy.Result.EnergyJ)
	t.AddRow("% variants beating default perf", f.PctBeatDefaultPerf)
	t.AddRow("% variants beating default energy", f.PctBeatDefaultEnergy)
	out := t.String()

	head := NewTable("top variants by performance", "tiles", "GFLOP/s", "energy (J)")
	for i, v := range f.SortedByPerf() {
		if i == 5 {
			break
		}
		head.AddRow(tilesString(v.Tiles), v.Result.GFLOPS, v.Result.EnergyJ)
	}
	out += head.String()

	headE := NewTable("top variants by energy", "tiles", "GFLOP/s", "energy (J)")
	for i, v := range f.SortedByEnergy() {
		if i == 5 {
			break
		}
		headE.AddRow(tilesString(v.Tiles), v.Result.GFLOPS, v.Result.EnergyJ)
	}
	return out + headE.String()
}
