package bench

import (
	"strings"

	"repro/internal/arch"
)

// Fig3Result reproduces Fig. 3: the 2mm tile-space performance/energy
// distribution on both the GA100 and the Xavier, with the default-PPCG
// point ('P') marked. The paper reads off ~30% performance headroom and
// ~20% energy headroom relative to the default on these spaces.
type Fig3Result struct {
	PerGPU []*Fig2Result
}

// Fig3 runs the 2mm space on both GPUs.
func Fig3() *Fig3Result {
	return &Fig3Result{PerGPU: []*Fig2Result{
		Fig2("2mm", arch.GA100()),
		Fig2("2mm", arch.Xavier()),
	}}
}

// HeadroomPerf returns the available performance improvement over the
// default configuration on the given GPU (e.g. 0.3 = 30%).
func (f *Fig3Result) HeadroomPerf(gpu string) float64 {
	for _, r := range f.PerGPU {
		if r.GPU == gpu && r.Default.Result.GFLOPS > 0 {
			return r.BestPerf.Result.GFLOPS/r.Default.Result.GFLOPS - 1
		}
	}
	return 0
}

// HeadroomEnergy returns the available energy saving relative to the
// default configuration.
func (f *Fig3Result) HeadroomEnergy(gpu string) float64 {
	for _, r := range f.PerGPU {
		if r.GPU == gpu && r.Default.Result.EnergyJ > 0 {
			return 1 - r.BestEnergy.Result.EnergyJ/r.Default.Result.EnergyJ
		}
	}
	return 0
}

// Render prints both spaces.
func (f *Fig3Result) Render() string {
	var b strings.Builder
	for _, r := range f.PerGPU {
		b.WriteString(r.Render())
		t := NewTable("headroom vs default on "+r.GPU, "metric", "value")
		t.AddRow("perf headroom", f.HeadroomPerf(r.GPU))
		t.AddRow("energy headroom", f.HeadroomEnergy(r.GPU))
		b.WriteString(t.String())
	}
	return b.String()
}
