package bench

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Fig11Result reproduces Fig. 11: the performance/energy distribution of
// the non-Polybench tile spaces as 2-D histograms with Freedman–Diaconis
// bin sizing, annotated with the P (default), M (median) and U (EATSS)
// markers. Bins toward high performance and low energy are the good
// corner; the paper shows P and M land far from it while U sits close to
// the best empirically-found variants.
type Fig11Result struct {
	GPU     string
	Kernels []Fig11Kernel
}

// Fig11Kernel is one kernel's histogram and markers.
type Fig11Kernel struct {
	Kernel   string
	N        int // variants in the space
	Hist     *Histogram2D
	DefGF    float64 // P marker
	DefJ     float64
	MedGF    float64 // M marker
	EATSSGF  float64 // U marker
	EATSSJ   float64
	BestGF   float64
	BestJ    float64 // lowest energy in space
	USupport float64 // fraction of variants EATSS beats on PPW
}

// Fig11 builds the histograms on g.
func Fig11(g *arch.GPU) *Fig11Result {
	out := &Fig11Result{GPU: g.Name}
	for _, name := range []string{"conv-2d", "heat-3d", "mttkrp"} {
		params := ParamsFor(name, g)
		variants, def := Explore(name, g, params, true, false)
		if len(variants) == 0 {
			continue
		}
		perf, energy := perfOf(variants), energyOf(variants)
		fk := Fig11Kernel{
			Kernel: name,
			N:      len(variants),
			Hist:   NewHistogram2D(perf, energy),
			DefGF:  def.GFLOPS,
			DefJ:   def.EnergyJ,
			MedGF:  Median(perf),
			BestGF: bestBy(variants, func(v Variant) float64 { return v.Result.GFLOPS }, true).Result.GFLOPS,
			BestJ:  bestBy(variants, func(v Variant) float64 { return v.Result.EnergyJ }, false).Result.EnergyJ,
		}
		if best, err := RunEATSS(name, g, params); err == nil {
			fk.EATSSGF = best.Chosen.Result.GFLOPS
			fk.EATSSJ = best.Chosen.Result.EnergyJ
			beat := 0
			for _, v := range variants {
				if best.Chosen.Result.PPW > v.Result.PPW {
					beat++
				}
			}
			fk.USupport = float64(beat) / float64(len(variants))
		}
		out.Kernels = append(out.Kernels, fk)
	}
	return out
}

// Render prints marker tables plus a coarse ASCII heat map per kernel.
func (f *Fig11Result) Render() string {
	var b strings.Builder
	for _, fk := range f.Kernels {
		t := NewTable(fmt.Sprintf("Fig. 11: %s space on %s (n=%d, FD bins %dx%d)",
			fk.Kernel, f.GPU, fk.N, len(fk.Hist.Counts[0]), len(fk.Hist.Counts)),
			"marker", "GFLOP/s", "energy (J)")
		t.AddRow("P (default PPCG)", fk.DefGF, fk.DefJ)
		t.AddRow("M (median PPCG)", fk.MedGF, "-")
		t.AddRow("U (EATSS)", fk.EATSSGF, fk.EATSSJ)
		t.AddRow("best perf in space", fk.BestGF, "-")
		t.AddRow("best energy in space", "-", fk.BestJ)
		t.AddRow("fraction of space EATSS beats (PPW)", fk.USupport, "-")
		b.WriteString(t.String())
		b.WriteString(renderHeatmap(fk.Hist))
	}
	return b.String()
}

// renderHeatmap draws the 2-D histogram with density glyphs, capped to a
// terminal-friendly size.
func renderHeatmap(h *Histogram2D) string {
	glyphs := []byte(" .:-=+*#%@")
	maxC := 0
	for _, row := range h.Counts {
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	if maxC == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("energy(J) rows (low->high) x GFLOP/s cols (low->high):\n")
	step := 1
	if len(h.Counts) > 24 {
		step = (len(h.Counts) + 23) / 24
	}
	for y := 0; y < len(h.Counts); y += step {
		row := h.Counts[y]
		cstep := 1
		if len(row) > 72 {
			cstep = (len(row) + 71) / 72
		}
		for x := 0; x < len(row); x += cstep {
			idx := row[x] * (len(glyphs) - 1) / maxC
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
