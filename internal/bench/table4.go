package bench

import (
	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/cuxx"
)

// Table4Col is one column of Table IV: a platform/kernel pair comparing
// the vendor library, the PPCG median, and EATSS.
type Table4Col struct {
	Description string
	Platform    string

	CuXXPPW, PPCGMedPPW, OurPPW             float64
	CuXXEnergyJ, PPCGMedEnergyJ, OurEnergyJ float64
	CuXXGF, PPCGMedGF, OurGF                float64
}

// Table4Result reproduces Table IV: cuBLAS gemm on GA100 and Xavier, and
// cuDNN conv-2d on GA100, against PPCG-median and EATSS. The paper's
// takeaway: PPCG-generated code cannot use tensor cores, yet EATSS
// reaches ~75% of cuBLAS/cuDNN PPW on the GA100 and beats them on the
// Xavier.
type Table4Result struct {
	Cols []Table4Col
}

// Table4 runs the comparison.
func Table4() *Table4Result {
	out := &Table4Result{}

	addGemm := func(g *arch.GPU) {
		params := ParamsFor("gemm", g)
		variants, _ := Explore("gemm", g, params, true, false)
		med := medianVariantBy(variants, func(v Variant) float64 { return v.Result.GFLOPS })
		cublas := cuxx.Gemm(g, affine.FP64, params["NI"], params["NJ"], params["NK"])
		col := Table4Col{
			Description: "cuBLAS (gemm)", Platform: g.Name,
			CuXXPPW: cublas.PPW, CuXXEnergyJ: cublas.EnergyJ, CuXXGF: cublas.GFLOPS,
			PPCGMedPPW: med.Result.PPW, PPCGMedEnergyJ: med.Result.EnergyJ, PPCGMedGF: med.Result.GFLOPS,
		}
		if best, err := RunEATSS("gemm", g, params); err == nil {
			col.OurPPW = best.Chosen.Result.PPW
			col.OurEnergyJ = best.Chosen.Result.EnergyJ
			col.OurGF = best.Chosen.Result.GFLOPS
		}
		out.Cols = append(out.Cols, col)
	}
	addGemm(arch.GA100())
	addGemm(arch.Xavier())

	g := arch.GA100()
	params := ParamsFor("conv-2d", g)
	variants, _ := Explore("conv-2d", g, params, true, false)
	med := medianVariantBy(variants, func(v Variant) float64 { return v.Result.GFLOPS })
	cudnn := cuxx.Conv2D(g, affine.FP64, params["NI"], params["NJ"], params["KW"])
	col := Table4Col{
		Description: "cuDNN (conv-2d)", Platform: g.Name,
		CuXXPPW: cudnn.PPW, CuXXEnergyJ: cudnn.EnergyJ, CuXXGF: cudnn.GFLOPS,
		PPCGMedPPW: med.Result.PPW, PPCGMedEnergyJ: med.Result.EnergyJ, PPCGMedGF: med.Result.GFLOPS,
	}
	if best, err := RunEATSS("conv-2d", g, params); err == nil {
		col.OurPPW = best.Chosen.Result.PPW
		col.OurEnergyJ = best.Chosen.Result.EnergyJ
		col.OurGF = best.Chosen.Result.GFLOPS
	}
	out.Cols = append(out.Cols, col)
	return out
}

// medianVariantBy returns the variant whose metric is the space median.
func medianVariantBy(vs []Variant, metric func(Variant) float64) Variant {
	if len(vs) == 0 {
		return Variant{}
	}
	target := Median(func() []float64 {
		xs := make([]float64, len(vs))
		for i, v := range vs {
			xs[i] = metric(v)
		}
		return xs
	}())
	best := vs[0]
	bestD := diff(metric(best), target)
	for _, v := range vs[1:] {
		if d := diff(metric(v), target); d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Render prints Table IV.
func (t4 *Table4Result) Render() string {
	t := NewTable("Table IV: comparison against cuBLAS / cuDNN",
		"description", "platform",
		"cuXX PPW", "PPCG-med PPW", "our PPW",
		"cuXX J", "PPCG-med J", "our J",
		"cuXX GF", "PPCG-med GF", "our GF")
	for _, c := range t4.Cols {
		t.AddRow(c.Description, c.Platform,
			c.CuXXPPW, c.PPCGMedPPW, c.OurPPW,
			c.CuXXEnergyJ, c.PPCGMedEnergyJ, c.OurEnergyJ,
			c.CuXXGF, c.PPCGMedGF, c.OurGF)
	}
	return t.String()
}
