package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func entryFor(t *testing.T, repoFile string) HistoryEntry {
	t.Helper()
	path := filepath.Join("..", "..", repoFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no %s in repo root: %v", repoFile, err)
	}
	e, err := EntryFromReport(path, raw)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMetricDirection pins the unit-suffix convention the gate reads
// directions from: latencies (_ms, _per_point_us) regress by going up,
// rates (_per_sec, including the older _points_per_sec spelling) by
// going down, and everything else is recorded but never gates.
func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"fresh_per_point_us":    +1,
		"p50_ms":                +1,
		"p99_ms":                +1,
		"mean_ms":               +1,
		"staged_points_per_sec": -1,
		"requests_per_sec":      -1,
		"speedup":               -1,
		"wall_sec":              0, // duration of the run, not a latency
		"coalesce_rate":         0,
		"cache_hits":            0,
		"errors":                0,
	}
	for name, want := range cases {
		if got := metricDirection(name); got != want {
			t.Errorf("metricDirection(%q) = %+d, want %+d", name, got, want)
		}
	}
}

// TestGuardPassesOnCurrentBenchFiles replays the repo's committed
// BENCH_*.json values against a history made of the same values: the
// gate must pass — a run identical to its baseline is never a
// regression.
func TestGuardPassesOnCurrentBenchFiles(t *testing.T) {
	for _, file := range []string{"BENCH_analysis.json", "BENCH_sweep.json", "BENCH_serve.json"} {
		e := entryFor(t, file)
		if n := guardedCount(e); n == 0 {
			t.Errorf("%s: no guarded metrics recognized", file)
		}
		history := []HistoryEntry{e, e, e}
		if regs := Guard(history, e, 0.15); len(regs) != 0 {
			t.Errorf("%s: self-comparison regressed: %v", file, regs)
		}
	}
}

// TestGuardFailsOnInjectedRegression degrades every guarded metric of
// the committed BENCH files by 20% — the gate (15% tolerance) must
// fail, and must name the degraded metrics.
func TestGuardFailsOnInjectedRegression(t *testing.T) {
	for _, file := range []string{"BENCH_analysis.json", "BENCH_sweep.json", "BENCH_serve.json"} {
		base := entryFor(t, file)
		history := []HistoryEntry{base, base, base}

		bad := base
		bad.Metrics = map[string]float64{}
		injected := 0
		for name, v := range base.Metrics {
			switch metricDirection(name) {
			case +1: // lower is better: 20% slower
				bad.Metrics[name] = v * 1.20
				injected++
			case -1: // higher is better: 20% less throughput
				bad.Metrics[name] = v / 1.20
				injected++
			default:
				bad.Metrics[name] = v
			}
		}
		if injected == 0 {
			t.Fatalf("%s: nothing to inject", file)
		}
		regs := Guard(history, bad, 0.15)
		if len(regs) != injected {
			t.Fatalf("%s: injected %d regressions, guard caught %d: %v", file, injected, len(regs), regs)
		}
		for _, r := range regs {
			if r.Ratio < 1.15 {
				t.Errorf("%s: reported ratio %.3f below tolerance", file, r.Ratio)
			}
			if r.String() == "" {
				t.Error("empty regression rendering")
			}
		}
	}
}

// TestGuardIgnoresIncomparableHistory pins the trajectory identity: a
// run on a different host (or point count) starts a fresh baseline and
// passes trivially, however slow it is.
func TestGuardIgnoresIncomparableHistory(t *testing.T) {
	base := HistoryEntry{
		File: "BENCH_x.json", Kernel: "gemm", GPU: "GA100",
		Points: 512, GOMAXPROCS: 8, Host: "runner-a",
		Metrics: map[string]float64{"fresh_per_point_us": 10},
	}
	slow := base
	slow.Host = "runner-b"
	slow.Metrics = map[string]float64{"fresh_per_point_us": 1000}
	if regs := Guard([]HistoryEntry{base}, slow, 0.15); len(regs) != 0 {
		t.Fatalf("cross-host comparison produced regressions: %v", regs)
	}
	slower := base
	slower.Metrics = map[string]float64{"fresh_per_point_us": 1000}
	if regs := Guard([]HistoryEntry{base}, slower, 0.15); len(regs) != 1 {
		t.Fatalf("same-host 100x slowdown not caught: %v", regs)
	}
}

// TestGuardUsesMedianBaseline checks the baseline is robust to one
// outlier run in the history.
func TestGuardUsesMedianBaseline(t *testing.T) {
	mk := func(v float64) HistoryEntry {
		return HistoryEntry{
			File: "BENCH_x.json", Kernel: "gemm", GPU: "GA100",
			Points: 512, GOMAXPROCS: 8, Host: "h",
			Metrics: map[string]float64{"staged_per_point_us": v},
		}
	}
	// One anomalously fast run must not drag the baseline down.
	history := []HistoryEntry{mk(10), mk(10.2), mk(1)}
	if regs := Guard(history, mk(11), 0.15); len(regs) != 0 {
		t.Fatalf("median baseline corrupted by outlier: %v", regs)
	}
	if regs := Guard(history, mk(13), 0.15); len(regs) != 1 {
		t.Fatalf("median baseline missed a real regression: %v", regs)
	}
}

// TestGuardBaselineWindowTracksDrift pins the sliding window: once the
// recent trajectory has settled at a slower level (machine drift, not a
// code change), runs matching that level pass — fast runs older than
// the window no longer gate — while a genuine regression against the
// recent level still fails.
func TestGuardBaselineWindowTracksDrift(t *testing.T) {
	mk := func(v float64) HistoryEntry {
		return HistoryEntry{
			File: "BENCH_x.json", Kernel: "gemm", GPU: "GA100",
			Points: 512, GOMAXPROCS: 8, Host: "h",
			Metrics: map[string]float64{"staged_per_point_us": v},
		}
	}
	// Ancient fast epoch, then a full window at the slower level.
	history := []HistoryEntry{mk(1), mk(1), mk(1)}
	for i := 0; i < baselineWindow; i++ {
		history = append(history, mk(10))
	}
	if regs := Guard(history, mk(10.5), 0.15); len(regs) != 0 {
		t.Fatalf("stale fast epoch outside the window still gates: %v", regs)
	}
	if regs := Guard(history, mk(13), 0.15); len(regs) != 1 {
		t.Fatalf("windowed baseline missed a real regression: %v", regs)
	}
}

// TestHistoryRoundTrip exercises the JSONL append/read cycle, including
// tolerance of a corrupt line.
func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	e1 := HistoryEntry{File: "BENCH_a.json", Kernel: "gemm", Metrics: map[string]float64{"speedup": 2}}
	e2 := HistoryEntry{File: "BENCH_b.json", Kernel: "2mm", Metrics: map[string]float64{"speedup": 3}}
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].File != "BENCH_a.json" || got[1].File != "BENCH_b.json" {
		t.Fatalf("history round-trip: %+v", got)
	}
	if missing, err := ReadHistory(filepath.Join(t.TempDir(), "absent.jsonl")); err != nil || missing != nil {
		t.Fatalf("missing history: %v %v", missing, err)
	}
}

func guardedCount(e HistoryEntry) int {
	n := 0
	for name := range e.Metrics {
		if GuardedMetric(name) {
			n++
		}
	}
	return n
}
