package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// Fig1Row is one problem size of the gemm power sweep.
type Fig1Row struct {
	N int64
	// ConstStaticW is the size-independent floor (constant + static).
	ConstStaticW float64
	// DynamicW is the activity-dependent component.
	DynamicW float64
	// TotalW is the observed average power.
	TotalW float64
	GFLOPS float64
}

// Fig1Result reproduces Fig. 1: power consumption of the gemm kernel
// across increasing problem sizes, decomposed into constant+static and
// dynamic components. The expected shape: at small sizes the floor
// dominates; as M, N, K grow the dynamic component takes over and total
// power saturates toward (but below) TDP.
type Fig1Result struct {
	GPU  string
	Rows []Fig1Row
}

// Fig1 runs the sweep on g with PPCG default tiles.
func Fig1(g *arch.GPU, sizes []int64) *Fig1Result {
	if len(sizes) == 0 {
		sizes = []int64{1000, 2000, 3000, 4000, 5000, 6000}
	}
	k := affine.MustLookup("gemm")
	out := &Fig1Result{GPU: g.Name}
	for _, n := range sizes {
		params := map[string]int64{"NI": n, "NJ": n, "NK": n}
		res, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{
			Params: params, UseShared: true, Precision: eatss.FP64,
		})
		if err != nil {
			continue
		}
		floor := g.ConstantWatts + g.StaticWatts
		out.Rows = append(out.Rows, Fig1Row{
			N:            n,
			ConstStaticW: floor,
			DynamicW:     res.AvgPowerW - floor,
			TotalW:       res.AvgPowerW,
			GFLOPS:       res.GFLOPS,
		})
	}
	return out
}

// Render prints the figure as a table.
func (f *Fig1Result) Render() string {
	t := NewTable("Fig. 1: gemm power vs problem size ("+f.GPU+")",
		"N=M=K", "const+static (W)", "dynamic (W)", "total (W)", "GFLOP/s")
	for _, r := range f.Rows {
		t.AddRow(r.N, r.ConstStaticW, r.DynamicW, r.TotalW, r.GFLOPS)
	}
	return t.String()
}
