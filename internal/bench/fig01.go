package bench

import (
	"context"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/sweep"
)

// Fig1Row is one problem size of the gemm power sweep.
type Fig1Row struct {
	N int64
	// ConstStaticW is the size-independent floor (constant + static).
	ConstStaticW float64
	// DynamicW is the activity-dependent component.
	DynamicW float64
	// TotalW is the observed average power.
	TotalW float64
	GFLOPS float64
}

// Fig1Result reproduces Fig. 1: power consumption of the gemm kernel
// across increasing problem sizes, decomposed into constant+static and
// dynamic components. The expected shape: at small sizes the floor
// dominates; as M, N, K grow the dynamic component takes over and total
// power saturates toward (but below) TDP.
type Fig1Result struct {
	GPU  string
	Rows []Fig1Row
}

// Fig1 runs the sweep on g with PPCG default tiles. The per-size
// evaluations are independent and run on the shared worker pool; rows
// keep the input sizes' order.
func Fig1(g *arch.GPU, sizes []int64) *Fig1Result {
	if len(sizes) == 0 {
		sizes = []int64{1000, 2000, 3000, 4000, 5000, 6000}
	}
	k := affine.MustLookup("gemm")
	out := &Fig1Result{GPU: g.Name}
	type sized struct {
		res eatss.Result
		ok  bool
	}
	rows, done, _ := sweep.Map(context.Background(), Workers, sizes,
		func(ctx context.Context, _ int, n int64) sized {
			params := map[string]int64{"NI": n, "NJ": n, "NK": n}
			res, err := eatss.RunCtx(ctx, k, g, eatss.DefaultTiles(k), eatss.RunConfig{
				Params: params, UseShared: true, Precision: eatss.FP64,
			})
			return sized{res: res, ok: err == nil}
		})
	floor := g.ConstantWatts + g.StaticWatts
	for i, r := range rows {
		if !done[i] || !r.ok {
			continue
		}
		out.Rows = append(out.Rows, Fig1Row{
			N:            sizes[i],
			ConstStaticW: floor,
			DynamicW:     r.res.AvgPowerW - floor,
			TotalW:       r.res.AvgPowerW,
			GFLOPS:       r.res.GFLOPS,
		})
	}
	return out
}

// Render prints the figure as a table.
func (f *Fig1Result) Render() string {
	t := NewTable("Fig. 1: gemm power vs problem size ("+f.GPU+")",
		"N=M=K", "const+static (W)", "dynamic (W)", "total (W)", "GFLOP/s")
	for _, r := range f.Rows {
		t.AddRow(r.N, r.ConstStaticW, r.DynamicW, r.TotalW, r.GFLOPS)
	}
	return t.String()
}
