package bench

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table renderer used by every experiment's
// Render method so the harness output reads like the paper's tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are Sprint-ed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// fmtFloat picks a compact precision by magnitude.
func fmtFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for i, w := range width {
		total += w
		if i > 0 {
			total += 2
		}
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
