package bench

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// These tests assert the *shapes* each experiment must reproduce from the
// paper — who wins, in which direction, where regimes change — not
// absolute numbers (the substrate is a simulator, not the authors'
// testbed). See EXPERIMENTS.md for the paper-vs-measured record.

func TestFig1Shape(t *testing.T) {
	f := Fig1(arch.GA100(), nil)
	if len(f.Rows) != 6 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	// Small sizes: constant+static dominates the total.
	if first.DynamicW > first.ConstStaticW {
		t.Errorf("at N=%d dynamic %.1f should be below floor %.1f",
			first.N, first.DynamicW, first.ConstStaticW)
	}
	// Large sizes: dynamic dominates.
	if last.DynamicW < last.ConstStaticW {
		t.Errorf("at N=%d dynamic %.1f should exceed floor %.1f",
			last.N, last.DynamicW, last.ConstStaticW)
	}
	// Power grows monotonically (within tolerance) and saturates under
	// TDP.
	for i := 1; i < len(f.Rows); i++ {
		if f.Rows[i].TotalW < f.Rows[i-1].TotalW*0.97 {
			t.Errorf("power drops at N=%d", f.Rows[i].N)
		}
	}
	if last.TotalW > arch.GA100().TDPWatts {
		t.Errorf("power %.1f exceeds TDP", last.TotalW)
	}
	if !strings.Contains(f.Render(), "Fig. 1") {
		t.Error("render missing title")
	}
}

func TestFig2Space(t *testing.T) {
	f := Fig2("2mm", arch.GA100())
	if len(f.Variants) != 3375 {
		t.Fatalf("2mm space = %d variants, want 3375 (15^3)", len(f.Variants))
	}
	// There must be meaningful headroom above the default (the paper's
	// motivation: both performance and energy left on the table).
	if f.BestPerf.Result.GFLOPS <= f.Default.Result.GFLOPS*1.1 {
		t.Error("no performance headroom over default")
	}
	if f.BestEnergy.Result.EnergyJ >= f.Default.Result.EnergyJ*0.95 {
		t.Error("no energy headroom over default")
	}
	// Orderings are consistent.
	byPerf := f.SortedByPerf()
	if byPerf[0].Result.GFLOPS < byPerf[len(byPerf)-1].Result.GFLOPS {
		t.Error("perf sort broken")
	}
	byEn := f.SortedByEnergy()
	if byEn[0].Result.EnergyJ > byEn[len(byEn)-1].Result.EnergyJ {
		t.Error("energy sort broken")
	}
	if !strings.Contains(f.Render(), "variants") {
		t.Error("render incomplete")
	}
}

func TestFig7MedianImprovement(t *testing.T) {
	// Subset for test speed; the full run is exercised by the benchmark
	// harness. The median PPW improvement must be positive on both GPUs
	// and larger on the GA100 than on the Xavier (paper: 1.5x vs 1.2x).
	kernels := []string{"gemm", "2mm", "covariance", "mvt", "jacobi-2d"}
	ga := Fig7(arch.GA100(), kernels)
	xv := Fig7(arch.Xavier(), kernels)
	if ga.MedianPPWX <= 1.0 {
		t.Fatalf("GA100 median PPW improvement = %.2f, want > 1", ga.MedianPPWX)
	}
	if xv.MedianPPWX <= 0.95 {
		t.Fatalf("Xavier median PPW ratio = %.2f, want ~>= 1", xv.MedianPPWX)
	}
	if ga.MedianPPWX < xv.MedianPPWX {
		t.Errorf("GA100 gain (%.2f) should exceed Xavier gain (%.2f)",
			ga.MedianPPWX, xv.MedianPPWX)
	}
	for _, r := range ga.Rows {
		if r.BestPPCGGF < r.MedPPCGGF {
			t.Errorf("%s: best PPCG below median", r.Kernel)
		}
	}
	if !strings.Contains(ga.Render(), "Fig. 7") {
		t.Error("render incomplete")
	}
}

func TestFig8SplitStudy(t *testing.T) {
	f := Fig8(arch.GA100(), []string{"gemm", "mvt"}, nil)
	if len(f.Rows) != 8 {
		t.Fatalf("rows = %d, want 2 kernels x 4 splits", len(f.Rows))
	}
	// gemm (BLAS3) must have a feasible best split; the paper's claim is
	// that the best split is kernel-dependent and not always 100%.
	if _, ok := f.BestSplit("gemm"); !ok {
		t.Fatal("no feasible gemm split")
	}
	feasible := 0
	for _, r := range f.Rows {
		if r.Feasible {
			feasible++
			if r.Speedup <= 0 || r.EnergyNorm <= 0 {
				t.Errorf("%s split %.2f: degenerate ratios", r.Kernel, r.SharedFrac)
			}
		}
	}
	if feasible < 4 {
		t.Fatalf("only %d feasible rows", feasible)
	}
}

func TestFig9CorrelationOrdering(t *testing.T) {
	f := Fig9(arch.GA100(), nil)
	get := func(k string) float64 {
		r, ok := f.RowFor(k)
		if !ok {
			t.Fatalf("missing row %s", k)
		}
		return r.PearsonR
	}
	// The paper's finding: BLAS3-class kernels correlate strongly;
	// O(1)-reuse kernels do not. Require the BLAS3 minimum to exceed
	// the O(1) kernels.
	blas3 := get("gemm")
	if b := get("2mm"); b < blas3 {
		blas3 = b
	}
	if blas3 < 0.4 {
		t.Errorf("BLAS3 correlation too weak: %.2f", blas3)
	}
	for _, k := range []string{"jacobi-2d", "mvt"} {
		if r := get(k); r > blas3 {
			t.Errorf("%s correlation %.2f should be below BLAS3 %.2f", k, r, blas3)
		}
	}
	for _, r := range f.Rows {
		if r.Variants < 200 {
			t.Errorf("%s: only %d variants (paper uses 700+ total)", r.Kernel, r.Variants)
		}
	}
}

func TestFig10NonPolybenchWins(t *testing.T) {
	f := Fig10(arch.GA100())
	if len(f.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Speedup < 1.0 {
			t.Errorf("%s: EATSS slower than default (%.2fx)", r.Kernel, r.Speedup)
		}
		if r.EnergyNorm > 1.0 {
			t.Errorf("%s: EATSS uses more energy (%.2fx)", r.Kernel, r.EnergyNorm)
		}
	}
	// heat-3d and mttkrp must show the paper's large-factor wins.
	for _, k := range []string{"heat-3d", "mttkrp"} {
		r, ok := f.RowFor(k)
		if !ok {
			t.Fatalf("missing %s", k)
		}
		if r.Speedup < 1.3 {
			t.Errorf("%s speedup %.2f, want a large-factor win", k, r.Speedup)
		}
	}
}

func TestFig11Histograms(t *testing.T) {
	f := Fig11(arch.GA100())
	if len(f.Kernels) != 3 {
		t.Fatalf("kernels = %d", len(f.Kernels))
	}
	for _, fk := range f.Kernels {
		if fk.N < 100 {
			t.Errorf("%s: space too small (%d)", fk.Kernel, fk.N)
		}
		if fk.EATSSGF == 0 {
			t.Errorf("%s: EATSS marker missing", fk.Kernel)
		}
		// U must beat the median of the space comfortably.
		if fk.USupport < 0.5 {
			t.Errorf("%s: EATSS beats only %.0f%% of the space", fk.Kernel, 100*fk.USupport)
		}
		total := 0
		for _, row := range fk.Hist.Counts {
			for _, c := range row {
				total += c
			}
		}
		if total != fk.N {
			t.Errorf("%s: histogram holds %d of %d samples", fk.Kernel, total, fk.N)
		}
	}
	if !strings.Contains(f.Render(), "Fig. 11") {
		t.Error("render incomplete")
	}
}

func TestFig12Sensitivity(t *testing.T) {
	f := Fig12(arch.GA100(), []string{"gemm", "mvt"}, []int64{1000, 2000, 4000})
	rows := f.RowsFor("gemm")
	if len(rows) != 3 {
		t.Fatalf("gemm rows = %d", len(rows))
	}
	// gemm power must grow with size for both configurations (Fig. 1 /
	// Fig. 12 regime change).
	if rows[0].EATSSW >= rows[len(rows)-1].EATSSW {
		t.Error("EATSS gemm power not growing with size")
	}
	if rows[0].DefW >= rows[len(rows)-1].DefW {
		t.Error("default gemm power not growing with size")
	}
	// mvt stays in the static-dominated regime: its power at the largest
	// size remains well below gemm's.
	mvt := f.RowsFor("mvt")
	if len(mvt) == 0 {
		t.Fatal("no mvt rows")
	}
	if mvt[len(mvt)-1].EATSSW > rows[len(rows)-1].EATSSW {
		t.Error("mvt should not computationally saturate the GPU")
	}
}

func TestFig13NonPolybenchSensitivity(t *testing.T) {
	f := Fig13(arch.GA100(), map[string][]int64{
		"conv-2d": {1024, 2048},
		"heat-3d": {100, 150},
		"mttkrp":  {64, 128},
	})
	if len(f.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.EATSSPPW <= 0 || r.DefPPW <= 0 {
			t.Errorf("%s N=%d: degenerate PPW", r.Kernel, r.N)
		}
	}
}

func TestTable4Structure(t *testing.T) {
	t4 := Table4()
	if len(t4.Cols) != 3 {
		t.Fatalf("cols = %d, want 3 (gemm GA100, gemm Xavier, conv GA100)", len(t4.Cols))
	}
	ga := t4.Cols[0]
	// On the GA100, cuBLAS (tensor cores) must beat PPCG-generated code
	// on raw GFLOP/s by a wide margin.
	if ga.CuXXGF < 2*ga.OurGF {
		t.Errorf("cuBLAS %.0f GF should far exceed EATSS %.0f GF on GA100", ga.CuXXGF, ga.OurGF)
	}
	// EATSS must beat the PPCG median on PPW everywhere.
	for _, c := range t4.Cols {
		if c.OurPPW <= c.PPCGMedPPW {
			t.Errorf("%s/%s: EATSS PPW %.2f should beat PPCG median %.2f",
				c.Description, c.Platform, c.OurPPW, c.PPCGMedPPW)
		}
	}
	// The paper's contrast: EATSS's PPW relative to the vendor library is
	// far stronger on the Xavier (2.1x, no tensor cores) than on the
	// GA100 (0.75x). The absolute Xavier inversion depends on
	// tegrastats' rail-level power accounting, which a module-level
	// power model cannot reproduce (see EXPERIMENTS.md); the relative
	// ordering must still hold.
	xv := t4.Cols[1]
	gaRatio := ga.OurPPW / ga.CuXXPPW
	xvRatio := xv.OurPPW / xv.CuXXPPW
	if xvRatio <= gaRatio {
		t.Errorf("EATSS/cuXX PPW ratio on Xavier (%.2f) should exceed GA100 (%.2f)", xvRatio, gaRatio)
	}
	if !strings.Contains(t4.Render(), "Table IV") {
		t.Error("render incomplete")
	}
}

func TestFig14YtoptComparison(t *testing.T) {
	f := Fig14(nil, []string{"gemm", "heat-3d"})
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		// EATSS (native CUDA via PPCG) must beat the OpenMP-offload
		// autotuner result, and its tuning cost must be orders of
		// magnitude smaller (paper: seconds vs 17 minutes).
		if r.Speedup <= 1.0 {
			t.Errorf("%s: EATSS should be faster than ytopt (got %.2fx)", r.Kernel, r.Speedup)
		}
		if r.YtoptTuneSec < 60 {
			t.Errorf("%s: ytopt tuning %.0fs, expected minutes", r.Kernel, r.YtoptTuneSec)
		}
		if r.EATSSTuneSec > 10 {
			t.Errorf("%s: EATSS tuning %.1fs, expected seconds", r.Kernel, r.EATSSTuneSec)
		}
	}
}

func TestSecVGOverhead(t *testing.T) {
	f := SecVG(arch.GA100())
	if len(f.Rows) < 3 {
		t.Fatalf("depth classes = %d", len(f.Rows))
	}
	if f.OverallAvgCalls < 2 || f.OverallAvgCalls > 30 {
		t.Errorf("avg solver calls = %.1f, want a small iterative count", f.OverallAvgCalls)
	}
	// The whole catalog must solve in far less time than the paper's
	// 1.3 s Z3 average.
	if f.OverallAvgTime.Seconds() > 1.3 {
		t.Errorf("avg solve time %v exceeds the paper's Z3 baseline", f.OverallAvgTime)
	}
}

func TestAblations(t *testing.T) {
	g := arch.GA100()

	obj := AblateObjective(g, []string{"gemm"})
	if len(obj.Rows) != 3 {
		t.Fatalf("objective ablation rows = %d", len(obj.Rows))
	}
	full := obj.Rows[0]
	for _, r := range obj.Rows[1:] {
		if full.PPW < r.PPW {
			t.Errorf("full objective PPW %.2f should be >= %s %.2f", full.PPW, r.Variant, r.PPW)
		}
	}

	mem := AblateMemorySplit(g, []string{"gemm"})
	if len(mem.Rows) != 2 {
		t.Fatalf("memory ablation rows = %d", len(mem.Rows))
	}
	if mem.Rows[0].PPW < mem.Rows[1].PPW {
		t.Errorf("shared staging (%.2f PPW) should beat everything-in-L1 (%.2f PPW) for gemm",
			mem.Rows[0].PPW, mem.Rows[1].PPW)
	}

	wf := AblateWarpFraction(g)
	infeasible := 0
	for _, r := range wf.Rows {
		if r.Tiles == "infeasible" {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Error("warp-fraction ablation should show infeasible coarse-alignment cases (Sec. V-D)")
	}

	fp := AblateFPFactor(g)
	if len(fp.Rows) < 4 {
		t.Fatalf("FP ablation rows = %d", len(fp.Rows))
	}
}

func TestTimeTilingStudy(t *testing.T) {
	f := TimeTilingStudy(arch.GA100(), []string{"jacobi-2d"}, []int64{2, 4})
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	feasible := 0
	for _, r := range f.Rows {
		if !r.Feasible {
			continue
		}
		feasible++
		if r.DRAMNorm >= 1 {
			t.Errorf("fuse %d: DRAM did not drop (%.2f)", r.Fuse, r.DRAMNorm)
		}
		if r.EnergyNorm >= 1 {
			t.Errorf("fuse %d: energy did not drop (%.2f)", r.Fuse, r.EnergyNorm)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible fusion for jacobi-2d with EATSS tiles")
	}
}

func TestRegTileStudy(t *testing.T) {
	f := RegTileStudy(arch.GA100(), []string{"gemm"}, []int64{2, 8})
	rows := f.RowsForKernel("gemm")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var r1, r2, r8 RegTileRow
	for _, r := range rows {
		switch r.R {
		case 1:
			r1 = r
		case 2:
			r2 = r
		case 8:
			r8 = r
		}
	}
	if !r2.Feasible || r2.GFLOPS <= r1.GFLOPS {
		t.Fatalf("r=2 should win: %+v vs %+v", r2, r1)
	}
	if r8.Feasible && r8.GFLOPS >= r2.GFLOPS {
		t.Fatalf("r=8 should collapse below r=2: %+v", r8)
	}
}

func TestReportAllChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	var buf strings.Builder
	deviations, err := Report(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if deviations != 0 || strings.Contains(out, "DEVIATION") {
		t.Fatalf("report contains %d deviations:\n%s", deviations, out)
	}
	if !strings.Contains(out, "shape checks pass") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}

func TestPrecisionStudy(t *testing.T) {
	f := PrecisionStudy(arch.GA100(), []string{"gemm"})
	if len(f.Rows) != 3 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	byVariant := map[string]AblationRow{}
	for _, r := range f.Rows {
		byVariant[r.Variant] = r
	}
	fp64 := byVariant["FP64 tiles @ FP64"]
	fp32 := byVariant["FP32 tiles @ FP32"]
	cross := byVariant["FP64 tiles @ FP32 (no adaptation)"]
	// FP32 throughput must exceed FP64's (wider pipes, halved traffic).
	if fp32.GFLOPS <= fp64.GFLOPS {
		t.Errorf("FP32 %.0f GF should exceed FP64 %.0f GF", fp32.GFLOPS, fp64.GFLOPS)
	}
	// The adapted model must not lose on throughput, and stay within a
	// few percent on PPW (in the simulator the wider FP32 tile trades a
	// little power for throughput).
	if fp32.GFLOPS < cross.GFLOPS {
		t.Errorf("adapted FP32 %.0f GF below unadapted %.0f GF", fp32.GFLOPS, cross.GFLOPS)
	}
	if fp32.PPW < 0.95*cross.PPW {
		t.Errorf("adapted FP32 PPW %.2f far below unadapted %.2f", fp32.PPW, cross.PPW)
	}
	// The adaptation changes the tiles (capacity doubles in elements).
	if fp32.Tiles == fp64.Tiles {
		t.Errorf("FP32 model chose the same tiles as FP64: %s", fp32.Tiles)
	}
}
