package bench

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestAllRenderersComplete smoke-tests every experiment's Render and
// WriteCSV on small instances: output must be non-empty, contain the
// title, and the CSV must have a header plus at least one data row.
func TestAllRenderersComplete(t *testing.T) {
	g := arch.GA100()

	type artifact struct {
		name   string
		render func() string
		csv    func(*strings.Builder) error
	}
	arts := []artifact{
		{"fig1", func() string { return Fig1(g, []int64{1000, 2000}).Render() },
			func(b *strings.Builder) error { return Fig1(g, []int64{1000, 2000}).WriteCSV(b) }},
		{"fig7", func() string { return Fig7(g, []string{"gemm"}).Render() },
			func(b *strings.Builder) error { return Fig7(g, []string{"gemm"}).WriteCSV(b) }},
		{"fig8", func() string { return Fig8(g, []string{"gemm"}, []float64{0, 0.5}).Render() },
			func(b *strings.Builder) error { return Fig8(g, []string{"gemm"}, []float64{0, 0.5}).WriteCSV(b) }},
		{"fig9", func() string { return Fig9(g, []string{"mvt"}).Render() },
			func(b *strings.Builder) error { return Fig9(g, []string{"mvt"}).WriteCSV(b) }},
		{"fig10", func() string { return Fig10(g).Render() },
			func(b *strings.Builder) error { return Fig10(g).WriteCSV(b) }},
		{"fig12", func() string { return Fig12(g, []string{"mvt"}, []int64{1000, 2000}).Render() },
			func(b *strings.Builder) error { return Fig12(g, []string{"mvt"}, []int64{1000, 2000}).WriteCSV(b) }},
		{"table4", func() string { return Table4().Render() },
			func(b *strings.Builder) error { return Table4().WriteCSV(b) }},
		{"fig14", func() string { return Fig14(g, []string{"gemm"}).Render() },
			func(b *strings.Builder) error { return Fig14(g, []string{"gemm"}).WriteCSV(b) }},
		{"secvg", func() string { return SecVG(g).Render() },
			func(b *strings.Builder) error { return SecVG(g).WriteCSV(b) }},
		{"timetile", func() string { return TimeTilingStudy(g, []string{"jacobi-2d"}, []int64{2}).Render() },
			func(b *strings.Builder) error {
				return TimeTilingStudy(g, []string{"jacobi-2d"}, []int64{2}).WriteCSV(b)
			}},
	}

	for _, a := range arts {
		rendered := a.render()
		if len(rendered) < 40 {
			t.Errorf("%s: render too short:\n%s", a.name, rendered)
		}
		var b strings.Builder
		if err := a.csv(&b); err != nil {
			t.Errorf("%s: csv error: %v", a.name, err)
			continue
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: csv has %d lines, want header + data", a.name, len(lines))
		}
		if strings.Contains(lines[0], " ") && !strings.Contains(lines[0], ",") {
			t.Errorf("%s: csv header malformed: %q", a.name, lines[0])
		}
	}
}

// TestRegTileRender covers the register-tiling study's renderer.
func TestRegTileRender(t *testing.T) {
	f := RegTileStudy(arch.GA100(), []string{"gemm"}, []int64{2})
	s := f.Render()
	if !strings.Contains(s, "micro-tiles") || !strings.Contains(s, "gemm") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

// TestFig3AndFig11Renders covers the remaining renderers (heavier runs).
func TestFig3AndFig11Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	f3 := Fig3()
	if !strings.Contains(f3.Render(), "headroom") {
		t.Error("fig3 render incomplete")
	}
	if f3.HeadroomPerf("GA100") <= 0 {
		t.Error("fig3 GA100 perf headroom should be positive")
	}
	f11 := Fig11(arch.GA100())
	if !strings.Contains(f11.Render(), "Fig. 11") {
		t.Error("fig11 render incomplete")
	}
}

// TestAblationRenders covers the four ablations' renderers.
func TestAblationRenders(t *testing.T) {
	g := arch.GA100()
	for _, s := range []string{
		AblateObjective(g, []string{"gemm"}).Render(),
		AblateMemorySplit(g, []string{"gemm"}).Render(),
		AblateFPFactor(g).Render(),
	} {
		if !strings.Contains(s, "Ablation") {
			t.Errorf("ablation render incomplete:\n%s", s)
		}
	}
}
