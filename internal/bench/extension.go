package bench

import (
	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/core"
)

// TimeTilingRow is one (kernel, fuse factor) measurement of the
// time-tiling extension.
type TimeTilingRow struct {
	Kernel     string
	Fuse       int64
	Speedup    float64 // vs the same tiles without fusion (>1 better)
	EnergyNorm float64 // <1 better
	DRAMNorm   float64 // <1 better
	Feasible   bool
}

// TimeTilingResult is the beyond-paper extension study: overlapped time
// tiling on the iterative stencils, quantifying the inter-step reuse the
// paper notes PPCG cannot exploit (Sec. V-B). Expected shape: DRAM traffic
// and energy fall with the fuse factor until halo redundancy and shrinking
// launch counts flatten the curve.
type TimeTilingResult struct {
	GPU  string
	Rows []TimeTilingRow
}

// TimeTilingStudy sweeps fuse factors over the stencil kernels.
func TimeTilingStudy(g *arch.GPU, kernels []string, fuses []int64) *TimeTilingResult {
	if kernels == nil {
		kernels = []string{"jacobi-1d", "jacobi-2d", "heat-3d", "fdtd-2d"}
	}
	if fuses == nil {
		fuses = []int64{2, 4, 8}
	}
	out := &TimeTilingResult{GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		// EATSS tiles (they are wide enough to host trapezoids).
		best, err := RunEATSS(name, g, ParamsFor(name, g))
		if err != nil {
			continue
		}
		tiles := best.Chosen.Selection.Tiles
		cfg := eatss.RunConfig{
			Params:    ParamsFor(name, g),
			UseShared: best.Chosen.SharedFrac > 0,
			Precision: eatss.FP64,
		}
		base, err := eatss.Run(k, g, tiles, cfg)
		if err != nil {
			continue
		}
		for _, fuse := range fuses {
			row := TimeTilingRow{Kernel: name, Fuse: fuse}
			fcfg := cfg
			fcfg.TimeTileFuse = fuse
			res, err := eatss.Run(k, g, tiles, fcfg)
			if err == nil && res.DRAMBytes < base.DRAMBytes {
				row.Feasible = true
				row.Speedup = base.TimeSec / res.TimeSec
				row.EnergyNorm = res.EnergyJ / base.EnergyJ
				row.DRAMNorm = float64(res.DRAMBytes) / float64(base.DRAMBytes)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// RowsFor returns the rows of one kernel.
func (f *TimeTilingResult) RowsFor(kernel string) []TimeTilingRow {
	var out []TimeTilingRow
	for _, r := range f.Rows {
		if r.Kernel == kernel {
			out = append(out, r)
		}
	}
	return out
}

// Render prints the extension study.
func (f *TimeTilingResult) Render() string {
	t := NewTable("Extension: overlapped time tiling on stencils ("+f.GPU+"), vs same tiles unfused",
		"kernel", "fuse", "speedup", "energy (<1 better)", "DRAM (<1 better)")
	for _, r := range f.Rows {
		if !r.Feasible {
			t.AddRow(r.Kernel, r.Fuse, "infeasible", "-", "-")
			continue
		}
		t.AddRow(r.Kernel, r.Fuse, r.Speedup, r.EnergyNorm, r.DRAMNorm)
	}
	return t.String()
}

// RegTileRow is one (kernel, micro-tile) measurement.
type RegTileRow struct {
	Kernel   string
	R        int64
	GFLOPS   float64
	PowerW   float64
	PPW      float64
	Speedup  float64 // vs r=1 with the same tiles
	Feasible bool
}

// RegTileResult is the register micro-tiling extension study: throughput
// rises steeply at moderate r (the SM-local pipe bottleneck of
// PPCG-generated code is relieved), then collapses when the accumulator
// footprint cuts occupancy — quantifying the gap between PPCG code and
// vendor libraries (Table IV).
type RegTileResult struct {
	GPU  string
	Rows []RegTileRow
}

// RegTileStudy sweeps micro-tile sizes over BLAS3-class kernels.
func RegTileStudy(g *arch.GPU, kernels []string, rs []int64) *RegTileResult {
	if kernels == nil {
		kernels = []string{"gemm", "2mm", "syrk"}
	}
	if rs == nil {
		rs = []int64{2, 4, 8}
	}
	out := &RegTileResult{GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		params := ParamsFor(name, g)
		// Tiles wide enough along both mapped dims to host micro-tiles.
		tiles := map[string]int64{}
		for _, ln := range loopNamesOf(k) {
			tiles[ln] = 64
		}
		tiles["k"] = 16
		cfg := eatss.RunConfig{Params: params, UseShared: true, Precision: eatss.FP64}
		base, err := eatss.Run(k, g, tiles, cfg)
		if err != nil {
			continue
		}
		out.Rows = append(out.Rows, RegTileRow{
			Kernel: name, R: 1, GFLOPS: base.GFLOPS, PowerW: base.AvgPowerW,
			PPW: base.PPW, Speedup: 1, Feasible: true,
		})
		for _, r := range rs {
			row := RegTileRow{Kernel: name, R: r}
			rcfg := cfg
			rcfg.RegTile = r
			res, err := eatss.Run(k, g, tiles, rcfg)
			if err == nil {
				row.Feasible = true
				row.GFLOPS = res.GFLOPS
				row.PowerW = res.AvgPowerW
				row.PPW = res.PPW
				row.Speedup = base.TimeSec / res.TimeSec
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func loopNamesOf(k *affine.Kernel) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range k.Nests {
		for _, l := range n.Loops {
			if !seen[l.Name] {
				seen[l.Name] = true
				out = append(out, l.Name)
			}
		}
	}
	return out
}

// RowsForKernel returns the sweep rows of one kernel.
func (f *RegTileResult) RowsForKernel(kernel string) []RegTileRow {
	var out []RegTileRow
	for _, r := range f.Rows {
		if r.Kernel == kernel {
			out = append(out, r)
		}
	}
	return out
}

// Render prints the study.
func (f *RegTileResult) Render() string {
	t := NewTable("Extension: register micro-tiles on BLAS3 kernels ("+f.GPU+")",
		"kernel", "r", "GFLOP/s", "power (W)", "PPW", "speedup vs r=1")
	for _, r := range f.Rows {
		if !r.Feasible {
			t.AddRow(r.Kernel, r.R, "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(r.Kernel, r.R, r.GFLOPS, r.PowerW, r.PPW, r.Speedup)
	}
	return t.String()
}

// PrecisionRow compares the model's precision awareness on one kernel.
type PrecisionRow struct {
	Kernel string
	// FP64 run with FP64-model tiles.
	FP64GF, FP64PPW float64
	// FP32 run with FP32-model tiles (the adapted model).
	FP32GF, FP32PPW float64
	// FP32 run with FP64-model tiles (ablating the adaptation).
	CrossGF, CrossPPW    float64
	FP64Tiles, FP32Tiles string
}

// PrecisionStudy exercises Sec. IV-I: the model adapts its register and
// capacity budgets to the floating-point width. Running FP32 with the
// FP32-adapted tiles must match or beat running FP32 with tiles chosen by
// the FP64 model (the adaptation ablation), and FP32 throughput roughly
// doubles FP64's.
func PrecisionStudy(g *arch.GPU, kernels []string) *AblationResult {
	if kernels == nil {
		kernels = []string{"gemm", "2mm", "covariance"}
	}
	out := &AblationResult{Name: "precision adaptation (Sec. IV-I)", GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		params := ParamsFor(name, g)

		solve := func(prec affine.Precision) (map[string]int64, bool) {
			for _, wf := range []float64{0.5, 0.25, 0.125} {
				opts := core.Options{SplitFactor: 0.5, WarpFraction: wf,
					Precision: prec, ProblemSizeAware: true}
				if sel, err := core.SelectTiles(k.WithParams(params), g, opts); err == nil {
					return sel.Tiles, true
				}
			}
			return nil, false
		}
		t64, ok64 := solve(affine.FP64)
		t32, ok32 := solve(affine.FP32)
		if !ok64 || !ok32 {
			continue
		}
		run := func(tiles map[string]int64, prec affine.Precision, label string) {
			res, err := eatss.Run(k, g, tiles, eatss.RunConfig{
				Params: params, UseShared: true, Precision: prec,
			})
			if err != nil {
				return
			}
			out.Rows = append(out.Rows, AblationRow{
				Kernel: name, Variant: label, Tiles: tilesString(tiles),
				GFLOPS: res.GFLOPS, EnergyJ: res.EnergyJ, PPW: res.PPW,
			})
		}
		run(t64, affine.FP64, "FP64 tiles @ FP64")
		run(t32, affine.FP32, "FP32 tiles @ FP32")
		run(t64, affine.FP32, "FP64 tiles @ FP32 (no adaptation)")
	}
	return out
}
