package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// The benchmark regression guard: every BENCH_*.json run is appended to
// a BENCH_history.jsonl trajectory, and new runs are compared against
// the median of their comparable predecessors. "Comparable" is strict —
// same report file, kernel, GPU, point count, GOMAXPROCS and host — so
// a fresh CI runner starts its own trajectory (and passes trivially)
// instead of flagging machine-speed differences as regressions.

// HistoryEntry is one benchmark run in BENCH_history.jsonl.
type HistoryEntry struct {
	// File is the report's base name (e.g. "BENCH_sweep.json").
	File       string `json:"file"`
	Kernel     string `json:"kernel"`
	GPU        string `json:"gpu"`
	Points     int64  `json:"points"`
	GOMAXPROCS int64  `json:"gomaxprocs"`
	Host       string `json:"host,omitempty"`
	GitCommit  string `json:"git_commit,omitempty"`
	RecordedAt string `json:"recorded_at"`
	// Metrics holds every numeric field of the report. Only the guarded
	// suffixes (see metricDirection) participate in regression checks.
	Metrics map[string]float64 `json:"metrics"`
}

// key identifies the trajectory an entry belongs to.
func (e HistoryEntry) key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%s", e.File, e.Kernel, e.GPU, e.Points, e.GOMAXPROCS, e.Host)
}

// metricDirection says whether a guarded metric regresses by going up
// (+1: lower is better) or down (-1: higher is better). The direction
// is read from the name's unit suffix — latencies (_ms, _per_point_us)
// regress upward, rates (_per_sec) regress downward — so new reports
// opt into gating just by naming their metrics conventionally. The
// static pre-filter's prune_rate also gates: pruning fewer points than
// history means the feasibility analysis got weaker. Unlisted metrics
// are recorded in the history but never gate.
func metricDirection(name string) int {
	switch {
	case strings.HasSuffix(name, "_per_point_us"), strings.HasSuffix(name, "_ms"):
		return +1
	case strings.HasSuffix(name, "_per_sec"):
		return -1
	case name == "speedup", name == "prune_rate":
		return -1
	}
	return 0
}

// GuardedMetric reports whether a metric name participates in
// regression gating.
func GuardedMetric(name string) bool { return metricDirection(name) != 0 }

// Regression is one guarded metric that moved past the noise threshold.
type Regression struct {
	File     string
	Metric   string
	Baseline float64 // median of comparable history
	Current  float64
	// Ratio is current/baseline for lower-is-better metrics and
	// baseline/current for higher-is-better ones: always > 1+tol when
	// reported.
	Ratio   float64
	Samples int // history entries behind the baseline
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.1f%% (baseline %.4g over %d run(s), now %.4g)",
		r.File, r.Metric, 100*(r.Ratio-1), r.Baseline, r.Samples, r.Current)
}

// EntryFromReport converts one BENCH_*.json document into a history
// entry: identity fields are lifted from the well-known keys, every
// top-level numeric field becomes a metric.
func EntryFromReport(path string, raw []byte) (HistoryEntry, error) {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return HistoryEntry{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	str := func(key string) string {
		s, _ := doc[key].(string)
		return s
	}
	num := func(key string) float64 {
		f, _ := doc[key].(float64)
		return f
	}
	e := HistoryEntry{
		File:       filepath.Base(path),
		Kernel:     str("kernel"),
		GPU:        str("gpu"),
		Points:     int64(num("points")),
		GOMAXPROCS: int64(num("gomaxprocs")),
		Host:       str("host"),
		GitCommit:  str("git_commit"),
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Metrics:    map[string]float64{},
	}
	for k, v := range doc {
		if f, ok := v.(float64); ok {
			e.Metrics[k] = f
		}
	}
	return e, nil
}

// ReadHistory loads a BENCH_history.jsonl trajectory. A missing file is
// an empty history, not an error. Unparseable lines are skipped: the
// history is append-only telemetry, one corrupt line must not brick the
// gate.
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// AppendHistory appends one entry to the trajectory file.
func AppendHistory(path string, e HistoryEntry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	buf = append(buf, '\n')
	_, err = f.Write(buf)
	return err
}

// baselineWindow bounds how much history feeds the baseline: the
// median is taken over the most recent runs only, so the gate tracks
// the trajectory (including machine-speed drift on a shared box)
// instead of judging today's run against conditions from weeks ago.
const baselineWindow = 8

// Guard compares a new run against the median of its recent comparable
// history (the last baselineWindow runs) and returns every guarded
// metric that regressed beyond tol (relative; 0.15 means "15% worse
// than baseline fails"). An entry with no comparable history passes
// trivially — the first run on a machine starts the trajectory it will
// be judged against.
func Guard(history []HistoryEntry, e HistoryEntry, tol float64) []Regression {
	var comparable []HistoryEntry
	for _, h := range history {
		if h.key() == e.key() {
			comparable = append(comparable, h)
		}
	}
	if len(comparable) == 0 {
		return nil
	}
	if len(comparable) > baselineWindow {
		comparable = comparable[len(comparable)-baselineWindow:]
	}
	var regs []Regression
	names := make([]string, 0, len(e.Metrics))
	for name := range e.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dir := metricDirection(name)
		if dir == 0 {
			continue
		}
		cur := e.Metrics[name]
		var samples []float64
		for _, h := range comparable {
			if v, ok := h.Metrics[name]; ok && v > 0 {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 || cur <= 0 {
			continue
		}
		base := median(samples)
		var ratio float64
		if dir > 0 {
			ratio = cur / base // lower is better: worse when > 1
		} else {
			ratio = base / cur // higher is better: worse when > 1
		}
		if ratio > 1+tol {
			regs = append(regs, Regression{
				File: e.File, Metric: name,
				Baseline: base, Current: cur,
				Ratio: ratio, Samples: len(samples),
			})
		}
	}
	return regs
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}
