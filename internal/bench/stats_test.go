package bench

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median sorted its input in place")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero-variance input should give r=0")
	}
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("mismatched lengths should give r=0")
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	type pair struct{ Xs, Ys []float64 }
	gen := func(r *rand.Rand) pair {
		n := 3 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			ys[i] = r.NormFloat64()*5 + 0.3*xs[i]
		}
		return pair{xs, ys}
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := gen(r)
		a := Pearson(p.Xs, p.Ys)
		b := Pearson(p.Ys, p.Xs)
		if math.Abs(a-b) > 1e-9 {
			return false
		}
		return a >= -1-1e-9 && a <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median lies within [min, max] and at least half the
// samples are <= it.
func TestMedianProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		lo, hi := xs[0], xs[0]
		le := 0
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if x <= m {
				le++
			}
		}
		return m >= lo && m <= hi && 2*le >= len(xs)
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(vals []reflect.Value, r *rand.Rand) {
		n := r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		vals[0] = reflect.ValueOf(xs)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	// Uniform data over [0,1): FD width = 2*0.5/n^(1/3).
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n)
	}
	bins := FreedmanDiaconisBins(xs)
	if bins < 5 || bins > 20 {
		t.Fatalf("FD bins = %d for uniform(0,1) n=1000, want ~10", bins)
	}
	if FreedmanDiaconisBins([]float64{1}) != 1 {
		t.Fatal("single sample should give 1 bin")
	}
	if FreedmanDiaconisBins([]float64{2, 2, 2, 2}) != 1 {
		t.Fatal("constant data should give 1 bin")
	}
}

func TestHistogram2D(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram2D(xs, ys)
	total := 0
	for _, row := range h.Counts {
		for _, c := range row {
			total += c
		}
	}
	if total != len(xs) {
		t.Fatalf("histogram holds %d samples, want %d", total, len(xs))
	}
	if h.XMin != 0 || h.XMax != 9 {
		t.Fatalf("x range [%g, %g]", h.XMin, h.XMax)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := IQR(xs)
	if got < 3 || got > 4 {
		t.Fatalf("IQR = %g, want ~3.5", got)
	}
	if IQR([]float64{1, 2}) != 0 {
		t.Fatal("tiny samples should give IQR 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %g, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("nonpositive input should give 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("x", 1.5)
	tab.AddRow("yy", 12345.678)
	s := tab.String()
	for _, want := range []string{"demo", "a", "yy", "12346", "1.50"} {
		if !contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCSVWriters(t *testing.T) {
	g := arch.GA100()
	var buf strings.Builder

	f1 := Fig1(g, []int64{1000, 2000})
	if err := f1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "n,const_static_w") {
		t.Fatalf("fig1 csv header wrong:\n%s", buf.String())
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n")
	if lines != 2 {
		t.Fatalf("fig1 csv rows = %d, want 2", lines)
	}

	buf.Reset()
	f9 := Fig9(g, []string{"mvt"})
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mvt,") {
		t.Fatalf("fig9 csv missing data:\n%s", buf.String())
	}
}
