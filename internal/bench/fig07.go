package bench

import (
	"repro/internal/affine"
	"repro/internal/arch"
)

// Fig7Row is one Polybench kernel's comparison on one GPU: the paper's
// left-hand tables of Fig. 7 (Med PPCG / Def PPCG / Best PPCG vs EATSS)
// for performance, energy and performance-per-Watt.
type Fig7Row struct {
	Kernel string

	MedPPCGGF, DefPPCGGF, BestPPCGGF float64
	MedPPCGJ, DefPPCGJ, BestPPCGJ    float64 // best = lowest energy
	MedPPCGPPW, DefPPCGPPW, BestPPW  float64

	EATSSGF, EATSSJ, EATSSPPW float64
	EATSSSharedFrac           float64
	EATSSTiles                string

	// Ratios vs the default configuration.
	PerfRatio, EnergyRatio, PPWRatio float64
}

// Fig7Result reproduces Fig. 7a (GA100) or Fig. 7b (Xavier): the full
// Polybench evaluation. The headline statistic is the median PPW
// improvement over default PPCG (paper: ~1.5x on the GA100, ~1.2x on the
// Xavier).
type Fig7Result struct {
	GPU          string
	Rows         []Fig7Row
	MedianPPWX   float64
	MedianPerfX  float64
	MedianEnergy float64 // median energy ratio (lower is better)
}

// Fig7 runs the study for the given kernels (nil = all Polybench).
func Fig7(g *arch.GPU, kernels []string) *Fig7Result {
	if kernels == nil {
		kernels = affine.PolybenchNames()
	}
	out := &Fig7Result{GPU: g.Name}
	var ppwXs, perfXs, enXs []float64
	for _, name := range kernels {
		params := ParamsFor(name, g)
		variants, def := Explore(name, g, params, true, false)
		if len(variants) == 0 || def.TimeSec == 0 {
			continue
		}
		best, err := RunEATSS(name, g, params)
		if err != nil {
			continue
		}
		e := best.Chosen.Result

		row := Fig7Row{
			Kernel:          name,
			MedPPCGGF:       Median(perfOf(variants)),
			DefPPCGGF:       def.GFLOPS,
			BestPPCGGF:      bestBy(variants, func(v Variant) float64 { return v.Result.GFLOPS }, true).Result.GFLOPS,
			MedPPCGJ:        Median(energyOf(variants)),
			DefPPCGJ:        def.EnergyJ,
			BestPPCGJ:       bestBy(variants, func(v Variant) float64 { return v.Result.EnergyJ }, false).Result.EnergyJ,
			MedPPCGPPW:      Median(ppwOf(variants)),
			DefPPCGPPW:      def.PPW,
			BestPPW:         bestBy(variants, func(v Variant) float64 { return v.Result.PPW }, true).Result.PPW,
			EATSSGF:         e.GFLOPS,
			EATSSJ:          e.EnergyJ,
			EATSSPPW:        e.PPW,
			EATSSSharedFrac: best.Chosen.SharedFrac,
			EATSSTiles:      tilesString(best.Chosen.Selection.Tiles),
			PerfRatio:       e.GFLOPS / def.GFLOPS,
			EnergyRatio:     e.EnergyJ / def.EnergyJ,
			PPWRatio:        e.PPW / def.PPW,
		}
		out.Rows = append(out.Rows, row)
		ppwXs = append(ppwXs, row.PPWRatio)
		perfXs = append(perfXs, row.PerfRatio)
		enXs = append(enXs, row.EnergyRatio)
	}
	out.MedianPPWX = Median(ppwXs)
	out.MedianPerfX = Median(perfXs)
	out.MedianEnergy = Median(enXs)
	return out
}

// Render prints the Fig. 7 tables.
func (f *Fig7Result) Render() string {
	t := NewTable("Fig. 7: Polybench on "+f.GPU+" (FP64)",
		"kernel", "MedPPCG GF", "DefPPCG GF", "BestPPCG GF", "EATSS GF",
		"DefPPCG J", "EATSS J", "DefPPCG PPW", "EATSS PPW", "PPWx", "tiles", "shmem")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.MedPPCGGF, r.DefPPCGGF, r.BestPPCGGF, r.EATSSGF,
			r.DefPPCGJ, r.EATSSJ, r.DefPPCGPPW, r.EATSSPPW, r.PPWRatio,
			r.EATSSTiles, r.EATSSSharedFrac)
	}
	s := t.String()
	sum := NewTable("summary", "metric", "median ratio (EATSS / default PPCG)")
	sum.AddRow("performance", f.MedianPerfX)
	sum.AddRow("energy (lower better)", f.MedianEnergy)
	sum.AddRow("performance-per-Watt", f.MedianPPWX)
	return s + sum.String()
}
