package bench

import (
	"context"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/sweep"
)

// Fig7Row is one Polybench kernel's comparison on one GPU: the paper's
// left-hand tables of Fig. 7 (Med PPCG / Def PPCG / Best PPCG vs EATSS)
// for performance, energy and performance-per-Watt.
type Fig7Row struct {
	Kernel string

	MedPPCGGF, DefPPCGGF, BestPPCGGF float64
	MedPPCGJ, DefPPCGJ, BestPPCGJ    float64 // best = lowest energy
	MedPPCGPPW, DefPPCGPPW, BestPPW  float64

	EATSSGF, EATSSJ, EATSSPPW float64
	EATSSSharedFrac           float64
	EATSSTiles                string

	// Ratios vs the default configuration.
	PerfRatio, EnergyRatio, PPWRatio float64
}

// Fig7Result reproduces Fig. 7a (GA100) or Fig. 7b (Xavier): the full
// Polybench evaluation. The headline statistic is the median PPW
// improvement over default PPCG (paper: ~1.5x on the GA100, ~1.2x on the
// Xavier).
type Fig7Result struct {
	GPU          string
	Rows         []Fig7Row
	MedianPPWX   float64
	MedianPerfX  float64
	MedianEnergy float64 // median energy ratio (lower is better)
}

// Fig7 runs the study for the given kernels (nil = all Polybench). Each
// kernel's full pipeline (tile-space sweep + EATSS protocol) is
// independent of the others', so kernels fan out across the worker pool;
// rows and the median summaries keep the input kernel order, making the
// parallel figure identical to the sequential one.
func Fig7(g *arch.GPU, kernels []string) *Fig7Result {
	if kernels == nil {
		kernels = affine.PolybenchNames()
	}
	out := &Fig7Result{GPU: g.Name}
	var ppwXs, perfXs, enXs []float64
	type fig7Out struct {
		row Fig7Row
		ok  bool
	}
	results, doneIdx, _ := sweep.Map(context.Background(), Workers, kernels,
		func(_ context.Context, _ int, name string) fig7Out {
			params := ParamsFor(name, g)
			variants, def := Explore(name, g, params, true, false)
			if len(variants) == 0 || def.TimeSec == 0 {
				return fig7Out{}
			}
			best, err := RunEATSS(name, g, params)
			if err != nil {
				return fig7Out{}
			}
			return fig7Out{row: fig7Row(name, variants, def, best), ok: true}
		})
	for i, r := range results {
		if !doneIdx[i] || !r.ok {
			continue
		}
		out.Rows = append(out.Rows, r.row)
		ppwXs = append(ppwXs, r.row.PPWRatio)
		perfXs = append(perfXs, r.row.PerfRatio)
		enXs = append(enXs, r.row.EnergyRatio)
	}
	out.MedianPPWX = Median(ppwXs)
	out.MedianPerfX = Median(perfXs)
	out.MedianEnergy = Median(enXs)
	return out
}

// fig7Row assembles one kernel's comparison row from its sweep and
// EATSS outcomes.
func fig7Row(name string, variants []Variant, def eatss.Result, best *eatss.Best) Fig7Row {
	e := best.Chosen.Result
	return Fig7Row{
		Kernel:          name,
		MedPPCGGF:       Median(perfOf(variants)),
		DefPPCGGF:       def.GFLOPS,
		BestPPCGGF:      bestBy(variants, func(v Variant) float64 { return v.Result.GFLOPS }, true).Result.GFLOPS,
		MedPPCGJ:        Median(energyOf(variants)),
		DefPPCGJ:        def.EnergyJ,
		BestPPCGJ:       bestBy(variants, func(v Variant) float64 { return v.Result.EnergyJ }, false).Result.EnergyJ,
		MedPPCGPPW:      Median(ppwOf(variants)),
		DefPPCGPPW:      def.PPW,
		BestPPW:         bestBy(variants, func(v Variant) float64 { return v.Result.PPW }, true).Result.PPW,
		EATSSGF:         e.GFLOPS,
		EATSSJ:          e.EnergyJ,
		EATSSPPW:        e.PPW,
		EATSSSharedFrac: best.Chosen.SharedFrac,
		EATSSTiles:      tilesString(best.Chosen.Selection.Tiles),
		PerfRatio:       e.GFLOPS / def.GFLOPS,
		EnergyRatio:     e.EnergyJ / def.EnergyJ,
		PPWRatio:        e.PPW / def.PPW,
	}
}

// Render prints the Fig. 7 tables.
func (f *Fig7Result) Render() string {
	t := NewTable("Fig. 7: Polybench on "+f.GPU+" (FP64)",
		"kernel", "MedPPCG GF", "DefPPCG GF", "BestPPCG GF", "EATSS GF",
		"DefPPCG J", "EATSS J", "DefPPCG PPW", "EATSS PPW", "PPWx", "tiles", "shmem")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.MedPPCGGF, r.DefPPCGGF, r.BestPPCGGF, r.EATSSGF,
			r.DefPPCGJ, r.EATSSJ, r.DefPPCGPPW, r.EATSSPPW, r.PPWRatio,
			r.EATSSTiles, r.EATSSSharedFrac)
	}
	s := t.String()
	sum := NewTable("summary", "metric", "median ratio (EATSS / default PPCG)")
	sum.AddRow("performance", f.MedianPerfX)
	sum.AddRow("energy (lower better)", f.MedianEnergy)
	sum.AddRow("performance-per-Watt", f.MedianPPWX)
	return s + sum.String()
}
