package bench

import (
	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/autotune"
	"repro/internal/ppcg"
)

// Fig14Row is one kernel's EATSS-vs-ytopt comparison.
type Fig14Row struct {
	Kernel string
	// Speedup is EATSS time advantage over the ytopt-tuned binary
	// (> 1 means EATSS is faster).
	Speedup float64
	// EnergyNorm is EATSS energy normalized to ytopt's (< 1 is better).
	EnergyNorm float64
	// YtoptTuneSec / EATSSTuneSec compare search costs: the paper
	// observes ~17 minutes of Bayesian tuning vs seconds for EATSS.
	YtoptTuneSec float64
	EATSSTuneSec float64
	YtoptGF      float64
	EATSSGF      float64
}

// Fig14Result reproduces Fig. 14 and Sec. V-H: EATSS against the ytopt
// autotuner on the A100. ytopt's OpenMP-offload code generation costs it
// throughput relative to PPCG's CUDA, and its Bayesian search costs
// minutes of tuning.
type Fig14Result struct {
	GPU  string
	Rows []Fig14Row
}

// Fig14 runs the comparison on g (nil = GA100/A100, as in the paper).
func Fig14(g *arch.GPU, kernels []string) *Fig14Result {
	if g == nil {
		g = arch.GA100()
	}
	if kernels == nil {
		kernels = []string{"2mm", "gemm", "heat-3d", "mttkrp"}
	}
	out := &Fig14Result{GPU: g.Name}
	for _, name := range kernels {
		k := affine.MustLookup(name)
		params := ParamsFor(name, g)
		kk := k.WithParams(params)

		space := ppcg.Space(kk, SpaceSizesFor(kk.MaxDepth(), false))
		cfg := autotune.DefaultConfig()
		tuned := autotune.Tune(kk, g, space, cfg)
		if tuned.Best.Result.TimeSec == 0 {
			continue
		}

		best, err := RunEATSS(name, g, params)
		if err != nil {
			continue
		}
		e := best.Chosen.Result
		out.Rows = append(out.Rows, Fig14Row{
			Kernel:       name,
			Speedup:      tuned.Best.Result.TimeSec / e.TimeSec,
			EnergyNorm:   e.EnergyJ / tuned.Best.Result.EnergyJ,
			YtoptTuneSec: tuned.TuningTimeSec,
			EATSSTuneSec: best.Chosen.Selection.SolveTime.Seconds() * float64(len(best.Candidates)),
			YtoptGF:      tuned.Best.Result.GFLOPS,
			EATSSGF:      e.GFLOPS,
		})
	}
	return out
}

// Render prints the autotuner comparison.
func (f *Fig14Result) Render() string {
	t := NewTable("Fig. 14 / Sec. V-H: EATSS vs ytopt ("+f.GPU+")",
		"kernel", "ytopt GF", "EATSS GF", "speedup (>1 better)",
		"energy (<1 better)", "ytopt tune (s)", "EATSS tune (s)")
	for _, r := range f.Rows {
		t.AddRow(r.Kernel, r.YtoptGF, r.EATSSGF, r.Speedup, r.EnergyNorm,
			r.YtoptTuneSec, r.EATSSTuneSec)
	}
	return t.String()
}
