package bench

import (
	"time"

	eatss "repro"

	"repro/internal/affine"
	"repro/internal/arch"
)

// SecVGRow aggregates solver effort for one loop-depth class.
type SecVGRow struct {
	Depth       int
	Kernels     int
	AvgTime     time.Duration
	AvgCalls    float64
	MaxTime     time.Duration
	TotalModels int
}

// SecVGResult reproduces Sec. V-G: the compile-time overhead of the
// solver-driven iterative scheme, grouped by maximum kernel loop depth.
// The paper reports 1.1s / 1.4s / 1.4s / 2.2s for 2D/3D/4D/5D kernels
// with Z3; the finite-domain solver here is orders of magnitude faster,
// but the per-depth growth and the small solver-call counts (4–7 calls
// on average) are the reproducible shape.
type SecVGResult struct {
	GPU  string
	Rows []SecVGRow
	// OverallAvgCalls is the mean number of solver calls per EATSS run.
	OverallAvgCalls float64
	// OverallAvgTime is the mean end-to-end selection time.
	OverallAvgTime time.Duration
}

// SecVG measures solver overhead across the catalog on g.
func SecVG(g *arch.GPU) *SecVGResult {
	type acc struct {
		n     int
		calls int
		total time.Duration
		max   time.Duration
	}
	byDepth := map[int]*acc{}
	totalCalls, totalRuns := 0, 0
	var totalTime time.Duration

	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		var sel *eatss.Selection
		for _, wf := range eatss.WarpFractions {
			opts := eatss.Options{SplitFactor: 0.5, WarpFraction: wf,
				Precision: eatss.FP64, ProblemSizeAware: true}
			if s, err := eatss.SelectTiles(k, g, opts); err == nil {
				sel = s
				break
			}
		}
		if sel == nil {
			continue
		}
		d := k.MaxDepth()
		a, ok := byDepth[d]
		if !ok {
			a = &acc{}
			byDepth[d] = a
		}
		a.n++
		a.calls += sel.SolverCalls
		a.total += sel.SolveTime
		if sel.SolveTime > a.max {
			a.max = sel.SolveTime
		}
		totalCalls += sel.SolverCalls
		totalRuns++
		totalTime += sel.SolveTime
	}

	out := &SecVGResult{GPU: g.Name}
	for d := 1; d <= 8; d++ {
		a, ok := byDepth[d]
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, SecVGRow{
			Depth:       d,
			Kernels:     a.n,
			AvgTime:     a.total / time.Duration(a.n),
			AvgCalls:    float64(a.calls) / float64(a.n),
			MaxTime:     a.max,
			TotalModels: a.n,
		})
	}
	if totalRuns > 0 {
		out.OverallAvgCalls = float64(totalCalls) / float64(totalRuns)
		out.OverallAvgTime = totalTime / time.Duration(totalRuns)
	}
	return out
}

// Render prints the overhead table.
func (f *SecVGResult) Render() string {
	t := NewTable("Sec. V-G: solver overhead by kernel loop depth ("+f.GPU+")",
		"depth", "kernels", "avg solver calls", "avg solve time", "max solve time")
	for _, r := range f.Rows {
		t.AddRow(r.Depth, r.Kernels, r.AvgCalls,
			r.AvgTime.Round(time.Microsecond).String(),
			r.MaxTime.Round(time.Microsecond).String())
	}
	s := t.String()
	sum := NewTable("overall", "metric", "value")
	sum.AddRow("avg solver calls per run", f.OverallAvgCalls)
	sum.AddRow("avg end-to-end time", f.OverallAvgTime.Round(time.Microsecond).String())
	return s + sum.String()
}
