// Package cli is the shared plumbing of the repro commands: consistent
// usage text, structured logging, fatal-error handling with
// flight-recorder dumps, and the -listen live-introspection server.
// Every cmd/* main wires through it so diagnostics behave identically
// across tools (errors on stderr, non-zero exits, flag.Usage naming
// every flag).
package cli

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/serve"
)

// tool is the command name used to prefix diagnostics; set by SetUsage.
var tool = "eatss"

// Logger is the shared structured logger: text records on stderr,
// tagged with the active obs span and mirrored into the flight
// recorder. Level defaults to Info; Verbose lowers it to Debug.
var Logger = obs.NewLogger(os.Stderr, logLevel)

var logLevel = new(slog.LevelVar)

// Verbose switches the shared logger to Debug level.
func Verbose() { logLevel.Set(slog.LevelDebug) }

// SetUsage names the tool and installs a flag.Usage that prints the
// summary, the examples, and every registered flag with its default.
// Call it after defining flags and before flag.Parse.
func SetUsage(name, summary string, examples ...string) {
	tool = name
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "%s — %s\n\nusage: %s [flags]\n", name, summary, name)
		if len(examples) > 0 {
			fmt.Fprintf(w, "\nexamples:\n")
			for _, ex := range examples {
				fmt.Fprintf(w, "  %s\n", ex)
			}
		}
		fmt.Fprintf(w, "\nflags:\n")
		flag.PrintDefaults()
	}
}

// Fatal reports err on stderr through the shared logger and exits 1.
// When the flight recorder is capturing, its ring is dumped to
// <tool>-flight.json first, so the events leading up to the failure
// survive the exit.
func Fatal(err error) {
	Logger.Error(err.Error(), "tool", tool)
	dumpFlight("error")
	os.Exit(1)
}

// Fatalf is Fatal with a format string.
func Fatalf(format string, args ...any) {
	Fatal(fmt.Errorf(format, args...))
}

// ListenFlag registers the shared -listen flag and returns its value
// pointer. Pass the result to Serve after flag.Parse.
func ListenFlag() *string {
	return flag.String("listen", "",
		"serve live introspection on this address (e.g. 127.0.0.1:8080 or :0): /metrics /progress /trace /flight /debug/pprof")
}

// Serve enables the observability layer and flight recorder and starts
// the introspection HTTP server when addr is non-empty. It also
// installs a SIGINT/SIGTERM handler that dumps the flight recorder
// before the process dies, so interrupted long runs leave evidence.
// The returned stop function closes the server (nil-safe to call when
// addr was empty).
func Serve(addr string) (stop func()) {
	if addr == "" {
		return func() {}
	}
	obs.Enable()
	flight.Default.Enable()
	srv, err := serve.Start(addr)
	if err != nil {
		Fatal(err)
	}
	Logger.Info("introspection server listening", "tool", tool, "addr", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		Logger.Warn("interrupted, dumping flight recorder", "tool", tool, "signal", s.String())
		dumpFlight(s.String())
		shutdown(srv)
		os.Exit(130)
	}()

	return func() {
		signal.Stop(sig)
		close(sig)
		shutdown(srv)
	}
}

// shutdown drains the introspection server gracefully — an in-flight
// /metrics scrape or /trace download finishes — and falls back to an
// immediate Close when the drain does not complete in time.
func shutdown(srv *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
}

// dumpFlight writes the flight-recorder ring to <tool>-flight.json when
// the recorder is capturing. Best-effort: dump failures are reported
// but never mask the original error path.
func dumpFlight(reason string) {
	if !flight.Default.Enabled() || flight.Default.Len() == 0 {
		return
	}
	path := tool + "-flight.json"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: flight dump: %v\n", tool, err)
		return
	}
	defer f.Close()
	if err := flight.Default.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: flight dump: %v\n", tool, err)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: flight recorder dumped to %s (%s)\n", tool, path, reason)
}
