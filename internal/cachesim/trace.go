package cachesim

import (
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/obs"
)

// Telemetry: exact hit/miss totals from the trace-driven oracle, so an
// enabled run reports real (not modeled) L1/L2 hit rates.
var (
	mReplays  = obs.NewCounter("cachesim.replays")
	mL1Hits   = obs.NewCounter("cachesim.l1_hits")
	mL1Misses = obs.NewCounter("cachesim.l1_misses")
	mL2Hits   = obs.NewCounter("cachesim.l2_hits")
	mL2Misses = obs.NewCounter("cachesim.l2_misses")
)

// TraceResult summarizes the replay of one thread block.
type TraceResult struct {
	// L1 is the per-block cache's statistics.
	L1 Stats
	// L2ReadBytes is the L1 miss traffic (line granularity) — the exact
	// counterpart of the analytic model's per-block L2 read bytes.
	L2ReadBytes int64
	// WritebackBytes is dirty-line traffic toward L2.
	WritebackBytes int64
	// StagingBytes is the global->shared cooperative load volume (shared
	// references bypass the L1 trace).
	StagingBytes int64
	// Accesses counts line-granular L1 accesses replayed.
	Accesses int64
	// Points is the number of iteration points executed by the block.
	Points int64
	// Arrays is the exact per-array split of the replayed activity, in
	// sorted array-name order — the trace-driven counterpart of the
	// analytic model's Traffic.Arrays attribution (and the oracle the
	// profile layer's shares can be validated against).
	Arrays []ArrayStats
}

// ArrayStats is one array's exact share of a block replay.
type ArrayStats struct {
	Array    string
	Accesses int64
	Hits     int64
	Misses   int64
	// L2ReadBytes is the array's L1 miss traffic at line granularity.
	L2ReadBytes int64
	// StagingBytes is the array's global->shared staging volume (shared
	// arrays only; they bypass the L1 trace).
	StagingBytes int64
}

// arrayLayout holds the virtual base address and dimension strides of one
// array, derived from the extents its references can reach.
type arrayLayout struct {
	base    int64
	dims    []int64 // per-dimension extent
	strides []int64 // element strides, innermost = 1
}

// SimulateBlock replays the central thread block of a mapped nest through
// an L1 cache with the given geometry and returns exact traffic counts.
// Shared-memory references are accounted as staging volume (they do not
// transit the L1); register-resident accumulators are replayed like any
// other reference and stay hot in the cache.
//
// Intended for small problem instances: the trace length is
// points-per-block x references, warp-coalesced.
func SimulateBlock(m *codegen.MappedNest, l1 Config) (TraceResult, error) {
	if err := l1.Validate(); err != nil {
		return TraceResult{}, err
	}
	// Central block, no backing L2.
	blockIdx := int64(-1)
	res, err := simulateOneBlock(m, blockIdx, l1, nil)
	if err == nil {
		mReplays.Add(1)
		mL1Hits.Add(res.L1.Hits)
		mL1Misses.Add(res.L1.Misses)
	}
	return res, err
}

// simulateOneBlock replays one block (by linear index; negative means the
// central block) through a fresh L1, optionally backed by a shared L2.
func simulateOneBlock(m *codegen.MappedNest, linearBlock int64, l1 Config, l2 *Cache) (TraceResult, error) {
	var res TraceResult
	cache := New(l1, l2)

	layouts, err := layoutArrays(m)
	if err != nil {
		return res, err
	}

	// Geometry of the central block.
	type mappedDim struct {
		name    string
		origin  int64 // first iteration value of this block
		extent  int64 // loop extent (upper bound on values)
		block   int64 // threads along this dim
		coarsen int64
		tile    int64
	}
	dims := make([]mappedDim, len(m.MappedLoops))
	rem := linearBlock
	for i, name := range m.MappedLoops {
		l := m.Nest.Loops[m.Nest.LoopIndex(name)]
		lower := l.Lower.Eval(nil, m.Params)
		upper := l.Upper.Eval(nil, m.Params)
		tile := m.Tiles[name]
		blockIdx := m.GridDims[i] / 2
		if linearBlock >= 0 {
			blockIdx = rem % m.GridDims[i]
			rem /= m.GridDims[i]
		}
		dims[i] = mappedDim{
			name:    name,
			origin:  lower + blockIdx*tile,
			extent:  upper,
			block:   m.BlockDims[i],
			coarsen: m.Coarsen[i],
			tile:    tile,
		}
	}

	// Serial loops iterate their full ranges, tiled for staging.
	type serialDim struct {
		name   string
		lo, hi int64
		tile   int64
	}
	serial := make([]serialDim, len(m.SerialLoops))
	for i, name := range m.SerialLoops {
		l := m.Nest.Loops[m.Nest.LoopIndex(name)]
		serial[i] = serialDim{
			name: name,
			lo:   l.Lower.Eval(nil, m.Params),
			hi:   l.Upper.Eval(nil, m.Params),
			tile: m.Tiles[name],
		}
	}

	// Shared staging volume: stage extents per serial tile step.
	elemB := m.Precision.Bytes()
	steps := int64(1)
	for _, s := range serial {
		n := s.hi - s.lo
		steps *= (n + s.tile - 1) / s.tile
	}
	perArray := make(map[string]*ArrayStats)
	arrayStats := func(name string) *ArrayStats {
		as, ok := perArray[name]
		if !ok {
			as = &ArrayStats{Array: name}
			perArray[name] = as
		}
		return as
	}
	for _, a := range sharedArrays(m) {
		staged := m.ArrayStageElems(a) * steps * elemB
		res.StagingBytes += staged
		arrayStats(a).StagingBytes = staged
	}

	// Non-shared references, in statement order.
	type tracedRef struct {
		ref codegen.MappedRef
		lay *arrayLayout
	}
	var refs []tracedRef
	for _, mr := range m.Refs {
		if mr.Shared {
			continue
		}
		refs = append(refs, tracedRef{ref: mr, lay: layouts[mr.Ref.Array]})
	}

	warp := int64(32)
	threads := m.ThreadsPerBlock

	// Points executed by this block: in-bounds tile points times the
	// serial trip count.
	serialTotal := int64(1)
	for _, s := range serial {
		serialTotal *= s.hi - s.lo
	}
	tilePoints := int64(1)
	for _, d := range dims {
		span := d.tile
		if d.origin+span > d.extent {
			span = d.extent - d.origin
		}
		if span < 0 {
			span = 0
		}
		tilePoints *= span
	}
	res.Points = serialTotal * tilePoints

	// Iterate serial points in lexicographic order (odometer).
	iter := make(map[string]int64, len(serial)+len(dims))
	cur := make([]int64, len(serial))
	for i, s := range serial {
		cur[i] = s.lo
	}
	lineSeen := make(map[int64]bool, 64)

	for {
		for i, s := range serial {
			iter[s.name] = cur[i]
		}
		// All warps execute this serial point over their coarsen cycles.
		var coarsenTotal int64 = 1
		for _, d := range dims {
			coarsenTotal *= d.coarsen
		}
		for cycle := int64(0); cycle < coarsenTotal; cycle++ {
			// Decompose the coarsen cycle per dimension.
			cc := cycle
			cycleOff := make([]int64, len(dims))
			for i := range dims {
				cycleOff[i] = cc % dims[i].coarsen
				cc /= dims[i].coarsen
			}
			for w := int64(0); w < threads; w += warp {
				for _, tr := range refs {
					// Coalesce the warp's lane addresses into lines.
					for k := range lineSeen {
						delete(lineSeen, k)
					}
					lanes := warp
					if w+lanes > threads {
						lanes = threads - w
					}
					inBounds := false
					for l := int64(0); l < lanes; l++ {
						t := w + l
						// thread coords, x fastest
						tt := t
						oob := false
						for i, d := range dims {
							coord := tt % d.block
							tt /= d.block
							v := d.origin + cycleOff[i]*d.block + coord
							if v >= d.extent || v >= d.origin+d.tile {
								oob = true
								break
							}
							iter[d.name] = v
						}
						if oob {
							continue
						}
						inBounds = true
						addr := tr.lay.address(tr.ref, iter, elemB)
						lineSeen[addr/l1.LineBytes] = true
					}
					if !inBounds {
						continue
					}
					// Replay distinct lines, sorted for determinism.
					lines := make([]int64, 0, len(lineSeen))
					for la := range lineSeen {
						lines = append(lines, la)
					}
					sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
					h0, m0 := cache.Stats.Hits, cache.Stats.Misses
					for _, la := range lines {
						cache.Access(la*l1.LineBytes, tr.ref.Write)
						res.Accesses++
					}
					as := arrayStats(tr.ref.Ref.Array)
					as.Accesses += int64(len(lines))
					as.Hits += cache.Stats.Hits - h0
					as.Misses += cache.Stats.Misses - m0
				}
			}
		}

		// Odometer increment.
		i := len(cur) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < serial[i].hi {
				break
			}
			cur[i] = serial[i].lo
		}
		if i < 0 {
			break
		}
	}

	cache.Flush()
	res.L1 = cache.Stats
	res.L2ReadBytes = cache.Stats.Misses * l1.LineBytes
	res.WritebackBytes = cache.Stats.Writebacks * l1.LineBytes
	names := make([]string, 0, len(perArray))
	for n := range perArray {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		as := perArray[n]
		as.L2ReadBytes = as.Misses * l1.LineBytes
		res.Arrays = append(res.Arrays, *as)
	}
	return res, nil
}

// address computes the byte address of a reference under iterator values.
func (lay *arrayLayout) address(mr codegen.MappedRef, iter map[string]int64, elemB int64) int64 {
	off := int64(0)
	for p, sub := range mr.Ref.Subscripts {
		v := sub.Eval(iter, nil)
		if v < 0 {
			v = 0
		}
		if v >= lay.dims[p] {
			v = lay.dims[p] - 1
		}
		off += v * lay.strides[p]
	}
	return lay.base + off*elemB
}

// layoutArrays assigns base addresses and row-major strides to every array
// the nest references, inferring dimension extents from the ranges the
// subscripts can reach.
func layoutArrays(m *codegen.MappedNest) (map[string]*arrayLayout, error) {
	extents := map[string][]int64{}
	for _, mr := range m.Refs {
		dims := extents[mr.Ref.Array]
		for p, sub := range mr.Ref.Subscripts {
			// Maximum reachable value + 1: evaluate with every iterator
			// at its maximum (affine with non-negative coefficients in
			// all catalog kernels; negative offsets only shift).
			maxIter := map[string]int64{}
			for _, l := range m.Nest.Loops {
				hi := l.Upper.Eval(nil, m.Params) - 1
				if hi < 0 {
					hi = 0
				}
				maxIter[l.Name] = hi
			}
			v := sub.Eval(maxIter, nil) + 1
			if v < 1 {
				v = 1
			}
			for len(dims) <= p {
				dims = append(dims, 1)
			}
			if v > dims[p] {
				dims[p] = v
			}
		}
		extents[mr.Ref.Array] = dims
	}

	names := make([]string, 0, len(extents))
	for n := range extents {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make(map[string]*arrayLayout, len(names))
	base := int64(0)
	for _, n := range names {
		dims := extents[n]
		strides := make([]int64, len(dims))
		s := int64(1)
		for i := len(dims) - 1; i >= 0; i-- {
			strides[i] = s
			s *= dims[i]
		}
		out[n] = &arrayLayout{base: base, dims: dims, strides: strides}
		elems := s
		// Separate arrays by a guard gap, aligned to 4 KiB.
		size := elems * 8
		base += (size + 4095) / 4096 * 4096
		if base < 0 {
			return nil, fmt.Errorf("cachesim: address space overflow for %s", n)
		}
	}
	return out, nil
}

// sharedArrays lists distinct arrays staged in shared memory.
func sharedArrays(m *codegen.MappedNest) []string {
	set := map[string]bool{}
	for _, mr := range m.Refs {
		if mr.Shared {
			set[mr.Ref.Array] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// GridResult is the outcome of simulating several concurrent blocks that
// share an L2 cache.
type GridResult struct {
	Blocks int
	// PerBlock is each block's private-L1 statistics.
	PerBlock []TraceResult
	// L2 is the shared cache's statistics; its misses are DRAM traffic.
	L2 Stats
	// DRAMBytes is the L2 miss traffic at line granularity.
	DRAMBytes int64
}

// SimulateGrid replays `blocks` concurrently-resident thread blocks of m
// (chosen evenly across the grid), each through its own L1, all sharing
// one L2 — the cross-validation oracle for the analytic model's
// working-set-based L2 spill estimate. Blocks are interleaved at serial
// tile-step granularity, approximating how co-resident blocks share the
// L2 in time.
func SimulateGrid(m *codegen.MappedNest, blocks int, l1, l2 Config) (GridResult, error) {
	var out GridResult
	if err := l1.Validate(); err != nil {
		return out, err
	}
	if err := l2.Validate(); err != nil {
		return out, err
	}
	if blocks < 1 {
		blocks = 1
	}
	if int64(blocks) > m.TotalBlocks {
		blocks = int(m.TotalBlocks)
	}
	out.Blocks = blocks

	shared := New(l2, nil)
	// Run each block's full trace against a private L1 backed by the
	// shared L2. (True cycle-interleaving would require a scheduler; the
	// block-serial order gives a lower bound on sharing and an upper
	// bound on capacity pressure per block, adequate for validating the
	// analytic spill term.)
	for b := 0; b < blocks; b++ {
		res, err := simulateOneBlock(m, int64(b)*m.TotalBlocks/int64(blocks), l1, shared)
		if err != nil {
			return out, err
		}
		mReplays.Add(1)
		mL1Hits.Add(res.L1.Hits)
		mL1Misses.Add(res.L1.Misses)
		out.PerBlock = append(out.PerBlock, res)
	}
	out.L2 = shared.Stats
	out.DRAMBytes = shared.Stats.Misses * l2.LineBytes
	mL2Hits.Add(out.L2.Hits)
	mL2Misses.Add(out.L2.Misses)
	return out, nil
}
