package cachesim

import (
	"reflect"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/gpusim"
)

// These tests cross-validate the analytic traffic model of internal/gpusim
// against exact trace-driven cache simulation on small problem instances:
// the analytic per-block L2 read traffic must agree with the replayed
// trace within a small factor, and qualitative effects (L1 capture,
// staging benefits, tile-size trends) must agree in direction.

func mapSmallGemm(t *testing.T, tiles map[string]int64, useShared bool) *codegen.MappedNest {
	t.Helper()
	k := affine.MustLookup("gemm").WithParams(map[string]int64{"NI": 128, "NJ": 128, "NK": 128})
	mk, err := codegen.MapKernel(k, nil, tiles, arch.GA100(),
		codegen.Options{UseShared: useShared, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	return mk.Nests[0]
}

// l1For mirrors the analytic model's per-block L1 share as a concrete
// cache geometry.
func l1For(m *codegen.MappedNest, g *arch.GPU) Config {
	occ := gpusim.ComputeOccupancy(m, g)
	carve := m.SharedBytesPerBlock * occ.BlocksPerSM
	size := (g.L1SharedBytes - carve) / occ.BlocksPerSM
	// Round down to a power-of-two-ish valid geometry.
	line := int64(128)
	ways := int64(4)
	sets := size / line / ways
	if sets < 1 {
		sets = 1
	}
	return Config{SizeBytes: sets * line * ways, LineBytes: line, Ways: ways}
}

func TestTraceVsAnalyticGemm(t *testing.T) {
	g := arch.GA100()
	for _, tiles := range []map[string]int64{
		{"i": 16, "j": 32, "k": 16},
		{"i": 32, "j": 32, "k": 32},
		{"i": 8, "j": 64, "k": 8},
	} {
		m := mapSmallGemm(t, tiles, true)
		occ := gpusim.ComputeOccupancy(m, g)
		tr := gpusim.ComputeTraffic(m, g, occ)
		analytic := float64(tr.L2ReadBytes) / float64(m.TotalBlocks)

		res, err := SimulateBlock(m, l1For(m, g))
		if err != nil {
			t.Fatal(err)
		}
		traced := float64(res.L2ReadBytes)
		if traced == 0 || analytic == 0 {
			t.Fatalf("tiles %v: degenerate traffic (analytic %.0f, traced %.0f)", tiles, analytic, traced)
		}
		ratio := analytic / traced
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("tiles %v: analytic %.0fB vs traced %.0fB per block (ratio %.2f)",
				tiles, analytic, traced, ratio)
		}
	}
}

func TestTracePointsMatchWork(t *testing.T) {
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	res, err := SimulateBlock(m, l1For(m, arch.GA100()))
	if err != nil {
		t.Fatal(err)
	}
	// Interior block: 16x32 tile points x 128 serial iterations.
	if want := int64(16 * 32 * 128); res.Points != want {
		t.Fatalf("points = %d, want %d", res.Points, want)
	}
}

func TestStagingReducesL1Pressure(t *testing.T) {
	// With A staged in shared memory the L1 serves fewer streams; its
	// miss traffic must not increase.
	staged := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	raw := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, false)
	cfg := l1For(raw, arch.GA100())
	rs, err := SimulateBlock(staged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SimulateBlock(raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.L2ReadBytes > rr.L2ReadBytes {
		t.Fatalf("staged misses %d exceed unstaged %d", rs.L2ReadBytes, rr.L2ReadBytes)
	}
}

func TestSmallCacheThrashes(t *testing.T) {
	// The same trace through a tiny L1 must miss far more: the liveness
	// cliff the analytic model encodes with its capture test.
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	big, err := SimulateBlock(m, cfg(128*1024, 128, 4))
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := SimulateBlock(m, cfg(4*1024, 128, 4))
	if err != nil {
		t.Fatal(err)
	}
	if tiny.L2ReadBytes < 2*big.L2ReadBytes {
		t.Fatalf("tiny-cache traffic %d not much above big-cache %d",
			tiny.L2ReadBytes, big.L2ReadBytes)
	}
}

func TestCompulsoryFloorGemm(t *testing.T) {
	// With a big L1, per-block traffic approaches the compulsory floor:
	// the B panel (NK x Tj) + C tile + alignment slack, and never below.
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	res, err := SimulateBlock(m, cfg(128*1024, 128, 4))
	if err != nil {
		t.Fatal(err)
	}
	bPanel := int64(128 * 32 * 8) // NK x Tj doubles
	cTile := int64(16 * 32 * 8)
	floor := bPanel + cTile
	if res.L2ReadBytes < floor {
		t.Fatalf("traffic %d below compulsory floor %d", res.L2ReadBytes, floor)
	}
	if res.L2ReadBytes > 3*floor {
		t.Fatalf("traffic %d far above compulsory floor %d with an ample cache",
			res.L2ReadBytes, floor)
	}
}

func TestStencilHaloTrace(t *testing.T) {
	// jacobi-2d: per-block traffic should be about (tile+halo) for A plus
	// the B write tile; far below 5x (the naive per-reference count).
	k := affine.MustLookup("jacobi-2d").WithParams(map[string]int64{"N": 256, "T": 1})
	mk, err := codegen.MapKernel(k, nil, map[string]int64{"i": 16, "j": 32}, arch.GA100(),
		codegen.Options{UseShared: false, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	m := mk.Nests[0]
	res, err := SimulateBlock(m, cfg(64*1024, 128, 4))
	if err != nil {
		t.Fatal(err)
	}
	oneTile := int64(18 * 34 * 8) // (Ti+2)(Tj+2) doubles
	if res.L2ReadBytes > 4*oneTile {
		t.Fatalf("stencil block traffic %d suggests halo refs fetched repeatedly (tile %d)",
			res.L2ReadBytes, oneTile)
	}
}

func TestDeterministicTrace(t *testing.T) {
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	a, err := SimulateBlock(m, l1For(m, arch.GA100()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateBlock(m, l1For(m, arch.GA100()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace simulation is not deterministic")
	}
}

func TestSimulateGridSharesL2(t *testing.T) {
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	l1 := cfg(32*1024, 128, 4)
	l2 := cfg(4*1024*1024, 128, 16)

	grid, err := SimulateGrid(m, 8, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Blocks != 8 || len(grid.PerBlock) != 8 {
		t.Fatalf("blocks = %d / %d", grid.Blocks, len(grid.PerBlock))
	}
	// Inter-block sharing: blocks in the same column band reuse B panels
	// from L2, so DRAM traffic must be well below the sum of the blocks'
	// L1-miss traffic.
	var l1Misses int64
	for _, b := range grid.PerBlock {
		l1Misses += b.L2ReadBytes
	}
	if grid.DRAMBytes >= l1Misses {
		t.Fatalf("no L2 sharing: DRAM %d >= sum of L1 misses %d", grid.DRAMBytes, l1Misses)
	}
	if grid.L2.Hits == 0 {
		t.Fatal("shared L2 never hit across 8 blocks")
	}
}

func TestSimulateGridTinyL2Spills(t *testing.T) {
	m := mapSmallGemm(t, map[string]int64{"i": 16, "j": 32, "k": 16}, true)
	l1 := cfg(32*1024, 128, 4)
	big, err := SimulateGrid(m, 4, l1, cfg(8*1024*1024, 128, 16))
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := SimulateGrid(m, 4, l1, cfg(64*1024, 128, 16))
	if err != nil {
		t.Fatal(err)
	}
	if tiny.DRAMBytes <= big.DRAMBytes {
		t.Fatalf("tiny L2 DRAM %d should exceed big L2 %d (capacity spill)",
			tiny.DRAMBytes, big.DRAMBytes)
	}
}

func TestSimulateGridClampsBlockCount(t *testing.T) {
	m := mapSmallGemm(t, map[string]int64{"i": 64, "j": 64, "k": 16}, true)
	grid, err := SimulateGrid(m, 100000, cfg(32*1024, 128, 4), cfg(1024*1024, 128, 16))
	if err != nil {
		t.Fatal(err)
	}
	if int64(grid.Blocks) > m.TotalBlocks {
		t.Fatalf("blocks %d exceed grid %d", grid.Blocks, m.TotalBlocks)
	}
}
