// Package cachesim is a trace-driven set-associative cache simulator. The
// analytic traffic model in internal/gpusim predicts L1-filtered L2 traffic
// from footprints; this package computes the same quantity exactly, by
// generating a thread block's real (warp-granular, line-coalesced) address
// trace and replaying it through an LRU cache hierarchy. The paper leans
// on exactly this kind of simulation for liveness quantities that counters
// cannot report (Sec. V-C, citing [23]); here it doubles as a validation
// oracle for the analytic model (see validate_test.go).
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int64
	LineBytes int64
	Ways      int64
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: nonpositive geometry %+v", c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cachesim: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissBytes returns the traffic this level requested from the next one.
func (s Stats) MissBytes(lineBytes int64) int64 { return s.Misses * lineBytes }

// HitRate returns hits/accesses (0 for an idle cache).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// line is one cache line's state.
type line struct {
	tag   int64
	valid bool
	dirty bool
	// lastUse is a logical timestamp for LRU.
	lastUse int64
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg   Config
	sets  int64
	lines []line // sets x ways
	clock int64
	Stats Stats
	// Next receives miss and writeback traffic (may be nil).
	Next *Cache
}

// New builds a cache. It panics on invalid geometry (a configuration bug).
func New(cfg Config, next *Cache) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: make([]line, sets*cfg.Ways),
		Next:  next,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access touches one byte address (the whole line is cached).
func (c *Cache) Access(addr int64, write bool) {
	c.clock++
	c.Stats.Accesses++

	lineAddr := addr / c.cfg.LineBytes
	set := lineAddr % c.sets
	tag := lineAddr / c.sets
	base := set * c.cfg.Ways

	// Hit?
	for w := int64(0); w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			c.Stats.Hits++
			l.lastUse = c.clock
			if write {
				l.dirty = true
			}
			return
		}
	}

	// Miss: fetch from the next level.
	c.Stats.Misses++
	if c.Next != nil {
		c.Next.Access(addr, false)
	}

	// Victim: invalid way first, else LRU.
	victim := &c.lines[base]
	for w := int64(0); w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = l
			break
		}
		if l.lastUse < victim.lastUse {
			victim = l
		}
	}
	if victim.valid {
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
			if c.Next != nil {
				victimAddr := (victim.tag*c.sets + set) * c.cfg.LineBytes
				c.Next.Access(victimAddr, true)
			}
		}
	}
	*victim = line{tag: tag, valid: true, dirty: write, lastUse: c.clock}
}

// Flush writes back all dirty lines (end of kernel).
func (c *Cache) Flush() {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.dirty {
			c.Stats.Writebacks++
			if c.Next != nil {
				set := int64(i) / c.cfg.Ways
				addr := (l.tag*c.sets + set) * c.cfg.LineBytes
				c.Next.Access(addr, true)
			}
			l.dirty = false
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.Stats = Stats{}
}
