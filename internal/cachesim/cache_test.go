package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg(size, line, ways int64) Config {
	return Config{SizeBytes: size, LineBytes: line, Ways: ways}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(1024, 64, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},   // size not multiple of line
		{SizeBytes: 64 * 6, LineBytes: 64, Ways: 4}, // lines not divisible by ways
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(cfg(1024, 64, 4), nil)
	c.Access(0, false)
	c.Access(8, false) // same line
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 sets x 2 ways of 64B lines = 256B.
	c := New(cfg(256, 64, 2), nil)
	// Three lines mapping to set 0: line addresses 0, 2, 4 (sets = 2).
	c.Access(0*64, false)
	c.Access(2*64, false)
	c.Access(4*64, false) // evicts line 0 (LRU)
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
	c.Access(2*64, false) // still resident
	if c.Stats.Hits != 1 {
		t.Fatalf("hits = %d, line 2 should have stayed", c.Stats.Hits)
	}
	c.Access(0*64, false) // was evicted: miss again
	if c.Stats.Misses != 4 {
		t.Fatalf("misses = %d", c.Stats.Misses)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	l2 := New(cfg(4096, 64, 4), nil)
	l1 := New(cfg(128, 64, 1), l2) // 2 sets, direct-mapped
	l1.Access(0, true)             // dirty line in set 0
	l1.Access(2*64, false)         // evicts it -> writeback to L2
	if l1.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", l1.Stats.Writebacks)
	}
	// L2 saw: miss fetch for addr 0, writeback (write), miss for 2*64.
	if l2.Stats.Accesses != 3 {
		t.Fatalf("L2 accesses = %d", l2.Stats.Accesses)
	}
}

func TestFlushWritesDirtyLines(t *testing.T) {
	l2 := New(cfg(4096, 64, 4), nil)
	l1 := New(cfg(256, 64, 2), l2)
	l1.Access(0, true)
	l1.Access(64, true)
	l1.Flush()
	if l1.Stats.Writebacks != 2 {
		t.Fatalf("writebacks = %d, want 2", l1.Stats.Writebacks)
	}
	// Flushing twice must not write again.
	l1.Flush()
	if l1.Stats.Writebacks != 2 {
		t.Fatal("double flush re-wrote clean lines")
	}
}

func TestResetClears(t *testing.T) {
	c := New(cfg(256, 64, 2), nil)
	c.Access(0, true)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats not reset")
	}
	c.Access(0, false)
	if c.Stats.Misses != 1 {
		t.Fatal("contents not reset")
	}
}

// Property: misses never exceed accesses; a cache big enough for the whole
// working set has exactly one miss per distinct line (pure compulsory).
func TestCompulsoryMissesOnly(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(cfg(64*1024, 64, 8), nil)
		distinct := map[int64]bool{}
		for i := 0; i < 2000; i++ {
			line := int64(r.Intn(256)) // working set 16KB << 64KB
			distinct[line] = true
			c.Access(line*64, r.Intn(4) == 0)
		}
		return c.Stats.Misses == int64(len(distinct)) &&
			c.Stats.Misses+c.Stats.Hits == c.Stats.Accesses
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a larger cache never misses more on the same trace (LRU
// inclusion property holds for same line size, same associativity-per-set
// scaling by sets... use fully-associative to be safe).
func TestLRUInclusionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Fully associative: ways = lines.
		small := New(Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 16}, nil)
		big := New(Config{SizeBytes: 64 * 64, LineBytes: 64, Ways: 64}, nil)
		for i := 0; i < 3000; i++ {
			addr := int64(r.Intn(128)) * 64
			small.Access(addr, false)
			big.Access(addr, false)
		}
		return big.Stats.Misses <= small.Stats.Misses
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRate(t *testing.T) {
	c := New(cfg(1024, 64, 4), nil)
	if c.Stats.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if got := c.Stats.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", got)
	}
}
