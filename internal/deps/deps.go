// Package deps performs dependence and reuse analysis on affine loop nests.
// It computes what the paper extracts from PPCG's isl-based scheduler:
// which loops are parallel, which carry (reduction) dependences, and — via
// reuse.go — the per-reference temporal/spatial reuse and coalesced-access
// structure that drives EATSS's model generation (Secs. IV-D, IV-E, IV-K).
//
// Domains are rectangular and subscripts affine, so a distance-vector
// framework with conservative "star" (unknown) components is exact for every
// kernel in the paper's evaluation and safe for anything else.
package deps

import (
	"fmt"
	"strings"

	"repro/internal/affine"
)

// ComponentKind describes one entry of a dependence distance vector.
type ComponentKind int

const (
	// Pinned means the distance at this loop is a known constant.
	Pinned ComponentKind = iota
	// Star means the distance at this loop is unconstrained (any value,
	// including zero, may occur).
	Star
)

// Component is one per-loop entry of a distance vector.
type Component struct {
	Kind ComponentKind
	Dist int64 // valid when Kind == Pinned
}

func (c Component) String() string {
	if c.Kind == Star {
		return "*"
	}
	return fmt.Sprintf("%d", c.Dist)
}

// canBeZero reports whether distance zero is feasible for this component.
func (c Component) canBeZero() bool { return c.Kind == Star || c.Dist == 0 }

// canBeNonZero reports whether a nonzero distance is feasible.
func (c Component) canBeNonZero() bool { return c.Kind == Star || c.Dist != 0 }

// Dependence is a data dependence between two references of the same nest.
type Dependence struct {
	Array      string
	SrcStmt    int // statement index in nest body
	DstStmt    int
	SrcRef     int // reference index within the source statement
	DstRef     int
	Components []Component // one per loop, outermost first
	// ReductionAssoc marks dependences that arise solely from an
	// associative accumulation (X += ...), which tiling may reorder.
	ReductionAssoc bool
}

// String renders the dependence as "Array: (d0, d1, ...)".
func (d Dependence) String() string {
	parts := make([]string, len(d.Components))
	for i, c := range d.Components {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%s: (%s)", d.Array, strings.Join(parts, ","))
}

// CarriedAt returns the loop level (0-based) at which the dependence can be
// carried, i.e. the first level where a nonzero distance is feasible while
// all outer levels can be zero. Returns -1 for loop-independent
// dependences (all components pinned to zero).
func (d Dependence) CarriedAt() int {
	for i, c := range d.Components {
		if c.canBeNonZero() {
			return i
		}
		// component pinned to zero: continue outward-in
	}
	return -1
}

// CarriesLoop reports whether the dependence forbids parallel execution of
// loop level d: there exists an instance with zero distance on all outer
// levels and nonzero distance at level d.
func (d Dependence) CarriesLoop(level int) bool {
	if level >= len(d.Components) {
		return false
	}
	for i := 0; i < level; i++ {
		if !d.Components[i].canBeZero() {
			return false
		}
	}
	return d.Components[level].canBeNonZero()
}

// NestInfo is the analysis result for one loop nest.
type NestInfo struct {
	Nest *affine.Nest
	Deps []Dependence
	// Parallel[d] reports that loop d can run in parallel (no dependence,
	// other than pure associative reductions' self-updates handled by the
	// code generator, is carried at d).
	Parallel []bool
	// SequentialOnlyReduction[d] reports that every dependence carried at
	// loop d is a reduction accumulation, so the loop is serial per
	// thread but tiles of it may be reordered (permutable band).
	SequentialOnlyReduction []bool
}

// ParallelLoops returns the names of the parallel loops, outermost first.
func (ni *NestInfo) ParallelLoops() []string {
	var out []string
	for i, p := range ni.Parallel {
		if p {
			out = append(out, ni.Nest.Loops[i].Name)
		}
	}
	return out
}

// NumParallel returns the number of parallel loops in the nest.
func (ni *NestInfo) NumParallel() int {
	n := 0
	for _, p := range ni.Parallel {
		if p {
			n++
		}
	}
	return n
}

// AnalyzeNest computes dependences and loop parallelism for one nest.
func AnalyzeNest(n *affine.Nest) *NestInfo {
	info := &NestInfo{Nest: n}
	// Enumerate all pairs of references to the same array with at least
	// one write. Pairs within and across statements are both considered;
	// statement ordering within the body is not modeled (conservative).
	type refPos struct {
		stmt, ref int
		r         affine.Ref
		reduction bool
	}
	var refs []refPos
	for si, st := range n.Body {
		for ri, r := range st.Refs {
			refs = append(refs, refPos{stmt: si, ref: ri, r: r, reduction: st.Reduction})
		}
	}
	for a := 0; a < len(refs); a++ {
		for b := a; b < len(refs); b++ {
			ra, rb := refs[a], refs[b]
			if ra.r.Array != rb.r.Array {
				continue
			}
			if !ra.r.Write && !rb.r.Write {
				continue
			}
			comps, feasible := distanceVector(n, ra.r, rb.r)
			if !feasible {
				continue
			}
			dep := Dependence{
				Array:      ra.r.Array,
				SrcStmt:    ra.stmt,
				DstStmt:    rb.stmt,
				SrcRef:     ra.ref,
				DstRef:     rb.ref,
				Components: comps,
				// The self-update of a reduction statement (write and
				// read of the accumulator within the same statement) is
				// associative.
				ReductionAssoc: ra.stmt == rb.stmt && ra.reduction,
			}
			if dep.CarriedAt() == -1 && a == b {
				continue // a reference trivially depends on itself
			}
			info.Deps = append(info.Deps, dep)
		}
	}

	depth := n.Depth()
	info.Parallel = make([]bool, depth)
	info.SequentialOnlyReduction = make([]bool, depth)
	for d := 0; d < depth; d++ {
		carried := false
		onlyReduction := true
		for _, dep := range info.Deps {
			if dep.CarriesLoop(d) {
				carried = true
				if !dep.ReductionAssoc {
					onlyReduction = false
				}
			}
		}
		info.Parallel[d] = !carried
		info.SequentialOnlyReduction[d] = carried && onlyReduction
	}
	return info
}

// AnalyzeKernel analyzes every nest of the kernel.
func AnalyzeKernel(k *affine.Kernel) []*NestInfo {
	out := make([]*NestInfo, len(k.Nests))
	for i := range k.Nests {
		out[i] = AnalyzeNest(&k.Nests[i])
	}
	return out
}

// distanceVector computes the distance vector between two references of the
// same array within the same nest. It returns feasible=false when the
// subscript equations are unsatisfiable (no dependence).
//
// For each loop iterator the component is:
//   - Pinned(c) when some subscript position pins the distance to c,
//   - Star when the iterator's distance is unconstrained or only partially
//     constrained (conservative).
//
// Conflicting pins across subscript positions make the pair infeasible.
func distanceVector(n *affine.Nest, src, dst affine.Ref) ([]Component, bool) {
	depth := n.Depth()
	comps := make([]Component, depth)
	pinned := make(map[string]int64)
	starred := make(map[string]bool)

	for p := 0; p < len(src.Subscripts) && p < len(dst.Subscripts); p++ {
		es, ed := src.Subscripts[p], dst.Subscripts[p]
		// Same single iterator with equal coefficient pins the distance:
		// c*i_src + k_s = c*i_dst + k_d  =>  i_src - i_dst = (k_d-k_s)/c.
		sIters, dIters := es.IterNames(), ed.IterNames()
		switch {
		case len(sIters) == 1 && len(dIters) == 1 && sIters[0] == dIters[0] &&
			es.IterCoeff(sIters[0]) == ed.IterCoeff(dIters[0]):
			it := sIters[0]
			c := es.IterCoeff(it)
			diff := ed.Const - es.Const // parameter parts must match too
			if !paramsEqual(es, ed) {
				markAll(starred, sIters, dIters)
				continue
			}
			if diff%c != 0 {
				return nil, false // non-integer distance: no dependence
			}
			dist := diff / c
			if prev, ok := pinned[it]; ok && prev != dist {
				return nil, false // conflicting requirements
			}
			pinned[it] = dist
		case len(sIters) == 0 && len(dIters) == 0:
			// Constant subscripts: must be identical, else no dependence.
			if es.Const != ed.Const || !paramsEqual(es, ed) {
				return nil, false
			}
		default:
			// Multi-iterator or mismatched subscripts: every involved
			// iterator becomes unconstrained.
			markAll(starred, sIters, dIters)
		}
	}

	for d := 0; d < depth; d++ {
		name := n.Loops[d].Name
		usedSrc, usedDst := src.UsesIter(name), dst.UsesIter(name)
		switch {
		case starred[name]:
			comps[d] = Component{Kind: Star}
		case usedSrc || usedDst:
			if dist, ok := pinned[name]; ok {
				comps[d] = Component{Kind: Pinned, Dist: dist}
			} else {
				comps[d] = Component{Kind: Star}
			}
		default:
			// Iterator in neither reference: any distance reuses the
			// same address.
			comps[d] = Component{Kind: Star}
		}
	}
	return comps, true
}

func paramsEqual(a, b affine.Expr) bool {
	d := a.Sub(b)
	return len(d.Params) == 0
}

func markAll(starred map[string]bool, lists ...[]string) {
	for _, l := range lists {
		for _, n := range l {
			starred[n] = true
		}
	}
}
