package deps

import (
	"repro/internal/affine"
)

// MemClass says which memory a reference should be mapped to (Sec. IV-E).
type MemClass int

const (
	// MemL1 marks cache-mappable references: they access memory
	// contiguously along the CMA loop (or are frequently updated write
	// targets) and exploit the hardware-managed L1/L2 caches.
	MemL1 MemClass = iota
	// MemShared marks references incapable of coalesced access along the
	// CMA loop; they are staged in software-managed shared memory.
	MemShared
)

func (m MemClass) String() string {
	if m == MemShared {
		return "shared"
	}
	return "L1"
}

// RefReuse summarizes the reuse structure of one array reference
// (paper Table II).
type RefReuse struct {
	Stmt int
	Ref  affine.Ref
	// Stride1Iter is the iterator walking the fastest-varying subscript
	// with unit stride ("" when the access has no stride-1 loop).
	Stride1Iter string
	// TemporalIters lists nest iterators that do not appear in any
	// subscript: the reference is invariant (O(n) temporal reuse) along
	// them.
	TemporalIters []string
	// Class is the memory-type assignment of Sec. IV-E.
	Class MemClass
}

// UsesIter reports whether the underlying reference uses the iterator.
func (rr RefReuse) UsesIter(name string) bool { return rr.Ref.UsesIter(name) }

// NestReuse is the per-nest reuse analysis EATSS consumes.
type NestReuse struct {
	Nest *affine.Nest
	Info *NestInfo
	// CMALoop is l_s1 (Sec. IV-D): the loop chosen for coalesced memory
	// accesses — the stride-1 iterator of the largest number of
	// references. Empty when no reference has a stride-1 loop.
	CMALoop string
	// Refs holds one entry per (statement, reference).
	Refs []RefReuse
	// HRaw maps each loop iterator to the number of references whose
	// fastest-varying (stride-1) dimension it walks. These are the raw
	// H_i counts of Sec. IV-K before warp-alignment scaling and
	// parallel/serial adjustments (applied by the model generator, which
	// knows the warp-alignment factor).
	HRaw map[string]int64
	// DistinctLineRefs counts references that touch distinct cache lines
	// (Sec. IV-G): references to the same array whose subscripts differ
	// only by a small constant in the fastest-varying dimension share a
	// line and count once. Used for the register-per-SM estimate.
	DistinctLineRefs int64
}

// cacheLineMergeDist is the subscript-constant difference (in elements)
// under which two references to the same array are assumed to land in the
// same cache line (Sec. IV-G's fdtd-2d example).
const cacheLineMergeDist = 8

// AnalyzeReuse runs dependence analysis and reuse classification on a nest.
func AnalyzeReuse(n *affine.Nest) *NestReuse {
	info := AnalyzeNest(n)
	nr := &NestReuse{Nest: n, Info: info, HRaw: make(map[string]int64)}

	// Per-reference structure.
	for si, st := range n.Body {
		for _, r := range st.Refs {
			rr := RefReuse{Stmt: si, Ref: r, Stride1Iter: r.Stride1Iter()}
			for _, l := range n.Loops {
				if !r.UsesIter(l.Name) {
					rr.TemporalIters = append(rr.TemporalIters, l.Name)
				}
			}
			nr.Refs = append(nr.Refs, rr)
		}
	}

	// H_i raw counts and CMA loop selection (Sec. IV-D): H_i counts how
	// often iterator i appears (with unit stride) in a fastest-varying
	// subscript, over distinct references (an accumulator's read and
	// write count once — the paper's matmul example has H_j = 2).
	// Prefer as CMA loop the one with the highest count, breaking ties
	// in favor of parallel loops, then of inner loops (closer to
	// thread-id mapping).
	for _, rr := range UniqueArrayRefs(nr.Refs) {
		for _, it := range rr.Ref.Stride1Iters() {
			nr.HRaw[it]++
		}
	}
	best, bestCount := "", int64(0)
	for d := range n.Loops {
		name := n.Loops[d].Name
		c := nr.HRaw[name]
		if c == 0 {
			continue
		}
		better := c > bestCount
		if c == bestCount && best != "" {
			bi := n.LoopIndex(best)
			// Tie-break: parallel beats serial; inner beats outer.
			if info.Parallel[d] != info.Parallel[bi] {
				better = info.Parallel[d]
			} else {
				better = d > bi
			}
		}
		if better {
			best, bestCount = name, c
		}
	}
	nr.CMALoop = best

	// Memory classification (Sec. IV-E): stride-1 along l_s1 => L1;
	// frequently-updated write targets stay in cache => L1; everything
	// else is staged in shared memory.
	for i := range nr.Refs {
		rr := &nr.Refs[i]
		switch {
		case nr.CMALoop != "" && rr.Ref.HasStride1(nr.CMALoop):
			rr.Class = MemL1
		case rr.Ref.Write:
			rr.Class = MemL1
		default:
			rr.Class = MemShared
		}
	}

	nr.DistinctLineRefs = countDistinctLineRefs(nr.Refs)
	return nr
}

// lineKey identifies the cache line group of a reference: array name plus
// all subscripts with the fastest-varying constant dropped.
func lineKey(r affine.Ref) string {
	key := r.Array
	for i, s := range r.Subscripts {
		e := s
		if i == len(r.Subscripts)-1 {
			e = e.AddConst(-e.Const) // canonicalize fastest constant to 0
		}
		key += "|" + e.String()
	}
	return key
}

// countDistinctLineRefs merges references that are guaranteed to share a
// cache line and counts the groups.
func countDistinctLineRefs(refs []RefReuse) int64 {
	type group struct{ minC, maxC int64 }
	groups := make(map[string]*group)
	count := int64(0)
	for _, rr := range refs {
		k := lineKey(rr.Ref)
		c := int64(0)
		if len(rr.Ref.Subscripts) > 0 {
			c = rr.Ref.FastestVarying().Const
		}
		g, ok := groups[k]
		if !ok {
			groups[k] = &group{minC: c, maxC: c}
			count++
			continue
		}
		// Same linear structure: same line if the constant spread stays
		// within a line.
		min, max := g.minC, g.maxC
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		if max-min < cacheLineMergeDist {
			g.minC, g.maxC = min, max
		} else {
			// Too far apart: this reference starts a new line group.
			count++
		}
	}
	return count
}

// SharedRefs returns the references assigned to shared memory.
func (nr *NestReuse) SharedRefs() []RefReuse {
	var out []RefReuse
	for _, r := range nr.Refs {
		if r.Class == MemShared {
			out = append(out, r)
		}
	}
	return out
}

// L1Refs returns the references assigned to the L1 cache.
func (nr *NestReuse) L1Refs() []RefReuse {
	var out []RefReuse
	for _, r := range nr.Refs {
		if r.Class == MemL1 {
			out = append(out, r)
		}
	}
	return out
}

// UniqueArrayRefs deduplicates references by (array, subscript shape),
// merging e.g. the read and write of an accumulator. The returned slice
// preserves first-appearance order; Class/Write are OR-ed across merged
// references (a write anywhere makes the merged reference a write).
func UniqueArrayRefs(refs []RefReuse) []RefReuse {
	seen := make(map[string]int)
	var out []RefReuse
	for _, rr := range refs {
		key := rr.Ref.String()
		if i, ok := seen[key]; ok {
			if rr.Ref.Write {
				out[i].Ref.Write = true
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, rr)
	}
	return out
}
