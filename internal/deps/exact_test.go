package deps

import (
	"testing"

	"repro/internal/affine"
)

// smallParams shrinks a kernel's problem sizes so the exact systems stay
// tiny while preserving the dependence structure.
func smallParams(k *affine.Kernel) map[string]int64 {
	out := make(map[string]int64, len(k.Params))
	for name, v := range k.Params {
		if v > 16 {
			v = 16
		}
		out[name] = v
	}
	return out
}

// TestFastAnalysisSoundOnCatalog is the headline verification: for every
// kernel in the catalog, every loop the fast distance-vector analysis
// classifies as parallel is confirmed dependence-free by the exact
// Fourier–Motzkin oracle.
func TestFastAnalysisSoundOnCatalog(t *testing.T) {
	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		params := smallParams(k)
		for ni := range k.Nests {
			violations, err := VerifyParallelism(&k.Nests[ni], params)
			if err != nil {
				t.Fatalf("%s nest %d: %v", name, ni, err)
			}
			for _, v := range violations {
				t.Errorf("%s: UNSOUND parallel classification: %s", name, v)
			}
		}
	}
}

// TestExactConfirmsKnownCarriers: the exact oracle must find the
// dependences the fast analysis reports on representative kernels
// (completeness spot-check).
func TestExactConfirmsKnownCarriers(t *testing.T) {
	// gemm: the C accumulation is carried at k (level 2).
	k := affine.MustLookup("gemm")
	params := smallParams(k)
	nest := &k.Nests[0]
	cw := nest.Body[0].Refs[0] // C write
	cr := nest.Body[0].Refs[1] // C read
	carried, err := ExactCarriesLoop(nest, params, cw, cr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !carried {
		t.Error("gemm: k-loop accumulation dependence not found by exact test")
	}
	for _, level := range []int{0, 1} {
		carried, err := ExactCarriesLoop(nest, params, cw, cr, level)
		if err != nil {
			t.Fatal(err)
		}
		if carried {
			t.Errorf("gemm: C self-dependence wrongly carried at level %d", level)
		}
	}
}

func TestExactOffsetDependence(t *testing.T) {
	// B[i] written, B[i+1] read: carried at i (either direction).
	i := affine.NewIter("i")
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Upper: affine.NewConst(10)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "B", Subscripts: []affine.Expr{i}, Write: true},
				{Array: "B", Subscripts: []affine.Expr{i.AddConst(1)}},
			},
		}},
	}
	carried, err := ExactCarriesLoop(n, nil, n.Body[0].Refs[0], n.Body[0].Refs[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !carried {
		t.Fatal("distance-1 dependence not found")
	}
}

func TestExactParityNoDependence(t *testing.T) {
	// A[2i] vs A[2i+1]: the GCD screen proves independence, so the loop
	// is parallel even though subscripts overlap syntactically.
	i2 := affine.NewIter("i").Scale(2)
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Upper: affine.NewConst(64)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{i2}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{i2.AddConst(1)}},
			},
		}},
	}
	carried, err := ExactCarriesLoop(n, nil, n.Body[0].Refs[0], n.Body[0].Refs[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if carried {
		t.Fatal("parity-disjoint accesses cannot depend")
	}
}

func TestExactSharperThanFast(t *testing.T) {
	// A[i][j] written, A[j][i] read in one nest: the fast analysis stars
	// both loops (conservative, sequential); the exact test knows the
	// i-loop still carries real dependences (e.g. (0,1) vs (1,0)), so
	// the conservative answer is confirmed, not refuted.
	i, j := affine.NewIter("i"), affine.NewIter("j")
	n := &affine.Nest{
		Name: "transpose-update",
		Loops: []affine.Loop{
			{Name: "i", Upper: affine.NewConst(8)},
			{Name: "j", Upper: affine.NewConst(8)},
		},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{i, j}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{j, i}},
			},
		}},
	}
	info := AnalyzeNest(n)
	if info.Parallel[0] {
		t.Fatal("fast analysis should be conservative here")
	}
	carried, err := ExactCarriesLoop(n, nil, n.Body[0].Refs[0], n.Body[0].Refs[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !carried {
		t.Fatal("transpose update does carry an i-loop dependence")
	}
}

func TestExactEmptyLoop(t *testing.T) {
	i := affine.NewIter("i")
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Lower: affine.NewConst(5), Upper: affine.NewConst(5)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{i}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{i}},
			},
		}},
	}
	carried, err := ExactCarriesLoop(n, nil, n.Body[0].Refs[0], n.Body[0].Refs[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if carried {
		t.Fatal("empty loop cannot carry dependences")
	}
}
