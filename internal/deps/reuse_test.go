package deps

import (
	"testing"

	"repro/internal/affine"
)

// TestMatmulTableII reproduces the paper's Table II classification for
// matmul: Out and Ker map to L1 (CMA-capable along j), In maps to shared
// memory; Out has temporal reuse on k, In on j, Ker none.
func TestMatmulTableII(t *testing.T) {
	k := affine.MustLookup("gemm")
	nr := AnalyzeReuse(&k.Nests[0])

	if nr.CMALoop != "j" {
		t.Fatalf("CMA loop = %q, want j (stride-1 in C and B)", nr.CMALoop)
	}

	classOf := func(array string) MemClass {
		t.Helper()
		for _, rr := range nr.Refs {
			if rr.Ref.Array == array {
				return rr.Class
			}
		}
		t.Fatalf("array %s not found", array)
		return 0
	}
	if classOf("C") != MemL1 {
		t.Error("C (Out) should be L1-mapped")
	}
	if classOf("B") != MemL1 {
		t.Error("B (Ker) should be L1-mapped")
	}
	if classOf("A") != MemShared {
		t.Error("A (In) should be shared-memory-mapped")
	}

	// Temporal reuse: C invariant along k; A invariant along j.
	for _, rr := range nr.Refs {
		switch rr.Ref.Array {
		case "C":
			if len(rr.TemporalIters) != 1 || rr.TemporalIters[0] != "k" {
				t.Errorf("C temporal iters = %v, want [k]", rr.TemporalIters)
			}
		case "A":
			if len(rr.TemporalIters) != 1 || rr.TemporalIters[0] != "j" {
				t.Errorf("A temporal iters = %v, want [j]", rr.TemporalIters)
			}
		case "B":
			if len(rr.TemporalIters) != 1 || rr.TemporalIters[0] != "i" {
				t.Errorf("B temporal iters = %v, want [i]", rr.TemporalIters)
			}
		}
	}
}

func TestGemmHWeights(t *testing.T) {
	k := affine.MustLookup("gemm")
	nr := AnalyzeReuse(&k.Nests[0])
	// j is stride-1 for C (write+read) and B => raw count 3 (C twice);
	// k is stride-1 for A => 1.
	if nr.HRaw["j"] < 2 {
		t.Errorf("HRaw[j] = %d, want >= 2", nr.HRaw["j"])
	}
	if nr.HRaw["k"] != 1 {
		t.Errorf("HRaw[k] = %d, want 1", nr.HRaw["k"])
	}
	if nr.HRaw["i"] != 0 {
		t.Errorf("HRaw[i] = %d, want 0", nr.HRaw["i"])
	}
}

func TestGemmDistinctLineRefs(t *testing.T) {
	k := affine.MustLookup("gemm")
	nr := AnalyzeReuse(&k.Nests[0])
	// Sec. IV-G: matmul counts 3 distinct-line references (C write+read
	// share a line; A; B).
	if nr.DistinctLineRefs != 3 {
		t.Fatalf("gemm DistinctLineRefs = %d, want 3", nr.DistinctLineRefs)
	}
}

func TestFdtd2dDistinctLineRefs(t *testing.T) {
	// Sec. IV-G: "for the fdtd-2d kernel it would be 4 (two references
	// typically lie in the same cache line)". Per field-update nest:
	// e.g. Shz references hz(w), hz(r), ex[i][j+1], ex[i][j], ey[i+1][j],
	// ey[i][j]: hz w+r merge, ex j+1/j merge, ey i+1 and ey i are on
	// different rows => 4 groups.
	k := affine.MustLookup("fdtd-2d")
	nr := AnalyzeReuse(&k.Nests[2]) // hz nest
	if nr.DistinctLineRefs != 4 {
		t.Fatalf("fdtd-2d hz nest DistinctLineRefs = %d, want 4", nr.DistinctLineRefs)
	}
}

func TestMvtTransposedCMA(t *testing.T) {
	// mv2: x2[i] += A[j][i]*y2[j]; stride-1 loop of A is i, so l_s1 = i
	// and A is L1-mapped.
	k := affine.MustLookup("mvt")
	nr := AnalyzeReuse(&k.Nests[1])
	if nr.CMALoop != "i" {
		t.Fatalf("mv2 CMA loop = %q, want i", nr.CMALoop)
	}
	for _, rr := range nr.Refs {
		if rr.Ref.Array == "A" && rr.Class != MemL1 {
			t.Error("A[j][i] should be L1-mapped (stride-1 along i)")
		}
		if rr.Ref.Array == "y2" && rr.Class != MemShared {
			t.Error("y2[j] should be shared-mapped (no CMA along i)")
		}
	}
}

func TestSharedAndL1Partition(t *testing.T) {
	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		for ni := range k.Nests {
			nr := AnalyzeReuse(&k.Nests[ni])
			if len(nr.SharedRefs())+len(nr.L1Refs()) != len(nr.Refs) {
				t.Errorf("%s nest %d: shared+L1 != total", name, ni)
			}
		}
	}
}

func TestCMALoopAlwaysFoundForCatalog(t *testing.T) {
	// Every kernel in the evaluation has at least one stride-1 access.
	for _, name := range affine.Catalog() {
		k := affine.MustLookup(name)
		for ni := range k.Nests {
			nr := AnalyzeReuse(&k.Nests[ni])
			if nr.CMALoop == "" {
				t.Errorf("%s nest %s: no CMA loop selected", name, k.Nests[ni].Name)
			}
		}
	}
}

func TestUniqueArrayRefsMergesAccumulator(t *testing.T) {
	k := affine.MustLookup("gemm")
	nr := AnalyzeReuse(&k.Nests[0])
	uniq := UniqueArrayRefs(nr.Refs)
	if len(uniq) != 3 {
		t.Fatalf("gemm unique refs = %d, want 3 (C, A, B)", len(uniq))
	}
	for _, rr := range uniq {
		if rr.Ref.Array == "C" && !rr.Ref.Write {
			t.Error("merged C reference should remain a write")
		}
	}
}

func TestWriteOnlyRefStaysL1WithoutCMA(t *testing.T) {
	// A write target that is not stride-1 along the CMA loop is still
	// L1-mapped ("repeatedly and frequently updated").
	i, j := affine.NewIter("i"), affine.NewIter("j")
	n := &affine.Nest{
		Name: "t",
		Loops: []affine.Loop{
			{Name: "i", Upper: affine.NewConst(64)},
			{Name: "j", Upper: affine.NewConst(64)},
		},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "W", Subscripts: []affine.Expr{j, i}, Write: true}, // transposed store
				{Array: "R", Subscripts: []affine.Expr{i, j}},
				{Array: "R2", Subscripts: []affine.Expr{i, j}},
			},
		}},
	}
	nr := AnalyzeReuse(n)
	if nr.CMALoop != "j" {
		t.Fatalf("CMA loop = %q, want j", nr.CMALoop)
	}
	for _, rr := range nr.Refs {
		if rr.Ref.Array == "W" && rr.Class != MemL1 {
			t.Error("write target should be L1-mapped even without CMA")
		}
	}
}
