package deps

import (
	"testing"

	"repro/internal/affine"
)

func nestOf(t *testing.T, kernel string, idx int) *affine.Nest {
	t.Helper()
	k := affine.MustLookup(kernel)
	if idx >= len(k.Nests) {
		t.Fatalf("%s has %d nests", kernel, len(k.Nests))
	}
	return &k.Nests[idx]
}

func TestGemmParallelism(t *testing.T) {
	info := AnalyzeNest(nestOf(t, "gemm", 0))
	want := []bool{true, true, false} // i, j parallel; k sequential
	for d, w := range want {
		if info.Parallel[d] != w {
			t.Errorf("gemm loop %d: parallel=%v, want %v", d, info.Parallel[d], w)
		}
	}
	if !info.SequentialOnlyReduction[2] {
		t.Error("gemm k-loop should be reduction-sequential")
	}
	if got := info.ParallelLoops(); len(got) != 2 || got[0] != "i" || got[1] != "j" {
		t.Errorf("ParallelLoops = %v", got)
	}
}

func TestMvtParallelism(t *testing.T) {
	k := affine.MustLookup("mvt")
	for ni := range k.Nests {
		info := AnalyzeNest(&k.Nests[ni])
		if !info.Parallel[0] || info.Parallel[1] {
			t.Errorf("mvt nest %d: Parallel = %v, want [true false]", ni, info.Parallel)
		}
	}
}

func TestAtaxSecondNest(t *testing.T) {
	// aty: y[j] += A[i][j]*tmp[i] — i carries the reduction, j is parallel.
	info := AnalyzeNest(nestOf(t, "atax", 1))
	if info.Parallel[0] || !info.Parallel[1] {
		t.Errorf("atax aty: Parallel = %v, want [false true]", info.Parallel)
	}
}

func TestStencilSpaceLoopsParallel(t *testing.T) {
	for _, name := range []string{"jacobi-1d", "jacobi-2d", "heat-3d", "fdtd-2d"} {
		k := affine.MustLookup(name)
		for ni := range k.Nests {
			info := AnalyzeNest(&k.Nests[ni])
			for d, p := range info.Parallel {
				if !p {
					t.Errorf("%s nest %d loop %d should be parallel", name, ni, d)
				}
			}
		}
	}
}

func TestConv2DInnerLoopsSequential(t *testing.T) {
	info := AnalyzeNest(nestOf(t, "conv-2d", 0))
	want := []bool{true, true, false, false} // i, j parallel; p, q reduction
	for d, w := range want {
		if info.Parallel[d] != w {
			t.Errorf("conv-2d loop %d: parallel=%v, want %v", d, info.Parallel[d], w)
		}
	}
	for _, d := range []int{2, 3} {
		if !info.SequentialOnlyReduction[d] {
			t.Errorf("conv-2d loop %d should be reduction-only sequential", d)
		}
	}
}

func TestMttkrpParallelism(t *testing.T) {
	info := AnalyzeNest(nestOf(t, "mttkrp", 0))
	want := []bool{true, true, false, false}
	for d, w := range want {
		if info.Parallel[d] != w {
			t.Errorf("mttkrp loop %d: parallel=%v, want %v", d, info.Parallel[d], w)
		}
	}
}

func TestDependenceString(t *testing.T) {
	info := AnalyzeNest(nestOf(t, "gemm", 0))
	if len(info.Deps) == 0 {
		t.Fatal("gemm has no deps")
	}
	s := info.Deps[0].String()
	if s == "" {
		t.Fatal("empty dependence string")
	}
}

func TestCarriedAtLoopIndependent(t *testing.T) {
	d := Dependence{Components: []Component{{Kind: Pinned, Dist: 0}, {Kind: Pinned, Dist: 0}}}
	if d.CarriedAt() != -1 {
		t.Fatalf("loop-independent dep carried at %d", d.CarriedAt())
	}
	if d.CarriesLoop(0) || d.CarriesLoop(1) {
		t.Fatal("loop-independent dep should not carry any loop")
	}
}

func TestCarriesLoopOuterBlocks(t *testing.T) {
	// Distance (1, *) — carried at level 0 only; level 1 requires the
	// outer distance to be zero, which is infeasible.
	d := Dependence{Components: []Component{{Kind: Pinned, Dist: 1}, {Kind: Star}}}
	if !d.CarriesLoop(0) {
		t.Fatal("should carry level 0")
	}
	if d.CarriesLoop(1) {
		t.Fatal("level 1 cannot be carried when outer distance is pinned nonzero")
	}
}

func TestNoFalseDependenceOnDisjointConstants(t *testing.T) {
	// A[0] and A[5] never alias.
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Upper: affine.NewConst(10)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{affine.NewConst(0)}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{affine.NewConst(5)}},
			},
		}},
	}
	info := AnalyzeNest(n)
	// The write self-pairs with the read? Constants differ => infeasible.
	for _, dep := range info.Deps {
		if dep.SrcRef != dep.DstRef {
			t.Errorf("spurious dependence %v between A[0] and A[5]", dep)
		}
	}
}

func TestFractionalDistanceInfeasible(t *testing.T) {
	// A[2i] written, A[2i+1] read: odd/even interleave never aliases.
	i2 := affine.NewIter("i").Scale(2)
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Upper: affine.NewConst(10)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "A", Subscripts: []affine.Expr{i2}, Write: true},
				{Array: "A", Subscripts: []affine.Expr{i2.AddConst(1)}},
			},
		}},
	}
	info := AnalyzeNest(n)
	for _, dep := range info.Deps {
		if dep.SrcRef != dep.DstRef {
			t.Errorf("spurious dependence %v between A[2i] and A[2i+1]", dep)
		}
	}
	if !info.Parallel[0] {
		t.Error("i should be parallel: accesses never alias")
	}
}

func TestShiftedWriteReadSequential(t *testing.T) {
	// B[i] written, B[i+1] read in the same nest: distance pinned at -1,
	// i must be sequential.
	i := affine.NewIter("i")
	n := &affine.Nest{
		Name:  "n",
		Loops: []affine.Loop{{Name: "i", Upper: affine.NewConst(10)}},
		Body: []affine.Statement{{
			Name: "S",
			Refs: []affine.Ref{
				{Array: "B", Subscripts: []affine.Expr{i}, Write: true},
				{Array: "B", Subscripts: []affine.Expr{i.AddConst(1)}},
			},
		}},
	}
	info := AnalyzeNest(n)
	if info.Parallel[0] {
		t.Fatal("loop with distance-1 dependence must be sequential")
	}
}

func TestAnalyzeKernelCoversAllNests(t *testing.T) {
	k := affine.MustLookup("2mm")
	infos := AnalyzeKernel(k)
	if len(infos) != len(k.Nests) {
		t.Fatalf("got %d infos for %d nests", len(infos), len(k.Nests))
	}
	for _, info := range infos {
		if info.NumParallel() != 2 {
			t.Errorf("2mm nest %s: %d parallel loops, want 2", info.Nest.Name, info.NumParallel())
		}
	}
}
