package deps

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/intlin"
)

// This file provides an exact (Fourier–Motzkin-based) dependence oracle on
// top of internal/intlin. The fast distance-vector analysis in deps.go is
// what the pipeline uses; the oracle exists to *verify* it: a loop the
// fast analysis classifies as parallel must have no carried dependence
// under the exact test (soundness), and carried classifications can be
// confirmed (completeness on the catalog). See exact_test.go.

// ExactCarriesLoop reports whether a dependence between src and dst
// (references to the same array, at least one write) can be carried at the
// given loop level of the nest: there exist iteration instances that
// access the same element, agree on all loops outer than level, and
// differ at level. Problem sizes are taken from params.
func ExactCarriesLoop(n *affine.Nest, params map[string]int64, src, dst affine.Ref, level int) (bool, error) {
	if src.Array != dst.Array {
		return false, nil
	}
	if len(src.Subscripts) != len(dst.Subscripts) {
		return false, fmt.Errorf("deps: rank mismatch on array %s", src.Array)
	}
	// Either direction at the carrying level counts.
	for _, dir := range []int{+1, -1} {
		feasible, err := carriedSystem(n, params, src, dst, level, dir)
		if err != nil {
			return false, err
		}
		if feasible {
			return true, nil
		}
	}
	return false, nil
}

// carriedSystem builds and decides one directed system.
func carriedSystem(n *affine.Nest, params map[string]int64, src, dst affine.Ref, level, dir int) (bool, error) {
	depth := n.Depth()
	vars := make([]string, 0, 2*depth)
	sName := func(d int) string { return fmt.Sprintf("s%d", d) }
	dName := func(d int) string { return fmt.Sprintf("d%d", d) }
	for d := 0; d < depth; d++ {
		vars = append(vars, sName(d), dName(d))
	}
	sys := intlin.NewSystem(vars...)

	// Loop bounds for both instances.
	for d, l := range n.Loops {
		lo := l.Lower.Eval(nil, params)
		hi := l.Upper.Eval(nil, params) - 1
		if hi < lo {
			return false, nil // empty loop: no iterations, no dependence
		}
		if err := sys.AddBounds(sName(d), lo, hi); err != nil {
			return false, err
		}
		if err := sys.AddBounds(dName(d), lo, hi); err != nil {
			return false, err
		}
	}

	// Subscript equalities: e_src(s) - e_dst(d) == 0 per position.
	for p := range src.Subscripts {
		es := src.Subscripts[p].EvalParams(params)
		ed := dst.Subscripts[p].EvalParams(params)
		coefs := map[string]int64{}
		for d, l := range n.Loops {
			if c := es.IterCoeff(l.Name); c != 0 {
				coefs[sName(d)] += c
			}
			if c := ed.IterCoeff(l.Name); c != 0 {
				coefs[dName(d)] -= c
			}
		}
		if err := sys.AddEq(coefs, es.Const-ed.Const); err != nil {
			return false, err
		}
	}

	// Ordering: equal on outer levels, strictly different at `level`.
	for o := 0; o < level; o++ {
		if err := sys.AddEq(map[string]int64{sName(o): 1, dName(o): -1}, 0); err != nil {
			return false, err
		}
	}
	// dir=+1: d_level >= s_level + 1; dir=-1: s_level >= d_level + 1.
	if dir > 0 {
		if err := sys.AddGeq(map[string]int64{dName(level): 1, sName(level): -1}, -1); err != nil {
			return false, err
		}
	} else {
		if err := sys.AddGeq(map[string]int64{sName(level): 1, dName(level): -1}, -1); err != nil {
			return false, err
		}
	}
	return sys.Feasible(), nil
}

// ParallelismViolation describes a loop the fast analysis calls parallel
// while the exact oracle finds a carried dependence.
type ParallelismViolation struct {
	Nest  string
	Loop  string
	Array string
}

func (v ParallelismViolation) String() string {
	return fmt.Sprintf("nest %s: loop %s carries a dependence on %s", v.Nest, v.Loop, v.Array)
}

// VerifyParallelism cross-checks AnalyzeNest against the exact oracle for
// one nest: every loop classified parallel must be free of carried
// dependences over all same-array reference pairs with a write. It
// returns the violations (empty = sound).
func VerifyParallelism(n *affine.Nest, params map[string]int64) ([]ParallelismViolation, error) {
	info := AnalyzeNest(n)
	var out []ParallelismViolation

	type refPos struct{ r affine.Ref }
	var refs []refPos
	for _, st := range n.Body {
		for _, r := range st.Refs {
			refs = append(refs, refPos{r})
		}
	}
	for level, par := range info.Parallel {
		if !par {
			continue
		}
		for a := 0; a < len(refs); a++ {
			for b := a; b < len(refs); b++ {
				ra, rb := refs[a].r, refs[b].r
				if ra.Array != rb.Array || (!ra.Write && !rb.Write) {
					continue
				}
				carried, err := ExactCarriesLoop(n, params, ra, rb, level)
				if err != nil {
					return nil, err
				}
				if carried {
					out = append(out, ParallelismViolation{
						Nest: n.Name, Loop: n.Loops[level].Name, Array: ra.Array,
					})
				}
			}
		}
	}
	return out, nil
}
