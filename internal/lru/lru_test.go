package lru

import "testing"

func TestEvictsOldest(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("b = %d, %t; want 2, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %t; want 3, true", v, ok)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b, not a
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived: it was touched most recently")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	if _, _, evictions := c.Stats(); evictions != 0 {
		t.Fatalf("evictions = %d, want 0: updates must not evict", evictions)
	}
}

func TestStats(t *testing.T) {
	c := New[string](4)
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	c.Get("missing")
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = %d hits, %d misses, %d evictions; want 2, 1, 0", hits, misses, evictions)
	}
}

func TestPurge(t *testing.T) {
	c := New[int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if got := c.Len(); got != 0 {
		t.Fatalf("len after purge = %d, want 0", got)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be gone after purge")
	}
}

func TestMaxClampedToOne(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if got := c.Len(); got != 1 {
		t.Fatalf("len = %d, want 1: capacity below 1 clamps to 1", got)
	}
}
