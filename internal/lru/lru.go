// Package lru provides the mutex-guarded fixed-capacity
// least-recently-used cache shared by the service layer's two cache
// tiers (internal/serve: Program artifacts and solved Selections) and
// the sweep engine's evaluation cache (the root package's EvalCache).
// All of those cache pure functions of their key, so eviction is always
// safe; the point of sharing one implementation is that every long-lived
// process (cmd/eatssd foremost) gets the same bounded-footprint,
// recency-aware behaviour instead of ad-hoc maps that grow without
// limit.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity least-recently-used cache keyed by string.
// Get refreshes recency; Put of a full cache evicts the least recently
// used entry. Safe for concurrent use.
type Cache[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	m         map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type entry[V any] struct {
	key string
	val V
}

// New returns an empty cache holding at most max entries (a max below 1
// is clamped to 1).
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the value stored under key and refreshes its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores v under key, evicting the least recently used entry when
// the cache is full (reported in the return value, so callers can keep
// their own eviction telemetry). Putting an existing key updates its
// value and refreshes its recency.
func (c *Cache[V]) Put(key string, v V) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*entry[V]).val = v
		c.ll.MoveToFront(el)
		return false
	}
	c.m[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*entry[V]).key)
		c.evictions++
		return true
	}
	return false
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit, miss and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Purge drops every cached entry (the counters are kept).
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}
