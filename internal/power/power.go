// Package power implements the GPU power and energy model used in place of
// nvidia-smi / tegrastats measurements. Following the decomposition the
// paper observes on the GA100 (Fig. 1), total power is
//
//	P = P_constant + P_static + P_dynamic
//
// where the dynamic component responds to SM activity (scaled by the DVFS
// clock and its implied voltage), L2 sector traffic, DRAM traffic,
// shared-memory bank activity, and the in-cache liveness of thread-private
// data — the term through which EATSS's shortened data lifetimes save
// energy (Sec. IV-A, [23]).
package power

import "repro/internal/arch"

// Activity summarizes one kernel execution's resource usage rates.
type Activity struct {
	// ClockMHz is the SM clock chosen by DVFS.
	ClockMHz float64
	// SMBusyFrac is the fraction of time SMs execute instructions
	// (compute-boundness x issue efficiency), in [0,1].
	SMBusyFrac float64
	// GridFrac is the fraction of SMs occupied by the grid, in [0,1].
	GridFrac float64
	// L2GBps is the L2 sector traffic rate in GB/s.
	L2GBps float64
	// DRAMGBps is the DRAM traffic rate in GB/s.
	DRAMGBps float64
	// SharedBusyFrac is the shared-memory bank utilization, in [0,1].
	SharedBusyFrac float64
	// LiveFrac measures the residency pressure of thread-private
	// (intra-thread reuse) data in the SM-local cache, in [0,1]:
	// the liveness term of the paper's energy story.
	LiveFrac float64
}

// Breakdown is a per-component power estimate in Watts.
type Breakdown struct {
	Constant  float64
	Static    float64
	DynSM     float64
	DynL2     float64
	DynDRAM   float64
	DynShared float64
	DynLive   float64
}

// Total returns the summed power.
func (b Breakdown) Total() float64 {
	return b.Constant + b.Static + b.DynSM + b.DynL2 + b.DynDRAM + b.DynShared + b.DynLive
}

// Dynamic returns the dynamic component only.
func (b Breakdown) Dynamic() float64 {
	return b.DynSM + b.DynL2 + b.DynDRAM + b.DynShared + b.DynLive
}

// Estimate computes the power breakdown for an activity level on g.
//
// The SM dynamic term scales with f*V^2; on NVIDIA parts voltage scales
// roughly linearly with frequency in the DVFS range, so we model the SM
// power as (f/f_base)^3 — this is what makes DVFS an effective power knob
// and what EATSS "cooperates" with.
func Estimate(g *arch.GPU, a Activity) Breakdown {
	fScale := a.ClockMHz / g.BaseClockMHz
	fv2 := fScale * fScale * fScale

	return Breakdown{
		Constant:  g.ConstantWatts,
		Static:    g.StaticWatts,
		DynSM:     g.DynSMWatts * a.SMBusyFrac * a.GridFrac * fv2,
		DynL2:     g.DynL2WattsPerGBs * a.L2GBps,
		DynDRAM:   g.DynDRAMWattsPerGBs * a.DRAMGBps,
		DynShared: g.DynSharedWatts * a.SharedBusyFrac * a.GridFrac,
		DynLive:   g.DynLiveWatts * a.LiveFrac * a.GridFrac,
	}
}

// Energy returns Joules for an average power over a duration in seconds.
func Energy(avgWatts, seconds float64) float64 { return avgWatts * seconds }

// EnergyBreakdown is a per-component energy attribution in Joules,
// mirroring Breakdown's components. It is what the profiling layer
// (internal/profile) aggregates per nest and per memory level.
type EnergyBreakdown struct {
	Constant  float64
	Static    float64
	DynSM     float64
	DynL2     float64
	DynDRAM   float64
	DynShared float64
	DynLive   float64
}

// Total returns the summed energy.
func (e EnergyBreakdown) Total() float64 {
	return e.Constant + e.Static + e.DynSM + e.DynL2 + e.DynDRAM + e.DynShared + e.DynLive
}

// Energy converts a power breakdown into a per-component energy
// attribution over a duration, applying the measurement ramp to the
// dynamic components only (the constant/static floor is always drawn).
// By construction the components sum to
//
//	(Constant + Static + Dynamic()*ramp) * seconds
//
// which is exactly how the simulator computes a nest's observed EnergyJ —
// the conservation invariant internal/profile's tests pin down.
func (b Breakdown) Energy(ramp, seconds float64) EnergyBreakdown {
	return EnergyBreakdown{
		Constant:  b.Constant * seconds,
		Static:    b.Static * seconds,
		DynSM:     b.DynSM * ramp * seconds,
		DynL2:     b.DynL2 * ramp * seconds,
		DynDRAM:   b.DynDRAM * ramp * seconds,
		DynShared: b.DynShared * ramp * seconds,
		DynLive:   b.DynLive * ramp * seconds,
	}
}

// PerfPerWatt returns the paper's PPW metric (Sec. V-B): floating-point
// throughput divided by average power, reported as GFLOP/s per Watt.
func PerfPerWatt(flops float64, seconds, avgWatts float64) float64 {
	if seconds <= 0 || avgWatts <= 0 {
		return 0
	}
	return flops / seconds / 1e9 / avgWatts
}
