package power

import (
	"testing"

	"repro/internal/arch"
)

func baseActivity(g *arch.GPU) Activity {
	return Activity{
		ClockMHz:   g.BaseClockMHz,
		SMBusyFrac: 0.8,
		GridFrac:   1.0,
		L2GBps:     500,
		DRAMGBps:   200,
		LiveFrac:   0.4,
	}
}

func TestBreakdownTotals(t *testing.T) {
	g := arch.GA100()
	b := Estimate(g, baseActivity(g))
	sum := b.Constant + b.Static + b.DynSM + b.DynL2 + b.DynDRAM + b.DynShared + b.DynLive
	if b.Total() != sum {
		t.Fatal("Total != sum of components")
	}
	if b.Dynamic() != sum-b.Constant-b.Static {
		t.Fatal("Dynamic != total - idle")
	}
}

func TestIdleFloor(t *testing.T) {
	g := arch.GA100()
	b := Estimate(g, Activity{ClockMHz: g.MinClockMHz})
	if b.Total() != g.ConstantWatts+g.StaticWatts {
		t.Fatalf("idle power = %g, want %g", b.Total(), g.ConstantWatts+g.StaticWatts)
	}
}

func TestClockCubedScaling(t *testing.T) {
	g := arch.GA100()
	a := baseActivity(g)
	a.ClockMHz = g.BaseClockMHz
	p1 := Estimate(g, a).DynSM
	a.ClockMHz = 2 * g.BaseClockMHz
	p2 := Estimate(g, a).DynSM
	if p2 < 7.9*p1 || p2 > 8.1*p1 {
		t.Fatalf("DynSM at 2x clock = %g, want ~8x %g (f*V^2 ~ f^3)", p2, p1)
	}
}

func TestMonotoneInLiveness(t *testing.T) {
	g := arch.GA100()
	a := baseActivity(g)
	a.LiveFrac = 0.2
	lo := Estimate(g, a).Total()
	a.LiveFrac = 0.8
	hi := Estimate(g, a).Total()
	if hi <= lo {
		t.Fatal("power must grow with data liveness (the paper's central mechanism)")
	}
}

func TestMonotoneInL2Traffic(t *testing.T) {
	g := arch.GA100()
	a := baseActivity(g)
	a.L2GBps = 100
	lo := Estimate(g, a).Total()
	a.L2GBps = 2000
	hi := Estimate(g, a).Total()
	if hi <= lo {
		t.Fatal("power must grow with L2 sector rate (Fig. 9)")
	}
}

func TestPerfPerWatt(t *testing.T) {
	// 1 TFLOP in 1 s at 100 W = 10 GFLOP/s/W.
	if got := PerfPerWatt(1e12, 1, 100); got != 10 {
		t.Fatalf("PPW = %g, want 10", got)
	}
	if PerfPerWatt(1e12, 0, 100) != 0 || PerfPerWatt(1e12, 1, 0) != 0 {
		t.Fatal("degenerate PPW should be 0")
	}
}

func TestEnergy(t *testing.T) {
	if Energy(100, 2.5) != 250 {
		t.Fatal("energy arithmetic wrong")
	}
}
