package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TreeSummary renders the recorded spans as an indented tree with
// durations and attributes — the human-readable exporter.
func TreeSummary() string { return TreeSummaryOf(Spans()) }

// TreeSummaryOf renders the given spans as an indented tree — the
// per-request form used by the /debug/requests drill-down, where the
// spans come from one trace instead of the process-wide sink.
func TreeSummaryOf(spans []*Span) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	children := make(map[uint64][]*Span)
	ids := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	var roots []*Span
	for _, sp := range spans {
		// Treat spans whose parent was recorded before a Reset as roots.
		if sp.Parent == 0 || !ids[sp.Parent] {
			roots = append(roots, sp)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s  %s%s\n",
			strings.Repeat("  ", depth), sp.Name,
			formatDur(sp.Duration()), formatAttrs(sp.Attrs))
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

func formatDur(d time.Duration) string {
	if d == 0 {
		return "(unfinished)"
	}
	return d.Round(time.Microsecond).String()
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value())
	}
	return "  {" + strings.Join(parts, " ") + "}"
}

// MetricsSummary renders the snapshot as sorted "name value" lines.
func MetricsSummary() string {
	s := Snapshot()
	var b strings.Builder
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-40s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-40s %g\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-40s n=%d mean=%.3g\n", name, h.Count, h.Mean())
	}
	return b.String()
}

// JSONSpan is the span shape of the JSON exporters.
type JSONSpan struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Trace   string         `json:"trace,omitempty"`
	StartNs int64          `json:"start_ns"`
	DurNs   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// JSONSpans converts spans to the JSON export shape — used by WriteJSON
// and by the /debug/requests per-trace drill-down.
func JSONSpans(spans []*Span) []JSONSpan {
	js := make([]JSONSpan, 0, len(spans))
	for _, sp := range spans {
		js = append(js, JSONSpan{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			Trace:   sp.TraceID,
			StartNs: sp.StartAt.UnixNano(),
			DurNs:   int64(sp.Duration()),
			Attrs:   attrMap(sp.Attrs),
		})
	}
	return js
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSON writes {"spans": [...], "metrics": {...}} — the raw export
// for downstream tooling.
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans   []JSONSpan      `json:"spans"`
		Metrics MetricsSnapshot `json:"metrics"`
	}{JSONSpans(Spans()), Snapshot()})
}

// chromeEvent is one Chrome trace-event ("X" = complete event). The
// format is documented in the Trace Event Format spec; files load in
// chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the recorded spans as Chrome trace events.
// Each top-level span gets its own track (tid) with descendants nested
// inside it; timestamps are microseconds relative to the earliest span.
// The metrics snapshot rides along under the extra "metrics" key, which
// trace viewers ignore.
func WriteChromeTrace(w io.Writer) error { return WriteChromeTraceOf(w, Spans()) }

// WriteChromeTraceOf writes the given spans as Chrome trace events —
// the per-request form behind /debug/requests?view=chrome, so a single
// request's tree loads in chrome://tracing or ui.perfetto.dev.
func WriteChromeTraceOf(w io.Writer, spans []*Span) error {
	var t0 time.Time
	for _, sp := range spans {
		if t0.IsZero() || sp.StartAt.Before(t0) {
			t0 = sp.StartAt
		}
	}
	// Track = the span's root ancestor, so parallel candidates render as
	// separate rows while each pipeline stays properly nested.
	byID := make(map[uint64]*Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	rootOf := func(sp *Span) uint64 {
		for sp.Parent != 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				break
			}
			sp = p
		}
		return sp.ID
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		dur := sp.Duration()
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "eatss",
			Ph:   "X",
			Ts:   float64(sp.StartAt.Sub(t0)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  rootOf(sp),
			Args: attrMap(sp.Attrs),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent   `json:"traceEvents"`
		Metrics     MetricsSnapshot `json:"metrics"`
	}{events, Snapshot()})
}
