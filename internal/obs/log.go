package obs

import (
	"context"
	"io"
	"log/slog"

	"repro/internal/obs/flight"
)

// LogHandler is a slog.Handler wrapper that ties structured logging
// into the observability layer:
//
//   - records emitted under a context carrying an obs span gain a
//     "span" attribute with the span's ID, so log lines correlate with
//     the trace tree,
//   - records are mirrored into the flight recorder (KindLog events)
//     when it is capturing, so a crash dump interleaves the last log
//     lines with the span and metric activity around them.
//
// The wrapper adds no cost to disabled levels: Enabled defers to the
// inner handler, and slog short-circuits before building a Record.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with span tagging and flight mirroring.
func NewLogHandler(inner slog.Handler) LogHandler { return LogHandler{inner: inner} }

// NewLogger returns a text logger writing to w at the given level, with
// span tagging and flight mirroring — the shared diagnostic logger the
// cmds use in place of ad-hoc fmt.Fprintf.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(NewLogHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// Enabled defers to the wrapped handler.
func (h LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle tags the record with the active span ID (if any), mirrors it
// into the flight recorder carrying the request trace ID (if any), and
// forwards it.
func (h LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	var spanID uint64
	var traceID string
	if sp := FromContext(ctx); sp != nil {
		spanID = sp.ID
		traceID = sp.TraceID
		rec.AddAttrs(slog.Uint64("span", spanID))
	}
	flight.Default.Log(rec.Level.String(), rec.Message, spanID, traceID)
	return h.inner.Handle(ctx, rec)
}

// WithAttrs wraps the inner handler's WithAttrs.
func (h LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's WithGroup.
func (h LogHandler) WithGroup(name string) slog.Handler {
	return LogHandler{inner: h.inner.WithGroup(name)}
}
