package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// withEnabled runs fn with a clean, enabled layer and restores the
// disabled default afterwards.
func withEnabled(t *testing.T, fn func()) {
	t.Helper()
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	fn()
}

func TestSpanNestingAndOrdering(t *testing.T) {
	withEnabled(t, func() {
		ctx, root := Start(context.Background(), "root")
		cctx, child := Start(ctx, "child")
		_, grand := Start(cctx, "grandchild")
		grand.End()
		child.End()
		_, sib := Start(ctx, "sibling")
		sib.End()
		root.End()

		spans := Spans()
		if len(spans) != 4 {
			t.Fatalf("spans = %d, want 4", len(spans))
		}
		names := []string{"root", "child", "grandchild", "sibling"}
		for i, want := range names {
			if spans[i].Name != want {
				t.Fatalf("span[%d] = %q, want %q (start order)", i, spans[i].Name, want)
			}
		}
		if child.Parent != root.ID {
			t.Errorf("child.Parent = %d, want root %d", child.Parent, root.ID)
		}
		if grand.Parent != child.ID {
			t.Errorf("grandchild.Parent = %d, want child %d", grand.Parent, child.ID)
		}
		if sib.Parent != root.ID {
			t.Errorf("sibling.Parent = %d, want root %d", sib.Parent, root.ID)
		}
		if root.Parent != 0 {
			t.Errorf("root.Parent = %d, want 0", root.Parent)
		}
		for _, sp := range spans {
			if sp.EndAt.Before(sp.StartAt) {
				t.Errorf("span %s ends before it starts", sp.Name)
			}
		}
	})
}

func TestSpanAttrs(t *testing.T) {
	withEnabled(t, func() {
		_, sp := Start(context.Background(), "x")
		sp.SetInt("i", 7)
		sp.SetFloat("f", 2.5)
		sp.SetStr("s", "hello")
		sp.SetBool("b", true)
		sp.SetInt("i", 9) // later value wins in Attr()
		sp.End()
		if a, ok := sp.Attr("i"); !ok || a.IntV != 9 {
			t.Errorf("Attr(i) = %+v, %v", a, ok)
		}
		if a, ok := sp.Attr("f"); !ok || a.FloatV != 2.5 {
			t.Errorf("Attr(f) = %+v, %v", a, ok)
		}
		if a, ok := sp.Attr("s"); !ok || a.StrV != "hello" {
			t.Errorf("Attr(s) = %+v, %v", a, ok)
		}
		if a, ok := sp.Attr("b"); !ok || a.Value() != true {
			t.Errorf("Attr(b) = %+v, %v", a, ok)
		}
		if _, ok := sp.Attr("missing"); ok {
			t.Error("Attr(missing) found")
		}
	})
}

func TestDisabledFastPath(t *testing.T) {
	Disable()
	Reset()
	ctx := context.Background()
	ctx2, sp := Start(ctx, "never")
	if sp != nil {
		t.Fatal("Start returned a span while disabled")
	}
	if ctx2 != ctx {
		t.Fatal("Start derived a new context while disabled")
	}
	// Every method must be a safe no-op on the nil span.
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1)
	sp.SetStr("k", "v")
	sp.SetBool("k", true)
	sp.Set(Int("k", 1))
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if n := len(Spans()); n != 0 {
		t.Fatalf("recorded %d spans while disabled", n)
	}
	c := NewCounter("test.disabled_counter")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("counter advanced while disabled")
	}
}

func TestConcurrentCounters(t *testing.T) {
	withEnabled(t, func() {
		c := NewCounter("test.concurrent")
		h := NewHistogram("test.concurrent_hist", 1, 10, 100)
		g := NewGauge("test.concurrent_gauge")
		const workers, perWorker = 8, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Add(1)
					h.Observe(float64(i % 150))
					g.Set(float64(w))
				}
			}(w)
		}
		wg.Wait()
		if got := c.Value(); got != workers*perWorker {
			t.Fatalf("counter = %d, want %d", got, workers*perWorker)
		}
		s := Snapshot()
		if s.Counters["test.concurrent"] != workers*perWorker {
			t.Fatalf("snapshot counter = %d", s.Counters["test.concurrent"])
		}
		hs := s.Histograms["test.concurrent_hist"]
		if hs.Count != workers*perWorker {
			t.Fatalf("histogram count = %d", hs.Count)
		}
		var total int64
		for _, n := range hs.Counts {
			total += n
		}
		if total != hs.Count {
			t.Fatalf("bucket total %d != count %d", total, hs.Count)
		}
	})
}

func TestCounterIdentity(t *testing.T) {
	a := NewCounter("test.identity")
	b := NewCounter("test.identity")
	if a != b {
		t.Fatal("NewCounter returned distinct instruments for one name")
	}
}

func TestResetClearsData(t *testing.T) {
	withEnabled(t, func() {
		_, sp := Start(context.Background(), "x")
		sp.End()
		c := NewCounter("test.reset")
		c.Add(3)
		Reset()
		if len(Spans()) != 0 {
			t.Fatal("spans survived Reset")
		}
		if c.Value() != 0 {
			t.Fatal("counter survived Reset")
		}
		// The handle must remain usable.
		c.Add(2)
		if c.Value() != 2 {
			t.Fatal("counter handle broken after Reset")
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.buckets", 10, 20)
		for _, v := range []float64{5, 10, 15, 25} {
			h.Observe(v)
		}
		hs := Snapshot().Histograms["test.buckets"]
		want := []int64{2, 1, 1} // <=10: {5,10}; <=20: {15}; overflow: {25}
		for i, n := range want {
			if hs.Counts[i] != n {
				t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, hs.Counts[i], n, hs.Counts)
			}
		}
		if hs.Sum != 55 || hs.Mean() != 13.75 {
			t.Fatalf("sum=%v mean=%v", hs.Sum, hs.Mean())
		}
	})
}

// TestObsOverhead is the benchmark guard the instrumented hot paths rely
// on: with the layer disabled, a full span start/annotate/end cycle plus
// a counter, gauge and histogram update must not allocate.
func TestObsOverhead(t *testing.T) {
	Disable()
	ctx := context.Background()
	c := NewCounter("test.overhead")
	g := NewGauge("test.overhead_gauge")
	h := NewHistogram("test.overhead_hist", 1e-3, 1e-2, 0.1, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "hot")
		sp.SetInt("k", 1)
		sp.SetFloat("f", 1.5)
		sp.SetStr("s", "v")
		c.Add(1)
		g.Set(2.5)
		h.Observe(0.02)
		h.ObserveN(0.3, 4)
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f per span call, want 0", allocs)
	}
}

// TestHistogramObserveEnabledDoesNotAllocate extends the guard to the
// enabled path: a histogram observation is a bucket search plus atomic
// updates — no allocation at any enablement state.
func TestHistogramObserveEnabledDoesNotAllocate(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.enabled_hist", 1e-3, 1e-2, 0.1, 1)
		allocs := testing.AllocsPerRun(1000, func() {
			h.Observe(0.02)
			h.ObserveN(0.3, 4)
		})
		if allocs != 0 {
			t.Fatalf("enabled histogram observation allocates %.1f, want 0", allocs)
		}
	})
}

func TestSetClock(t *testing.T) {
	withEnabled(t, func() {
		base := time.Unix(1000, 0)
		tick := 0
		SetClock(func() time.Time {
			tick++
			return base.Add(time.Duration(tick) * time.Millisecond)
		})
		defer SetClock(nil)
		_, sp := Start(context.Background(), "timed")
		sp.End()
		if sp.Duration() != time.Millisecond {
			t.Fatalf("duration = %v, want 1ms", sp.Duration())
		}
	})
}

// TestConcurrentSpanProducers is the audit test for the parallel sweep
// engine: many goroutines opening span trees, annotating them, and
// updating metrics at once, with concurrent Spans()/Snapshot() readers.
// The contract it pins down (and -race enforces):
//
//   - Start/End on distinct spans is safe from any goroutine; the span
//     sink serializes registration internally.
//   - A span's attribute setters are NOT synchronized — each span must
//     stay owned by one goroutine, which the sweep engine guarantees by
//     giving every worker its own "sweep.worker" span.
//   - Parentage is taken from the context, so concurrent children of a
//     shared parent span are safe: the parent is only read.
func TestConcurrentSpanProducers(t *testing.T) {
	Enable()
	defer Disable()
	Reset()

	c := NewCounter("obs.test.concurrent")
	h := NewHistogram("obs.test.concurrent_hist", 1, 10, 100)

	const producers = 8
	const perProducer = 50
	ctx, root := Start(context.Background(), "concurrent.root")

	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wctx, wsp := Start(ctx, "concurrent.worker")
			wsp.SetInt("worker", int64(worker))
			for i := 0; i < perProducer; i++ {
				_, sp := Start(wctx, "concurrent.item")
				sp.SetInt("i", int64(i))
				c.Add(1)
				h.Observe(float64(i))
				sp.End()
			}
			wsp.End()
		}(pi)
	}
	// Concurrent readers: snapshots must be safe while producers run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = Spans()
				_ = Snapshot()
			}
		}()
	}
	wg.Wait()
	root.End()

	if got := c.Value(); got != producers*perProducer {
		t.Fatalf("counter = %d, want %d", got, producers*perProducer)
	}
	workers := SpansNamed("concurrent.worker")
	if len(workers) != producers {
		t.Fatalf("worker spans = %d, want %d", len(workers), producers)
	}
	workerIDs := make(map[uint64]bool)
	for _, w := range workers {
		if w.Parent != root.ID {
			t.Fatalf("worker parent = %d, want %d", w.Parent, root.ID)
		}
		workerIDs[w.ID] = true
	}
	items := SpansNamed("concurrent.item")
	if len(items) != producers*perProducer {
		t.Fatalf("item spans = %d, want %d", len(items), producers*perProducer)
	}
	seen := make(map[uint64]bool, len(items))
	for _, it := range items {
		if !workerIDs[it.Parent] {
			t.Fatalf("item parented to %d, not a worker", it.Parent)
		}
		if seen[it.ID] {
			t.Fatalf("duplicate span ID %d", it.ID)
		}
		seen[it.ID] = true
	}
	snap := Snapshot()
	if snap.Histograms["obs.test.concurrent_hist"].Count != producers*perProducer {
		t.Fatalf("histogram count = %d, want %d",
			snap.Histograms["obs.test.concurrent_hist"].Count, producers*perProducer)
	}
}
