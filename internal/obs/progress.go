package obs

import (
	"sync/atomic"
	"time"
)

// Live progress state: the most recent sweep and the solver's current
// incumbent, published lock-free for the /progress introspection
// endpoint. Unlike spans and metrics (which accumulate), this is
// last-writer-wins live state — it answers "what is the toolchain doing
// right now" while a long sweep or solve is running.
var (
	activeSweep     atomic.Pointer[SweepProgress]
	activeIncumbent atomic.Pointer[IncumbentState]
)

// SweepProgress is the live state of one tile-space sweep. The producer
// (the sweep engine) updates it with atomic counters; any goroutine may
// read it concurrently through the accessors.
type SweepProgress struct {
	// Kernel names the swept kernel.
	Kernel string
	// Total is the number of points in the sweep's space.
	Total int64
	// StartNs is the sweep's start time in Unix nanoseconds.
	StartNs int64

	done     atomic.Int64
	hits     atomic.Int64
	skipped  atomic.Int64
	pruned   atomic.Int64
	symbolic atomic.Int64
	residual atomic.Int64
	finished atomic.Bool

	evaluator atomic.Pointer[string]
}

// BeginSweep publishes a new live sweep and returns its progress handle.
// It returns nil when the layer is disabled; all methods are safe on a
// nil handle, so the sweep engine needs no guards.
func BeginSweep(kernel string, total int) *SweepProgress {
	if !enabled.Load() {
		return nil
	}
	p := &SweepProgress{Kernel: kernel, Total: int64(total), StartNs: time.Now().UnixNano()}
	activeSweep.Store(p)
	return p
}

// PointDone records one completed evaluation. Done counts are monotone
// non-decreasing for the sweep's lifetime.
func (p *SweepProgress) PointDone(cacheHit, ok bool) {
	if p == nil {
		return
	}
	if cacheHit {
		p.hits.Add(1)
	}
	if !ok {
		p.skipped.Add(1)
	}
	p.done.Add(1)
}

// PointPruned records one configuration removed by the static
// feasibility pre-filter before evaluation. Pruned points count toward
// Done (the sweep's Total covers the unfiltered space, and a pruned
// point is as finished as an evaluated one), so /progress percentages
// stay monotone whether or not pruning is on.
func (p *SweepProgress) PointPruned() {
	if p == nil {
		return
	}
	p.pruned.Add(1)
	p.done.Add(1)
}

// Pruned returns the number of statically pruned points.
func (p *SweepProgress) Pruned() int64 {
	if p == nil {
		return 0
	}
	return p.pruned.Load()
}

// SetEvaluator records which evaluation backend the sweep runs on
// ("simulate", "symbolic", "auto") for the /progress view.
func (p *SweepProgress) SetEvaluator(name string) {
	if p == nil {
		return
	}
	p.evaluator.Store(&name)
}

// Evaluator returns the recorded backend name ("" when unset).
func (p *SweepProgress) Evaluator() string {
	if p == nil {
		return ""
	}
	if s := p.evaluator.Load(); s != nil {
		return *s
	}
	return ""
}

// PointEval attributes one fresh (non-cache-hit) evaluation to a
// backend: symbolic marks a closed-form evaluation, residual marks a
// point that fell back to per-point simulation although a symbolic
// backend was requested. Complements PointDone, which counts
// completion.
func (p *SweepProgress) PointEval(symbolic, residual bool) {
	if p == nil {
		return
	}
	if symbolic {
		p.symbolic.Add(1)
	}
	if residual {
		p.residual.Add(1)
	}
}

// SymbolicPoints returns the number of points evaluated in closed form.
func (p *SweepProgress) SymbolicPoints() int64 {
	if p == nil {
		return 0
	}
	return p.symbolic.Load()
}

// ResidualPoints returns the number of points that fell back to
// simulation under a symbolic evaluator.
func (p *SweepProgress) ResidualPoints() int64 {
	if p == nil {
		return 0
	}
	return p.residual.Load()
}

// Finish marks the sweep complete (it stays published as the most
// recent sweep until the next BeginSweep).
func (p *SweepProgress) Finish() {
	if p == nil {
		return
	}
	p.finished.Store(true)
}

// Done returns the number of completed points.
func (p *SweepProgress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// CacheHits returns the number of points served from the eval cache.
func (p *SweepProgress) CacheHits() int64 {
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Skipped returns the number of points that failed to map.
func (p *SweepProgress) Skipped() int64 {
	if p == nil {
		return 0
	}
	return p.skipped.Load()
}

// Finished reports whether the sweep has completed.
func (p *SweepProgress) Finished() bool {
	if p == nil {
		return false
	}
	return p.finished.Load()
}

// CurrentSweep returns the most recently begun sweep, or nil when none
// has been published since the process started.
func CurrentSweep() *SweepProgress { return activeSweep.Load() }

// IncumbentState is the solver's most recent objective improvement —
// the live view of the paper's OBJ_{n+1} > OBJ_n climb (Sec. IV-L).
type IncumbentState struct {
	// Name identifies the optimization (typically the kernel being
	// solved).
	Name string
	// Round is the Maximize improvement round that found the incumbent.
	Round int64
	// Objective is the incumbent objective value.
	Objective int64
	// TimeNs is when the incumbent was found (Unix nanoseconds).
	TimeNs int64
}

// SetIncumbent publishes a new solver incumbent. No-op when the layer
// is disabled.
func SetIncumbent(name string, round, objective int64) {
	if !enabled.Load() {
		return
	}
	activeIncumbent.Store(&IncumbentState{
		Name: name, Round: round, Objective: objective, TimeNs: time.Now().UnixNano(),
	})
}

// Incumbent returns the most recently published solver incumbent; ok is
// false when none has been published since the process started.
func Incumbent() (IncumbentState, bool) {
	p := activeIncumbent.Load()
	if p == nil {
		return IncumbentState{}, false
	}
	return *p, true
}

// resetProgress clears the live state (called from Reset).
func resetProgress() {
	activeSweep.Store(nil)
	activeIncumbent.Store(nil)
}
