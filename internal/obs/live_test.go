package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/obs/flight"
)

// withFlight runs fn with both the obs layer and the flight recorder
// enabled and clean, restoring the disabled defaults afterwards.
func withFlight(t *testing.T, fn func()) {
	t.Helper()
	Reset()
	flight.Default.Reset()
	Enable()
	flight.Default.Enable()
	defer func() {
		Disable()
		flight.Default.Disable()
		Reset()
		flight.Default.Reset()
	}()
	fn()
}

func TestSpansAndMetricsFlowIntoFlight(t *testing.T) {
	withFlight(t, func() {
		ctx, sp := Start(context.Background(), "flight.test")
		_, child := Start(ctx, "flight.child")
		child.End()
		sp.End()
		NewCounter("flight.test_counter").Add(3)
		NewGauge("flight.test_gauge").Set(1.5)

		kinds := map[flight.Kind]int{}
		var names []string
		for _, e := range flight.Default.Snapshot() {
			kinds[e.Kind]++
			names = append(names, e.Name)
		}
		if kinds[flight.KindSpanBegin] != 2 || kinds[flight.KindSpanEnd] != 2 {
			t.Fatalf("span events = %d begin / %d end, want 2/2 (all: %v)",
				kinds[flight.KindSpanBegin], kinds[flight.KindSpanEnd], names)
		}
		if kinds[flight.KindMetric] != 2 {
			t.Fatalf("metric events = %d, want 2 (counter + gauge)", kinds[flight.KindMetric])
		}
		// Span end events carry the duration and matching ID.
		for _, e := range flight.Default.Snapshot() {
			if e.Kind == flight.KindSpanEnd && e.Name == "flight.test" {
				if e.Span != sp.ID || e.A < 0 {
					t.Fatalf("span end event = %+v, want span %d with duration", e, sp.ID)
				}
			}
		}
	})
}

func TestSweepProgressLifecycle(t *testing.T) {
	withFlight(t, func() {
		p := BeginSweep("gemm", 10)
		if p == nil {
			t.Fatal("BeginSweep returned nil while enabled")
		}
		if got := CurrentSweep(); got != p {
			t.Fatal("CurrentSweep does not return the active sweep")
		}
		p.PointDone(false, true)
		p.PointDone(true, true)
		p.PointDone(false, false)
		if p.Done() != 3 || p.CacheHits() != 1 || p.Skipped() != 1 {
			t.Fatalf("done/hits/skipped = %d/%d/%d, want 3/1/1", p.Done(), p.CacheHits(), p.Skipped())
		}
		if p.Finished() {
			t.Fatal("sweep finished early")
		}
		p.Finish()
		if !p.Finished() {
			t.Fatal("Finish did not mark the sweep")
		}
	})
}

func TestProgressDisabledReturnsNil(t *testing.T) {
	Disable()
	Reset()
	if p := BeginSweep("gemm", 10); p != nil {
		t.Fatal("BeginSweep returned a handle while disabled")
	}
	// All methods must be nil-safe.
	var p *SweepProgress
	p.PointDone(true, true)
	p.Finish()
	if p.Done() != 0 || p.Finished() {
		t.Fatal("nil progress handle misbehaves")
	}
	SetIncumbent("x", 1, 2)
	if _, ok := Incumbent(); ok {
		t.Fatal("incumbent published while disabled")
	}
}

func TestIncumbentState(t *testing.T) {
	withFlight(t, func() {
		SetIncumbent("gemm", 3, 928)
		inc, ok := Incumbent()
		if !ok {
			t.Fatal("no incumbent published")
		}
		if inc.Name != "gemm" || inc.Round != 3 || inc.Objective != 928 || inc.TimeNs == 0 {
			t.Fatalf("incumbent = %+v", inc)
		}
		Reset()
		if _, ok := Incumbent(); ok {
			t.Fatal("incumbent survived Reset")
		}
	})
}

func TestObserveN(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.observe_n", 2, 4)
		h.ObserveN(1, 5)  // first bucket
		h.ObserveN(3, 2)  // second bucket
		h.ObserveN(10, 1) // overflow
		h.ObserveN(1, 0)  // no-op
		h.ObserveN(1, -3) // no-op
		hs := Snapshot().Histograms["test.observe_n"]
		if hs.Count != 8 {
			t.Fatalf("count = %d, want 8", hs.Count)
		}
		want := []int64{5, 2, 1}
		for i, n := range want {
			if hs.Counts[i] != n {
				t.Fatalf("bucket[%d] = %d, want %d", i, hs.Counts[i], n)
			}
		}
		if hs.Sum != 5*1+2*3+10 {
			t.Fatalf("sum = %v, want 21", hs.Sum)
		}
	})
}

func TestLogHandlerTagsSpanAndMirrorsToFlight(t *testing.T) {
	withFlight(t, func() {
		var buf bytes.Buffer
		logger := NewLogger(&buf, slog.LevelInfo)
		ctx, sp := Start(context.Background(), "log.test")
		logger.InfoContext(ctx, "solving", "kernel", "gemm")
		logger.Info("no span here")
		sp.End()

		out := buf.String()
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 2 {
			t.Fatalf("log lines = %d, want 2:\n%s", len(lines), out)
		}
		if !strings.Contains(lines[0], "span=") || !strings.Contains(lines[0], "kernel=gemm") {
			t.Fatalf("span-context record not tagged: %s", lines[0])
		}
		if strings.Contains(lines[1], "span=") {
			t.Fatalf("span tag leaked onto spanless record: %s", lines[1])
		}

		var logEvents int
		for _, e := range flight.Default.Snapshot() {
			if e.Kind == flight.KindLog {
				logEvents++
				if e.Str == "solving" && e.Span != sp.ID {
					t.Fatalf("flight log event span = %d, want %d", e.Span, sp.ID)
				}
			}
		}
		if logEvents != 2 {
			t.Fatalf("flight log events = %d, want 2", logEvents)
		}
	})
}

func TestLogHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo).With("tool", "eatss").WithGroup("g")
	logger.Info("hi", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "tool=eatss") || !strings.Contains(out, "g.k=v") {
		t.Fatalf("WithAttrs/WithGroup lost: %s", out)
	}
}

// TestLiveObsOverheadDisabled extends the PR-1 zero-alloc guard over the
// paths this PR added: flight recording, live progress, incumbent
// publication and level-filtered slog calls must all cost nothing when
// the layer is disabled.
func TestLiveObsOverheadDisabled(t *testing.T) {
	Disable()
	flight.Default.Disable()
	Reset()
	flight.Default.Reset()
	logger := NewLogger(io.Discard, slog.LevelError)
	ctx := context.Background()
	c := NewCounter("test.live_overhead")
	h := NewHistogram("test.live_overhead_hist", 1, 2)
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "hot")
		sp.End()
		c.Add(1)
		h.ObserveN(1, 3)
		p := BeginSweep("k", 10)
		p.PointDone(false, true)
		p.Finish()
		SetIncumbent("k", 1, 2)
		flight.Default.SweepPoint("k", 1, true, false)
		flight.Default.Incumbent("k", 1, 2)
		logger.DebugContext(ctx2, "below level")
	})
	if allocs != 0 {
		t.Fatalf("disabled live-observability path allocates %.1f per cycle, want 0", allocs)
	}
}
