package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs/flight"
)

// The process-wide metric registry. Instruments are registered once
// (typically in package-level vars) and updated with lock-free atomics;
// registration by an existing name returns the existing instrument, so
// independent packages can share a series.
var reg struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers (or finds) the counter named name.
func NewCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.counters == nil {
		reg.counters = make(map[string]*Counter)
	}
	if c, ok := reg.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	reg.counters[name] = c
	return c
}

// Add increments the counter by d when the layer is enabled. Deltas are
// mirrored into the flight recorder when it is capturing.
func (c *Counter) Add(d int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(d)
	flight.Default.CounterAdd(c.name, d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// NewGauge registers (or finds) the gauge named name.
func NewGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.gauges == nil {
		reg.gauges = make(map[string]*Gauge)
	}
	if g, ok := reg.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	reg.gauges[name] = g
	return g
}

// Set stores v when the layer is enabled. Updates are mirrored into the
// flight recorder when it is capturing.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
	flight.Default.GaugeSet(g.name, v)
}

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations <= bounds[i]; the final slot is the overflow bucket.
// Each bucket can additionally hold one exemplar — the trace ID of the
// most recent traced observation that landed in it — so the latency
// distribution links back to concrete requests in the trace store.
type Histogram struct {
	name      string
	bounds    []float64
	counts    []atomic.Int64
	count     atomic.Int64
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the request trace it came from.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// NewHistogram registers (or finds) the histogram named name with the
// given ascending upper bounds. Bounds are fixed at first registration.
func NewHistogram(name string, bounds ...float64) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.hists == nil {
		reg.hists = make(map[string]*Histogram)
	}
	if h, ok := reg.hists[name]; ok {
		return h
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		name:      name,
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
	reg.hists[name] = h
	return h
}

// Observe records one sample when the layer is enabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	// Lock-free float accumulation via CAS on the bit pattern.
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// publishes it as the bucket's exemplar — the serve layer's form, tying
// each latency bucket to the last request that landed in it.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil || !enabled.Load() {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// ObserveN records n identical samples of value v in one update — the
// batched form the solver uses to publish a whole per-solve depth
// profile without one atomic round-trip per search node.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	// Counts[i] holds observations <= Bounds[i]; the final entry is the
	// overflow bucket.
	Counts []int64 `json:"counts"`
	// Exemplars[i] is bucket i's most recent traced observation, nil if
	// the bucket never saw one. Omitted entirely when no bucket has one.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// MetricsSnapshot is a point-in-time copy of every registered metric.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the whole registry. Zero-valued instruments are
// omitted so an idle registry snapshots empty.
func Snapshot() MetricsSnapshot {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, c := range reg.counters {
		if v := c.v.Load(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range reg.gauges {
		if v := g.Value(); v != 0 {
			s.Gauges[name] = v
		}
	}
	for name, h := range reg.hists {
		if h.count.Load() == 0 {
			continue
		}
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		for i := range h.exemplars {
			if ex := h.exemplars[i].Load(); ex != nil {
				if hs.Exemplars == nil {
					hs.Exemplars = make([]*Exemplar, len(h.exemplars))
				}
				hs.Exemplars[i] = ex
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

func resetMetrics() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, c := range reg.counters {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.bits.Store(0)
	}
	for _, h := range reg.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		for i := range h.exemplars {
			h.exemplars[i].Store(nil)
		}
	}
}
