package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := New(8)
	r.Enable()
	for i := int64(0); i < 5; i++ {
		r.Record(Event{Kind: KindMetric, Name: "m", A: i})
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("retained = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.A != int64(i) {
			t.Fatalf("event[%d].A = %d, want %d", i, e.A, i)
		}
		if e.TimeNs == 0 {
			t.Fatalf("event[%d] has no timestamp", i)
		}
	}
	if r.Len() != 5 || r.Total() != 5 || r.Cap() != 8 {
		t.Fatalf("Len/Total/Cap = %d/%d/%d, want 5/5/8", r.Len(), r.Total(), r.Cap())
	}
}

// TestWraparoundEvictsOldest pins the ring semantics: once full, each
// append overwrites the oldest event, and Snapshot returns exactly the
// last Cap() events in contiguous sequence order.
func TestWraparoundEvictsOldest(t *testing.T) {
	r := New(4)
	r.Enable()
	const total = 11
	for i := int64(0); i < total; i++ {
		r.Record(Event{Kind: KindMetric, Name: "m", A: i})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want capacity 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(total - 4 + i + 1)
		if e.Seq != wantSeq {
			t.Fatalf("event[%d].Seq = %d, want %d (oldest must be evicted)", i, e.Seq, wantSeq)
		}
		if e.A != int64(e.Seq-1) {
			t.Fatalf("event[%d] payload %d does not match its seq %d", i, e.A, e.Seq)
		}
	}
	if got := r.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
}

// TestFlightWraparoundConcurrent floods a tiny ring from many writers
// while readers snapshot continuously. Every observed event must be
// internally consistent (payload fields written together with its
// sequence number) — a torn slot would show a mismatched payload.
// Run under -race via the sweep-race gate.
func TestFlightWraparoundConcurrent(t *testing.T) {
	r := New(32)
	r.Enable()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				// A and B carry the same value: a torn event would show
				// A != B.
				r.Record(Event{Kind: KindSweepPoint, Name: "k", A: v, B: v})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerErr error
	var rmu sync.Mutex
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Snapshot()
				var lastSeq uint64
				for _, e := range evs {
					if e.A != e.B || (lastSeq != 0 && e.Seq != lastSeq+1) {
						rmu.Lock()
						readerErr = &tornError{e, lastSeq}
						rmu.Unlock()
						return
					}
					lastSeq = e.Seq
				}
			}
		}()
	}
	// Let the writers finish, then release the readers.
	go func() {
		for r.Total() < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if got := r.Len(); got != 32 {
		t.Fatalf("Len = %d, want capacity 32", got)
	}
}

type tornError struct {
	e       Event
	lastSeq uint64
}

func (e *tornError) Error() string {
	return "torn or out-of-order event observed"
}

func TestDisabledRecorderDropsAndDoesNotAllocate(t *testing.T) {
	r := New(8)
	r.Record(Event{Kind: KindMetric, Name: "m"})
	r.SpanBegin(1, 0, "s", "")
	r.SpanEnd(1, "s", time.Second, "")
	r.CounterAdd("c", 1)
	r.GaugeSet("g", 1.5)
	r.Incumbent("solve", 1, 10)
	r.SweepPoint("k", 0, true, false)
	r.Log("INFO", "msg", 0, "")
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("disabled recorder retained events: len=%d total=%d", r.Len(), r.Total())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.SpanBegin(1, 0, "s", "")
		r.CounterAdd("c", 1)
		r.SweepPoint("k", 0, true, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled flight recording allocates %.1f per call, want 0", allocs)
	}
	// A nil recorder must be safe too.
	var nilR *Recorder
	nilR.CounterAdd("c", 1)
	nilR.SpanBegin(1, 0, "s", "")
	if nilR.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
}

func TestEnabledRecordDoesNotAllocate(t *testing.T) {
	r := New(64)
	r.Enable()
	allocs := testing.AllocsPerRun(1000, func() {
		r.SweepPoint("kernel", 3, true, false)
		r.Incumbent("solve", 1, 42)
	})
	if allocs != 0 {
		t.Fatalf("enabled flight recording allocates %.1f per call, want 0 (ring is preallocated)", allocs)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New(4)
	r.Enable()
	for i := int64(0); i < 6; i++ {
		r.SweepPoint("gemm", i, i%2 == 0, false)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Capacity int    `json:"capacity"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
			Name string `json:"name"`
			A    int64  `json:"a"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Capacity != 4 || d.Total != 6 || d.Dropped != 2 {
		t.Fatalf("dump meta = %+v, want capacity 4, total 6, dropped 2", d)
	}
	if len(d.Events) != 4 {
		t.Fatalf("dump events = %d, want 4", len(d.Events))
	}
	if d.Events[0].Seq != 3 || d.Events[0].Kind != "sweep_point" || d.Events[0].Name != "gemm" {
		t.Fatalf("first retained event = %+v", d.Events[0])
	}
}

// TestTraceFilter pins the request-correlation story: events recorded
// under a trace ID can be sliced back out of the ring, both as a
// snapshot and as the filtered /flight?trace= JSON dump.
func TestTraceFilter(t *testing.T) {
	r := New(16)
	r.Enable()
	r.SpanBegin(1, 0, "serve.request", "aaa0")
	r.SpanBegin(2, 0, "serve.request", "bbb1")
	r.SpanEnd(1, "serve.request", time.Millisecond, "aaa0")
	r.CounterAdd("c", 1) // no trace: must not match any filter
	r.Log("INFO", "request", 1, "aaa0")

	evs := r.SnapshotTrace("aaa0")
	if len(evs) != 3 {
		t.Fatalf("SnapshotTrace(aaa0) = %d events, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Trace != "aaa0" {
			t.Fatalf("filtered snapshot leaked trace %q", e.Trace)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSONTrace(&buf, "bbb1"); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Filter string `json:"filter"`
		Total  uint64 `json:"total"`
		Events []struct {
			Trace string `json:"trace"`
			Kind  string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("filtered dump is not valid JSON: %v", err)
	}
	if d.Filter != "bbb1" || d.Total != 5 {
		t.Fatalf("dump meta = %+v, want filter bbb1 over total 5", d)
	}
	if len(d.Events) != 1 || d.Events[0].Trace != "bbb1" || d.Events[0].Kind != "span_begin" {
		t.Fatalf("filtered dump events = %+v, want the one bbb1 span_begin", d.Events)
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	r.Enable()
	r.CounterAdd("c", 1)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	r.CounterAdd("c", 2)
	if evs := r.Snapshot(); len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("recorder unusable after Reset: %+v", evs)
	}
}
