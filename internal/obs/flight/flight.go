// Package flight is the pipeline's bounded-memory flight recorder: a
// fixed-capacity ring of structured events (span begin/end, metric
// deltas, solver incumbents, sweep point completions, log records) that
// captures the most recent toolchain activity with a fixed footprint,
// for crash forensics and the live /flight introspection endpoint.
//
// The recorder follows the same cost discipline as internal/obs:
//
//   - disabled, Record is a single atomic load and performs no
//     allocation (guarded by the obs zero-alloc tests),
//   - enabled, an append claims one preallocated slot under a short
//     critical section — no allocation, no unbounded growth; once the
//     ring is full the oldest events are overwritten.
//
// Writers never block each other for longer than one slot copy, and a
// Snapshot always observes fully-written events (the slot store happens
// inside the same critical section), so dumps are never torn even with
// many concurrent producers (see TestFlightWraparoundConcurrent).
package flight

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates flight-recorder events.
type Kind uint8

// Event kinds.
const (
	// KindSpanBegin marks an obs span opening. Span is the span ID, A its
	// parent ID.
	KindSpanBegin Kind = iota + 1
	// KindSpanEnd marks an obs span closing. A is the duration in ns.
	KindSpanEnd
	// KindMetric records a counter delta (A) or gauge value (F) under the
	// instrument's name.
	KindMetric
	// KindIncumbent records a solver objective improvement: A is the
	// Maximize round, B the incumbent objective value.
	KindIncumbent
	// KindSweepPoint records one completed sweep evaluation: A is the
	// point's index in the space, B packs outcome bits (1 = mapped OK,
	// 2 = served from the evaluation cache).
	KindSweepPoint
	// KindLog mirrors a structured log record: Str is the message, Name
	// the level.
	KindLog
)

// String names the kind for the JSON dump.
func (k Kind) String() string {
	switch k {
	case KindSpanBegin:
		return "span_begin"
	case KindSpanEnd:
		return "span_end"
	case KindMetric:
		return "metric"
	case KindIncumbent:
		return "incumbent"
	case KindSweepPoint:
		return "sweep_point"
	case KindLog:
		return "log"
	}
	return "unknown"
}

// Event is one recorded occurrence. The scalar payload fields (A, B, F,
// Str) are interpreted per Kind; unused fields are zero. Events are
// plain values — recording one copies it into the ring, so a recorded
// event never aliases caller state.
type Event struct {
	// Seq is the event's global sequence number (1-based, monotone).
	// Snapshot returns events in Seq order; gaps never occur, so
	// Seq - oldest snapshot Seq + 1 == events retained.
	Seq uint64
	// TimeNs is the wall-clock timestamp in Unix nanoseconds.
	TimeNs int64
	Kind   Kind
	// Name identifies the subject: span name, metric name, log level.
	Name string
	// Span is the obs span ID the event belongs to (0 = none).
	Span uint64
	// Trace is the request trace ID the event belongs to ("" = none), so
	// ring dumps can be filtered down to one request (/flight?trace=).
	Trace string
	A     int64
	B     int64
	F     float64
	Str   string
}

// DefaultCapacity is the ring size of the Default recorder: small enough
// to be a negligible fixed cost (an Event is ~80 bytes, so the default
// ring holds ~1.3 MB), large enough to cover the tail of a long sweep.
const DefaultCapacity = 16384

// Recorder is a fixed-capacity event ring. The zero value is unusable;
// construct with New. All methods are safe for concurrent use.
type Recorder struct {
	enabled atomic.Bool

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf[(next-1) % cap] is newest
}

// Default is the process-wide recorder the pipeline packages write to.
var Default = New(DefaultCapacity)

// New returns a recorder retaining the last capacity events (minimum 1).
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Enable starts recording.
func (r *Recorder) Enable() { r.enabled.Store(true) }

// Disable stops recording; retained events are kept for dumping.
func (r *Recorder) Disable() { r.enabled.Store(false) }

// Enabled reports whether the recorder is capturing events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Reset discards every retained event (the recorder stays enabled or
// disabled as it was).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next = 0
	for i := range r.buf {
		r.buf[i] = Event{}
	}
}

// Record appends e, stamping its sequence number and timestamp. Disabled
// recorders drop the event without allocating.
func (r *Recorder) Record(e Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	t := time.Now().UnixNano()
	r.mu.Lock()
	r.next++
	e.Seq = r.next
	e.TimeNs = t
	r.buf[(r.next-1)%uint64(len(r.buf))] = e
	r.mu.Unlock()
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.buf) }

// Total returns how many events were ever recorded (including
// overwritten ones).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Len returns the number of currently retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retained()
}

func (r *Recorder) retained() int {
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Snapshot copies the retained events, oldest first. The copy is fully
// consistent: every event was completely written before it became
// visible, so a snapshot taken mid-flood contains no torn events.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.retained()
	out := make([]Event, n)
	capU := uint64(len(r.buf))
	for i := 0; i < n; i++ {
		seq := r.next - uint64(n) + uint64(i) // 0-based: event with Seq == seq+1
		out[i] = r.buf[seq%capU]
	}
	return out
}

// SnapshotTrace copies the retained events recorded under the given
// trace ID, oldest first — one request's slice of the ring.
func (r *Recorder) SnapshotTrace(trace string) []Event {
	all := r.Snapshot()
	out := all[:0]
	for _, e := range all {
		if e.Trace == trace {
			out = append(out, e)
		}
	}
	return out
}

// jsonEvent is the dump shape of one event.
type jsonEvent struct {
	Seq    uint64  `json:"seq"`
	TimeNs int64   `json:"t_ns"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name,omitempty"`
	Span   uint64  `json:"span,omitempty"`
	Trace  string  `json:"trace,omitempty"`
	A      int64   `json:"a,omitempty"`
	B      int64   `json:"b,omitempty"`
	F      float64 `json:"f,omitempty"`
	Str    string  `json:"str,omitempty"`
}

// Dump is the JSON shape of a recorder dump.
type Dump struct {
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
	// Filter is the trace ID the dump was filtered to, if any.
	Filter string      `json:"filter,omitempty"`
	Events []jsonEvent `json:"events"`
}

// WriteJSON dumps the retained events as JSON — the payload of the
// /flight endpoint and of the on-error/on-signal dumps.
func (r *Recorder) WriteJSON(w io.Writer) error { return r.WriteJSONTrace(w, "") }

// WriteJSONTrace dumps the retained events recorded under the given
// trace ID (all events when trace is "") — the /flight?trace= payload.
func (r *Recorder) WriteJSONTrace(w io.Writer, trace string) error {
	events := r.Snapshot()
	d := Dump{Capacity: r.Cap(), Total: r.Total(), Filter: trace}
	if d.Total > uint64(len(events)) {
		d.Dropped = d.Total - uint64(len(events))
	}
	d.Events = make([]jsonEvent, 0, len(events))
	for _, e := range events {
		if trace != "" && e.Trace != trace {
			continue
		}
		d.Events = append(d.Events, jsonEvent{
			Seq: e.Seq, TimeNs: e.TimeNs, Kind: e.Kind.String(),
			Name: e.Name, Span: e.Span, Trace: e.Trace, A: e.A, B: e.B, F: e.F, Str: e.Str,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Convenience recorders for the pipeline's event sources. Each checks
// the enabled flag before building the event, so a disabled recorder
// costs one atomic load and zero allocations.

// SpanBegin records an obs span opening; trace is the request trace ID
// the span belongs to ("" = none).
func (r *Recorder) SpanBegin(id, parent uint64, name, trace string) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindSpanBegin, Name: name, Span: id, Trace: trace, A: int64(parent)})
}

// SpanEnd records an obs span closing with its duration.
func (r *Recorder) SpanEnd(id uint64, name string, dur time.Duration, trace string) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindSpanEnd, Name: name, Span: id, Trace: trace, A: int64(dur)})
}

// CounterAdd records a counter delta.
func (r *Recorder) CounterAdd(name string, delta int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindMetric, Name: name, A: delta})
}

// GaugeSet records a gauge update.
func (r *Recorder) GaugeSet(name string, v float64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindMetric, Name: name, F: v})
}

// Incumbent records a solver objective improvement.
func (r *Recorder) Incumbent(name string, round, objective int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindIncumbent, Name: name, A: round, B: objective})
}

// Sweep-point outcome bits packed into Event.B.
const (
	SweepOK       = 1 << 0 // the point mapped and simulated successfully
	SweepCacheHit = 1 << 1 // the result came from the evaluation cache
)

// SweepPoint records one completed sweep evaluation.
func (r *Recorder) SweepPoint(kernel string, index int64, ok, cacheHit bool) {
	if r == nil || !r.enabled.Load() {
		return
	}
	var bits int64
	if ok {
		bits |= SweepOK
	}
	if cacheHit {
		bits |= SweepCacheHit
	}
	r.Record(Event{Kind: KindSweepPoint, Name: kernel, A: index, B: bits})
}

// Log mirrors a structured log record; trace is the request trace ID
// the record was emitted under ("" = none).
func (r *Recorder) Log(level, msg string, span uint64, trace string) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.Record(Event{Kind: KindLog, Name: level, Str: msg, Span: span, Trace: trace})
}
