package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestStartTraceCollectsSpanTree: with metrics on but the process-wide
// span sink off (the daemon mode), spans opened under a traced context
// land in that request's Trace — and only there.
func TestStartTraceCollectsSpanTree(t *testing.T) {
	EnableMetrics()
	defer Disable()
	Reset()

	ctx, tr := StartTrace(context.Background(), "req1")
	if tr == nil || tr.ID() != "req1" {
		t.Fatalf("StartTrace returned %v", tr)
	}
	ctx, root := Start(ctx, "serve.request")
	root.SetStr("op", "solve")
	cctx, child := Start(ctx, "core.select_tiles")
	_, gc := Start(cctx, "core.solve")
	gc.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("trace holds %d spans, want 3", len(spans))
	}
	byName := map[string]*Span{}
	for _, sp := range spans {
		if sp.TraceID != "req1" {
			t.Fatalf("span %s carries trace %q, want req1", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	if byName["core.select_tiles"].Parent != byName["serve.request"].ID ||
		byName["core.solve"].Parent != byName["core.select_tiles"].ID {
		t.Fatalf("parentage wrong: %+v", spans)
	}
	if a, ok := byName["serve.request"].Attr("op"); !ok || a.StrV != "solve" {
		t.Fatal("root span lost its attributes in the snapshot")
	}
	if got := Spans(); len(got) != 0 {
		t.Fatalf("daemon mode leaked %d spans into the process-wide sink", len(got))
	}
}

// TestTraceIsolation: two concurrent traced requests never see each
// other's spans, even with concurrent producers inside each.
func TestTraceIsolation(t *testing.T) {
	EnableMetrics()
	defer Disable()
	Reset()

	var wg sync.WaitGroup
	traces := make([]*Trace, 8)
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, tr := StartTrace(context.Background(), fmt.Sprintf("iso%d", i))
			traces[i] = tr
			ctx, root := Start(ctx, "serve.request")
			var inner sync.WaitGroup
			for w := 0; w < 4; w++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					_, sp := Start(ctx, "sweep.worker")
					sp.End()
				}()
			}
			inner.Wait()
			root.End()
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		spans := tr.Snapshot()
		if len(spans) != 5 {
			t.Fatalf("trace %d holds %d spans, want 5", i, len(spans))
		}
		for _, sp := range spans {
			if sp.TraceID != fmt.Sprintf("iso%d", i) {
				t.Fatalf("trace %d holds foreign span %q/%q", i, sp.Name, sp.TraceID)
			}
		}
	}
}

// TestTraceSnapshotShowsUnfinishedSpans: a span still running at
// snapshot time (the detached-coalesced-work case) appears as a
// placeholder with no end time rather than vanishing or racing.
func TestTraceSnapshotShowsUnfinishedSpans(t *testing.T) {
	EnableMetrics()
	defer Disable()

	ctx, tr := StartTrace(context.Background(), "part")
	ctx, root := Start(ctx, "serve.request")
	_, hang := Start(ctx, "core.solve")
	root.End() // root finishes while core.solve is still open

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("trace holds %d spans, want 2", len(spans))
	}
	var open *Span
	for _, sp := range spans {
		if sp.Name == "core.solve" {
			open = sp
		}
	}
	if open == nil || !open.EndAt.IsZero() || open.Duration() != 0 {
		t.Fatalf("unfinished span misrepresented: %+v", open)
	}
	hang.End()
	spans = tr.Snapshot()
	for _, sp := range spans {
		if sp.Name == "core.solve" && sp.EndAt.IsZero() {
			t.Fatal("span still unfinished in trace after End")
		}
	}
}

// TestTraceSpanCap: one request cannot grow its trace without bound.
func TestTraceSpanCap(t *testing.T) {
	EnableMetrics()
	defer Disable()

	ctx, tr := StartTrace(context.Background(), "big")
	const extra = 10
	for i := 0; i < maxTraceSpans+extra; i++ {
		_, sp := Start(ctx, "eatss.candidate")
		sp.End()
	}
	if got := tr.SpanCount(); got != maxTraceSpans {
		t.Fatalf("trace holds %d spans, want cap %d", got, maxTraceSpans)
	}
	if got := tr.Dropped(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
	if got := len(tr.Snapshot()); got != maxTraceSpans {
		t.Fatalf("snapshot holds %d spans, want %d", got, maxTraceSpans)
	}
}

// TestTracingDisabledDaemonPathDoesNotAllocate extends the zero-alloc
// gate to the serving configuration: metrics enabled, span capture off,
// no per-request trace in the context. Every Start on that path must
// return the nil span without allocating — this is what every sweep
// evaluation pays when eatssd runs with -no-request-traces.
func TestTracingDisabledDaemonPathDoesNotAllocate(t *testing.T) {
	EnableMetrics()
	defer Disable()

	ctx := context.WithValue(context.Background(), struct{ k string }{"app"}, "v")
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "gpusim.simulate")
		sp.SetInt("points", 1)
		sp.End()
		if sp != nil || ctx2 == nil {
			t.Fatal("daemon path created a span without a sink")
		}
	})
	if allocs != 0 {
		t.Fatalf("metrics-on/tracing-off Start allocates %.1f per call, want 0", allocs)
	}

	// A disabled layer must also make StartTrace free.
	Disable()
	allocs = testing.AllocsPerRun(1000, func() {
		ctx2, tr := StartTrace(ctx, "id")
		if tr != nil || ctx2 == nil {
			t.Fatal("disabled StartTrace returned a trace")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled StartTrace allocates %.1f per call, want 0", allocs)
	}
}
