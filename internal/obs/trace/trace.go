// Package trace is the serving stack's bounded, tail-sampled store of
// completed request traces — the memory behind /debug/requests.
//
// Every request passing through internal/serve registers an Active
// entry on Begin and converts it to a Final on Finish, carrying the
// request's span tree (collected per-request by obs.StartTrace) plus
// the serving annotations (status, cache/coalesce flags, evaluator,
// queue wait, solver rounds). The store cannot keep every trace of a
// service doing thousands of requests per second, so it samples from
// the tail — after the outcome is known, when the interesting traces
// are identifiable — instead of up front:
//
//   - every non-ok outcome (errors, 504 timeouts, 499 client aborts,
//     429 sheds) is always retained,
//   - every residual-fallback evaluation is always retained (the
//     symbolic backend giving up is exactly what needs attribution),
//   - the slowest ~1% of healthy requests are retained (the p99 tail,
//     judged against a sliding window of recent healthy durations),
//   - of the remaining healthy fast traces, 1 in sampleEvery is kept
//     so the baseline shape stays visible.
//
// Retention is bounded: at most capacity finals are held, oldest
// evicted first. The package also owns the W3C traceparent helpers the
// serve layer uses to ingest and echo trace IDs.
package trace

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Tuning defaults; Configure overrides them on the Default store.
const (
	// DefaultCapacity is how many finished traces the store retains.
	DefaultCapacity = 256
	// DefaultSampleEvery keeps 1 in N healthy fast traces.
	DefaultSampleEvery = 16
	// durWindow is the sliding window of recent healthy durations the
	// slow-tail judgment compares against.
	durWindow = 512
	// minSlowSamples gates the slow-tail judgment until the window has
	// seen enough healthy requests to define "slow" meaningfully.
	minSlowSamples = 100
)

// StatusOK is the one outcome status the sampler treats as healthy;
// anything else (error, timeout, cancelled, shed, ...) is always
// retained. It matches serve.StatusOK by convention — the store stays
// below the serve layer, so the string is duplicated, not imported.
const StatusOK = "ok"

// Active is one in-flight request, registered on Begin so
// /debug/requests can show what the service is doing right now.
type Active struct {
	TraceID string
	Op      string
	Kernel  string
	GPU     string
	StartAt time.Time
	// Trace is the request's live span collector (nil when per-request
	// span collection is off — the store then retains outcomes only).
	Trace *obs.Trace
}

// Outcome is everything known about a request once it finished —
// the inputs to the tail-sampling decision and the metadata shown in
// the /debug/requests tables.
type Outcome struct {
	Status      string        `json:"status"`
	HTTPStatus  int           `json:"http_status"`
	Error       string        `json:"error,omitempty"`
	Kernel      string        `json:"kernel,omitempty"`
	GPU         string        `json:"gpu,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Evaluator   string        `json:"evaluator,omitempty"`
	Cached      bool          `json:"cached,omitempty"`
	Coalesced   bool          `json:"coalesced,omitempty"`
	Residual    bool          `json:"residual,omitempty"`
	QueueWait   time.Duration `json:"queue_wait_ns"`
	SolverCalls int           `json:"solver_calls,omitempty"`
	Duration    time.Duration `json:"duration_ns"`
}

// Final is one finished, retained request trace.
type Final struct {
	TraceID string    `json:"trace_id"`
	Op      string    `json:"op"`
	StartAt time.Time `json:"start_at"`
	Outcome
	// KeepReason says why tail sampling retained this trace: the non-ok
	// status itself, "residual", "slow", or "sampled".
	KeepReason string `json:"keep_reason"`
	// Spans is the request's span tree snapshot (start order). Spans
	// still running at Finish (detached coalesced work) have no end
	// time.
	Spans []*obs.Span `json:"-"`
	// SpansDropped counts spans lost to the per-trace cap.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Stats is the store's own accounting, shown on /debug/requests.
type Stats struct {
	Seen     int64            `json:"seen"`
	Retained int64            `json:"retained"`
	Evicted  int64            `json:"evicted"`
	Sampled  int64            `json:"sampled_out"`
	Active   int              `json:"active"`
	ByReason map[string]int64 `json:"by_reason,omitempty"`
}

// Store holds active requests and a bounded ring of retained finals.
// All methods are safe for concurrent use and accept a nil receiver
// (no-ops), so serving code needs no guards when the store is off.
type Store struct {
	mu          sync.Mutex
	capacity    int
	sampleEvery int
	active      map[string]*Active
	byID        map[string]*Final
	order       []string // retained trace IDs, oldest first
	durs        []float64
	dursNext    int
	boring      int64 // healthy fast traces seen since the last kept sample
	seen        atomic.Int64
	retained    atomic.Int64
	evicted     atomic.Int64
	sampledOut  atomic.Int64
	byReason    map[string]int64
}

// Default is the process-wide store the serve layer records into.
var Default = NewStore(DefaultCapacity, DefaultSampleEvery)

// NewStore returns a store retaining up to capacity finished traces and
// keeping 1 in sampleEvery healthy fast ones. Non-positive arguments
// take the defaults.
func NewStore(capacity, sampleEvery int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	return &Store{
		capacity:    capacity,
		sampleEvery: sampleEvery,
		active:      make(map[string]*Active),
		byID:        make(map[string]*Final),
		byReason:    make(map[string]int64),
	}
}

// Configure resets the store with new bounds (non-positive = default) —
// the eatssd flag hook. Retained traces and stats are discarded.
func (s *Store) Configure(capacity, sampleEvery int) {
	if s == nil {
		return
	}
	fresh := NewStore(capacity, sampleEvery)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = fresh.capacity
	s.sampleEvery = fresh.sampleEvery
	s.active = fresh.active
	s.byID = fresh.byID
	s.order = nil
	s.durs = nil
	s.dursNext = 0
	s.boring = 0
	s.seen.Store(0)
	s.retained.Store(0)
	s.evicted.Store(0)
	s.sampledOut.Store(0)
	s.byReason = fresh.byReason
}

// Reset is Configure with the current bounds kept.
func (s *Store) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	capacity, sampleEvery := s.capacity, s.sampleEvery
	s.mu.Unlock()
	s.Configure(capacity, sampleEvery)
}

// Begin registers an in-flight request. A second Begin with the same
// trace ID (a client replaying its traceparent) replaces the first.
func (s *Store) Begin(a *Active) {
	if s == nil || a == nil || a.TraceID == "" {
		return
	}
	s.mu.Lock()
	s.active[a.TraceID] = a
	s.mu.Unlock()
}

// Finish converts an in-flight request into a finished trace, runs the
// tail-sampling decision, and retains the trace if it won. It returns
// the Final with KeepReason set, or nil if sampling dropped it — either
// way the request leaves the active table.
func (s *Store) Finish(a *Active, o Outcome) *Final {
	if s == nil || a == nil || a.TraceID == "" {
		return nil
	}
	s.seen.Add(1)
	s.mu.Lock()
	if s.active[a.TraceID] == a {
		delete(s.active, a.TraceID)
	}
	keep, reason := s.decideLocked(o)
	if !keep {
		s.sampledOut.Add(1)
		s.mu.Unlock()
		return nil
	}
	s.byReason[reason]++
	f := &Final{
		TraceID:      a.TraceID,
		Op:           a.Op,
		StartAt:      a.StartAt,
		Outcome:      o,
		KeepReason:   reason,
		Spans:        a.Trace.Snapshot(),
		SpansDropped: a.Trace.Dropped(),
	}
	if f.Kernel == "" {
		f.Kernel = a.Kernel
	}
	if f.GPU == "" {
		f.GPU = a.GPU
	}
	if old, ok := s.byID[a.TraceID]; ok {
		// Same ID finished twice (replayed traceparent): replace in place.
		*old = *f
		f = old
	} else {
		s.byID[a.TraceID] = f
		s.order = append(s.order, a.TraceID)
		s.retained.Add(1)
		for len(s.order) > s.capacity {
			delete(s.byID, s.order[0])
			s.order = s.order[1:]
			s.evicted.Add(1)
			s.retained.Add(-1)
		}
	}
	s.mu.Unlock()
	return f
}

// decideLocked is the tail-sampling policy (see the package comment).
func (s *Store) decideLocked(o Outcome) (keep bool, reason string) {
	if o.Status != StatusOK {
		if o.Status == "" {
			return true, "unknown"
		}
		return true, o.Status
	}
	if o.Residual {
		return true, "residual"
	}
	d := o.Duration.Seconds()
	slow := s.isSlowLocked(d)
	s.recordDurLocked(d)
	if slow {
		return true, "slow"
	}
	s.boring++
	if s.boring >= int64(s.sampleEvery) {
		s.boring = 0
		return true, "sampled"
	}
	return false, ""
}

// isSlowLocked reports whether d ranks in the slowest ~1% of the recent
// healthy-duration window (once the window is populated enough to say).
func (s *Store) isSlowLocked(d float64) bool {
	n := len(s.durs)
	if n < minSlowSamples {
		return false
	}
	// Count window entries at least as slow; ties count, so a duration
	// equal to the whole window is ordinary, not an outlier.
	slower := 0
	for _, v := range s.durs {
		if v >= d {
			slower++
		}
	}
	return slower*100 < n
}

func (s *Store) recordDurLocked(d float64) {
	if len(s.durs) < durWindow {
		s.durs = append(s.durs, d)
		return
	}
	s.durs[s.dursNext] = d
	s.dursNext = (s.dursNext + 1) % durWindow
}

// Get returns the retained trace with the given ID. Only finished
// traces resolve; active ones are visible in ActiveSnapshot. The result
// is a copy: a replayed trace ID finishing again mutates the stored
// Final in place under the lock, so handing out the live pointer would
// race with readers.
func (s *Store) Get(id string) (*Final, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	c := *f
	return &c, true
}

// Recent returns up to n retained traces, newest first (n <= 0: all).
func (s *Store) Recent(n int) []*Final {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.order) {
		n = len(s.order)
	}
	out := make([]*Final, 0, n)
	for i := len(s.order) - 1; i >= len(s.order)-n; i-- {
		c := *s.byID[s.order[i]] // copy: see Get
		out = append(out, &c)
	}
	return out
}

// ActiveInfo is one in-flight request as shown on /debug/requests.
type ActiveInfo struct {
	TraceID string    `json:"trace_id"`
	Op      string    `json:"op"`
	Kernel  string    `json:"kernel,omitempty"`
	GPU     string    `json:"gpu,omitempty"`
	StartAt time.Time `json:"start_at"`
	Spans   int       `json:"spans"`
}

// ActiveSnapshot lists the in-flight requests, oldest first.
func (s *Store) ActiveSnapshot() []ActiveInfo {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ActiveInfo, 0, len(s.active))
	for _, a := range s.active {
		out = append(out, ActiveInfo{
			TraceID: a.TraceID,
			Op:      a.Op,
			Kernel:  a.Kernel,
			GPU:     a.GPU,
			StartAt: a.StartAt,
			Spans:   a.Trace.SpanCount(),
		})
	}
	// Map order is random; oldest-first is what an operator wants to see
	// (the stuck request floats to the top).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].StartAt.Before(out[j-1].StartAt); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// StatsSnapshot returns the store's accounting.
func (s *Store) StatsSnapshot() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Seen:     s.seen.Load(),
		Retained: s.retained.Load(),
		Evicted:  s.evicted.Load(),
		Sampled:  s.sampledOut.Load(),
		Active:   len(s.active),
		ByReason: make(map[string]int64, len(s.byReason)),
	}
	for k, v := range s.byReason {
		st.ByReason[k] = v
	}
	return st
}

// --- W3C traceparent ------------------------------------------------

// NewTraceID returns a fresh 16-byte lowercase-hex trace ID. IDs need
// uniqueness, not secrecy, so they come from math/rand/v2's ChaCha8
// generator (OS-seeded, goroutine-sharded) instead of paying a
// crypto/rand syscall on every request — ID generation sits on the
// serving hot path twice per request (trace ID plus the echoed
// traceparent's span ID).
func NewTraceID() string { return randHex(16) }

// newSpanID returns the 8-byte parent-id field for an outgoing
// traceparent header.
func newSpanID() string { return randHex(8) }

func randHex(n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 2*n)
	for i := 0; i < len(b); i += 16 {
		v := rand.Uint64()
		for j := 0; j < 16 && i+j < len(b); j++ {
			b[i+j] = digits[v&0xf]
			v >>= 4
		}
	}
	return string(b)
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). It reports ok=false for malformed
// headers, the forbidden all-ff version, and the all-zero trace ID, so
// a garbage header falls back to a generated ID instead of poisoning
// the store with an unusable key.
func ParseTraceparent(h string) (traceID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	version, id, parent, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if version == "ff" || !isHex(version) || !isHex(id) || !isHex(parent) || !isHex(flags) {
		return "", false
	}
	allZero := true
	for i := 0; i < len(id); i++ {
		if id[i] != '0' {
			allZero = false
			break
		}
	}
	if allZero {
		return "", false
	}
	return id, true
}

// Traceparent renders the outgoing traceparent header echoing traceID
// (sampled flag set — the service recorded the trace).
func Traceparent(traceID string) string {
	return "00-" + traceID + "-" + newSpanID() + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
