package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func finish(s *Store, id string, o Outcome) *Final {
	a := &Active{TraceID: id, Op: "solve", Kernel: "gemm", GPU: "ga100"}
	s.Begin(a)
	return s.Finish(a, o)
}

// TestTailSamplingRetainsEveryFailure is the store's core contract:
// whatever the load, a non-ok outcome is never sampled away.
func TestTailSamplingRetainsEveryFailure(t *testing.T) {
	s := NewStore(1024, 1000) // sampling so sparse only the policy keeps traces
	bad := []string{"error", "timeout", "cancelled", "shed"}
	for i := 0; i < 100; i++ {
		st := bad[i%len(bad)]
		f := finish(s, fmt.Sprintf("bad%03d", i), Outcome{Status: st, Duration: time.Millisecond})
		if f == nil {
			t.Fatalf("trace %d with status %q was dropped by sampling", i, st)
		}
		if f.KeepReason != st {
			t.Fatalf("keep reason = %q, want the status %q", f.KeepReason, st)
		}
	}
	// Residual fallbacks are failures of the fast path, kept too.
	if f := finish(s, "resid", Outcome{Status: StatusOK, Residual: true}); f == nil || f.KeepReason != "residual" {
		t.Fatalf("residual trace not retained: %+v", f)
	}
	st := s.StatsSnapshot()
	if st.Retained != 101 || st.Sampled != 0 {
		t.Fatalf("stats = %+v, want 101 retained, 0 sampled out", st)
	}
}

// TestTailSamplingThinsHealthyTraffic pins the probabilistic side: of N
// healthy fast requests, roughly 1 in sampleEvery survives.
func TestTailSamplingThinsHealthyTraffic(t *testing.T) {
	s := NewStore(1024, 10)
	kept := 0
	for i := 0; i < 100; i++ {
		if f := finish(s, fmt.Sprintf("ok%03d", i), Outcome{Status: StatusOK, Duration: time.Millisecond}); f != nil {
			if f.KeepReason != "sampled" {
				t.Fatalf("healthy fast trace kept for %q, want \"sampled\"", f.KeepReason)
			}
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("kept %d of 100 healthy traces at 1-in-10, want exactly 10 (deterministic counter)", kept)
	}
	if st := s.StatsSnapshot(); st.Sampled != 90 {
		t.Fatalf("sampled out = %d, want 90", st.Sampled)
	}
}

// TestSlowTailRetained: once the duration window is populated, a
// request slower than everything seen lands in the retained set with
// reason "slow" even when counter sampling would have dropped it.
func TestSlowTailRetained(t *testing.T) {
	s := NewStore(1024, 1<<30) // counter sampling effectively off
	for i := 0; i < 2*minSlowSamples; i++ {
		finish(s, fmt.Sprintf("warm%03d", i), Outcome{Status: StatusOK, Duration: time.Millisecond})
	}
	f := finish(s, "slowone", Outcome{Status: StatusOK, Duration: time.Second})
	if f == nil || f.KeepReason != "slow" {
		t.Fatalf("slow outlier not retained as slow: %+v", f)
	}
	// Another median-speed request right after is still boring.
	if f := finish(s, "fastone", Outcome{Status: StatusOK, Duration: time.Millisecond}); f != nil {
		t.Fatalf("median-speed trace retained (%q) after the window warmed up", f.KeepReason)
	}
}

func TestCapacityEviction(t *testing.T) {
	s := NewStore(4, 1)
	for i := 0; i < 10; i++ {
		finish(s, fmt.Sprintf("err%02d", i), Outcome{Status: "error"})
	}
	st := s.StatsSnapshot()
	if st.Retained != 4 || st.Evicted != 6 {
		t.Fatalf("stats = %+v, want 4 retained / 6 evicted", st)
	}
	if _, ok := s.Get("err00"); ok {
		t.Fatal("oldest trace survived past capacity")
	}
	if _, ok := s.Get("err09"); !ok {
		t.Fatal("newest trace missing")
	}
	recent := s.Recent(0)
	if len(recent) != 4 || recent[0].TraceID != "err09" || recent[3].TraceID != "err06" {
		ids := make([]string, len(recent))
		for i, f := range recent {
			ids[i] = f.TraceID
		}
		t.Fatalf("Recent order = %v, want newest first err09..err06", ids)
	}
	if recent = s.Recent(2); len(recent) != 2 || recent[0].TraceID != "err09" {
		t.Fatalf("Recent(2) wrong: %+v", recent)
	}
}

func TestActiveLifecycle(t *testing.T) {
	s := NewStore(8, 1)
	a := &Active{TraceID: "live1", Op: "solve", Kernel: "gemm", StartAt: time.Unix(1, 0)}
	b := &Active{TraceID: "live2", Op: "simulate", StartAt: time.Unix(0, 0)}
	s.Begin(a)
	s.Begin(b)
	act := s.ActiveSnapshot()
	if len(act) != 2 || act[0].TraceID != "live2" || act[1].TraceID != "live1" {
		t.Fatalf("active snapshot = %+v, want live2 (older) then live1", act)
	}
	s.Finish(a, Outcome{Status: StatusOK})
	if act = s.ActiveSnapshot(); len(act) != 1 || act[0].TraceID != "live2" {
		t.Fatalf("finish did not clear the active entry: %+v", act)
	}
	if st := s.StatsSnapshot(); st.Active != 1 {
		t.Fatalf("stats active = %d, want 1", st.Active)
	}
}

func TestNilStoreAndNilActiveAreSafe(t *testing.T) {
	var s *Store
	s.Begin(&Active{TraceID: "x"})
	if f := s.Finish(&Active{TraceID: "x"}, Outcome{}); f != nil {
		t.Fatal("nil store retained a trace")
	}
	if got := s.Recent(5); got != nil {
		t.Fatal("nil store returned traces")
	}
	s.Configure(1, 1)
	s.Reset()
	ok := NewStore(1, 1)
	ok.Begin(nil)
	if f := ok.Finish(nil, Outcome{}); f != nil {
		t.Fatal("nil active retained a trace")
	}
}

func TestTraceparent(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 || !isHex(id) {
		t.Fatalf("NewTraceID() = %q, want 32 lowercase hex chars", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("two trace IDs collided: %q", id)
	}

	h := Traceparent(id)
	if !strings.HasPrefix(h, "00-"+id+"-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("Traceparent(%q) = %q", id, h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("round trip failed: %q -> (%q, %t)", h, got, ok)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",  // short flags
	}
	for _, h := range bad {
		if got, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted garbage as %q", h, got)
		}
	}
	if got, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok || got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("canonical example rejected: (%q, %t)", got, ok)
	}
}

// TestReplayedTraceIDReplacesInPlace: a client re-sending the same
// traceparent must not grow the order ring without bound.
func TestReplayedTraceIDReplacesInPlace(t *testing.T) {
	s := NewStore(8, 1)
	for i := 0; i < 5; i++ {
		finish(s, "same", Outcome{Status: "error", HTTPStatus: 400 + i})
	}
	if st := s.StatsSnapshot(); st.Retained != 1 {
		t.Fatalf("retained = %d after replaying one ID, want 1", st.Retained)
	}
	f, ok := s.Get("same")
	if !ok || f.HTTPStatus != 404 {
		t.Fatalf("replayed trace not replaced by the newest outcome: %+v", f)
	}
}
