package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/flight"
)

// AttrKind discriminates the value held by an Attr.
type AttrKind uint8

// Attribute kinds.
const (
	KindInt AttrKind = iota + 1
	KindFloat
	KindStr
	KindBool
)

// Attr is one typed key/value annotation on a span.
type Attr struct {
	Key    string
	Kind   AttrKind
	IntV   int64
	FloatV float64
	StrV   string
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, IntV: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, FloatV: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindStr, StrV: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.IntV = 1
	}
	return a
}

// Value returns the attribute's value as an interface (for exporters).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.IntV
	case KindFloat:
		return a.FloatV
	case KindStr:
		return a.StrV
	case KindBool:
		return a.IntV != 0
	}
	return nil
}

// Span is one recorded pipeline phase. The zero ID is "no parent".
// A span is owned by the goroutine that started it; attribute setters
// are not synchronized. Concurrent producers are otherwise safe: Start
// serializes registration in the process-wide sink and only reads the
// parent span from the context, so many goroutines may open children of
// a shared parent at once — the pattern the parallel sweep engine uses,
// giving each pool worker its own "sweep.worker" child span to annotate
// (see TestConcurrentSpanProducers).
type Span struct {
	ID      uint64
	Parent  uint64
	Name    string
	StartAt time.Time
	EndAt   time.Time
	Attrs   []Attr
	// TraceID is the request trace the span belongs to ("" = none).
	TraceID string

	// trace is the per-request collector the span reports to on End.
	trace *Trace
}

type ctxKey struct{}

// tracer is the process-wide span sink.
var tr struct {
	mu    sync.Mutex
	spans []*Span
	next  atomic.Uint64
}

// Start opens a span named name as a child of the span carried by ctx
// (if any) and returns a derived context carrying the new span. When the
// layer is disabled it returns ctx unchanged and a nil span — the
// zero-cost fast path; all Span methods accept a nil receiver.
//
// A span records into up to two sinks: the process-wide sink (when
// spanCapture is on — the CLI -trace mode) and the per-request Trace
// carried by ctx (when the serving layer opened one via StartTrace).
// With metrics on but neither sink present — a daemon request with
// tracing disabled — Start stays allocation-free.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	var t *Trace
	if parent != nil {
		t = parent.trace
	} else {
		t, _ = ctx.Value(traceKey{}).(*Trace)
	}
	capture := spanCapture.Load()
	if t == nil && !capture {
		return ctx, nil
	}
	var parentID uint64
	if parent != nil {
		parentID = parent.ID
	}
	sp := &Span{
		ID:      tr.next.Add(1),
		Parent:  parentID,
		Name:    name,
		StartAt: now(),
		trace:   t,
	}
	if t != nil {
		sp.TraceID = t.id
		t.spanBegin(sp)
	}
	if capture {
		tr.mu.Lock()
		tr.spans = append(tr.spans, sp)
		tr.mu.Unlock()
	}
	flight.Default.SpanBegin(sp.ID, parentID, name, sp.TraceID)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if p, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return p
	}
	return nil
}

// End stamps the span's end time, snapshotting the span into its
// request trace (if any). Ending a nil or already-ended span is a
// no-op.
func (s *Span) End() {
	if s == nil || !s.EndAt.IsZero() {
		return
	}
	s.EndAt = now()
	if s.trace != nil {
		s.trace.spanEnd(s)
	}
	flight.Default.SpanEnd(s.ID, s.Name, s.EndAt.Sub(s.StartAt), s.TraceID)
}

// Duration is EndAt-StartAt, or 0 for an unfinished span.
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndAt.IsZero() {
		return 0
	}
	return s.EndAt.Sub(s.StartAt)
}

// Set appends attributes. Prefer the typed setters on hot paths: a
// variadic call allocates its argument slice even for a nil span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// SetInt records an integer attribute without allocating on nil spans.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Int(key, v))
}

// SetFloat records a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Float(key, v))
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Str(key, v))
}

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Bool(key, v))
}

// Attr returns the last attribute recorded under key.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i], true
		}
	}
	return Attr{}, false
}

// Spans returns the recorded spans in start order. The returned slice is
// a copy; the spans themselves are shared, so callers should read them
// only after the traced work has finished.
func Spans() []*Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Span(nil), tr.spans...)
}

// SpansNamed returns the recorded spans with the given name, in start
// order.
func SpansNamed(name string) []*Span {
	var out []*Span
	for _, sp := range Spans() {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}
