package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildFixedTrace records a deterministic span tree and metrics under a
// fake clock, shared by the exporter tests.
func buildFixedTrace(t *testing.T) {
	t.Helper()
	base := time.Unix(1700000000, 0).UTC()
	tick := int64(0)
	SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 100 * time.Microsecond)
	})
	t.Cleanup(func() { SetClock(nil) })

	ctx, pipe := Start(context.Background(), "pipeline") // t=100us
	sctx, solve := Start(ctx, "solve")                   // t=200us
	_, r0 := Start(sctx, "round")                        // t=300us
	r0.SetInt("round", 0)
	r0.SetInt("objective", 1024)
	r0.End()                      // t=400us
	_, r1 := Start(sctx, "round") // t=500us
	r1.SetInt("round", 1)
	r1.SetInt("objective", 4096)
	r1.End()                         // t=600us
	solve.End()                      // t=700us
	_, sim := Start(ctx, "simulate") // t=800us
	sim.SetFloat("gflops", 123.5)
	sim.SetStr("gpu", "GA100")
	sim.End()  // t=900us
	pipe.End() // t=1000us

	NewCounter("test.export.nodes").Add(42)
	NewGauge("test.export.ppw").Set(3.5)
	NewHistogram("test.export.occ", 16, 32).Observe(24)
}

func TestChromeTraceGolden(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	buildFixedTrace(t)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "chrome_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (rerun with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome trace drifted from golden (rerun with UPDATE_GOLDEN=1 after verifying).\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Independently of the golden bytes, the file must be valid trace-event
	// JSON with nested, monotonic timestamps.
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metrics MetricsSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(got, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(trace.TraceEvents))
	}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur <= 0 {
			t.Errorf("event %s has ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Tid != trace.TraceEvents[0].Tid {
			t.Errorf("event %s on tid %d, want all on root track %d", ev.Name, ev.Tid, trace.TraceEvents[0].Tid)
		}
	}
	// The pipeline event must enclose its children.
	pipe, round := trace.TraceEvents[0], trace.TraceEvents[2]
	if round.Ts < pipe.Ts || round.Ts+round.Dur > pipe.Ts+pipe.Dur {
		t.Errorf("round [%v,%v] not nested in pipeline [%v,%v]",
			round.Ts, round.Ts+round.Dur, pipe.Ts, pipe.Ts+pipe.Dur)
	}
	if v, ok := round.Args["objective"]; !ok || v != float64(1024) {
		t.Errorf("round args = %v, want objective 1024", round.Args)
	}
	if trace.Metrics.Counters["test.export.nodes"] != 42 {
		t.Errorf("metrics snapshot missing counter: %v", trace.Metrics.Counters)
	}
}

func TestTreeSummaryAndJSON(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	buildFixedTrace(t)

	tree := TreeSummary()
	for _, want := range []string{"pipeline", "  solve", "    round", "  simulate", "objective=4096"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree summary missing %q:\n%s", want, tree)
		}
	}
	// Indentation must reflect depth: "round" is two levels down.
	if !strings.Contains(tree, "\n    round") {
		t.Errorf("round not doubly indented:\n%s", tree)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Spans []struct {
			ID     uint64 `json:"id"`
			Parent uint64 `json:"parent"`
			Name   string `json:"name"`
			DurNs  int64  `json:"dur_ns"`
		} `json:"spans"`
		Metrics MetricsSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 5 {
		t.Fatalf("json spans = %d, want 5", len(out.Spans))
	}
	if out.Spans[1].Parent != out.Spans[0].ID {
		t.Error("json lost parent linkage")
	}
	if out.Metrics.Gauges["test.export.ppw"] != 3.5 {
		t.Errorf("json metrics = %v", out.Metrics.Gauges)
	}
}
