package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// maxTraceSpans bounds one request's span tree. A single solve produces
// tens of spans (model gen, solver rounds, shrink, compile, simulate);
// a sweep-heavy request can produce thousands. Beyond the cap the trace
// keeps what it has and counts the rest, so one pathological request
// cannot grow without bound inside the trace store.
const maxTraceSpans = 2048

// Trace collects the span tree of one request. Unlike the process-wide
// sink (Spans), a Trace is carried by context from the serving layer
// down through analysis, the solver rounds, sweep workers and
// evaluation, so every span opened under the request's context lands in
// this one tree — per-request attribution instead of anonymous global
// spans.
//
// Finished spans are snapshotted into the trace by End on the owning
// goroutine (the only goroutine allowed to touch a span's attributes),
// so Snapshot never observes a span mid-mutation even while detached
// work is still running.
type Trace struct {
	id string

	mu      sync.Mutex
	open    []openSpan // begun, not yet ended
	done    []*Span    // immutable copies, snapshotted at End
	dropped int        // spans lost to maxTraceSpans
}

// openSpan is the placeholder for a begun-but-unfinished span: enough
// to show it in a snapshot without touching the live (mutating) Span.
type openSpan struct {
	id, parent uint64
	name       string
	startAt    time.Time
}

type traceKey struct{}

// StartTrace opens a per-request trace with the given ID and returns a
// derived context carrying it: every span subsequently opened under
// that context (directly or via parent spans) is collected into the
// trace. When the layer is disabled or the ID is empty it returns ctx
// unchanged and a nil *Trace; all Trace methods accept a nil receiver.
func StartTrace(ctx context.Context, id string) (context.Context, *Trace) {
	if !enabled.Load() || id == "" {
		return ctx, nil
	}
	t := &Trace{id: id}
	return context.WithValue(ctx, traceKey{}, t), t
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ID returns the trace's identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

func (t *Trace) spanBegin(sp *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.open)+len(t.done) >= maxTraceSpans {
		t.dropped++
		return
	}
	t.open = append(t.open, openSpan{id: sp.ID, parent: sp.Parent, name: sp.Name, startAt: sp.StartAt})
}

// spanEnd snapshots the finished span into the trace. The value copy
// (attributes included) happens on the span's owning goroutine, so the
// stored copy is immutable from here on. A span whose begin was dropped
// by the cap is dropped here too, keeping the trace bounded.
func (t *Trace) spanEnd(sp *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	found := false
	for i := range t.open {
		if t.open[i].id == sp.ID {
			last := len(t.open) - 1
			t.open[i] = t.open[last]
			t.open = t.open[:last]
			found = true
			break
		}
	}
	if !found {
		return
	}
	c := *sp
	c.Attrs = append([]Attr(nil), sp.Attrs...)
	c.trace = nil
	t.done = append(t.done, &c)
}

// Snapshot returns the trace's spans in start (ID) order. Finished
// spans carry their duration and attributes; spans still running (for
// example a coalesced solve detached from an abandoned waiter) appear
// with a zero EndAt and no attributes. The returned spans are never
// mutated afterwards, so callers may hold them indefinitely.
func (t *Trace) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.done)+len(t.open))
	out = append(out, t.done...)
	for _, o := range t.open {
		out = append(out, &Span{ID: o.id, Parent: o.parent, Name: o.name, StartAt: o.startAt, TraceID: t.id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpanCount returns how many spans the trace currently holds (finished
// plus still-open), excluding dropped ones.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done) + len(t.open)
}

// Dropped returns how many spans were discarded by the per-trace cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
