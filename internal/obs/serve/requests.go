package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// handleRequests serves the tail-sampled request-trace store
// (internal/obs/trace) for live request inspection:
//
//	/debug/requests               active + recent tables and store stats
//	/debug/requests?n=20          cap the recent table at 20 rows
//	/debug/requests?trace=<id>    one retained trace as a span JSON doc
//	  &view=tree                  ... as an indented span-tree summary
//	  &view=chrome                ... as Chrome-trace JSON (chrome://tracing)
//
// The store only holds what tail sampling retained, so a 404 on a known
// trace ID means the request was healthy and sampled out, evicted by
// newer traces, or is still in flight (check the active table).
func handleRequests(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("trace")
	if id == "" {
		writeRequestsOverview(w, r)
		return
	}
	f, ok := trace.Default.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("trace %q not retained (sampled out, evicted, or still in flight — see /debug/requests)", id),
			http.StatusNotFound)
		return
	}
	switch view := r.URL.Query().Get("view"); view {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			*trace.Final
			Spans []obs.JSONSpan `json:"spans"`
		}{f, obs.JSONSpans(f.Spans)}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // best-effort response write
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s: op=%s kernel=%s status=%s dur=%s kept=%s\n\n",
			f.TraceID, f.Op, f.Kernel, f.Status, f.Duration, f.KeepReason)
		io.WriteString(w, obs.TreeSummaryOf(f.Spans))
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTraceOf(w, f.Spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, fmt.Sprintf("unknown view %q (valid: tree, chrome, json, or omit for JSON)", view),
			http.StatusBadRequest)
	}
}

// requestsView is the /debug/requests overview document.
type requestsView struct {
	Active []trace.ActiveInfo `json:"active"`
	Recent []recentRow        `json:"recent"`
	Stats  trace.Stats        `json:"stats"`
}

// recentRow is one retained trace's metadata (the span tree itself is
// behind ?trace=<id> — the table stays greppable).
type recentRow struct {
	*trace.Final
	SpanCount int `json:"span_count"`
}

func writeRequestsOverview(w http.ResponseWriter, r *http.Request) {
	n := 50
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, fmt.Sprintf("bad n %q (want a positive integer)", s), http.StatusBadRequest)
			return
		}
		n = v
	}
	recent := trace.Default.Recent(n)
	rows := make([]recentRow, 0, len(recent))
	for _, f := range recent {
		rows = append(rows, recentRow{Final: f, SpanCount: len(f.Spans)})
	}
	doc := requestsView{
		Active: trace.Default.ActiveSnapshot(),
		Recent: rows,
		Stats:  trace.Default.StatsSnapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort response write
}
