package serve

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/profile"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format against a fixed
// snapshot: counter/gauge/histogram rendering, sorted order, name
// sanitization, cumulative buckets and the +Inf terminator.
func TestWritePrometheusGolden(t *testing.T) {
	s := obs.MetricsSnapshot{
		Counters: map[string]int64{
			"smt.solve_calls": 14,
			"core.selections": 3,
		},
		Gauges: map[string]float64{
			"smt.incumbent_objective": 18432,
			"sweep.hit_rate":          0.625,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"smt.search_depth": {
				Count:  357,
				Sum:    391.5,
				Bounds: []float64{1, 2, 4},
				Counts: []int64{11, 326, 20, 0},
			},
		},
	}
	var b strings.Builder
	WritePrometheus(&b, s)
	got := b.String()

	path := filepath.Join("testdata", "metrics.prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/serve -update` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("Prometheus exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"smt.nodes":       "smt_nodes",
		"a-b c/d":         "a_b_c_d",
		"ok_name:subsys":  "ok_name:subsys",
		"2fast":           "_2fast",
		"core.cons.l1":    "core_cons_l1",
		"already_fine_99": "already_fine_99",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHandlerEndpoints drives every endpoint through an httptest server
// with the obs layer live.
func TestHandlerEndpoints(t *testing.T) {
	obs.Reset()
	flight.Default.Reset()
	obs.Enable()
	flight.Default.Enable()
	t.Cleanup(func() {
		obs.Disable()
		flight.Default.Disable()
		obs.Reset()
		flight.Default.Reset()
	})

	obs.NewCounter("serve.test_counter").Add(7)
	p := obs.BeginSweep("gemm", 100)
	p.PointDone(true, true)
	p.PointDone(false, true)
	obs.SetIncumbent("gemm", 2, 928)
	_, sp := obs.Start(context.Background(), "serve.test_span")
	sp.End()

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "serve_test_counter 7") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	code, body := get("/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var prog struct {
		Sweep *struct {
			Kernel       string  `json:"kernel"`
			Total        int64   `json:"total"`
			Done         int64   `json:"done"`
			CacheHitRate float64 `json:"cache_hit_rate"`
		} `json:"sweep"`
		Incumbent *struct {
			Name      string `json:"name"`
			Objective int64  `json:"objective"`
		} `json:"incumbent"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog.Sweep == nil || prog.Sweep.Kernel != "gemm" || prog.Sweep.Total != 100 || prog.Sweep.Done != 2 {
		t.Fatalf("/progress sweep = %+v", prog.Sweep)
	}
	if prog.Sweep.CacheHitRate != 0.5 {
		t.Fatalf("cache_hit_rate = %v, want 0.5", prog.Sweep.CacheHitRate)
	}
	if prog.Incumbent == nil || prog.Incumbent.Name != "gemm" || prog.Incumbent.Objective != 928 {
		t.Fatalf("/progress incumbent = %+v", prog.Incumbent)
	}

	if code, body := get("/trace"); code != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("/trace = %d, valid JSON = %v", code, json.Valid([]byte(body)))
	} else if !strings.Contains(body, "serve.test_span") {
		t.Fatalf("/trace missing recorded span:\n%s", body)
	}

	code, body = get("/flight")
	if code != 200 {
		t.Fatalf("/flight = %d", code)
	}
	var dump struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/flight not JSON: %v", err)
	}
	if len(dump.Events) == 0 {
		t.Fatal("/flight dump has no events")
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/progress") {
		t.Fatalf("index = %d:\n%s", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestProfileEndpoint drives the /profile views through the publish
// cycle: 404 before anything is published, then JSON / rendered-report /
// surface views once a profile and a surface land.
func TestProfileEndpoint(t *testing.T) {
	profile.Publish(nil)
	profile.PublishSurface(nil)
	t.Cleanup(func() {
		profile.Publish(nil)
		profile.PublishSurface(nil)
	})

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/profile"); code != 404 {
		t.Fatalf("/profile before publish = %d, want 404", code)
	}
	if code, _ := get("/profile?view=surface"); code != 404 {
		t.Fatalf("/profile?view=surface before publish = %d, want 404", code)
	}

	p := &profile.Profile{Kernel: "gemm", GPU: "GA100", TimeSec: 0.01, EnergyJ: 2}
	p.Energy.Static = 2
	profile.Publish(p)
	profile.PublishSurface(&profile.Surface{Kernel: "gemm", GPU: "GA100", Dims: []string{"i"}})

	code, body := get("/profile")
	if code != 200 {
		t.Fatalf("/profile = %d", code)
	}
	var got profile.Profile
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/profile not JSON: %v\n%s", err, body)
	}
	if got.Kernel != "gemm" || got.EnergyJ != 2 {
		t.Fatalf("/profile round-trip = %+v", got)
	}
	if code, body := get("/profile?view=report"); code != 200 || !strings.Contains(body, "energy attribution: gemm on GA100") {
		t.Fatalf("/profile?view=report = %d:\n%s", code, body)
	}
	if code, body := get("/profile?view=surface"); code != 200 || !strings.Contains(body, `"dims"`) {
		t.Fatalf("/profile?view=surface = %d:\n%s", code, body)
	}

	// An unknown view is a client error that names the valid views — it
	// must not silently fall back to the default JSON document.
	if code, body := get("/profile?view=suface"); code != 400 ||
		!strings.Contains(body, `"suface"`) || !strings.Contains(body, "surface, report") {
		t.Fatalf("/profile?view=suface = %d:\n%s", code, body)
	}
}

// TestProgressEmptyWhenIdle confirms /progress degrades to an empty
// document when nothing has been published.
func TestProgressEmptyWhenIdle(t *testing.T) {
	obs.Reset()
	rec := httptest.NewRecorder()
	handleProgress(rec, httptest.NewRequest("GET", "/progress", nil))
	var v map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if _, ok := v["sweep"]; ok {
		t.Fatalf("idle /progress published a sweep: %s", rec.Body.String())
	}
}

// TestServerStartClose exercises the background listener lifecycle.
func TestServerStartClose(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

// TestServerShutdown exercises the graceful path: Shutdown drains and
// stops the listener, and repeated Shutdown stays safe.
func TestServerShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Shutdown")
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestStartHandlerServesCustomMux pins the seam cmd/eatssd mounts its
// API on: StartHandler serves the caller's handler with the hardened
// listener settings.
func TestStartHandlerServesCustomMux(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/custom", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "custom ok")
	})
	s, err := StartHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/custom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "custom ok" {
		t.Fatalf("custom handler = %d %q", resp.StatusCode, body)
	}
}
