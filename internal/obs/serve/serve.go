// Package serve exposes the observability layer over HTTP for live
// introspection: while a long sweep or solve runs, `curl` (or a
// Prometheus scraper, or a Chrome trace viewer) can watch it from
// outside the process. All endpoints are read-only snapshots of the
// obs/flight state; serving costs nothing to the instrumented hot
// paths beyond what the obs layer already pays.
//
// Endpoints:
//
//	/metrics   Prometheus text exposition of the metric registry,
//	           including process health (goroutines, heap, GC pauses,
//	           uptime) refreshed at scrape time, with trace-ID
//	           exemplars on histogram buckets
//	/progress  JSON live view: sweep points done/total + ETA, cache
//	           hit rate, and the solver's current incumbent objective
//	/trace     Chrome-trace JSON of the span tree recorded so far
//	/flight    flight-recorder ring buffer dump (JSON);
//	           ?trace=<id> keeps only that request's events
//	/profile   latest published energy-attribution profile (JSON);
//	           ?view=surface returns the latest sweep surface,
//	           ?view=report the rendered attribution table
//	/debug/requests   tail-sampled per-request trace store: active +
//	           recent tables, ?trace=<id> drill-down
//	           (&view=tree|chrome|json)
//	/debug/pprof/...  the standard runtime profiles
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/profile"
)

// Handler returns the introspection mux.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/progress", handleProgress)
	mux.HandleFunc("/trace", handleTrace)
	mux.HandleFunc("/flight", handleFlight)
	mux.HandleFunc("/profile", handleProfile)
	mux.HandleFunc("/debug/requests", handleRequests)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ReadHeaderTimeout bounds how long a connection may dribble its
// request headers before the server drops it. Without it a handful of
// slowloris connections can pin a long-lived process's listener
// goroutines forever; with it they cost at most this much each.
const ReadHeaderTimeout = 10 * time.Second

// Start listens on addr (e.g. "127.0.0.1:0" or ":8080") and serves the
// introspection handler in a background goroutine.
func Start(addr string) (*Server, error) {
	return StartHandler(addr, Handler())
}

// StartHandler is Start with a caller-supplied handler — cmd/eatssd
// mounts its API mux on the same hardened listener lifecycle.
func StartHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close/Shutdown
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight requests. It
// is the test-and-crash path; long-lived processes should prefer
// Shutdown.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and drains in-flight
// handlers, waiting until they finish or ctx expires (then the
// stragglers are dropped, like Close). The SIGINT/SIGTERM paths of
// cmd/eatssd and internal/cli use it so a deploy never cuts a response
// mid-body.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "eatss introspection endpoints:\n"+
		"  /metrics   Prometheus text exposition (incl. process health)\n"+
		"  /progress  live sweep/solve progress (JSON)\n"+
		"  /trace     Chrome trace of recorded spans\n"+
		"  /flight    flight-recorder dump (JSON; ?trace=<id> filters)\n"+
		"  /profile   latest energy-attribution profile (?view=surface|report)\n"+
		"  /debug/requests  tail-sampled request traces (?trace=<id>&view=tree|chrome)\n"+
		"  /debug/pprof/  runtime profiles\n")
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	updateHealthMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, obs.Snapshot())
}

func handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := flight.Default.WriteJSONTrace(w, r.URL.Query().Get("trace")); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleProfile serves the most recently published energy-attribution
// profile. 404 until something publishes — the endpoint is passive, it
// never triggers a simulation.
func handleProfile(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("view") {
	case "surface":
		s := profile.LatestSurface()
		if s == nil {
			http.Error(w, "no sweep surface published yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := s.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "report":
		p := profile.Latest()
		if p == nil {
			http.Error(w, "no profile published yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, p.Render())
	case "":
		p := profile.Latest()
		if p == nil {
			http.Error(w, "no profile published yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p) //nolint:errcheck // best-effort response write
	default:
		// A typo like ?view=suface must fail loudly, not silently fall
		// back to the default JSON document.
		http.Error(w, fmt.Sprintf("unknown view %q (valid: surface, report, or omit for JSON)",
			r.URL.Query().Get("view")), http.StatusBadRequest)
	}
}

// progressView is the /progress JSON document.
type progressView struct {
	Sweep     *sweepView     `json:"sweep,omitempty"`
	Incumbent *incumbentView `json:"incumbent,omitempty"`
}

type sweepView struct {
	Kernel string `json:"kernel"`
	// Evaluator is the backend the sweep runs on ("simulate",
	// "symbolic", "auto"; "" on traces from older producers).
	Evaluator string `json:"evaluator,omitempty"`
	Total     int64  `json:"total"`
	Done      int64  `json:"done"`
	CacheHits int64  `json:"cache_hits"`
	Skipped   int64  `json:"skipped"`
	// Pruned counts configurations removed by the static feasibility
	// pre-filter before evaluation (zero when pruning is off).
	Pruned int64 `json:"pruned"`
	// SymbolicPoints / ResidualPoints split the fresh evaluations by
	// backend: closed-form vs simulator fallback.
	SymbolicPoints int64   `json:"symbolic_points"`
	ResidualPoints int64   `json:"residual_points"`
	Finished       bool    `json:"finished"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	PointsPerSec   float64 `json:"points_per_sec"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	// EtaSec estimates the remaining wall-clock seconds from the
	// observed throughput; -1 while no point has completed yet.
	EtaSec float64 `json:"eta_sec"`
}

type incumbentView struct {
	Name      string  `json:"name"`
	Round     int64   `json:"round"`
	Objective int64   `json:"objective"`
	AgeSec    float64 `json:"age_sec"`
}

func handleProgress(w http.ResponseWriter, _ *http.Request) {
	var view progressView
	now := time.Now()
	if p := obs.CurrentSweep(); p != nil {
		done, hits := p.Done(), p.CacheHits()
		elapsed := now.Sub(time.Unix(0, p.StartNs)).Seconds()
		sv := &sweepView{
			Kernel:         p.Kernel,
			Evaluator:      p.Evaluator(),
			Total:          p.Total,
			Done:           done,
			CacheHits:      hits,
			Skipped:        p.Skipped(),
			Pruned:         p.Pruned(),
			SymbolicPoints: p.SymbolicPoints(),
			ResidualPoints: p.ResidualPoints(),
			Finished:       p.Finished(),
			ElapsedSec:     elapsed,
			EtaSec:         -1,
		}
		if done > 0 {
			sv.CacheHitRate = float64(hits) / float64(done)
			if elapsed > 0 {
				sv.PointsPerSec = float64(done) / elapsed
				sv.EtaSec = float64(p.Total-done) / sv.PointsPerSec
			}
		}
		view.Sweep = sv
	}
	if inc, ok := obs.Incumbent(); ok {
		view.Incumbent = &incumbentView{
			Name:      inc.Name,
			Round:     inc.Round,
			Objective: inc.Objective,
			AgeSec:    now.Sub(time.Unix(0, inc.TimeNs)).Seconds(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view) //nolint:errcheck // best-effort response write
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Series are emitted in sorted name
// order, so the output is deterministic for a fixed snapshot. Metric
// names are sanitized to the [a-zA-Z_:][a-zA-Z0-9_:]* charset the
// format requires ("smt.nodes" becomes "smt_nodes").
func WritePrometheus(w io.Writer, s obs.MetricsSnapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", pn, promFloat(b), cum, promExemplar(h, i))
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", pn, h.Count, promExemplar(h, len(h.Bounds)))
		fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

// promExemplar renders a bucket's exemplar in the OpenMetrics style
// (" # {trace_id=\"...\"} value"), or "" when the bucket has none.
// Exemplars link a latency bucket to a concrete trace ID resolvable at
// /debug/requests?trace=<id>. Plain-Prometheus scrapers that reject the
// suffix can strip everything from " # " on.
func promExemplar(h obs.HistogramSnapshot, i int) string {
	if i >= len(h.Exemplars) || h.Exemplars[i] == nil {
		return ""
	}
	ex := h.Exemplars[i]
	return fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, promFloat(ex.Value))
}

// promName maps a registry name onto the Prometheus metric-name charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
