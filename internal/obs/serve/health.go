package serve

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Runtime health of the process itself, exported at /metrics alongside
// the domain counters. The values are refreshed at scrape time (from
// handleMetrics) rather than on a ticker: an idle process pays nothing
// between scrapes, and every scrape sees current numbers.
var (
	procStart   = obs.Now()
	mGoroutines = obs.NewGauge("process.goroutines")
	mHeapInuse  = obs.NewGauge("process.heap_inuse_bytes")
	mUptime     = obs.NewGauge("process.uptime_seconds")
	mGCPause    = obs.NewHistogram("process.gc_pause_seconds",
		1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1)

	// gcMu guards the pause-ring cursor so concurrent scrapes don't
	// double-observe the same GC cycles.
	gcMu      sync.Mutex
	gcLastNum uint32
)

// updateHealthMetrics refreshes the process gauges and drains any GC
// pauses that completed since the previous scrape into the pause
// histogram (runtime.MemStats keeps the most recent 256 in a ring;
// scraping less than 256 GCs apart loses nothing).
func updateHealthMetrics() {
	mGoroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mHeapInuse.Set(float64(ms.HeapInuse))
	mUptime.Set(obs.Now().Sub(procStart).Seconds())

	gcMu.Lock()
	defer gcMu.Unlock()
	d := ms.NumGC - gcLastNum
	if d == 0 {
		return
	}
	if ring := uint32(len(ms.PauseNs)); d > ring {
		d = ring // older pauses have been overwritten in the ring
	}
	for j := ms.NumGC - d + 1; j <= ms.NumGC; j++ {
		mGCPause.Observe(float64(ms.PauseNs[(j+255)%256]) / 1e9)
	}
	gcLastNum = ms.NumGC
}
