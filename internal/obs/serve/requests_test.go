package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/trace"
)

// finishOne pushes one finished request (with a real span tree) through
// the default trace store and returns its trace ID.
func finishOne(t *testing.T, id, status string, httpStatus int) {
	t.Helper()
	ctx, tr := obs.StartTrace(context.Background(), id)
	if tr == nil {
		t.Fatalf("StartTrace(%q) returned no trace (obs disabled?)", id)
	}
	act := &trace.Active{TraceID: id, Op: "solve", Kernel: "gemm", GPU: "ga100", StartAt: time.Now(), Trace: tr}
	trace.Default.Begin(act)
	ctx, root := obs.Start(ctx, "serve.request")
	_, child := obs.Start(ctx, "core.select_tiles")
	child.End()
	root.End()
	trace.Default.Finish(act, trace.Outcome{
		Status: status, HTTPStatus: httpStatus,
		Kernel: "gemm", GPU: "ga100", Duration: 5 * time.Millisecond,
	})
}

// TestDebugRequestsEndpoint drives /debug/requests through the overview
// and every drill-down view.
func TestDebugRequestsEndpoint(t *testing.T) {
	obs.Reset()
	trace.Default.Reset()
	obs.EnableMetrics() // daemon mode: per-request traces, no global capture
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
		trace.Default.Reset()
	})

	const id = "0123456789abcdef0123456789abcdef"
	finishOne(t, id, "error", 422)

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/requests")
	if code != 200 {
		t.Fatalf("/debug/requests = %d:\n%s", code, body)
	}
	var overview struct {
		Recent []struct {
			TraceID    string `json:"trace_id"`
			Status     string `json:"status"`
			KeepReason string `json:"keep_reason"`
			SpanCount  int    `json:"span_count"`
		} `json:"recent"`
		Stats struct {
			Seen     int64 `json:"seen"`
			Retained int64 `json:"retained"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &overview); err != nil {
		t.Fatalf("/debug/requests not JSON: %v\n%s", err, body)
	}
	if len(overview.Recent) != 1 || overview.Recent[0].TraceID != id {
		t.Fatalf("recent table = %+v", overview.Recent)
	}
	if r := overview.Recent[0]; r.Status != "error" || r.KeepReason != "error" || r.SpanCount != 2 {
		t.Fatalf("recent row = %+v", r)
	}
	if overview.Stats.Seen != 1 || overview.Stats.Retained != 1 {
		t.Fatalf("stats = %+v", overview.Stats)
	}

	code, body = get("/debug/requests?trace=" + id)
	if code != 200 {
		t.Fatalf("drill-down = %d:\n%s", code, body)
	}
	var detail struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name   string `json:"name"`
			Parent uint64 `json:"parent"`
			Trace  string `json:"trace"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("drill-down not JSON: %v\n%s", err, body)
	}
	if detail.TraceID != id || len(detail.Spans) != 2 {
		t.Fatalf("drill-down = %+v", detail)
	}
	if detail.Spans[0].Name != "serve.request" || detail.Spans[1].Name != "core.select_tiles" {
		t.Fatalf("span names = %+v", detail.Spans)
	}
	if detail.Spans[1].Parent == 0 || detail.Spans[1].Trace != id {
		t.Fatalf("child span not nested under root / mislabeled: %+v", detail.Spans[1])
	}

	if code, body := get("/debug/requests?trace=" + id + "&view=tree"); code != 200 ||
		!strings.Contains(body, "core.select_tiles") {
		t.Fatalf("tree view = %d:\n%s", code, body)
	}
	if code, body := get("/debug/requests?trace=" + id + "&view=chrome"); code != 200 ||
		!json.Valid([]byte(body)) || !strings.Contains(body, "serve.request") {
		t.Fatalf("chrome view = %d:\n%s", code, body)
	}
	if code, body := get("/debug/requests?trace=ffffffffffffffffffffffffffffffff"); code != 404 ||
		!strings.Contains(body, "sampled out") {
		t.Fatalf("unknown trace = %d:\n%s", code, body)
	}
	if code, body := get("/debug/requests?trace=" + id + "&view=nope"); code != 400 ||
		!strings.Contains(body, `"nope"`) {
		t.Fatalf("unknown view = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/requests?n=bogus"); code != 400 {
		t.Fatalf("bad n = %d, want 400", code)
	}
}

// TestDebugRequestsActiveTable: a request between Begin and Finish shows
// in the active table with its live span count.
func TestDebugRequestsActiveTable(t *testing.T) {
	obs.Reset()
	trace.Default.Reset()
	obs.EnableMetrics()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
		trace.Default.Reset()
	})

	const id = "aaaa0000aaaa0000aaaa0000aaaa0000"
	ctx, tr := obs.StartTrace(context.Background(), id)
	act := &trace.Active{TraceID: id, Op: "best", StartAt: time.Now(), Trace: tr}
	trace.Default.Begin(act)
	_, sp := obs.Start(ctx, "serve.request")

	rec := httptest.NewRecorder()
	handleRequests(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var overview struct {
		Active []struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
			Spans   int    `json:"spans"`
		} `json:"active"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &overview); err != nil {
		t.Fatal(err)
	}
	if len(overview.Active) != 1 || overview.Active[0].TraceID != id ||
		overview.Active[0].Op != "best" || overview.Active[0].Spans != 1 {
		t.Fatalf("active table = %+v", overview.Active)
	}

	sp.End()
	trace.Default.Finish(act, trace.Outcome{Status: trace.StatusOK, HTTPStatus: 200})
}

// TestFlightTraceFilterEndpoint: /flight?trace= narrows the dump to one
// request's events.
func TestFlightTraceFilterEndpoint(t *testing.T) {
	flight.Default.Reset()
	flight.Default.Enable()
	t.Cleanup(func() {
		flight.Default.Disable()
		flight.Default.Reset()
	})

	flight.Default.SpanBegin(1, 0, "mine", "trace-a")
	flight.Default.SpanBegin(2, 0, "theirs", "trace-b")
	flight.Default.Log("INFO", "hello", 1, "trace-a")

	rec := httptest.NewRecorder()
	handleFlight(rec, httptest.NewRequest("GET", "/flight?trace=trace-a", nil))
	var dump struct {
		Filter string `json:"filter"`
		Events []struct {
			Name  string `json:"name,omitempty"`
			Trace string `json:"trace,omitempty"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, rec.Body.String())
	}
	if dump.Filter != "trace-a" {
		t.Fatalf("filter = %q", dump.Filter)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("filtered events = %+v", dump.Events)
	}
	for _, e := range dump.Events {
		if e.Trace != "trace-a" {
			t.Fatalf("foreign event leaked through filter: %+v", e)
		}
	}
}

// TestHealthMetricsOnScrape: /metrics carries the process health series
// and the GC pause histogram fills once a collection has run.
func TestHealthMetricsOnScrape(t *testing.T) {
	obs.Reset()
	obs.EnableMetrics()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
	runtime.GC() // guarantee at least one pause in MemStats
	rec := httptest.NewRecorder()
	handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"process_goroutines ",
		"process_heap_inuse_bytes ",
		"process_uptime_seconds ",
		"process_gc_pause_seconds_count ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "process_gc_pause_seconds_count ") {
			if strings.TrimPrefix(line, "process_gc_pause_seconds_count ") == "0" {
				t.Fatalf("gc pause histogram empty after runtime.GC():\n%s", body)
			}
		}
	}
}

// TestWritePrometheusExemplars pins the OpenMetrics-style exemplar
// suffix: buckets with an exemplar carry it, buckets without stay plain.
func TestWritePrometheusExemplars(t *testing.T) {
	ex := &obs.Exemplar{TraceID: "deadbeef", Value: 0.005}
	s := obs.MetricsSnapshot{
		Histograms: map[string]obs.HistogramSnapshot{
			"serve.request_seconds": {
				Count:     3,
				Sum:       0.015,
				Bounds:    []float64{0.001, 0.01},
				Counts:    []int64{1, 2, 0},
				Exemplars: []*obs.Exemplar{nil, ex, nil},
			},
		},
	}
	var b strings.Builder
	WritePrometheus(&b, s)
	got := b.String()
	want := `serve_request_seconds_bucket{le="0.01"} 3 # {trace_id="deadbeef"} 0.005`
	if !strings.Contains(got, want) {
		t.Fatalf("exemplar suffix missing:\n%s", got)
	}
	if !strings.Contains(got, `serve_request_seconds_bucket{le="0.001"} 1`+"\n") {
		t.Fatalf("exemplar leaked onto the wrong bucket:\n%s", got)
	}
}
