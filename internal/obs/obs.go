// Package obs is the pipeline-wide observability layer: hierarchical
// spans, a process-wide metrics registry, and exporters (human-readable
// tree, JSON, Chrome trace-event format). It is stdlib-only and built so
// that instrumentation costs nothing when disabled:
//
//   - obs.Start returns a nil *Span when tracing is off; every Span
//     method nil-checks, so the instrumented code needs no guards and
//     the disabled path performs no allocation (see TestObsOverhead),
//   - Counter/Gauge/Histogram updates are a single predictable branch
//     when disabled and a lock-free atomic when enabled.
//
// The pipeline packages (core, smt, ppcg, codegen, gpusim, cachesim)
// carry the current span through a context.Context, so one enabled run
// of SelectTiles/Run produces a single tree: model generation, the
// solver's objective-improvement rounds (Sec. IV-L / V-G), compilation,
// and simulation. cmd/eatss exposes the layer via -trace, -metrics and
// -summary.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates both span recording and metric updates; spanCapture
// additionally gates span recording, so a long-lived process can keep
// the (bounded) metrics registry hot without accumulating spans.
var (
	enabled     atomic.Bool
	spanCapture atomic.Bool
)

// Enable turns span recording and metric updates on.
func Enable() {
	enabled.Store(true)
	spanCapture.Store(true)
}

// EnableMetrics turns metric updates (and live sweep progress) on
// without span recording. Spans accumulate in memory until Reset —
// fine for one pipeline run under -trace, unbounded for a daemon.
// cmd/eatssd runs under EnableMetrics so /metrics, /progress and the
// flight recorder's bounded ring stay live while memory stays flat.
func EnableMetrics() { enabled.Store(true) }

// Disable turns the layer off again; already-recorded data is kept.
func Disable() {
	enabled.Store(false)
	spanCapture.Store(false)
}

// Enabled reports whether the layer is recording.
func Enabled() bool { return enabled.Load() }

// now is the layer's time source, swappable for deterministic tests.
var (
	nowMu sync.RWMutex
	nowFn = time.Now
)

func now() time.Time {
	nowMu.RLock()
	fn := nowFn
	nowMu.RUnlock()
	return fn()
}

// Now returns the current time from the layer's swappable clock. The
// pipeline packages use it instead of calling time.Now directly (a
// project invariant enforced by tools/selfcheck), so wall-clock reads in
// solver and selection timings honor SetClock overrides in tests.
func Now() time.Time { return now() }

// SetClock overrides the time source used for span timestamps. Passing
// nil restores time.Now. Intended for golden tests.
func SetClock(fn func() time.Time) {
	nowMu.Lock()
	defer nowMu.Unlock()
	if fn == nil {
		fn = time.Now
	}
	nowFn = fn
}

// Reset discards all recorded spans, zeroes every registered metric and
// clears the live progress state. Metric handles stay registered so
// package-level instruments survive.
func Reset() {
	tr.mu.Lock()
	tr.spans = nil
	tr.mu.Unlock()
	resetMetrics()
	resetProgress()
}
