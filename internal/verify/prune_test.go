package verify

import (
	"errors"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
)

func pruneFacts(t *testing.T, tiles map[string]int64) PruneFacts {
	t.Helper()
	k := affine.MustLookup("gemm")
	return PruneFacts{
		SelectionFacts: SelectionFacts{
			Kernel: k, Params: k.Params, GPU: arch.GA100(),
			Tiles: tiles, Precision: affine.FP64, ProblemSizeAware: true,
		},
	}
}

func wantFalsePrune(t *testing.T, err error, what string) {
	t.Helper()
	var v *Violation
	if !errors.As(err, &v) || v.Label != "false-prune" {
		t.Fatalf("%s: want a false-prune Violation, got %v", what, err)
	}
}

// A genuine register violation must certify (nil); claiming the same
// constraint on a feasible point must come back as a false prune.
func TestCertifyPruneRegister(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 512, "j": 512, "k": 4})
	f.Constraint, f.Nest = "register", "matmul"
	if err := CertifyPrune(f); err != nil {
		t.Fatalf("512x512 block exceeds RegsPerSM, replay must agree: %v", err)
	}
	f = pruneFacts(t, map[string]int64{"i": 32, "j": 32, "k": 16})
	f.Constraint, f.Nest = "register", "matmul"
	wantFalsePrune(t, CertifyPrune(f), "feasible point claimed register-infeasible")
}

// Tile-domain point claims: out-of-range certifies, in-range is a false
// prune, and an unknown loop name can never certify.
func TestCertifyPruneTileDomain(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 2048, "j": 16, "k": 16})
	f.Constraint, f.Loop = "tile-domain", "i"
	if err := CertifyPrune(f); err != nil {
		t.Fatalf("T_i=2048 > T_P_B=1024, replay must agree: %v", err)
	}
	f = pruneFacts(t, map[string]int64{"i": 32, "j": 16, "k": 16})
	f.Constraint, f.Loop = "tile-domain", "i"
	wantFalsePrune(t, CertifyPrune(f), "in-domain tile claimed out of domain")
	f.Loop = "nosuch"
	wantFalsePrune(t, CertifyPrune(f), "unknown loop")
}

// Alignment claims only exist under a warp-aligned option set; the step
// is re-derived from WarpFraction, not taken from the certificate.
func TestCertifyPruneAlignment(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 24, "j": 16, "k": 16})
	f.Constraint, f.Loop = "tile-alignment", "i"
	f.WarpFraction = 0.5 // step 16 on GA100
	if err := CertifyPrune(f); err != nil {
		t.Fatalf("24 is not a multiple of 16, replay must agree: %v", err)
	}
	f.Tiles = map[string]int64{"i": 32, "j": 16, "k": 16}
	wantFalsePrune(t, CertifyPrune(f), "aligned tile claimed misaligned")
	// WarpFraction 0 means alignment was no part of the checked family:
	// any alignment claim is then a false prune (step 1).
	f.Tiles = map[string]int64{"i": 24, "j": 16, "k": 16}
	f.WarpFraction = 0
	wantFalsePrune(t, CertifyPrune(f), "alignment claim without alignment in the options")
}

// A block-limit claim under options that never enforced the block limit
// must be rejected: the constraint was not part of the formulation, so
// violating it proves nothing.
func TestCertifyPruneBlockLimitRequiresEnforcement(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 512, "j": 512, "k": 4})
	f.Constraint, f.Nest = "block-limit", "matmul"
	wantFalsePrune(t, CertifyPrune(f), "block-limit without EnforceThreadBlockLimit")
	f.EnforceThreadBlockLimit = true
	if err := CertifyPrune(f); err != nil {
		t.Fatalf("B_size=262144 > 1024 with the limit enforced, replay must agree: %v", err)
	}
}

// Region claims must evaluate at the independently re-derived domain
// minimum corner; a certificate pinning any other point is rejected
// outright (the monotone whole-region argument only works at the
// corner).
func TestCertifyPruneRegionCornerMismatch(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 32, "j": 1, "k": 1})
	f.Constraint, f.Nest, f.Region = "register", "matmul", true
	wantFalsePrune(t, CertifyPrune(f), "region certificate at a non-corner point")
	// At the true corner (1,1,1) the register LHS is far below the cap,
	// so a whole-region claim is also a false prune.
	f.Tiles = map[string]int64{"i": 1, "j": 1, "k": 1}
	wantFalsePrune(t, CertifyPrune(f), "region claim on a non-empty region")
}

// Unknown constraint names never certify.
func TestCertifyPruneUnknownConstraint(t *testing.T) {
	f := pruneFacts(t, map[string]int64{"i": 1, "j": 1, "k": 1})
	f.Constraint = "warp-occupancy"
	wantFalsePrune(t, CertifyPrune(f), "unknown constraint")
}
