// Package verify is the pipeline's independent certifier. It re-decides
// solver results and codegen mappings from first principles — arbitrary-
// precision re-evaluation of every labeled SMT constraint against the
// returned model, a from-scratch re-derivation of the paper's resource
// bounds (warp alignment, register file, L1/shared/L2 capacity) straight
// from the GPU description, and a cross-check of the launch geometry the
// compiler produced — without calling back into the solver or the model
// generator it is checking. A certification failure is a hard error
// carrying the label of the falsified constraint.
//
// The point is trust: the branch-and-prune solver, the model generator
// and the mapper are each a few hundred lines of arithmetic where a
// single wrong bound silently yields plausible-but-infeasible tiles.
// The certifier shares none of that code (only the IR and the machine
// description), so a bug must occur identically in two independent
// derivations to go unnoticed.
package verify

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/deps"
	"repro/internal/smt"
)

// Violation is a certification failure: a named check that the result
// provably fails. It is a hard error — a Violation means either the
// solver/mapper produced an infeasible result or the certifier and the
// model disagree about the formulation; both are bugs.
type Violation struct {
	// Label names the falsified check: an SMT constraint label
	// ("register", "shared-capacity", ...), "unlabeled" for anonymous
	// constraints, or a certifier check name ("tile-alignment",
	// "grid-dims", ...).
	Label string
	// Msg states the falsified fact with the concrete values.
	Msg string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("verify: %s: %s", v.Label, v.Msg)
}

func violationf(label, format string, args ...interface{}) error {
	return &Violation{Label: label, Msg: fmt.Sprintf(format, args...)}
}

// SelectionFacts is everything CertifySelection needs about one EATSS
// solve: the inputs (kernel, problem sizes, GPU, model options), the
// outcome (tiles), and optionally the solver's witness (problem + model)
// for constraint-level re-evaluation. It deliberately does not reference
// internal/core types so the certifier stays independent of the code it
// checks (core imports verify, not the other way around).
type SelectionFacts struct {
	Kernel *affine.Kernel
	// Params are the problem sizes the selection was made under (nil
	// uses Kernel.Params, matching the solve path).
	Params map[string]int64
	GPU    *arch.GPU

	// Tiles is the selected tile size per loop name.
	Tiles map[string]int64
	// Witness, when non-nil, is the solved problem and model for exact
	// constraint re-evaluation.
	Witness *smt.Witness

	// Model options, mirroring core.Options.
	SplitFactor             float64
	WarpFraction            float64
	Precision               affine.Precision
	ProblemSizeAware        bool
	EnforceThreadBlockLimit bool
}

func (f SelectionFacts) params() map[string]int64 {
	if f.Params != nil {
		return f.Params
	}
	return f.Kernel.Params
}

func (f SelectionFacts) warpAlignment() int64 {
	wf := f.WarpFraction
	if wf == 0 {
		wf = 1.0
	}
	waf := int64(wf * float64(f.GPU.ThreadsPerWarp))
	if waf < 1 {
		waf = 1
	}
	return waf
}

// CertifySelection certifies one tile selection. It runs three
// independent layers:
//
//  1. Witness replay (when a witness is present): every constraint of
//     the solved problem is re-decided against the model in
//     arbitrary-precision arithmetic (math/big), the model is checked
//     against the declared domains, and the published Tiles are checked
//     to be exactly the model's T_* values.
//  2. Tile-domain re-derivation: warp-alignment divisibility and the
//     [WAF, min(T_P_B, N)] bounds of Sec. IV-B, rebuilt from the GPU
//     description and kernel extents without the solver.
//  3. Resource re-derivation: per-nest register and L1/shared/L2
//     capacity bounds (Sec. IV-G..IV-J), recomputed from a fresh
//     dependence/reuse analysis.
//
// The first Violation found is returned; nil means certified.
func CertifySelection(f SelectionFacts) error {
	if f.Kernel == nil || f.GPU == nil {
		return violationf("facts", "kernel and GPU must be set")
	}
	if err := f.checkWitness(); err != nil {
		return err
	}
	if err := f.checkTileDomains(); err != nil {
		return err
	}
	return f.checkResources()
}

// checkWitness replays the solved problem against the model.
func (f SelectionFacts) checkWitness() error {
	w := f.Witness
	if w == nil {
		return nil
	}
	p := w.Problem
	if p == nil {
		return violationf("witness", "witness has no problem")
	}
	if got, want := len(w.Model), p.NumVars(); got != want {
		return violationf("witness", "model has %d values for %d variables", got, want)
	}
	for i := 0; i < p.NumVars(); i++ {
		v := smt.Var(i)
		if !p.InDomain(v, w.Model.Value(v)) {
			return violationf("domain", "model value %s = %d is outside the declared domain",
				p.Name(v), w.Model.Value(v))
		}
	}
	for _, c := range p.Cons() {
		if !c.HoldsBig(w.Model) {
			label := c.Label
			if label == "" {
				label = "unlabeled"
			}
			return violationf(label, "constraint %s is falsified by the model", c.Render(p))
		}
	}
	// The published tiles must be the model, nothing else.
	for name, t := range f.Tiles {
		v, ok := w.Vars["T_"+name]
		if !ok {
			return violationf("witness", "tile %q has no variable T_%s in the witness", name, name)
		}
		if got := w.Model.Value(v); got != t {
			return violationf("witness", "tile %q = %d disagrees with model T_%s = %d", name, t, name, got)
		}
	}
	return nil
}

// checkTileDomains re-derives the Sec. IV-B tile domains.
func (f SelectionFacts) checkTileDomains() error {
	params := f.params()
	waf := f.warpAlignment()
	// Upper bounds intersect across nests sharing a loop name
	// (kernel-wide tiles, Sec. IV-M ii).
	upper := make(map[string]int64)
	for _, n := range f.Kernel.Nests {
		for _, l := range n.Loops {
			hi := f.GPU.ThreadsPerBlock
			if f.ProblemSizeAware {
				if ext := l.Extent(params); ext < hi {
					hi = ext
				}
			}
			if prev, ok := upper[l.Name]; !ok || hi < prev {
				upper[l.Name] = hi
			}
		}
	}
	names := make([]string, 0, len(upper))
	for name := range upper {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t, ok := f.Tiles[name]
		if !ok {
			return violationf("tile-domain", "loop %q has no selected tile", name)
		}
		if t < waf || t%waf != 0 {
			return violationf("tile-alignment",
				"T_%s = %d is not a positive multiple of the warp-alignment factor %d", name, t, waf)
		}
		if t > upper[name] {
			return violationf("tile-domain",
				"T_%s = %d exceeds the re-derived upper bound %d", name, t, upper[name])
		}
	}
	return nil
}

// checkResources re-derives the register and capacity bounds per nest
// from a fresh reuse analysis, in arbitrary precision.
func (f SelectionFacts) checkResources() error {
	g := f.GPU
	elemB := f.Precision.Bytes()
	pool := g.L1SharedBytes / elemB
	shCap := int64(f.SplitFactor * float64(pool))
	l1Cap := pool - shCap
	l2Cap := g.L2Bytes / g.SMCount / elemB

	for ni := range f.Kernel.Nests {
		nest := &f.Kernel.Nests[ni]
		reuse := deps.AnalyzeReuse(nest)

		// B_size: product of the tiles of the first <=3 parallel loops
		// (Sec. IV-F).
		bsize := big.NewInt(1)
		nParallel := 0
		for d, l := range nest.Loops {
			if reuse.Info.Parallel[d] && nParallel < 3 {
				nParallel++
				bsize.Mul(bsize, big.NewInt(f.Tiles[l.Name]))
			}
		}
		if nParallel == 0 {
			return violationf("parallelism", "nest %q has no parallel loop", nest.Name)
		}
		if f.EnforceThreadBlockLimit && bsize.Cmp(big.NewInt(g.ThreadsPerBlock)) > 0 {
			return violationf("block-limit",
				"nest %q: B_size %s exceeds T_P_B %d", nest.Name, bsize, g.ThreadsPerBlock)
		}

		// REG_SM = B_size x distinct-line refs x FP_factor <= R_P_S
		// (Sec. IV-G / IV-I).
		regSM := new(big.Int).Mul(bsize,
			big.NewInt(reuse.DistinctLineRefs*f.Precision.Factor()))
		if regSM.Cmp(big.NewInt(g.RegsPerSM)) > 0 {
			return violationf("register",
				"nest %q: REG_SM %s exceeds R_P_S %d", nest.Name, regSM, g.RegsPerSM)
		}

		// Data-tile volumes and the L1/shared split (Sec. IV-C/E/H/J),
		// mirroring the analysis artifact's skeletons from the raw reuse
		// facts.
		l1Sum, shSum := new(big.Int), new(big.Int)
		for _, a := range arrayVolumes(nest, reuse) {
			if len(a.iters) == 0 {
				continue // scalar
			}
			vol := big.NewInt(1)
			for _, it := range a.iters {
				vol.Mul(vol, big.NewInt(f.Tiles[it]))
			}
			if a.l1 || f.SplitFactor == 0 {
				l1Sum.Add(l1Sum, vol)
			} else {
				shSum.Add(shSum, vol)
			}
		}
		if shSum.Sign() > 0 && shSum.Cmp(big.NewInt(shCap)) > 0 {
			return violationf("shared-capacity",
				"nest %q: shared volume %s exceeds capacity %d elements", nest.Name, shSum, shCap)
		}
		if l1Sum.Sign() > 0 {
			if f.SplitFactor >= 1.0 {
				if l1Sum.Cmp(big.NewInt(l2Cap)) > 0 {
					return violationf("l2-share",
						"nest %q: cache-mapped volume %s exceeds the per-SM L2 share %d elements",
						nest.Name, l1Sum, l2Cap)
				}
			} else if l1Sum.Cmp(big.NewInt(l1Cap)) > 0 {
				return violationf("l1-capacity",
					"nest %q: cache-mapped volume %s exceeds L1 capacity %d elements",
					nest.Name, l1Sum, l1Cap)
			}
		}
	}
	return nil
}

// arrayVolume mirrors analysis.ArrayVolume, re-derived here so the
// certifier does not depend on the artifact it is checking.
type arrayVolume struct {
	array string
	iters []string
	l1    bool
}

func arrayVolumes(nest *affine.Nest, reuse *deps.NestReuse) []arrayVolume {
	idx := make(map[string]int)
	var out []arrayVolume
	for _, rr := range reuse.Refs {
		i, ok := idx[rr.Ref.Array]
		if !ok {
			i = len(out)
			idx[rr.Ref.Array] = i
			out = append(out, arrayVolume{array: rr.Ref.Array})
		}
		if rr.Class == deps.MemL1 {
			out[i].l1 = true
		}
	}
	for i := range out {
		for _, l := range nest.Loops {
			used := false
			for _, rr := range reuse.Refs {
				if rr.Ref.Array == out[i].array && rr.Ref.UsesIter(l.Name) {
					used = true
					break
				}
			}
			if used {
				out[i].iters = append(out[i].iters, l.Name)
			}
		}
	}
	return out
}

// CertifyMapping cross-checks the launch geometry of one compiled nest
// against the execution-model limits of the GPU and the mapping's own
// invariants: block/grid dimension products, per-dimension coverage of
// the tile, the shared-memory staging footprint recomputed from the
// reference list, register bounds, and launch count. nil means
// certified.
func CertifyMapping(m *codegen.MappedNest, g *arch.GPU) error {
	name := m.Nest.Name
	dims := len(m.MappedLoops)
	if dims == 0 || dims > 3 {
		return violationf("mapped-loops", "nest %q maps %d loop dimensions (want 1..3)", name, dims)
	}
	if len(m.BlockDims) != dims || len(m.Coarsen) != dims || len(m.GridDims) != dims {
		return violationf("geometry",
			"nest %q: %d mapped loops but %d block / %d coarsen / %d grid dims",
			name, dims, len(m.BlockDims), len(m.Coarsen), len(m.GridDims))
	}

	tpb, blocks := int64(1), int64(1)
	for i := range m.MappedLoops {
		if m.BlockDims[i] < 1 || m.Coarsen[i] < 1 || m.GridDims[i] < 1 {
			return violationf("geometry",
				"nest %q dim %d: non-positive geometry (block %d, coarsen %d, grid %d)",
				name, i, m.BlockDims[i], m.Coarsen[i], m.GridDims[i])
		}
		tpb *= m.BlockDims[i]
		blocks *= m.GridDims[i]
	}
	if tpb != m.ThreadsPerBlock {
		return violationf("threads-per-block",
			"nest %q: ThreadsPerBlock %d != product of BlockDims %d", name, m.ThreadsPerBlock, tpb)
	}
	if tpb > g.ThreadsPerBlock {
		return violationf("threads-per-block",
			"nest %q: block of %d threads exceeds the device limit %d", name, tpb, g.ThreadsPerBlock)
	}
	if blocks != m.TotalBlocks {
		return violationf("grid-dims",
			"nest %q: TotalBlocks %d != product of GridDims %d", name, m.TotalBlocks, blocks)
	}

	for i, ln := range m.MappedLoops {
		tile := m.Tiles[ln]
		li := m.Nest.LoopIndex(ln)
		if li < 0 {
			return violationf("mapped-loops", "nest %q maps unknown loop %q", name, ln)
		}
		ext := m.Nest.Loops[li].Extent(m.Params)
		want := int64(1)
		if tile > 0 {
			want = (ext + tile - 1) / tile
			if want < 1 {
				want = 1
			}
		}
		if m.GridDims[i] != want {
			return violationf("grid-dims",
				"nest %q loop %q: GridDims %d != ceil(extent %d / tile %d) = %d",
				name, ln, m.GridDims[i], ext, tile, want)
		}
		if m.BlockDims[i]*m.Coarsen[i] < tile {
			return violationf("coverage",
				"nest %q loop %q: block %d x coarsen %d covers fewer points than the tile %d",
				name, ln, m.BlockDims[i], m.Coarsen[i], tile)
		}
	}

	// Shared staging footprint, recomputed from the reference list.
	shared := make(map[string]bool)
	for _, mr := range m.Refs {
		if mr.Shared {
			shared[mr.Ref.Array] = true
		}
	}
	footprint := int64(0)
	for a := range shared {
		footprint += m.ArrayStageElems(a) * m.Precision.Bytes()
	}
	if footprint != m.SharedBytesPerBlock {
		return violationf("shared-footprint",
			"nest %q: SharedBytesPerBlock %d != recomputed staging footprint %d",
			name, m.SharedBytesPerBlock, footprint)
	}
	if m.SharedBytesPerBlock > g.SharedPerBlock {
		return violationf("shared-footprint",
			"nest %q: staging %dB exceeds the per-block shared limit %dB",
			name, m.SharedBytesPerBlock, g.SharedPerBlock)
	}

	if m.RegsPerThread < 1 || m.RegsPerThread > g.RegsPerThread {
		return violationf("registers",
			"nest %q: RegsPerThread %d outside [1, %d]", name, m.RegsPerThread, g.RegsPerThread)
	}
	// Register tiling only guarantees the per-thread limit (the extra
	// accumulators are spilled per-thread, not re-budgeted per block),
	// so the per-block bound is checked only on plain PPCG mappings.
	if m.RegTiling == nil && m.RegsPerThread*m.ThreadsPerBlock > g.RegsPerBlock {
		return violationf("registers",
			"nest %q: %d regs/thread x %d threads exceeds the per-block file %d",
			name, m.RegsPerThread, m.ThreadsPerBlock, g.RegsPerBlock)
	}

	if m.Launches < 1 {
		return violationf("launches", "nest %q: launch count %d < 1", name, m.Launches)
	}
	if g.WarpsPerBlock(m.ThreadsPerBlock) > g.MaxWarpsPerSM {
		return violationf("warps",
			"nest %q: %d warps per block exceeds the per-SM warp limit %d",
			name, g.WarpsPerBlock(m.ThreadsPerBlock), g.MaxWarpsPerSM)
	}
	return nil
}

// CertifyKernel certifies every nest of a compiled kernel.
func CertifyKernel(mk *codegen.MappedKernel, g *arch.GPU) error {
	for _, m := range mk.Nests {
		if err := CertifyMapping(m, g); err != nil {
			return err
		}
	}
	return nil
}
