package verify

import (
	"math/big"

	"repro/internal/affine"
	"repro/internal/deps"
)

// PruneFacts is everything CertifyPrune needs about one static prune
// verdict (internal/feas's PruneCert, flattened so the certifier stays
// independent of the analysis it checks — feas imports nothing from
// verify and vice versa). The embedded SelectionFacts carries the
// inputs (kernel, params, GPU, model options) and the judged Tiles;
// the extra fields carry the claim.
type PruneFacts struct {
	SelectionFacts

	// Constraint names the claimed-violated constraint ("tile-domain",
	// "tile-alignment", "parallelism", "block-limit", "register",
	// "shared-capacity", "l1-capacity", "l2-share").
	Constraint string
	// Nest / Loop locate resource / domain constraints respectively.
	Nest string
	Loop string
	// Region claims the whole tile region is infeasible — the violation
	// must then hold at the domain box's minimum corner, which the
	// certifier re-derives itself (monotone left-hand sides take their
	// minimum there, so a violation at the corner covers every point).
	Region bool
}

// step is the tile-domain step the claim was made under. Unlike
// SelectionFacts.warpAlignment (which normalizes WarpFraction 0 to full
// warps, matching the solver's defaulting), a zero WarpFraction here
// means alignment was not part of the checked constraint family (sweep
// prunes), so the step is 1.
func (f PruneFacts) step() int64 {
	if f.WarpFraction == 0 {
		return 1
	}
	return f.warpAlignment()
}

// upperBounds re-derives the Sec. IV-B per-dimension upper bounds
// (min(T_P_B, N), intersected across nests sharing a loop name).
func (f PruneFacts) upperBounds() map[string]int64 {
	params := f.params()
	upper := make(map[string]int64)
	for _, n := range f.Kernel.Nests {
		for _, l := range n.Loops {
			hi := f.GPU.ThreadsPerBlock
			if f.ProblemSizeAware {
				if ext := l.Extent(params); ext < hi {
					hi = ext
				}
			}
			if prev, ok := upper[l.Name]; !ok || hi < prev {
				upper[l.Name] = hi
			}
		}
	}
	return upper
}

// CertifyPrune replays one prune certificate from first principles: the
// claimed constraint is re-derived from the kernel, GPU description and
// a fresh dependence/reuse analysis — none of internal/feas's interval
// machinery — and re-evaluated in arbitrary precision at the claimed
// point (or at the independently re-derived domain minimum for Region
// claims). nil means the claim holds: the point (or every point) is
// genuinely infeasible under the named constraint. A Violation labeled
// "false-prune" means the certificate pruned a feasible point — a bug
// in the static analysis, and the exact failure mode the catalog-wide
// soundness gate exists to rule out.
func CertifyPrune(f PruneFacts) error {
	if f.Kernel == nil || f.GPU == nil {
		return violationf("facts", "kernel and GPU must be set")
	}
	step := f.step()
	upper := f.upperBounds()

	tiles := f.Tiles
	if f.Region {
		// Re-derive the domain minimum corner ourselves; a Region claim
		// carrying tiles must agree with it (otherwise the "minimum" the
		// analysis evaluated is not the domain minimum and the monotone
		// argument collapses).
		corner := make(map[string]int64, len(upper))
		for name := range upper {
			corner[name] = step
		}
		for name, t := range tiles {
			if want, ok := corner[name]; !ok || t != want {
				return violationf("false-prune",
					"region certificate evaluates T_%s = %d, but the domain minimum is %d", name, t, corner[name])
			}
		}
		tiles = corner
	}

	switch f.Constraint {
	case "tile-domain":
		if f.Region {
			// Empty domain: even the smallest admissible multiple
			// exceeds the upper bound.
			if hi, ok := upper[f.Loop]; ok && step > hi {
				return nil
			}
			return violationf("false-prune",
				"domain of T_%s is not empty (step %d <= bound %d)", f.Loop, step, upper[f.Loop])
		}
		t, ok := f.Tiles[f.Loop]
		if !ok {
			return violationf("false-prune", "certificate names loop %q but judges no tile for it", f.Loop)
		}
		hi, known := upper[f.Loop]
		if !known {
			return violationf("false-prune", "kernel has no loop %q", f.Loop)
		}
		if t < step || t%step != 0 || t > (hi/step)*step {
			return nil
		}
		return violationf("false-prune",
			"T_%s = %d is inside the declared domain [%d, %d] step %d", f.Loop, t, step, hi, step)

	case "tile-alignment":
		t, ok := f.Tiles[f.Loop]
		if !ok {
			return violationf("false-prune", "certificate names loop %q but judges no tile for it", f.Loop)
		}
		if step > 1 && (t < step || t%step != 0) {
			return nil
		}
		return violationf("false-prune",
			"T_%s = %d is a positive multiple of the step %d", f.Loop, t, step)

	case "parallelism":
		nest := f.findNest()
		if nest == nil {
			return violationf("false-prune", "kernel has no nest %q", f.Nest)
		}
		reuse := deps.AnalyzeReuse(nest)
		for d := range nest.Loops {
			if reuse.Info.Parallel[d] {
				return violationf("false-prune", "nest %q has parallel loop %q", f.Nest, nest.Loops[d].Name)
			}
		}
		return nil

	case "block-limit", "register":
		nest := f.findNest()
		if nest == nil {
			return violationf("false-prune", "kernel has no nest %q", f.Nest)
		}
		reuse := deps.AnalyzeReuse(nest)
		bsize := big.NewInt(1)
		nParallel := 0
		for d, l := range nest.Loops {
			if reuse.Info.Parallel[d] && nParallel < 3 {
				nParallel++
				t, ok := tiles[l.Name]
				if !ok {
					return violationf("false-prune",
						"nest %q: no tile for parallel loop %q — B_size is unbounded by the claim", f.Nest, l.Name)
				}
				bsize.Mul(bsize, big.NewInt(t))
			}
		}
		if nParallel == 0 {
			return violationf("false-prune", "nest %q has no parallel loop to size a block from", f.Nest)
		}
		if f.Constraint == "block-limit" {
			if !f.EnforceThreadBlockLimit {
				return violationf("false-prune",
					"block-limit claim under options that do not enforce the thread-block limit")
			}
			if bsize.Cmp(big.NewInt(f.GPU.ThreadsPerBlock)) > 0 {
				return nil
			}
			return violationf("false-prune",
				"nest %q: B_size %s is within T_P_B %d", f.Nest, bsize, f.GPU.ThreadsPerBlock)
		}
		regSM := new(big.Int).Mul(bsize, big.NewInt(reuse.DistinctLineRefs*f.Precision.Factor()))
		if regSM.Cmp(big.NewInt(f.GPU.RegsPerSM)) > 0 {
			return nil
		}
		return violationf("false-prune",
			"nest %q: REG_SM %s is within R_P_S %d", f.Nest, regSM, f.GPU.RegsPerSM)

	case "shared-capacity", "l1-capacity", "l2-share":
		nest := f.findNest()
		if nest == nil {
			return violationf("false-prune", "kernel has no nest %q", f.Nest)
		}
		reuse := deps.AnalyzeReuse(nest)
		g := f.GPU
		elemB := f.Precision.Bytes()
		pool := g.L1SharedBytes / elemB
		shCap := int64(f.SplitFactor * float64(pool))
		l1Cap := pool - shCap
		l2Cap := g.L2Bytes / g.SMCount / elemB
		l1Sum, shSum := new(big.Int), new(big.Int)
		for _, a := range arrayVolumes(nest, reuse) {
			if len(a.iters) == 0 {
				continue
			}
			vol := big.NewInt(1)
			for _, it := range a.iters {
				t, ok := tiles[it]
				if !ok {
					return violationf("false-prune",
						"nest %q: no tile for iterator %q of array %q", f.Nest, it, a.array)
				}
				vol.Mul(vol, big.NewInt(t))
			}
			if a.l1 || f.SplitFactor == 0 {
				l1Sum.Add(l1Sum, vol)
			} else {
				shSum.Add(shSum, vol)
			}
		}
		switch f.Constraint {
		case "shared-capacity":
			if shSum.Sign() > 0 && shSum.Cmp(big.NewInt(shCap)) > 0 {
				return nil
			}
			return violationf("false-prune",
				"nest %q: shared volume %s is within capacity %d elements", f.Nest, shSum, shCap)
		case "l2-share":
			if f.SplitFactor < 1.0 {
				return violationf("false-prune",
					"l2-share claim under split %.2f < 1.0 (the L1 constraint applies instead)", f.SplitFactor)
			}
			if l1Sum.Sign() > 0 && l1Sum.Cmp(big.NewInt(l2Cap)) > 0 {
				return nil
			}
			return violationf("false-prune",
				"nest %q: cache-mapped volume %s is within the per-SM L2 share %d elements", f.Nest, l1Sum, l2Cap)
		default: // l1-capacity
			if f.SplitFactor >= 1.0 {
				return violationf("false-prune",
					"l1-capacity claim under split %.2f >= 1.0 (the L2 share applies instead)", f.SplitFactor)
			}
			if l1Sum.Sign() > 0 && l1Sum.Cmp(big.NewInt(l1Cap)) > 0 {
				return nil
			}
			return violationf("false-prune",
				"nest %q: cache-mapped volume %s is within L1 capacity %d elements", f.Nest, l1Sum, l1Cap)
		}
	}
	return violationf("false-prune", "unknown constraint %q", f.Constraint)
}

// findNest resolves the claimed nest by name.
func (f PruneFacts) findNest() *affine.Nest {
	for ni := range f.Kernel.Nests {
		if f.Kernel.Nests[ni].Name == f.Nest {
			return &f.Kernel.Nests[ni]
		}
	}
	return nil
}
