package verify

import (
	"errors"
	"testing"

	"repro/internal/affine"
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/deps"
	"repro/internal/smt"
)

func gemm() *affine.Kernel {
	return affine.NewBuilder("gemm", map[string]int64{"NI": 4000, "NJ": 4000, "NK": 4000}).
		Array("C", "NI", "NJ").
		Array("A", "NI", "NK").
		Array("B", "NK", "NJ").
		Nest("matmul").
		Loop("i", "NI").Loop("j", "NJ").Loop("k", "NK").
		Stmt("S0", 2).Write("C", "i", "j").Read("C", "i", "j").
		Read("A", "i", "k").Read("B", "k", "j").Reduction().End().
		End().
		Build()
}

// paperFacts reproduces the paper's GA100 matmul walkthrough selection
// (Ti=16, Tj=384, Tk=16 under 50% split, half-warp alignment, FP64),
// which must certify.
func paperFacts() SelectionFacts {
	return SelectionFacts{
		Kernel:           gemm(),
		GPU:              arch.GA100(),
		Tiles:            map[string]int64{"i": 16, "j": 384, "k": 16},
		SplitFactor:      0.5,
		WarpFraction:     0.5,
		Precision:        affine.FP64,
		ProblemSizeAware: true,
	}
}

func TestCertifySelectionPaperWalkthrough(t *testing.T) {
	if err := CertifySelection(paperFacts()); err != nil {
		t.Fatalf("paper walkthrough failed certification: %v", err)
	}
}

func wantViolation(t *testing.T, err error, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a %q violation, got nil", label)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if v.Label != label {
		t.Fatalf("expected label %q, got %q (%v)", label, v.Label, v)
	}
}

func TestCertifySelectionMisalignedTile(t *testing.T) {
	f := paperFacts()
	f.Tiles["j"] = 384 + 8 // half-warp factor is 16; +8 breaks divisibility
	wantViolation(t, CertifySelection(f), "tile-alignment")
}

func TestCertifySelectionTileAboveBound(t *testing.T) {
	f := paperFacts()
	f.Tiles["j"] = 2048 // above T_P_B = 1024
	wantViolation(t, CertifySelection(f), "tile-domain")
}

func TestCertifySelectionMissingTile(t *testing.T) {
	f := paperFacts()
	delete(f.Tiles, "k")
	wantViolation(t, CertifySelection(f), "tile-domain")
}

func TestCertifySelectionCapacityBlown(t *testing.T) {
	// Inflate the serial tile: (Ti+Tk)*Tj grows past the L1 capacity
	// while alignment and the T_P_B bound stay satisfied.
	f := paperFacts()
	f.Tiles["i"] = 1024
	f.Tiles["k"] = 1024
	f.Tiles["j"] = 1024
	err := CertifySelection(f)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a violation, got %v", err)
	}
	if v.Label != "l1-capacity" && v.Label != "register" {
		t.Fatalf("expected a capacity or register violation, got %q", v.Label)
	}
}

func TestCertifySelectionBlockLimit(t *testing.T) {
	// The paper's own walkthrough exceeds B_size <= T_P_B; the bound is
	// only enforced when the option asks for it.
	f := paperFacts()
	if err := CertifySelection(f); err != nil {
		t.Fatalf("walkthrough must certify with the limit off: %v", err)
	}
	f.EnforceThreadBlockLimit = true
	wantViolation(t, CertifySelection(f), "block-limit")
}

// witnessFacts builds a tiny solved problem by hand: one variable
// T_i in {4, 8, 16}, constraint T_i <= 8, model T_i = 8.
func witnessFacts(t *testing.T) SelectionFacts {
	t.Helper()
	k := affine.NewBuilder("wit", map[string]int64{"N": 64}).
		Array("A", "N", "N").
		Nest("n").
		Loop("i", "N").Loop("j", "N").
		Stmt("S0", 1).Write("A", "i", "j").Read("A", "i", "j").End().
		End().
		Build()
	p := smt.NewProblem()
	vi := p.IntVar("T_i", []int64{4, 8, 16})
	vj := p.IntVar("T_j", []int64{4, 8, 16})
	p.RequireLabeled("register", smt.V(vi), smt.LE, smt.C(8))
	return SelectionFacts{
		Kernel:       k,
		GPU:          arch.GA100(),
		Tiles:        map[string]int64{"i": 8, "j": 4},
		Witness:      &smt.Witness{Problem: p, Model: smt.Model{8, 4}, Vars: map[string]smt.Var{"T_i": vi, "T_j": vj}},
		WarpFraction: 0.125, // waf 4
		Precision:    affine.FP32,
	}
}

func TestWitnessReplayClean(t *testing.T) {
	if err := CertifySelection(witnessFacts(t)); err != nil {
		t.Fatalf("clean witness failed: %v", err)
	}
}

func TestWitnessFalsifiedConstraint(t *testing.T) {
	f := witnessFacts(t)
	f.Witness.Model = smt.Model{16, 4} // violates T_i <= 8
	f.Tiles["i"] = 16
	wantViolation(t, CertifySelection(f), "register")
}

func TestWitnessModelOutsideDomain(t *testing.T) {
	f := witnessFacts(t)
	f.Witness.Model = smt.Model{6, 4} // 6 not in {4,8,16}
	f.Tiles["i"] = 6
	wantViolation(t, CertifySelection(f), "domain")
}

func TestWitnessTileModelDisagreement(t *testing.T) {
	f := witnessFacts(t)
	f.Tiles["i"] = 4 // model says 8
	wantViolation(t, CertifySelection(f), "witness")
}

func TestWitnessModelLengthMismatch(t *testing.T) {
	f := witnessFacts(t)
	f.Witness.Model = smt.Model{8}
	wantViolation(t, CertifySelection(f), "witness")
}

func mapped(t *testing.T) *codegen.MappedNest {
	t.Helper()
	k := gemm()
	n := &k.Nests[0]
	m, err := codegen.MapNestReuse(n, deps.AnalyzeReuse(n), k.Params,
		map[string]int64{"i": 16, "j": 384, "k": 16}, arch.GA100(),
		codegen.Options{UseShared: true, Precision: affine.FP64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCertifyMappingClean(t *testing.T) {
	if err := CertifyMapping(mapped(t), arch.GA100()); err != nil {
		t.Fatalf("clean mapping failed certification: %v", err)
	}
}

func TestCertifyMappingCorruptGrid(t *testing.T) {
	m := mapped(t)
	m.GridDims[0]++
	wantViolation(t, CertifyMapping(m, arch.GA100()), "grid-dims")
}

func TestCertifyMappingCorruptThreads(t *testing.T) {
	m := mapped(t)
	m.ThreadsPerBlock *= 2
	wantViolation(t, CertifyMapping(m, arch.GA100()), "threads-per-block")
}

func TestCertifyMappingCorruptCoarsen(t *testing.T) {
	m := mapped(t)
	m.Coarsen[0] = 0
	wantViolation(t, CertifyMapping(m, arch.GA100()), "geometry")
}

func TestCertifyMappingCorruptSharedFootprint(t *testing.T) {
	m := mapped(t)
	m.SharedBytesPerBlock += 64
	wantViolation(t, CertifyMapping(m, arch.GA100()), "shared-footprint")
}

func TestCertifyMappingCorruptRegs(t *testing.T) {
	m := mapped(t)
	g := arch.GA100()
	m.RegsPerThread = g.RegsPerThread + 1
	wantViolation(t, CertifyMapping(m, g), "registers")
}

func TestCertifyMappingCorruptLaunches(t *testing.T) {
	m := mapped(t)
	m.Launches = 0
	wantViolation(t, CertifyMapping(m, arch.GA100()), "launches")
}

func TestModeParsingAndSampling(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", Off}, {"", Off}, {"sample", Sample}, {"all", All}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) should fail")
	}
	if Off.ShouldVerify("x") {
		t.Error("Off must never verify")
	}
	if !All.ShouldVerify("x") {
		t.Error("All must always verify")
	}
	// Sample is deterministic and selects roughly 1 in 8 keys.
	hits := 0
	for i := 0; i < 4096; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))
		if Sample.ShouldVerify(key) {
			hits++
		}
		if Sample.ShouldVerify(key) != Sample.ShouldVerify(key) {
			t.Fatal("sampling must be deterministic")
		}
	}
	if hits < 256 || hits > 1024 {
		t.Errorf("Sample hit %d of 4096 keys; expected roughly 1 in 8", hits)
	}
}
