package verify

import (
	"fmt"
	"hash/fnv"
)

// Mode selects how often the pipeline certifies its own results.
type Mode int

const (
	// Off skips certification (the default: the solver and mapper are
	// trusted).
	Off Mode = iota
	// Sample certifies a deterministic 1-in-8 subset of results, keyed by
	// the configuration string — cheap enough to leave on in sweeps.
	Sample
	// All certifies every result.
	All
)

func (m Mode) String() string {
	switch m {
	case All:
		return "all"
	case Sample:
		return "sample"
	default:
		return "off"
	}
}

// ParseMode parses "off", "sample" or "all".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "sample":
		return Sample, nil
	case "all":
		return All, nil
	}
	return Off, fmt.Errorf("verify: unknown mode %q (want off, sample or all)", s)
}

// ShouldVerify reports whether a result identified by key is certified
// under the mode. Sample mode hashes the key (FNV-1a) so the same
// configuration is always either in or out of the sample — sweeps stay
// deterministic and memoization-safe.
func (m Mode) ShouldVerify(key string) bool {
	switch m {
	case All:
		return true
	case Sample:
		h := fnv.New64a()
		h.Write([]byte(key))
		return h.Sum64()%8 == 0
	}
	return false
}
