package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 0} {
		got, done, err := Map(context.Background(), workers, items, func(_ context.Context, i int, v int) int {
			return v * v
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, v := range got {
			if !done[i] {
				t.Fatalf("workers=%d: item %d not done", workers, i)
			}
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 64)
	_, _, err := Map(context.Background(), workers, items, func(_ context.Context, i int, _ int) int {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return i
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds workers=%d", p, workers)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var evaluated atomic.Int64
	_, done, err := Map(ctx, 4, items, func(_ context.Context, i int, _ int) int {
		if evaluated.Add(1) == 10 {
			cancel()
		}
		return i
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	if completed == len(items) {
		t.Fatal("cancellation did not stop the sweep")
	}
	if completed == 0 {
		t.Fatal("no items completed before cancellation")
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		calls := 0
		_, done, err := Map(ctx, workers, []int{1, 2, 3}, func(_ context.Context, i int, _ int) int {
			calls++
			return i
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		for i, d := range done {
			if d {
				t.Fatalf("workers=%d: item %d ran after pre-cancelled ctx", workers, i)
			}
		}
		_ = calls
	}
}

func TestMapEmpty(t *testing.T) {
	got, done, err := Map(context.Background(), 4, nil, func(_ context.Context, i int, _ int) int { return i })
	if err != nil || len(got) != 0 || len(done) != 0 {
		t.Fatalf("empty sweep: got %v, done %v, err %v", got, done, err)
	}
}

func TestMapWorkerSpans(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()

	ctx, root := obs.Start(context.Background(), "test.sweep")
	items := make([]int, 32)
	_, _, err := Map(ctx, 4, items, func(wctx context.Context, i int, _ int) int {
		_, sp := obs.Start(wctx, "test.eval")
		sp.End()
		return i
	})
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	workers := obs.SpansNamed("sweep.worker")
	if len(workers) == 0 || len(workers) > 4 {
		t.Fatalf("worker spans = %d, want 1..4", len(workers))
	}
	workerIDs := map[uint64]bool{}
	for _, w := range workers {
		if w.Parent != root.ID {
			t.Fatalf("worker span parent = %d, want root %d", w.Parent, root.ID)
		}
		workerIDs[w.ID] = true
	}
	evals := obs.SpansNamed("test.eval")
	if len(evals) != len(items) {
		t.Fatalf("eval spans = %d, want %d", len(evals), len(items))
	}
	for _, e := range evals {
		if !workerIDs[e.Parent] {
			t.Fatalf("eval span parented to %d, not a worker span", e.Parent)
		}
	}
}

// TestMapHammer drives many concurrent sweeps with tracing and metrics
// enabled; it exists to run under -race (the Makefile check gate).
func TestMapHammer(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()
	c := obs.NewCounter("sweep.test.hammer")

	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := obs.Start(context.Background(), "hammer.sweep")
			items := make([]int, 50)
			_, _, _ = Map(ctx, 4, items, func(wctx context.Context, i int, _ int) int {
				_, sp := obs.Start(wctx, "hammer.eval")
				c.Add(1)
				sp.End()
				return i
			})
			root.End()
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*50 {
		t.Fatalf("counter = %d, want %d", got, 8*50)
	}
}
