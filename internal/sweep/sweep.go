// Package sweep is the bounded parallel-evaluation engine behind the
// exploration studies: ExploreSpace's tile-space sweeps, the bench
// runner's per-figure variant sweeps, and autotune's bootstrap phase all
// fan their independent evaluations out through Map.
//
// The engine makes three guarantees the callers rely on:
//
//   - Order: results are returned indexed like the input, so a parallel
//     sweep is byte-identical to a sequential one (the evaluations
//     themselves must be pure, which the pipeline's compile/simulate
//     path is — it reads shared kernels and GPU descriptions but never
//     mutates them).
//   - Bounded concurrency: at most `workers` evaluations run at once
//     (default GOMAXPROCS); workers pull indices from a shared atomic
//     cursor, so there is no per-item goroutine explosion.
//   - Cancellation: the context is polled before every dispatch. A
//     cancelled sweep stops handing out new items, lets in-flight
//     evaluations finish, and reports which items completed — callers
//     return partial results instead of sweeping the rest of a 15^d
//     space.
//
// Observability: with internal/obs enabled, each worker goroutine runs
// under a "sweep.worker" child span of the caller's span, and every
// evaluation receives the worker's context, so compile/simulate spans
// stay hierarchical (caller → worker → evaluation) instead of all
// parenting to the sweep root. The workers=1 path runs in the calling
// goroutine with the caller's context unchanged — it is exactly the
// legacy sequential loop.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Map evaluates fn over every item with at most workers concurrent
// evaluations and returns one result per item, in input order.
//
// workers <= 0 uses runtime.GOMAXPROCS(0); workers == 1 runs in the
// calling goroutine (no spawned workers, caller's context passed
// through). done[i] reports whether item i was evaluated; it is false
// only when the context was cancelled before the item was dispatched.
// err is ctx.Err() when the sweep was cut short, nil otherwise.
//
// fn must be safe for concurrent invocation; each invocation receives
// the worker's derived context for span parenting and cancellation.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) R) (results []R, done []bool, err error) {
	n := len(items)
	results = make([]R, n)
	done = make([]bool, n)
	if n == 0 {
		return results, done, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return results, done, err
			}
			results[i] = fn(ctx, i, item)
			done[i] = true
		}
		return results, done, ctx.Err()
	}

	// Workers claim indices from a shared cursor. Each writes only its
	// own results[i]/done[i] slots; the WaitGroup join publishes them to
	// the caller.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wctx, wsp := obs.Start(ctx, "sweep.worker")
			wsp.SetInt("worker", int64(id))
			evaluated := 0
			defer func() {
				wsp.SetInt("items", int64(evaluated))
				wsp.End()
			}()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				results[i] = fn(wctx, i, items[i])
				done[i] = true
				evaluated++
			}
		}(w)
	}
	wg.Wait()
	return results, done, ctx.Err()
}

// Workers resolves a configured worker count: n when positive, else
// GOMAXPROCS. Exposed so callers can report the effective parallelism.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
