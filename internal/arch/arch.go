// Package arch describes the GPU platforms of the paper's testbed
// (Table I and Table III): the NVIDIA GA100 (Ampere data-center part) and
// the Jetson AGX Xavier (embedded Volta). Each description carries the
// resource limits EATSS constrains against, the throughput parameters the
// simulator times against, and the power-model coefficients used to
// reproduce the paper's energy measurements.
package arch

// GPU is a machine description.
type GPU struct {
	Name string

	// --- execution resources (Table I / Table III) ---

	SMCount         int64 // streaming multiprocessors
	ThreadsPerBlock int64 // T_P_B
	ThreadsPerWarp  int64 // T_P_W
	RegsPerSM       int64 // R_P_S
	RegsPerBlock    int64 // R_P_B
	RegsPerThread   int64 // R_P_T
	MaxBlocksPerSM  int64
	MaxWarpsPerSM   int64

	// --- memory hierarchy ---

	L1SharedBytes     int64 // combined L1 + shared memory per SM (the split is configurable)
	SharedPerBlock    int64 // shared memory limit per thread block
	SharedPerSM       int64 // shared memory limit per SM
	L2Bytes           int64
	GlobalBytes       int64
	SectorBytes       int64 // L2 sector granularity (32B on NVIDIA)
	CacheLineBytes    int64
	BypassL2ForShared bool // GA100 loads global->shared without polluting L2 (Sec. IV-H)

	// --- throughput ---

	BaseClockMHz   float64
	MaxClockMHz    float64
	MinClockMHz    float64
	FP32LanesPerSM int64   // FP32 FMA lanes per SM
	FP64Ratio      float64 // FP64 throughput as a fraction of FP32
	DRAMBandwidth  float64 // bytes/s at base clock
	L2Bandwidth    float64 // bytes/s aggregate
	SharedBwPerSM  float64 // bytes/s per SM
	LaunchOverhead float64 // seconds per kernel launch

	// --- power model (constant + static + dynamic, Fig. 1) ---

	TDPWatts      float64
	ConstantWatts float64 // board/host overhead, always present
	StaticWatts   float64 // leakage at operating temperature
	// PowerRampTauSec is the thermal/boost ramp time constant of the
	// *measured* average power: sampling a short kernel (the paper reads
	// nvidia-smi / tegrastats every 10 ms across 100 runs) sees the
	// device still ramping, so short executions report lower average
	// power than the steady state (Fig. 1's small-size regime).
	PowerRampTauSec float64
	// Dynamic coefficients: watts at 100% utilization of each resource.
	DynSMWatts         float64 // all SMs busy at base clock
	DynL2WattsPerGBs   float64 // per GB/s of L2 sector traffic
	DynDRAMWattsPerGBs float64 // per GB/s of DRAM traffic
	DynSharedWatts     float64 // all shared-memory banks busy
	// DynLiveWatts is the ceiling of the data-liveness component: the
	// power spent keeping thread-private data resident in SM-local
	// storage between that thread's reuses. Long intra-thread reuse
	// distances (large serial-loop tiles) drive this term up — the
	// wasted-energy mechanism of [23] that EATSS's objective targets.
	DynLiveWatts float64
}

// PeakFlops returns the peak FLOP/s at the given clock (MHz) for the
// precision factor (1 = FP32, 2 = FP64).
func (g *GPU) PeakFlops(clockMHz float64, fpFactor int64) float64 {
	fp32 := float64(g.SMCount*g.FP32LanesPerSM*2) * clockMHz * 1e6
	if fpFactor >= 2 {
		return fp32 * g.FP64Ratio
	}
	return fp32
}

// WarpsPerBlock returns how many warps a block of the given size occupies.
func (g *GPU) WarpsPerBlock(threads int64) int64 {
	return (threads + g.ThreadsPerWarp - 1) / g.ThreadsPerWarp
}

// GA100 returns the NVIDIA GA100 description used in the paper
// (A100-40GB: 108 SMs, 192 KB L1+shared per SM, 40 MB L2, CUDA 11.4,
// 250 W TDP, 9.7 TFLOP/s peak FP64 without tensor cores).
func GA100() *GPU {
	return &GPU{
		Name:            "GA100",
		SMCount:         108,
		ThreadsPerBlock: 1024,
		ThreadsPerWarp:  32,
		RegsPerSM:       64 * 1024,
		RegsPerBlock:    64 * 1024,
		RegsPerThread:   255,
		MaxBlocksPerSM:  32,
		MaxWarpsPerSM:   64,

		L1SharedBytes:     192 * 1024,
		SharedPerBlock:    48 * 1024,
		SharedPerSM:       164 * 1024,
		L2Bytes:           40 * 1024 * 1024,
		GlobalBytes:       40 << 30,
		SectorBytes:       32,
		CacheLineBytes:    128,
		BypassL2ForShared: true,

		BaseClockMHz:   1095,
		MaxClockMHz:    1410,
		MinClockMHz:    555,
		FP32LanesPerSM: 64,
		FP64Ratio:      0.5,
		DRAMBandwidth:  1555e9,
		L2Bandwidth:    4500e9,
		SharedBwPerSM:  256e9,
		LaunchOverhead: 4e-6,

		TDPWatts:           250,
		PowerRampTauSec:    0.030,
		ConstantWatts:      38,
		StaticWatts:        17,
		DynSMWatts:         100,
		DynL2WattsPerGBs:   0.015,
		DynDRAMWattsPerGBs: 0.035,
		DynSharedWatts:     16,
		DynLiveWatts:       85,
	}
}

// Xavier returns the Jetson AGX Xavier description used in the paper
// (8-SM embedded Volta, 128 KB L1+shared per SM, 512 KB L2, CUDA 10.2,
// 30 W module power, ~44 GFLOP/s measured FP64 via cuBLAS).
func Xavier() *GPU {
	return &GPU{
		Name:            "Xavier",
		SMCount:         8,
		ThreadsPerBlock: 1024,
		ThreadsPerWarp:  32,
		RegsPerSM:       64 * 1024,
		RegsPerBlock:    64 * 1024,
		RegsPerThread:   255,
		MaxBlocksPerSM:  32,
		MaxWarpsPerSM:   64,

		L1SharedBytes:     128 * 1024,
		SharedPerBlock:    48 * 1024,
		SharedPerSM:       96 * 1024,
		L2Bytes:           512 * 1024,
		GlobalBytes:       32 << 30,
		SectorBytes:       32,
		CacheLineBytes:    128,
		BypassL2ForShared: false,

		BaseClockMHz:   854,
		MaxClockMHz:    1377,
		MinClockMHz:    318,
		FP32LanesPerSM: 64,
		// Embedded Volta has no dedicated FP64 pipe worth of
		// throughput: cuBLAS measures ~44 GFLOP/s (Table III), i.e.
		// roughly 1/32 of FP32.
		FP64Ratio:      1.0 / 32.0,
		DRAMBandwidth:  137e9,
		L2Bandwidth:    400e9,
		SharedBwPerSM:  128e9,
		LaunchOverhead: 8e-6,

		TDPWatts:           30,
		PowerRampTauSec:    0.060,
		ConstantWatts:      9,
		StaticWatts:        3,
		DynSMWatts:         11,
		DynL2WattsPerGBs:   0.008,
		DynDRAMWattsPerGBs: 0.015,
		DynSharedWatts:     2,
		DynLiveWatts:       7,
	}
}

// ByName returns the named GPU description ("ga100", "xavier" or
// "v100").
func ByName(name string) (*GPU, bool) {
	switch name {
	case "ga100", "GA100", "a100", "A100":
		return GA100(), true
	case "xavier", "Xavier":
		return Xavier(), true
	case "v100", "V100":
		return V100(), true
	}
	return nil, false
}
