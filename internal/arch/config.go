package arch

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file makes machine descriptions configuration-driven: a GPU can be
// serialized to JSON, edited, and loaded back, so the pipeline can target
// hardware beyond the paper's two boards without code changes
// (cmd/eatss -gpu-file).

// MarshalJSONIndent serializes the description for editing.
func (g *GPU) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// FromJSON parses a machine description and validates it.
func FromJSON(data []byte) (*GPU, error) {
	var g GPU
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("arch: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadFile reads a machine description from a JSON file.
func LoadFile(path string) (*GPU, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("arch: %w", err)
	}
	return FromJSON(data)
}

// Validate checks that a description is usable by the model generator and
// the simulator.
func (g *GPU) Validate() error {
	check := func(ok bool, what string) error {
		if !ok {
			return fmt.Errorf("arch: %s: invalid %s", g.Name, what)
		}
		return nil
	}
	if g.Name == "" {
		return fmt.Errorf("arch: machine description has no name")
	}
	for _, c := range []struct {
		ok   bool
		what string
	}{
		{g.SMCount > 0, "SM count"},
		{g.ThreadsPerBlock > 0, "threads per block"},
		{g.ThreadsPerWarp > 0, "threads per warp"},
		{g.RegsPerSM > 0, "registers per SM"},
		{g.RegsPerBlock > 0, "registers per block"},
		{g.RegsPerThread > 0, "registers per thread"},
		{g.MaxBlocksPerSM > 0, "max blocks per SM"},
		{g.MaxWarpsPerSM > 0, "max warps per SM"},
		{g.L1SharedBytes > 0, "L1+shared pool"},
		{g.SharedPerBlock > 0, "shared per block"},
		{g.SharedPerSM > 0, "shared per SM"},
		{g.L2Bytes > 0, "L2 size"},
		{g.SectorBytes > 0, "sector size"},
		{g.BaseClockMHz > 0 && g.MaxClockMHz >= g.BaseClockMHz, "clock range"},
		{g.MinClockMHz > 0 && g.MinClockMHz <= g.BaseClockMHz, "min clock"},
		{g.FP32LanesPerSM > 0, "FP32 lanes"},
		{g.FP64Ratio > 0 && g.FP64Ratio <= 1, "FP64 ratio"},
		{g.DRAMBandwidth > 0, "DRAM bandwidth"},
		{g.L2Bandwidth > 0, "L2 bandwidth"},
		{g.SharedBwPerSM > 0, "shared bandwidth"},
		{g.TDPWatts > 0, "TDP"},
		{g.ConstantWatts >= 0 && g.StaticWatts >= 0, "idle power"},
		{g.ConstantWatts+g.StaticWatts < g.TDPWatts, "idle below TDP"},
		{g.SharedPerBlock <= g.SharedPerSM, "shared per block <= per SM"},
		{g.SharedPerSM <= g.L1SharedBytes, "shared per SM <= pool"},
	} {
		if err := check(c.ok, c.what); err != nil {
			return err
		}
	}
	return nil
}

// V100 returns an NVIDIA V100-class description (Volta data-center part) —
// a third platform for generality studies beyond the paper's testbed.
func V100() *GPU {
	return &GPU{
		Name:            "V100",
		SMCount:         80,
		ThreadsPerBlock: 1024,
		ThreadsPerWarp:  32,
		RegsPerSM:       64 * 1024,
		RegsPerBlock:    64 * 1024,
		RegsPerThread:   255,
		MaxBlocksPerSM:  32,
		MaxWarpsPerSM:   64,

		L1SharedBytes:     128 * 1024,
		SharedPerBlock:    48 * 1024,
		SharedPerSM:       96 * 1024,
		L2Bytes:           6 * 1024 * 1024,
		GlobalBytes:       16 << 30,
		SectorBytes:       32,
		CacheLineBytes:    128,
		BypassL2ForShared: false,

		BaseClockMHz:    1245,
		MaxClockMHz:     1380,
		MinClockMHz:     405,
		FP32LanesPerSM:  64,
		FP64Ratio:       0.5,
		DRAMBandwidth:   900e9,
		L2Bandwidth:     2500e9,
		SharedBwPerSM:   220e9,
		LaunchOverhead:  5e-6,
		PowerRampTauSec: 0.030,

		TDPWatts:           300,
		ConstantWatts:      42,
		StaticWatts:        20,
		DynSMWatts:         120,
		DynL2WattsPerGBs:   0.018,
		DynDRAMWattsPerGBs: 0.045,
		DynSharedWatts:     18,
		DynLiveWatts:       90,
	}
}
