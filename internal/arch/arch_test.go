package arch

import "testing"

func TestGA100PeakFlops(t *testing.T) {
	g := GA100()
	// Non-tensor peak FP64 at max clock should be ~9.7 TFLOP/s
	// (Table III).
	peak := g.PeakFlops(g.MaxClockMHz, 2)
	if peak < 9.0e12 || peak > 10.5e12 {
		t.Fatalf("GA100 FP64 peak = %.3g, want ~9.7e12", peak)
	}
	// FP32 is twice that.
	if got := g.PeakFlops(g.MaxClockMHz, 1); got < 1.9*peak || got > 2.1*peak {
		t.Fatalf("FP32/FP64 ratio wrong: %.3g vs %.3g", got, peak)
	}
}

func TestXavierPeakFlops(t *testing.T) {
	g := Xavier()
	// Measured cuBLAS FP64 is ~44 GFLOP/s; architectural peak should be
	// of the same order (tens of GFLOP/s).
	peak := g.PeakFlops(g.MaxClockMHz, 2)
	if peak < 30e9 || peak > 120e9 {
		t.Fatalf("Xavier FP64 peak = %.3g, want tens of GFLOP/s", peak)
	}
}

func TestTableIIIResources(t *testing.T) {
	g := GA100()
	if g.SMCount != 108 {
		t.Errorf("GA100 SMs = %d, want 108", g.SMCount)
	}
	if g.L1SharedBytes != 192*1024 {
		t.Errorf("GA100 L1+shared = %d, want 192K", g.L1SharedBytes)
	}
	if g.L2Bytes != 40*1024*1024 {
		t.Errorf("GA100 L2 = %d, want 40M", g.L2Bytes)
	}
	if g.TDPWatts != 250 {
		t.Errorf("GA100 TDP = %g, want 250", g.TDPWatts)
	}

	x := Xavier()
	if x.SMCount != 8 {
		t.Errorf("Xavier SMs = %d, want 8", x.SMCount)
	}
	if x.L2Bytes != 512*1024 {
		t.Errorf("Xavier L2 = %d, want 512K", x.L2Bytes)
	}
	if x.TDPWatts != 30 {
		t.Errorf("Xavier TDP = %g, want 30", x.TDPWatts)
	}
}

func TestPowerBudgetConsistent(t *testing.T) {
	for _, g := range []*GPU{GA100(), Xavier()} {
		idle := g.ConstantWatts + g.StaticWatts
		if idle >= g.TDPWatts {
			t.Errorf("%s: idle power %g >= TDP %g", g.Name, idle, g.TDPWatts)
		}
		// Full dynamic + idle should be able to reach (roughly) TDP —
		// that is what DVFS throttles against.
		full := idle + g.DynSMWatts + g.DynSharedWatts +
			g.DynDRAMWattsPerGBs*g.DRAMBandwidth/1e9 +
			g.DynL2WattsPerGBs*g.L2Bandwidth/1e9
		if full < g.TDPWatts*0.8 {
			t.Errorf("%s: max modeled power %g too far below TDP %g", g.Name, full, g.TDPWatts)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"ga100", "A100", "xavier"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("h100"); ok {
		t.Error("ByName(h100) should fail")
	}
}

func TestWarpsPerBlock(t *testing.T) {
	g := GA100()
	if got := g.WarpsPerBlock(1024); got != 32 {
		t.Errorf("WarpsPerBlock(1024) = %d, want 32", got)
	}
	if got := g.WarpsPerBlock(33); got != 2 {
		t.Errorf("WarpsPerBlock(33) = %d, want 2", got)
	}
}

func TestValidatePresets(t *testing.T) {
	for _, g := range []*GPU{GA100(), Xavier(), V100()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, g := range []*GPU{GA100(), Xavier(), V100()} {
		data, err := g.MarshalJSONIndent()
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if *back != *g {
			t.Errorf("%s: JSON round trip changed the description", g.Name)
		}
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{"Name":"broken","SMCount":0}`)); err == nil {
		t.Fatal("invalid description accepted")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestV100InByName(t *testing.T) {
	if _, ok := ByName("v100"); !ok {
		t.Fatal("v100 preset missing from ByName")
	}
}
