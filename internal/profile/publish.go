package profile

import "sync/atomic"

// The live-introspection server (internal/obs/serve) exposes the most
// recently computed profile and sweep surface on /profile. Publication
// is lock-free and allocation-free on the hot path: a single pointer
// swap per publish, nothing at all when no one publishes.
var (
	latestProfile atomic.Pointer[Profile]
	latestSurface atomic.Pointer[Surface]
)

// Publish makes p the profile served by the /profile endpoint.
func Publish(p *Profile) { latestProfile.Store(p) }

// Latest returns the most recently published profile, or nil.
func Latest() *Profile { return latestProfile.Load() }

// PublishSurface makes s the sweep surface served by /profile?view=surface.
func PublishSurface(s *Surface) { latestSurface.Store(s) }

// LatestSurface returns the most recently published surface, or nil.
func LatestSurface() *Surface { return latestSurface.Load() }
