package profile_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	eatss "repro"
	"repro/internal/profile"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func runProfiled(t *testing.T, kernel string, g *eatss.GPU, tiles map[string]int64, useShared bool) (*eatss.Result, *profile.Profile) {
	t.Helper()
	k := eatss.MustKernel(kernel)
	if tiles == nil {
		tiles = eatss.DefaultTiles(k)
	}
	res, err := eatss.Run(k, g, tiles, eatss.RunConfig{UseShared: useShared})
	if err != nil {
		t.Fatalf("run %s: %v", kernel, err)
	}
	p, err := eatss.ProfileOf(&res, tiles)
	if err != nil {
		t.Fatalf("profile %s: %v", kernel, err)
	}
	return &res, p
}

// TestConservationAllKernels is the attribution layer's core invariant:
// for every catalog kernel on both of the paper's architectures (and
// with staging both on and off), the profile's per-level components sum
// to the simulator's EnergyJ within 1e-9 relative error, per nest and
// in total, with per-array shares reproducing each level — attribution
// never invents or loses energy.
func TestConservationAllKernels(t *testing.T) {
	arches := []*eatss.GPU{eatss.GA100(), eatss.Xavier()}
	for _, g := range arches {
		for _, name := range eatss.Kernels() {
			for _, useShared := range []bool{false, true} {
				res, p := runProfiled(t, name, g, nil, useShared)
				if err := p.Check(1e-9); err != nil {
					t.Errorf("%s on %s (shared=%t): %v", name, g.Name, useShared, err)
				}
				if p.EnergyJ != res.EnergyJ {
					t.Errorf("%s on %s: profile EnergyJ %g != result %g", name, g.Name, p.EnergyJ, res.EnergyJ)
				}
				if p.TimeSec != res.TimeSec || p.Ramp != res.Ramp {
					t.Errorf("%s on %s: profile time/ramp drifted from result", name, g.Name)
				}
			}
		}
	}
}

// TestTrafficMatchesResult pins the per-level byte totals against the
// simulator's own aggregates.
func TestTrafficMatchesResult(t *testing.T) {
	res, p := runProfiled(t, "gemm", eatss.GA100(), nil, true)
	if p.Bytes.DRAM != res.DRAMBytes {
		t.Fatalf("profile DRAM bytes %d != result %d", p.Bytes.DRAM, res.DRAMBytes)
	}
	var arr profile.LevelBytes
	for _, np := range p.Nests {
		for _, ap := range np.Arrays {
			arr = arr.Add(ap.Bytes)
		}
	}
	if arr.DRAM != p.Bytes.DRAM {
		t.Fatalf("per-array DRAM bytes %d != nest total %d", arr.DRAM, p.Bytes.DRAM)
	}
	if arr.L2 != p.Bytes.L2 {
		t.Fatalf("per-array L2 bytes %d != nest total %d", arr.L2, p.Bytes.L2)
	}
	if arr.Shared != p.Bytes.Shared {
		t.Fatalf("per-array shared bytes %d != nest total %d", arr.Shared, p.Bytes.Shared)
	}
}

// TestGoldenGemmReport pins the rendered attribution report for gemm on
// the GA100 under PPCG default tiles. Values render at 4 significant
// digits — below cross-platform float divergence — so the report is
// deterministic.
func TestGoldenGemmReport(t *testing.T) {
	_, p := runProfiled(t, "gemm", eatss.GA100(), nil, true)
	rendered := p.Render()

	path := filepath.Join("testdata", "gemm_ga100_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/profile -run Golden -update` to create it)", err)
	}
	if rendered != string(want) {
		t.Fatalf("attribution report drifted from golden.\n--- got ---\n%s--- want ---\n%s", rendered, want)
	}
}

// TestDiffBestVsDefault runs the paper's gemm protocol on the GA100 and
// diffs the chosen tiles against the PPCG 32^3 default: the report must
// name a winner and a dominant component, and the per-level deltas must
// sum to the total energy gap.
func TestDiffBestVsDefault(t *testing.T) {
	g := eatss.GA100()
	k := eatss.MustKernel("gemm")
	best, err := eatss.SelectBest(k, g, eatss.FP64, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pBest := runProfiled(t, "gemm", g, best.Chosen.Selection.Tiles, best.Chosen.SharedFrac > 0)
	_, pDef := runProfiled(t, "gemm", g, eatss.DefaultTiles(k), false)

	d := eatss.ProfileDiff(pDef, pBest)
	if d.Dominant == "" {
		t.Fatal("diff names no dominant component")
	}
	var deltaSum float64
	for _, ld := range d.Levels {
		deltaSum += ld.Delta
	}
	if diff := deltaSum - d.DeltaJ; diff > 1e-9*abs(d.DeltaJ)+1e-15 || -diff > 1e-9*abs(d.DeltaJ)+1e-15 {
		t.Fatalf("level deltas sum to %g, total delta is %g", deltaSum, d.DeltaJ)
	}
	rendered := d.Render()
	if !strings.Contains(rendered, "dominant") || !strings.Contains(rendered, d.Dominant) {
		t.Fatalf("diff report does not name the dominant component:\n%s", rendered)
	}
	if d.Winner != "A" && d.Winner != "B" && d.Winner != "tie" {
		t.Fatalf("bad winner %q", d.Winner)
	}
	t.Logf("gemm best-vs-default dominant component: %s (%.0f%% of movement)\n%s",
		d.Dominant, 100*d.DominantShare, rendered)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestSurfaceExport sweeps a tiny gemm space and checks the exported
// surface: dims, slice geometry, CSV shape, and that every evaluated
// point lands in a slice cell.
func TestSurfaceExport(t *testing.T) {
	g := eatss.GA100()
	k := eatss.MustKernel("gemm")
	space := eatss.Space(k, []int64{16, 32})
	pts, stats := eatss.ExploreSpace(k, g, space, eatss.RunConfig{UseShared: true})
	if stats.Evaluated == 0 {
		t.Fatal("no points evaluated")
	}
	s := eatss.NewSweepSurface(k.Name, g.Name, pts)
	if len(s.Dims) != 3 {
		t.Fatalf("gemm surface dims = %v, want 3", s.Dims)
	}
	if want := 3; len(s.Slices) != want { // C(3,2) pairs
		t.Fatalf("len(slices) = %d, want %d", len(s.Slices), want)
	}
	for _, sl := range s.Slices {
		filled := 0
		for _, row := range sl.EnergyJ {
			for _, v := range row {
				if v > 0 {
					filled++
				}
			}
		}
		if filled == 0 {
			t.Fatalf("slice %s x %s has no filled cells", sl.X, sl.Y)
		}
	}

	var csvBuf, jsonBuf strings.Builder
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(pts)+1 {
		t.Fatalf("CSV has %d lines, want %d points + header", len(lines), len(pts))
	}
	if lines[0] != "i,j,k,time_sec,energy_j,gflops,ppw" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), "\"slices\"") {
		t.Fatal("JSON surface lacks slices")
	}
}

// TestPublishLatest exercises the lock-free publication handoff the
// /profile endpoint reads.
func TestPublishLatest(t *testing.T) {
	_, p := runProfiled(t, "gemm", eatss.GA100(), nil, false)
	profile.Publish(p)
	if got := profile.Latest(); got != p {
		t.Fatal("Latest did not return the published profile")
	}
	s := eatss.NewSweepSurface("gemm", "GA100", nil)
	profile.PublishSurface(s)
	if got := profile.LatestSurface(); got != s {
		t.Fatal("LatestSurface did not return the published surface")
	}
}
