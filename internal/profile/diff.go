package profile

import (
	"fmt"
	"strings"
)

// LevelDelta is one attribution level's contribution to the energy gap
// between two profiles.
type LevelDelta struct {
	Level string `json:"level"`
	A     float64 `json:"a_j"`
	B     float64 `json:"b_j"`
	// Delta is B - A in Joules: negative means B spends less at this
	// level.
	Delta float64 `json:"delta_j"`
}

// DiffReport explains why one tile configuration beats another: the
// per-level energy deltas between two profiles of the same kernel, with
// the dominant contributor named.
type DiffReport struct {
	Kernel string `json:"kernel"`
	GPU    string `json:"gpu"`
	// LabelA/LabelB identify the two configurations (tile strings when
	// the profiles carry them, else "A"/"B").
	LabelA string `json:"label_a"`
	LabelB string `json:"label_b"`

	EnergyA float64 `json:"energy_a_j"`
	EnergyB float64 `json:"energy_b_j"`
	// DeltaJ is EnergyB - EnergyA; negative means B is cheaper.
	DeltaJ  float64 `json:"delta_j"`
	TimeA   float64 `json:"time_a_sec"`
	TimeB   float64 `json:"time_b_sec"`
	Winner  string  `json:"winner"` // "A", "B" or "tie"
	Levels  []LevelDelta `json:"levels"`
	// Dominant is the level with the largest absolute delta — the
	// component that decides the comparison — and DominantShare its
	// fraction of the total absolute per-level movement.
	Dominant      string  `json:"dominant"`
	DominantShare float64 `json:"dominant_share"`
}

// Diff compares two profiles of the same kernel/arch and attributes the
// energy gap to the levels that moved.
func Diff(a, b *Profile) *DiffReport {
	d := &DiffReport{
		Kernel:  a.Kernel,
		GPU:     a.GPU,
		LabelA:  labelOf(a, "A"),
		LabelB:  labelOf(b, "B"),
		EnergyA: a.EnergyJ,
		EnergyB: b.EnergyJ,
		DeltaJ:  b.EnergyJ - a.EnergyJ,
		TimeA:   a.TimeSec,
		TimeB:   b.TimeSec,
	}
	switch {
	case d.DeltaJ < 0:
		d.Winner = "B"
	case d.DeltaJ > 0:
		d.Winner = "A"
	default:
		d.Winner = "tie"
	}
	var absSum float64
	var domAbs float64
	for _, l := range Levels {
		ld := LevelDelta{Level: l, A: a.Energy.Level(l), B: b.Energy.Level(l)}
		ld.Delta = ld.B - ld.A
		d.Levels = append(d.Levels, ld)
		abs := ld.Delta
		if abs < 0 {
			abs = -abs
		}
		absSum += abs
		if abs > domAbs {
			domAbs = abs
			d.Dominant = l
		}
	}
	if d.Dominant == "" {
		d.Dominant = Levels[0]
	}
	if absSum > 0 {
		d.DominantShare = domAbs / absSum
	}
	return d
}

func labelOf(p *Profile, fallback string) string {
	if p.Label != "" {
		return p.Label
	}
	if len(p.Tiles) > 0 {
		return sortedTileNames(p.Tiles)
	}
	return fallback
}

// Render writes the "why A beats B" table. Deterministic for fixed
// inputs (4 significant digits).
func (d *DiffReport) Render() string {
	var b strings.Builder
	winner, loser := d.LabelA, d.LabelB
	saveJ := -d.DeltaJ // energy A saves relative to B
	if d.Winner == "B" {
		winner, loser = d.LabelB, d.LabelA
		saveJ = d.DeltaJ
	}
	fmt.Fprintf(&b, "profile diff: %s on %s\n", d.Kernel, d.GPU)
	fmt.Fprintf(&b, "  A = %s: %s, %s\n", d.LabelA, fmtJ(d.EnergyA), fmtSec(d.TimeA))
	fmt.Fprintf(&b, "  B = %s: %s, %s\n", d.LabelB, fmtJ(d.EnergyB), fmtSec(d.TimeB))
	if d.Winner == "tie" {
		b.WriteString("  verdict: tie — identical energy\n")
	} else {
		pct := 0.0
		if base := max64(d.EnergyA, d.EnergyB); base > 0 {
			pct = 100 * -saveJ / base
		}
		fmt.Fprintf(&b, "  verdict: %s beats %s by %s (%.1f%%), driven by %s (%.0f%% of the movement)\n",
			winner, loser, fmtJ(-saveJ), pct, d.Dominant, 100*d.DominantShare)
	}
	b.WriteString("  level     A            B            delta(B-A)\n")
	for _, ld := range d.Levels {
		marker := ""
		if ld.Level == d.Dominant {
			marker = "  <-- dominant"
		}
		fmt.Fprintf(&b, "  %-8s %-12s %-12s %-12s%s\n",
			ld.Level, fmtJ(ld.A), fmtJ(ld.B), fmtJ(ld.Delta), marker)
	}
	return b.String()
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
