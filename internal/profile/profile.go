// Package profile is the energy/traffic attribution layer: it decomposes
// a simulated run's opaque Result.EnergyJ into per-nest × per-array ×
// per-memory-level components, so a tile choice's win (or loss) can be
// explained — DRAM traffic? L2 pressure? static power from a short,
// low-occupancy launch? This is the per-level decomposition the Symbolic
// Polyhedral Energy Analysis line of work uses, and the per-kernel static
// attribution FlipFlop shows is the lever that makes energy optimization
// actionable.
//
// The layer is conservation-checked: a Profile's components sum to the
// simulator's EnergyJ (per nest and in total) within float rounding —
// attribution never invents or loses energy. internal/gpusim records the
// per-array traffic split (Traffic.Arrays) and the measurement-ramp
// factor (Result.Ramp) precisely so this decomposition can run post-hoc
// on any Result without re-simulating.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gpusim"
	"repro/internal/power"
)

// Components holds one energy value (Joules) per attribution level.
//
// The six levels mirror the power model's terms: DRAM and L2 are the
// respective interconnect traffic terms, Shared is bank activity, L1 is
// the SM-local liveness term (the residency pressure of thread-private
// data — the paper's energy lever), Compute is the SM dynamic term, and
// Static folds the constant board power and leakage floor together.
type Components struct {
	DRAM    float64 `json:"dram"`
	L2      float64 `json:"l2"`
	L1      float64 `json:"l1"`
	Shared  float64 `json:"shared"`
	Compute float64 `json:"compute"`
	Static  float64 `json:"static"`
}

// Levels is the fixed rendering/iteration order of the attribution
// levels.
var Levels = []string{"dram", "l2", "l1", "shared", "compute", "static"}

// Level returns the named component (one of Levels).
func (c Components) Level(name string) float64 {
	switch name {
	case "dram":
		return c.DRAM
	case "l2":
		return c.L2
	case "l1":
		return c.L1
	case "shared":
		return c.Shared
	case "compute":
		return c.Compute
	case "static":
		return c.Static
	}
	return 0
}

// Total returns the summed energy across all levels.
func (c Components) Total() float64 {
	return c.DRAM + c.L2 + c.L1 + c.Shared + c.Compute + c.Static
}

// Add returns the component-wise sum.
func (c Components) Add(o Components) Components {
	return Components{
		DRAM: c.DRAM + o.DRAM, L2: c.L2 + o.L2, L1: c.L1 + o.L1,
		Shared: c.Shared + o.Shared, Compute: c.Compute + o.Compute, Static: c.Static + o.Static,
	}
}

// Sub returns the component-wise difference c - o.
func (c Components) Sub(o Components) Components {
	return Components{
		DRAM: c.DRAM - o.DRAM, L2: c.L2 - o.L2, L1: c.L1 - o.L1,
		Shared: c.Shared - o.Shared, Compute: c.Compute - o.Compute, Static: c.Static - o.Static,
	}
}

// Dominant returns the level holding the largest component and its
// share of the total (0 share for an all-zero breakdown). Ties resolve
// to the first level in Levels order, so the answer is deterministic.
func (c Components) Dominant() (level string, share float64) {
	best, bestVal := "", 0.0
	for _, l := range Levels {
		if v := c.Level(l); best == "" || v > bestVal {
			best, bestVal = l, v
		}
	}
	if t := c.Total(); t != 0 {
		share = bestVal / t
	}
	return best, share
}

// LevelBytes is the traffic counterpart of Components: bytes moved at
// each memory level (whole nest, all launches). Compute and static have
// no traffic; L1 counts SM-local L1/LSU pipe volume, Staging the
// global→shared cooperative load volume (a subset of Shared's bank
// traffic already counted there).
type LevelBytes struct {
	DRAM    int64 `json:"dram"`
	L2      int64 `json:"l2"`
	L1      int64 `json:"l1"`
	Shared  int64 `json:"shared"`
	Staging int64 `json:"staging"`
}

// Add returns the component-wise sum.
func (b LevelBytes) Add(o LevelBytes) LevelBytes {
	return LevelBytes{
		DRAM: b.DRAM + o.DRAM, L2: b.L2 + o.L2, L1: b.L1 + o.L1,
		Shared: b.Shared + o.Shared, Staging: b.Staging + o.Staging,
	}
}

// ArrayProfile is one array's attributed share of a nest's energy and
// traffic. Energy shares are proportional to the array's fraction of
// the level's traffic (liveness bytes for the L1 term), so per level
// the array shares sum to the nest's level component exactly (modulo
// float rounding); Compute and Static are never array-attributed.
type ArrayProfile struct {
	Array string `json:"array"`
	// Class is the servicing class the mapping chose: "shared",
	// "register", "cached" or "spilled".
	Class  string     `json:"class"`
	Energy Components `json:"energy_j"`
	Bytes  LevelBytes `json:"bytes"`
}

// NestProfile attributes one nest's energy and traffic.
type NestProfile struct {
	Name     string  `json:"name"`
	Launches int64   `json:"launches"`
	TimeSec  float64 `json:"time_sec"`
	// EnergyJ is the simulator's observed energy for the nest; Energy
	// decomposes it (conservation-checked).
	EnergyJ float64        `json:"energy_j"`
	Energy  Components     `json:"energy"`
	Bytes   LevelBytes     `json:"bytes"`
	Arrays  []ArrayProfile `json:"arrays"`
}

// Profile is the structured attribution of one simulated run.
type Profile struct {
	Kernel string `json:"kernel"`
	GPU    string `json:"gpu"`
	// Label identifies the configuration being profiled in diffs (set
	// by the caller; defaults to the rendered tile map when Tiles is
	// set).
	Label string `json:"label,omitempty"`
	// Tiles is the tile configuration that produced this run, when the
	// caller knows it (FromResult cannot recover it from the Result).
	Tiles   map[string]int64 `json:"tiles,omitempty"`
	TimeSec float64          `json:"time_sec"`
	// EnergyJ is the simulator's total; Energy decomposes it.
	EnergyJ float64 `json:"energy_j"`
	// Ramp is the measurement-ramp factor the simulator applied to the
	// dynamic power components (short runs are observed below steady
	// state — the static-dominated regime of the paper's Fig. 1).
	Ramp   float64       `json:"ramp"`
	Energy Components    `json:"energy"`
	Bytes  LevelBytes    `json:"bytes"`
	Nests  []NestProfile `json:"nests"`
}

// FromResult decomposes a simulated Result into its attribution
// profile. It is a pure post-hoc computation — the Result already
// carries the per-nest power breakdowns, the ramp factor and the
// per-array traffic split.
func FromResult(res *gpusim.Result) (*Profile, error) {
	if res == nil {
		return nil, fmt.Errorf("profile: nil result")
	}
	p := &Profile{
		Kernel:  res.Kernel,
		GPU:     res.GPU,
		TimeSec: res.TimeSec,
		EnergyJ: res.EnergyJ,
		Ramp:    res.Ramp,
	}
	for i := range res.Nests {
		nr := &res.Nests[i]
		np := nestProfile(nr, res.Ramp)
		p.Energy = p.Energy.Add(np.Energy)
		p.Bytes = p.Bytes.Add(np.Bytes)
		p.Nests = append(p.Nests, np)
	}
	return p, nil
}

// levelEnergy maps the power model's per-component energies onto the
// attribution levels.
func levelEnergy(eb power.EnergyBreakdown) Components {
	return Components{
		DRAM:    eb.DynDRAM,
		L2:      eb.DynL2,
		L1:      eb.DynLive,
		Shared:  eb.DynShared,
		Compute: eb.DynSM,
		Static:  eb.Constant + eb.Static,
	}
}

func nestProfile(nr *gpusim.NestResult, ramp float64) NestProfile {
	tr := &nr.Traffic
	launches := nr.Launches
	np := NestProfile{
		Name:     nr.Name,
		Launches: launches,
		TimeSec:  nr.TimeSec,
		EnergyJ:  nr.EnergyJ,
		Energy:   levelEnergy(nr.Power.Energy(ramp, nr.TimeSec)),
		Bytes: LevelBytes{
			DRAM:    tr.DRAMBytes * launches,
			L2:      (tr.L2ReadBytes + tr.L2WriteBytes) * launches,
			L1:      tr.L1Bytes * launches,
			Shared:  tr.SharedBytes * launches,
			Staging: tr.StagingBytes * launches,
		},
	}

	// Per-level denominators for the array shares. The L1 (liveness)
	// term is driven by thread-private residency, so it splits over
	// LiveBytesPerThread rather than pipe traffic.
	var dramSum, l2Sum, sharedSum, liveSum int64
	for _, at := range tr.Arrays {
		dramSum += at.DRAMBytes
		l2Sum += at.L2ReadBytes + at.L2WriteBytes
		sharedSum += at.SharedBytes
		liveSum += at.LiveBytesPerThread
	}
	frac := func(part, whole int64) float64 {
		if whole <= 0 {
			return 0
		}
		return float64(part) / float64(whole)
	}
	for _, at := range tr.Arrays {
		ap := ArrayProfile{
			Array: at.Array,
			Class: at.Class,
			Energy: Components{
				DRAM:   np.Energy.DRAM * frac(at.DRAMBytes, dramSum),
				L2:     np.Energy.L2 * frac(at.L2ReadBytes+at.L2WriteBytes, l2Sum),
				L1:     np.Energy.L1 * frac(at.LiveBytesPerThread, liveSum),
				Shared: np.Energy.Shared * frac(at.SharedBytes, sharedSum),
			},
			Bytes: LevelBytes{
				DRAM:    at.DRAMBytes * launches,
				L2:      (at.L2ReadBytes + at.L2WriteBytes) * launches,
				L1:      at.L1Bytes * launches,
				Shared:  at.SharedBytes * launches,
				Staging: at.StagingBytes * launches,
			},
		}
		np.Arrays = append(np.Arrays, ap)
	}
	return np
}

// Check verifies the profile's invariants: no negative component
// anywhere, per-nest components summing to the nest's EnergyJ, the
// total summing to EnergyJ, and per-level array shares summing to the
// nest's level component wherever the level has traffic. tol is the
// relative tolerance (the tests use 1e-9).
func (p *Profile) Check(tol float64) error {
	within := func(got, want float64) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		scale := want
		if scale < 0 {
			scale = -scale
		}
		if scale < 1e-30 {
			scale = 1e-30
		}
		return diff <= tol*scale
	}
	checkNonNeg := func(where string, c Components) error {
		for _, l := range Levels {
			if c.Level(l) < 0 {
				return fmt.Errorf("profile: negative %s component %g in %s", l, c.Level(l), where)
			}
		}
		return nil
	}
	if err := checkNonNeg("total", p.Energy); err != nil {
		return err
	}
	if !within(p.Energy.Total(), p.EnergyJ) {
		return fmt.Errorf("profile: components sum to %.12g J, simulator reports %.12g J", p.Energy.Total(), p.EnergyJ)
	}
	var nestSum float64
	for i := range p.Nests {
		np := &p.Nests[i]
		nestSum += np.EnergyJ
		if err := checkNonNeg("nest "+np.Name, np.Energy); err != nil {
			return err
		}
		if !within(np.Energy.Total(), np.EnergyJ) {
			return fmt.Errorf("profile: nest %s components sum to %.12g J, simulator reports %.12g J",
				np.Name, np.Energy.Total(), np.EnergyJ)
		}
		var arr Components
		for _, ap := range np.Arrays {
			if err := checkNonNeg("array "+ap.Array, ap.Energy); err != nil {
				return err
			}
			arr = arr.Add(ap.Energy)
		}
		// Memory-level array shares must reproduce the nest component
		// whenever any array carried that level's traffic.
		for _, l := range []string{"dram", "l2", "l1", "shared"} {
			if arr.Level(l) == 0 && np.Energy.Level(l) > 0 {
				continue // level active but traffic attribution empty (e.g. liveness-free nest)
			}
			if !within(arr.Level(l), np.Energy.Level(l)) {
				return fmt.Errorf("profile: nest %s level %s: array shares sum to %.12g J, component is %.12g J",
					np.Name, l, arr.Level(l), np.Energy.Level(l))
			}
		}
	}
	if !within(nestSum, p.EnergyJ) {
		return fmt.Errorf("profile: nest energies sum to %.12g J, total is %.12g J", nestSum, p.EnergyJ)
	}
	return nil
}

// Dominant returns the profile's dominant energy level and its share.
func (p *Profile) Dominant() (string, float64) { return p.Energy.Dominant() }

// Render writes the attribution report as a fixed-width table. The
// output is deterministic for a fixed Result (values are rounded to 4
// significant digits, below any cross-platform float divergence), so it
// is golden-testable.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "energy attribution: %s on %s\n", p.Kernel, p.GPU)
	fmt.Fprintf(&b, "  time %s  energy %s  ramp %.3f\n", fmtSec(p.TimeSec), fmtJ(p.EnergyJ), p.Ramp)
	dom, share := p.Dominant()
	fmt.Fprintf(&b, "  dominant component: %s (%.1f%% of total)\n", dom, 100*share)
	b.WriteString("  level     energy       share   traffic\n")
	for _, l := range Levels {
		e := p.Energy.Level(l)
		pct := 0.0
		if p.EnergyJ != 0 {
			pct = 100 * e / p.EnergyJ
		}
		fmt.Fprintf(&b, "  %-8s %10s %7.1f%%   %s\n", l, fmtJ(e), pct, fmtBytes(levelTraffic(p.Bytes, l)))
	}
	for i := range p.Nests {
		np := &p.Nests[i]
		dom, share := np.Energy.Dominant()
		fmt.Fprintf(&b, "  nest %s: %s over %d launch(es), %s — dominant %s (%.1f%%)\n",
			np.Name, fmtJ(np.EnergyJ), np.Launches, fmtSec(np.TimeSec), dom, 100*share)
		for _, ap := range np.Arrays {
			fmt.Fprintf(&b, "    %-10s %-8s dram %-10s l2 %-10s l1 %-10s shared %s\n",
				ap.Array, ap.Class, fmtJ(ap.Energy.DRAM), fmtJ(ap.Energy.L2),
				fmtJ(ap.Energy.L1), fmtJ(ap.Energy.Shared))
		}
	}
	return b.String()
}

// levelTraffic maps a level name onto its byte counter (0 for the
// traffic-free compute/static levels).
func levelTraffic(b LevelBytes, level string) int64 {
	switch level {
	case "dram":
		return b.DRAM
	case "l2":
		return b.L2
	case "l1":
		return b.L1
	case "shared":
		return b.Shared
	}
	return 0
}

func fmtJ(j float64) string { return fmt.Sprintf("%.4g J", j) }

func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.4g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.4g ms", s*1e3)
	default:
		return fmt.Sprintf("%.4g us", s*1e6)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// sortedTileNames renders a tile map deterministically (used by the
// diff report).
func sortedTileNames(tiles map[string]int64) string {
	names := make([]string, 0, len(tiles))
	for n := range tiles {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, tiles[n])
	}
	return strings.Join(parts, " ")
}
