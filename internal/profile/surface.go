package profile

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SurfacePoint is one evaluated tile configuration of an ExploreSpace
// sweep: the coordinates plus the objective values at that point.
type SurfacePoint struct {
	Tiles   map[string]int64 `json:"tiles"`
	TimeSec float64          `json:"time_sec"`
	EnergyJ float64          `json:"energy_j"`
	GFLOPS  float64          `json:"gflops"`
	PPW     float64          `json:"ppw"`
}

// Slice is a 2-D heatmap cut through the sweep surface: for each (X,Y)
// tile-size pair, the best (minimum) energy and time over every other
// dimension. Cells with no evaluated point hold -1 (energies and times
// are strictly positive, so the sentinel is unambiguous).
type Slice struct {
	X     string  `json:"x"`
	Y     string  `json:"y"`
	XVals []int64 `json:"x_vals"`
	YVals []int64 `json:"y_vals"`
	// EnergyJ[yi][xi] / TimeSec[yi][xi] index YVals x XVals.
	EnergyJ [][]float64 `json:"energy_j"`
	TimeSec [][]float64 `json:"time_sec"`
}

// Surface is the exportable energy/time surface of one sweep: the raw
// points plus all 2-D heatmap slices — the paper's figure-style data,
// but for any kernel/arch. It is what `cmd/eatss -surface` writes and
// the /profile endpoint serves.
type Surface struct {
	Kernel string         `json:"kernel"`
	GPU    string         `json:"gpu"`
	Dims   []string       `json:"dims"`
	Points []SurfacePoint `json:"points"`
	Slices []Slice        `json:"slices"`
}

// NewSurface assembles a Surface from sweep points, computing every
// pairwise heatmap slice. Dimensions are the union of tile names across
// points, in sorted order.
func NewSurface(kernel, gpu string, pts []SurfacePoint) *Surface {
	s := &Surface{Kernel: kernel, GPU: gpu, Points: pts}
	dimSet := make(map[string]bool)
	for _, p := range pts {
		for d := range p.Tiles {
			dimSet[d] = true
		}
	}
	for d := range dimSet {
		s.Dims = append(s.Dims, d)
	}
	sort.Strings(s.Dims)

	if len(s.Dims) == 1 {
		s.Slices = append(s.Slices, makeSlice(pts, s.Dims[0], ""))
		return s
	}
	for i := 0; i < len(s.Dims); i++ {
		for j := i + 1; j < len(s.Dims); j++ {
			s.Slices = append(s.Slices, makeSlice(pts, s.Dims[i], s.Dims[j]))
		}
	}
	return s
}

// makeSlice projects the point cloud onto the (x, y) plane, keeping the
// minimum energy (and its time) per cell. An empty y collapses the
// slice to a single row.
func makeSlice(pts []SurfacePoint, x, y string) Slice {
	sl := Slice{X: x, Y: y}
	xSet := make(map[int64]bool)
	ySet := make(map[int64]bool)
	for _, p := range pts {
		xSet[p.Tiles[x]] = true
		if y != "" {
			ySet[p.Tiles[y]] = true
		}
	}
	sl.XVals = sortedVals(xSet)
	if y == "" {
		sl.YVals = []int64{0}
	} else {
		sl.YVals = sortedVals(ySet)
	}
	xIdx := indexOf(sl.XVals)
	yIdx := indexOf(sl.YVals)

	sl.EnergyJ = make([][]float64, len(sl.YVals))
	sl.TimeSec = make([][]float64, len(sl.YVals))
	for yi := range sl.YVals {
		sl.EnergyJ[yi] = make([]float64, len(sl.XVals))
		sl.TimeSec[yi] = make([]float64, len(sl.XVals))
		for xi := range sl.XVals {
			sl.EnergyJ[yi][xi] = -1
			sl.TimeSec[yi][xi] = -1
		}
	}
	for _, p := range pts {
		xi := xIdx[p.Tiles[x]]
		yi := 0
		if y != "" {
			yi = yIdx[p.Tiles[y]]
		}
		if cur := sl.EnergyJ[yi][xi]; cur < 0 || p.EnergyJ < cur {
			sl.EnergyJ[yi][xi] = p.EnergyJ
			sl.TimeSec[yi][xi] = p.TimeSec
		}
	}
	return sl
}

func sortedVals(set map[int64]bool) []int64 {
	vals := make([]int64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func indexOf(vals []int64) map[int64]int {
	idx := make(map[int64]int, len(vals))
	for i, v := range vals {
		idx[v] = i
	}
	return idx
}

// WriteJSON writes the surface as indented JSON.
func (s *Surface) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the raw points in long format — one row per evaluated
// configuration, one column per tile dimension — the shape heatmap
// tooling (pandas pivot, gnuplot) ingests directly.
func (s *Surface) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, s.Dims...), "time_sec", "energy_j", "gflops", "ppw")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, p := range s.Points {
		row = row[:0]
		for _, d := range s.Dims {
			row = append(row, strconv.FormatInt(p.Tiles[d], 10))
		}
		row = append(row,
			fmt.Sprintf("%.9g", p.TimeSec),
			fmt.Sprintf("%.9g", p.EnergyJ),
			fmt.Sprintf("%.9g", p.GFLOPS),
			fmt.Sprintf("%.9g", p.PPW),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
