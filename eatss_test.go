package eatss_test

import (
	"os"
	"strings"
	"testing"

	eatss "repro"
)

// Integration tests of the public API: the full select -> compile ->
// simulate pipeline as a downstream user would drive it.

func TestEndToEndGemm(t *testing.T) {
	k, err := eatss.Kernel("gemm")
	if err != nil {
		t.Fatal(err)
	}
	g := eatss.GA100()
	sel, err := eatss.SelectTiles(k, g, eatss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's worked example.
	if sel.Tiles["i"] != 16 || sel.Tiles["j"] != 384 || sel.Tiles["k"] != 16 {
		t.Fatalf("tiles = %v, want paper's (16, 384, 16)", sel.Tiles)
	}
	res, err := eatss.Run(k, g, sel.Tiles, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		t.Fatal(err)
	}
	def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if res.PPW <= def.PPW {
		t.Fatalf("EATSS PPW %.2f should beat default %.2f (Fig. 7a)", res.PPW, def.PPW)
	}
}

func TestSelectBestProtocol(t *testing.T) {
	k := eatss.MustKernel("2mm")
	best, err := eatss.SelectBest(k, eatss.GA100(), eatss.FP64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Candidates) == 0 || len(best.Candidates) > len(eatss.SharedSplits) {
		t.Fatalf("candidates = %d", len(best.Candidates))
	}
	for _, c := range best.Candidates {
		if best.Chosen.Result.PPW < c.Result.PPW {
			t.Fatal("chosen candidate is not the PPW maximum")
		}
	}
	if best.SolverCalls < len(best.Candidates)*2 {
		t.Fatalf("solver calls = %d, want >= 2 per candidate", best.SolverCalls)
	}
}

func TestAllKernelsEndToEndBothGPUs(t *testing.T) {
	for _, gname := range []string{"ga100", "xavier"} {
		g, err := eatss.GPUByName(gname)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range eatss.Kernels() {
			k := eatss.MustKernel(name)
			params := k.Params
			if g.Name == "Xavier" {
				if std, err := eatss.StandardParams(name); err == nil {
					params = std
				}
			}
			best, err := eatss.SelectBest(k.WithParams(params), g, eatss.FP64, params)
			if err != nil {
				t.Errorf("%s on %s: %v", name, gname, err)
				continue
			}
			r := best.Chosen.Result
			if r.TimeSec <= 0 || r.EnergyJ <= 0 || r.GFLOPS <= 0 {
				t.Errorf("%s on %s: degenerate result %+v", name, gname, r)
			}
			if r.AvgPowerW > g.TDPWatts*1.01 {
				t.Errorf("%s on %s: power %.1f exceeds TDP", name, gname, r.AvgPowerW)
			}
		}
	}
}

func TestExploreSpaceOrderingAndValidity(t *testing.T) {
	k := eatss.MustKernel("mvt")
	g := eatss.GA100()
	space := eatss.Space(k, []int64{16, 32, 64})
	pts, stats := eatss.ExploreSpace(k, g, space, eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if len(pts) != 9 {
		t.Fatalf("points = %d, want 9", len(pts))
	}
	if stats.Evaluated != 9 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v, want 9 evaluated / 0 skipped", stats)
	}
	for _, p := range pts {
		if p.Result.GFLOPS <= 0 {
			t.Fatalf("invalid point %v", p.Tiles)
		}
	}
}

func TestCompileProducesCUDA(t *testing.T) {
	k := eatss.MustKernel("gemm")
	mk, err := eatss.Compile(k, eatss.GA100(), eatss.DefaultTiles(k),
		eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		t.Fatal(err)
	}
	src := mk.CUDASource()
	if !strings.Contains(src, "__global__") || !strings.Contains(src, "kernel gemm") {
		t.Fatalf("CUDA source incomplete:\n%s", src)
	}
}

func TestGPUByNameErrors(t *testing.T) {
	if _, err := eatss.GPUByName("h100"); err == nil {
		t.Fatal("unknown GPU should error")
	}
}

func TestKernelNotFound(t *testing.T) {
	if _, err := eatss.Kernel("does-not-exist"); err == nil {
		t.Fatal("unknown kernel should error")
	}
}

func TestPaperSpaceIs15PerDim(t *testing.T) {
	k := eatss.MustKernel("gemm")
	if got := len(eatss.PaperSpace(k)); got != 3375 {
		t.Fatalf("paper space = %d, want 15^3", got)
	}
}

func TestKernelListsConsistent(t *testing.T) {
	all := len(eatss.Kernels())
	pb := len(eatss.PolybenchKernels())
	npb := len(eatss.NonPolybenchKernels())
	if pb+npb != all {
		t.Fatalf("polybench %d + non-polybench %d != catalog %d", pb, npb, all)
	}
}

func TestV100Pipeline(t *testing.T) {
	// Generality: the whole pipeline must run on the third (non-paper)
	// platform too.
	k := eatss.MustKernel("gemm")
	g := eatss.V100()
	best, err := eatss.SelectBest(k, g, eatss.FP64, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := eatss.Run(k, g, eatss.DefaultTiles(k), eatss.RunConfig{UseShared: true, Precision: eatss.FP64})
	if err != nil {
		t.Fatal(err)
	}
	if best.Chosen.Result.PPW <= def.PPW {
		t.Fatalf("V100: EATSS PPW %.2f should beat default %.2f",
			best.Chosen.Result.PPW, def.PPW)
	}
}

func TestLoadGPURoundTrip(t *testing.T) {
	data, err := eatss.GA100().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/gpu.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := eatss.LoadGPU(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "GA100" {
		t.Fatalf("loaded %q", g.Name)
	}
}
