package eatss_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark regenerates its artifact through the full pipeline and prints
// the rendered table once, so
//
//	go test -bench=. -benchmem ./...
//
// reproduces the entire evaluation in one run. Shape assertions live in
// internal/bench's tests; these benchmarks measure the cost of
// regeneration and emit the artifacts themselves.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
)

var printOnce sync.Map

// emit prints an experiment's rendering exactly once per process, however
// many times the benchmark harness re-invokes the function.
func emit(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

func BenchmarkFig1PowerVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig1(arch.GA100(), nil)
		emit("fig1", f.Render())
	}
}

func BenchmarkFig2TileSpace2mm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig2("2mm", arch.GA100())
		emit("fig2-2mm", f.Render())
	}
}

func BenchmarkFig2TileSpaceGemm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig2("gemm", arch.GA100())
		emit("fig2-gemm", f.Render())
	}
}

func BenchmarkFig3TileSpaceBothGPUs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig3()
		emit("fig3", f.Render())
	}
}

func BenchmarkFig7PolybenchGA100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig7(arch.GA100(), nil)
		emit("fig7-ga100", f.Render())
	}
}

func BenchmarkFig7PolybenchXavier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig7(arch.Xavier(), nil)
		emit("fig7-xavier", f.Render())
	}
}

func BenchmarkFig8SharedMemSplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig8(arch.GA100(), nil, nil)
		emit("fig8", f.Render())
	}
}

func BenchmarkFig9L2PowerCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig9(arch.GA100(), nil)
		emit("fig9", f.Render())
	}
}

func BenchmarkFig10NonPolybench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig10(arch.GA100())
		emit("fig10", f.Render())
	}
}

func BenchmarkFig11Histogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig11(arch.GA100())
		emit("fig11", f.Render())
	}
}

func BenchmarkFig12InputSizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig12(arch.GA100(), nil, nil)
		emit("fig12", f.Render())
	}
}

func BenchmarkFig13NonPolybenchSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig13(arch.GA100(), nil)
		emit("fig13", f.Render())
	}
}

func BenchmarkTable4CuXXComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Table4()
		emit("table4", f.Render())
	}
}

func BenchmarkFig14Ytopt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.Fig14(nil, nil)
		emit("fig14", f.Render())
	}
}

func BenchmarkSecVGSolverOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.SecVG(arch.GA100())
		emit("secvg", f.Render())
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkAblationObjective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.AblateObjective(arch.GA100(), nil)
		emit("ablation-objective", f.Render())
	}
}

func BenchmarkAblationMemorySplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.AblateMemorySplit(arch.GA100(), nil)
		emit("ablation-memsplit", f.Render())
	}
}

func BenchmarkAblationWarpFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.AblateWarpFraction(arch.GA100())
		emit("ablation-warpfrac", f.Render())
	}
}

func BenchmarkAblationFPFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.AblateFPFactor(arch.GA100())
		emit("ablation-fpfactor", f.Render())
	}
}

// --- beyond-paper extension benches ---

func BenchmarkExtensionTimeTiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.TimeTilingStudy(arch.GA100(), nil, nil)
		emit("ext-timetile", f.Render())
	}
}

func BenchmarkExtensionRegisterTiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.RegTileStudy(arch.GA100(), nil, nil)
		emit("ext-regtile", f.Render())
	}
}

func BenchmarkExtensionPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := bench.PrecisionStudy(arch.GA100(), nil)
		emit("ext-precision", f.Render())
	}
}
