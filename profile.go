package eatss

import (
	"repro/internal/core"
	"repro/internal/profile"
)

// Re-exported attribution types (see internal/profile).
type (
	// Profile is the per-nest × per-array × per-memory-level energy and
	// traffic attribution of one simulated run; its components sum to
	// the run's EnergyJ (Profile.Check enforces the conservation).
	Profile = profile.Profile
	// ProfileComponents is one energy value per attribution level
	// (DRAM / L2 / L1 / shared / compute / static).
	ProfileComponents = profile.Components
	// ProfileDiffReport explains why one tile configuration beats
	// another, component by component.
	ProfileDiffReport = profile.DiffReport
	// SweepSurface is the exportable energy/time surface of a sweep:
	// raw points plus 2-D heatmap slices (JSON/CSV).
	SweepSurface = profile.Surface
	// SweepSurfacePoint is one evaluated configuration of a surface.
	SweepSurfacePoint = profile.SurfacePoint
)

// ProfileOf decomposes a simulated Result into its attribution profile.
// tiles (optional, may be nil) labels the profile for diffs. The
// returned profile satisfies Check(1e-9) for every catalog kernel on
// every built-in architecture — conservation is pinned by tests.
func ProfileOf(res *Result, tiles map[string]int64) (*Profile, error) {
	p, err := profile.FromResult(res)
	if err != nil {
		return nil, err
	}
	if tiles != nil {
		p.Tiles = copyTiles(tiles)
	}
	return p, nil
}

// ProfileDiff compares two profiles of the same kernel/arch and
// attributes the energy gap to the levels that moved ("why A beats B").
func ProfileDiff(a, b *Profile) *ProfileDiffReport { return profile.Diff(a, b) }

// NewSweepSurface assembles the exportable energy/time surface from
// ExploreSpace results: every evaluated point plus min-energy heatmap
// slices for each pair of tile dimensions.
func NewSweepSurface(kernel, gpu string, pts []SpacePoint) *SweepSurface {
	spts := make([]profile.SurfacePoint, len(pts))
	for i, p := range pts {
		spts[i] = profile.SurfacePoint{
			Tiles:   copyTiles(p.Tiles),
			TimeSec: p.Result.TimeSec,
			EnergyJ: p.Result.EnergyJ,
			GFLOPS:  p.Result.GFLOPS,
			PPW:     p.Result.PPW,
		}
	}
	return profile.NewSurface(kernel, gpu, spts)
}

// PublishProfile exposes p on the introspection server's /profile
// endpoint (see internal/obs/serve).
func PublishProfile(p *Profile) { profile.Publish(p) }

// PublishSweepSurface exposes s on /profile?view=surface.
func PublishSweepSurface(s *SweepSurface) { profile.PublishSurface(s) }

// ExplainEnergy fuses a selection's constraint-slack view with a run's
// energy attribution: it names the dominant energy component and
// whether the formulation constraint governing it is binding. slacks is
// the first return of Explain.
func ExplainEnergy(sel *Selection, slacks []ConstraintSlack, p *Profile) string {
	return core.ExplainEnergy(sel, slacks, p)
}
